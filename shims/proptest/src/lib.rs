//! Offline shim for the subset of `proptest` this workspace uses.
//!
//! Supports the `proptest!` macro with `pattern in strategy` bindings,
//! integer/float range strategies, character-class string strategies
//! (`"[a-z0-9]{1,12}"`), tuple strategies, `prop::collection::vec`,
//! `any::<T>()`, `.prop_map`, `prop_oneof!`, and
//! `prop_assert!`/`prop_assert_eq!`.
//!
//! No shrinking: a failing case panics with the generated inputs'
//! case number and the deterministic per-test seed, which reproduces the
//! failure exactly (case generation is seeded from the test name).

use std::marker::PhantomData;
use std::ops::{Range, RangeInclusive};

/// Deterministic generator driving all strategies (SplitMix64).
pub struct TestRng {
    state: u64,
}

impl TestRng {
    pub fn new(seed: u64) -> TestRng {
        TestRng { state: seed ^ 0x5851_F42D_4C95_7F2D }
    }

    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    fn below(&mut self, n: u64) -> u64 {
        ((self.next_u64() as u128 * n as u128) >> 64) as u64
    }
}

/// FNV-1a hash used to derive a per-test seed from the test name.
pub fn seed_for(name: &str) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in name.as_bytes() {
        h ^= *b as u64;
        h = h.wrapping_mul(0x0100_0000_01B3);
    }
    h
}

/// Cases run per `proptest!` test.
pub const CASES: u32 = 128;

pub mod test_runner {
    use std::fmt;

    /// A failed property within one generated case.
    #[derive(Debug)]
    pub struct TestCaseError {
        message: String,
    }

    impl TestCaseError {
        pub fn fail<S: Into<String>>(message: S) -> TestCaseError {
            TestCaseError { message: message.into() }
        }
    }

    impl fmt::Display for TestCaseError {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str(&self.message)
        }
    }

    pub type TestCaseResult = Result<(), TestCaseError>;
}

/// A generator of values of one type.
///
/// Object-safe (used boxed by `prop_oneof!`); combinators require `Sized`.
pub trait Strategy {
    type Value;

    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    fn prop_map<U, F: Fn(Self::Value) -> U>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }

    fn prop_filter<F: Fn(&Self::Value) -> bool>(self, whence: &'static str, f: F) -> Filter<Self, F>
    where
        Self: Sized,
    {
        Filter { inner: self, f, whence }
    }
}

/// Strategy returned by [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, U, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
    type Value = U;
    fn generate(&self, rng: &mut TestRng) -> U {
        (self.f)(self.inner.generate(rng))
    }
}

/// Strategy returned by [`Strategy::prop_filter`]. Rejection-samples.
pub struct Filter<S, F> {
    inner: S,
    f: F,
    whence: &'static str,
}

impl<S: Strategy, F: Fn(&S::Value) -> bool> Strategy for Filter<S, F> {
    type Value = S::Value;
    fn generate(&self, rng: &mut TestRng) -> S::Value {
        for _ in 0..10_000 {
            let v = self.inner.generate(rng);
            if (self.f)(&v) {
                return v;
            }
        }
        panic!("prop_filter '{}' rejected 10000 consecutive candidates", self.whence);
    }
}

/// A value that can be generated uniformly over its whole domain
/// (`any::<T>()`).
pub trait Arbitrary: Sized {
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() >> 63 == 1
    }
}

impl<const N: usize> Arbitrary for [u8; N] {
    fn arbitrary(rng: &mut TestRng) -> [u8; N] {
        let mut out = [0u8; N];
        for chunk in out.chunks_mut(8) {
            let v = rng.next_u64().to_le_bytes();
            let n = chunk.len();
            chunk.copy_from_slice(&v[..n]);
        }
        out
    }
}

/// Strategy over any [`Arbitrary`] type's whole domain.
pub struct Any<T> {
    _marker: PhantomData<fn() -> T>,
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// `any::<T>()`: a strategy over `T`'s whole domain.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any { _marker: PhantomData }
}

/// `Just(value)`: a strategy that always yields clones of `value`.
#[derive(Clone, Debug)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

macro_rules! impl_strategy_int_range {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + rng.below(span) as i128) as $t
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "empty range strategy");
                let span = (end as i128 - start as i128) as u128 + 1;
                let v = ((rng.next_u64() as u128 * span) >> 64) as i128;
                (start as i128 + v) as $t
            }
        }
    )*};
}
impl_strategy_int_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Strategy for Range<f64> {
    type Value = f64;
    fn generate(&self, rng: &mut TestRng) -> f64 {
        let u = (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        self.start + u * (self.end - self.start)
    }
}

impl Strategy for Range<f32> {
    type Value = f32;
    fn generate(&self, rng: &mut TestRng) -> f32 {
        let u = (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32);
        self.start + u * (self.end - self.start)
    }
}

macro_rules! impl_strategy_tuple {
    ($(($($name:ident : $idx:tt),+)),+) => {$(
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    )+};
}
impl_strategy_tuple!(
    (A: 0),
    (A: 0, B: 1),
    (A: 0, B: 1, C: 2),
    (A: 0, B: 1, C: 2, D: 3),
    (A: 0, B: 1, C: 2, D: 3, E: 4),
    (A: 0, B: 1, C: 2, D: 3, E: 4, F: 5),
    (A: 0, B: 1, C: 2, D: 3, E: 4, F: 5, G: 6),
    (A: 0, B: 1, C: 2, D: 3, E: 4, F: 5, G: 6, H: 7)
);

/// Character-class string strategies: a `&'static str` of the form
/// `"[class]{min,max}"` is itself a strategy producing matching strings.
impl Strategy for &'static str {
    type Value = String;
    fn generate(&self, rng: &mut TestRng) -> String {
        let (chars, min, max) = parse_charclass_pattern(self);
        let len = min + rng.below((max - min + 1) as u64) as usize;
        (0..len).map(|_| chars[rng.below(chars.len() as u64) as usize]).collect()
    }
}

/// Parse `[class]{min,max}` into the expanded character set and bounds.
/// Supports ranges (`a-z`, ` -~`), escapes (`\n`, `\t`, `\\`, `\-`, `\]`),
/// and a literal `-` first or last in the class.
fn parse_charclass_pattern(pattern: &str) -> (Vec<char>, usize, usize) {
    fn bail(pattern: &str) -> ! {
        panic!("unsupported string strategy pattern: {pattern:?} (shim supports only \"[class]{{min,max}}\")")
    }
    let rest = pattern.strip_prefix('[').unwrap_or_else(|| bail(pattern));
    let mut chars: Vec<char> = Vec::new();
    let mut iter = rest.chars().peekable();
    let mut closed = false;
    while let Some(c) = iter.next() {
        match c {
            ']' => {
                closed = true;
                break;
            }
            '\\' => {
                let esc = iter.next().unwrap_or_else(|| bail(pattern));
                chars.push(match esc {
                    'n' => '\n',
                    't' => '\t',
                    'r' => '\r',
                    other => other,
                });
            }
            _ => {
                // Range if followed by '-' and the '-' is not class-final.
                if iter.peek() == Some(&'-') {
                    let mut ahead = iter.clone();
                    ahead.next(); // consume '-'
                    match ahead.peek() {
                        Some(&end) if end != ']' => {
                            iter = ahead;
                            let end = iter.next().unwrap_or_else(|| bail(pattern));
                            assert!(c <= end, "descending range in {pattern:?}");
                            for v in c as u32..=end as u32 {
                                chars.extend(char::from_u32(v));
                            }
                            continue;
                        }
                        _ => chars.push(c),
                    }
                } else {
                    chars.push(c);
                }
            }
        }
    }
    if !closed || chars.is_empty() {
        bail(pattern);
    }
    let bounds = iter.collect::<String>();
    let bounds =
        bounds.strip_prefix('{').and_then(|b| b.strip_suffix('}')).unwrap_or_else(|| bail(pattern));
    let (min, max) = match bounds.split_once(',') {
        Some((lo, hi)) => (
            lo.parse().unwrap_or_else(|_| bail(pattern)),
            hi.parse().unwrap_or_else(|_| bail(pattern)),
        ),
        None => {
            let n = bounds.parse().unwrap_or_else(|_| bail(pattern));
            (n, n)
        }
    };
    assert!(min <= max, "bad repetition bounds in {pattern:?}");
    (chars, min, max)
}

/// A uniform choice among boxed same-valued strategies (`prop_oneof!`).
pub struct Union<V> {
    options: Vec<Box<dyn Strategy<Value = V>>>,
}

impl<V> Union<V> {
    pub fn new(options: Vec<Box<dyn Strategy<Value = V>>>) -> Union<V> {
        assert!(!options.is_empty(), "prop_oneof! needs at least one option");
        Union { options }
    }
}

impl<V> Strategy for Union<V> {
    type Value = V;
    fn generate(&self, rng: &mut TestRng) -> V {
        let idx = rng.below(self.options.len() as u64) as usize;
        self.options[idx].generate(rng)
    }
}

pub mod collection {
    use super::{Strategy, TestRng};
    use std::ops::Range;

    /// Strategy for `Vec`s of `min..max` elements of an inner strategy.
    pub struct VecStrategy<S> {
        element: S,
        len: Range<usize>,
    }

    /// `prop::collection::vec(element, len_range)`.
    pub fn vec<S: Strategy>(element: S, len: Range<usize>) -> VecStrategy<S> {
        assert!(len.start < len.end, "empty length range");
        VecStrategy { element, len }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.len.end - self.len.start) as u64;
            let n = self.len.start + rng.below(span) as usize;
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// `proptest::prop`: namespace mirror (`prop::collection::vec`).
pub mod prop {
    pub use crate::collection;
}

pub mod prelude {
    pub use crate::test_runner::{TestCaseError, TestCaseResult};
    pub use crate::{
        any, prop, prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest,
        Arbitrary, Just, Strategy,
    };
}

#[macro_export]
macro_rules! proptest {
    ($(
        $(#[$attr:meta])*
        fn $name:ident($($pat:pat in $strat:expr),* $(,)?) $body:block
    )*) => {$(
        $(#[$attr])*
        fn $name() {
            let seed = $crate::seed_for(concat!(module_path!(), "::", stringify!($name)));
            let mut rng = $crate::TestRng::new(seed);
            for case in 0..$crate::CASES {
                $(let $pat = $crate::Strategy::generate(&($strat), &mut rng);)*
                let result: $crate::test_runner::TestCaseResult = (|| {
                    $body
                    ::core::result::Result::Ok(())
                })();
                if let ::core::result::Result::Err(e) = result {
                    panic!(
                        "proptest case {}/{} failed (seed {:#x}): {}",
                        case + 1,
                        $crate::CASES,
                        seed,
                        e
                    );
                }
            }
        }
    )*};
}

#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!($($fmt)*),
            ));
        }
    };
}

#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(*l == *r, "assertion failed: {:?} == {:?}", l, r);
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(*l == *r, "assertion failed: {:?} == {:?}: {}", l, r, format!($($fmt)*));
    }};
}

#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(*l != *r, "assertion failed: {:?} != {:?}", l, r);
    }};
}

#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        // No rejection bookkeeping in the shim: an assumption failure just
        // skips the rest of this case.
        if !$cond {
            return ::core::result::Result::Ok(());
        }
    };
}

#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {{
        let options: ::std::vec::Vec<::std::boxed::Box<dyn $crate::Strategy<Value = _>>> =
            vec![$(::std::boxed::Box::new($strat)),+];
        $crate::Union::new(options)
    }};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;
    use crate::{parse_charclass_pattern, TestRng};

    #[test]
    fn charclass_parsing() {
        let (chars, min, max) = parse_charclass_pattern("[a-c0-2x]{1,5}");
        assert_eq!(chars, vec!['a', 'b', 'c', '0', '1', '2', 'x']);
        assert_eq!((min, max), (1, 5));
        let (chars, ..) = parse_charclass_pattern("[a-z .:=_-]{0,30}");
        assert!(chars.contains(&'-') && chars.contains(&'.') && chars.contains(&'z'));
        let (chars, min, max) = parse_charclass_pattern("[ -~\n\t]{0,400}");
        assert!(chars.contains(&' ') && chars.contains(&'~') && chars.contains(&'\n'));
        assert_eq!(chars.len(), 95 + 2);
        assert_eq!((min, max), (0, 400));
    }

    #[test]
    fn string_strategy_respects_class_and_bounds() {
        let mut rng = TestRng::new(1);
        for _ in 0..200 {
            let s = Strategy::generate(&"[a-f]{2,4}", &mut rng);
            assert!((2..=4).contains(&s.len()));
            assert!(s.chars().all(|c| ('a'..='f').contains(&c)));
        }
    }

    #[test]
    fn vec_and_tuple_strategies() {
        let mut rng = TestRng::new(2);
        for _ in 0..100 {
            let v =
                Strategy::generate(&prop::collection::vec((0u64..20, 0u32..4), 0..50), &mut rng);
            assert!(v.len() < 50);
            for (a, b) in v {
                assert!(a < 20 && b < 4);
            }
        }
    }

    #[test]
    fn oneof_and_map() {
        let strat = prop_oneof![
            (0u32..10).prop_map(|v| v as u64),
            any::<u32>().prop_map(|v| 1_000 + v as u64),
        ];
        let mut rng = TestRng::new(3);
        let mut low = 0;
        let mut high = 0;
        for _ in 0..200 {
            let v = Strategy::generate(&strat, &mut rng);
            if v < 10 {
                low += 1;
            } else {
                assert!(v >= 1_000);
                high += 1;
            }
        }
        assert!(low > 0 && high > 0);
    }

    proptest! {
        #[test]
        fn macro_binds_patterns(x in 0u64..100, mut v in prop::collection::vec(any::<u8>(), 0..10)) {
            v.push(x as u8);
            prop_assert!(x < 100);
            prop_assert_eq!(v.last().copied(), Some(x as u8));
        }
    }
}
