//! Offline shim for the subset of `rand 0.9` this workspace uses.
//!
//! Provides the [`Rng`] and [`SeedableRng`] traits and
//! [`rngs::SmallRng`] (xoshiro256++, seeded through SplitMix64).
//! Deterministic per seed across platforms; *not* bit-compatible with the
//! crates.io implementation — every determinism test in this repo compares
//! run-to-run under one binary, never against externally generated values.

/// Uniformly distributed value generation for primitive types.
pub trait Random: Sized {
    fn random<R: Rng + ?Sized>(rng: &mut R) -> Self;
}

macro_rules! impl_random_int {
    ($($t:ty),*) => {$(
        impl Random for $t {
            #[inline]
            fn random<R: Rng + ?Sized>(rng: &mut R) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_random_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Random for u128 {
    #[inline]
    fn random<R: Rng + ?Sized>(rng: &mut R) -> u128 {
        ((rng.next_u64() as u128) << 64) | rng.next_u64() as u128
    }
}

impl Random for bool {
    #[inline]
    fn random<R: Rng + ?Sized>(rng: &mut R) -> bool {
        rng.next_u64() >> 63 == 1
    }
}

impl Random for f64 {
    /// Uniform in `[0, 1)` with 53 bits of precision.
    #[inline]
    fn random<R: Rng + ?Sized>(rng: &mut R) -> f64 {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Random for f32 {
    #[inline]
    fn random<R: Rng + ?Sized>(rng: &mut R) -> f32 {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

impl<const N: usize> Random for [u8; N] {
    fn random<R: Rng + ?Sized>(rng: &mut R) -> [u8; N] {
        let mut out = [0u8; N];
        for chunk in out.chunks_mut(8) {
            let v = rng.next_u64().to_le_bytes();
            let n = chunk.len();
            chunk.copy_from_slice(&v[..n]);
        }
        out
    }
}

/// A range that can be sampled uniformly (`random_range`).
pub trait SampleRange<T> {
    fn sample_single<R: Rng + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_sample_range_int {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            #[inline]
            fn sample_single<R: Rng + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "random_range: empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                // Multiply-shift reduction: uniform enough for simulation,
                // branch-free, and deterministic across platforms.
                let hi = ((rng.next_u64() as u128).wrapping_mul(span) >> 64) as i128;
                (self.start as i128 + hi) as $t
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            #[inline]
            fn sample_single<R: Rng + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "random_range: empty range");
                let span = (end as i128 - start as i128) as u128 + 1;
                if span == 0 {
                    // Full-width inclusive range of a 128-bit-spanning type
                    // cannot occur for the types below (max span 2^64).
                    return rng.next_u64() as $t;
                }
                let hi = ((rng.next_u64() as u128).wrapping_mul(span) >> 64) as i128;
                (start as i128 + hi) as $t
            }
        }
    )*};
}
impl_sample_range_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleRange<f64> for core::ops::Range<f64> {
    #[inline]
    fn sample_single<R: Rng + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "random_range: empty range");
        let u: f64 = Random::random(rng);
        self.start + u * (self.end - self.start)
    }
}

/// The user-facing generator trait.
pub trait Rng {
    /// The primitive source all other methods derive from.
    fn next_u64(&mut self) -> u64;

    /// A uniformly random value of type `T`.
    #[inline]
    fn random<T: Random>(&mut self) -> T {
        T::random(self)
    }

    /// A uniformly random value in `range`.
    #[inline]
    fn random_range<T, Rg: SampleRange<T>>(&mut self, range: Rg) -> T {
        range.sample_single(self)
    }

    /// `true` with probability `p`.
    #[inline]
    fn random_bool(&mut self, p: f64) -> bool {
        self.random::<f64>() < p
    }

    /// An endless iterator of uniformly random values.
    #[inline]
    fn random_iter<T: Random>(self) -> RandomIter<Self, T>
    where
        Self: Sized,
    {
        RandomIter { rng: self, _marker: core::marker::PhantomData }
    }
}

impl<R: Rng + ?Sized> Rng for &mut R {
    #[inline]
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Iterator returned by [`Rng::random_iter`].
pub struct RandomIter<R: Rng, T: Random> {
    rng: R,
    _marker: core::marker::PhantomData<fn() -> T>,
}

impl<R: Rng, T: Random> Iterator for RandomIter<R, T> {
    type Item = T;
    #[inline]
    fn next(&mut self) -> Option<T> {
        Some(self.rng.random())
    }
}

/// Construction of a generator from seed material.
pub trait SeedableRng: Sized {
    fn seed_from_u64(seed: u64) -> Self;
}

#[inline]
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

pub mod rngs {
    use super::{splitmix64, Rng, SeedableRng};

    /// A small, fast, deterministic generator (xoshiro256++).
    #[derive(Clone, Debug, PartialEq, Eq)]
    pub struct SmallRng {
        s: [u64; 4],
    }

    impl SeedableRng for SmallRng {
        fn seed_from_u64(seed: u64) -> SmallRng {
            let mut st = seed;
            let mut s = [0u64; 4];
            for slot in &mut s {
                *slot = splitmix64(&mut st);
            }
            // xoshiro's state must not be all-zero; SplitMix64 of any seed
            // never yields four zero outputs, but keep the guard explicit.
            if s == [0; 4] {
                s[0] = 0x9E37_79B9_7F4A_7C15;
            }
            SmallRng { s }
        }
    }

    impl Rng for SmallRng {
        #[inline]
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::SmallRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let a: Vec<u64> = SmallRng::seed_from_u64(7).random_iter().take(16).collect();
        let b: Vec<u64> = SmallRng::seed_from_u64(7).random_iter().take(16).collect();
        assert_eq!(a, b);
        let c: u64 = SmallRng::seed_from_u64(8).random();
        assert_ne!(a[0], c);
    }

    #[test]
    fn f64_in_unit_interval() {
        let mut rng = SmallRng::seed_from_u64(1);
        for _ in 0..10_000 {
            let v: f64 = rng.random();
            assert!((0.0..1.0).contains(&v));
        }
    }

    #[test]
    fn range_bounds_respected() {
        let mut rng = SmallRng::seed_from_u64(2);
        for _ in 0..10_000 {
            let v = rng.random_range(10u32..20);
            assert!((10..20).contains(&v));
            let w = rng.random_range(1u16..=u16::MAX);
            assert!(w >= 1);
            let x = rng.random_range(-5i64..5);
            assert!((-5..5).contains(&x));
            let f = rng.random_range(2.0f64..3.0);
            assert!((2.0..3.0).contains(&f));
        }
    }

    #[test]
    fn range_distribution_roughly_uniform() {
        let mut rng = SmallRng::seed_from_u64(3);
        let mut counts = [0u32; 10];
        for _ in 0..100_000 {
            counts[rng.random_range(0usize..10)] += 1;
        }
        for &c in &counts {
            assert!((8_000..12_000).contains(&c), "bucket count {c}");
        }
    }

    #[test]
    fn unsized_access_through_reference() {
        fn draw<R: Rng + ?Sized>(rng: &mut R) -> u64 {
            rng.next_u64()
        }
        let mut rng = SmallRng::seed_from_u64(4);
        let a = draw(&mut rng);
        let b = draw(&mut rng);
        assert_ne!(a, b);
    }
}
