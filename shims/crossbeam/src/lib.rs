//! Offline shim for `crossbeam::channel::unbounded`.
//!
//! Multi-producer multi-consumer FIFO over `Mutex<VecDeque>` + `Condvar`.
//! Matches crossbeam semantics for the operations this workspace uses:
//! cloneable senders and receivers, each message delivered to exactly one
//! receiver, receivers see `Disconnected` only once the queue is drained
//! and every sender is gone.

pub mod channel {
    use std::collections::VecDeque;
    use std::fmt;
    use std::sync::{Arc, Condvar, Mutex};

    struct Shared<T> {
        queue: Mutex<State<T>>,
        ready: Condvar,
    }

    struct State<T> {
        items: VecDeque<T>,
        senders: usize,
        receivers: usize,
    }

    /// Sending half; cloneable.
    pub struct Sender<T> {
        shared: Arc<Shared<T>>,
    }

    /// Receiving half; cloneable (each message goes to one receiver).
    pub struct Receiver<T> {
        shared: Arc<Shared<T>>,
    }

    /// Error returned by [`Sender::send`] when every receiver is gone.
    pub struct SendError<T>(pub T);

    impl<T> fmt::Debug for SendError<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str("SendError(..)")
        }
    }

    /// Error returned by [`Receiver::recv`] once the channel is drained
    /// and disconnected.
    #[derive(Clone, Copy, Debug, PartialEq, Eq)]
    pub struct RecvError;

    /// Error returned by [`Receiver::try_recv`].
    #[derive(Clone, Copy, Debug, PartialEq, Eq)]
    pub enum TryRecvError {
        /// No message currently buffered, but senders remain.
        Empty,
        /// Drained and every sender dropped.
        Disconnected,
    }

    /// An unbounded MPMC FIFO channel.
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        let shared = Arc::new(Shared {
            queue: Mutex::new(State { items: VecDeque::new(), senders: 1, receivers: 1 }),
            ready: Condvar::new(),
        });
        (Sender { shared: Arc::clone(&shared) }, Receiver { shared })
    }

    impl<T> Sender<T> {
        pub fn send(&self, msg: T) -> Result<(), SendError<T>> {
            let mut st = self.shared.queue.lock().unwrap();
            if st.receivers == 0 {
                return Err(SendError(msg));
            }
            st.items.push_back(msg);
            drop(st);
            self.shared.ready.notify_one();
            Ok(())
        }
    }

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Sender<T> {
            self.shared.queue.lock().unwrap().senders += 1;
            Sender { shared: Arc::clone(&self.shared) }
        }
    }

    impl<T> Drop for Sender<T> {
        fn drop(&mut self) {
            let mut st = self.shared.queue.lock().unwrap();
            st.senders -= 1;
            if st.senders == 0 {
                drop(st);
                self.shared.ready.notify_all();
            }
        }
    }

    impl<T> Receiver<T> {
        /// Blocking receive; `Err(RecvError)` at end-of-stream.
        pub fn recv(&self) -> Result<T, RecvError> {
            let mut st = self.shared.queue.lock().unwrap();
            loop {
                if let Some(v) = st.items.pop_front() {
                    return Ok(v);
                }
                if st.senders == 0 {
                    return Err(RecvError);
                }
                st = self.shared.ready.wait(st).unwrap();
            }
        }

        pub fn try_recv(&self) -> Result<T, TryRecvError> {
            let mut st = self.shared.queue.lock().unwrap();
            match st.items.pop_front() {
                Some(v) => Ok(v),
                None if st.senders == 0 => Err(TryRecvError::Disconnected),
                None => Err(TryRecvError::Empty),
            }
        }

        /// Messages currently buffered.
        pub fn len(&self) -> usize {
            self.shared.queue.lock().unwrap().items.len()
        }

        pub fn is_empty(&self) -> bool {
            self.len() == 0
        }
    }

    impl<T> Clone for Receiver<T> {
        fn clone(&self) -> Receiver<T> {
            self.shared.queue.lock().unwrap().receivers += 1;
            Receiver { shared: Arc::clone(&self.shared) }
        }
    }

    impl<T> Drop for Receiver<T> {
        fn drop(&mut self) {
            self.shared.queue.lock().unwrap().receivers -= 1;
        }
    }

    #[cfg(test)]
    mod tests {
        use super::*;
        use std::thread;

        #[test]
        fn fifo_order_single_thread() {
            let (tx, rx) = unbounded();
            for i in 0..100 {
                tx.send(i).unwrap();
            }
            drop(tx);
            let got: Vec<i32> = std::iter::from_fn(|| rx.recv().ok()).collect();
            assert_eq!(got, (0..100).collect::<Vec<_>>());
        }

        #[test]
        fn recv_unblocks_on_disconnect() {
            let (tx, rx) = unbounded::<u8>();
            let h = thread::spawn(move || rx.recv());
            drop(tx);
            assert_eq!(h.join().unwrap(), Err(RecvError));
        }

        #[test]
        fn send_fails_without_receivers() {
            let (tx, rx) = unbounded();
            drop(rx);
            assert!(tx.send(1).is_err());
        }

        #[test]
        fn try_recv_states() {
            let (tx, rx) = unbounded();
            assert_eq!(rx.try_recv(), Err(TryRecvError::Empty));
            tx.send(5).unwrap();
            assert_eq!(rx.try_recv(), Ok(5));
            drop(tx);
            assert_eq!(rx.try_recv(), Err(TryRecvError::Disconnected));
        }

        #[test]
        fn cloned_receivers_share_work() {
            let (tx, rx1) = unbounded();
            let rx2 = rx1.clone();
            for i in 0..1_000 {
                tx.send(i).unwrap();
            }
            drop(tx);
            let h1 = thread::spawn(move || std::iter::from_fn(|| rx1.recv().ok()).count());
            let h2 = thread::spawn(move || std::iter::from_fn(|| rx2.recv().ok()).count());
            assert_eq!(h1.join().unwrap() + h2.join().unwrap(), 1_000);
        }
    }
}
