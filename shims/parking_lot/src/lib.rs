//! Offline shim for `parking_lot::{Mutex, RwLock}`: thin wrappers over
//! `std::sync` with parking_lot's non-poisoning API (guards from a
//! panicked holder are recovered rather than propagated as errors).

use std::sync::{self, MutexGuard, RwLockReadGuard, RwLockWriteGuard};

/// A mutual-exclusion lock whose `lock()` never returns a poison error.
pub struct Mutex<T: ?Sized> {
    inner: sync::Mutex<T>,
}

impl<T> Mutex<T> {
    pub fn new(value: T) -> Mutex<T> {
        Mutex { inner: sync::Mutex::new(value) }
    }

    pub fn into_inner(self) -> T {
        self.inner.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.inner.lock().unwrap_or_else(|e| e.into_inner())
    }

    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: Default> Default for Mutex<T> {
    fn default() -> Mutex<T> {
        Mutex::new(T::default())
    }
}

/// A reader-writer lock whose guards never return poison errors.
pub struct RwLock<T: ?Sized> {
    inner: sync::RwLock<T>,
}

impl<T> RwLock<T> {
    pub fn new(value: T) -> RwLock<T> {
        RwLock { inner: sync::RwLock::new(value) }
    }

    pub fn into_inner(self) -> T {
        self.inner.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> RwLock<T> {
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.inner.read().unwrap_or_else(|e| e.into_inner())
    }

    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.inner.write().unwrap_or_else(|e| e.into_inner())
    }

    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: Default> Default for RwLock<T> {
    fn default() -> RwLock<T> {
        RwLock::new(T::default())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mutex_roundtrip() {
        let m = Mutex::new(1);
        *m.lock() += 41;
        assert_eq!(*m.lock(), 42);
        assert_eq!(m.into_inner(), 42);
    }

    #[test]
    fn rwlock_readers_and_writer() {
        let l = RwLock::new(vec![1, 2]);
        {
            let a = l.read();
            let b = l.read();
            assert_eq!(a.len() + b.len(), 4);
        }
        l.write().push(3);
        assert_eq!(*l.read(), vec![1, 2, 3]);
    }

    #[test]
    fn lock_survives_panicked_holder() {
        let m = std::sync::Arc::new(Mutex::new(0));
        let m2 = std::sync::Arc::clone(&m);
        let _ = std::thread::spawn(move || {
            let _g = m2.lock();
            panic!("poison attempt");
        })
        .join();
        *m.lock() += 1;
        assert_eq!(*m.lock(), 1);
    }
}
