//! Offline shim for the subset of `criterion` this workspace uses.
//!
//! Benchmarks compile and run (`cargo bench`) and print one line per
//! benchmark with mean wall-clock time per iteration and optional
//! throughput. No warm-up statistics, outlier analysis, or reports —
//! enough to compare runs by eye in an offline environment.

use std::time::{Duration, Instant};

/// Iteration driver handed to each benchmark closure.
pub struct Bencher {
    /// Mean time per iteration measured by the last `iter` call.
    elapsed_per_iter: Duration,
}

impl Bencher {
    /// Call `f` repeatedly for roughly the configured measurement budget
    /// and record the mean time per call.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        // One untimed call to warm caches and discover rough cost.
        let probe = Instant::now();
        std::hint::black_box(f());
        let once = probe.elapsed().max(Duration::from_nanos(1));
        // Aim for ~200ms of measurement, capped to keep slow paper-scale
        // benches bounded.
        let iters =
            (Duration::from_millis(200).as_nanos() / once.as_nanos()).clamp(1, 10_000) as u64;
        let start = Instant::now();
        for _ in 0..iters {
            std::hint::black_box(f());
        }
        self.elapsed_per_iter = start.elapsed() / iters as u32;
    }
}

/// Throughput annotation for a benchmark group.
#[derive(Clone, Copy, Debug)]
pub enum Throughput {
    Bytes(u64),
    Elements(u64),
}

/// Top-level benchmark context.
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        name: impl AsRef<str>,
        f: F,
    ) -> &mut Self {
        run_one(name.as_ref(), None, f);
        self
    }

    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup { _parent: self, name: name.to_string(), throughput: None }
    }
}

/// A named group sharing throughput/sample settings.
pub struct BenchmarkGroup<'a> {
    _parent: &'a mut Criterion,
    name: String,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    /// Accepted for API compatibility; the shim sizes iteration counts by
    /// time budget instead.
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    pub fn measurement_time(&mut self, _d: Duration) -> &mut Self {
        self
    }

    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        name: impl AsRef<str>,
        f: F,
    ) -> &mut Self {
        run_one(&format!("{}/{}", self.name, name.as_ref()), self.throughput, f);
        self
    }

    pub fn finish(self) {}
}

fn run_one<F: FnMut(&mut Bencher)>(label: &str, throughput: Option<Throughput>, mut f: F) {
    let mut b = Bencher { elapsed_per_iter: Duration::ZERO };
    f(&mut b);
    let per_iter = b.elapsed_per_iter;
    let rate = throughput.map(|t| {
        let secs = per_iter.as_secs_f64().max(1e-12);
        match t {
            Throughput::Bytes(n) => format!("  {:.1} MiB/s", n as f64 / secs / (1024.0 * 1024.0)),
            Throughput::Elements(n) => format!("  {:.0} elem/s", n as f64 / secs),
        }
    });
    println!("bench {label:<40} {per_iter:>12.2?}/iter{}", rate.unwrap_or_default());
}

/// `criterion_group!(name, target1, target2, ...)`.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        fn $name() {
            let mut c = $crate::Criterion::default();
            $($target(&mut c);)+
        }
    };
}

/// `criterion_main!(group1, group2, ...)`.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_runs_closure() {
        let mut c = Criterion::default();
        let mut runs = 0u64;
        c.bench_function("counting", |b| b.iter(|| runs += 1));
        assert!(runs > 0);
    }

    #[test]
    fn group_api_chains() {
        let mut c = Criterion::default();
        let mut g = c.benchmark_group("g");
        g.throughput(Throughput::Elements(10));
        g.sample_size(10);
        g.bench_function("noop", |b| b.iter(|| 1 + 1));
        g.finish();
    }
}
