//! Offline shim for `bytes::{Bytes, BytesMut, BufMut}`: a growable byte
//! buffer over `Vec<u8>` with the big-endian put methods the wire encoders
//! use, plus a refcounted immutable [`Bytes`] view so frozen buffers (feed
//! arenas, wire captures) can be shared across threads and topic
//! subscribers without copying the payload.

use std::ops::{Bound, Deref, DerefMut, RangeBounds};
use std::sync::Arc;

/// An immutable, cheaply-cloneable byte buffer: a `(start, end)` window
/// into a refcounted storage `Vec`. `clone()` and [`slice`](Bytes::slice)
/// bump the refcount and never copy bytes, which is what lets one frozen
/// arena back every subscriber of a `streamproc` topic at once.
#[derive(Clone)]
pub struct Bytes {
    data: Arc<Vec<u8>>,
    start: usize,
    end: usize,
}

impl Bytes {
    /// An empty buffer (no allocation is shared, but none is needed).
    pub fn new() -> Bytes {
        Bytes { data: Arc::new(Vec::new()), start: 0, end: 0 }
    }

    /// Copy `slice` into a fresh refcounted buffer.
    pub fn copy_from_slice(slice: &[u8]) -> Bytes {
        Bytes::from(slice.to_vec())
    }

    pub fn len(&self) -> usize {
        self.end - self.start
    }

    pub fn is_empty(&self) -> bool {
        self.start == self.end
    }

    pub fn as_slice(&self) -> &[u8] {
        &self.data[self.start..self.end]
    }

    /// A sub-window of this buffer sharing the same storage. Panics if the
    /// range is out of bounds or decreasing, like slice indexing.
    pub fn slice(&self, range: impl RangeBounds<usize>) -> Bytes {
        let start = match range.start_bound() {
            Bound::Included(&n) => n,
            Bound::Excluded(&n) => n + 1,
            Bound::Unbounded => 0,
        };
        let end = match range.end_bound() {
            Bound::Included(&n) => n + 1,
            Bound::Excluded(&n) => n,
            Bound::Unbounded => self.len(),
        };
        assert!(start <= end && end <= self.len(), "slice {start}..{end} out of bounds");
        Bytes { data: Arc::clone(&self.data), start: self.start + start, end: self.start + end }
    }

    /// Whether two buffers share the same underlying storage allocation
    /// (regardless of their windows). The zero-copy assertions in block
    /// tests use this to prove clones alias rather than copy.
    pub fn same_storage(a: &Bytes, b: &Bytes) -> bool {
        Arc::ptr_eq(&a.data, &b.data)
    }
}

impl Default for Bytes {
    fn default() -> Bytes {
        Bytes::new()
    }
}

impl Deref for Bytes {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        self.as_slice()
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        self.as_slice()
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(data: Vec<u8>) -> Bytes {
        let end = data.len();
        Bytes { data: Arc::new(data), start: 0, end }
    }
}

impl From<&[u8]> for Bytes {
    fn from(slice: &[u8]) -> Bytes {
        Bytes::copy_from_slice(slice)
    }
}

impl PartialEq for Bytes {
    fn eq(&self, other: &Bytes) -> bool {
        self.as_slice() == other.as_slice()
    }
}

impl Eq for Bytes {}

impl std::hash::Hash for Bytes {
    fn hash<H: std::hash::Hasher>(&self, state: &mut H) {
        self.as_slice().hash(state);
    }
}

impl std::fmt::Debug for Bytes {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "b\"")?;
        for &b in self.as_slice() {
            write!(f, "{}", std::ascii::escape_default(b))?;
        }
        write!(f, "\"")
    }
}

/// A growable, contiguous byte buffer.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct BytesMut {
    data: Vec<u8>,
}

impl BytesMut {
    pub fn new() -> BytesMut {
        BytesMut { data: Vec::new() }
    }

    pub fn with_capacity(cap: usize) -> BytesMut {
        BytesMut { data: Vec::with_capacity(cap) }
    }

    pub fn len(&self) -> usize {
        self.data.len()
    }

    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    pub fn clear(&mut self) {
        self.data.clear();
    }

    pub fn extend_from_slice(&mut self, slice: &[u8]) {
        self.data.extend_from_slice(slice);
    }

    pub fn reserve(&mut self, additional: usize) {
        self.data.reserve(additional);
    }

    pub fn as_slice(&self) -> &[u8] {
        &self.data
    }

    pub fn to_vec(&self) -> Vec<u8> {
        self.data.clone()
    }

    /// Convert the accumulated bytes into an immutable, refcounted
    /// [`Bytes`]. Consumes the builder; no bytes are copied.
    pub fn freeze(self) -> Bytes {
        Bytes::from(self.data)
    }
}

impl Deref for BytesMut {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.data
    }
}

impl DerefMut for BytesMut {
    fn deref_mut(&mut self) -> &mut [u8] {
        &mut self.data
    }
}

impl AsRef<[u8]> for BytesMut {
    fn as_ref(&self) -> &[u8] {
        &self.data
    }
}

impl From<Vec<u8>> for BytesMut {
    fn from(data: Vec<u8>) -> BytesMut {
        BytesMut { data }
    }
}

impl From<&[u8]> for BytesMut {
    fn from(slice: &[u8]) -> BytesMut {
        BytesMut { data: slice.to_vec() }
    }
}

/// Appending typed values in network (big-endian) byte order.
pub trait BufMut {
    fn put_slice(&mut self, slice: &[u8]);

    fn put_u8(&mut self, v: u8) {
        self.put_slice(&[v]);
    }

    fn put_u16(&mut self, v: u16) {
        self.put_slice(&v.to_be_bytes());
    }

    fn put_u32(&mut self, v: u32) {
        self.put_slice(&v.to_be_bytes());
    }

    fn put_u64(&mut self, v: u64) {
        self.put_slice(&v.to_be_bytes());
    }
}

impl BufMut for BytesMut {
    fn put_slice(&mut self, slice: &[u8]) {
        self.data.extend_from_slice(slice);
    }
}

impl BufMut for Vec<u8> {
    fn put_slice(&mut self, slice: &[u8]) {
        self.extend_from_slice(slice);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn puts_are_big_endian() {
        let mut b = BytesMut::new();
        b.put_u8(0x01);
        b.put_u16(0x0203);
        b.put_u32(0x0405_0607);
        b.put_slice(&[0xAA, 0xBB]);
        assert_eq!(&b[..], &[0x01, 0x02, 0x03, 0x04, 0x05, 0x06, 0x07, 0xAA, 0xBB]);
        assert_eq!(b.len(), 9);
    }

    #[test]
    fn freeze_then_clone_and_slice_share_storage() {
        let mut b = BytesMut::new();
        b.extend_from_slice(b"hello world");
        let frozen = b.freeze();
        let clone = frozen.clone();
        let world = frozen.slice(6..);
        assert!(Bytes::same_storage(&frozen, &clone));
        assert!(Bytes::same_storage(&frozen, &world));
        assert_eq!(&clone[..], b"hello world");
        assert_eq!(&world[..], b"world");
        assert_eq!(world.len(), 5);
        assert_eq!(world.slice(1..3), Bytes::copy_from_slice(b"or"));
        assert!(!Bytes::same_storage(&frozen, &Bytes::copy_from_slice(b"hello world")));
    }

    #[test]
    fn bytes_slice_bounds_and_empty() {
        let b = Bytes::from(b"abcd".as_slice());
        assert_eq!(b.slice(..), b);
        assert_eq!(&b.slice(2..2)[..], b"");
        assert!(b.slice(4..4).is_empty());
        assert!(Bytes::new().is_empty());
        assert_eq!(format!("{:?}", Bytes::from(b"a\x00".as_slice())), "b\"a\\x00\"");
    }

    #[test]
    #[should_panic]
    fn bytes_slice_out_of_bounds_panics() {
        let b = Bytes::from(b"abcd".as_slice());
        let _ = b.slice(2..5);
    }

    #[test]
    fn deref_and_index() {
        let mut b = BytesMut::with_capacity(4);
        b.extend_from_slice(b"abcd");
        assert_eq!(b[1], b'b');
        assert_eq!(&b[1..3], b"bc");
        let slice: &[u8] = &b;
        assert_eq!(slice, b"abcd");
    }
}
