//! Offline shim for `bytes::{BytesMut, BufMut}`: a growable byte buffer
//! over `Vec<u8>` with the big-endian put methods the wire encoders use.

use std::ops::{Deref, DerefMut};

/// A growable, contiguous byte buffer.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct BytesMut {
    data: Vec<u8>,
}

impl BytesMut {
    pub fn new() -> BytesMut {
        BytesMut { data: Vec::new() }
    }

    pub fn with_capacity(cap: usize) -> BytesMut {
        BytesMut { data: Vec::with_capacity(cap) }
    }

    pub fn len(&self) -> usize {
        self.data.len()
    }

    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    pub fn clear(&mut self) {
        self.data.clear();
    }

    pub fn extend_from_slice(&mut self, slice: &[u8]) {
        self.data.extend_from_slice(slice);
    }

    pub fn reserve(&mut self, additional: usize) {
        self.data.reserve(additional);
    }

    pub fn as_slice(&self) -> &[u8] {
        &self.data
    }

    pub fn to_vec(&self) -> Vec<u8> {
        self.data.clone()
    }
}

impl Deref for BytesMut {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.data
    }
}

impl DerefMut for BytesMut {
    fn deref_mut(&mut self) -> &mut [u8] {
        &mut self.data
    }
}

impl AsRef<[u8]> for BytesMut {
    fn as_ref(&self) -> &[u8] {
        &self.data
    }
}

impl From<Vec<u8>> for BytesMut {
    fn from(data: Vec<u8>) -> BytesMut {
        BytesMut { data }
    }
}

impl From<&[u8]> for BytesMut {
    fn from(slice: &[u8]) -> BytesMut {
        BytesMut { data: slice.to_vec() }
    }
}

/// Appending typed values in network (big-endian) byte order.
pub trait BufMut {
    fn put_slice(&mut self, slice: &[u8]);

    fn put_u8(&mut self, v: u8) {
        self.put_slice(&[v]);
    }

    fn put_u16(&mut self, v: u16) {
        self.put_slice(&v.to_be_bytes());
    }

    fn put_u32(&mut self, v: u32) {
        self.put_slice(&v.to_be_bytes());
    }

    fn put_u64(&mut self, v: u64) {
        self.put_slice(&v.to_be_bytes());
    }
}

impl BufMut for BytesMut {
    fn put_slice(&mut self, slice: &[u8]) {
        self.data.extend_from_slice(slice);
    }
}

impl BufMut for Vec<u8> {
    fn put_slice(&mut self, slice: &[u8]) {
        self.extend_from_slice(slice);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn puts_are_big_endian() {
        let mut b = BytesMut::new();
        b.put_u8(0x01);
        b.put_u16(0x0203);
        b.put_u32(0x0405_0607);
        b.put_slice(&[0xAA, 0xBB]);
        assert_eq!(&b[..], &[0x01, 0x02, 0x03, 0x04, 0x05, 0x06, 0x07, 0xAA, 0xBB]);
        assert_eq!(b.len(), 9);
    }

    #[test]
    fn deref_and_index() {
        let mut b = BytesMut::with_capacity(4);
        b.extend_from_slice(b"abcd");
        assert_eq!(b[1], b'b');
        assert_eq!(&b[1..3], b"bc");
        let slice: &[u8] = &b;
        assert_eq!(slice, b"abcd");
    }
}
