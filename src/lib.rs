//! `dnsimpact` — a from-scratch reproduction of *"Investigating the impact
//! of DDoS attacks on DNS infrastructure"* (IMC 2022).
//!
//! This umbrella crate re-exports the whole workspace:
//!
//! | crate | role |
//! |---|---|
//! | [`simcore`] | virtual time, seeded RNG fan-out, distributions, stats |
//! | [`netbase`] | IPv4 prefixes, LPM trie, ASN/org registries, prefix2as |
//! | [`dnswire`] | DNS wire format (names, compression, records, messages) |
//! | [`pcap`] | pcap files + Ethernet/IPv4/UDP/TCP/ICMP frames |
//! | [`dnssim`] | authoritative-DNS world: NSSets, capacity model, resolver |
//! | [`attack`] | calibrated DDoS workload generation |
//! | [`telescope`] | darknet, backscatter, RSDoS inference, the feed |
//! | [`openintel`] | daily active measurement platform |
//! | [`census`] | anycast census + open-resolver lists |
//! | [`streamproc`] | topics, tumbling windows, threaded stages |
//! | [`core`] | **the paper's data-join pipeline and analyses** |
//! | [`reactive`] | RSDoS-triggered NS-exhaustive probing |
//! | [`scenarios`] | world generator + TransIP / mil.ru / RDZ case studies |
//!
//! Start with [`prelude`], the `examples/` directory, and the `repro`
//! binary (`cargo run --release -p dnsimpact-bench --bin repro`).

pub use attack;
pub use census;
pub use dnsimpact_core as core;
pub use dnssim;
pub use dnswire;
pub use netbase;
pub use openintel;
pub use pcap;
pub use reactive;
pub use scenarios;
pub use simcore;
pub use streamproc;
pub use telescope;

/// The items almost every experiment touches.
pub mod prelude {
    pub use attack::{
        accumulate_windows, Attack, AttackId, AttackScheduler, Protocol, ScheduleConfig,
        TargetPool, VectorKind, VectorSpec,
    };
    pub use census::{AnycastCensus, AnycastClass, OpenResolverList};
    pub use dnsimpact_core::impact::{ImpactConfig, ImpactEvent};
    pub use dnsimpact_core::join::{join_episodes, join_episodes_with_offset, ChangingDirectory};
    pub use dnsimpact_core::longitudinal::{
        run as run_longitudinal, LongitudinalConfig, MetaTables,
    };
    pub use dnssim::{
        Deployment, DomainId, Infra, LoadBook, NsId, NsSetId, QueryOutcome, QueryStatus, Resolver,
        Uplink,
    };
    pub use dnswire::{Message, Name, RData, Rcode, Record, RrType};
    pub use netbase::{Asn, Ipv4Net, Prefix2As, Slash16, Slash24};
    pub use openintel::{MeasurementStore, SweepSchedule};
    pub use reactive::{
        probe_from_fleet, MultiVantageProbe, ProbePlan, ReactivePlatform, TriggerConfig,
        VantagePoint,
    };
    pub use simcore::rng::RngFactory;
    pub use simcore::time::{CivilDate, Month, SimDuration, SimTime, Window};
    pub use telescope::{
        BackscatterSampler, Darknet, RsdosClassifier, RsdosFeed, RsdosRecord, RsdosThresholds,
    };
}
