//! End-to-end integration: generate a world + calibrated attack
//! population, run the complete pipeline, and check the paper's headline
//! shapes all at once.

use dnsimpact::prelude::*;
use scenarios::{paper_longitudinal_config, world, PaperScale, WorldConfig};

fn run(
    seed: u64,
    divisor: u32,
) -> (world::BuiltWorld, dnsimpact::core::longitudinal::LongitudinalReport) {
    let rngs = RngFactory::new(seed);
    let built = world::build(
        &WorldConfig { providers: 40, domains: 20_000, ..WorldConfig::default() },
        &rngs,
    );
    let cfg = paper_longitudinal_config(PaperScale { divisor });
    let months = cfg.months.clone();
    let attacks = AttackScheduler::new(cfg).generate(&built.target_pool(), &rngs);
    let report = run_longitudinal(
        &built.infra,
        &Darknet::ucsd_like(),
        &attacks,
        &months,
        &built.meta,
        &LongitudinalConfig::default(),
        &rngs,
    );
    (built, report)
}

#[test]
fn headline_shapes_hold() {
    let (built, report) = run(1, 100);

    // Table 3 shape: the DNS share stays in a low single-digit-percent
    // band, every month.
    for m in &report.monthly {
        assert!(m.total_attacks() > 0, "{}: no attacks at all", m.month);
        assert!(
            m.dns_share() < 0.05,
            "{}: DNS share implausibly high: {:.2}%",
            m.month,
            m.dns_share() * 100.0
        );
    }
    let dns_total: u64 = report.monthly.iter().map(|m| m.dns_attacks).sum();
    let grand_total: u64 = report.monthly.iter().map(|m| m.total_attacks()).sum();
    let share = dns_total as f64 / grand_total as f64;
    assert!(
        (0.004..0.03).contains(&share),
        "overall DNS share {share:.4} outside the paper's ≈0.6–2.1% band"
    );

    // Figure 6 shape: TCP dominates, port 80 ≥ port 53 within TCP, UDP/53
    // is a third of UDP.
    let b = &report.port_breakdown;
    if b.total >= 50 {
        assert!(b.single_port_share() > 0.7, "single-port share {}", b.single_port_share());
        assert!(b.protocol_share(Protocol::Tcp) > 0.8);
        assert!(
            b.port_share_within(Protocol::Tcp, 80) > b.port_share_within(Protocol::Tcp, 443),
            "TCP/80 beats TCP/443"
        );
    }

    // §6.3: the overwhelming majority of impact events show no failures.
    let fs = &report.failure_summary;
    assert!(fs.events > 0, "no impact events materialized");
    assert!(
        (fs.events_with_failures as f64) < 0.15 * fs.events as f64,
        "{} of {} events failing is far above the paper's ≈1%",
        fs.events_with_failures,
        fs.events
    );

    // Figure 11 shape: no full-anycast NSSet suffers a ≥100x event, and
    // unicast carries the worst outcomes.
    let anycast = &report.by_anycast;
    let unicast_row = &anycast[0];
    let full_row = &anycast[2];
    assert_eq!(full_row.over_100x, 0, "anycast never reaches 100x in the paper");
    if unicast_row.events > 0 && full_row.events > 0 {
        assert!(
            unicast_row.max_impact >= full_row.max_impact,
            "unicast worst-case ({}) should dominate anycast ({})",
            unicast_row.max_impact,
            full_row.max_impact
        );
    }

    // Figure 9 shape: intensity does not strongly predict impact.
    if let Some(r) = report.intensity_impact.pearson() {
        assert!(r.abs() < 0.6, "correlation too strong to match the paper: {r}");
    }

    // Table 5 shape: the famous open resolvers attract attacks and are
    // flagged.
    let flagged = report.top_ips.iter().filter(|(_, _, open)| *open).count();
    assert!(flagged >= 1, "expected open resolvers among the top-attacked IPs");

    // The world's misconfigured domains exist but never produce impact
    // events (the §6.1 filter).
    let quad8 = built.infra.ns_by_addr("8.8.8.8".parse().unwrap()).unwrap();
    let resolver_sets: Vec<NsSetId> = built.infra.nssets_of_ns(quad8).to_vec();
    for e in &report.impacts {
        assert!(
            !resolver_sets.contains(&e.nsset),
            "open-resolver NSSet leaked into the impact analysis"
        );
    }
}

#[test]
fn affected_domains_track_provider_sizes() {
    let (built, report) = run(3, 200);
    // Figure 5 shape: the biggest per-event affected-domain count is the
    // size of the largest attacked provider, which should reach the head
    // of the Zipf distribution at least once over 17 months.
    let biggest_event = report
        .affected_domains_by_month
        .iter()
        .flat_map(|(_, v)| v.iter().copied())
        .max()
        .unwrap_or(0);
    let biggest_provider = built
        .provider_nssets
        .iter()
        .map(|&s| built.infra.domains_of_nsset(s).len() as u64)
        .max()
        .unwrap();
    assert!(
        biggest_event >= biggest_provider / 2,
        "peaks of Figure 5 should reach the big providers: {biggest_event} vs {biggest_provider}"
    );
}

#[test]
fn feed_summary_dimensions_consistent() {
    let (built, report) = run(5, 300);
    let s = report.feed.summary(&built.meta.prefix2as);
    assert!(s.attacks >= s.unique_ips, "episodes can repeat per IP");
    assert!(s.unique_ips >= s.unique_slash24s);
    assert!(s.unique_slash24s >= s.unique_asns || s.unique_asns == 0);
    assert!(s.attacks > 0);
}
