//! The two simulation fidelities must agree: sampled per-query outcomes
//! (the resolver path) converge to the analytic `ServiceState`
//! probabilities that the aggregate path would use — because both are
//! derived from the same load model.

use dnsimpact::prelude::*;

fn single_server_world(capacity: f64) -> (Infra, DomainId, std::net::Ipv4Addr) {
    let mut infra = Infra::new();
    let addr: std::net::Ipv4Addr = "198.51.100.53".parse().unwrap();
    let ns = infra.add_nameserver(
        "ns.solo.net".parse().unwrap(),
        addr,
        Asn(64500),
        Deployment::Unicast,
        capacity,
        1_000.0,
        20.0,
    );
    let set = infra.intern_nsset(vec![ns]);
    let d = infra.add_domain("only.example".parse().unwrap(), set);
    (infra, d, addr)
}

#[test]
fn sampled_answer_rate_matches_service_state() {
    // Saturated single server: analytic answer probability is
    // capacity/offered; a single-attempt resolver must converge to it.
    let (infra, domain, addr) = single_server_world(50_000.0);
    let mut loads = LoadBook::new();
    let w = Window(100);
    loads.add(addr, w, 149_000.0); // offered = 150k → ρ = 3 → ans = 1/3
    let ns = infra.ns_by_addr(addr).unwrap();
    let state = infra.service_state(ns, w, &loads);
    assert!((state.answer_prob - 1.0 / 3.0).abs() < 0.01, "{state:?}");

    let resolver = Resolver { max_attempts: 1, ..Resolver::default() };
    let rngs = RngFactory::new(9);
    let mut rng = rngs.stream("fidelity");
    let n = 20_000;
    let mut ok = 0;
    for _ in 0..n {
        if resolver.resolve(&infra, domain, w, &loads, &mut rng).status == QueryStatus::Ok {
            ok += 1;
        }
    }
    let rate = ok as f64 / n as f64;
    assert!(
        (rate - state.answer_prob).abs() < 0.01,
        "sampled {rate} vs analytic {}",
        state.answer_prob
    );
}

#[test]
fn sampled_rtt_matches_rtt_mult() {
    // Below saturation: every query answered at base_rtt × mult exactly.
    let (infra, domain, addr) = single_server_world(50_000.0);
    let mut loads = LoadBook::new();
    let w = Window(7);
    loads.add(addr, w, 39_000.0); // offered 40k → ρ = 0.8 → mult = 5
    let ns = infra.ns_by_addr(addr).unwrap();
    let state = infra.service_state(ns, w, &loads);
    // Server queue gives 5x; the (barely loaded) /24 uplink adds ≈2%.
    assert!((state.rtt_mult - 5.0).abs() < 0.1, "{state:?}");

    let resolver = Resolver::default();
    let rngs = RngFactory::new(10);
    let mut rng = rngs.stream("fidelity-rtt");
    for _ in 0..100 {
        let out = resolver.resolve(&infra, domain, w, &loads, &mut rng);
        assert_eq!(out.status, QueryStatus::Ok);
        assert!((out.rtt_ms - 100.0).abs() < 2.0, "20ms × ≈5 = ≈100ms, got {}", out.rtt_ms);
    }
}

#[test]
fn retry_masking_matches_independence_product() {
    // Three identical servers, each failing with probability f: the
    // resolver's overall failure rate must be ≈ f³ (it tries all three).
    let mut infra = Infra::new();
    let addrs: Vec<std::net::Ipv4Addr> =
        (0..3).map(|i| format!("198.51.{i}.53").parse().unwrap()).collect();
    let ids: Vec<NsId> = addrs
        .iter()
        .enumerate()
        .map(|(i, &a)| {
            infra.add_nameserver(
                format!("ns{i}.trio.net").parse().unwrap(),
                a,
                Asn(64500),
                Deployment::Unicast,
                50_000.0,
                1_000.0,
                20.0,
            )
        })
        .collect();
    let set = infra.intern_nsset(ids.clone());
    let d = infra.add_domain("trio.example".parse().unwrap(), set);

    let mut loads = LoadBook::new();
    let w = Window(50);
    for &a in &addrs {
        loads.add(a, w, 99_000.0); // offered 100k → ρ = 2 → ans = 0.5
    }
    let state = infra.service_state(ids[0], w, &loads);
    let f_single = 1.0 - state.answer_prob;
    assert!((f_single - 0.5).abs() < 0.01);

    let resolver = Resolver::default(); // 3 attempts
    let rngs = RngFactory::new(11);
    let mut rng = rngs.stream("fidelity-retry");
    let n = 20_000;
    let failures = (0..n)
        .filter(|_| resolver.resolve(&infra, d, w, &loads, &mut rng).status != QueryStatus::Ok)
        .count();
    let rate = failures as f64 / n as f64;
    let expect = f_single.powi(3);
    assert!(
        (rate - expect).abs() < 0.015,
        "resolution failure {rate:.4} vs independence product {expect:.4}"
    );
}

#[test]
fn store_aggregation_equals_manual_average() {
    // The per-(NSSet, window) aggregates must be exactly the average of
    // the individual rows they ingested.
    let (infra, _domain, _) = single_server_world(50_000.0);
    let set = infra.domain(DomainId(0)).nsset;
    let schedule = SweepSchedule::new(3);
    let resolver = Resolver::default();
    let rngs = RngFactory::new(12);
    let loads = LoadBook::new();
    // Measure an explicit batch and cross-check.
    let domains = vec![DomainId(0); 50];
    let recs = openintel::measure::measure_domains(
        &infra,
        &resolver,
        &domains,
        set,
        Window(10),
        &loads,
        &rngs,
    );
    let _ = schedule;
    let mut store = MeasurementStore::new();
    store.ingest(&recs);
    let stats = store.window_stats(set, Window(10)).unwrap();
    let manual_avg = recs.iter().map(|r| r.rtt_ms).sum::<f64>() / recs.len() as f64;
    assert_eq!(stats.domains_measured, 50);
    assert!((stats.avg_rtt() - manual_avg).abs() < 1e-9);
}
