//! Edge-case and property tests for the zero-dependency JSON layer in
//! `obs::json` — the carrier for run reports, BENCH baselines, and the
//! Chrome trace export. The layer's contract is byte-stable round-trips:
//! `parse(v.pretty()) == v` and `parse(text).pretty() == text`, so a
//! baseline written by one run diffs clean against a re-serialization by
//! another.

use obs::Json;
use proptest::prelude::*;
use proptest::{Strategy, TestRng};

#[test]
fn escape_edge_cases() {
    // Every escape the writer emits parses back to the same string.
    let gauntlet = [
        "",
        "\"",
        "\\",
        "\\\\\"\"",
        "a\"b\\c/d",
        "line\nfeed\rreturn\ttab",
        "\u{8}\u{c}\u{1}\u{1f}", // backspace, formfeed, raw controls
        "mixed \u{0} nul and text",
        "ünïcode — ελληνικά — 日本語 — 🦀",
        "trailing backslash\\",
    ];
    for s in gauntlet {
        let doc = Json::Str(s.to_string());
        let text = doc.pretty();
        let parsed = Json::parse(&text).unwrap_or_else(|e| panic!("{text:?}: {e}"));
        assert_eq!(parsed, doc, "escape round-trip for {s:?}");
    }

    // Escapes the parser accepts beyond what the writer emits.
    assert_eq!(Json::parse(r#""\/""#).unwrap(), Json::Str("/".into()));
    assert_eq!(Json::parse(r#""Aé""#).unwrap(), Json::Str("Aé".into()));
    // Unpaired surrogates map to U+FFFD rather than erroring.
    assert_eq!(Json::parse(r#""\ud800""#).unwrap(), Json::Str("\u{fffd}".into()));
    // Unknown escapes are rejected.
    assert!(Json::parse(r#""\q""#).is_err());
}

#[test]
fn deep_nesting_round_trips() {
    // 500 levels of alternating arrays and single-key objects: recursion
    // in the parser, the writer, and the recursive Drop all survive it.
    let mut v = Json::U64(7);
    for depth in 0..500u32 {
        v = if depth % 2 == 0 {
            Json::Array(vec![v])
        } else {
            let mut o = Json::obj();
            o.set("k", v);
            o
        };
    }
    let text = v.pretty();
    let parsed = Json::parse(&text).expect("deeply nested document parses");
    assert_eq!(parsed, v);
    assert_eq!(parsed.pretty(), text);
}

#[test]
fn truncated_input_is_rejected() {
    // A document that ends in a closing brace has no valid proper prefix,
    // so every truncation point must be a parse error — never a silent
    // partial value (a truncated BENCH baseline must fail loudly).
    let mut doc = Json::obj();
    doc.set("schema", Json::Str("x/v1".into()));
    doc.set("list", Json::Array(vec![Json::U64(1), Json::Bool(true), Json::Null]));
    doc.set("nested", {
        let mut o = Json::obj();
        o.set("f", Json::F64(2.5));
        o
    });
    let text = doc.pretty();
    let text = text.trim_end(); // the trailing newline is a valid suffix to drop
    for cut in 0..text.len() {
        if !text.is_char_boundary(cut) {
            continue;
        }
        assert!(
            Json::parse(&text[..cut]).is_err(),
            "prefix of {cut} bytes parsed as a complete document"
        );
    }

    // Truncation inside escapes and literals.
    for bad in ["\"\\", "\"\\u", "\"\\u00", "\"abc", "tru", "nul", "fals", "-", "[1,", "{\"a\":"] {
        assert!(Json::parse(bad).is_err(), "{bad:?} accepted");
    }
}

#[test]
fn number_edge_cases() {
    // u64 boundary values stay exact; past the boundary falls to f64.
    assert_eq!(Json::parse("18446744073709551615").unwrap(), Json::U64(u64::MAX));
    assert!(matches!(Json::parse("18446744073709551616").unwrap(), Json::F64(_)));
    assert_eq!(Json::parse("1e3").unwrap(), Json::F64(1000.0));
    assert_eq!(Json::parse("-0.25").unwrap(), Json::F64(-0.25));
    // Whitespace tolerance around every token.
    let spaced = " { \"a\" :\t[ 1 ,\n null , \"s\" ] } ";
    let mut want = Json::obj();
    want.set("a", Json::Array(vec![Json::U64(1), Json::Null, Json::Str("s".into())]));
    assert_eq!(Json::parse(spaced).unwrap(), want);
}

/// Generator for arbitrary `Json` trees, depth-bounded so generation
/// terminates. Floats are kept finite and non-integral: non-finite
/// values serialize as `null` and integral floats print without a '.'
/// and legitimately re-parse as `U64` — both are intentional one-way
/// normalizations, not round-trip targets.
struct ArbJson {
    depth: u32,
}

fn gen_string(rng: &mut TestRng) -> String {
    Strategy::generate(&"[ -~\n\t]{0,12}", rng)
}

fn gen_json(rng: &mut TestRng, depth: u32) -> Json {
    let leaf_only = depth == 0;
    let pick = rng.next_u64() % if leaf_only { 5 } else { 7 };
    match pick {
        0 => Json::Null,
        1 => Json::Bool(rng.next_u64().is_multiple_of(2)),
        2 => Json::U64(rng.next_u64()),
        3 => {
            let f = Strategy::generate(&(0.0f64..1.0), rng) + 0.5;
            Json::F64(if f.fract() == 0.0 { 0.25 } else { f })
        }
        4 => Json::Str(gen_string(rng)),
        5 => {
            let n = rng.next_u64() % 4;
            Json::Array((0..n).map(|_| gen_json(rng, depth - 1)).collect())
        }
        _ => {
            let n = rng.next_u64() % 4;
            Json::Object((0..n).map(|_| (gen_string(rng), gen_json(rng, depth - 1))).collect())
        }
    }
}

impl Strategy for ArbJson {
    type Value = Json;
    fn generate(&self, rng: &mut TestRng) -> Json {
        gen_json(rng, self.depth)
    }
}

proptest! {
    #[test]
    fn arbitrary_documents_round_trip(doc in ArbJson { depth: 4 }) {
        let text = doc.pretty();
        let parsed = Json::parse(&text)
            .map_err(|e| proptest::test_runner::TestCaseError::fail(format!("{text:?}: {e}")))?;
        prop_assert_eq!(&parsed, &doc);
        // Re-serialization is byte-identical: the on-disk form is a
        // fixed point of parse ∘ pretty.
        prop_assert_eq!(parsed.pretty(), text);
    }
}
