//! Edge-case and property tests for the zero-dependency JSON layer in
//! `obs::json` — the carrier for run reports, BENCH baselines, and the
//! Chrome trace export. The layer's contract is byte-stable round-trips:
//! `parse(v.pretty()) == v` and `parse(text).pretty() == text`, so a
//! baseline written by one run diffs clean against a re-serialization by
//! another.

use obs::suite::{Percentiles, SuiteACell, SuiteBScale, Verdict};
use obs::{Hist, Json, SuiteMeta, SuiteReport};
use proptest::prelude::*;
use proptest::{Strategy, TestRng};

#[test]
fn escape_edge_cases() {
    // Every escape the writer emits parses back to the same string.
    let gauntlet = [
        "",
        "\"",
        "\\",
        "\\\\\"\"",
        "a\"b\\c/d",
        "line\nfeed\rreturn\ttab",
        "\u{8}\u{c}\u{1}\u{1f}", // backspace, formfeed, raw controls
        "mixed \u{0} nul and text",
        "ünïcode — ελληνικά — 日本語 — 🦀",
        "trailing backslash\\",
    ];
    for s in gauntlet {
        let doc = Json::Str(s.to_string());
        let text = doc.pretty();
        let parsed = Json::parse(&text).unwrap_or_else(|e| panic!("{text:?}: {e}"));
        assert_eq!(parsed, doc, "escape round-trip for {s:?}");
    }

    // Escapes the parser accepts beyond what the writer emits.
    assert_eq!(Json::parse(r#""\/""#).unwrap(), Json::Str("/".into()));
    assert_eq!(Json::parse(r#""Aé""#).unwrap(), Json::Str("Aé".into()));
    // Unpaired surrogates map to U+FFFD rather than erroring.
    assert_eq!(Json::parse(r#""\ud800""#).unwrap(), Json::Str("\u{fffd}".into()));
    // Unknown escapes are rejected.
    assert!(Json::parse(r#""\q""#).is_err());
}

#[test]
fn deep_nesting_round_trips() {
    // 500 levels of alternating arrays and single-key objects: recursion
    // in the parser, the writer, and the recursive Drop all survive it.
    let mut v = Json::U64(7);
    for depth in 0..500u32 {
        v = if depth % 2 == 0 {
            Json::Array(vec![v])
        } else {
            let mut o = Json::obj();
            o.set("k", v);
            o
        };
    }
    let text = v.pretty();
    let parsed = Json::parse(&text).expect("deeply nested document parses");
    assert_eq!(parsed, v);
    assert_eq!(parsed.pretty(), text);
}

#[test]
fn truncated_input_is_rejected() {
    // A document that ends in a closing brace has no valid proper prefix,
    // so every truncation point must be a parse error — never a silent
    // partial value (a truncated BENCH baseline must fail loudly).
    let mut doc = Json::obj();
    doc.set("schema", Json::Str("x/v1".into()));
    doc.set("list", Json::Array(vec![Json::U64(1), Json::Bool(true), Json::Null]));
    doc.set("nested", {
        let mut o = Json::obj();
        o.set("f", Json::F64(2.5));
        o
    });
    let text = doc.pretty();
    let text = text.trim_end(); // the trailing newline is a valid suffix to drop
    for cut in 0..text.len() {
        if !text.is_char_boundary(cut) {
            continue;
        }
        assert!(
            Json::parse(&text[..cut]).is_err(),
            "prefix of {cut} bytes parsed as a complete document"
        );
    }

    // Truncation inside escapes and literals.
    for bad in ["\"\\", "\"\\u", "\"\\u00", "\"abc", "tru", "nul", "fals", "-", "[1,", "{\"a\":"] {
        assert!(Json::parse(bad).is_err(), "{bad:?} accepted");
    }
}

#[test]
fn number_edge_cases() {
    // u64 boundary values stay exact; past the boundary falls to f64.
    assert_eq!(Json::parse("18446744073709551615").unwrap(), Json::U64(u64::MAX));
    assert!(matches!(Json::parse("18446744073709551616").unwrap(), Json::F64(_)));
    assert_eq!(Json::parse("1e3").unwrap(), Json::F64(1000.0));
    assert_eq!(Json::parse("-0.25").unwrap(), Json::F64(-0.25));
    // Whitespace tolerance around every token.
    let spaced = " { \"a\" :\t[ 1 ,\n null , \"s\" ] } ";
    let mut want = Json::obj();
    want.set("a", Json::Array(vec![Json::U64(1), Json::Null, Json::Str("s".into())]));
    assert_eq!(Json::parse(spaced).unwrap(), want);
}

/// A minimal valid `dnsimpact-suite/v1` report: two Suite A cells, one
/// Suite B scale with a single process, accounting consistent.
fn tiny_suite_report() -> SuiteReport {
    let cell = |jobs: u64, wall: u64| SuiteACell {
        cell: format!("A/repro/scale750/jobs{jobs}"),
        kind: "repro".into(),
        scale: 750,
        jobs,
        wall_ms: wall,
        peak_rss_kb: 4_096,
        records: 1_000,
        records_per_sec: 1_000.0 * 1_000.0 / wall as f64,
        fingerprint: "0x00c5330b6d65f1a2".into(),
    };
    let mut one = Hist::new();
    one.record(17);
    SuiteReport {
        meta: SuiteMeta { seed: 1, date: "2026-08-08".into(), suites: "all".into(), processes: 3 },
        suite_a: vec![cell(1, 200), cell(2, 100)],
        suite_b: vec![SuiteBScale {
            scale: 750,
            processes: 1,
            wall_ms: Percentiles::of(&one),
            peak_rss_kb: Percentiles::of(&one),
            records_per_sec: Percentiles::of(&one),
            merged: [("time.span.join".to_string(), one.clone())].into_iter().collect(),
        }],
        verdicts: vec![Verdict {
            cell: "A/repro/scale750".into(),
            pass: true,
            detail: "fingerprints agree".into(),
        }],
    }
}

#[test]
fn suite_report_round_trips_byte_stable() {
    // The suite summary is a fixed point of parse ∘ pretty, and the
    // parsed structs match the originals — same contract as the BENCH
    // baseline files.
    let report = tiny_suite_report();
    let text = report.to_json().pretty();
    let doc = Json::parse(&text).expect("suite report parses");
    obs::suite::validate(&doc).expect("suite report validates");
    let back = SuiteReport::from_json(&doc).expect("suite report deserializes");
    assert_eq!(back, report);
    assert_eq!(back.to_json().pretty(), text);
}

#[test]
fn truncated_suite_report_is_rejected() {
    // Every proper prefix of the on-disk form must fail to parse — a
    // torn SUITE_*.json write can never validate as a smaller report.
    let text = report_text_trimmed();
    for cut in (0..text.len()).step_by(7) {
        if !text.is_char_boundary(cut) {
            continue;
        }
        assert!(
            Json::parse(&text[..cut]).is_err(),
            "prefix of {cut} bytes parsed as a complete suite report"
        );
    }
}

fn report_text_trimmed() -> String {
    let text = tiny_suite_report().to_json().pretty();
    text.trim_end().to_string()
}

#[test]
fn malformed_suite_reports_name_their_defects() {
    // Structurally valid JSON with broken semantics is rejected with an
    // error that names the offending field, never accepted quietly.
    type Mutation = fn(&mut SuiteReport);
    let mutations: &[(&str, Mutation)] = &[
        ("meta.processes", |r| r.meta.processes = 99),
        ("suite_a duplicate cells", |r| {
            let dup = r.suite_a[1].cell.clone();
            r.suite_a[0].cell = dup;
        }),
        // NaN serializes as null, so the document is valid JSON with a
        // non-numeric rate.
        ("records_per_sec", |r| r.suite_a[0].records_per_sec = f64::NAN),
        ("suite B percentile/process mismatch", |r| r.suite_b[0].processes = 7),
        ("meta.suites vocabulary", |r| r.meta.suites = "everything".into()),
    ];
    for (what, mutate) in mutations {
        let mut report = tiny_suite_report();
        mutate(&mut report);
        let doc = report.to_json();
        let errors = obs::suite::validate(&doc).expect_err(&format!("{what} accepted"));
        assert!(!errors.is_empty(), "{what}: no error reported");
        assert!(SuiteReport::from_json(&doc).is_err(), "{what}: from_json accepted it");
    }

    // A merged histogram whose claimed p99 disagrees with its buckets —
    // mutated at the text level, the way a corrupted file would arrive.
    let text = tiny_suite_report().to_json().pretty();
    assert!(text.contains("\"p99\": 31"), "fixture drifted: {text}");
    let lying = text.replace("\"p99\": 31", "\"p99\": 1000000");
    let doc = Json::parse(&lying).expect("still valid JSON");
    let errors = obs::suite::validate(&doc).expect_err("lying merged p99 accepted");
    assert!(
        errors.iter().any(|e| e.contains("p99")),
        "errors do not name the lying percentile: {errors:?}"
    );
}

#[test]
fn unknown_schema_suite_report_is_rejected() {
    // A future or typo'd schema id must fail validation outright — the
    // validator owns exactly `dnsimpact-suite/v1`.
    for bad in ["dnsimpact-suite/v2", "dnsimpact-sweep/v1", ""] {
        let mut doc = tiny_suite_report().to_json();
        doc.set("schema", Json::Str(bad.into()));
        let errors = obs::suite::validate(&doc).unwrap_err();
        assert!(
            errors.iter().any(|e| e.contains("schema")),
            "schema {bad:?}: errors do not mention the schema field: {errors:?}"
        );
    }
    let mut doc = tiny_suite_report().to_json();
    let Json::Object(pairs) = std::mem::replace(&mut doc, Json::Null) else { unreachable!() };
    let doc = Json::Object(pairs.into_iter().filter(|(k, _)| k != "schema").collect());
    assert!(obs::suite::validate(&doc).is_err(), "schema-less report accepted");
}

/// Generator for arbitrary `Json` trees, depth-bounded so generation
/// terminates. Floats are kept finite and non-integral: non-finite
/// values serialize as `null` and integral floats print without a '.'
/// and legitimately re-parse as `U64` — both are intentional one-way
/// normalizations, not round-trip targets.
struct ArbJson {
    depth: u32,
}

fn gen_string(rng: &mut TestRng) -> String {
    Strategy::generate(&"[ -~\n\t]{0,12}", rng)
}

fn gen_json(rng: &mut TestRng, depth: u32) -> Json {
    let leaf_only = depth == 0;
    let pick = rng.next_u64() % if leaf_only { 5 } else { 7 };
    match pick {
        0 => Json::Null,
        1 => Json::Bool(rng.next_u64().is_multiple_of(2)),
        2 => Json::U64(rng.next_u64()),
        3 => {
            let f = Strategy::generate(&(0.0f64..1.0), rng) + 0.5;
            Json::F64(if f.fract() == 0.0 { 0.25 } else { f })
        }
        4 => Json::Str(gen_string(rng)),
        5 => {
            let n = rng.next_u64() % 4;
            Json::Array((0..n).map(|_| gen_json(rng, depth - 1)).collect())
        }
        _ => {
            let n = rng.next_u64() % 4;
            Json::Object((0..n).map(|_| (gen_string(rng), gen_json(rng, depth - 1))).collect())
        }
    }
}

impl Strategy for ArbJson {
    type Value = Json;
    fn generate(&self, rng: &mut TestRng) -> Json {
        gen_json(rng, self.depth)
    }
}

proptest! {
    #[test]
    fn arbitrary_documents_round_trip(doc in ArbJson { depth: 4 }) {
        let text = doc.pretty();
        let parsed = Json::parse(&text)
            .map_err(|e| proptest::test_runner::TestCaseError::fail(format!("{text:?}: {e}")))?;
        prop_assert_eq!(&parsed, &doc);
        // Re-serialization is byte-identical: the on-disk form is a
        // fixed point of parse ∘ pretty.
        prop_assert_eq!(parsed.pretty(), text);
    }
}
