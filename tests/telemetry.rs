//! Telemetry-plane invariants that back the live `/metricsz` surface:
//!
//! 1. `obs::hist::merge` is *exact* — recording a sample stream split
//!    across any number of per-writer histograms and merging equals
//!    recording the whole stream into one histogram (property-tested
//!    over arbitrary streams and partitions, in arbitrary merge order).
//! 2. Per-route registry histograms survive concurrent writers without
//!    losing or cross-routing samples.
//! 3. The tick ring ([`obs::TsStore`]) never double-counts a sample
//!    across ring wrap: for every window width, the conservation law
//!    `evicted_sum + Σ window deltas == cumulative` holds exactly.

use obs::hist::merge;
use obs::{Hist, TsStore};
use proptest::prelude::*;
use proptest::{Strategy, TestRng};
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

const WRITERS: usize = 4;

/// A sample stream with a writer assignment per sample: the interleaving
/// of `WRITERS` concurrent recorders, flattened in arrival order.
#[derive(Debug)]
struct Interleaving {
    samples: Vec<(u64, usize)>,
}

struct ArbInterleaving;

impl Strategy for ArbInterleaving {
    type Value = Interleaving;
    fn generate(&self, rng: &mut TestRng) -> Interleaving {
        let n = 1 + (rng.next_u64() % 300) as usize;
        let samples = (0..n)
            .map(|_| {
                // Span the full bucket range: log2 buckets care about
                // magnitude, so mix tiny and huge values.
                let shift = (rng.next_u64() % 64) as u32;
                let v = rng.next_u64() >> shift;
                (v, (rng.next_u64() % WRITERS as u64) as usize)
            })
            .collect();
        Interleaving { samples }
    }
}

proptest! {
    /// Interleaved recording-then-merging equals sequential recording,
    /// whatever the stream, the partition, or the merge order.
    #[test]
    fn merged_partitions_equal_sequential_recording(il in ArbInterleaving) {
        let mut sequential = Hist::new();
        let mut parts: Vec<Hist> = (0..WRITERS).map(|_| Hist::new()).collect();
        for &(v, w) in &il.samples {
            sequential.record(v);
            parts[w].record(v);
        }

        let forward = merge(parts.iter());
        prop_assert_eq!(forward.to_json().pretty(), sequential.to_json().pretty());

        // Merge order must not matter (the exposition merges snapshots
        // in whatever order the registry iterates).
        let backward = merge(parts.iter().rev());
        prop_assert_eq!(backward.to_json().pretty(), sequential.to_json().pretty());

        // Folding pairwise into an accumulator is the same operation.
        let mut folded = Hist::new();
        for p in &parts {
            folded.merge_from(p);
        }
        prop_assert_eq!(folded.to_json().pretty(), sequential.to_json().pretty());
    }

    /// Ring-wrap conservation, property-tested: arbitrary tick count,
    /// ring capacity, and per-tick increments — every window width of
    /// every series satisfies `evicted_sum + Σ values == cumulative`,
    /// so no sample is counted twice (or dropped) across wrap.
    #[test]
    fn ring_wrap_conserves_deltas(spec in (1usize..8, 1usize..40, 0u64..50)) {
        let (cap, ticks, salt) = spec;
        let mut store = TsStore::new(cap);
        let mut cum = 0u64;
        for t in 0..ticks as u64 {
            // Deterministic but irregular increments, including zeros.
            cum += (t * 7 + salt) % 5;
            let mut counters = BTreeMap::new();
            counters.insert("live.records".to_string(), cum);
            let mut levels = BTreeMap::new();
            levels.insert("live.ingest_lag".to_string(), ticks as u64 - t);
            store.observe(t + 1, 0, &counters, &levels);
        }
        store.check_conservation().map_err(proptest::test_runner::TestCaseError::fail)?;
        for last_n in 1..=ticks + 2 {
            let w = store.series("live.records", last_n).expect("known series");
            let windowed: u64 = w.values.iter().sum();
            prop_assert_eq!(w.evicted_sum + windowed, cum);
            prop_assert_eq!(w.cumulative, cum);
        }
    }
}

/// Concurrent writers into the same per-route registry histograms: no
/// sample lost, none attributed to the wrong route. Mirrors the daemon's
/// HTTP workers recording latency into `sched.daemon.http.latency_us.*`.
#[test]
fn per_route_histograms_survive_concurrent_writers() {
    // Unique names so other tests in this binary can't collide.
    const ROUTES: [&str; 2] =
        ["test.telemetry.latency_us.query", "test.telemetry.latency_us.statz"];
    const PER_WRITER: u64 = 5_000;

    let go = Arc::new(AtomicBool::new(false));
    let handles: Vec<_> = (0..WRITERS)
        .map(|w| {
            let go = Arc::clone(&go);
            std::thread::spawn(move || {
                while !go.load(Ordering::Acquire) {
                    std::hint::spin_loop();
                }
                for i in 0..PER_WRITER {
                    // Writer w sends even samples to route 0, odd to
                    // route 1, with values spread across buckets.
                    let route = ROUTES[(i % 2) as usize];
                    obs::histogram(route).record((w as u64 + 1) << (i % 20));
                }
            })
        })
        .collect();
    go.store(true, Ordering::Release);
    for h in handles {
        h.join().expect("writer thread panicked");
    }

    // Rebuild each route's expected histogram sequentially and compare
    // bucket-for-bucket via the snapshot.
    for (r, route) in ROUTES.iter().enumerate() {
        let mut expected = Hist::new();
        for w in 0..WRITERS as u64 {
            for i in 0..PER_WRITER {
                if (i % 2) as usize == r {
                    expected.record((w + 1) << (i % 20));
                }
            }
        }
        let snap = obs::histogram(route).snapshot();
        let got = Hist::from_snapshot(&snap).expect("snapshot converts");
        assert_eq!(got.count(), (WRITERS as u64 * PER_WRITER) / 2, "route {route}: lost samples");
        assert_eq!(
            got.to_json().pretty(),
            expected.to_json().pretty(),
            "route {route}: concurrent recording diverged from sequential"
        );
    }
}

/// Deterministic ring-wrap walkthrough at the exact tick boundary: the
/// tick that evicts the oldest entry moves that entry's delta into
/// `evicted_sum` and nowhere else.
#[test]
fn tick_boundary_moves_deltas_to_evicted_exactly_once() {
    let mut store = TsStore::new(3);
    let increments = [10u64, 20, 30, 40, 50];
    let mut cum = 0u64;
    for (t, inc) in increments.iter().enumerate() {
        cum += inc;
        let mut counters = BTreeMap::new();
        counters.insert("live.batches".to_string(), cum);
        store.observe(t as u64 + 1, 0, &counters, &BTreeMap::new());

        let w = store.series("live.batches", usize::MAX).expect("known series");
        let retained: u64 = w.values.iter().sum();
        assert_eq!(w.evicted_sum + retained, cum, "after tick {}", t + 1);
    }
    // Ticks 1 and 2 (deltas 10, 20) were evicted; 3..5 retained.
    assert_eq!(store.evicted_ticks(), 2);
    let w = store.series("live.batches", usize::MAX).unwrap();
    assert_eq!(w.evicted_sum, 30);
    assert_eq!(w.values, vec![30, 40, 50]);
    assert_eq!(w.cumulative, 150);

    // A narrower window folds retained-but-excluded ticks into its own
    // evicted_sum — still exactly once.
    let w = store.series("live.batches", 2).unwrap();
    assert_eq!(w.evicted_sum, 60);
    assert_eq!(w.values, vec![40, 50]);
    assert_eq!(w.cumulative, 150);
    store.check_conservation().expect("conservation holds");
}
