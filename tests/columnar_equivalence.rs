//! Differential lock between the row-based reference pipeline and the
//! columnar hot path (DESIGN §11).
//!
//! The columnar join/impact rewrite is only allowed to be a *layout*
//! change: for any feed, any NSSet table, any worker count, and any
//! chaos seed, `JoinTable::build(..).to_events()` must equal
//! `join_episodes_sharded(..)` byte-for-byte (f64s included — `Debug`
//! prints the shortest round-tripping form), `compute_impacts_columnar`
//! must equal `compute_impacts_with_jobs`, and the two paths must emit
//! identical deterministic metrics deltas and causal-trace event streams.
//! Proptest generates the worlds and feeds; fixed seeds make every case
//! reproducible.
//!
//! The metrics registry and trace ring are process-global, so every test
//! in this binary serializes on [`LOCK`] — counter deltas taken inside a
//! test would otherwise see a concurrent test's increments.

use std::net::Ipv4Addr;
use std::sync::{Mutex, MutexGuard, OnceLock};

use dnsimpact::prelude::*;
use dnsimpact_core::columnar::JoinTable;
use dnsimpact_core::impact::compute_impacts_columnar;
use dnsimpact_core::impact::compute_impacts_with_jobs;
use dnsimpact_core::join::join_episodes_sharded_traced;
use proptest::prelude::*;
use telescope::{AttackEpisode, EpisodeColumns};

fn lock() -> MutexGuard<'static, ()> {
    static LOCK: OnceLock<Mutex<()>> = OnceLock::new();
    // A test that panicked while holding the lock has already failed;
    // later tests may still run on fresh state.
    LOCK.get_or_init(|| Mutex::new(())).lock().unwrap_or_else(|e| e.into_inner())
}

// ---------------------------------------------------------------------
// Generators
// ---------------------------------------------------------------------

/// A generated authoritative world: which /24 each nameserver sits in,
/// how NSSets draw from the nameserver pool, and how many domains each
/// set serves (0 domains is a valid, join-relevant edge).
#[derive(Clone, Debug)]
struct WorldSpec {
    ns: Vec<(bool, u8)>,
    nssets: Vec<Vec<usize>>,
    domains: Vec<u8>,
}

fn world_spec() -> impl Strategy<Value = WorldSpec> {
    (
        prop::collection::vec((any::<bool>(), 0u8..3), 1..5),
        prop::collection::vec(prop::collection::vec(0usize..8, 1..4), 1..5),
        prop::collection::vec(0u8..25, 1..5),
    )
        .prop_map(|(ns, nssets, domains)| WorldSpec { ns, nssets, domains })
}

/// One generated episode: victim kind (0 = nameserver address, 1 = same
/// /24 as the clustered nameservers, anything else = non-DNS noise), a
/// pick within the kind, the onset window, and the duration in windows.
type EpisodeSpec = (u8, u8, u64, u64);

fn episode_spec() -> impl Strategy<Value = EpisodeSpec> {
    // Windows span day 0 (exercising `day.saturating_sub(day_offset)`)
    // through day ~37, inside the measurement sweep's range.
    (0u8..4, any::<u8>(), 0u64..288 * 37, 0u64..6)
}

/// Deterministically build the world a [`WorldSpec`] describes.
fn build_world(spec: &WorldSpec) -> (Infra, Vec<Ipv4Addr>, Vec<NsSetId>) {
    let mut infra = Infra::new();
    let mut addrs: Vec<Ipv4Addr> = Vec::new();
    let mut ids: Vec<NsId> = Vec::new();
    for (i, &(clustered, asn)) in spec.ns.iter().enumerate() {
        // Clustered nameservers share 195.135.195.0/24 (the collateral
        // neighbourhood); the rest are spread across distinct /24s.
        let addr: Ipv4Addr = if clustered {
            format!("195.135.195.{}", 10 + i).parse().unwrap()
        } else {
            format!("203.0.{}.53", 100 + i).parse().unwrap()
        };
        ids.push(infra.add_nameserver(
            format!("ns{i}.example.net").parse().unwrap(),
            addr,
            Asn(64_500 + asn as u32),
            Deployment::Unicast,
            10_000.0,
            100.0,
            15.0,
        ));
        addrs.push(addr);
    }
    let mut sets = Vec::new();
    for (si, members) in spec.nssets.iter().enumerate() {
        let mut m: Vec<NsId> = members.iter().map(|&j| ids[j % ids.len()]).collect();
        m.sort_unstable();
        m.dedup();
        let set = infra.intern_nsset(m);
        sets.push(set);
        for d in 0..spec.domains.get(si).copied().unwrap_or(5) {
            infra.add_domain(format!("s{si}d{d}.nl").parse().unwrap(), set);
        }
    }
    (infra, addrs, sets)
}

/// Materialize the episode feed against a world's address plan.
fn build_feed(specs: &[EpisodeSpec], addrs: &[Ipv4Addr]) -> Vec<AttackEpisode> {
    specs
        .iter()
        .map(|&(kind, pick, w, dur)| {
            let victim: Ipv4Addr = match kind {
                0 | 3 => addrs[pick as usize % addrs.len()],
                1 => format!("195.135.195.{}", 200 + pick % 50).parse().unwrap(),
                _ => format!("8.{pick}.{}.1", pick ^ 0x5a).parse().unwrap(),
            };
            AttackEpisode {
                victim,
                first_window: Window(w),
                last_window: Window(w + dur),
                packets: 1_000 + pick as u64,
                peak_ppm: 100.0 + pick as f64,
                protocol: if pick % 2 == 0 { Protocol::Tcp } else { Protocol::Udp },
                first_port: 53,
                unique_ports: 1 + (pick % 3) as u16,
                slash16s: 10,
            }
        })
        .collect()
}

fn census_of(infra: &Infra) -> AnycastCensus {
    AnycastCensus::from_ground_truth(
        infra,
        AnycastCensus::paper_snapshot_dates(),
        1.0,
        &RngFactory::new(1),
    )
}

/// Offered load for the impact model: every episode loads its victim over
/// its own windows, hard enough to matter when the victim is a nameserver.
fn loads_for(eps: &[AttackEpisode]) -> LoadBook {
    let mut loads = LoadBook::new();
    for e in eps {
        for w in e.first_window.0..=e.last_window.0 {
            loads.add(e.victim, Window(w), 47_000.0);
        }
    }
    loads
}

// ---------------------------------------------------------------------
// Satellite 1a: the join is a pure layout change
// ---------------------------------------------------------------------

proptest! {
    #[test]
    fn columnar_join_equals_row_join(
        wspec in world_spec(),
        especs in prop::collection::vec(episode_spec(), 0..12),
        mark_open_resolver in any::<bool>(),
    ) {
        let _guard = lock();
        let (infra, addrs, _) = build_world(&wspec);
        let eps = build_feed(&especs, &addrs);
        let cols = EpisodeColumns::from_episodes(&eps);
        let mut open = OpenResolverList::new();
        if mark_open_resolver {
            open.add(addrs[0]);
        }
        for include_collateral in [false, true] {
            for day_offset in [0u64, 1] {
                for jobs in [1usize, 2, 8] {
                    let reference = join_episodes_sharded_traced(
                        &infra, &infra, &eps, &open, include_collateral, day_offset, jobs, None,
                    );
                    let table = JoinTable::build(
                        &infra, &infra, &cols, &open, include_collateral, day_offset, jobs, None,
                    );
                    let events = table.to_events();
                    prop_assert_eq!(
                        format!("{events:?}"),
                        format!("{reference:?}"),
                        "collateral={} day_offset={} jobs={}",
                        include_collateral, day_offset, jobs
                    );
                }
            }
        }
    }
}

// ---------------------------------------------------------------------
// Satellite 1b: impacts and measurement stores agree, bit for bit
// ---------------------------------------------------------------------

/// Compare two measurement stores over every (NSSet, window) cell and
/// (NSSet, day) aggregate either run could have touched. The stores are
/// HashMap-backed, so equality is checked cell-wise through the stats
/// accessors (whose `Debug` includes the RTT moment sums — f64 bits).
fn assert_stores_match(
    a: &MeasurementStore,
    b: &MeasurementStore,
    sets: &[NsSetId],
    eps: &[AttackEpisode],
    ctx: &str,
) -> Result<(), TestCaseError> {
    let last = eps.iter().map(|e| e.last_window.0).max().unwrap_or(0);
    for &set in sets {
        for w in 0..=last {
            let (x, y) = (a.window_stats(set, Window(w)), b.window_stats(set, Window(w)));
            prop_assert_eq!(
                format!("{x:?}"),
                format!("{y:?}"),
                "window cell ({:?}, {}) differs: {}",
                set,
                w,
                ctx
            );
        }
        for day in 0..=Window(last).day() {
            let (x, y) = (a.day_stats(set, day), b.day_stats(set, day));
            prop_assert_eq!(
                format!("{x:?}"),
                format!("{y:?}"),
                "day aggregate ({:?}, {}) differs: {}",
                set,
                day,
                ctx
            );
        }
    }
    Ok(())
}

proptest! {
    #[test]
    fn columnar_impacts_equal_row_impacts(
        wspec in world_spec(),
        especs in prop::collection::vec(episode_spec(), 0..8),
        seed in 0u64..1_000,
        chaos in prop_oneof![Just(None), (1u64..100).prop_map(Some)],
    ) {
        let _guard = lock();
        let (infra, addrs, sets) = build_world(&wspec);
        let eps = build_feed(&especs, &addrs);
        let cols = EpisodeColumns::from_episodes(&eps);
        let open = OpenResolverList::new();
        let loads = loads_for(&eps);
        let census = census_of(&infra);
        let schedule = SweepSchedule::new(1);
        let rngs = RngFactory::new(seed);
        let config = ImpactConfig {
            min_domains_measured: 1, // surface even tiny NSSets as events
            chaos_seed: chaos,
            ..ImpactConfig::default()
        };

        let events = join_episodes_sharded_traced(&infra, &infra, &eps, &open, true, 1, 1, None);
        let table = JoinTable::build(&infra, &infra, &cols, &open, true, 1, 1, None);

        let (ref_impacts, ref_store) = compute_impacts_with_jobs(
            &infra, &schedule, &Resolver::default(), &loads, &eps, &events,
            &census, &rngs, &config, 1,
        );
        for jobs in [1usize, 8] {
            let (impacts, store) = compute_impacts_columnar(
                &infra, &schedule, &Resolver::default(), &loads, &cols, &table,
                &census, &rngs, &config, jobs,
            );
            let ctx = format!("jobs={jobs} chaos={chaos:?}");
            prop_assert_eq!(
                format!("{impacts:?}"),
                format!("{ref_impacts:?}"),
                "impact rows differ: {}",
                &ctx
            );
            assert_stores_match(&store, &ref_store, &sets, &eps, &ctx)?;
        }
    }
}

// ---------------------------------------------------------------------
// Satellite 1c: deterministic metrics deltas and trace streams agree
// ---------------------------------------------------------------------

/// Deterministic counter increments between two registry snapshots.
fn det_counter_delta(before: &obs::Snapshot, after: &obs::Snapshot) -> Vec<(String, u64)> {
    let (b, a) = (before.deterministic(), after.deterministic());
    a.counters
        .into_iter()
        .map(|(k, v)| {
            let d = v - b.counters.get(&k).copied().unwrap_or(0);
            (k, d)
        })
        .filter(|&(_, d)| d != 0)
        .collect()
}

/// Run one full join+impact pass (row or columnar) under a trace scope
/// and return (event debug, impact debug, deterministic counter deltas,
/// deterministic trace lines).
#[allow(clippy::too_many_arguments)]
fn traced_pass(
    columnar: bool,
    infra: &Infra,
    eps: &[AttackEpisode],
    loads: &LoadBook,
    census: &AnycastCensus,
    schedule: &SweepSchedule,
    rngs: &RngFactory,
    config: &ImpactConfig,
) -> (String, String, Vec<(String, u64)>, Vec<String>) {
    const SCOPE: &str = "diff";
    let open = OpenResolverList::new();
    obs::trace::reset();
    let before = obs::registry().snapshot();
    let (events_dbg, impacts_dbg) = if columnar {
        let cols = EpisodeColumns::from_episodes(eps);
        let table = JoinTable::build(infra, infra, &cols, &open, true, 1, 8, Some(SCOPE));
        let (impacts, _) = compute_impacts_columnar(
            infra,
            schedule,
            &Resolver::default(),
            loads,
            &cols,
            &table,
            census,
            rngs,
            config,
            8,
        );
        (format!("{:?}", table.to_events()), format!("{impacts:?}"))
    } else {
        let events =
            join_episodes_sharded_traced(infra, infra, eps, &open, true, 1, 1, Some(SCOPE));
        let (impacts, _) = compute_impacts_with_jobs(
            infra,
            schedule,
            &Resolver::default(),
            loads,
            eps,
            &events,
            census,
            rngs,
            config,
            1,
        );
        (format!("{events:?}"), format!("{impacts:?}"))
    };
    let after = obs::registry().snapshot();
    let lines: Vec<String> =
        obs::trace::snapshot().iter().map(|e| e.deterministic_line()).collect();
    (events_dbg, impacts_dbg, det_counter_delta(&before, &after), lines)
}

#[test]
fn metrics_and_trace_streams_match_reference() {
    let _guard = lock();
    // A fixed mid-size world: clustered + spread nameservers, overlapping
    // NSSets, and a feed mixing direct hits, /24 collateral, repeats, and
    // noise — every join/impact trace emission site fires.
    let spec = WorldSpec {
        ns: vec![(true, 0), (true, 1), (false, 2)],
        nssets: vec![vec![0, 1], vec![0], vec![1, 2]],
        domains: vec![20, 8, 12],
    };
    let (infra, addrs, _) = build_world(&spec);
    let mut especs: Vec<EpisodeSpec> = vec![
        (0, 0, 3 * 288 + 100, 5), // direct hit, day 3
        (0, 1, 4 * 288, 3),       // direct hit, day 4
        (1, 7, 5 * 288 + 10, 2),  // /24 collateral neighbour
        (2, 9, 288, 1),           // noise
        (0, 0, 9 * 288, 4),       // repeat victim, day 9
    ];
    // Enough extra episodes that the jobs=8 join actually shards.
    for i in 0..12u8 {
        especs.push((2, i, 288 * (6 + i as u64), 1));
    }
    let eps = build_feed(&especs, &addrs);
    let loads = loads_for(&eps);
    let census = census_of(&infra);
    let schedule = SweepSchedule::new(1);
    let rngs = RngFactory::new(42);
    let config = ImpactConfig {
        min_domains_measured: 1,
        trace_scope: Some("diff"),
        ..ImpactConfig::default()
    };

    let run =
        |columnar| traced_pass(columnar, &infra, &eps, &loads, &census, &schedule, &rngs, &config);
    let (ref_events, ref_impacts, ref_counters, ref_lines) = run(false);
    let (col_events, col_impacts, col_counters, col_lines) = run(true);

    assert!(!ref_impacts.is_empty() && ref_impacts != "[]", "scenario produced impact events");
    assert!(
        ref_lines.iter().any(|l| l.contains("JoinMatched") || l.contains("join")),
        "join emitted trace events: {ref_lines:?}"
    );
    assert_eq!(col_events, ref_events, "joined events differ");
    assert_eq!(col_impacts, ref_impacts, "impact rows differ");
    assert_eq!(
        col_counters, ref_counters,
        "deterministic counter deltas differ between row and columnar paths"
    );
    assert!(
        ref_counters.iter().any(|(k, v)| k == "join.rows_joined" && *v > 0),
        "the pass actually joined rows: {ref_counters:?}"
    );
    assert_eq!(col_lines, ref_lines, "deterministic trace streams differ");

    // The chaos knob may not alter any of it: same columnar pass, faults
    // injected and recovered, byte-identical outputs and deterministic
    // deltas (chaos accounting itself lives under `chaos.` and is ignored
    // here by comparing only the non-chaos names).
    let chaos_config = ImpactConfig { chaos_seed: Some(1337), ..config };
    let (ch_events, ch_impacts, ch_counters, ch_lines) =
        traced_pass(true, &infra, &eps, &loads, &census, &schedule, &rngs, &chaos_config);
    let strip_chaos = |v: &[(String, u64)]| -> Vec<(String, u64)> {
        v.iter().filter(|(k, _)| !k.starts_with("chaos.")).cloned().collect()
    };
    assert_eq!(ch_events, ref_events, "chaos changed the joined events");
    assert_eq!(ch_impacts, ref_impacts, "chaos changed the impact rows");
    assert_eq!(strip_chaos(&ch_counters), strip_chaos(&col_counters), "chaos perturbed counters");
    assert_eq!(ch_lines, ref_lines, "chaos changed the trace stream");
}
