//! The paper's §4.3 limitations, demonstrated — not idealized away — in
//! the reproduction. Each test shows a blind spot of the methodology
//! existing in our pipeline too.

use dnsimpact::prelude::*;
use dnswire::Record;
use std::sync::Arc;

fn trio_world() -> (Infra, DomainId, Vec<std::net::Ipv4Addr>) {
    let mut infra = Infra::new();
    let addrs: Vec<std::net::Ipv4Addr> =
        (0..3).map(|i| format!("198.51.{i}.53").parse().unwrap()).collect();
    let ids: Vec<NsId> = addrs
        .iter()
        .enumerate()
        .map(|(i, &a)| {
            infra.add_nameserver(
                format!("ns{i}.host.net").parse().unwrap(),
                a,
                Asn(64500),
                Deployment::Unicast,
                50_000.0,
                1_000.0,
                20.0,
            )
        })
        .collect();
    let set = infra.intern_nsset(ids);
    let d = infra.add_domain("victim.example".parse().unwrap(), set);
    (infra, d, addrs)
}

/// Limitation 3: reflection and direct attacks are invisible to the
/// telescope, yet they impair resolution — so telescope intensity cannot
/// predict impact.
#[test]
fn multi_vector_blind_spot() {
    let (infra, domain, addrs) = trio_world();
    let rngs = RngFactory::new(1);
    // A pure-reflection attack saturating all three servers.
    let attack = Attack {
        id: AttackId(0),
        target: addrs[0],
        start: SimTime::from_days(2),
        duration: SimDuration::from_hours(1),
        vectors: vec![VectorSpec {
            kind: VectorKind::Reflection,
            protocol: Protocol::Udp,
            ports: vec![53],
            victim_pps: 5_000_000.0,
            source_count: 3_000,
        }],
    };
    // The telescope sees NOTHING.
    let darknet = Darknet::ucsd_like();
    let obs = BackscatterSampler::new(&darknet).sample(std::slice::from_ref(&attack), &rngs);
    assert!(obs.is_empty(), "reflection produces no darknet backscatter");

    // But resolution through the attacked server fails.
    let mut loads = LoadBook::new();
    for (addr, w, pps) in accumulate_windows(&[attack]) {
        loads.add(addr, w, pps);
    }
    let w = (SimTime::from_days(2) + SimDuration::from_mins(30)).window();
    let ns = infra.ns_by_addr(addrs[0]).unwrap();
    let state = infra.service_state(ns, w, &loads);
    assert!(state.answer_prob < 0.05, "the invisible attack still kills the server");
    let _ = domain;
}

/// Limitation 4: from a single vantage point, anycast catchment masks
/// attacks — the diluted site the prober reaches looks healthy while the
/// attack is real (and visible in the feed).
#[test]
fn anycast_catchment_masks_impact() {
    let mut infra = Infra::new();
    let addr: std::net::Ipv4Addr = "198.51.7.53".parse().unwrap();
    let ns = infra.add_nameserver(
        "ns.anycast.net".parse().unwrap(),
        addr,
        Asn(64500),
        Deployment::Anycast { sites: 30 },
        100_000.0,
        1_000.0,
        10.0,
    );
    let set = infra.intern_nsset(vec![ns]);
    infra.add_domain("masked.example".parse().unwrap(), set);

    let rngs = RngFactory::new(2);
    let attack = Attack {
        id: AttackId(0),
        target: addr,
        start: SimTime::from_days(1),
        duration: SimDuration::from_hours(1),
        vectors: vec![VectorSpec {
            kind: VectorKind::RandomSpoofed,
            protocol: Protocol::Tcp,
            ports: vec![53],
            victim_pps: 900_000.0, // devastating in aggregate
            source_count: 5_000_000,
        }],
    };
    // Telescope: clearly visible, high intensity.
    let darknet = Darknet::ucsd_like();
    let obs = BackscatterSampler::new(&darknet).sample(std::slice::from_ref(&attack), &rngs);
    let records = RsdosClassifier::default().classify(&obs);
    assert!(!records.is_empty(), "the attack is loud in the feed");

    // Vantage point: the answering site absorbs only 1/30 of the attack →
    // barely any impact.
    let mut loads = LoadBook::new();
    for (a, w, pps) in accumulate_windows(&[attack]) {
        loads.add(a, w, pps);
    }
    let w = (SimTime::from_days(1) + SimDuration::from_mins(30)).window();
    let state = infra.service_state(ns, w, &loads);
    assert_eq!(state.answer_prob, 1.0);
    assert!(state.rtt_mult < 2.0, "catchment masks the attack: {state:?}");
}

/// Limitation 1: OpenINTEL's agnostic resolution cannot attribute an
/// answer to a specific nameserver — with one member dead, per-domain
/// outcomes mix all members and no per-server conclusion is possible from
/// status alone.
#[test]
fn agnostic_resolution_cannot_attribute() {
    let (infra, domain, addrs) = trio_world();
    let mut loads = LoadBook::new();
    let w = Window(600);
    loads.add(addrs[0], w, 50_000_000.0); // ns0 is dead
    let resolver = Resolver::default();
    let rngs = RngFactory::new(3);
    let mut rng = rngs.stream("agnostic");
    let mut ok = 0;
    let n = 500;
    for _ in 0..n {
        if resolver.resolve(&infra, domain, w, &loads, &mut rng).status == QueryStatus::Ok {
            ok += 1;
        }
    }
    // The aggregate hides the dead server almost completely: resolutions
    // still succeed via the healthy members.
    assert!(ok > n * 95 / 100, "aggregate looks healthy: {ok}/{n}");

    // The *reactive* NS-exhaustive prober, by contrast, pinpoints it.
    let infra = Arc::new(infra);
    let mut rng = rngs.stream("exhaustive");
    let probe = reactive::probe_all_ns(&infra, domain, w.start(), &loads, &mut rng);
    let dead: Vec<_> = probe.outcomes.iter().filter(|o| o.status != QueryStatus::Ok).collect();
    assert_eq!(dead.len(), 1, "exactly the attacked server is unresponsive");
}

/// Footnote 1 of §3.2: cached NS records let additional queries succeed
/// during an attack, *reducing* visibility of the real impact.
#[test]
fn caching_masks_attacks() {
    use dnssim::cache::{CacheKey, TtlCache};
    let (infra, domain, addrs) = trio_world();
    let name = infra.domain(domain).name.clone();

    // Before the attack: resolve and cache the NS RRset (TTL 3600).
    let mut cache = TtlCache::new();
    let t0 = SimTime::from_days(1);
    let records: Vec<Record> = infra
        .nsset(infra.domain(domain).nsset)
        .members()
        .iter()
        .map(|&ns| Record::new(name.clone(), 3_600, RData::Ns(infra.nameserver(ns).name.clone())))
        .collect();
    cache.put(CacheKey { name: name.clone(), rtype: RrType::Ns }, records, t0);

    // Attack starts 10 minutes later and kills everything.
    let mut loads = LoadBook::new();
    let t_attack = t0 + SimDuration::from_mins(10);
    for &a in &addrs {
        loads.add(a, t_attack.window(), 50_000_000.0);
    }
    // Fresh (uncached) resolution fails...
    let resolver = Resolver::default();
    let rngs = RngFactory::new(4);
    let mut rng = rngs.stream("cache-mask");
    let fresh = resolver.resolve(&infra, domain, t_attack.window(), &loads, &mut rng);
    assert_ne!(fresh.status, QueryStatus::Ok, "empty-cache resolution fails");
    // ...while the cached RRset still "answers" — the attack is invisible
    // to any measurement that consults the cache.
    let hit = cache.get(&CacheKey { name, rtype: RrType::Ns }, t_attack);
    assert!(hit.is_some(), "cache masks the outage until TTL expiry");
    // After TTL expiry the mask falls away.
    let later = t0 + SimDuration::from_hours(2);
    assert!(cache
        .get(&CacheKey { name: infra.domain(domain).name.clone(), rtype: RrType::Ns }, later)
        .is_none());
}

/// Limitation 2: the telescope only sees IPv4. During an IPv4 attack, a
/// dual-stack deployment on *separate* IPv6 infrastructure keeps serving
/// over v6 (limiting real-world impact), while shared-infrastructure
/// dual-stack degrades on both families — and the pipeline, measuring
/// over IPv4, cannot tell these cases apart.
#[test]
fn ipv6_blind_spot() {
    let mut infra = Infra::new();
    let mk = |infra: &mut Infra, i: u32| {
        infra.add_nameserver(
            format!("ns{i}.dual.net").parse().unwrap(),
            format!("198.51.{i}.53").parse().unwrap(),
            Asn(64500),
            Deployment::Unicast,
            50_000.0,
            1_000.0,
            20.0,
        )
    };
    let shared = mk(&mut infra, 0);
    let separate = mk(&mut infra, 1);
    let v4_only = mk(&mut infra, 2);
    infra.set_dual_stack(shared, true);
    infra.set_dual_stack(separate, false);

    let mut loads = LoadBook::new();
    let w = Window(100);
    for i in 0..3u32 {
        loads.add(format!("198.51.{i}.53").parse().unwrap(), w, 5_000_000.0);
    }
    // IPv4: everything is dead.
    for ns in [shared, separate, v4_only] {
        assert!(infra.service_state(ns, w, &loads).answer_prob < 0.05);
    }
    // IPv6: the separate-infrastructure server still answers; the
    // shared-infrastructure one is just as dead; the v4-only one has no
    // v6 path at all.
    let v6_sep = infra.service_state_v6(separate, w, &loads).unwrap();
    assert_eq!(v6_sep.answer_prob, 1.0, "separate v6 infra rides out the v4 attack");
    let v6_shared = infra.service_state_v6(shared, w, &loads).unwrap();
    assert!(v6_shared.answer_prob < 0.05, "shared infra degrades on both families");
    assert!(infra.service_state_v6(v4_only, w, &loads).is_none());
}

/// §9 future work: multiple vantage points pierce the anycast catchment
/// mask that blinds the single-vantage pipeline.
#[test]
fn multi_vantage_unmasks_what_single_vantage_misses() {
    use reactive::{probe_from_fleet, VantagePoint};
    let mut infra = Infra::new();
    let addr: std::net::Ipv4Addr = "198.51.7.53".parse().unwrap();
    let _ = infra.add_nameserver(
        "ns.anycast.net".parse().unwrap(),
        addr,
        Asn(64500),
        Deployment::Anycast { sites: 30 },
        100_000.0,
        1_000.0,
        10.0,
    );
    let set = infra.intern_nsset(vec![NsId(0)]);
    let d = infra.add_domain("masked.example".parse().unwrap(), set);
    let mut loads = LoadBook::new();
    let at = SimTime::from_days(1);
    loads.add(addr, at.window(), 1_200_000.0);

    let rngs = RngFactory::new(8);
    let mut rng = rngs.stream("vantage");
    // Single (paper-current) vantage: the attack is invisible.
    let single = VantagePoint::single_nl();
    let mut missed = 0;
    for _ in 0..30 {
        let mv = probe_from_fleet(&single, &infra, d, at, &loads, &mut rng);
        if mv.resolvable_from().len() == 1 {
            missed += 1;
        }
    }
    assert!(missed >= 28, "single vantage sees a healthy deployment: {missed}/30");
    // A fleet sees the regional damage.
    let fleet = VantagePoint::default_fleet();
    let mut unmasked = 0;
    for _ in 0..30 {
        let mv = probe_from_fleet(&fleet, &infra, d, at, &loads, &mut rng);
        if mv.masked_from_primary() {
            unmasked += 1;
        }
    }
    assert!(unmasked > 8, "the fleet exposes the masked attack: {unmasked}/30");
}

/// §6.1: open resolvers listed as NS by misconfigured domains are joined
/// by the naive pipeline and must be filtered.
#[test]
fn open_resolver_filter_is_load_bearing() {
    let mut infra = Infra::new();
    let quad8 = infra.add_nameserver(
        "dns.google".parse().unwrap(),
        "8.8.8.8".parse().unwrap(),
        Asn(15169),
        Deployment::Anycast { sites: 100 },
        10_000_000.0,
        100_000.0,
        4.0,
    );
    infra.mark_open_resolver(quad8);
    let set = infra.intern_nsset(vec![quad8]);
    infra.add_domain("misconfigured.example".parse().unwrap(), set);

    let episode = telescope::AttackEpisode {
        victim: "8.8.8.8".parse().unwrap(),
        first_window: Window(288),
        last_window: Window(300),
        packets: 1_000_000,
        peak_ppm: 50_000.0,
        protocol: Protocol::Tcp,
        first_port: 53,
        unique_ports: 1,
        slash16s: 190,
    };
    let naive = join_episodes(
        &infra,
        &infra,
        std::slice::from_ref(&episode),
        &OpenResolverList::new(),
        false,
    );
    assert_eq!(naive.len(), 1, "without the filter, Quad8 counts as DNS infra");
    let mut list = OpenResolverList::new();
    list.extend_from_infra(&infra);
    let filtered = join_episodes(&infra, &infra, &[episode], &list, false);
    assert!(filtered.is_empty(), "the scan-derived filter removes it");
}
