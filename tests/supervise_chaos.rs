//! Property lock on `streamproc::supervise` under combined fault classes
//! (DESIGN §9, §12): for any item vector, any chaos seed, and any fault
//! intensity mixing drops, duplicate/reordered delivery, late (held)
//! delivery, and mid-stream crashes with supervisor restarts, the
//! delivered output must equal the fault-free output exactly — order,
//! multiplicity, and values. The daemon's replay-determinism contract
//! rests on this: `dnsimpactd` feeds every batch through this transport,
//! so the index must be a pure function of the batch prefix no matter
//! what the chaos layer does in between.
//!
//! A deterministic companion test pins down that the property is not
//! vacuous: over a handful of fixed seeds, every fault class actually
//! fires (including restarts mid-stream, i.e. the supervisor resumed an
//! incarnation from its ack watermark at least once).
//!
//! The metrics registry and trace ring are process-global, so tests in
//! this binary serialize on [`lock`].

use std::sync::{Mutex, MutexGuard, OnceLock};

use proptest::prelude::*;
use streamproc::{
    reliable_stream, supervised_flat_map, ChaosConfig, FaultPlan, SuperviseStats, SupervisorConfig,
};

fn lock() -> MutexGuard<'static, ()> {
    static LOCK: OnceLock<Mutex<()>> = OnceLock::new();
    LOCK.get_or_init(|| Mutex::new(())).lock().unwrap_or_else(|e| e.into_inner())
}

/// The intensity grid the properties sweep. `HEAVY` turns every knob up
/// at once — drops, duplicates, long holds, and a near-certain crash per
/// incarnation — so combined-fault interactions (a held record crossing
/// a restart, a drop repaired after a late delivery) are exercised, not
/// just each class alone.
const HEAVY: ChaosConfig = ChaosConfig {
    drop_prob: 0.2,
    dup_prob: 0.2,
    hold_prob: 0.25,
    max_hold: 6,
    crash_prob: 0.9,
    max_crashes: 3,
};

fn intensity(choice: u8) -> ChaosConfig {
    match choice % 3 {
        0 => ChaosConfig::CALIBRATED,
        1 => ChaosConfig::SPARSE,
        _ => HEAVY,
    }
}

/// A supervisor with fast backoff so 128 proptest cases stay quick; the
/// restart budget still covers `HEAVY.max_crashes`.
fn quick_supervisor() -> SupervisorConfig {
    SupervisorConfig { backoff_base_ms: 0, backoff_cap_ms: 1, ..SupervisorConfig::default() }
}

/// The deterministic stage body used by the flat-map properties: output
/// size varies with the item (0, 1, or 2 records) so dedup and resume
/// are tested on a non-trivial seq→output mapping.
fn stage_body(i: u64, item: &u64) -> Vec<(u64, u64)> {
    match item % 3 {
        0 => vec![],
        1 => vec![(i, item.wrapping_mul(3))],
        _ => vec![(i, *item), (i, item.rotate_left(7))],
    }
}

proptest! {
    /// Transport level: `reliable_stream` returns the items exactly, in
    /// order, for any (items, seed, intensity).
    #[test]
    fn reliable_stream_is_exactly_once(
        items in prop::collection::vec(any::<u64>(), 0..160),
        seed in any::<u64>(),
        choice in any::<u8>(),
    ) {
        let _g = lock();
        let plan = FaultPlan::from_seed(seed, "prop-transport", intensity(choice));
        let (out, stats) =
            reliable_stream("prop-transport", items.clone(), Some(&plan), &quick_supervisor());
        prop_assert_eq!(&out, &items);
        // Every drop must have been repaired, never papered over.
        prop_assert!(stats.repair_rounds > 0 || stats.dropped == 0);
    }

    /// Stage level: `supervised_flat_map` under combined drop + reorder +
    /// late delivery + mid-stream crash/restart equals the fault-free
    /// flat-map byte-for-byte.
    #[test]
    fn supervised_flat_map_matches_fault_free(
        items in prop::collection::vec(any::<u64>(), 0..120),
        seed in any::<u64>(),
        choice in any::<u8>(),
    ) {
        let _g = lock();
        let expected: Vec<(u64, u64)> = items
            .iter()
            .enumerate()
            .flat_map(|(i, item)| stage_body(i as u64, item))
            .collect();
        let plan = FaultPlan::from_seed(seed, "prop-stage", intensity(choice));
        let (out, stats) = supervised_flat_map(
            "prop-stage",
            items,
            Some(&plan),
            &quick_supervisor(),
            stage_body,
        );
        prop_assert_eq!(&out, &expected);
        prop_assert!(stats.restarts <= quick_supervisor().max_restarts as u64);
        // A restart without redelivery is possible (crash at the ack
        // watermark) but redelivery without dedup would have broken the
        // equality above — the stats only need to be self-consistent.
        prop_assert!(stats.redelivered == 0 || stats.restarts > 0 || stats.duplicated > 0);
    }

    /// Sub-stream plans (what the daemon's ingest loop uses per segment)
    /// inherit the same guarantee: segmenting a stream and repairing each
    /// segment independently reassembles the original stream.
    #[test]
    fn segmented_substreams_reassemble(
        items in prop::collection::vec(any::<u64>(), 0..150),
        seed in any::<u64>(),
    ) {
        let _g = lock();
        let base = FaultPlan::from_seed(seed, "prop-segments", ChaosConfig::CALIBRATED);
        let cfg = quick_supervisor();
        let mut out = Vec::new();
        for (idx, segment) in items.chunks(32).enumerate() {
            let plan = base.for_substream(idx as u64);
            let (seg, _) =
                reliable_stream("prop-segments", segment.to_vec(), Some(&plan), &cfg);
            out.extend(seg);
        }
        prop_assert_eq!(&out, &items);
    }
}

/// The properties above would pass vacuously if the chaos layer never
/// fired. Pin that it does: across a few fixed seeds at CALIBRATED
/// intensity, every fault class is observed, including at least one
/// supervisor restart mid-stream.
#[test]
fn calibrated_chaos_injects_every_fault_class() {
    let _g = lock();
    let items: Vec<u64> = (0..300).collect();
    let expected: Vec<(u64, u64)> =
        items.iter().enumerate().flat_map(|(i, item)| stage_body(i as u64, item)).collect();
    let cfg = quick_supervisor();
    let mut totals = SuperviseStats::default();
    for seed in 0..6 {
        let plan = FaultPlan::from_seed(seed, "chaos-coverage", ChaosConfig::CALIBRATED);
        let (out, stats) =
            supervised_flat_map("chaos-coverage", items.clone(), Some(&plan), &cfg, stage_body);
        assert_eq!(out, expected, "seed {seed} diverged from fault-free output");
        totals.merge(&stats);
    }
    assert!(totals.dropped > 0, "no drops injected: {totals:?}");
    assert!(totals.duplicated > 0, "no duplicates injected: {totals:?}");
    assert!(totals.reordered > 0, "no reordering injected: {totals:?}");
    assert!(totals.restarts > 0, "no mid-stream restarts: {totals:?}");
    assert!(totals.repair_rounds > 0, "drops were never repaired: {totals:?}");
}

/// `plan: None` must stay a true no-op passthrough — the daemon relies on
/// this for chaos-disabled production runs.
#[test]
fn no_plan_is_passthrough() {
    let _g = lock();
    let items: Vec<u64> = (0..64).collect();
    let (out, stats) =
        reliable_stream("no-plan", items.clone(), None, &SupervisorConfig::default());
    assert_eq!(out, items);
    assert!(stats.is_clean());
}
