//! The causal event trace's headline invariants (DESIGN §10):
//!
//! - the deterministic event stream (every field except `wall_micros`) is
//!   identical across `--jobs` counts;
//! - the non-fault subset of the stream is identical across chaos seeds —
//!   and identical to a fault-free run — while fault events pair up
//!   exactly (every injection has a matching repair);
//! - `check_causality` holds on real runs: triggers follow feed arrivals
//!   within the paper's 10-minute bound, probe rounds respect the
//!   50-domain budget;
//! - `repro explain`'s episode timeline is byte-identical across worker
//!   counts;
//! - the Chrome trace-event export round-trips losslessly.
//!
//! One `#[test]` only: the trace ring is process-global, so the scenarios
//! run sequentially in a single function and reset the ring between runs.

use bench_support::{run_catalog_checkpointed, run_experiments_chaos};
use scenarios::{PaperScale, WorldConfig};

/// Covers every emission site: the longitudinal pipeline (onsets, joins,
/// baselines, impacts — `rsdos` scope), the reactive platform (feed
/// arrivals, triggers, probes — `milru`/`rdz` scopes), and the catalog's
/// stage brackets.
const IDS: &[&str] = &["table1", "fig7", "russia"];

/// Reset the registries, run the pipeline + catalog at the given worker
/// count and chaos seed, and return the trace snapshot.
fn run_and_trace(jobs: usize, chaos_seed: Option<u64>) -> Vec<obs::TraceEvent> {
    obs::registry().reset();
    obs::trace::reset();
    let cfg = WorldConfig { providers: 20, domains: 6_000, ..WorldConfig::default() };
    let ex = run_experiments_chaos(42, PaperScale { divisor: 400 }, &cfg, jobs, chaos_seed);
    let ids: Vec<String> = IDS.iter().map(|s| s.to_string()).collect();
    let fault = chaos_seed.map(|cs| {
        streamproc::FaultPlan::from_seed(
            cs,
            "experiment-catalog",
            streamproc::ChaosConfig::CALIBRATED,
        )
    });
    let (_, _) = run_catalog_checkpointed(Some(&ex), 42, &ids, jobs, fault.as_ref(), None, &|_| {});
    obs::trace::snapshot()
}

fn deterministic_lines(events: &[obs::TraceEvent]) -> Vec<String> {
    events.iter().map(|e| e.deterministic_line()).collect()
}

fn non_fault_lines(events: &[obs::TraceEvent]) -> Vec<String> {
    events.iter().filter(|e| !e.kind.is_fault()).map(|e| e.deterministic_line()).collect()
}

#[test]
fn trace_is_deterministic_and_causally_sound() {
    // --- jobs 1 vs jobs 8, fault-free -----------------------------------
    let seq = run_and_trace(1, None);
    let par = run_and_trace(8, None);
    assert!(!seq.is_empty(), "the pipeline emitted trace events");
    assert_eq!(
        deterministic_lines(&seq),
        deterministic_lines(&par),
        "sim-time event stream differs across --jobs"
    );

    // Every layer of the causal chain is represented.
    for kind in [
        obs::EventKind::AttackOnset,
        obs::EventKind::FeedRecordArrived,
        obs::EventKind::JoinMatched,
        obs::EventKind::TriggerFired,
        obs::EventKind::ProbeScheduled,
        obs::EventKind::ProbeCompleted,
        obs::EventKind::ImpactComputed,
        obs::EventKind::StageStart,
        obs::EventKind::StageEnd,
    ] {
        assert!(
            seq.iter().any(|e| e.kind == kind),
            "no {} event in a full fault-free run",
            kind.as_str()
        );
    }

    // Causality invariants hold on a real run.
    assert_eq!(
        obs::trace::check_causality(&par),
        Vec::<String>::new(),
        "causality violations in a fault-free run"
    );

    // The `repro explain` timeline is byte-identical across worker counts.
    let timeline_seq =
        obs::trace::explain(&seq, "milru", 0).expect("mil.ru episode 0 has trace events");
    let timeline_par = obs::trace::explain(&par, "milru", 0).unwrap();
    assert_eq!(timeline_seq, timeline_par, "explain output differs across --jobs");
    assert!(timeline_seq.contains("AttackOnset"), "timeline shows the onset");
    assert!(timeline_seq.contains("within bound"), "timeline checks the trigger bound");
    assert!(timeline_seq.contains("within budget"), "timeline checks the probe budget");

    // The Chrome trace-event export round-trips losslessly (deterministic
    // fields; `ts`/`args.wall_micros` carry the wall clock alongside).
    let text = obs::trace::to_chrome_json(&par).pretty();
    let back = obs::trace::from_chrome_json(&obs::Json::parse(&text).unwrap())
        .expect("exported trace parses back");
    assert_eq!(
        deterministic_lines(&back),
        deterministic_lines(&par),
        "chrome export round-trip lost events"
    );

    // --- chaos seeds: same pipeline story, balanced fault events --------
    let clean = non_fault_lines(&seq);
    for chaos_seed in [1337, 4242] {
        let chaos = run_and_trace(8, Some(chaos_seed));
        assert_eq!(
            non_fault_lines(&chaos),
            clean,
            "non-fault event stream perturbed by chaos seed {chaos_seed}"
        );
        assert!(
            chaos.iter().any(|e| e.kind == obs::EventKind::FaultInjected),
            "calibrated chaos seed {chaos_seed} injected no traced faults"
        );
        // check_causality pairs every FaultInjected with a FaultRepaired
        // per (site, detail) — and re-checks the pipeline invariants.
        assert_eq!(
            obs::trace::check_causality(&chaos),
            Vec::<String>::new(),
            "causality violations under chaos seed {chaos_seed}"
        );
    }
}
