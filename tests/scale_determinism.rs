//! Scale-parameterized determinism: the byte-equality contract holds at
//! sweep scale, not just on toy feeds.
//!
//! The tier-1 cell runs the longitudinal pipeline at the sweep's 15k
//! target (divisor 269) and byte-compares jobs=1 against jobs=8 and a
//! chaos run against the fault-free run. The 150k and 1.5M cells are the
//! same check at `repro bench --scale-sweep`'s heavy scales, gated behind
//! `DNSIMPACT_SCALE_HEAVY=1` / `=2` (they are minutes of debug-build work,
//! and the release-built sweep already enforces the same fingerprints on
//! every run that emits a report).

use bench_support::divisor_for_target;
use dnsimpact::prelude::*;
use scenarios::{paper_longitudinal_config, world, PaperScale, WorldConfig};

/// Run the pinned longitudinal pipeline at a sweep scale target and
/// fingerprint every deterministic artifact layer: the episode CSV, the
/// joined events, the impact rows (f64 bits included via `Debug`), and
/// the monthly table.
fn run_at(scale_target: u64, jobs: usize, chaos_seed: Option<u64>) -> (String, String, String) {
    let rngs = RngFactory::new(42);
    let built = world::build(
        &WorldConfig { providers: 20, domains: 6_000, ..WorldConfig::default() },
        &rngs,
    );
    let cfg = paper_longitudinal_config(PaperScale { divisor: divisor_for_target(scale_target) });
    let months = cfg.months.clone();
    let attacks = AttackScheduler::new(cfg).generate(&built.target_pool(), &rngs);
    let mut config = LongitudinalConfig { jobs, ..LongitudinalConfig::default() };
    config.impact.chaos_seed = chaos_seed;
    let report = run_longitudinal(
        &built.infra,
        &Darknet::ucsd_like(),
        &attacks,
        &months,
        &built.meta,
        &config,
        &rngs,
    );
    (
        report.feed.episodes_csv(),
        format!("{:?}", report.dns_events),
        format!("{:?}{:?}", report.impacts, report.monthly),
    )
}

fn assert_scale_deterministic(scale_target: u64) {
    let base = run_at(scale_target, 1, None);
    assert!(!base.0.is_empty(), "scale {scale_target} produced episodes");

    let par = run_at(scale_target, 8, None);
    assert_eq!(base.0, par.0, "episode CSV differs across jobs at scale {scale_target}");
    assert_eq!(base.1, par.1, "joined events differ across jobs at scale {scale_target}");
    assert_eq!(base.2, par.2, "impacts/monthly differ across jobs at scale {scale_target}");

    let chaos = run_at(scale_target, 8, Some(1337));
    assert_eq!(base.0, chaos.0, "chaos changed the episode CSV at scale {scale_target}");
    assert_eq!(base.1, chaos.1, "chaos changed the joined events at scale {scale_target}");
    assert_eq!(base.2, chaos.2, "chaos changed the impacts at scale {scale_target}");
}

fn heavy_level() -> u64 {
    match std::env::var("DNSIMPACT_SCALE_HEAVY").ok().as_deref() {
        None | Some("") | Some("0") => 0,
        Some("1") => 1,
        Some(_) => 2,
    }
}

#[test]
fn sweep_scale_15k_is_jobs_and_chaos_invariant() {
    assert_scale_deterministic(15_000);
}

#[test]
fn sweep_scale_150k_is_jobs_and_chaos_invariant_heavy() {
    if heavy_level() < 1 {
        eprintln!("skipped: set DNSIMPACT_SCALE_HEAVY=1 to run the 150k cell");
        return;
    }
    assert_scale_deterministic(150_000);
}

#[test]
fn sweep_scale_1m5_is_jobs_and_chaos_invariant_heavy() {
    if heavy_level() < 2 {
        eprintln!("skipped: set DNSIMPACT_SCALE_HEAVY=2 to run the 1.5M cell");
        return;
    }
    assert_scale_deterministic(1_500_000);
}
