//! The downstream-adoption path end to end: build the world from an RFC
//! 1035 zone file (instead of the synthetic generator) and run the full
//! paper pipeline against it.

use dnsimpact::core::impact::{compute_impacts, ImpactConfig};
use dnsimpact::prelude::*;
use dnssim::ZoneLoader;
use dnswire::zonefile::parse_zone;

fn zone_text() -> String {
    // One mid-size provider (two NS, two /24s) with many delegations, one
    // single-NS shop.
    let mut z = String::from(
        "$TTL 3600\n\
         ns0.provider.net. IN A 198.51.100.53\n\
         ns1.provider.net. IN A 203.0.113.53\n\
         ns.small.nl.      IN A 198.18.4.53\n\
         shop IN NS ns.small.nl.\n",
    );
    for i in 0..3_000 {
        z.push_str(&format!("klant{i} IN NS ns0.provider.net.\n"));
        z.push_str(&format!("klant{i} IN NS ns1.provider.net.\n"));
    }
    z
}

#[test]
fn zone_loaded_world_through_full_pipeline() {
    let rngs = RngFactory::new(2023);
    let origin: Name = "nl".parse().unwrap();
    let records = parse_zone(&zone_text(), &origin).expect("zone parses");

    let mut prefix2as = Prefix2As::new();
    prefix2as.announce("198.51.100.0/24".parse().unwrap(), Asn(64_501));
    prefix2as.announce("203.0.113.0/24".parse().unwrap(), Asn(64_501));
    prefix2as.announce("198.18.0.0/15".parse().unwrap(), Asn(64_502));

    let mut infra = Infra::new();
    let loader = ZoneLoader { capacity_pps: 60_000.0, ..ZoneLoader::default() };
    let domains = loader.load(&mut infra, &records, Some(&prefix2as)).expect("zone loads");
    assert_eq!(domains.len(), 3_001);
    assert_eq!(infra.nameservers().len(), 3);

    // Attack the provider's two nameservers for two hours on day 5
    // (ρ ≈ 0.95 each → strong RTT inflation, no blackout).
    let start = SimTime::from_days(5) + SimDuration::from_hours(10);
    let attacks: Vec<Attack> = ["198.51.100.53", "203.0.113.53"]
        .iter()
        .enumerate()
        .map(|(i, addr)| Attack {
            id: AttackId(i as u64),
            target: addr.parse().unwrap(),
            start,
            duration: SimDuration::from_hours(2),
            vectors: vec![VectorSpec {
                kind: VectorKind::RandomSpoofed,
                protocol: Protocol::Tcp,
                ports: vec![53],
                victim_pps: 55_000.0,
                source_count: 3_000_000,
            }],
        })
        .collect();

    // Telescope → feed → episodes.
    let darknet = Darknet::ucsd_like();
    let obs = BackscatterSampler::new(&darknet).sample(&attacks, &rngs);
    let classifier = RsdosClassifier::default();
    let feed_records = classifier.classify(&obs);
    let episodes = classifier.episodes(&feed_records);
    assert_eq!(episodes.len(), 2, "both nameservers inferred under attack");

    // Join → impacts.
    let mut loads = LoadBook::new();
    for (addr, w, pps) in accumulate_windows(&attacks) {
        loads.add(addr, w, pps);
    }
    let events = join_episodes(&infra, &infra, &episodes, &OpenResolverList::new(), false);
    assert_eq!(events.len(), 2);
    assert_eq!(events[0].domains_affected, 3_000, "the provider's whole portfolio");

    let census =
        AnycastCensus::from_ground_truth(&infra, AnycastCensus::paper_snapshot_dates(), 1.0, &rngs);
    let (impacts, _store) = compute_impacts(
        &infra,
        &SweepSchedule::new(rngs.seed()),
        &Resolver::default(),
        &loads,
        &episodes,
        &events,
        &census,
        &rngs,
        &ImpactConfig::default(),
    );
    assert!(!impacts.is_empty(), "impact events materialize from zone data");
    let worst = impacts.iter().filter_map(|e| e.impact_on_rtt).fold(0.0f64, f64::max);
    assert!(worst > 5.0, "the attack is visible in Impact_on_RTT: {worst:.1}x");
    // The untouched small shop never enters the analysis.
    let shop_set = infra.domain(domains[0]).nsset;
    let provider_set = infra.domain(domains[1]).nsset;
    assert_ne!(shop_set, provider_set);
    assert!(impacts.iter().all(|e| e.nsset == provider_set));
}
