//! The observability layer's headline invariants (DESIGN §9):
//!
//! - the deterministic metric namespace (everything not prefixed `time.`
//!   or `sched.`) is identical across `--jobs` counts;
//! - pipeline counters are identical across chaos seeds (recovery is
//!   exact), and the fault accounting balances: every injected fault is
//!   repaired;
//! - span timers and scheduling metrics exist, but are excluded from the
//!   deterministic snapshot that comparisons run on;
//! - a run report built from a live registry snapshot round-trips through
//!   its JSON text byte-identically and passes schema validation.
//!
//! One `#[test]` only: the metrics registry is process-global, so the
//! scenarios below run sequentially in a single function and reset the
//! registry between runs.

use bench_support::{run_catalog_checkpointed, run_experiments_chaos};
use scenarios::{PaperScale, WorldConfig};

const IDS: &[&str] = &["table1", "table3", "table5", "fig5", "fig8", "fig11", "ablate"];

/// Reset the registry, run the longitudinal pipeline + catalog at the
/// given worker count and chaos seed, and return the final snapshot.
fn run_and_snapshot(jobs: usize, chaos_seed: Option<u64>) -> obs::Snapshot {
    obs::registry().reset();
    let cfg = WorldConfig { providers: 20, domains: 6_000, ..WorldConfig::default() };
    let ex = run_experiments_chaos(42, PaperScale { divisor: 400 }, &cfg, jobs, chaos_seed);
    let ids: Vec<String> = IDS.iter().map(|s| s.to_string()).collect();
    let fault = chaos_seed.map(|cs| {
        streamproc::FaultPlan::from_seed(
            cs,
            "experiment-catalog",
            streamproc::ChaosConfig::CALIBRATED,
        )
    });
    let (_, _) = run_catalog_checkpointed(Some(&ex), 42, &ids, jobs, fault.as_ref(), None, &|_| {});
    obs::registry().snapshot()
}

/// The non-chaos deterministic counters: what must agree between a chaos
/// run and a fault-free run (chaos accounting itself obviously differs).
fn pipeline_counters(s: &obs::Snapshot) -> Vec<(String, u64)> {
    s.deterministic().counters.into_iter().filter(|(k, _)| !k.starts_with("chaos.")).collect()
}

#[test]
fn metrics_are_out_of_band_and_deterministic() {
    // --- jobs 1 vs jobs 8, fault-free -----------------------------------
    let seq = run_and_snapshot(1, None);
    let par = run_and_snapshot(8, None);

    // Wall-clock and scheduling metrics exist in the raw snapshot...
    assert!(
        seq.histograms.keys().any(|k| k.starts_with("time.span.")),
        "span timers recorded: {:?}",
        seq.histograms.keys().collect::<Vec<_>>()
    );
    assert!(par.gauges.contains_key("sched.pool.jobs_max"));

    // ...and are exactly what the deterministic filter strips.
    let (d_seq, d_par) = (seq.deterministic(), par.deterministic());
    for s in [&d_seq, &d_par] {
        let nondet = s
            .counters
            .keys()
            .chain(s.gauges.keys())
            .chain(s.histograms.keys())
            .filter(|k| k.starts_with("time.") || k.starts_with("sched."))
            .count();
        assert_eq!(nondet, 0, "time./sched. leaked into the deterministic snapshot");
    }

    // The deterministic namespace is identical whatever the worker count.
    for k in d_seq.counters.keys().chain(d_par.counters.keys()) {
        let (a, b) = (d_seq.counters.get(k), d_par.counters.get(k));
        if a != b {
            eprintln!("DIFF {k}: jobs1={a:?} jobs8={b:?}");
        }
    }
    assert_eq!(d_seq.counters, d_par.counters, "counters differ across --jobs");
    assert_eq!(d_seq.gauges, d_par.gauges, "gauges differ across --jobs");
    assert_eq!(d_seq.histograms, d_par.histograms, "histograms differ across --jobs");
    assert!(
        d_seq.counters.get("join.rows_joined").copied().unwrap_or(0) > 0,
        "pipeline actually counted work"
    );

    // --- chaos runs: exact recovery, balanced fault accounting ----------
    let baseline = pipeline_counters(&seq);
    let mut total_injected = 0;
    for chaos_seed in [1337, 4242] {
        let snap = run_and_snapshot(8, Some(chaos_seed));
        let injected = snap.counters.get("chaos.faults_injected").copied().unwrap_or(0);
        let repaired = snap.counters.get("chaos.faults_repaired").copied().unwrap_or(0);
        assert_eq!(
            injected, repaired,
            "fault accounting out of balance under chaos seed {chaos_seed}"
        );
        total_injected += injected;
        // Whatever the chaos seed injected, the pipeline's own counters
        // match a fault-free run exactly: recovery leaves no trace.
        assert_eq!(
            pipeline_counters(&snap),
            baseline,
            "pipeline counters perturbed by chaos seed {chaos_seed}"
        );
    }
    assert!(total_injected > 0, "calibrated chaos injected nothing at this scale");

    // --- report round-trip from a live snapshot -------------------------
    let report = obs::RunReport {
        meta: obs::RunMeta {
            seed: 42,
            scale: 400,
            jobs: 8,
            run: 1,
            chaos_seed: Some(4242),
            bench: false,
            date: obs::report::today_utc(),
            experiments: IDS.iter().map(|s| s.to_string()).collect(),
        },
        total_wall_ms: 1,
        peak_rss_kb: obs::rss::peak_rss_kb(),
        stages: vec![obs::StageWall { name: "test".into(), wall_ms: 1 }],
        metrics: obs::registry().snapshot(),
        trace: obs::trace::summary(),
    };
    let doc = report.to_json();
    obs::report::validate(&doc).expect("live report validates");
    obs::report::check_invariants(&doc).expect("live report invariants hold");
    let text = doc.pretty();
    let back = obs::RunReport::from_json(&obs::Json::parse(&text).unwrap()).unwrap();
    assert_eq!(back, report, "report round-trips through JSON text");
    assert_eq!(back.to_json().pretty(), text, "re-serialization is byte-identical");
}
