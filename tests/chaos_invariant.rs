//! The chaos layer's headline invariant (ROADMAP robustness milestone):
//! fault-free output ≡ faulted-and-recovered output ≡ killed-and-resumed
//! output — byte for byte, for any chaos seed and any `--jobs` value.

use bench_support::{
    run_catalog, run_catalog_checkpointed, run_experiments_chaos, run_experiments_with_jobs,
    CheckpointDir, ExperimentRun,
};
use scenarios::{PaperScale, WorldConfig};
use std::collections::BTreeMap;
use std::path::Path;

/// The longitudinal pipeline and every artifact rendered from it must be
/// unchanged by fault injection, whatever the worker count.
#[test]
fn chaos_never_changes_artifacts() {
    let cfg = WorldConfig { providers: 20, domains: 6_000, ..WorldConfig::default() };
    let scale = PaperScale { divisor: 400 };
    let clean_ex = run_experiments_with_jobs(42, scale, &cfg, 1);
    let chaos_ex = run_experiments_chaos(42, scale, &cfg, 8, Some(1337));

    // The measurement phase ran under injected crashes + restarts, yet the
    // report agrees bit-for-bit.
    assert_eq!(
        clean_ex.report.feed.episodes_csv(),
        chaos_ex.report.feed.episodes_csv(),
        "feed layer untouched by chaos"
    );
    assert_eq!(clean_ex.report.impacts.len(), chaos_ex.report.impacts.len());
    for (a, b) in clean_ex.report.impacts.iter().zip(&chaos_ex.report.impacts) {
        assert_eq!(a.nsset, b.nsset);
        assert_eq!(
            a.impact_on_rtt.map(f64::to_bits),
            b.impact_on_rtt.map(f64::to_bits),
            "impact bits differ under chaos"
        );
        assert_eq!(a.failure_rate.to_bits(), b.failure_rate.to_bits());
        assert_eq!(a.timeouts, b.timeouts);
    }

    // Catalog artifacts: fault-free sequential vs fault-injected runs at
    // jobs 1 and 8, rendered from the chaos-run experiments.
    let ids: Vec<String> =
        ["table1", "table3", "table5", "fig5", "fig7", "fig8", "fig11", "ablate"]
            .iter()
            .map(|s| s.to_string())
            .collect();
    let clean = run_catalog(Some(&clean_ex), 42, &ids, 1);
    let mut total_restarts = 0u64;
    for jobs in [1usize, 8] {
        let fault = streamproc::FaultPlan::from_seed(
            7,
            "experiment-catalog",
            streamproc::ChaosConfig::CALIBRATED,
        );
        let (faulted, stats) =
            run_catalog_checkpointed(Some(&chaos_ex), 42, &ids, jobs, Some(&fault), None, &|_| {});
        total_restarts += stats.restarts;
        assert_eq!(clean.len(), faulted.len(), "jobs={jobs}");
        for (a, b) in clean.iter().zip(&faulted) {
            assert_eq!(a.id, b.id, "canonical order survives faults");
            assert!(!b.resumed);
            assert_eq!(a.artifacts.len(), b.artifacts.len(), "{}", a.id);
            for (x, y) in a.artifacts.iter().zip(&b.artifacts) {
                assert_eq!(x.id, y.id);
                assert_eq!(x.csv, y.csv, "{}: CSV bytes differ under chaos (jobs={jobs})", x.id);
                assert_eq!(x.text, y.text, "{}: table differs under chaos (jobs={jobs})", x.id);
            }
        }
    }
    assert!(total_restarts > 0, "the calibrated plan injected no crashes at all");
}

fn slurp_csvs(dir: &Path) -> BTreeMap<String, String> {
    let mut out = BTreeMap::new();
    for entry in std::fs::read_dir(dir).unwrap() {
        let p = entry.unwrap().path();
        let name = p.file_name().unwrap().to_string_lossy().into_owned();
        assert!(!name.ends_with(".tmp"), "atomic write left a temp file: {name}");
        out.insert(name, std::fs::read_to_string(&p).unwrap());
    }
    out
}

/// A run killed after completing only part of the catalog, then resumed
/// with the same checkpoint dir, leaves the output directory byte-
/// identical to an uninterrupted run.
#[test]
fn killed_and_resumed_run_is_byte_identical() {
    let base = std::env::temp_dir().join("dnsimpact-chaos-resume");
    let _ = std::fs::remove_dir_all(&base);
    let clean_dir = base.join("clean");
    let resumed_dir = base.join("resumed");
    std::fs::create_dir_all(&clean_dir).unwrap();
    std::fs::create_dir_all(&resumed_dir).unwrap();

    // Scenario experiments only: self-contained, no longitudinal stage.
    let all: Vec<String> =
        ["table2", "fig2", "fig3", "russia", "futurework"].iter().map(|s| s.to_string()).collect();

    // Reference: uninterrupted fault-free run.
    for run in run_catalog(None, 42, &all, 1) {
        for a in &run.artifacts {
            dnsimpact_core::report::write_output(&clean_dir, &format!("{}.csv", a.id), &a.csv)
                .unwrap();
        }
    }

    let ckpt = CheckpointDir::new(&base.join("ckpt")).unwrap();
    let persist = |run: &ExperimentRun| {
        let mut lines = Vec::new();
        for a in &run.artifacts {
            dnsimpact_core::report::write_output(&resumed_dir, &format!("{}.csv", a.id), &a.csv)
                .unwrap();
            lines.push(format!("- `{}.csv` — {}\n", a.id, a.title));
        }
        ckpt.mark_done(&run.id, &lines).unwrap();
    };

    // "Killed" run: only the transip job completes before the kill.
    let partial: Vec<String> = vec!["table2".into()];
    let fault = streamproc::FaultPlan::from_seed(
        9,
        "experiment-catalog",
        streamproc::ChaosConfig::CALIBRATED,
    );
    let (first, _) =
        run_catalog_checkpointed(None, 42, &partial, 1, Some(&fault), Some(&ckpt), &persist);
    assert_eq!(first.len(), 1);
    assert!(!first[0].resumed);

    // Resume with the full experiment list, same checkpoint dir, under
    // chaos and parallelism: the completed job is skipped, the rest run.
    let (second, _) =
        run_catalog_checkpointed(None, 42, &all, 8, Some(&fault), Some(&ckpt), &persist);
    let resumed: Vec<&str> = second.iter().filter(|r| r.resumed).map(|r| r.id.as_str()).collect();
    assert_eq!(resumed, vec!["transip"], "only the pre-kill job is skipped");
    assert!(second.iter().all(|r| ckpt.is_done(&r.id)), "every job checkpointed");

    // The headline check: the two output directories agree byte for byte.
    let clean = slurp_csvs(&clean_dir);
    let restored = slurp_csvs(&resumed_dir);
    assert_eq!(
        clean.keys().collect::<Vec<_>>(),
        restored.keys().collect::<Vec<_>>(),
        "same artifact set"
    );
    for (name, bytes) in &clean {
        assert_eq!(bytes, &restored[name], "{name}: killed-and-resumed bytes differ");
    }
    std::fs::remove_dir_all(&base).unwrap();
}
