//! Semantic ablations of the methodology's design choices (§4.1–§4.2):
//! what changes when the knobs move.

use dnsimpact::core::impact::compute_impacts;
use dnsimpact::prelude::*;
use scenarios::{paper_longitudinal_config, world, PaperScale, WorldConfig};

struct Fixture {
    built: world::BuiltWorld,
    feed: RsdosFeed,
    loads: LoadBook,
    rngs: RngFactory,
}

fn fixture(seed: u64) -> Fixture {
    let rngs = RngFactory::new(seed);
    let built = world::build(
        &WorldConfig { providers: 30, domains: 12_000, ..WorldConfig::default() },
        &rngs,
    );
    let mut cfg = paper_longitudinal_config(PaperScale { divisor: 400 });
    // Three months are enough for the ablation comparisons.
    cfg.months.truncate(3);
    cfg.attacks_per_month.truncate(3);
    cfg.dns_share_per_month.truncate(3);
    let attacks = AttackScheduler::new(cfg).generate(&built.target_pool(), &rngs);
    let mut loads = LoadBook::new();
    for (addr, w, pps) in accumulate_windows(&attacks) {
        loads.add(addr, w, pps);
    }
    let darknet = Darknet::ucsd_like();
    let obs = BackscatterSampler::new(&darknet).sample(&attacks, &rngs);
    let classifier = RsdosClassifier::default();
    let records = classifier.classify(&obs);
    let episodes = classifier.episodes(&records);
    Fixture { built, feed: RsdosFeed::new(records, episodes), loads, rngs }
}

fn impacts_with(fx: &Fixture, config: &ImpactConfig) -> Vec<dnsimpact::core::impact::ImpactEvent> {
    let events = join_episodes(
        &fx.built.infra,
        &fx.built.infra,
        &fx.feed.episodes,
        &fx.built.meta.open_resolvers,
        false,
    );
    let schedule = SweepSchedule::new(fx.rngs.seed());
    let (impacts, _) = compute_impacts(
        &fx.built.infra,
        &schedule,
        &Resolver::default(),
        &fx.loads,
        &fx.feed.episodes,
        &events,
        &fx.built.meta.census,
        &fx.rngs,
        config,
    );
    impacts
}

/// §6.3: the ≥5-domain filter removes noisy low-coverage events but keeps
/// every well-measured one.
#[test]
fn min_domain_filter_removes_only_thin_events() {
    let fx = fixture(21);
    let strict = impacts_with(&fx, &ImpactConfig::default());
    let loose =
        impacts_with(&fx, &ImpactConfig { min_domains_measured: 1, ..ImpactConfig::default() });
    assert!(
        loose.len() >= strict.len(),
        "loosening the filter can only add events: {} vs {}",
        loose.len(),
        strict.len()
    );
    // Every strict event appears in the loose set (same episode, same
    // NSSet).
    let loose_keys: std::collections::HashSet<(usize, NsSetId)> =
        loose.iter().map(|e| (e.episode_idx, e.nsset)).collect();
    for e in &strict {
        assert!(loose_keys.contains(&(e.episode_idx, e.nsset)));
    }
    // Everything the filter removed really was thin.
    let strict_keys: std::collections::HashSet<(usize, NsSetId)> =
        strict.iter().map(|e| (e.episode_idx, e.nsset)).collect();
    for e in &loose {
        if !strict_keys.contains(&(e.episode_idx, e.nsset)) {
            assert!(e.domains_measured < 5, "removed event was not thin: {e:?}");
        }
    }
}

/// §4.1: the baseline sampling cap barely moves the impact estimates —
/// the denominator is an average over an unattacked day, so a modest
/// sample suffices.
#[test]
fn baseline_sample_cap_is_stable() {
    let fx = fixture(22);
    let small =
        impacts_with(&fx, &ImpactConfig { baseline_sample_cap: 50, ..ImpactConfig::default() });
    let large =
        impacts_with(&fx, &ImpactConfig { baseline_sample_cap: 500, ..ImpactConfig::default() });
    assert_eq!(small.len(), large.len());
    let mut compared = 0;
    for (a, b) in small.iter().zip(&large) {
        if let (Some(x), Some(y)) = (a.impact_on_rtt, b.impact_on_rtt) {
            // Identical attacks; only the baseline sample differs. The
            // ratio of the two impact estimates stays near 1.
            let ratio = x / y;
            assert!(
                (0.5..2.0).contains(&ratio),
                "baseline sampling changed an impact estimate {x:.2} → {y:.2}"
            );
            compared += 1;
        }
    }
    assert!(compared > 0, "nothing compared");
}

/// §4.2: including /24-collateral joins can only widen the set of
/// attack→DNS events — and every extra event is a collateral (not direct)
/// hit.
#[test]
fn collateral_join_widens_monotonically() {
    let fx = fixture(23);
    let direct = join_episodes(
        &fx.built.infra,
        &fx.built.infra,
        &fx.feed.episodes,
        &fx.built.meta.open_resolvers,
        false,
    );
    let with_collateral = join_episodes(
        &fx.built.infra,
        &fx.built.infra,
        &fx.feed.episodes,
        &fx.built.meta.open_resolvers,
        true,
    );
    assert!(with_collateral.len() >= direct.len());
    let direct_eps: std::collections::HashSet<usize> =
        direct.iter().map(|e| e.episode_idx).collect();
    for e in &with_collateral {
        if !direct_eps.contains(&e.episode_idx) {
            assert!(!e.is_direct(), "extra events must be collateral hits");
            assert!(!e.ns_collateral.is_empty());
        }
    }
}

/// The RSDoS thresholds trade sensitivity for noise: lowering them admits
/// more (smaller) episodes, never fewer.
#[test]
fn classifier_thresholds_are_monotone() {
    let fx = fixture(24);
    let default_classifier = RsdosClassifier::default();
    let sensitive = RsdosClassifier::new(RsdosThresholds {
        min_packets: 5,
        min_slash16s: 1,
        max_gap_windows: 1,
    });
    // Re-derive observations deterministically.
    let darknet = Darknet::ucsd_like();
    let built = &fx.built;
    let cfg = {
        let mut c = paper_longitudinal_config(PaperScale { divisor: 400 });
        c.months.truncate(3);
        c.attacks_per_month.truncate(3);
        c.dns_share_per_month.truncate(3);
        c
    };
    let attacks = AttackScheduler::new(cfg).generate(&built.target_pool(), &fx.rngs);
    let obs = BackscatterSampler::new(&darknet).sample(&attacks, &fx.rngs);
    let strict_records = default_classifier.classify(&obs);
    let loose_records = sensitive.classify(&obs);
    assert!(loose_records.len() >= strict_records.len());
    let strict_eps = default_classifier.episodes(&strict_records);
    let loose_eps = sensitive.episodes(&loose_records);
    assert!(loose_eps.len() >= strict_eps.len());
}
