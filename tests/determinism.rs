//! Whole-pipeline determinism: one seed, one result — across every
//! subsystem at once.

use dnsimpact::prelude::*;
use scenarios::{paper_longitudinal_config, world, PaperScale, WorldConfig};

fn fingerprint(seed: u64) -> (usize, usize, u64, Vec<(String, u64)>, String) {
    let rngs = RngFactory::new(seed);
    let built = world::build(
        &WorldConfig { providers: 25, domains: 8_000, ..WorldConfig::default() },
        &rngs,
    );
    let mut cfg = paper_longitudinal_config(PaperScale { divisor: 500 });
    cfg.months.truncate(2);
    cfg.attacks_per_month.truncate(2);
    cfg.dns_share_per_month.truncate(2);
    let months = cfg.months.clone();
    let attacks = AttackScheduler::new(cfg).generate(&built.target_pool(), &rngs);
    let report = run_longitudinal(
        &built.infra,
        &Darknet::ucsd_like(),
        &attacks,
        &months,
        &built.meta,
        &LongitudinalConfig::default(),
        &rngs,
    );
    let monthly: Vec<(String, u64)> =
        report.monthly.iter().map(|m| (m.month.to_string(), m.total_attacks())).collect();
    let csv = report.feed.episodes_csv();
    (
        report.feed.episodes.len(),
        report.impacts.len(),
        report.feed.records.iter().map(|r| r.packets).sum(),
        monthly,
        csv,
    )
}

#[test]
fn same_seed_same_everything() {
    let a = fingerprint(77);
    let b = fingerprint(77);
    assert_eq!(a.0, b.0, "episode count");
    assert_eq!(a.1, b.1, "impact event count");
    assert_eq!(a.2, b.2, "total feed packets");
    assert_eq!(a.3, b.3, "monthly table");
    assert_eq!(a.4, b.4, "full episode CSV byte-identical");
}

#[test]
fn different_seed_different_world() {
    let a = fingerprint(77);
    let c = fingerprint(78);
    assert_ne!(a.4, c.4, "different seeds must diverge");
}

/// The parallel scheduler's determinism lock: the whole experiment catalog
/// rendered with `--jobs 1` and `--jobs 8` must be byte-identical — same
/// CSVs, same stdout tables, same order.
#[test]
fn thread_count_never_changes_artifacts() {
    use bench_support::{run_catalog, run_experiments_with_jobs};

    let cfg = WorldConfig { providers: 20, domains: 6_000, ..WorldConfig::default() };
    let scale = PaperScale { divisor: 400 };
    let seq = run_experiments_with_jobs(42, scale, &cfg, 1);
    let par = run_experiments_with_jobs(42, scale, &cfg, 8);

    // The raw feed and the joined/impact layers agree bit-for-bit.
    assert_eq!(
        seq.report.feed.episodes_csv(),
        par.report.feed.episodes_csv(),
        "episode CSV must not depend on the thread count"
    );
    assert_eq!(seq.report.dns_events.len(), par.report.dns_events.len());
    assert_eq!(seq.report.impacts.len(), par.report.impacts.len());

    // Every artifact the scheduler renders agrees byte-for-byte, in the
    // same canonical order (the transip trio coalesces into one job).
    let ids: Vec<String> = [
        "table1",
        "table2",
        "table3",
        "table4",
        "table5",
        "table6",
        "fig2",
        "fig3",
        "fig5",
        "fig6",
        "fig7",
        "fig8",
        "fig9",
        "fig10",
        "fig11",
        "fig12",
        "fig13",
        "futurework",
        "ablate",
    ]
    .iter()
    .map(|s| s.to_string())
    .collect();
    let runs1 = run_catalog(Some(&seq), 42, &ids, 1);
    let runs8 = run_catalog(Some(&par), 42, &ids, 8);
    assert_eq!(runs1.len(), runs8.len(), "canonical job list is schedule-independent");
    for (a, b) in runs1.iter().zip(&runs8) {
        assert_eq!(a.id, b.id, "outcome order is canonical");
        assert_eq!(a.artifacts.len(), b.artifacts.len(), "{}", a.id);
        for (x, y) in a.artifacts.iter().zip(&b.artifacts) {
            assert_eq!(x.id, y.id);
            assert_eq!(x.csv, y.csv, "{}: CSV bytes differ between jobs=1 and jobs=8", x.id);
            assert_eq!(x.text, y.text, "{}: rendered table differs", x.id);
        }
    }
}
