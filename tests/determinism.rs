//! Whole-pipeline determinism: one seed, one result — across every
//! subsystem at once.

use dnsimpact::prelude::*;
use scenarios::{paper_longitudinal_config, world, PaperScale, WorldConfig};

fn fingerprint(seed: u64) -> (usize, usize, u64, Vec<(String, u64)>, String) {
    let rngs = RngFactory::new(seed);
    let built = world::build(
        &WorldConfig { providers: 25, domains: 8_000, ..WorldConfig::default() },
        &rngs,
    );
    let mut cfg = paper_longitudinal_config(PaperScale { divisor: 500 });
    cfg.months.truncate(2);
    cfg.attacks_per_month.truncate(2);
    cfg.dns_share_per_month.truncate(2);
    let months = cfg.months.clone();
    let attacks = AttackScheduler::new(cfg).generate(&built.target_pool(), &rngs);
    let report = run_longitudinal(
        &built.infra,
        &Darknet::ucsd_like(),
        &attacks,
        &months,
        &built.meta,
        &LongitudinalConfig::default(),
        &rngs,
    );
    let monthly: Vec<(String, u64)> =
        report.monthly.iter().map(|m| (m.month.to_string(), m.total_attacks())).collect();
    let csv = report.feed.episodes_csv();
    (
        report.feed.episodes.len(),
        report.impacts.len(),
        report.feed.records.iter().map(|r| r.packets).sum(),
        monthly,
        csv,
    )
}

#[test]
fn same_seed_same_everything() {
    let a = fingerprint(77);
    let b = fingerprint(77);
    assert_eq!(a.0, b.0, "episode count");
    assert_eq!(a.1, b.1, "impact event count");
    assert_eq!(a.2, b.2, "total feed packets");
    assert_eq!(a.3, b.3, "monthly table");
    assert_eq!(a.4, b.4, "full episode CSV byte-identical");
}

#[test]
fn different_seed_different_world() {
    let a = fingerprint(77);
    let c = fingerprint(78);
    assert_ne!(a.4, c.4, "different seeds must diverge");
}
