//! Integration lock on `dnsimpactd` (DESIGN §12): replay determinism
//! across crashes, degradation honesty in answers, the HTTP surface, and
//! exact shed accounting under overload.
//!
//! The replay rule under test: the served index is a pure function of
//! the applied batch prefix — for any crash point, any chaos seed, and
//! any build parallelism, recovery (checkpoint + feed replay) must land
//! on the byte-identical index a clean single pass produces.
//!
//! The metrics registry is process-global, so every test serializes on
//! [`lock`] and asserts on counter *deltas*.

use std::sync::{Arc, Mutex, MutexGuard, OnceLock};
use std::time::Duration;

use dnsimpactd::{
    checkpoint, feed, http_get, DomainDir, FeedConfig, IndexState, IngestConfig, Ingestor, Server,
    ServerConfig, Telemetry, TelemetryConfig,
};
use obs::Json;
use scenarios::divisor_for_target;
use scenarios::WorldConfig;
use streamproc::SwapCell;

fn lock() -> MutexGuard<'static, ()> {
    static LOCK: OnceLock<Mutex<()>> = OnceLock::new();
    LOCK.get_or_init(|| Mutex::new(())).lock().unwrap_or_else(|e| e.into_inner())
}

/// The small-but-gappy feed every test here runs on: ~8k attacks over 2
/// months (the DNS share of attacks is under 1%, so smaller feeds can
/// produce zero joined episodes), half the gap schedule active so
/// staleness actually moves.
fn tiny() -> FeedConfig {
    FeedConfig {
        seed: 7,
        divisor: divisor_for_target(8_000),
        months: 2,
        world: WorldConfig { providers: 20, domains: 6_000, ..WorldConfig::default() },
        gap_seed: 5,
        gap_prob: 0.5,
        max_gap_windows: 24,
        loss_frac: 0.1,
        outage_seed: 6,
        outage_prob: 0.1,
        batch_records: 32,
        batch_windows: 6,
    }
}

/// Clean single-pass ingest (no chaos, no checkpoint) → full fingerprint.
fn clean_fingerprint(src: &feed::FeedSource) -> u64 {
    let cell = Arc::new(SwapCell::new(Default::default()));
    let mut ing = Ingestor::new(src, IngestConfig::default(), cell);
    ing.run();
    ing.state.full_fingerprint()
}

#[test]
fn recovery_replays_to_clean_fingerprint_at_any_kill_offset() {
    let _g = lock();
    let src = feed::build(&tiny(), 2);
    let total = src.batches.len();
    assert!(total >= 8, "tiny feed too small ({total} batches) to test mid-stream kills");
    let want = clean_fingerprint(&src);

    // Kill right after the first batch, mid-stream, and on the last
    // batch; resume with and without transport chaos. A kill -9 leaves
    // exactly this on disk: the marker of the last completed batch (the
    // in-memory index is gone) — replicate that state directly.
    for kill_after in [1, total / 2, total - 1] {
        for chaos_seed in [None, Some(3u64)] {
            let dir = tempdir(&format!("daemon-kill-{kill_after}-{}", chaos_seed.is_some()));
            let mut dead = IndexState::default();
            for batch in &src.batches[..kill_after] {
                dead.apply(&src.world, batch);
            }
            checkpoint::save(&dir, &dead).expect("write checkpoint marker");
            drop(dead); // the crash: in-memory state is lost, marker survives

            let cell = Arc::new(SwapCell::new(Default::default()));
            let cfg = IngestConfig {
                chaos_seed,
                segment: 8,
                checkpoint_dir: Some(dir.clone()),
                ..IngestConfig::default()
            };
            let mut ing = Ingestor::new(&src, cfg, Arc::clone(&cell));
            let replayed = ing.recover();
            assert_eq!(replayed, kill_after as u64, "recover must honor the marker");
            ing.run();
            assert_eq!(
                ing.state.full_fingerprint(),
                want,
                "kill after {kill_after}/{total} with chaos {chaos_seed:?} \
                 diverged from the clean single pass"
            );
            let snap = cell.load();
            assert!(snap.ingest_done());
            assert_eq!(snap.full_fp, Some(want));
            let _ = std::fs::remove_dir_all(&dir);
        }
    }
}

#[test]
fn feed_build_is_jobs_invariant() {
    let _g = lock();
    let a = feed::build(&tiny(), 1);
    let b = feed::build(&tiny(), 4);
    assert_eq!(a.batches.len(), b.batches.len());
    assert_eq!(a.total_records, b.total_records);
    assert_eq!(clean_fingerprint(&a), clean_fingerprint(&b));
}

#[test]
fn lying_checkpoint_is_discarded_and_full_replay_still_converges() {
    let _g = lock();
    let src = feed::build(&tiny(), 2);
    let want = clean_fingerprint(&src);

    // A marker whose fingerprint the feed cannot reproduce (e.g. written
    // by a daemon running a different feed config) must be rejected.
    let dir = tempdir("daemon-lying-ckpt");
    let mut foreign = IndexState::default();
    for batch in &src.batches[..4] {
        foreign.apply(&src.world, batch);
    }
    foreign.records_applied += 1; // the lie
    checkpoint::save(&dir, &foreign).expect("write checkpoint marker");

    let before = obs::counter("daemon.ckpt_mismatch").get();
    let cell = Arc::new(SwapCell::new(Default::default()));
    let cfg = IngestConfig { checkpoint_dir: Some(dir.clone()), ..IngestConfig::default() };
    let mut ing = Ingestor::new(&src, cfg, cell);
    assert_eq!(ing.recover(), 0, "a lying marker must degrade to a fresh start");
    assert_eq!(obs::counter("daemon.ckpt_mismatch").get(), before + 1);
    ing.run();
    assert_eq!(ing.state.full_fingerprint(), want);

    // Unreadable garbage must be survivable too (counted, not fatal).
    std::fs::write(dir.join("daemon.ckpt.json"), b"not json at all").expect("scribble");
    assert!(checkpoint::load(&dir).is_none());
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn staleness_is_reported_and_flips_readiness_and_degrades_answers() {
    let _g = lock();
    let src = feed::build(&tiny(), 2);
    let dir = Arc::new(DomainDir::build(&src.world.infra));

    // Walk the feed to the staleness peak — the gap schedule (gap_prob
    // 0.5) guarantees batches where the horizon stalls behind the clock.
    let mut state = IndexState::default();
    let mut worst = (0u64, 0usize);
    for (i, batch) in src.batches.iter().enumerate() {
        state.apply(&src.world, batch);
        if state.staleness_s() > worst.0 {
            worst = (state.staleness_s(), i);
        }
    }
    assert!(worst.0 > 0, "tiny feed never went stale; gap model is not exercised");

    // Rebuild to just past the peak and serve that snapshot with a bound
    // below the observed staleness.
    let mut state = IndexState::default();
    for batch in &src.batches[..=worst.1] {
        state.apply(&src.world, batch);
    }
    let cell = Arc::new(SwapCell::new(state.snapshot(src.batches.len() as u64, false)));
    let cfg = ServerConfig { staleness_bound_s: worst.0 - 1, ..ServerConfig::default() };
    let server = Server::start(&cfg, Arc::clone(&cell), Arc::clone(&dir), None).expect("bind");
    let addr = server.addr();
    let t = Duration::from_secs(5);

    let (code, body) = http_get(addr, "/readyz", t).expect("readyz");
    assert_eq!(code, 503, "stale-past-bound must flip not-ready: {body}");
    assert!(body.contains(&format!("\"staleness_s\": {}", worst.0)), "staleness in body: {body}");

    let name = dir.names().next().expect("non-empty directory").to_string();
    let (code, body) = http_get(addr, &format!("/query?domain={name}"), t).expect("query");
    assert_eq!(code, 200);
    assert!(body.contains("\"degraded\": true"), "stale answers must say so: {body}");
    assert!(body.contains("\"staleness_s\""), "every answer carries staleness: {body}");

    // The same snapshot under a generous bound is ready and not degraded
    // by staleness alone (weak baselines can still degrade specific
    // NSSets, so assert only on readiness here).
    let cfg = ServerConfig { staleness_bound_s: worst.0 + 1, ..ServerConfig::default() };
    let server2 = Server::start(&cfg, Arc::clone(&cell), Arc::clone(&dir), None).expect("bind");
    let (code, _) = http_get(server2.addr(), "/readyz", t).expect("readyz");
    assert_eq!(code, 200);
    server2.shutdown();
    server.shutdown();
}

#[test]
fn http_surface_serves_impact_answers_and_errors() {
    let _g = lock();
    let src = feed::build(&tiny(), 2);
    let dir = Arc::new(DomainDir::build(&src.world.infra));
    let cell = Arc::new(SwapCell::new(Default::default()));
    let telemetry = Telemetry::new(TelemetryConfig::default());
    let mut ing = Ingestor::new(&src, IngestConfig::default(), Arc::clone(&cell))
        .with_telemetry(Arc::clone(&telemetry));
    ing.run();

    // Pick a domain whose NSSet demonstrably took attacks.
    let impacted = dir
        .names()
        .find(|n| {
            let (_, nsset) = dir.lookup(n).unwrap();
            ing.state.nssets.get(&nsset.0).is_some_and(|s| s.attacks_seen > 0)
        })
        .expect("tiny feed produced no impacted domain")
        .to_string();

    let server = Server::start(
        &ServerConfig::default(),
        Arc::clone(&cell),
        Arc::clone(&dir),
        Some(Arc::clone(&telemetry)),
    )
    .expect("bind");
    let addr = server.addr();
    let t = Duration::from_secs(5);

    let (code, body) = http_get(addr, "/healthz", t).expect("healthz");
    assert_eq!((code, body.contains("\"ok\": true")), (200, true), "healthz: {body}");

    let (code, body) = http_get(addr, "/readyz", t).expect("readyz");
    assert_eq!(code, 200, "fully ingested index must be ready: {body}");

    let (code, body) = http_get(addr, "/statz", t).expect("statz");
    assert_eq!(code, 200);
    for field in [
        "\"ingest_done\": true",
        "\"state_fp\"",
        "\"full_fp\"",
        "\"records_applied\"",
        // Satellite: the serving accounting and durability cursor are in
        // the same snapshot the gate polls, not only in the final report.
        "\"queries_received\"",
        "\"queries_served\"",
        "\"queries_shed\"",
        "\"checkpoint_seq\"",
        "\"slo\"",
        "\"diagnosis\"",
    ] {
        assert!(body.contains(field), "statz missing {field}: {body}");
    }

    let (code, body) = http_get(addr, &format!("/query?domain={impacted}"), t).expect("query");
    assert_eq!(code, 200);
    for field in [
        "\"attacks_seen\"",
        "\"peak_ppm\"",
        "\"baseline_source\"",
        "\"degraded\"",
        "\"staleness_s\"",
    ] {
        assert!(body.contains(field), "answer missing {field}: {body}");
    }
    assert!(!body.contains("\"attacks_seen\": 0"), "picked an impacted domain: {body}");

    let (code, _) = http_get(addr, "/query?domain=no.such.domain.example", t).expect("404 query");
    assert_eq!(code, 404);
    let (code, _) = http_get(addr, "/query", t).expect("400 query");
    assert_eq!(code, 400);
    let (code, _) = http_get(addr, "/nope", t).expect("404 route");
    assert_eq!(code, 404);

    // The exposition endpoint answers text that the strict parser accepts
    // and that carries the per-route instrumentation.
    let (code, body) = http_get(addr, "/metricsz", t).expect("metricsz");
    assert_eq!(code, 200);
    let families = obs::expo::parse_text(&body).expect("exposition must parse strictly");
    assert!(!families.is_empty());
    assert!(
        body.contains("sched_daemon_http_requests_query"),
        "per-route counter missing from exposition"
    );
    assert!(
        body.contains("# TYPE sched_daemon_http_latency_us_query histogram"),
        "per-route latency histogram missing from exposition"
    );

    // The live-plane routes answer from the ticked store.
    let (code, body) = http_get(addr, "/seriesz?name=live.records", t).expect("seriesz");
    assert_eq!(code, 200, "{body}");
    let doc = Json::parse(&body).expect("seriesz JSON");
    let det = doc.get("deterministic").expect("deterministic half");
    assert_eq!(det.get("kind").and_then(|k| k.as_str()), Some("delta"));
    assert!(doc.get("annotation").and_then(|a| a.get("wall_ms")).is_some());

    let (code, body) = http_get(addr, "/seriesz?name=no.such.series", t).expect("seriesz 404");
    assert_eq!(code, 404);
    assert!(body.contains("\"known\""), "unknown series must list the known ones: {body}");

    let (code, body) = http_get(addr, "/sloz", t).expect("sloz");
    assert_eq!(code, 200);
    let doc = Json::parse(&body).expect("sloz JSON");
    assert!(doc.get("deterministic").and_then(|d| d.get("transitions")).is_some());
    assert!(doc.get("annotation").and_then(|a| a.get("diagnosis")).is_some());

    server.shutdown();
}

#[test]
fn hostile_query_strings_get_structured_400s_not_fallthrough() {
    let _g = lock();
    let src = feed::build(&tiny(), 2);
    let dir = Arc::new(DomainDir::build(&src.world.infra));
    let cell = Arc::new(SwapCell::new(Default::default()));
    let mut ing = Ingestor::new(&src, IngestConfig::default(), Arc::clone(&cell));
    ing.run();
    let telemetry = Telemetry::new(TelemetryConfig::default());
    let server = Server::start(
        &ServerConfig::default(),
        Arc::clone(&cell),
        Arc::clone(&dir),
        Some(telemetry),
    )
    .expect("bind");
    let addr = server.addr();
    let t = Duration::from_secs(5);

    let big = "a".repeat(300);
    let hostile = [
        "/query?domain=a&domain=b",             // duplicate key
        "/query?domain=%zz",                    // malformed escape
        "/query?domain=%2",                     // truncated escape
        "/query?domain=%ff%fe",                 // decodes to invalid UTF-8
        "/query?bogus=1",                       // unknown parameter
        "/query?domain",                        // bare word, no '='
        "/query?domain=a&&domain=b",            // stray '&'
        "/seriesz?name=live.records&last=nope", // non-numeric window
        "/seriesz?name=live.records&last=0",    // zero window
    ];
    for path in hostile {
        let (code, body) = http_get(addr, path, t).expect(path);
        assert_eq!(code, 400, "{path} must 400: {body}");
        let doc = Json::parse(&body).unwrap_or_else(|e| panic!("{path}: bad JSON {e}: {body}"));
        assert!(doc.get("error").is_some(), "{path}: no error field: {body}");
    }
    let (code, body) = http_get(addr, &format!("/query?domain={big}"), t).expect("oversized value");
    assert_eq!(code, 400, "oversized value must 400: {body}");
    assert!(body.contains("max 256"), "detail must name the limit: {body}");

    server.shutdown();
}

/// The tentpole determinism contract, end to end: the deterministic
/// halves of `/seriesz` and `/sloz` are a pure function of the feed
/// prefix — byte-identical across chaos seeds, `--jobs`, and a
/// crash-recovery replay.
#[test]
fn live_series_and_slo_verdicts_are_replay_deterministic() {
    let _g = lock();
    let src = feed::build(&tiny(), 2);
    let total = src.batches.len();

    let capture = |ing_cfg: IngestConfig, jobs: usize| -> (String, String) {
        let src = feed::build(&tiny(), jobs);
        let cell = Arc::new(SwapCell::new(Default::default()));
        let telemetry = Telemetry::new(TelemetryConfig::default());
        let mut ing =
            Ingestor::new(&src, ing_cfg, Arc::clone(&cell)).with_telemetry(Arc::clone(&telemetry));
        ing.recover_and_run();
        let dir = Arc::new(DomainDir::build(&src.world.infra));
        let server =
            Server::start(&ServerConfig::default(), Arc::clone(&cell), dir, Some(telemetry))
                .expect("bind");
        let t = Duration::from_secs(5);
        let mut series = String::new();
        for name in ["live.batches", "live.records", "live.staleness_s", "live.ingest_lag"] {
            let (code, body) =
                http_get(server.addr(), &format!("/seriesz?name={name}&last=100000"), t)
                    .expect("seriesz");
            assert_eq!(code, 200, "{body}");
            let doc = Json::parse(&body).expect("seriesz JSON");
            series.push_str(&doc.get("deterministic").expect("det half").pretty());
            series.push('\n');
        }
        let (code, body) = http_get(server.addr(), "/sloz", t).expect("sloz");
        assert_eq!(code, 200);
        let doc = Json::parse(&body).expect("sloz JSON");
        let verdicts = doc.get("deterministic").expect("det half").pretty();
        server.shutdown();
        (series, verdicts)
    };

    let (series_a, verdicts_a) = capture(IngestConfig::default(), 1);
    let (series_b, verdicts_b) =
        capture(IngestConfig { chaos_seed: Some(9), segment: 8, ..IngestConfig::default() }, 4);
    assert_eq!(series_a, series_b, "chaos seed / jobs changed the deterministic series");
    assert_eq!(verdicts_a, verdicts_b, "chaos seed / jobs changed the SLO verdict sequence");

    // Crash mid-ingest, recover from the marker, finish: the regrown
    // series must still match — recovery replay ticks like live ingest.
    let ckpt = tempdir("daemon-live-determinism");
    let mut dead = IndexState::default();
    for batch in &src.batches[..total / 2] {
        dead.apply(&src.world, batch);
    }
    checkpoint::save(&ckpt, &dead).expect("write checkpoint marker");
    drop(dead);
    let (series_c, verdicts_c) = capture(
        IngestConfig {
            chaos_seed: Some(3),
            checkpoint_dir: Some(ckpt.clone()),
            ..IngestConfig::default()
        },
        2,
    );
    assert_eq!(series_a, series_c, "crash recovery changed the deterministic series");
    assert_eq!(verdicts_a, verdicts_c, "crash recovery changed the SLO verdict sequence");
    let _ = std::fs::remove_dir_all(&ckpt);
}

#[test]
fn overload_sheds_visibly_and_accounts_every_query_exactly_once() {
    let _g = lock();
    let src = feed::build(&tiny(), 2);
    let dir = Arc::new(DomainDir::build(&src.world.infra));
    let cell = Arc::new(SwapCell::new(Default::default()));
    let mut ing = Ingestor::new(&src, IngestConfig::default(), Arc::clone(&cell));
    ing.run();

    let received0 = obs::counter("sched.daemon.queries_received").get();
    let served0 = obs::counter("sched.daemon.queries_served").get();
    let shed0 = obs::counter("sched.daemon.queries_shed").get();
    let errors0 = obs::counter("sched.daemon.query_errors").get();

    // One slow worker, a one-slot queue, and a 32-connection burst: the
    // accept loop must shed most of it — with a 503, not a hang.
    let cfg =
        ServerConfig { workers: 1, queue_cap: 1, handle_delay_ms: 20, ..ServerConfig::default() };
    let server = Server::start(&cfg, Arc::clone(&cell), Arc::clone(&dir), None).expect("bind");
    let addr = server.addr();
    let t = Duration::from_secs(10);

    let mut client = (0u64, 0u64, 0u64); // ok, shed, errors (client view)
    std::thread::scope(|scope| {
        let handles: Vec<_> = (0..8)
            .map(|_| {
                scope.spawn(move || {
                    let mut c = (0u64, 0u64, 0u64);
                    for _ in 0..4 {
                        match http_get(addr, "/healthz", t) {
                            Ok((200, _)) => c.0 += 1,
                            Ok((503, _)) => c.1 += 1,
                            Ok(_) | Err(_) => c.2 += 1,
                        }
                    }
                    c
                })
            })
            .collect();
        for h in handles {
            let c = h.join().expect("client thread");
            client = (client.0 + c.0, client.1 + c.1, client.2 + c.2);
        }
    });
    server.shutdown(); // drains the queue: every admitted conn is handled

    let received = obs::counter("sched.daemon.queries_received").get() - received0;
    let served = obs::counter("sched.daemon.queries_served").get() - served0;
    let shed = obs::counter("sched.daemon.queries_shed").get() - shed0;
    let errors = obs::counter("sched.daemon.query_errors").get() - errors0;

    assert_eq!(client.0 + client.1 + client.2, 32, "every client query classified once");
    assert_eq!(received, 32, "every connection admitted or shed at the accept loop");
    assert_eq!(
        received,
        served + shed + errors,
        "shed accounting must balance exactly (served {served} + shed {shed} + errors {errors})"
    );
    assert!(shed > 0, "queue_cap 1 + slow worker + 32-burst must shed, got 0");
    assert_eq!(client.1, shed, "client-observed 503s must equal the daemon's shed count");
}

fn tempdir(tag: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!("dnsimpactd-test-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("create tempdir");
    dir
}
