//! The two named §6.3.1 anecdotes, rebuilt as fixtures:
//!
//! - **nic.ru**: a Russian registrar offering secondary nameservers as a
//!   service; its NSSet (hosting >10 K domains) was attacked in March 2022
//!   and reached **100%** resolution failure — the largest complete
//!   failure in the dataset.
//! - **Euskaltel**: a Spanish ISP responsible for 1,405 domains that
//!   failed to answer **83%** of queries during its attack.

use dnsimpact::core::impact::{compute_impacts, ImpactConfig};
use dnsimpact::prelude::*;

fn build(
    name: &str,
    domains: u32,
    ns_count: u32,
    capacity: f64,
) -> (Infra, NsSetId, Vec<std::net::Ipv4Addr>) {
    let mut infra = Infra::new();
    let addrs: Vec<std::net::Ipv4Addr> =
        (0..ns_count).map(|i| format!("185.10.{i}.53").parse().unwrap()).collect();
    let ids: Vec<NsId> = addrs
        .iter()
        .enumerate()
        .map(|(i, &a)| {
            infra.add_nameserver(
                format!("ns{i}.{name}.example").parse().unwrap(),
                a,
                Asn(64500),
                Deployment::Unicast,
                capacity,
                domains as f64 * 0.3,
                35.0,
            )
        })
        .collect();
    let set = infra.intern_nsset(ids);
    for i in 0..domains {
        infra.add_domain(format!("c{i}.{name}.example").parse().unwrap(), set);
    }
    (infra, set, addrs)
}

fn run_attack(
    infra: &Infra,
    addrs: &[std::net::Ipv4Addr],
    pps_per_ns: f64,
    seed: u64,
) -> dnsimpact::core::impact::ImpactEvent {
    let rngs = RngFactory::new(seed);
    let start = SimTime::from_days(6) + SimDuration::from_hours(9);
    let attacks: Vec<Attack> = addrs
        .iter()
        .enumerate()
        .map(|(i, &a)| Attack {
            id: AttackId(i as u64),
            target: a,
            start,
            duration: SimDuration::from_hours(3),
            vectors: vec![VectorSpec {
                kind: VectorKind::RandomSpoofed,
                protocol: Protocol::Tcp,
                ports: vec![53],
                victim_pps: pps_per_ns,
                source_count: 2_000_000,
            }],
        })
        .collect();
    let darknet = Darknet::ucsd_like();
    let obs = BackscatterSampler::new(&darknet).sample(&attacks, &rngs);
    let classifier = RsdosClassifier::default();
    let records = classifier.classify(&obs);
    let episodes = classifier.episodes(&records);
    assert_eq!(episodes.len(), addrs.len());
    let mut loads = LoadBook::new();
    for (addr, w, pps) in accumulate_windows(&attacks) {
        loads.add(addr, w, pps);
    }
    let events = join_episodes(infra, infra, &episodes, &OpenResolverList::new(), false);
    let census =
        AnycastCensus::from_ground_truth(infra, AnycastCensus::paper_snapshot_dates(), 1.0, &rngs);
    let (impacts, _) = compute_impacts(
        infra,
        &SweepSchedule::new(seed),
        &Resolver::default(),
        &loads,
        &episodes,
        &events,
        &census,
        &rngs,
        &ImpactConfig::default(),
    );
    // One impact event per (episode, NSSet) pair — sibling episodes of a
    // campaign each join to the same NSSet, as in the paper's counting of
    // "distinct events of attacks to distinct NSSets".
    assert_eq!(impacts.len(), addrs.len());
    let set = impacts[0].nsset;
    assert!(impacts.iter().all(|e| e.nsset == set));
    impacts.into_iter().next().unwrap()
}

#[test]
fn nic_ru_complete_failure_on_large_nsset() {
    // Secondary-DNS service: 12 K domains on three servers, hit hard
    // enough that nothing answers (hundreds of times capacity).
    let (infra, _set, addrs) = build("nicru", 12_000, 3, 80_000.0);
    let e = run_attack(&infra, &addrs, 60_000_000.0, 1);
    assert!(e.nsset_domains > 10_000, "a >10K-domain infrastructure");
    assert!(
        e.failure_rate > 0.995,
        "100% of measured domains fail, as for nic.ru: {:.3}",
        e.failure_rate
    );
    assert!(e.complete_failure());
    assert_eq!(e.anycast, AnycastClass::Unicast, "the paper's failing NSSets are unicast");
}

#[test]
fn euskaltel_partial_failure_at_83_percent() {
    // A 1,405-domain ISP deployment, saturated to the level where the
    // per-attempt answer probability ≈ 45% → resolution failure ≈ 83%
    // after unbound's retries across both servers (0.55² ≈ 0.3 per pair;
    // tuned via offered load).
    let (infra, _set, addrs) = build("euskaltel", 1_405, 2, 50_000.0);
    // offered ≈ capacity/0.42 → answer ≈ 0.42; with 2 servers retried:
    // failure ≈ (1-0.42)² ≈ 0.34... push harder: answer ≈ 0.17 → ≈ 0.69;
    // answer ≈ 0.085 → ≈ 0.84.
    let e = run_attack(&infra, &addrs, 580_000.0, 2);
    assert_eq!(e.nsset_domains, 1_405);
    assert!(
        (0.70..0.95).contains(&e.failure_rate),
        "≈83% of queries fail, as for Euskaltel: {:.3}",
        e.failure_rate
    );
    assert!(!e.complete_failure(), "some queries still resolve");
    // The impact metric is dominated by timeout accumulation.
    let impact = e.impact_on_rtt.expect("baseline day exists");
    assert!(impact > 20.0, "devastating but not total: {impact:.1}x");
}
