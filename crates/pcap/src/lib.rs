//! Minimal packet-capture substrate: a libpcap-format file writer/reader and
//! the frame builders/parsers needed to synthesize realistic backscatter and
//! DNS packets (Ethernet II, IPv4, UDP, TCP, ICMPv4).
//!
//! The paper's telescope ingests raw darknet traffic; our simulated
//! telescope can export the backscatter it samples as a `.pcap` readable by
//! Wireshark/tcpdump, and the DNS measurement path frames real `dnswire`
//! messages into UDP — keeping the simulated pipeline honest at the byte
//! level.

pub mod file;
pub mod frame;

pub use file::{PcapPacket, PcapReader, PcapWriter};
pub use frame::{
    checksum, EtherType, EthernetFrame, Icmpv4, IpProto, Ipv4Header, TcpFlags, TcpSegment,
    UdpDatagram,
};

/// Errors from parsing capture files or frames.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PcapError {
    /// File too short or magic number unknown.
    BadFileHeader,
    /// A record header promised more bytes than the file holds.
    Truncated,
    /// A frame field was inconsistent (bad version, short header, length
    /// mismatch).
    BadFrame,
    /// A checksum did not verify.
    BadChecksum,
}

impl std::fmt::Display for PcapError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PcapError::BadFileHeader => write!(f, "bad pcap file header"),
            PcapError::Truncated => write!(f, "truncated capture"),
            PcapError::BadFrame => write!(f, "malformed frame"),
            PcapError::BadChecksum => write!(f, "checksum mismatch"),
        }
    }
}
impl std::error::Error for PcapError {}
