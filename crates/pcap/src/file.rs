//! Classic libpcap file format (the 24-byte global header followed by
//! 16-byte per-packet record headers), microsecond resolution, Ethernet
//! link type.

use crate::PcapError;
use std::io::{self, Read, Write};

const MAGIC_USEC: u32 = 0xA1B2_C3D4;
const VERSION_MAJOR: u16 = 2;
const VERSION_MINOR: u16 = 4;
/// LINKTYPE_ETHERNET.
const LINKTYPE_ETHERNET: u32 = 1;
const DEFAULT_SNAPLEN: u32 = 65_535;

/// One captured packet.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct PcapPacket {
    /// Seconds since the capture epoch (for simulated captures, seconds
    /// since the simulation epoch).
    pub ts_sec: u32,
    /// Microseconds within the second.
    pub ts_usec: u32,
    /// Original length on the wire (may exceed `data.len()` if snapped).
    pub orig_len: u32,
    /// Captured bytes.
    pub data: Vec<u8>,
}

impl PcapPacket {
    pub fn new(ts_sec: u32, ts_usec: u32, data: Vec<u8>) -> PcapPacket {
        let orig_len = data.len() as u32;
        PcapPacket { ts_sec, ts_usec, orig_len, data }
    }
}

/// Streaming pcap writer over any `io::Write`.
pub struct PcapWriter<W: Write> {
    out: W,
    snaplen: u32,
    packets: u64,
}

impl<W: Write> PcapWriter<W> {
    /// Write the global header and return the writer.
    pub fn new(mut out: W) -> io::Result<PcapWriter<W>> {
        let mut hdr = Vec::with_capacity(24);
        hdr.extend_from_slice(&MAGIC_USEC.to_le_bytes());
        hdr.extend_from_slice(&VERSION_MAJOR.to_le_bytes());
        hdr.extend_from_slice(&VERSION_MINOR.to_le_bytes());
        hdr.extend_from_slice(&0i32.to_le_bytes()); // thiszone
        hdr.extend_from_slice(&0u32.to_le_bytes()); // sigfigs
        hdr.extend_from_slice(&DEFAULT_SNAPLEN.to_le_bytes());
        hdr.extend_from_slice(&LINKTYPE_ETHERNET.to_le_bytes());
        out.write_all(&hdr)?;
        Ok(PcapWriter { out, snaplen: DEFAULT_SNAPLEN, packets: 0 })
    }

    /// Append one packet record (snapping to the snaplen if needed).
    pub fn write_packet(&mut self, pkt: &PcapPacket) -> io::Result<()> {
        self.write_record(pkt.ts_sec, pkt.ts_usec, pkt.orig_len, &pkt.data)
    }

    /// Append one packet record from borrowed frame bytes — the zero-copy
    /// twin of [`write_packet`](PcapWriter::write_packet) for callers that
    /// compose frames in a reused scratch buffer. The original length is
    /// taken as `data.len()` (nothing was snapped upstream).
    pub fn write_frame(&mut self, ts_sec: u32, ts_usec: u32, data: &[u8]) -> io::Result<()> {
        self.write_record(ts_sec, ts_usec, data.len() as u32, data)
    }

    fn write_record(
        &mut self,
        ts_sec: u32,
        ts_usec: u32,
        orig_len: u32,
        data: &[u8],
    ) -> io::Result<()> {
        let incl = (data.len() as u32).min(self.snaplen);
        let mut hdr = [0u8; 16];
        hdr[0..4].copy_from_slice(&ts_sec.to_le_bytes());
        hdr[4..8].copy_from_slice(&ts_usec.to_le_bytes());
        hdr[8..12].copy_from_slice(&incl.to_le_bytes());
        hdr[12..16].copy_from_slice(&orig_len.to_le_bytes());
        self.out.write_all(&hdr)?;
        self.out.write_all(&data[..incl as usize])?;
        self.packets += 1;
        Ok(())
    }

    /// Number of packets written so far.
    pub fn packet_count(&self) -> u64 {
        self.packets
    }

    /// Flush and return the inner writer.
    pub fn finish(mut self) -> io::Result<W> {
        self.out.flush()?;
        Ok(self.out)
    }
}

/// Reader over an in-memory or streamed pcap file.
pub struct PcapReader<R: Read> {
    inp: R,
    swapped: bool,
    snaplen: u32,
    /// Link type from the global header.
    pub linktype: u32,
}

impl<R: Read> PcapReader<R> {
    pub fn new(mut inp: R) -> Result<PcapReader<R>, PcapError> {
        let mut hdr = [0u8; 24];
        inp.read_exact(&mut hdr).map_err(|_| PcapError::BadFileHeader)?;
        let magic = u32::from_le_bytes([hdr[0], hdr[1], hdr[2], hdr[3]]);
        let swapped = match magic {
            MAGIC_USEC => false,
            m if m == MAGIC_USEC.swap_bytes() => true,
            _ => return Err(PcapError::BadFileHeader),
        };
        let rd32 = |b: &[u8]| {
            let v = u32::from_le_bytes([b[0], b[1], b[2], b[3]]);
            if swapped {
                v.swap_bytes()
            } else {
                v
            }
        };
        let snaplen = rd32(&hdr[16..20]);
        let linktype = rd32(&hdr[20..24]);
        Ok(PcapReader { inp, swapped, snaplen, linktype })
    }

    /// Read the next packet; `Ok(None)` at clean EOF.
    pub fn next_packet(&mut self) -> Result<Option<PcapPacket>, PcapError> {
        let mut rec = [0u8; 16];
        match self.inp.read_exact(&mut rec) {
            Ok(()) => {}
            Err(e) if e.kind() == io::ErrorKind::UnexpectedEof => return Ok(None),
            Err(_) => return Err(PcapError::Truncated),
        }
        let rd32 = |b: &[u8]| {
            let v = u32::from_le_bytes([b[0], b[1], b[2], b[3]]);
            if self.swapped {
                v.swap_bytes()
            } else {
                v
            }
        };
        let ts_sec = rd32(&rec[0..4]);
        let ts_usec = rd32(&rec[4..8]);
        let incl = rd32(&rec[8..12]);
        let orig_len = rd32(&rec[12..16]);
        // A record cannot legitimately exceed the capture's snaplen; a
        // larger claim is corruption, and honoring it would force an
        // attacker-controlled allocation.
        if incl > self.snaplen.max(DEFAULT_SNAPLEN) {
            return Err(PcapError::Truncated);
        }
        let mut data = vec![0u8; incl as usize];
        self.inp.read_exact(&mut data).map_err(|_| PcapError::Truncated)?;
        Ok(Some(PcapPacket { ts_sec, ts_usec, orig_len, data }))
    }

    /// Drain all remaining packets.
    pub fn read_all(&mut self) -> Result<Vec<PcapPacket>, PcapError> {
        let mut out = Vec::new();
        while let Some(p) = self.next_packet()? {
            out.push(p);
        }
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Cursor;

    #[test]
    fn writer_reader_roundtrip() {
        let mut w = PcapWriter::new(Vec::new()).unwrap();
        let pkts = vec![
            PcapPacket::new(100, 250_000, vec![0xAA; 60]),
            PcapPacket::new(101, 0, vec![0x55; 1500]),
            PcapPacket::new(101, 999_999, vec![]),
        ];
        for p in &pkts {
            w.write_packet(p).unwrap();
        }
        assert_eq!(w.packet_count(), 3);
        let bytes = w.finish().unwrap();
        assert_eq!(bytes.len(), 24 + 3 * 16 + 60 + 1500);

        let mut r = PcapReader::new(Cursor::new(bytes)).unwrap();
        assert_eq!(r.linktype, 1);
        let back = r.read_all().unwrap();
        assert_eq!(back, pkts);
    }

    #[test]
    fn write_frame_matches_write_packet_bytes() {
        let pkts = [PcapPacket::new(100, 250_000, vec![0xAA; 60]), PcapPacket::new(101, 0, vec![])];
        let mut a = PcapWriter::new(Vec::new()).unwrap();
        let mut b = PcapWriter::new(Vec::new()).unwrap();
        for p in &pkts {
            a.write_packet(p).unwrap();
            b.write_frame(p.ts_sec, p.ts_usec, &p.data).unwrap();
        }
        assert_eq!(a.finish().unwrap(), b.finish().unwrap());
    }

    #[test]
    fn empty_capture() {
        let w = PcapWriter::new(Vec::new()).unwrap();
        let bytes = w.finish().unwrap();
        let mut r = PcapReader::new(Cursor::new(bytes)).unwrap();
        assert_eq!(r.read_all().unwrap(), vec![]);
    }

    #[test]
    fn bad_magic_rejected() {
        let bytes = vec![0u8; 24];
        assert_eq!(PcapReader::new(Cursor::new(bytes)).err(), Some(PcapError::BadFileHeader));
    }

    #[test]
    fn short_header_rejected() {
        let bytes = vec![0u8; 10];
        assert_eq!(PcapReader::new(Cursor::new(bytes)).err(), Some(PcapError::BadFileHeader));
    }

    #[test]
    fn truncated_record_rejected() {
        let mut w = PcapWriter::new(Vec::new()).unwrap();
        w.write_packet(&PcapPacket::new(1, 2, vec![1, 2, 3, 4])).unwrap();
        let mut bytes = w.finish().unwrap();
        bytes.truncate(bytes.len() - 2);
        let mut r = PcapReader::new(Cursor::new(bytes)).unwrap();
        assert_eq!(r.next_packet(), Err(PcapError::Truncated));
    }

    #[test]
    fn oversized_record_claim_rejected() {
        // A record header claiming 4 GB must not trigger a 4 GB allocation.
        let w = PcapWriter::new(Vec::new()).unwrap();
        let mut bytes = w.finish().unwrap();
        bytes.extend_from_slice(&1u32.to_le_bytes()); // ts_sec
        bytes.extend_from_slice(&0u32.to_le_bytes()); // ts_usec
        bytes.extend_from_slice(&u32::MAX.to_le_bytes()); // incl = 4 GB
        bytes.extend_from_slice(&u32::MAX.to_le_bytes()); // orig
        let mut r = PcapReader::new(Cursor::new(bytes)).unwrap();
        assert_eq!(r.next_packet(), Err(PcapError::Truncated));
    }

    #[test]
    fn swapped_endianness_read() {
        // Hand-build a big-endian header + one record.
        let mut bytes = Vec::new();
        bytes.extend_from_slice(&MAGIC_USEC.to_be_bytes());
        bytes.extend_from_slice(&2u16.to_be_bytes());
        bytes.extend_from_slice(&4u16.to_be_bytes());
        bytes.extend_from_slice(&0u32.to_be_bytes());
        bytes.extend_from_slice(&0u32.to_be_bytes());
        bytes.extend_from_slice(&65535u32.to_be_bytes());
        bytes.extend_from_slice(&1u32.to_be_bytes());
        bytes.extend_from_slice(&7u32.to_be_bytes()); // ts_sec
        bytes.extend_from_slice(&8u32.to_be_bytes()); // ts_usec
        bytes.extend_from_slice(&2u32.to_be_bytes()); // incl
        bytes.extend_from_slice(&2u32.to_be_bytes()); // orig
        bytes.extend_from_slice(&[0xDE, 0xAD]);
        let mut r = PcapReader::new(Cursor::new(bytes)).unwrap();
        let p = r.next_packet().unwrap().unwrap();
        assert_eq!(p.ts_sec, 7);
        assert_eq!(p.ts_usec, 8);
        assert_eq!(p.data, vec![0xDE, 0xAD]);
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;
    use std::io::Cursor;

    proptest! {
        /// The reader never panics on arbitrary bytes.
        #[test]
        fn reader_never_panics(bytes in prop::collection::vec(any::<u8>(), 0..400)) {
            if let Ok(mut r) = PcapReader::new(Cursor::new(bytes)) {
                let _ = r.read_all();
            }
        }

        /// Writer → reader roundtrip for arbitrary packet sets.
        #[test]
        fn roundtrip(packets in prop::collection::vec(
            (any::<u32>(), 0u32..1_000_000, prop::collection::vec(any::<u8>(), 0..100)),
            0..12,
        )) {
            let mut w = PcapWriter::new(Vec::new()).unwrap();
            let pkts: Vec<PcapPacket> = packets
                .into_iter()
                .map(|(s, us, data)| PcapPacket::new(s, us, data))
                .collect();
            for p in &pkts {
                w.write_packet(p).unwrap();
            }
            let bytes = w.finish().unwrap();
            let mut r = PcapReader::new(Cursor::new(bytes)).unwrap();
            prop_assert_eq!(r.read_all().unwrap(), pkts);
        }
    }
}
