//! Frame builders and parsers: Ethernet II, IPv4, UDP, TCP, ICMPv4.
//!
//! Only the fields the study touches are modeled; everything encodes to
//! valid bytes with correct checksums so exported captures dissect cleanly.

use crate::PcapError;
use std::net::Ipv4Addr;

/// One's-complement sum of 16-bit big-endian words (odd tail zero-padded).
fn ones_sum(data: &[u8]) -> u32 {
    let mut sum = 0u32;
    let mut chunks = data.chunks_exact(2);
    for c in &mut chunks {
        sum += u16::from_be_bytes([c[0], c[1]]) as u32;
    }
    if let [last] = chunks.remainder() {
        sum += (*last as u32) << 8;
    }
    sum
}

fn fold_sum(mut sum: u32) -> u16 {
    while sum > 0xFFFF {
        sum = (sum & 0xFFFF) + (sum >> 16);
    }
    !(sum as u16)
}

/// RFC 1071 Internet checksum over `data` (one's-complement sum of 16-bit
/// words).
pub fn checksum(data: &[u8]) -> u16 {
    fold_sum(ones_sum(data))
}

/// Checksum with a preceding IPv4 pseudo-header (for UDP/TCP). Summed
/// piecewise — the pseudo-header is 12 bytes (word-aligned), so the words
/// are the same as concatenating and no scratch buffer is needed.
fn checksum_pseudo(src: Ipv4Addr, dst: Ipv4Addr, proto: u8, payload: &[u8]) -> u16 {
    let mut sum = ones_sum(&src.octets()) + ones_sum(&dst.octets());
    sum += proto as u32;
    sum += payload.len() as u16 as u32;
    sum += ones_sum(payload);
    fold_sum(sum)
}

/// EtherType values we emit.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum EtherType {
    Ipv4,
    Other(u16),
}

impl EtherType {
    pub fn code(self) -> u16 {
        match self {
            EtherType::Ipv4 => 0x0800,
            EtherType::Other(c) => c,
        }
    }
    pub fn from_code(c: u16) -> EtherType {
        match c {
            0x0800 => EtherType::Ipv4,
            other => EtherType::Other(other),
        }
    }
}

/// An Ethernet II frame.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct EthernetFrame {
    pub dst: [u8; 6],
    pub src: [u8; 6],
    pub ethertype: EtherType,
    pub payload: Vec<u8>,
}

impl EthernetFrame {
    pub fn ipv4(payload: Vec<u8>) -> EthernetFrame {
        EthernetFrame {
            dst: [0x02, 0, 0, 0, 0, 0x01],
            src: [0x02, 0, 0, 0, 0, 0x02],
            ethertype: EtherType::Ipv4,
            payload,
        }
    }

    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(14 + self.payload.len());
        self.encode_into(&mut out);
        out
    }

    /// Append the frame to `out` (no intermediate allocation).
    pub fn encode_into(&self, out: &mut Vec<u8>) {
        self.encode_header_into(out);
        out.extend_from_slice(&self.payload);
    }

    /// Append just the 14-byte header; the caller writes the payload
    /// directly after, composing the frame in place.
    pub fn encode_header_into(&self, out: &mut Vec<u8>) {
        out.extend_from_slice(&self.dst);
        out.extend_from_slice(&self.src);
        out.extend_from_slice(&self.ethertype.code().to_be_bytes());
    }

    pub fn decode(bytes: &[u8]) -> Result<EthernetFrame, PcapError> {
        if bytes.len() < 14 {
            return Err(PcapError::BadFrame);
        }
        Ok(EthernetFrame {
            dst: bytes[0..6].try_into().unwrap(),
            src: bytes[6..12].try_into().unwrap(),
            ethertype: EtherType::from_code(u16::from_be_bytes([bytes[12], bytes[13]])),
            payload: bytes[14..].to_vec(),
        })
    }
}

/// IP protocol numbers we emit.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum IpProto {
    Icmp,
    Tcp,
    Udp,
    Other(u8),
}

impl IpProto {
    pub fn code(self) -> u8 {
        match self {
            IpProto::Icmp => 1,
            IpProto::Tcp => 6,
            IpProto::Udp => 17,
            IpProto::Other(c) => c,
        }
    }
    pub fn from_code(c: u8) -> IpProto {
        match c {
            1 => IpProto::Icmp,
            6 => IpProto::Tcp,
            17 => IpProto::Udp,
            other => IpProto::Other(other),
        }
    }
}

/// An IPv4 header (no options) plus payload.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Ipv4Header {
    pub src: Ipv4Addr,
    pub dst: Ipv4Addr,
    pub proto: IpProto,
    pub ttl: u8,
    pub ident: u16,
    pub payload: Vec<u8>,
}

impl Ipv4Header {
    pub fn new(src: Ipv4Addr, dst: Ipv4Addr, proto: IpProto, payload: Vec<u8>) -> Ipv4Header {
        Ipv4Header { src, dst, proto, ttl: 64, ident: 0, payload }
    }

    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(20 + self.payload.len());
        self.encode_into(&mut out);
        out
    }

    /// Append the packet to `out` (no intermediate allocation).
    pub fn encode_into(&self, out: &mut Vec<u8>) {
        Ipv4Header::encode_packet_into(
            self.src,
            self.dst,
            self.proto,
            self.ttl,
            self.ident,
            &self.payload,
            out,
        );
    }

    /// Append a header + borrowed payload to `out` without constructing an
    /// owning `Ipv4Header` — the zero-copy composition path.
    pub fn encode_packet_into(
        src: Ipv4Addr,
        dst: Ipv4Addr,
        proto: IpProto,
        ttl: u8,
        ident: u16,
        payload: &[u8],
        out: &mut Vec<u8>,
    ) {
        let base = out.len();
        let total = 20 + payload.len();
        out.push(0x45); // version 4, IHL 5
        out.push(0); // DSCP/ECN
        out.extend_from_slice(&(total as u16).to_be_bytes());
        out.extend_from_slice(&ident.to_be_bytes());
        out.extend_from_slice(&0u16.to_be_bytes()); // flags/fragment
        out.push(ttl);
        out.push(proto.code());
        out.extend_from_slice(&0u16.to_be_bytes()); // checksum placeholder
        out.extend_from_slice(&src.octets());
        out.extend_from_slice(&dst.octets());
        let c = checksum(&out[base..]);
        out[base + 10..base + 12].copy_from_slice(&c.to_be_bytes());
        out.extend_from_slice(payload);
    }

    /// Decode and verify the header checksum.
    pub fn decode(bytes: &[u8]) -> Result<Ipv4Header, PcapError> {
        if bytes.len() < 20 {
            return Err(PcapError::BadFrame);
        }
        if bytes[0] >> 4 != 4 {
            return Err(PcapError::BadFrame);
        }
        let ihl = (bytes[0] & 0x0F) as usize * 4;
        if ihl < 20 || bytes.len() < ihl {
            return Err(PcapError::BadFrame);
        }
        if checksum(&bytes[..ihl]) != 0 {
            return Err(PcapError::BadChecksum);
        }
        let total = u16::from_be_bytes([bytes[2], bytes[3]]) as usize;
        if total < ihl || total > bytes.len() {
            return Err(PcapError::BadFrame);
        }
        Ok(Ipv4Header {
            src: Ipv4Addr::new(bytes[12], bytes[13], bytes[14], bytes[15]),
            dst: Ipv4Addr::new(bytes[16], bytes[17], bytes[18], bytes[19]),
            proto: IpProto::from_code(bytes[9]),
            ttl: bytes[8],
            ident: u16::from_be_bytes([bytes[4], bytes[5]]),
            payload: bytes[ihl..total].to_vec(),
        })
    }
}

/// A UDP datagram (checksummed against the given endpoints).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct UdpDatagram {
    pub src_port: u16,
    pub dst_port: u16,
    pub payload: Vec<u8>,
}

impl UdpDatagram {
    pub fn new(src_port: u16, dst_port: u16, payload: Vec<u8>) -> UdpDatagram {
        UdpDatagram { src_port, dst_port, payload }
    }

    pub fn encode(&self, src: Ipv4Addr, dst: Ipv4Addr) -> Vec<u8> {
        let mut out = Vec::with_capacity(8 + self.payload.len());
        self.encode_into(src, dst, &mut out);
        out
    }

    /// Append the datagram to `out` (no intermediate allocation).
    pub fn encode_into(&self, src: Ipv4Addr, dst: Ipv4Addr, out: &mut Vec<u8>) {
        let base = out.len();
        let len = 8 + self.payload.len();
        out.extend_from_slice(&self.src_port.to_be_bytes());
        out.extend_from_slice(&self.dst_port.to_be_bytes());
        out.extend_from_slice(&(len as u16).to_be_bytes());
        out.extend_from_slice(&0u16.to_be_bytes());
        out.extend_from_slice(&self.payload);
        let mut c = checksum_pseudo(src, dst, 17, &out[base..]);
        if c == 0 {
            c = 0xFFFF; // RFC 768: transmitted zero means "no checksum"
        }
        out[base + 6..base + 8].copy_from_slice(&c.to_be_bytes());
    }

    /// Decode, verifying the checksum against the pseudo-header.
    pub fn decode(bytes: &[u8], src: Ipv4Addr, dst: Ipv4Addr) -> Result<UdpDatagram, PcapError> {
        if bytes.len() < 8 {
            return Err(PcapError::BadFrame);
        }
        let len = u16::from_be_bytes([bytes[4], bytes[5]]) as usize;
        if len < 8 || len > bytes.len() {
            return Err(PcapError::BadFrame);
        }
        let cks = u16::from_be_bytes([bytes[6], bytes[7]]);
        if cks != 0 && checksum_pseudo(src, dst, 17, &bytes[..len]) != 0 {
            return Err(PcapError::BadChecksum);
        }
        Ok(UdpDatagram {
            src_port: u16::from_be_bytes([bytes[0], bytes[1]]),
            dst_port: u16::from_be_bytes([bytes[2], bytes[3]]),
            payload: bytes[8..len].to_vec(),
        })
    }
}

/// TCP header flag bits.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub struct TcpFlags {
    pub syn: bool,
    pub ack: bool,
    pub rst: bool,
    pub fin: bool,
}

impl TcpFlags {
    pub const SYN: TcpFlags = TcpFlags { syn: true, ack: false, rst: false, fin: false };
    /// The signature of SYN-flood backscatter: the victim's SYN-ACK.
    pub const SYN_ACK: TcpFlags = TcpFlags { syn: true, ack: true, rst: false, fin: false };
    /// The other common backscatter signature: RST (or RST-ACK).
    pub const RST: TcpFlags = TcpFlags { syn: false, ack: false, rst: true, fin: false };

    fn to_byte(self) -> u8 {
        (self.fin as u8) | (self.syn as u8) << 1 | (self.rst as u8) << 2 | (self.ack as u8) << 4
    }
    fn from_byte(b: u8) -> TcpFlags {
        TcpFlags { fin: b & 1 != 0, syn: b & 2 != 0, rst: b & 4 != 0, ack: b & 16 != 0 }
    }
}

/// A minimal TCP segment (no options).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct TcpSegment {
    pub src_port: u16,
    pub dst_port: u16,
    pub seq: u32,
    pub ack: u32,
    pub flags: TcpFlags,
    pub window: u16,
    pub payload: Vec<u8>,
}

impl TcpSegment {
    /// A victim's SYN-ACK response to a spoofed SYN — the canonical RSDoS
    /// backscatter packet.
    pub fn syn_ack(src_port: u16, dst_port: u16, seq: u32, ack: u32) -> TcpSegment {
        TcpSegment {
            src_port,
            dst_port,
            seq,
            ack,
            flags: TcpFlags::SYN_ACK,
            window: 64_240,
            payload: Vec::new(),
        }
    }

    pub fn encode(&self, src: Ipv4Addr, dst: Ipv4Addr) -> Vec<u8> {
        let mut out = Vec::with_capacity(20 + self.payload.len());
        self.encode_into(src, dst, &mut out);
        out
    }

    /// Append the segment to `out` (no intermediate allocation).
    pub fn encode_into(&self, src: Ipv4Addr, dst: Ipv4Addr, out: &mut Vec<u8>) {
        let base = out.len();
        out.extend_from_slice(&self.src_port.to_be_bytes());
        out.extend_from_slice(&self.dst_port.to_be_bytes());
        out.extend_from_slice(&self.seq.to_be_bytes());
        out.extend_from_slice(&self.ack.to_be_bytes());
        out.push(5 << 4); // data offset 5 words
        out.push(self.flags.to_byte());
        out.extend_from_slice(&self.window.to_be_bytes());
        out.extend_from_slice(&0u16.to_be_bytes()); // checksum placeholder
        out.extend_from_slice(&0u16.to_be_bytes()); // urgent
        out.extend_from_slice(&self.payload);
        let c = checksum_pseudo(src, dst, 6, &out[base..]);
        out[base + 16..base + 18].copy_from_slice(&c.to_be_bytes());
    }

    pub fn decode(bytes: &[u8], src: Ipv4Addr, dst: Ipv4Addr) -> Result<TcpSegment, PcapError> {
        if bytes.len() < 20 {
            return Err(PcapError::BadFrame);
        }
        let off = (bytes[12] >> 4) as usize * 4;
        if off < 20 || off > bytes.len() {
            return Err(PcapError::BadFrame);
        }
        if checksum_pseudo(src, dst, 6, bytes) != 0 {
            return Err(PcapError::BadChecksum);
        }
        Ok(TcpSegment {
            src_port: u16::from_be_bytes([bytes[0], bytes[1]]),
            dst_port: u16::from_be_bytes([bytes[2], bytes[3]]),
            seq: u32::from_be_bytes([bytes[4], bytes[5], bytes[6], bytes[7]]),
            ack: u32::from_be_bytes([bytes[8], bytes[9], bytes[10], bytes[11]]),
            flags: TcpFlags::from_byte(bytes[13]),
            window: u16::from_be_bytes([bytes[14], bytes[15]]),
            payload: bytes[off..].to_vec(),
        })
    }
}

/// A minimal ICMPv4 message.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Icmpv4 {
    pub icmp_type: u8,
    pub code: u8,
    /// The 4 bytes after the checksum (id/seq for echo, unused for
    /// unreachable) followed by the body.
    pub rest: Vec<u8>,
}

impl Icmpv4 {
    /// Echo reply (type 0) — backscatter from ICMP-echo floods.
    pub fn echo_reply(id: u16, seq: u16) -> Icmpv4 {
        let mut rest = Vec::with_capacity(4);
        rest.extend_from_slice(&id.to_be_bytes());
        rest.extend_from_slice(&seq.to_be_bytes());
        Icmpv4 { icmp_type: 0, code: 0, rest }
    }

    /// Destination/port unreachable (type 3) — backscatter from UDP floods.
    pub fn port_unreachable(original: &[u8]) -> Icmpv4 {
        let mut rest = vec![0u8; 4];
        rest.extend_from_slice(&original[..original.len().min(28)]);
        Icmpv4 { icmp_type: 3, code: 3, rest }
    }

    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(4 + self.rest.len());
        self.encode_into(&mut out);
        out
    }

    /// Append the message to `out` (no intermediate allocation).
    pub fn encode_into(&self, out: &mut Vec<u8>) {
        let base = out.len();
        out.push(self.icmp_type);
        out.push(self.code);
        out.extend_from_slice(&0u16.to_be_bytes());
        out.extend_from_slice(&self.rest);
        let c = checksum(&out[base..]);
        out[base + 2..base + 4].copy_from_slice(&c.to_be_bytes());
    }

    pub fn decode(bytes: &[u8]) -> Result<Icmpv4, PcapError> {
        if bytes.len() < 4 {
            return Err(PcapError::BadFrame);
        }
        if checksum(bytes) != 0 {
            return Err(PcapError::BadChecksum);
        }
        Ok(Icmpv4 { icmp_type: bytes[0], code: bytes[1], rest: bytes[4..].to_vec() })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ip(s: &str) -> Ipv4Addr {
        s.parse().unwrap()
    }

    #[test]
    fn rfc1071_checksum_example() {
        // Example from RFC 1071 §3: words 0001 f203 f4f5 f6f7.
        let data = [0x00, 0x01, 0xf2, 0x03, 0xf4, 0xf5, 0xf6, 0xf7];
        assert_eq!(checksum(&data), !0xddf2);
    }

    #[test]
    fn checksum_odd_length() {
        // Trailing byte is padded with zero.
        assert_eq!(checksum(&[0xFF]), checksum(&[0xFF, 0x00]));
    }

    #[test]
    fn ethernet_roundtrip() {
        let f = EthernetFrame::ipv4(vec![1, 2, 3]);
        let back = EthernetFrame::decode(&f.encode()).unwrap();
        assert_eq!(back, f);
        assert_eq!(EthernetFrame::decode(&[0u8; 10]), Err(PcapError::BadFrame));
    }

    #[test]
    fn ipv4_roundtrip_and_checksum() {
        let h = Ipv4Header::new(ip("10.0.0.1"), ip("44.3.2.1"), IpProto::Tcp, vec![9; 32]);
        let bytes = h.encode();
        assert_eq!(bytes.len(), 52);
        let back = Ipv4Header::decode(&bytes).unwrap();
        assert_eq!(back, h);
        // Corrupt one header byte: checksum must fail.
        let mut bad = bytes.clone();
        bad[8] ^= 0xFF;
        assert_eq!(Ipv4Header::decode(&bad), Err(PcapError::BadChecksum));
    }

    #[test]
    fn ipv4_rejects_v6_and_short() {
        let mut bytes =
            Ipv4Header::new(ip("1.1.1.1"), ip("2.2.2.2"), IpProto::Udp, vec![]).encode();
        bytes[0] = 0x65;
        assert_eq!(Ipv4Header::decode(&bytes), Err(PcapError::BadFrame));
        assert_eq!(Ipv4Header::decode(&[0x45; 10]), Err(PcapError::BadFrame));
    }

    #[test]
    fn udp_roundtrip_and_checksum() {
        let (s, d) = (ip("192.0.2.1"), ip("44.0.0.1"));
        let u = UdpDatagram::new(53, 33_333, b"dns-payload".to_vec());
        let bytes = u.encode(s, d);
        let back = UdpDatagram::decode(&bytes, s, d).unwrap();
        assert_eq!(back, u);
        let mut bad = bytes.clone();
        bad[9] ^= 1;
        assert_eq!(UdpDatagram::decode(&bad, s, d), Err(PcapError::BadChecksum));
        // Wrong pseudo-header (different dst) must also fail.
        assert_eq!(UdpDatagram::decode(&bytes, s, ip("44.0.0.2")), Err(PcapError::BadChecksum));
    }

    #[test]
    fn tcp_syn_ack_roundtrip() {
        let (s, d) = (ip("195.135.195.195"), ip("44.17.3.9"));
        let t = TcpSegment::syn_ack(53, 4_777, 0xDEAD_BEEF, 0x1234_5678);
        let bytes = t.encode(s, d);
        assert_eq!(bytes.len(), 20);
        let back = TcpSegment::decode(&bytes, s, d).unwrap();
        assert_eq!(back, t);
        assert!(back.flags.syn && back.flags.ack && !back.flags.rst);
    }

    #[test]
    fn tcp_rst_flags() {
        let t = TcpSegment {
            src_port: 80,
            dst_port: 1234,
            seq: 1,
            ack: 0,
            flags: TcpFlags::RST,
            window: 0,
            payload: vec![],
        };
        let bytes = t.encode(ip("1.2.3.4"), ip("5.6.7.8"));
        let back = TcpSegment::decode(&bytes, ip("1.2.3.4"), ip("5.6.7.8")).unwrap();
        assert!(back.flags.rst && !back.flags.syn);
    }

    #[test]
    fn icmp_echo_reply_roundtrip() {
        let m = Icmpv4::echo_reply(0x0102, 7);
        let bytes = m.encode();
        let back = Icmpv4::decode(&bytes).unwrap();
        assert_eq!(back, m);
        assert_eq!(back.icmp_type, 0);
    }

    #[test]
    fn icmp_port_unreachable_embeds_original() {
        let original = [0x45u8; 40];
        let m = Icmpv4::port_unreachable(&original);
        assert_eq!(m.icmp_type, 3);
        assert_eq!(m.code, 3);
        assert_eq!(m.rest.len(), 4 + 28);
        let back = Icmpv4::decode(&m.encode()).unwrap();
        assert_eq!(back, m);
    }

    #[test]
    fn encode_into_appends_the_exact_encode_bytes() {
        // Every append encoder, at a nonzero base offset, must write the
        // same bytes `encode` would — checksum fixups included.
        let (s, d) = (ip("203.0.113.5"), ip("44.9.8.7"));
        let prefix = vec![0xEE; 7];

        let tcp = TcpSegment::syn_ack(53, 55_555, 1, 2);
        let mut out = prefix.clone();
        tcp.encode_into(s, d, &mut out);
        assert_eq!(out[7..], tcp.encode(s, d));

        let udp = UdpDatagram::new(53, 33_333, b"payload".to_vec());
        let mut out = prefix.clone();
        udp.encode_into(s, d, &mut out);
        assert_eq!(out[7..], udp.encode(s, d));

        let icmp = Icmpv4::echo_reply(9, 9);
        let mut out = prefix.clone();
        icmp.encode_into(&mut out);
        assert_eq!(out[7..], icmp.encode());

        let ipkt = Ipv4Header::new(s, d, IpProto::Tcp, tcp.encode(s, d));
        let mut out = prefix.clone();
        ipkt.encode_into(&mut out);
        assert_eq!(out[7..], ipkt.encode());

        let eth = EthernetFrame::ipv4(ipkt.encode());
        let mut out = prefix.clone();
        eth.encode_into(&mut out);
        assert_eq!(out[7..], eth.encode());
        let mut header_then_payload = prefix.clone();
        eth.encode_header_into(&mut header_then_payload);
        header_then_payload.extend_from_slice(&eth.payload);
        assert_eq!(header_then_payload, out);
    }

    #[test]
    fn encode_packet_into_matches_owned_header() {
        let (s, d) = (ip("1.2.3.4"), ip("44.0.0.1"));
        let payload = vec![0xABu8; 31]; // odd length exercises tail padding
        let owned = Ipv4Header { src: s, dst: d, proto: IpProto::Udp, ttl: 7, ident: 99, payload };
        let mut appended = Vec::new();
        Ipv4Header::encode_packet_into(s, d, IpProto::Udp, 7, 99, &owned.payload, &mut appended);
        assert_eq!(appended, owned.encode());
    }

    #[test]
    fn full_stack_compose_and_parse() {
        // Ethernet(IPv4(TCP SYN-ACK)) — what the telescope would capture.
        let (victim, dark) = (ip("203.0.113.5"), ip("44.9.8.7"));
        let tcp = TcpSegment::syn_ack(53, 55_555, 1, 2);
        let ipkt = Ipv4Header::new(victim, dark, IpProto::Tcp, tcp.encode(victim, dark));
        let eth = EthernetFrame::ipv4(ipkt.encode());
        let wire = eth.encode();

        let eth2 = EthernetFrame::decode(&wire).unwrap();
        assert_eq!(eth2.ethertype, EtherType::Ipv4);
        let ip2 = Ipv4Header::decode(&eth2.payload).unwrap();
        assert_eq!(ip2.src, victim);
        assert_eq!(ip2.proto, IpProto::Tcp);
        let tcp2 = TcpSegment::decode(&ip2.payload, ip2.src, ip2.dst).unwrap();
        assert_eq!(tcp2.src_port, 53);
        assert!(tcp2.flags.syn && tcp2.flags.ack);
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        #[test]
        fn ipv4_roundtrip(
            src in any::<u32>(), dst in any::<u32>(),
            proto in any::<u8>(), ttl in any::<u8>(), ident in any::<u16>(),
            payload in prop::collection::vec(any::<u8>(), 0..200),
        ) {
            let h = Ipv4Header {
                src: Ipv4Addr::from(src),
                dst: Ipv4Addr::from(dst),
                proto: IpProto::from_code(proto),
                ttl,
                ident,
                payload,
            };
            prop_assert_eq!(Ipv4Header::decode(&h.encode()).unwrap(), h);
        }

        #[test]
        fn udp_roundtrip(
            src in any::<u32>(), dst in any::<u32>(),
            sp in any::<u16>(), dp in any::<u16>(),
            payload in prop::collection::vec(any::<u8>(), 0..200),
        ) {
            let (s, d) = (Ipv4Addr::from(src), Ipv4Addr::from(dst));
            let u = UdpDatagram::new(sp, dp, payload);
            prop_assert_eq!(UdpDatagram::decode(&u.encode(s, d), s, d).unwrap(), u);
        }

        /// Append-style encoders write exactly the bytes `encode` returns,
        /// at any base offset, for arbitrary endpoints and payloads.
        #[test]
        fn encode_into_matches_encode(
            src in any::<u32>(), dst in any::<u32>(),
            sp in any::<u16>(), dp in any::<u16>(),
            payload in prop::collection::vec(any::<u8>(), 0..64),
            prefix_len in 0usize..9,
        ) {
            let (s, d) = (Ipv4Addr::from(src), Ipv4Addr::from(dst));
            let prefix = vec![0x5Au8; prefix_len];

            let udp = UdpDatagram::new(sp, dp, payload.clone());
            let mut out = prefix.clone();
            udp.encode_into(s, d, &mut out);
            let expected = udp.encode(s, d);
            prop_assert_eq!(&out[prefix_len..], expected.as_slice());

            let ipkt = Ipv4Header::new(s, d, IpProto::Udp, payload.clone());
            let mut out = prefix.clone();
            ipkt.encode_into(&mut out);
            let expected = ipkt.encode();
            prop_assert_eq!(&out[prefix_len..], expected.as_slice());

            let icmp = Icmpv4 { icmp_type: 3, code: 3, rest: payload };
            let mut out = prefix;
            icmp.encode_into(&mut out);
            let expected = icmp.encode();
            prop_assert_eq!(&out[prefix_len..], expected.as_slice());
        }

        #[test]
        fn decode_garbage_never_panics(bytes in prop::collection::vec(any::<u8>(), 0..100)) {
            let a = Ipv4Addr::new(1, 2, 3, 4);
            let _ = EthernetFrame::decode(&bytes);
            let _ = Ipv4Header::decode(&bytes);
            let _ = UdpDatagram::decode(&bytes, a, a);
            let _ = TcpSegment::decode(&bytes, a, a);
            let _ = Icmpv4::decode(&bytes);
        }
    }
}
