//! Minimal dependency-free JSON: a value tree, a stable writer, and a
//! recursive-descent parser.
//!
//! The container has no serde; the run-report schema is small and fixed,
//! so a ~200-line JSON layer keeps `obs` zero-dependency. Objects preserve
//! insertion order on write (the report builder inserts keys in schema
//! order) so emitted documents are stable byte-for-byte for identical
//! inputs.

use std::fmt::Write as _;

/// A JSON value. Numbers are split into unsigned/float because the report
/// is overwhelmingly `u64` counters and we want them round-tripped exactly.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    Null,
    Bool(bool),
    U64(u64),
    F64(f64),
    Str(String),
    Array(Vec<Json>),
    /// Insertion-ordered object.
    Object(Vec<(String, Json)>),
}

impl Json {
    pub fn obj() -> Json {
        Json::Object(Vec::new())
    }

    /// Insert (or replace) `key` in an object; panics on non-objects —
    /// builder misuse, not data-dependent.
    pub fn set(&mut self, key: &str, value: Json) -> &mut Json {
        match self {
            Json::Object(pairs) => {
                if let Some(pair) = pairs.iter_mut().find(|(k, _)| k == key) {
                    pair.1 = value;
                } else {
                    pairs.push((key.to_string(), value));
                }
                self
            }
            _ => panic!("Json::set on non-object"),
        }
    }

    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Object(pairs) => pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::U64(n) => Some(*n),
            _ => None,
        }
    }

    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::F64(f) => Some(*f),
            Json::U64(n) => Some(*n as f64),
            _ => None,
        }
    }

    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    pub fn as_array(&self) -> Option<&[Json]> {
        match self {
            Json::Array(items) => Some(items),
            _ => None,
        }
    }

    pub fn as_object(&self) -> Option<&[(String, Json)]> {
        match self {
            Json::Object(pairs) => Some(pairs),
            _ => None,
        }
    }

    /// Pretty-print with 2-space indentation and a trailing newline —
    /// the on-disk form of run reports and BENCH artifacts.
    pub fn pretty(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, 0);
        out.push('\n');
        out
    }

    /// One-line form with no whitespace at all — the stdout protocol of
    /// subprocess bench agents (`dnsimpactd serve --bench-oneshot`), where
    /// the orchestrator reads exactly one line per process.
    pub fn compact(&self) -> String {
        let mut out = String::new();
        self.write_compact(&mut out);
        out
    }

    fn write_compact(&self, out: &mut String) {
        match self {
            Json::Array(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.write_compact(out);
                }
                out.push(']');
            }
            Json::Object(pairs) => {
                out.push('{');
                for (i, (k, v)) in pairs.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    write_escaped(out, k);
                    out.push(':');
                    v.write_compact(out);
                }
                out.push('}');
            }
            scalar => scalar.write(out, 0),
        }
    }

    fn write(&self, out: &mut String, indent: usize) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::U64(n) => {
                let _ = write!(out, "{n}");
            }
            Json::F64(f) => {
                if f.is_finite() {
                    let _ = write!(out, "{f}");
                } else {
                    out.push_str("null");
                }
            }
            Json::Str(s) => write_escaped(out, s),
            Json::Array(items) => {
                if items.is_empty() {
                    out.push_str("[]");
                    return;
                }
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push('\n');
                    push_indent(out, indent + 1);
                    item.write(out, indent + 1);
                }
                out.push('\n');
                push_indent(out, indent);
                out.push(']');
            }
            Json::Object(pairs) => {
                if pairs.is_empty() {
                    out.push_str("{}");
                    return;
                }
                out.push('{');
                for (i, (k, v)) in pairs.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push('\n');
                    push_indent(out, indent + 1);
                    write_escaped(out, k);
                    out.push_str(": ");
                    v.write(out, indent + 1);
                }
                out.push('\n');
                push_indent(out, indent);
                out.push('}');
            }
        }
    }

    /// Parse a JSON document. Errors carry a byte offset and message.
    pub fn parse(input: &str) -> Result<Json, String> {
        let mut p = Parser { bytes: input.as_bytes(), pos: 0 };
        p.skip_ws();
        let v = p.value()?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(format!("trailing data at byte {}", p.pos));
        }
        Ok(v)
    }
}

fn push_indent(out: &mut String, indent: usize) {
    for _ in 0..indent {
        out.push_str("  ");
    }
}

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if b == b' ' || b == b'\t' || b == b'\n' || b == b'\r' {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!("expected '{}' at byte {}", b as char, self.pos))
        }
    }

    fn literal(&mut self, lit: &str, value: Json) -> Result<Json, String> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(value)
        } else {
            Err(format!("invalid literal at byte {}", self.pos))
        }
    }

    fn value(&mut self) -> Result<Json, String> {
        match self.peek() {
            Some(b'n') => self.literal("null", Json::Null),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'"') => self.string().map(Json::Str),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(b) if b == b'-' || b.is_ascii_digit() => self.number(),
            _ => Err(format!("unexpected byte at {}", self.pos)),
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let Some(b) = self.peek() else {
                return Err("unterminated string".into());
            };
            self.pos += 1;
            match b {
                b'"' => return Ok(out),
                b'\\' => {
                    let Some(esc) = self.peek() else {
                        return Err("unterminated escape".into());
                    };
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'u' => {
                            if self.pos + 4 > self.bytes.len() {
                                return Err("truncated \\u escape".into());
                            }
                            let hex = std::str::from_utf8(&self.bytes[self.pos..self.pos + 4])
                                .map_err(|_| "bad \\u escape".to_string())?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| "bad \\u escape".to_string())?;
                            self.pos += 4;
                            // Surrogate pairs don't occur in our reports;
                            // map unpaired surrogates to the replacement
                            // character rather than erroring.
                            out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                        }
                        _ => return Err(format!("bad escape at byte {}", self.pos)),
                    }
                }
                _ => {
                    // Re-borrow multi-byte UTF-8 sequences whole.
                    if b < 0x80 {
                        out.push(b as char);
                    } else {
                        let start = self.pos - 1;
                        let len = utf8_len(b);
                        let end = start + len;
                        if end > self.bytes.len() {
                            return Err("truncated UTF-8".into());
                        }
                        let s = std::str::from_utf8(&self.bytes[start..end])
                            .map_err(|_| "invalid UTF-8 in string".to_string())?;
                        out.push_str(s);
                        self.pos = end;
                    }
                }
            }
        }
    }

    fn number(&mut self) -> Result<Json, String> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(b) = self.peek() {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        // The consumed bytes are all ASCII by construction, but a parser
        // must not be able to panic on any input byte sequence.
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| format!("invalid number bytes at byte {start}"))?;
        if !is_float {
            if let Ok(n) = text.parse::<u64>() {
                return Ok(Json::U64(n));
            }
        }
        text.parse::<f64>().map(Json::F64).map_err(|_| format!("invalid number at byte {start}"))
    }

    fn array(&mut self) -> Result<Json, String> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Array(items));
                }
                _ => return Err(format!("expected ',' or ']' at byte {}", self.pos)),
            }
        }
    }

    fn object(&mut self) -> Result<Json, String> {
        self.expect(b'{')?;
        let mut pairs = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Object(pairs));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value()?;
            pairs.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Object(pairs));
                }
                _ => return Err(format!("expected ',' or '}}' at byte {}", self.pos)),
            }
        }
    }
}

fn utf8_len(first: u8) -> usize {
    match first {
        0xc0..=0xdf => 2,
        0xe0..=0xef => 3,
        _ => 4,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_structures() {
        let mut doc = Json::obj();
        doc.set("schema", Json::Str("dnsimpact-metrics/v1".into()));
        doc.set("n", Json::U64(u64::MAX));
        doc.set("f", Json::F64(0.5));
        doc.set("flag", Json::Bool(true));
        doc.set("none", Json::Null);
        doc.set("list", Json::Array(vec![Json::U64(1), Json::Str("two".into())]));
        let text = doc.pretty();
        let parsed = Json::parse(&text).unwrap();
        assert_eq!(parsed, doc);
        // Writing again is byte-stable.
        assert_eq!(parsed.pretty(), text);
    }

    #[test]
    fn escapes_round_trip() {
        let doc = Json::Str("a\"b\\c\nd\te\u{1}f — ünïcode".into());
        let parsed = Json::parse(&doc.pretty()).unwrap();
        assert_eq!(parsed, doc);
    }

    #[test]
    fn compact_is_one_line_and_parses_back() {
        let mut doc = Json::obj();
        doc.set("schema", Json::Str("x/v1".into()));
        doc.set("list", Json::Array(vec![Json::U64(1), Json::Null, Json::Bool(false)]));
        doc.set("empty", Json::obj());
        let line = doc.compact();
        assert!(!line.contains('\n') && !line.contains(' '), "{line:?}");
        assert_eq!(Json::parse(&line).unwrap(), doc);
    }

    #[test]
    fn rejects_trailing_garbage() {
        assert!(Json::parse("{} x").is_err());
        assert!(Json::parse("{,}").is_err());
        assert!(Json::parse("[1,]").is_err());
    }

    #[test]
    fn u64_precision_preserved() {
        let text = format!("{}", u64::MAX);
        assert_eq!(Json::parse(&text).unwrap(), Json::U64(u64::MAX));
        assert_eq!(Json::parse("-3.5").unwrap(), Json::F64(-3.5));
    }
}
