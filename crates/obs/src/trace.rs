//! Causal event tracing (DESIGN §10): a bounded, lock-sharded ring of
//! typed pipeline events, each attributed to an attack episode, plus the
//! Chrome-trace export, the causality checker, and the `repro explain`
//! timeline renderer.
//!
//! Events obey the same out-of-band contract as metrics (§9): the
//! pipeline only writes; nothing reads the ring until reporting time, so
//! tracing can never influence artifact bytes or stdout. The determinism
//! domain splits per *field* rather than per name: `scope`, `episode`,
//! `sim_secs`, `detail`, and `value` are identical across `--jobs` counts
//! (and, for non-fault events, across chaos seeds), while `wall_micros`
//! is wall-clock forensics excluded from determinism comparisons —
//! [`TraceEvent::deterministic_line`] is the canonical comparable form,
//! and [`snapshot`] orders events by their deterministic sort key so the
//! stream itself compares across worker counts.
//!
//! The causal key is the **episode id**: `scope/idx`, where `scope` names
//! the feed that emitted the episode (`rsdos` for the longitudinal feed,
//! `milru`/`rdz`/`transip` for the scenario feeds) and `idx` is the
//! episode's index in that feed. It is threaded from telescope feed
//! emission through the join, the reactive trigger/probe path, and impact
//! computation; chaos fault events carry the injection-site label as
//! their scope instead (they are attributed to runs, not episodes).

use crate::json::Json;
use crate::metrics::counter;
use crate::report::{MAX_PROBES_PER_ROUND, MAX_TRIGGER_LATENCY_SECS};
use std::collections::{BTreeMap, HashMap, VecDeque};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Mutex, OnceLock};
use std::time::Instant;

/// Shard count of the global ring; emission locks one shard only.
const TRACE_SHARDS: usize = 16;
/// Bounded per-shard capacity; overflow evicts the shard's oldest event
/// (counted under `sched.trace.dropped`).
const SHARD_CAPACITY: usize = 8192;

/// The event taxonomy, in causal-rank order: at equal sim time, an
/// episode's onset sorts before its feed record, the record before the
/// trigger it fired, and so on down the pipeline.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum EventKind {
    AttackOnset,
    FeedRecordArrived,
    FeedGap,
    JoinMatched,
    TriggerFired,
    ProbeScheduled,
    ProbeCompleted,
    BaselineFallback,
    ImpactComputed,
    FaultInjected,
    FaultRepaired,
    StageStart,
    StageEnd,
    CheckpointWritten,
}

/// Every kind, in causal-rank order.
pub const EVENT_KINDS: [EventKind; 14] = [
    EventKind::AttackOnset,
    EventKind::FeedRecordArrived,
    EventKind::FeedGap,
    EventKind::JoinMatched,
    EventKind::TriggerFired,
    EventKind::ProbeScheduled,
    EventKind::ProbeCompleted,
    EventKind::BaselineFallback,
    EventKind::ImpactComputed,
    EventKind::FaultInjected,
    EventKind::FaultRepaired,
    EventKind::StageStart,
    EventKind::StageEnd,
    EventKind::CheckpointWritten,
];

impl EventKind {
    pub fn as_str(self) -> &'static str {
        match self {
            EventKind::AttackOnset => "AttackOnset",
            EventKind::FeedRecordArrived => "FeedRecordArrived",
            EventKind::FeedGap => "FeedGap",
            EventKind::JoinMatched => "JoinMatched",
            EventKind::TriggerFired => "TriggerFired",
            EventKind::ProbeScheduled => "ProbeScheduled",
            EventKind::ProbeCompleted => "ProbeCompleted",
            EventKind::BaselineFallback => "BaselineFallback",
            EventKind::ImpactComputed => "ImpactComputed",
            EventKind::FaultInjected => "FaultInjected",
            EventKind::FaultRepaired => "FaultRepaired",
            EventKind::StageStart => "StageStart",
            EventKind::StageEnd => "StageEnd",
            EventKind::CheckpointWritten => "CheckpointWritten",
        }
    }

    pub fn parse(name: &str) -> Option<EventKind> {
        EVENT_KINDS.iter().copied().find(|k| k.as_str() == name)
    }

    /// Position in the causal order (the sim-time tie-break).
    pub fn rank(self) -> u8 {
        self as u8
    }

    /// Fault events vary with the chaos seed; every other kind belongs to
    /// the cross-chaos-seed deterministic stream.
    pub fn is_fault(self) -> bool {
        matches!(self, EventKind::FaultInjected | EventKind::FaultRepaired)
    }
}

/// One traced event.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct TraceEvent {
    pub kind: EventKind,
    /// The feed scope for episode events (`rsdos`, `milru`, ...), the
    /// injection-site label for fault events, the harness name for stage
    /// and checkpoint events.
    pub scope: String,
    /// Episode index within `scope`; `None` for run-level events.
    pub episode: Option<u64>,
    /// Simulation time (seconds); `None` for events outside sim time
    /// (stages, checkpoints, fault injection sites).
    pub sim_secs: Option<u64>,
    /// Free-form deterministic description (also the fault match key).
    pub detail: String,
    /// Kind-specific magnitude: trigger delay (s), probes in a round,
    /// affected domains, delay windows, onset duration (min).
    pub value: Option<u64>,
    /// Microseconds since the process trace anchor. Wall clock: excluded
    /// from the deterministic domain, kept for forensics.
    pub wall_micros: u64,
}

impl TraceEvent {
    /// The `scope/idx` causal id, when the event is episode-attributed.
    pub fn episode_id(&self) -> Option<String> {
        self.episode.map(|e| format!("{}/{e}", self.scope))
    }

    /// The canonical deterministic rendering: every field except
    /// `wall_micros`. Two runs agree on their trace iff the sorted
    /// deterministic lines agree.
    pub fn deterministic_line(&self) -> String {
        format!(
            "{} ep={} sim={} {} value={} {}",
            self.scope,
            opt(self.episode),
            opt(self.sim_secs),
            self.kind.as_str(),
            opt(self.value),
            self.detail,
        )
    }
}

fn opt(v: Option<u64>) -> String {
    v.map(|n| n.to_string()).unwrap_or_else(|| "-".into())
}

/// The deterministic sort key: scope, then episode (run-level events
/// last), then sim time (wall-only events last), then causal rank, then
/// detail and value. `wall_micros` is deliberately absent.
fn sort_key(e: &TraceEvent) -> (&str, u64, u64, u8, &str, u64) {
    (
        e.scope.as_str(),
        e.episode.unwrap_or(u64::MAX),
        e.sim_secs.unwrap_or(u64::MAX),
        e.kind.rank(),
        e.detail.as_str(),
        e.value.unwrap_or(u64::MAX),
    )
}

struct Shard {
    events: Mutex<VecDeque<TraceEvent>>,
}

struct Ring {
    shards: Vec<Shard>,
    dropped: AtomicU64,
}

static RING: OnceLock<Ring> = OnceLock::new();
static ANCHOR: OnceLock<Instant> = OnceLock::new();

fn ring() -> &'static Ring {
    RING.get_or_init(|| Ring {
        shards: (0..TRACE_SHARDS).map(|_| Shard { events: Mutex::new(VecDeque::new()) }).collect(),
        dropped: AtomicU64::new(0),
    })
}

fn wall_micros() -> u64 {
    ANCHOR.get_or_init(Instant::now).elapsed().as_micros() as u64
}

/// Shard by event content, not by thread: the load spreads over every
/// shard whatever the worker count, so the ring's full capacity is usable
/// even from a single-threaded run, and — as long as the run fits the
/// ring — the retained set is independent of `--jobs`.
fn shard_index(event: &TraceEvent) -> usize {
    use std::hash::{Hash, Hasher};
    let mut h = std::collections::hash_map::DefaultHasher::new();
    event.scope.hash(&mut h);
    event.episode.hash(&mut h);
    event.detail.hash(&mut h);
    event.kind.rank().hash(&mut h);
    (h.finish() as usize) % TRACE_SHARDS
}

/// Record one event. Write-only from the pipeline's point of view:
/// nothing reads the ring until reporting. Lock scope is one shard.
pub fn emit(
    kind: EventKind,
    scope: &str,
    episode: Option<u64>,
    sim_secs: Option<u64>,
    detail: impl Into<String>,
    value: Option<u64>,
) {
    let event = TraceEvent {
        kind,
        scope: scope.to_string(),
        episode,
        sim_secs,
        detail: detail.into(),
        value,
        wall_micros: wall_micros(),
    };
    let r = ring();
    let mut q = r.shards[shard_index(&event)].events.lock().unwrap();
    if q.len() == SHARD_CAPACITY {
        q.pop_front();
        r.dropped.fetch_add(1, Ordering::Relaxed);
        counter("sched.trace.dropped").incr();
    }
    q.push_back(event);
    drop(q);
    // Fault events are chaos-seed-dependent, so their count lives in the
    // chaos namespace (excluded from chaos-vs-clean comparisons); every
    // other kind is part of the deterministic pipeline accounting.
    if kind.is_fault() {
        counter("chaos.trace.events").incr();
    } else {
        counter("trace.events").incr();
    }
}

/// Copy out every retained event, ordered by the deterministic sort key.
pub fn snapshot() -> Vec<TraceEvent> {
    let mut out = Vec::new();
    for shard in &ring().shards {
        out.extend(shard.events.lock().unwrap().iter().cloned());
    }
    out.sort_by(|a, b| sort_key(a).cmp(&sort_key(b)));
    out
}

/// Clear the ring (tests; the ring is process-global).
pub fn reset() {
    let r = ring();
    for shard in &r.shards {
        shard.events.lock().unwrap().clear();
    }
    r.dropped.store(0, Ordering::Relaxed);
}

/// The run report's embedded trace summary.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct TraceSummary {
    /// Events retained in the ring.
    pub events: u64,
    /// Events evicted by ring overflow.
    pub dropped: u64,
    /// Retained events per kind, taxonomy order, zero counts omitted.
    pub by_kind: Vec<(String, u64)>,
}

/// Summarize the current ring contents for the run report.
pub fn summary() -> TraceSummary {
    let events = snapshot();
    let mut counts: BTreeMap<u8, u64> = BTreeMap::new();
    for e in &events {
        *counts.entry(e.kind.rank()).or_insert(0) += 1;
    }
    TraceSummary {
        events: events.len() as u64,
        dropped: ring().dropped.load(Ordering::Relaxed),
        by_kind: counts
            .into_iter()
            .map(|(rank, n)| (EVENT_KINDS[rank as usize].as_str().to_string(), n))
            .collect(),
    }
}

// --- Chrome trace-event export -----------------------------------------

/// Export events as a Chrome trace-event / Perfetto-compatible document:
/// instant events (`ph: "i"`), one tid per kind so kinds render as rows,
/// `cat` = scope, `ts` in microseconds of sim time (wall time for events
/// outside sim time), full event fields under `args`.
pub fn to_chrome_json(events: &[TraceEvent]) -> Json {
    let mut list = Vec::with_capacity(events.len());
    for e in events {
        let mut ev = Json::obj();
        ev.set("name", Json::Str(e.kind.as_str().into()));
        ev.set("ph", Json::Str("i".into()));
        ev.set("ts", Json::U64(e.sim_secs.map(|s| s * 1_000_000).unwrap_or(e.wall_micros)));
        ev.set("pid", Json::U64(1));
        ev.set("tid", Json::U64(1 + u64::from(e.kind.rank())));
        ev.set("s", Json::Str("g".into()));
        ev.set("cat", Json::Str(e.scope.clone()));
        let mut args = Json::obj();
        if let Some(ep) = e.episode {
            args.set("episode", Json::U64(ep));
            args.set("episode_id", Json::Str(format!("{}/{ep}", e.scope)));
        }
        if let Some(s) = e.sim_secs {
            args.set("sim_secs", Json::U64(s));
        }
        if !e.detail.is_empty() {
            args.set("detail", Json::Str(e.detail.clone()));
        }
        if let Some(v) = e.value {
            args.set("value", Json::U64(v));
        }
        args.set("wall_micros", Json::U64(e.wall_micros));
        ev.set("args", args);
        list.push(ev);
    }
    let mut doc = Json::obj();
    doc.set("traceEvents", Json::Array(list));
    doc.set("displayTimeUnit", Json::Str("ms".into()));
    doc
}

/// Parse and schema-validate a Chrome trace document back into events.
/// Returns every violation found (empty errors ⇒ valid).
pub fn from_chrome_json(doc: &Json) -> Result<Vec<TraceEvent>, Vec<String>> {
    let mut errors = Vec::new();
    let Some(entries) = doc.get("traceEvents").and_then(|t| t.as_array()) else {
        return Err(vec!["document has no traceEvents array".into()]);
    };
    let mut out = Vec::with_capacity(entries.len());
    for (i, entry) in entries.iter().enumerate() {
        let mut fail = |msg: String| errors.push(format!("traceEvents[{i}]: {msg}"));
        let Some(kind) = entry.get("name").and_then(|n| n.as_str()).and_then(EventKind::parse)
        else {
            fail("missing or unknown event name".into());
            continue;
        };
        if entry.get("ph").and_then(|p| p.as_str()) != Some("i") {
            fail("ph is not \"i\" (instant)".into());
        }
        if entry.get("ts").and_then(|t| t.as_u64()).is_none() {
            fail("ts missing or not an unsigned integer".into());
        }
        for key in ["pid", "tid"] {
            if entry.get(key).and_then(|v| v.as_u64()).is_none() {
                fail(format!("{key} missing or not an unsigned integer"));
            }
        }
        let Some(scope) = entry.get("cat").and_then(|c| c.as_str()) else {
            fail("cat (scope) missing".into());
            continue;
        };
        let Some(args) = entry.get("args").filter(|a| a.as_object().is_some()) else {
            fail("args object missing".into());
            continue;
        };
        let u = |key: &str| args.get(key).and_then(|v| v.as_u64());
        let Some(wall_micros) = u("wall_micros") else {
            fail("args.wall_micros missing".into());
            continue;
        };
        out.push(TraceEvent {
            kind,
            scope: scope.to_string(),
            episode: u("episode"),
            sim_secs: u("sim_secs"),
            detail: args.get("detail").and_then(|d| d.as_str()).unwrap_or_default().to_string(),
            value: u("value"),
            wall_micros,
        });
    }
    if errors.is_empty() {
        Ok(out)
    } else {
        Err(errors)
    }
}

// --- Causality invariants ----------------------------------------------

/// Check the trace's causal invariants; returns every violation.
///
/// 1. every `TriggerFired` references a prior (sim-time ≤) same-episode
///    `FeedRecordArrived`;
/// 2. every `FaultRepaired` matches a `FaultInjected` with the same
///    scope and detail key (multiset containment);
/// 3. every trigger delay obeys the paper's ≤ 10-minute bound;
/// 4. every probe round obeys the 50-domain budget.
pub fn check_causality(events: &[TraceEvent]) -> Vec<String> {
    let mut errors = Vec::new();
    let mut first_arrival: HashMap<(&str, u64), u64> = HashMap::new();
    for e in events {
        if e.kind == EventKind::FeedRecordArrived {
            if let (Some(ep), Some(sim)) = (e.episode, e.sim_secs) {
                let slot = first_arrival.entry((e.scope.as_str(), ep)).or_insert(sim);
                *slot = (*slot).min(sim);
            }
        }
    }
    let mut injected: HashMap<(&str, &str), i64> = HashMap::new();
    for e in events {
        if e.kind == EventKind::FaultInjected {
            *injected.entry((e.scope.as_str(), e.detail.as_str())).or_insert(0) += 1;
        }
    }
    for e in events {
        match e.kind {
            EventKind::TriggerFired => {
                let id = e.episode_id().unwrap_or_else(|| format!("{}/?", e.scope));
                match (e.episode, e.sim_secs) {
                    (Some(ep), Some(sim)) => match first_arrival.get(&(e.scope.as_str(), ep)) {
                        Some(&first) if first <= sim => {}
                        Some(&first) => errors.push(format!(
                            "TriggerFired {id} at sim {sim} precedes its first \
                                 FeedRecordArrived at sim {first}"
                        )),
                        None => errors.push(format!(
                            "TriggerFired {id} has no FeedRecordArrived for its episode"
                        )),
                    },
                    _ => errors
                        .push(format!("TriggerFired {id} lacks episode or sim-time attribution")),
                }
                match e.value {
                    Some(delay) if delay <= MAX_TRIGGER_LATENCY_SECS => {}
                    Some(delay) => errors.push(format!(
                        "TriggerFired {id}: delay {delay} s exceeds the \
                         {MAX_TRIGGER_LATENCY_SECS} s bound"
                    )),
                    None => errors.push(format!("TriggerFired {id} carries no delay value")),
                }
            }
            EventKind::FaultRepaired => {
                let n = injected.entry((e.scope.as_str(), e.detail.as_str())).or_insert(0);
                *n -= 1;
                if *n < 0 {
                    errors.push(format!(
                        "FaultRepaired without matching FaultInjected: {} {}",
                        e.scope, e.detail
                    ));
                }
            }
            EventKind::ProbeCompleted => {
                if let Some(probes) = e.value {
                    if probes > MAX_PROBES_PER_ROUND {
                        errors.push(format!(
                            "ProbeCompleted {}: {probes} probes exceed the \
                             {MAX_PROBES_PER_ROUND}-domain budget",
                            e.episode_id().unwrap_or_else(|| e.scope.clone()),
                        ));
                    }
                }
            }
            _ => {}
        }
    }
    errors
}

// --- `repro explain` ---------------------------------------------------

/// Parse an episode id: `scope/idx`, or a bare index (scope `rsdos`).
pub fn parse_episode_id(s: &str) -> Option<(String, u64)> {
    if let Some((scope, idx)) = s.split_once('/') {
        if scope.is_empty() {
            return None;
        }
        idx.parse().ok().map(|i| (scope.to_string(), i))
    } else {
        s.parse().ok().map(|i| ("rsdos".to_string(), i))
    }
}

/// Render sim seconds as `d<day> HH:MM:SS` (days since sim epoch).
pub fn format_sim(secs: u64) -> String {
    let (day, rest) = (secs / 86_400, secs % 86_400);
    format!("d{day} {:02}:{:02}:{:02}", rest / 3_600, (rest % 3_600) / 60, rest % 60)
}

/// Per-scope episode inventory: (scope, episode-attributed event count,
/// max episode index). Printed when an unknown id is requested.
pub fn available_episodes(events: &[TraceEvent]) -> Vec<(String, u64, u64)> {
    let mut by_scope: BTreeMap<&str, (u64, u64)> = BTreeMap::new();
    for e in events {
        if let Some(ep) = e.episode {
            let slot = by_scope.entry(e.scope.as_str()).or_insert((0, 0));
            slot.0 += 1;
            slot.1 = slot.1.max(ep);
        }
    }
    by_scope.into_iter().map(|(s, (n, max))| (s.to_string(), n, max)).collect()
}

fn annotate(e: &TraceEvent) -> String {
    let Some(v) = e.value else { return String::new() };
    match e.kind {
        EventKind::AttackOnset => format!(" [duration {v} min]"),
        EventKind::FeedGap => format!(" [delayed {v} window(s)]"),
        EventKind::JoinMatched => format!(" [{v} domain(s) affected]"),
        EventKind::TriggerFired => {
            let verdict =
                if v <= MAX_TRIGGER_LATENCY_SECS { "within bound" } else { "BOUND VIOLATED" };
            format!(" [delay {v} s vs {MAX_TRIGGER_LATENCY_SECS} s bound: {verdict}]")
        }
        EventKind::ProbeScheduled => format!(" [{v} domain(s) planned]"),
        EventKind::ProbeCompleted => {
            let verdict = if v <= MAX_PROBES_PER_ROUND { "within budget" } else { "OVER BUDGET" };
            format!(" [{v} probe(s) vs {MAX_PROBES_PER_ROUND}-domain budget: {verdict}]")
        }
        EventKind::ImpactComputed => format!(" [{v} domain(s) measured]"),
        _ => format!(" [value {v}]"),
    }
}

/// Reconstruct the human-readable timeline of one attack episode from a
/// trace: onset → feed arrival → join → trigger (vs the 10-minute bound)
/// → probes (vs the 50-domain budget) → impact rows, with a trailing
/// run-level fault summary. Deterministic: built from deterministic
/// fields only, rendered in deterministic-key order. Returns `None` when
/// the episode has no events.
pub fn explain(events: &[TraceEvent], scope: &str, episode: u64) -> Option<String> {
    let mut selected: Vec<&TraceEvent> =
        events.iter().filter(|e| e.scope == scope && e.episode == Some(episode)).collect();
    if selected.is_empty() {
        return None;
    }
    selected.sort_by(|a, b| sort_key(a).cmp(&sort_key(b)));
    let mut out = format!("== episode {scope}/{episode} ==\n");
    for e in &selected {
        let t = e.sim_secs.map(format_sim).unwrap_or_else(|| "(wall)".into());
        let sep = if e.detail.is_empty() { "" } else { " " };
        out.push_str(&format!("{t:<14} {:<18}{sep}{}{}\n", e.kind.as_str(), e.detail, annotate(e)));
    }
    // Run-level fault accounting: faults carry injection-site scopes, not
    // episode ids, so they are summarized rather than interleaved.
    let mut faults: BTreeMap<&str, (u64, u64)> = BTreeMap::new();
    for e in events {
        match e.kind {
            EventKind::FaultInjected => faults.entry(e.scope.as_str()).or_insert((0, 0)).0 += 1,
            EventKind::FaultRepaired => faults.entry(e.scope.as_str()).or_insert((0, 0)).1 += 1,
            _ => {}
        }
    }
    if faults.is_empty() {
        out.push_str("faults this run: none injected\n");
    } else {
        for (site, (inj, rep)) in faults {
            out.push_str(&format!("faults this run: {site}: {inj} injected, {rep} repaired\n"));
        }
    }
    Some(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(
        kind: EventKind,
        scope: &str,
        episode: Option<u64>,
        sim_secs: Option<u64>,
        detail: &str,
        value: Option<u64>,
    ) -> TraceEvent {
        TraceEvent {
            kind,
            scope: scope.into(),
            episode,
            sim_secs,
            detail: detail.into(),
            value,
            wall_micros: 7,
        }
    }

    /// The ring is process-global, so all ring behavior lives in one test.
    #[test]
    fn ring_emit_snapshot_reset() {
        reset();
        emit(EventKind::AttackOnset, "rsdos", Some(3), Some(600), "victim=x", Some(25));
        emit(EventKind::JoinMatched, "rsdos", Some(3), Some(600), "ns=y", Some(4));
        emit(EventKind::StageStart, "repro", None, None, "catalog", None);
        let snap = snapshot();
        assert_eq!(snap.len(), 3);
        // Deterministic ordering: scope-major ("repro" < "rsdos"), then
        // causal rank within an episode at equal sim time.
        assert_eq!(snap[0].kind, EventKind::StageStart);
        assert_eq!(snap[1].kind, EventKind::AttackOnset);
        assert_eq!(snap[2].kind, EventKind::JoinMatched);
        assert_eq!(snap[1].episode_id().as_deref(), Some("rsdos/3"));
        let s = summary();
        assert_eq!(s.events, 3);
        assert_eq!(s.dropped, 0);
        assert_eq!(
            s.by_kind,
            vec![
                ("AttackOnset".to_string(), 1),
                ("JoinMatched".to_string(), 1),
                ("StageStart".to_string(), 1)
            ]
        );
        // Round-trip through the Chrome export.
        let doc = to_chrome_json(&snap);
        let text = doc.pretty();
        let parsed = Json::parse(&text).unwrap();
        let back = from_chrome_json(&parsed).expect("valid chrome trace");
        assert_eq!(back, snap);
        reset();
        assert!(snapshot().is_empty());
        assert_eq!(summary().events, 0);
    }

    #[test]
    fn deterministic_line_excludes_wall_time() {
        let mut a = ev(EventKind::TriggerFired, "milru", Some(0), Some(900), "victim=v", Some(300));
        let mut b = a.clone();
        b.wall_micros = 999_999;
        assert_ne!(a, b);
        assert_eq!(a.deterministic_line(), b.deterministic_line());
        a.detail = "victim=w".into();
        assert_ne!(a.deterministic_line(), b.deterministic_line());
    }

    #[test]
    fn kind_names_round_trip() {
        for k in EVENT_KINDS {
            assert_eq!(EventKind::parse(k.as_str()), Some(k));
        }
        assert_eq!(EventKind::parse("NotAKind"), None);
        assert!(EventKind::FaultInjected.is_fault());
        assert!(!EventKind::AttackOnset.is_fault());
    }

    #[test]
    fn causality_clean_trace_passes() {
        let events = vec![
            ev(EventKind::AttackOnset, "milru", Some(0), Some(0), "", Some(30)),
            ev(EventKind::FeedRecordArrived, "milru", Some(0), Some(300), "", None),
            ev(EventKind::TriggerFired, "milru", Some(0), Some(300), "", Some(300)),
            ev(EventKind::ProbeCompleted, "milru", Some(0), Some(600), "round=0", Some(50)),
            ev(EventKind::FaultInjected, "catalog", None, None, "crash task=1 attempt=0", None),
            ev(EventKind::FaultRepaired, "catalog", None, None, "crash task=1 attempt=0", None),
        ];
        assert_eq!(check_causality(&events), Vec::<String>::new());
    }

    #[test]
    fn causality_violations_detected() {
        // Trigger with no arrival, delay over bound, unmatched repair,
        // probe budget blown: four distinct violations.
        let events = vec![
            ev(EventKind::TriggerFired, "milru", Some(1), Some(300), "", Some(601)),
            ev(EventKind::FaultRepaired, "catalog", None, None, "drop seq=9", None),
            ev(EventKind::ProbeCompleted, "milru", Some(1), Some(600), "round=0", Some(51)),
        ];
        let errors = check_causality(&events);
        assert_eq!(errors.len(), 4, "{errors:?}");
        assert!(errors.iter().any(|e| e.contains("no FeedRecordArrived")));
        assert!(errors.iter().any(|e| e.contains("exceeds the 600 s bound")));
        assert!(errors.iter().any(|e| e.contains("without matching FaultInjected")));
        assert!(errors.iter().any(|e| e.contains("exceed the 50-domain budget")));
        // An arrival *after* the trigger is still a violation.
        let out_of_order = vec![
            ev(EventKind::FeedRecordArrived, "milru", Some(1), Some(900), "", None),
            ev(EventKind::TriggerFired, "milru", Some(1), Some(300), "", Some(300)),
        ];
        let errors = check_causality(&out_of_order);
        assert_eq!(errors.len(), 1, "{errors:?}");
        assert!(errors[0].contains("precedes"));
    }

    #[test]
    fn chrome_schema_violations_reported() {
        assert!(from_chrome_json(&Json::obj()).is_err());
        let mut entry = Json::obj();
        entry.set("name", Json::Str("NotAKind".into()));
        let mut doc = Json::obj();
        doc.set("traceEvents", Json::Array(vec![entry]));
        let errors = from_chrome_json(&doc).unwrap_err();
        assert!(errors[0].contains("traceEvents[0]"), "{errors:?}");
    }

    #[test]
    fn explain_renders_timeline_and_bounds() {
        let events = vec![
            ev(EventKind::AttackOnset, "rsdos", Some(5), Some(0), "victim=198.0.0.1", Some(25)),
            ev(EventKind::FeedRecordArrived, "rsdos", Some(5), Some(300), "w=1", None),
            ev(EventKind::TriggerFired, "rsdos", Some(5), Some(300), "victim=198.0.0.1", Some(300)),
            ev(EventKind::ProbeCompleted, "rsdos", Some(5), Some(600), "round=0", Some(50)),
            ev(EventKind::AttackOnset, "rsdos", Some(6), Some(0), "victim=198.0.0.2", Some(5)),
            ev(EventKind::FaultInjected, "catalog", None, None, "crash task=0 attempt=0", None),
            ev(EventKind::FaultRepaired, "catalog", None, None, "crash task=0 attempt=0", None),
        ];
        let text = explain(&events, "rsdos", 5).unwrap();
        assert!(text.starts_with("== episode rsdos/5 ==\n"), "{text}");
        assert!(text.contains("delay 300 s vs 600 s bound: within bound"), "{text}");
        assert!(text.contains("50 probe(s) vs 50-domain budget: within budget"), "{text}");
        assert!(text.contains("catalog: 1 injected, 1 repaired"), "{text}");
        assert!(!text.contains("198.0.0.2"), "other episodes leaked in: {text}");
        assert!(explain(&events, "rsdos", 99).is_none());
        assert_eq!(available_episodes(&events), vec![("rsdos".to_string(), 5, 6)]);
    }

    #[test]
    fn episode_id_parsing() {
        assert_eq!(parse_episode_id("milru/3"), Some(("milru".into(), 3)));
        assert_eq!(parse_episode_id("17"), Some(("rsdos".into(), 17)));
        assert_eq!(parse_episode_id("/3"), None);
        assert_eq!(parse_episode_id("milru/x"), None);
        assert_eq!(parse_episode_id("nope"), None);
        assert_eq!(format_sim(90_061), "d1 01:01:01");
    }
}
