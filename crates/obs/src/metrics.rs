//! Atomic metric primitives and the process-global registry.
//!
//! Three instrument kinds cover every site in the workspace:
//!
//! - [`Counter`]: monotonically increasing `u64` (`add`/`incr`);
//! - [`Gauge`]: running-maximum `u64` (`record_max`) plus `set` for values
//!   that are written once — maxima merge deterministically regardless of
//!   worker interleaving, unlike last-writer-wins;
//! - [`Histogram`]: log2-bucketed `u64` distribution with exact count/sum
//!   and min/max, good enough for p50/p90/p99 of latencies.
//!
//! All instruments are lock-free atomics, registered once by name in a
//! global [`Registry`] and handed out as `&'static` so hot paths pay one
//! `OnceLock` hit on first use and a relaxed atomic add afterwards.
//!
//! Snapshots are ordered by name (`BTreeMap`) so serialized output is
//! stable. `Snapshot::deterministic` drops the `time.` / `sched.`
//! namespaces (see crate docs) — the remainder must be bit-identical
//! across `--jobs` and, for pipeline counters, across chaos seeds.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Mutex, OnceLock};

/// Monotone counter. Relaxed ordering is sufficient: values are only read
/// at snapshot time, after all recording threads have been joined.
pub struct Counter {
    value: AtomicU64,
}

impl Counter {
    const fn new() -> Self {
        Self { value: AtomicU64::new(0) }
    }

    pub fn add(&self, n: u64) {
        self.value.fetch_add(n, Ordering::Relaxed);
    }

    pub fn incr(&self) {
        self.add(1);
    }

    pub fn get(&self) -> u64 {
        self.value.load(Ordering::Relaxed)
    }

    fn reset(&self) {
        self.value.store(0, Ordering::Relaxed);
    }
}

/// Gauge tracking a running maximum (CAS loop), with `set` for
/// write-once values. Maxima are order-independent, so concurrent workers
/// produce the same final value regardless of interleaving.
pub struct Gauge {
    value: AtomicU64,
}

impl Gauge {
    const fn new() -> Self {
        Self { value: AtomicU64::new(0) }
    }

    pub fn record_max(&self, n: u64) {
        self.value.fetch_max(n, Ordering::Relaxed);
    }

    pub fn set(&self, n: u64) {
        self.value.store(n, Ordering::Relaxed);
    }

    pub fn get(&self) -> u64 {
        self.value.load(Ordering::Relaxed)
    }

    fn reset(&self) {
        self.value.store(0, Ordering::Relaxed);
    }
}

/// Number of log2 buckets: bucket `i` holds values whose bit length is
/// `i`, i.e. `[2^(i-1), 2^i)` for `i >= 1` and `{0}` for bucket 0.
const BUCKETS: usize = 64;

/// Log2-bucketed histogram with exact count/sum/min/max. Quantiles are
/// approximate (bucket upper bound) but the exact fields are what the
/// determinism tests compare where a histogram is deterministic.
pub struct Histogram {
    count: AtomicU64,
    sum: AtomicU64,
    min: AtomicU64,
    max: AtomicU64,
    buckets: [AtomicU64; BUCKETS],
}

impl Histogram {
    fn new() -> Self {
        Self {
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            min: AtomicU64::new(u64::MAX),
            max: AtomicU64::new(0),
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
        }
    }

    pub fn record(&self, v: u64) {
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(v, Ordering::Relaxed);
        self.min.fetch_min(v, Ordering::Relaxed);
        self.max.fetch_max(v, Ordering::Relaxed);
        let bucket = (64 - v.leading_zeros()) as usize;
        self.buckets[bucket.min(BUCKETS - 1)].fetch_add(1, Ordering::Relaxed);
    }

    pub fn snapshot(&self) -> HistogramSnapshot {
        let count = self.count.load(Ordering::Relaxed);
        let mut buckets: Vec<u64> =
            self.buckets.iter().map(|b| b.load(Ordering::Relaxed)).collect();
        let quantile = |q: f64| -> u64 {
            if count == 0 {
                return 0;
            }
            let rank = ((count as f64) * q).ceil().max(1.0) as u64;
            let mut seen = 0u64;
            for (i, &b) in buckets.iter().enumerate() {
                seen += b;
                if seen >= rank {
                    // Upper bound of bucket i: 2^i - 1 (bucket 0 is {0}).
                    return if i == 0 { 0 } else { (1u64 << i) - 1 };
                }
            }
            self.max.load(Ordering::Relaxed)
        };
        let (p50, p90, p95, p99) = (quantile(0.50), quantile(0.90), quantile(0.95), quantile(0.99));
        // Trailing zeros trimmed so the carried form is canonical: equal
        // distributions compare and serialize equal regardless of max value.
        while buckets.last() == Some(&0) {
            buckets.pop();
        }
        HistogramSnapshot {
            count,
            sum: self.sum.load(Ordering::Relaxed),
            min: if count == 0 { 0 } else { self.min.load(Ordering::Relaxed) },
            max: self.max.load(Ordering::Relaxed),
            p50,
            p90,
            p95,
            p99,
            buckets,
        }
    }

    fn reset(&self) {
        self.count.store(0, Ordering::Relaxed);
        self.sum.store(0, Ordering::Relaxed);
        self.min.store(u64::MAX, Ordering::Relaxed);
        self.max.store(0, Ordering::Relaxed);
        for b in &self.buckets {
            b.store(0, Ordering::Relaxed);
        }
    }
}

/// Point-in-time view of one histogram, as it appears in the run report.
/// `buckets` carries the raw log2 bucket counts (trailing zeros trimmed)
/// so per-process distributions can be merged exactly by the suite
/// orchestrator (see `crate::hist`).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HistogramSnapshot {
    pub count: u64,
    pub sum: u64,
    pub min: u64,
    pub max: u64,
    pub p50: u64,
    pub p90: u64,
    pub p95: u64,
    pub p99: u64,
    pub buckets: Vec<u64>,
}

/// Process-global metric registry. Instruments are interned by name and
/// leaked to `&'static` so call sites can cache them in `OnceLock`s.
pub struct Registry {
    counters: Mutex<BTreeMap<&'static str, &'static Counter>>,
    gauges: Mutex<BTreeMap<&'static str, &'static Gauge>>,
    histograms: Mutex<BTreeMap<&'static str, &'static Histogram>>,
}

impl Registry {
    fn new() -> Self {
        Self {
            counters: Mutex::new(BTreeMap::new()),
            gauges: Mutex::new(BTreeMap::new()),
            histograms: Mutex::new(BTreeMap::new()),
        }
    }

    pub fn counter(&self, name: &'static str) -> &'static Counter {
        let mut map = self.counters.lock().unwrap();
        map.entry(name).or_insert_with(|| Box::leak(Box::new(Counter::new())))
    }

    pub fn gauge(&self, name: &'static str) -> &'static Gauge {
        let mut map = self.gauges.lock().unwrap();
        map.entry(name).or_insert_with(|| Box::leak(Box::new(Gauge::new())))
    }

    pub fn histogram(&self, name: &'static str) -> &'static Histogram {
        let mut map = self.histograms.lock().unwrap();
        map.entry(name).or_insert_with(|| Box::leak(Box::new(Histogram::new())))
    }

    /// Stable, name-sorted view of every registered instrument.
    pub fn snapshot(&self) -> Snapshot {
        Snapshot {
            counters: self
                .counters
                .lock()
                .unwrap()
                .iter()
                .map(|(&k, v)| (k.to_string(), v.get()))
                .collect(),
            gauges: self
                .gauges
                .lock()
                .unwrap()
                .iter()
                .map(|(&k, v)| (k.to_string(), v.get()))
                .collect(),
            histograms: self
                .histograms
                .lock()
                .unwrap()
                .iter()
                .map(|(&k, v)| (k.to_string(), v.snapshot()))
                .collect(),
        }
    }

    /// Zero every instrument (names stay registered). Tests use this to
    /// compare runs within one process; `repro` never calls it mid-run.
    pub fn reset(&self) {
        for c in self.counters.lock().unwrap().values() {
            c.reset();
        }
        for g in self.gauges.lock().unwrap().values() {
            g.reset();
        }
        for h in self.histograms.lock().unwrap().values() {
            h.reset();
        }
    }
}

static REGISTRY: OnceLock<Registry> = OnceLock::new();

/// The process-global registry.
pub fn registry() -> &'static Registry {
    REGISTRY.get_or_init(Registry::new)
}

/// Intern (or fetch) the counter `name`.
pub fn counter(name: &'static str) -> &'static Counter {
    registry().counter(name)
}

/// Intern (or fetch) the gauge `name`.
pub fn gauge(name: &'static str) -> &'static Gauge {
    registry().gauge(name)
}

/// Intern (or fetch) the histogram `name`.
pub fn histogram(name: &'static str) -> &'static Histogram {
    registry().histogram(name)
}

/// Name prefixes carrying wall-clock or scheduling-dependent values,
/// excluded from determinism comparison (crate docs, "Determinism
/// domains").
pub const NONDETERMINISTIC_PREFIXES: [&str; 2] = ["time.", "sched."];

fn is_deterministic_name(name: &str) -> bool {
    !NONDETERMINISTIC_PREFIXES.iter().any(|p| name.starts_with(p))
}

/// Point-in-time, name-sorted view of the whole registry.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Snapshot {
    pub counters: BTreeMap<String, u64>,
    pub gauges: BTreeMap<String, u64>,
    pub histograms: BTreeMap<String, HistogramSnapshot>,
}

impl Snapshot {
    /// The snapshot restricted to deterministic names — the part that must
    /// be identical across `--jobs` and (for pipeline counters) across
    /// chaos seeds.
    pub fn deterministic(&self) -> Snapshot {
        Snapshot {
            counters: self
                .counters
                .iter()
                .filter(|(k, _)| is_deterministic_name(k))
                .map(|(k, v)| (k.clone(), *v))
                .collect(),
            gauges: self
                .gauges
                .iter()
                .filter(|(k, _)| is_deterministic_name(k))
                .map(|(k, v)| (k.clone(), *v))
                .collect(),
            histograms: self
                .histograms
                .iter()
                .filter(|(k, _)| is_deterministic_name(k))
                .map(|(k, v)| (k.clone(), v.clone()))
                .collect(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_accumulates() {
        let c = counter("test.metrics.counter_accumulates");
        assert_eq!(c.get(), 0);
        c.incr();
        c.add(41);
        assert_eq!(c.get(), 42);
        // Same name returns the same instrument.
        assert_eq!(counter("test.metrics.counter_accumulates").get(), 42);
    }

    #[test]
    fn gauge_tracks_maximum() {
        let g = gauge("test.metrics.gauge_max");
        g.record_max(7);
        g.record_max(3);
        assert_eq!(g.get(), 7);
        g.set(2);
        assert_eq!(g.get(), 2);
    }

    #[test]
    fn histogram_quantiles_bound_values() {
        let h = histogram("test.metrics.histo");
        for v in 1..=100u64 {
            h.record(v);
        }
        let s = h.snapshot();
        assert_eq!(s.count, 100);
        assert_eq!(s.sum, 5050);
        assert_eq!(s.min, 1);
        assert_eq!(s.max, 100);
        // Log2 buckets: quantile is an upper bound and never below min.
        assert!(s.p50 >= 50 && s.p50 <= 127, "p50={}", s.p50);
        assert!(s.p95 >= 95, "p95={}", s.p95);
        assert!(s.p99 >= 99, "p99={}", s.p99);
        assert!(s.p50 <= s.p95 && s.p95 <= s.p99, "quantiles ordered");
    }

    #[test]
    fn empty_histogram_is_zeroed() {
        let s = histogram("test.metrics.empty_histo").snapshot();
        assert_eq!(
            s,
            HistogramSnapshot {
                count: 0,
                sum: 0,
                min: 0,
                max: 0,
                p50: 0,
                p90: 0,
                p95: 0,
                p99: 0,
                buckets: vec![],
            }
        );
    }

    #[test]
    fn deterministic_filter_drops_time_and_sched() {
        counter("test.metrics.det.plain").incr();
        counter("time.test.metrics.det").incr();
        gauge("sched.test.metrics.det").set(3);
        let snap = registry().snapshot().deterministic();
        assert!(snap.counters.contains_key("test.metrics.det.plain"));
        assert!(!snap.counters.contains_key("time.test.metrics.det"));
        assert!(!snap.gauges.contains_key("sched.test.metrics.det"));
    }
}
