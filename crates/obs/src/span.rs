//! Hierarchical RAII span timers.
//!
//! `let _s = obs::span("catalog");` starts a span; dropping it records the
//! elapsed wall time into the histogram `time.span.<path>`, where `<path>`
//! joins the names of all spans open on the current thread with `/`
//! (e.g. `time.span.catalog/render`). Span output lives entirely in the
//! `time.` namespace, so it is reported but never part of a determinism
//! comparison.
//!
//! Nesting is tracked per thread. Worker threads start with an empty
//! stack, so spans opened inside pool workers get their own root path —
//! which is what you want: per-task spans are scheduling-dependent anyway.

use std::cell::RefCell;
use std::time::Instant;

use crate::metrics::histogram;

thread_local! {
    static STACK: RefCell<Vec<&'static str>> = const { RefCell::new(Vec::new()) };
}

/// A running span; records on drop.
pub struct Span {
    start: Instant,
    name: &'static str,
}

/// Open a named span on the current thread. The returned guard records
/// `time.span.<path>` (milliseconds) when dropped.
pub fn span(name: &'static str) -> Span {
    STACK.with(|s| s.borrow_mut().push(name));
    Span { start: Instant::now(), name }
}

impl Span {
    /// Elapsed time so far, in whole milliseconds.
    pub fn elapsed_ms(&self) -> u64 {
        self.start.elapsed().as_millis() as u64
    }
}

impl Drop for Span {
    fn drop(&mut self) {
        let elapsed = self.elapsed_ms();
        let path = STACK.with(|s| {
            let mut stack = s.borrow_mut();
            let path = stack.join("/");
            // Guard against mis-nested drops (e.g. a span moved across a
            // panic boundary): only pop if we are the innermost span.
            if stack.last() == Some(&self.name) {
                stack.pop();
            }
            path
        });
        histogram(interned(format!("time.span.{path}"))).record(elapsed);
    }
}

/// Intern a composed span path, leaking it at most once: the registry
/// needs `&'static str` keys, and spans recur.
fn interned(key: String) -> &'static str {
    use std::collections::BTreeSet;
    use std::sync::Mutex;
    static INTERN: Mutex<BTreeSet<&'static str>> = Mutex::new(BTreeSet::new());
    let mut set = INTERN.lock().unwrap();
    if let Some(&existing) = set.get(key.as_str()) {
        existing
    } else {
        let leaked: &'static str = Box::leak(key.into_boxed_str());
        set.insert(leaked);
        leaked
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::registry;

    #[test]
    fn spans_nest_into_paths() {
        {
            let _outer = span("test_span_outer");
            {
                let _inner = span("test_span_inner");
            }
        }
        let snap = registry().snapshot();
        assert!(snap.histograms.contains_key("time.span.test_span_outer"));
        assert!(snap.histograms.contains_key("time.span.test_span_outer/test_span_inner"));
        assert_eq!(snap.histograms["time.span.test_span_outer"].count, 1);
    }

    #[test]
    fn span_metrics_are_nondeterministic_namespace() {
        {
            let _s = span("test_span_excluded");
        }
        let det = registry().snapshot().deterministic();
        assert!(!det.histograms.keys().any(|k| k.starts_with("time.span.")));
    }
}
