//! The process-suite report: schema `dnsimpact-suite/v1`.
//!
//! Emitted by `repro bench --suite A|B|all` (DESIGN §14), the orchestrator
//! that measures release-built binaries as OS processes. One document per
//! suite run:
//!
//! ```json
//! {
//!   "schema": "dnsimpact-suite/v1",
//!   "meta": { "seed": 42, "date": "2026-08-08", "suites": "all",
//!             "processes": 12 },
//!   "suite_a": [
//!     { "cell": "A/repro/scale750/jobs1", "kind": "repro",
//!       "scale": 750, "jobs": 1, "wall_ms": 412, "peak_rss_kb": 43000,
//!       "records": 7184, "records_per_sec": 17436.9,
//!       "fingerprint": "0x00c5330b6d65f1a2" }, ...
//!   ],
//!   "suite_b": [
//!     { "scale": 750, "processes": 3,
//!       "wall_ms":         { "count": 3, "min": 390, "p50": 511,
//!                            "p95": 511, "p99": 511, "max": 402 },
//!       "peak_rss_kb":     { ... },
//!       "records_per_sec": { ... },
//!       "merged": { "time.pool.task_ms": { "count": 24, "sum": 90,
//!                   "min": 0, "max": 11, "p50": 3, "p95": 15, "p99": 15,
//!                   "buckets": [2, 3, 4, 6, 9] } } }, ...
//!   ],
//!   "verdicts": [
//!     { "cell": "A/repro/scale750", "pass": true,
//!       "detail": "fingerprints agree across jobs {1, 2}" }, ...
//!   ]
//! }
//! ```
//!
//! Suite A cells are single-process measurements whose deterministic
//! fingerprint must agree across processes of the same scale — exact, no
//! envelopes. Suite B rows aggregate several chaos-seeded processes per
//! scale: `wall_ms`/`peak_rss_kb`/`records_per_sec` are percentile blocks
//! over one sample per process, and `merged` holds the per-process log2
//! histograms fused bucket-wise by [`crate::hist::merge`] — exact, as if
//! one process had observed every sample. Percentiles are log2-bucket
//! upper bounds, so `p99` may exceed the exact `max`; `min`/`max` are
//! exact. The `verdicts` table names every enforced check so a CI failure
//! points at a cell, not a blanket diff.

use crate::hist::Hist;
use crate::json::Json;
use std::collections::BTreeMap;

/// Schema identifier carried in every suite report.
pub const SUITE_SCHEMA_ID: &str = "dnsimpact-suite/v1";

/// Suite-run identity.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SuiteMeta {
    pub seed: u64,
    /// UTC date of the run, `YYYY-MM-DD`.
    pub date: String,
    /// Which suites ran: `"A"`, `"B"`, or `"all"`.
    pub suites: String,
    /// Total OS processes spawned (must equal `suite_a` cells plus the sum
    /// of `suite_b` per-scale process counts).
    pub processes: u64,
}

/// One Suite A cell: a single deterministic process measurement.
#[derive(Debug, Clone, PartialEq)]
pub struct SuiteACell {
    /// Unique label, e.g. `A/repro/scale750/jobs1` or `A/daemon/clean`.
    pub cell: String,
    /// Which binary ran: `"repro"` or `"daemon"`.
    pub kind: String,
    pub scale: u64,
    pub jobs: u64,
    pub wall_ms: u64,
    pub peak_rss_kb: u64,
    pub records: u64,
    pub records_per_sec: f64,
    /// Deterministic-state fingerprint (`{:#018x}`) compared exactly
    /// across processes.
    pub fingerprint: String,
}

/// Percentile block over one sample per process (Suite B). `p50`/`p95`/
/// `p99` are log2-bucket upper bounds; `min`/`max` are exact.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Percentiles {
    pub count: u64,
    pub min: u64,
    pub p50: u64,
    pub p95: u64,
    pub p99: u64,
    pub max: u64,
}

impl Percentiles {
    /// Summarize a histogram holding one sample per process.
    pub fn of(h: &Hist) -> Percentiles {
        Percentiles {
            count: h.count(),
            min: h.min(),
            p50: h.percentile(0.50),
            p95: h.percentile(0.95),
            p99: h.percentile(0.99),
            max: h.max(),
        }
    }

    fn to_json(&self) -> Json {
        let mut o = Json::obj();
        o.set("count", Json::U64(self.count));
        o.set("min", Json::U64(self.min));
        o.set("p50", Json::U64(self.p50));
        o.set("p95", Json::U64(self.p95));
        o.set("p99", Json::U64(self.p99));
        o.set("max", Json::U64(self.max));
        o
    }
}

/// One Suite B row: several chaos-seeded processes at one scale.
#[derive(Debug, Clone, PartialEq)]
pub struct SuiteBScale {
    pub scale: u64,
    pub processes: u64,
    pub wall_ms: Percentiles,
    pub peak_rss_kb: Percentiles,
    pub records_per_sec: Percentiles,
    /// Per-process report histograms merged bucket-wise, by name.
    pub merged: BTreeMap<String, Hist>,
}

/// One enforced check and its outcome.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Verdict {
    pub cell: String,
    pub pass: bool,
    pub detail: String,
}

/// A complete suite report, convertible to and from schema-`v1` JSON.
#[derive(Debug, Clone, PartialEq)]
pub struct SuiteReport {
    pub meta: SuiteMeta,
    pub suite_a: Vec<SuiteACell>,
    pub suite_b: Vec<SuiteBScale>,
    pub verdicts: Vec<Verdict>,
}

impl SuiteReport {
    pub fn to_json(&self) -> Json {
        let mut meta = Json::obj();
        meta.set("seed", Json::U64(self.meta.seed));
        meta.set("date", Json::Str(self.meta.date.clone()));
        meta.set("suites", Json::Str(self.meta.suites.clone()));
        meta.set("processes", Json::U64(self.meta.processes));

        let suite_a = Json::Array(
            self.suite_a
                .iter()
                .map(|c| {
                    let mut o = Json::obj();
                    o.set("cell", Json::Str(c.cell.clone()));
                    o.set("kind", Json::Str(c.kind.clone()));
                    o.set("scale", Json::U64(c.scale));
                    o.set("jobs", Json::U64(c.jobs));
                    o.set("wall_ms", Json::U64(c.wall_ms));
                    o.set("peak_rss_kb", Json::U64(c.peak_rss_kb));
                    o.set("records", Json::U64(c.records));
                    o.set("records_per_sec", Json::F64(c.records_per_sec));
                    o.set("fingerprint", Json::Str(c.fingerprint.clone()));
                    o
                })
                .collect(),
        );
        let suite_b = Json::Array(
            self.suite_b
                .iter()
                .map(|s| {
                    let mut o = Json::obj();
                    o.set("scale", Json::U64(s.scale));
                    o.set("processes", Json::U64(s.processes));
                    o.set("wall_ms", s.wall_ms.to_json());
                    o.set("peak_rss_kb", s.peak_rss_kb.to_json());
                    o.set("records_per_sec", s.records_per_sec.to_json());
                    let mut merged = Json::obj();
                    for (name, h) in &s.merged {
                        merged.set(name, h.to_json());
                    }
                    o.set("merged", merged);
                    o
                })
                .collect(),
        );
        let verdicts = Json::Array(
            self.verdicts
                .iter()
                .map(|v| {
                    let mut o = Json::obj();
                    o.set("cell", Json::Str(v.cell.clone()));
                    o.set("pass", Json::Bool(v.pass));
                    o.set("detail", Json::Str(v.detail.clone()));
                    o
                })
                .collect(),
        );

        let mut doc = Json::obj();
        doc.set("schema", Json::Str(SUITE_SCHEMA_ID.into()));
        doc.set("meta", meta);
        doc.set("suite_a", suite_a);
        doc.set("suite_b", suite_b);
        doc.set("verdicts", verdicts);
        doc
    }

    /// Rebuild a report from schema-`v1` JSON. Validates first, so the
    /// accessors below cannot panic on a document that passed.
    pub fn from_json(doc: &Json) -> Result<SuiteReport, Vec<String>> {
        validate(doc)?;
        let m = doc.get("meta").unwrap();
        let meta = SuiteMeta {
            seed: m.get("seed").unwrap().as_u64().unwrap(),
            date: m.get("date").unwrap().as_str().unwrap().to_string(),
            suites: m.get("suites").unwrap().as_str().unwrap().to_string(),
            processes: m.get("processes").unwrap().as_u64().unwrap(),
        };
        let suite_a = doc
            .get("suite_a")
            .unwrap()
            .as_array()
            .unwrap()
            .iter()
            .map(|c| SuiteACell {
                cell: c.get("cell").unwrap().as_str().unwrap().to_string(),
                kind: c.get("kind").unwrap().as_str().unwrap().to_string(),
                scale: c.get("scale").unwrap().as_u64().unwrap(),
                jobs: c.get("jobs").unwrap().as_u64().unwrap(),
                wall_ms: c.get("wall_ms").unwrap().as_u64().unwrap(),
                peak_rss_kb: c.get("peak_rss_kb").unwrap().as_u64().unwrap(),
                records: c.get("records").unwrap().as_u64().unwrap(),
                records_per_sec: c.get("records_per_sec").unwrap().as_f64().unwrap(),
                fingerprint: c.get("fingerprint").unwrap().as_str().unwrap().to_string(),
            })
            .collect();
        let pct = |o: &Json| Percentiles {
            count: o.get("count").unwrap().as_u64().unwrap(),
            min: o.get("min").unwrap().as_u64().unwrap(),
            p50: o.get("p50").unwrap().as_u64().unwrap(),
            p95: o.get("p95").unwrap().as_u64().unwrap(),
            p99: o.get("p99").unwrap().as_u64().unwrap(),
            max: o.get("max").unwrap().as_u64().unwrap(),
        };
        let suite_b = doc
            .get("suite_b")
            .unwrap()
            .as_array()
            .unwrap()
            .iter()
            .map(|s| SuiteBScale {
                scale: s.get("scale").unwrap().as_u64().unwrap(),
                processes: s.get("processes").unwrap().as_u64().unwrap(),
                wall_ms: pct(s.get("wall_ms").unwrap()),
                peak_rss_kb: pct(s.get("peak_rss_kb").unwrap()),
                records_per_sec: pct(s.get("records_per_sec").unwrap()),
                merged: s
                    .get("merged")
                    .unwrap()
                    .as_object()
                    .unwrap()
                    .iter()
                    .map(|(name, h)| {
                        // validate() already ran Hist::from_json on it.
                        (name.clone(), Hist::from_json(h, name).unwrap())
                    })
                    .collect(),
            })
            .collect();
        let verdicts = doc
            .get("verdicts")
            .unwrap()
            .as_array()
            .unwrap()
            .iter()
            .map(|v| Verdict {
                cell: v.get("cell").unwrap().as_str().unwrap().to_string(),
                pass: matches!(v.get("pass"), Some(Json::Bool(true))),
                detail: v.get("detail").unwrap().as_str().unwrap().to_string(),
            })
            .collect();
        Ok(SuiteReport { meta, suite_a, suite_b, verdicts })
    }

    /// True when every verdict passed.
    pub fn all_pass(&self) -> bool {
        self.verdicts.iter().all(|v| v.pass)
    }

    /// Human-readable summary: the Suite A cell table, the Suite B
    /// percentile table, then the verdict table (stderr, like the sweep
    /// summary).
    pub fn summary_table(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let _ = writeln!(
            out,
            "suite: seed={} date={} suites={} processes={}",
            self.meta.seed, self.meta.date, self.meta.suites, self.meta.processes
        );
        if !self.suite_a.is_empty() {
            let _ = writeln!(out, "{:-<76}", "");
            let _ = writeln!(
                out,
                "{:<28} {:>8} {:>10} {:>10} {:>14}",
                "suite A cell", "wall_ms", "rss_kb", "records", "rec/s"
            );
            for c in &self.suite_a {
                let _ = writeln!(
                    out,
                    "{:<28} {:>8} {:>10} {:>10} {:>14.1}",
                    c.cell, c.wall_ms, c.peak_rss_kb, c.records, c.records_per_sec
                );
            }
        }
        if !self.suite_b.is_empty() {
            let _ = writeln!(out, "{:-<76}", "");
            let _ = writeln!(
                out,
                "{:<20} {:>6} {:>10} {:>10} {:>10} {:>14}",
                "suite B scale", "procs", "wall p50", "wall p99", "rss p99", "rec/s p50"
            );
            for s in &self.suite_b {
                let _ = writeln!(
                    out,
                    "{:<20} {:>6} {:>10} {:>10} {:>10} {:>14}",
                    s.scale,
                    s.processes,
                    s.wall_ms.p50,
                    s.wall_ms.p99,
                    s.peak_rss_kb.p99,
                    s.records_per_sec.p50
                );
            }
        }
        let _ = writeln!(out, "{:-<76}", "");
        for v in &self.verdicts {
            let _ = writeln!(
                out,
                "{} {:<28} {}",
                if v.pass { "PASS" } else { "FAIL" },
                v.cell,
                v.detail
            );
        }
        out
    }
}

fn require<'a>(doc: &'a Json, path: &str, key: &str, errors: &mut Vec<String>) -> Option<&'a Json> {
    let v = doc.get(key);
    if v.is_none() {
        errors.push(format!("missing field {path}.{key}"));
    }
    v
}

fn require_u64(doc: &Json, path: &str, key: &str, errors: &mut Vec<String>) -> Option<u64> {
    let v = require(doc, path, key, errors)?;
    let n = v.as_u64();
    if n.is_none() {
        errors.push(format!("{path}.{key} must be an unsigned integer"));
    }
    n
}

fn require_str<'a>(
    doc: &'a Json,
    path: &str,
    key: &str,
    errors: &mut Vec<String>,
) -> Option<&'a str> {
    let v = require(doc, path, key, errors)?;
    let s = v.as_str();
    if s.is_none() {
        errors.push(format!("{path}.{key} must be a string"));
    }
    s
}

fn check_percentiles(doc: &Json, path: &str, processes: Option<u64>, errors: &mut Vec<String>) {
    let mut field = |key: &str| require_u64(doc, path, key, errors);
    let (count, min, p50, p95, p99, max) =
        (field("count"), field("min"), field("p50"), field("p95"), field("p99"), field("max"));
    if let (Some(c), Some(p)) = (count, processes) {
        if c != p {
            errors.push(format!("{path}.count is {c}, expected one sample per process ({p})"));
        }
    }
    if let (Some(min), Some(max)) = (min, max) {
        if min > max {
            errors.push(format!("{path}: min {min} > max {max}"));
        }
    }
    // p50/p95/p99 are bucket upper bounds — ordered among themselves and
    // never below min, but p99 may legitimately exceed the exact max.
    if let (Some(min), Some(p50), Some(p95), Some(p99)) = (min, p50, p95, p99) {
        if !(min <= p50 && p50 <= p95 && p95 <= p99) {
            errors.push(format!("{path}: percentiles out of order ({min}/{p50}/{p95}/{p99})"));
        }
    }
}

fn check_date(d: &str) -> bool {
    d.len() == 10
        && d.bytes()
            .enumerate()
            .all(|(i, b)| if i == 4 || i == 7 { b == b'-' } else { b.is_ascii_digit() })
}

/// Validate a document against schema `dnsimpact-suite/v1`. Returns every
/// violation, not just the first. Beyond field shapes this enforces the
/// cross-field accounting:
///
/// - `meta.suites` ∈ {`A`, `B`, `all`}, and the populated sections match
///   (`A` → no `suite_b` rows, `B` → no `suite_a` cells, `all` → both);
/// - `meta.processes` = suite A cells + Σ suite B per-scale processes;
/// - suite A cell labels unique, rates finite, `kind` ∈ {repro, daemon};
/// - suite B rows strictly sorted by scale, percentile blocks counting one
///   sample per process, merged histograms internally consistent
///   ([`Hist::from_json`]: bucket accounting and honest percentiles).
pub fn validate(doc: &Json) -> Result<(), Vec<String>> {
    let mut errors = Vec::new();
    match doc.get("schema").and_then(|s| s.as_str()) {
        Some(s) if s == SUITE_SCHEMA_ID => {}
        Some(s) => errors.push(format!("schema is {s:?}, expected {SUITE_SCHEMA_ID:?}")),
        None => errors.push("missing string field $.schema".into()),
    }

    let mut suites_kind: Option<String> = None;
    let mut meta_processes: Option<u64> = None;
    if let Some(meta) = require(doc, "$", "meta", &mut errors) {
        require_u64(meta, "$.meta", "seed", &mut errors);
        meta_processes = require_u64(meta, "$.meta", "processes", &mut errors);
        if let Some(d) = require_str(meta, "$.meta", "date", &mut errors) {
            if !check_date(d) {
                errors.push(format!("$.meta.date {d:?} is not YYYY-MM-DD"));
            }
        }
        if let Some(s) = require_str(meta, "$.meta", "suites", &mut errors) {
            if matches!(s, "A" | "B" | "all") {
                suites_kind = Some(s.to_string());
            } else {
                errors.push(format!("$.meta.suites {s:?} must be \"A\", \"B\", or \"all\""));
            }
        }
        if meta_processes == Some(0) {
            errors.push("$.meta.processes must be at least 1".into());
        }
    }

    let mut a_cells = 0u64;
    match require(doc, "$", "suite_a", &mut errors) {
        Some(Json::Array(cells)) => {
            a_cells = cells.len() as u64;
            let mut labels = Vec::new();
            for (i, c) in cells.iter().enumerate() {
                let path = format!("$.suite_a[{i}]");
                if let Some(label) = require_str(c, &path, "cell", &mut errors) {
                    if labels.contains(&label) {
                        errors.push(format!("{path}.cell {label:?} duplicates an earlier cell"));
                    }
                    labels.push(label);
                }
                if let Some(kind) = require_str(c, &path, "kind", &mut errors) {
                    if !matches!(kind, "repro" | "daemon") {
                        errors
                            .push(format!("{path}.kind {kind:?} must be \"repro\" or \"daemon\""));
                    }
                }
                for key in ["scale", "jobs", "wall_ms", "peak_rss_kb", "records"] {
                    require_u64(c, &path, key, &mut errors);
                }
                if let Some(jobs) = c.get("jobs").and_then(Json::as_u64) {
                    if jobs == 0 {
                        errors.push(format!("{path}.jobs must be at least 1"));
                    }
                }
                if let Some(v) = require(c, &path, "records_per_sec", &mut errors) {
                    match v.as_f64() {
                        Some(r) if r.is_finite() && r >= 0.0 => {}
                        Some(r) => errors
                            .push(format!("{path}.records_per_sec {r} must be finite and >= 0")),
                        None => errors.push(format!("{path}.records_per_sec must be a number")),
                    }
                }
                require_str(c, &path, "fingerprint", &mut errors);
            }
        }
        Some(_) => errors.push("$.suite_a must be an array".into()),
        None => {}
    }

    let mut b_processes = 0u64;
    match require(doc, "$", "suite_b", &mut errors) {
        Some(Json::Array(rows)) => {
            let mut prev_scale: Option<u64> = None;
            for (i, s) in rows.iter().enumerate() {
                let path = format!("$.suite_b[{i}]");
                let scale = require_u64(s, &path, "scale", &mut errors);
                if let (Some(prev), Some(cur)) = (prev_scale, scale) {
                    if cur <= prev {
                        errors.push(format!(
                            "{path}.scale {cur} must exceed the previous row's {prev} \
                             (rows strictly sorted by scale)"
                        ));
                    }
                }
                prev_scale = scale.or(prev_scale);
                let procs = require_u64(s, &path, "processes", &mut errors);
                match procs {
                    Some(0) => errors.push(format!("{path}.processes must be at least 1")),
                    Some(p) => b_processes += p,
                    None => {}
                }
                for key in ["wall_ms", "peak_rss_kb", "records_per_sec"] {
                    match require(s, &path, key, &mut errors) {
                        Some(block) if block.as_object().is_some() => {
                            check_percentiles(block, &format!("{path}.{key}"), procs, &mut errors);
                        }
                        Some(_) => errors.push(format!("{path}.{key} must be an object")),
                        None => {}
                    }
                }
                match require(s, &path, "merged", &mut errors) {
                    Some(Json::Object(pairs)) => {
                        for (name, h) in pairs {
                            if let Err(mut hist_errors) =
                                Hist::from_json(h, &format!("{path}.merged.{name}"))
                            {
                                errors.append(&mut hist_errors);
                            }
                        }
                    }
                    Some(_) => errors.push(format!("{path}.merged must be an object")),
                    None => {}
                }
            }
        }
        Some(_) => errors.push("$.suite_b must be an array".into()),
        None => {}
    }

    if let Some(kind) = &suites_kind {
        if (kind == "A" || kind == "all") && a_cells == 0 {
            errors.push(format!("$.meta.suites is {kind:?} but $.suite_a is empty"));
        }
        if kind == "A" && b_processes > 0 {
            errors.push("$.meta.suites is \"A\" but $.suite_b has rows".into());
        }
        if (kind == "B" || kind == "all") && b_processes == 0 {
            errors.push(format!("$.meta.suites is {kind:?} but $.suite_b is empty"));
        }
        if kind == "B" && a_cells > 0 {
            errors.push("$.meta.suites is \"B\" but $.suite_a has cells".into());
        }
    }
    if let Some(total) = meta_processes {
        if errors.is_empty() && total != a_cells + b_processes {
            errors.push(format!(
                "$.meta.processes is {total} but suite_a has {a_cells} cell(s) and suite_b \
                 accounts for {b_processes} process(es)"
            ));
        }
    }

    match require(doc, "$", "verdicts", &mut errors) {
        Some(Json::Array(items)) => {
            for (i, v) in items.iter().enumerate() {
                let path = format!("$.verdicts[{i}]");
                require_str(v, &path, "cell", &mut errors);
                require_str(v, &path, "detail", &mut errors);
                match require(v, &path, "pass", &mut errors) {
                    Some(Json::Bool(_)) | None => {}
                    Some(_) => errors.push(format!("{path}.pass must be a boolean")),
                }
            }
        }
        Some(_) => errors.push("$.verdicts must be an array".into()),
        None => {}
    }

    if errors.is_empty() {
        Ok(())
    } else {
        Err(errors)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn hist_of(values: &[u64]) -> Hist {
        let mut h = Hist::new();
        for &v in values {
            h.record(v);
        }
        h
    }

    fn sample_report() -> SuiteReport {
        let walls = hist_of(&[390, 402, 511]);
        let rss = hist_of(&[41_000, 41_200, 43_000]);
        let rates = hist_of(&[17_000, 17_400, 18_100]);
        let mut merged = BTreeMap::new();
        merged.insert("time.pool.task_ms".to_string(), hist_of(&[1, 2, 2, 3, 9, 15]));
        SuiteReport {
            meta: SuiteMeta {
                seed: 42,
                date: "2026-08-08".into(),
                suites: "all".into(),
                processes: 5,
            },
            suite_a: vec![
                SuiteACell {
                    cell: "A/repro/scale750/jobs1".into(),
                    kind: "repro".into(),
                    scale: 750,
                    jobs: 1,
                    wall_ms: 412,
                    peak_rss_kb: 43_000,
                    records: 7184,
                    records_per_sec: 17_436.9,
                    fingerprint: "0x00c5330b6d65f1a2".into(),
                },
                SuiteACell {
                    cell: "A/repro/scale750/jobs2".into(),
                    kind: "repro".into(),
                    scale: 750,
                    jobs: 2,
                    wall_ms: 398,
                    peak_rss_kb: 43_550,
                    records: 7184,
                    records_per_sec: 18_050.3,
                    fingerprint: "0x00c5330b6d65f1a2".into(),
                },
            ],
            suite_b: vec![SuiteBScale {
                scale: 750,
                processes: 3,
                wall_ms: Percentiles::of(&walls),
                peak_rss_kb: Percentiles::of(&rss),
                records_per_sec: Percentiles::of(&rates),
                merged,
            }],
            verdicts: vec![Verdict {
                cell: "A/repro/scale750".into(),
                pass: true,
                detail: "fingerprints agree across jobs {1, 2}".into(),
            }],
        }
    }

    #[test]
    fn report_round_trips_through_json_text() {
        let report = sample_report();
        let text = report.to_json().pretty();
        let parsed = Json::parse(&text).unwrap();
        let back = SuiteReport::from_json(&parsed).unwrap();
        assert_eq!(back, report);
        assert_eq!(back.to_json().pretty(), text);
    }

    #[test]
    fn validate_rejects_wrong_schema() {
        let mut doc = sample_report().to_json();
        doc.set("schema", Json::Str("dnsimpact-sweep/v1".into()));
        let errors = validate(&doc).unwrap_err();
        assert!(errors[0].contains("expected"), "{errors:?}");
    }

    #[test]
    fn validate_enforces_process_accounting() {
        let mut report = sample_report();
        report.meta.processes = 9;
        let errors = validate(&report.to_json()).unwrap_err();
        assert!(errors.iter().any(|e| e.contains("processes is 9")), "{errors:?}");
    }

    #[test]
    fn validate_enforces_suites_section_match() {
        let mut only_a = sample_report();
        only_a.meta.suites = "A".into();
        let errors = validate(&only_a.to_json()).unwrap_err();
        assert!(errors.iter().any(|e| e.contains("suite_b has rows")), "{errors:?}");

        let mut only_b = sample_report();
        only_b.meta.suites = "B".into();
        let errors = validate(&only_b.to_json()).unwrap_err();
        assert!(errors.iter().any(|e| e.contains("suite_a has cells")), "{errors:?}");

        let mut empty_b = sample_report();
        empty_b.suite_b.clear();
        empty_b.meta.processes = 2;
        let errors = validate(&empty_b.to_json()).unwrap_err();
        assert!(errors.iter().any(|e| e.contains("suite_b is empty")), "{errors:?}");
    }

    #[test]
    fn validate_rejects_duplicate_cells_and_unsorted_scales() {
        let mut dup = sample_report();
        dup.suite_a[1].cell = dup.suite_a[0].cell.clone();
        let errors = validate(&dup.to_json()).unwrap_err();
        assert!(errors.iter().any(|e| e.contains("duplicates")), "{errors:?}");

        let mut unsorted = sample_report();
        let mut row = unsorted.suite_b[0].clone();
        row.scale = 750; // equal, not strictly greater
        unsorted.suite_b.push(row);
        unsorted.meta.processes += 3;
        let errors = validate(&unsorted.to_json()).unwrap_err();
        assert!(errors.iter().any(|e| e.contains("strictly sorted")), "{errors:?}");
    }

    #[test]
    fn validate_rejects_inconsistent_merged_histogram() {
        let mut doc = sample_report().to_json();
        let mut suite_b = doc.get("suite_b").unwrap().clone();
        let Json::Array(rows) = &mut suite_b else { unreachable!() };
        let mut merged = rows[0].get("merged").unwrap().clone();
        let mut h = merged.get("time.pool.task_ms").unwrap().clone();
        h.set("p99", Json::U64(1));
        merged.set("time.pool.task_ms", h);
        rows[0].set("merged", merged);
        doc.set("suite_b", suite_b);
        let errors = validate(&doc).unwrap_err();
        assert!(errors.iter().any(|e| e.contains("p99 claims 1")), "{errors:?}");
    }

    #[test]
    fn validate_rejects_nonfinite_rate_and_zero_jobs() {
        let mut report = sample_report();
        report.suite_a[0].records_per_sec = f64::NAN;
        report.suite_a[1].jobs = 0;
        // Non-finite f64 serializes to null, so the error is the type check.
        let errors = validate(&report.to_json()).unwrap_err();
        assert!(errors.iter().any(|e| e.contains("records_per_sec")), "{errors:?}");
        assert!(errors.iter().any(|e| e.contains("jobs must be at least 1")), "{errors:?}");
    }

    #[test]
    fn validate_rejects_percentile_count_mismatch() {
        let mut report = sample_report();
        report.suite_b[0].wall_ms.count = 7;
        let errors = validate(&report.to_json()).unwrap_err();
        assert!(errors.iter().any(|e| e.contains("one sample per process")), "{errors:?}");
    }

    #[test]
    fn summary_table_names_cells_and_verdicts() {
        let table = sample_report().summary_table();
        assert!(table.contains("A/repro/scale750/jobs1"));
        assert!(table.contains("PASS"));
        assert!(table.contains("fingerprints agree"));
        let mut failing = sample_report();
        failing.verdicts[0].pass = false;
        assert!(failing.summary_table().contains("FAIL"));
        assert!(!failing.all_pass());
        assert!(sample_report().all_pass());
    }
}
