//! Prometheus text exposition, dependency-free: a renderer from a metrics
//! [`Snapshot`] and a strict parser used by tests and the CI `live` gate.
//!
//! The renderer emits the text format any Prometheus-compatible scraper
//! accepts: one `# TYPE` line per family, then samples. Metric names are
//! sanitized (`.` and every other illegal byte become `_`), which can
//! collide distinct registry names in principle — the renderer detects a
//! collision and suffixes rather than silently merging.
//!
//! Histograms expose the native log2 grid as cumulative `le` buckets:
//! bucket `i` of the registry instrument holds values of bit length `i`,
//! so its exposition upper bound is `2^i - 1` (`0` for bucket 0), plus
//! the standard `+Inf` bucket, `_sum`, and `_count`.
//!
//! [`parse_text`] is *stricter* than a scraper needs to be: it re-checks
//! that every sample name is legal, every value parses, histogram bucket
//! counts are cumulative and agree with `_count`, and every sample was
//! preceded by its `# TYPE`. The CI gate scrapes `/metricsz` mid-ingest
//! and runs this parser — an exposition bug fails the build, not the
//! operator's dashboard.

use crate::metrics::Snapshot;
use std::collections::BTreeMap;
use std::fmt::Write as _;

/// Map a registry name onto the Prometheus grammar
/// (`[a-zA-Z_:][a-zA-Z0-9_:]*`).
pub fn sanitize(name: &str) -> String {
    let mut out = String::with_capacity(name.len());
    for (i, c) in name.chars().enumerate() {
        let ok = c.is_ascii_alphabetic() || c == '_' || c == ':' || (i > 0 && c.is_ascii_digit());
        out.push(if ok { c } else { '_' });
    }
    if out.is_empty() {
        out.push('_');
    }
    out
}

fn is_legal_name(name: &str) -> bool {
    !name.is_empty()
        && name.chars().enumerate().all(|(i, c)| {
            c.is_ascii_alphabetic() || c == '_' || c == ':' || (i > 0 && c.is_ascii_digit())
        })
}

/// Sanitize every name in `names`, de-colliding with `_2`, `_3`, …
/// suffixes in input order so two registry names never merge silently.
fn sanitized_unique<'a>(names: impl Iterator<Item = &'a str>) -> BTreeMap<&'a str, String> {
    let mut used: BTreeMap<String, usize> = BTreeMap::new();
    let mut out = BTreeMap::new();
    for name in names {
        let base = sanitize(name);
        let n = used.entry(base.clone()).or_insert(0);
        *n += 1;
        let unique = if *n == 1 { base } else { format!("{base}_{n}") };
        out.insert(name, unique);
    }
    out
}

/// Render a snapshot as Prometheus text exposition.
pub fn render(snap: &Snapshot) -> String {
    let names = sanitized_unique(
        snap.counters
            .keys()
            .chain(snap.gauges.keys())
            .chain(snap.histograms.keys())
            .map(String::as_str),
    );
    let mut out = String::new();
    for (name, &value) in &snap.counters {
        let n = &names[name.as_str()];
        let _ = writeln!(out, "# TYPE {n} counter");
        let _ = writeln!(out, "{n} {value}");
    }
    for (name, &value) in &snap.gauges {
        let n = &names[name.as_str()];
        let _ = writeln!(out, "# TYPE {n} gauge");
        let _ = writeln!(out, "{n} {value}");
    }
    for (name, h) in &snap.histograms {
        let n = &names[name.as_str()];
        let _ = writeln!(out, "# TYPE {n} histogram");
        let mut cum = 0u64;
        for (i, &b) in h.buckets.iter().enumerate() {
            cum += b;
            let le = if i == 0 { 0 } else { (1u64 << i) - 1 };
            let _ = writeln!(out, "{n}_bucket{{le=\"{le}\"}} {cum}");
        }
        let _ = writeln!(out, "{n}_bucket{{le=\"+Inf\"}} {}", h.count);
        let _ = writeln!(out, "{n}_sum {}", h.sum);
        let _ = writeln!(out, "{n}_count {}", h.count);
    }
    out
}

/// One parsed metric family.
#[derive(Debug, Clone, PartialEq)]
pub struct Family {
    pub name: String,
    /// `counter`, `gauge`, or `histogram`.
    pub kind: String,
    /// `(sample name with suffix, label text or "", value)`.
    pub samples: Vec<(String, String, f64)>,
}

/// Strictly parse a text exposition (see module docs). Returns the
/// families in document order.
pub fn parse_text(text: &str) -> Result<Vec<Family>, String> {
    let mut families: Vec<Family> = Vec::new();
    for (lineno, line) in text.lines().enumerate() {
        let lineno = lineno + 1;
        if line.is_empty() {
            continue;
        }
        if let Some(rest) = line.strip_prefix("# TYPE ") {
            let mut it = rest.split_whitespace();
            let (name, kind) = (it.next().unwrap_or(""), it.next().unwrap_or(""));
            if !is_legal_name(name) {
                return Err(format!("line {lineno}: illegal family name {name:?}"));
            }
            if !matches!(kind, "counter" | "gauge" | "histogram") {
                return Err(format!("line {lineno}: unknown family kind {kind:?}"));
            }
            if it.next().is_some() {
                return Err(format!("line {lineno}: trailing tokens on TYPE line"));
            }
            if families.iter().any(|f| f.name == name) {
                return Err(format!("line {lineno}: duplicate TYPE for {name:?}"));
            }
            families.push(Family { name: name.into(), kind: kind.into(), samples: Vec::new() });
            continue;
        }
        if line.starts_with('#') {
            continue; // HELP or comment
        }
        let (name_part, value_part) = line
            .rsplit_once(' ')
            .ok_or_else(|| format!("line {lineno}: sample has no value: {line:?}"))?;
        let (name, labels) = match name_part.split_once('{') {
            Some((n, l)) => {
                let l = l
                    .strip_suffix('}')
                    .ok_or_else(|| format!("line {lineno}: unterminated labels: {line:?}"))?;
                (n, l.to_string())
            }
            None => (name_part, String::new()),
        };
        if !is_legal_name(name) {
            return Err(format!("line {lineno}: illegal sample name {name:?}"));
        }
        let value: f64 = value_part
            .parse()
            .map_err(|_| format!("line {lineno}: bad sample value {value_part:?}"))?;
        let family = families
            .iter_mut()
            .rev()
            .find(|f| {
                name == f.name
                    || (f.kind == "histogram"
                        && [
                            format!("{}_bucket", f.name),
                            format!("{}_sum", f.name),
                            format!("{}_count", f.name),
                        ]
                        .iter()
                        .any(|s| s == name))
            })
            .ok_or_else(|| format!("line {lineno}: sample {name:?} has no preceding # TYPE"))?;
        family.samples.push((name.into(), labels, value));
    }
    // Histogram shape: cumulative buckets, +Inf present, count agrees.
    for f in &families {
        if f.kind != "histogram" {
            if f.samples.len() != 1 {
                return Err(format!("{} family {:?} must have exactly one sample", f.kind, f.name));
            }
            continue;
        }
        let buckets: Vec<&(String, String, f64)> =
            f.samples.iter().filter(|(n, _, _)| *n == format!("{}_bucket", f.name)).collect();
        let mut prev = 0.0;
        let mut inf = None;
        for (_, labels, v) in &buckets {
            if *v < prev {
                return Err(format!("histogram {:?}: bucket counts not cumulative", f.name));
            }
            prev = *v;
            if labels == "le=\"+Inf\"" {
                inf = Some(*v);
            }
        }
        let inf =
            inf.ok_or_else(|| format!("histogram {:?}: missing le=\"+Inf\" bucket", f.name))?;
        let count = f
            .samples
            .iter()
            .find(|(n, _, _)| *n == format!("{}_count", f.name))
            .map(|(_, _, v)| *v)
            .ok_or_else(|| format!("histogram {:?}: missing _count", f.name))?;
        if count != inf {
            return Err(format!("histogram {:?}: _count {count} != +Inf bucket {inf}", f.name));
        }
        if !f.samples.iter().any(|(n, _, _)| *n == format!("{}_sum", f.name)) {
            return Err(format!("histogram {:?}: missing _sum", f.name));
        }
    }
    Ok(families)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::HistogramSnapshot;
    use std::collections::BTreeMap;

    fn snapshot_with_histogram() -> Snapshot {
        let mut h = HistogramSnapshot {
            count: 0,
            sum: 0,
            min: 0,
            max: 0,
            p50: 0,
            p90: 0,
            p95: 0,
            p99: 0,
            buckets: vec![1, 2, 0, 4],
        };
        h.count = 7;
        h.sum = 40;
        Snapshot {
            counters: BTreeMap::from([("join.rows".into(), 12), ("time.wall_ms".into(), 88)]),
            gauges: BTreeMap::from([("daemon.staleness_s".into(), 3)]),
            histograms: BTreeMap::from([("sched.daemon.http.latency_us.query".into(), h)]),
        }
    }

    #[test]
    fn render_parses_back_with_expected_families() {
        let text = render(&snapshot_with_histogram());
        let families = parse_text(&text).unwrap();
        assert_eq!(families.len(), 4);
        let hist = families
            .iter()
            .find(|f| f.name == "sched_daemon_http_latency_us_query")
            .expect("histogram family");
        assert_eq!(hist.kind, "histogram");
        // 4 finite buckets + +Inf + _sum + _count.
        assert_eq!(hist.samples.len(), 7);
        let counter = families.iter().find(|f| f.name == "join_rows").unwrap();
        assert_eq!(counter.samples, vec![("join_rows".into(), String::new(), 12.0)]);
    }

    #[test]
    fn sanitize_maps_dots_and_collisions_stay_distinct() {
        assert_eq!(sanitize("a.b-c.9"), "a_b_c_9");
        assert_eq!(sanitize("9lead"), "_lead");
        let names = sanitized_unique(["a.b", "a_b"].into_iter());
        assert_eq!(names["a.b"], "a_b");
        assert_eq!(names["a_b"], "a_b_2");
    }

    #[test]
    fn parser_rejects_malformed_documents() {
        assert!(parse_text("# TYPE x weird\nx 1\n").unwrap_err().contains("unknown family kind"));
        assert!(parse_text("orphan 1\n").unwrap_err().contains("no preceding # TYPE"));
        assert!(parse_text("# TYPE x counter\nx notanumber\n")
            .unwrap_err()
            .contains("bad sample value"));
        let non_cumulative = "# TYPE h histogram\n\
             h_bucket{le=\"1\"} 5\nh_bucket{le=\"3\"} 2\nh_bucket{le=\"+Inf\"} 5\nh_sum 9\nh_count 5\n";
        assert!(parse_text(non_cumulative).unwrap_err().contains("not cumulative"));
        let count_mismatch = "# TYPE h histogram\n\
             h_bucket{le=\"+Inf\"} 5\nh_sum 9\nh_count 6\n";
        assert!(parse_text(count_mismatch).unwrap_err().contains("_count"));
    }

    #[test]
    fn histogram_buckets_are_cumulative_with_log2_bounds() {
        let text = render(&snapshot_with_histogram());
        let bucket_lines: Vec<&str> = text
            .lines()
            .filter(|l| l.starts_with("sched_daemon_http_latency_us_query_bucket"))
            .collect();
        assert_eq!(
            bucket_lines,
            vec![
                "sched_daemon_http_latency_us_query_bucket{le=\"0\"} 1",
                "sched_daemon_http_latency_us_query_bucket{le=\"1\"} 3",
                "sched_daemon_http_latency_us_query_bucket{le=\"3\"} 3",
                "sched_daemon_http_latency_us_query_bucket{le=\"7\"} 7",
                "sched_daemon_http_latency_us_query_bucket{le=\"+Inf\"} 7",
            ]
        );
    }
}
