//! Peak resident-set-size readout.
//!
//! Linux exposes the process high-water mark as `VmHWM` in
//! `/proc/self/status`; on other platforms (or if the file is missing)
//! we report `0` rather than fail — RSS is informational, never gating.

/// Peak RSS of the current process in kilobytes, or 0 if unavailable.
pub fn peak_rss_kb() -> u64 {
    read_vm_hwm().unwrap_or(0)
}

/// Reset the kernel's peak-RSS high-water mark, so a following
/// [`peak_rss_kb`] reads the peak *since this call* rather than since
/// process start. Linux-only (`/proc/self/clear_refs`); best-effort — on
/// failure the high-water mark simply stays monotonic, which per-cell
/// consumers must tolerate anyway.
pub fn reset_peak() {
    let _ = std::fs::write("/proc/self/clear_refs", "5");
}

fn read_vm_hwm() -> Option<u64> {
    let status = std::fs::read_to_string("/proc/self/status").ok()?;
    for line in status.lines() {
        if let Some(rest) = line.strip_prefix("VmHWM:") {
            return rest.trim().trim_end_matches(" kB").trim().parse().ok();
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn peak_rss_positive_on_linux() {
        if std::path::Path::new("/proc/self/status").exists() {
            assert!(peak_rss_kb() > 0);
        }
    }

    #[test]
    fn reset_peak_never_panics_and_rss_stays_readable() {
        reset_peak();
        if std::path::Path::new("/proc/self/status").exists() {
            assert!(peak_rss_kb() > 0, "HWM readable after reset");
        }
    }
}
