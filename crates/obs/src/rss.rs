//! Peak resident-set-size readout.
//!
//! Linux exposes the process high-water mark as `VmHWM` in
//! `/proc/self/status`; on other platforms (or if the file is missing)
//! we report `0` rather than fail — RSS is informational, never gating.

/// Peak RSS of the current process in kilobytes, or 0 if unavailable.
pub fn peak_rss_kb() -> u64 {
    read_vm_hwm().unwrap_or(0)
}

fn read_vm_hwm() -> Option<u64> {
    let status = std::fs::read_to_string("/proc/self/status").ok()?;
    for line in status.lines() {
        if let Some(rest) = line.strip_prefix("VmHWM:") {
            return rest.trim().trim_end_matches(" kB").trim().parse().ok();
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn peak_rss_positive_on_linux() {
        if std::path::Path::new("/proc/self/status").exists() {
            assert!(peak_rss_kb() > 0);
        }
    }
}
