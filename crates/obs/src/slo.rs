//! Declarative SLOs evaluated on the tick clock, with burn rates and a
//! degradation diagnosis.
//!
//! An [`SloSpec`] binds an objective ("p99 query latency stays under
//! 5 ms", "ingest lag under 50 batches") to one time-series name in the
//! live store. Every tick, [`SloSet::observe_tick`] reads the series'
//! current value and records breach-or-not; the **burn rate** is the
//! breaching fraction of the last `window` ticks, in permille. Status
//! follows burn: [`SloStatus::Breach`] at ≥ 500‰, [`SloStatus::Warn`]
//! above zero, [`SloStatus::Ok`] otherwise. Only status *transitions*
//! are recorded (a `(tick, slo, status)` triple), so the verdict
//! sequence stays tiny and — for deterministic SLOs — is itself a pure
//! function of the feed prefix, byte-comparable across replays.
//!
//! ## Deterministic vs annotation objectives
//!
//! Ingest-side objectives (staleness, lag) read deterministic series:
//! their verdicts replay identically for any chaos seed or `--jobs` and
//! belong to the deterministic half of `/sloz` and the live report.
//! Serving-side objectives (query p99, shed ratio) depend on thread
//! timing — real observability, annotation only. The split is declared
//! per spec (`deterministic`), mirroring the metric namespace rule.
//!
//! ## Diagnosis
//!
//! The paper's operator question is not just "are we degraded" but
//! *why*. [`SloSet::diagnose`] separates the two failure shapes the
//! daemon can exhibit: **attack-induced overload** (serving SLOs burn
//! while ingest is healthy — the index is fresh but the query plane is
//! drowning) and **ingest starvation** (staleness/lag SLOs burn — the
//! served answers are honest but old, whatever the query plane does).

use std::collections::VecDeque;

/// Which failure shape a breached objective indicates.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SloKind {
    /// Ingest health: staleness, lag. Deterministic series.
    Ingest,
    /// Query-plane health: latency, shedding. Scheduling-dependent.
    Serving,
}

/// One declarative objective.
#[derive(Clone, Debug)]
pub struct SloSpec {
    /// Short verdict name (`ingest_staleness`, `query_p99_us`, …).
    pub name: String,
    /// The time-series the objective reads.
    pub series: String,
    /// Breach when the series value exceeds this.
    pub max: u64,
    /// Burn-rate window, in ticks.
    pub window: usize,
    pub kind: SloKind,
    /// Whether verdicts join determinism comparisons (see module docs).
    pub deterministic: bool,
}

#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SloStatus {
    Ok,
    Warn,
    Breach,
}

impl SloStatus {
    pub fn as_str(self) -> &'static str {
        match self {
            SloStatus::Ok => "ok",
            SloStatus::Warn => "warn",
            SloStatus::Breach => "breach",
        }
    }
}

/// A recorded status change.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Transition {
    pub tick: u64,
    pub slo: String,
    pub status: SloStatus,
}

/// Live view of one objective.
#[derive(Clone, Debug)]
pub struct SloStatusView {
    pub name: String,
    pub series: String,
    pub kind: SloKind,
    pub deterministic: bool,
    pub status: SloStatus,
    pub burn_permille: u64,
    pub last_value: Option<u64>,
    pub max: u64,
}

struct SloState {
    spec: SloSpec,
    recent: VecDeque<bool>,
    status: SloStatus,
    last_value: Option<u64>,
    ever_observed: bool,
}

impl SloState {
    fn burn_permille(&self) -> u64 {
        if self.recent.is_empty() {
            return 0;
        }
        let breaching = self.recent.iter().filter(|&&b| b).count() as u64;
        breaching * 1000 / self.recent.len() as u64
    }
}

/// All objectives plus the transition log.
pub struct SloSet {
    slos: Vec<SloState>,
    transitions: Vec<Transition>,
}

impl SloSet {
    pub fn new(specs: Vec<SloSpec>) -> SloSet {
        SloSet {
            slos: specs
                .into_iter()
                .map(|spec| SloState {
                    spec,
                    recent: VecDeque::new(),
                    status: SloStatus::Ok,
                    last_value: None,
                    ever_observed: false,
                })
                .collect(),
            transitions: Vec::new(),
        }
    }

    pub fn specs(&self) -> impl Iterator<Item = &SloSpec> {
        self.slos.iter().map(|s| &s.spec)
    }

    /// Evaluate every objective at `tick`. `value_of` resolves a series
    /// name to its current value; an unresolvable series contributes no
    /// observation (the objective keeps its last status rather than
    /// inventing an Ok).
    pub fn observe_tick(&mut self, tick: u64, mut value_of: impl FnMut(&str) -> Option<u64>) {
        for s in &mut self.slos {
            let Some(v) = value_of(&s.spec.series) else { continue };
            s.last_value = Some(v);
            s.recent.push_back(v > s.spec.max);
            while s.recent.len() > s.spec.window.max(1) {
                s.recent.pop_front();
            }
            let burn = s.burn_permille();
            let status = if burn >= 500 {
                SloStatus::Breach
            } else if burn > 0 {
                SloStatus::Warn
            } else {
                SloStatus::Ok
            };
            // The first observation is always recorded, so a replayed
            // verdict sequence states its starting point explicitly.
            if status != s.status || !s.ever_observed {
                s.status = status;
                s.ever_observed = true;
                self.transitions.push(Transition { tick, slo: s.spec.name.clone(), status });
            }
        }
    }

    pub fn transitions(&self) -> &[Transition] {
        &self.transitions
    }

    /// Transitions of deterministic objectives only — the byte-comparable
    /// verdict sequence.
    pub fn deterministic_transitions(&self) -> Vec<&Transition> {
        let det: Vec<&str> = self
            .slos
            .iter()
            .filter(|s| s.spec.deterministic)
            .map(|s| s.spec.name.as_str())
            .collect();
        self.transitions.iter().filter(|t| det.contains(&t.slo.as_str())).collect()
    }

    pub fn statuses(&self) -> Vec<SloStatusView> {
        self.slos
            .iter()
            .map(|s| SloStatusView {
                name: s.spec.name.clone(),
                series: s.spec.series.clone(),
                kind: s.spec.kind,
                deterministic: s.spec.deterministic,
                status: s.status,
                burn_permille: s.burn_permille(),
                last_value: s.last_value,
                max: s.spec.max,
            })
            .collect()
    }

    /// The failure-shape verdict (see module docs). Warn-level burn does
    /// not flip the diagnosis; only Breach does.
    pub fn diagnose(&self) -> &'static str {
        let breaching = |kind: SloKind| {
            self.slos
                .iter()
                .any(|s| s.spec.kind == kind && s.ever_observed && s.status == SloStatus::Breach)
        };
        match (breaching(SloKind::Serving), breaching(SloKind::Ingest)) {
            (true, true) => "overload_and_starvation",
            (true, false) => "attack_overload",
            (false, true) => "ingest_starvation",
            (false, false) => {
                if self.slos.iter().any(|s| s.ever_observed && s.status == SloStatus::Warn) {
                    "warn"
                } else {
                    "healthy"
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spec(name: &str, series: &str, max: u64, window: usize, kind: SloKind) -> SloSpec {
        SloSpec {
            name: name.into(),
            series: series.into(),
            max,
            window,
            kind,
            deterministic: kind == SloKind::Ingest,
        }
    }

    #[test]
    fn burn_rate_drives_status_transitions() {
        let mut set = SloSet::new(vec![spec("lag", "live.lag", 10, 4, SloKind::Ingest)]);
        // 3 breaching ticks, then recovery.
        for (tick, v) in [(1, 50), (2, 40), (3, 30), (4, 5), (5, 5), (6, 5), (7, 5), (8, 5)] {
            set.observe_tick(tick, |_| Some(v));
        }
        let names: Vec<(u64, SloStatus)> =
            set.transitions().iter().map(|t| (t.tick, t.status)).collect();
        // tick1: first observation (breach 1000‰) → Breach; stays Breach
        // through tick5 (2/4 = 500‰); tick6 1/4 → Warn; tick7 0/4 → Ok.
        assert_eq!(names, vec![(1, SloStatus::Breach), (6, SloStatus::Warn), (7, SloStatus::Ok)]);
        assert_eq!(set.diagnose(), "healthy");
    }

    #[test]
    fn diagnosis_separates_overload_from_starvation() {
        let mut set = SloSet::new(vec![
            spec("staleness", "live.staleness_s", 100, 2, SloKind::Ingest),
            spec("shed", "sched.shed_permille", 50, 2, SloKind::Serving),
        ]);
        // Ingest healthy, serving drowning → attack overload.
        set.observe_tick(1, |s| Some(if s.starts_with("sched.") { 900 } else { 0 }));
        set.observe_tick(2, |s| Some(if s.starts_with("sched.") { 900 } else { 0 }));
        assert_eq!(set.diagnose(), "attack_overload");
        // Now the feed stalls too.
        set.observe_tick(3, |_| Some(900));
        set.observe_tick(4, |_| Some(900));
        assert_eq!(set.diagnose(), "overload_and_starvation");
        // Serving recovers, ingest still stalled → starvation.
        set.observe_tick(5, |s| Some(if s.starts_with("sched.") { 0 } else { 900 }));
        set.observe_tick(6, |s| Some(if s.starts_with("sched.") { 0 } else { 900 }));
        assert_eq!(set.diagnose(), "ingest_starvation");
    }

    #[test]
    fn deterministic_transitions_exclude_serving_objectives() {
        let mut set = SloSet::new(vec![
            spec("lag", "live.lag", 10, 2, SloKind::Ingest),
            spec("p99", "sched.p99", 10, 2, SloKind::Serving),
        ]);
        set.observe_tick(1, |_| Some(100));
        assert_eq!(set.transitions().len(), 2);
        let det = set.deterministic_transitions();
        assert_eq!(det.len(), 1);
        assert_eq!(det[0].slo, "lag");
    }

    #[test]
    fn unresolvable_series_keeps_last_status() {
        let mut set = SloSet::new(vec![spec("lag", "live.lag", 10, 2, SloKind::Ingest)]);
        set.observe_tick(1, |_| Some(100));
        assert_eq!(set.statuses()[0].status, SloStatus::Breach);
        set.observe_tick(2, |_| None);
        assert_eq!(set.statuses()[0].status, SloStatus::Breach);
        assert_eq!(set.transitions().len(), 1);
    }
}
