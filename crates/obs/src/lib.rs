//! Out-of-band observability for the `dnsimpact` workspace.
//!
//! The measurement pipeline has quantitative budgets the paper cares about
//! — per-5-minute joins, the ≤50-domains/5-min reactive probe budget, the
//! ≤10-minute trigger bound, outage accounting — and this crate makes them
//! observable from a run without perturbing it.
//!
//! ## The out-of-band rule
//!
//! Instrumentation is **write-only** from the pipeline's point of view:
//! metrics are recorded by the instrumented crates and read *only* by the
//! reporting layer (`repro --metrics-json` / `--metrics-summary`). Nothing
//! in the workspace ever branches on a metric value, seeds an RNG from one,
//! or lets one reach an artifact byte or stdout. That is what keeps the
//! PR-1/PR-2 determinism invariants (byte-identical artifacts for any
//! `--jobs` and any `--chaos-seed`) intact with instrumentation compiled
//! in and always on.
//!
//! ## Determinism domains
//!
//! Metric names are namespaced by determinism:
//!
//! - plain names (`join.rows_joined`, `chaos.faults_injected`, …) are
//!   **deterministic**: for a fixed seed/scale/experiment set their final
//!   values are identical across `--jobs` counts, and the pipeline counters
//!   are identical across chaos seeds too (recovery is exact);
//! - names prefixed `time.` or `sched.` depend on wall clock or scheduling
//!   (span durations, per-task latency, queue depths, shard counts) and are
//!   excluded from determinism comparisons — present for humans, never for
//!   diffing.
//!
//! [`Snapshot::deterministic`] applies that filter; the metrics-determinism
//! tests and the CI counter-invariant gate are built on it.
//!
//! ## Pieces
//!
//! - [`metrics`]: atomic [`Counter`]s, max-[`Gauge`]s, log-bucketed
//!   [`Histogram`]s behind a process-global registry with stable,
//!   sorted snapshots;
//! - [`span`]: hierarchical RAII span timers (`obs::span("join")`)
//!   recording wall time under `time.span.<path>`;
//! - [`trace`]: the causal event trace (DESIGN §10) — a bounded,
//!   lock-sharded ring of typed, episode-attributed pipeline events, with
//!   Chrome-trace export, causality checking, and the `repro explain`
//!   timeline renderer;
//! - [`report`]: the stable-schema machine-readable run report
//!   (`dnsimpact-metrics/v2`), its JSON round-trip, schema validation,
//!   counter-invariant checks, and the bench-regression comparator;
//! - [`hist`]: plain-value log2 histograms ([`hist::Hist`]) rebuildable
//!   from a report's `buckets` array and mergeable bucket-wise across
//!   processes — the exact-merge backbone of `repro bench --suite`;
//! - [`sweep`]: the scale-sweep report (`dnsimpact-sweep/v1`) emitted by
//!   `repro bench --scale-sweep` — per-(scale, jobs) throughput, wall, and
//!   peak-RSS cells, with strict sortedness/finiteness validation;
//! - [`suite`]: the process-suite report (`dnsimpact-suite/v1`) emitted by
//!   `repro bench --suite` — Suite A deterministic cells, Suite B merged
//!   per-process percentiles, and the per-cell verdict table;
//! - [`daemon`]: the daemon serving-benchmark report
//!   (`dnsimpactd-report/v1`) emitted by `repro daemon-bench` — ingest
//!   fingerprint plus query QPS/tail-latency, with the shed-accounting
//!   identity enforced at validation;
//! - [`timeseries`]: the live plane's bounded tick ring ([`TsStore`]) —
//!   per-tick counter deltas and gauge levels on a feed-sequence tick
//!   clock, with eviction accounting that makes "no sample lost or
//!   double-counted across ring wrap" machine-checkable;
//! - [`slo`]: declarative burn-rate objectives over stored series, with
//!   a transition log and the overload-vs-starvation diagnosis;
//! - [`expo`]: dependency-free Prometheus text exposition (renderer +
//!   strict parser) over a metrics snapshot — the `/metricsz` body;
//! - [`live`]: the live-telemetry report (`dnsimpactd-live/v1`) — tick
//!   series, SLO verdicts, and final state split into `deterministic` /
//!   `annotation` halves, validated down to the delta-conservation law;
//! - [`json`]: the dependency-free JSON value/writer/parser the report
//!   rides on;
//! - [`progress`]: stderr-only progress/timing lines, so nothing
//!   nondeterministic can ever reach the stdout that the CI determinism
//!   diff compares.

pub mod daemon;
pub mod expo;
pub mod hist;
pub mod json;
pub mod live;
pub mod metrics;
pub mod progress;
pub mod report;
pub mod rss;
pub mod slo;
pub mod span;
pub mod suite;
pub mod sweep;
pub mod timeseries;
pub mod trace;

pub use daemon::{DaemonMeta, DaemonReport, DAEMON_SCHEMA_ID};
pub use hist::Hist;
pub use json::Json;
pub use live::{LiveFinal, LiveMeta, LIVE_SCHEMA_ID};
pub use metrics::{counter, gauge, histogram, registry, Counter, Gauge, Histogram, Snapshot};
pub use progress::progress;
pub use report::{RunMeta, RunReport, StageWall, SCHEMA_ID};
pub use slo::{SloKind, SloSet, SloSpec, SloStatus, Transition};
pub use span::span;
pub use suite::{SuiteMeta, SuiteReport, SUITE_SCHEMA_ID};
pub use sweep::{SweepCell, SweepMeta, SweepReport, SWEEP_SCHEMA_ID};
pub use timeseries::{SeriesKind, SeriesWindow, TsStore};
pub use trace::{EventKind, TraceEvent, TraceSummary};
