//! Stderr-only progress and timing lines.
//!
//! The CI determinism gate diffs `repro`'s stdout byte-for-byte across
//! `--jobs` counts and chaos seeds, so *no* timing, progress, or other
//! wall-clock-dependent text may ever be printed to stdout. Every
//! human-facing status line in the workspace goes through [`progress`]
//! (or `progress_quiet`-gated call sites), which writes to stderr only.

use std::sync::atomic::{AtomicBool, Ordering};

static QUIET: AtomicBool = AtomicBool::new(false);

/// Suppress progress output (used by `repro bench` CI runs where stderr
/// noise would drown the summary table).
pub fn set_quiet(quiet: bool) {
    QUIET.store(quiet, Ordering::Relaxed);
}

/// Whether progress output is currently suppressed.
pub fn is_quiet() -> bool {
    QUIET.load(Ordering::Relaxed)
}

/// Emit one status line on stderr, prefixed with the component tag:
/// `[repro] catalog: 20 experiments done`.
pub fn progress(component: &str, message: &str) {
    if !is_quiet() {
        eprintln!("[{component}] {message}");
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quiet_flag_toggles() {
        assert!(!is_quiet());
        set_quiet(true);
        assert!(is_quiet());
        set_quiet(false);
        assert!(!is_quiet());
    }
}
