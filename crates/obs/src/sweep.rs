//! The scale-sweep report: schema `dnsimpact-sweep/v1`.
//!
//! One JSON document per `repro bench --scale-sweep` run, committed under
//! `results/SWEEP_<date>[_runN].json`. Each cell is one (scale, jobs)
//! point of the sweep grid; scale is the *target attack count* the pinned
//! catalog is divided down (or up) to, jobs the worker count:
//!
//! ```json
//! {
//!   "schema": "dnsimpact-sweep/v1",
//!   "meta": { "seed": 42, "chaos_seed": 9, "date": "2026-08-08",
//!             "heavy": 0 },
//!   "cells": [
//!     { "scale": 1500, "jobs": 1,
//!       "episodes": 1700, "joined_rows": 950, "records_measured": 80000,
//!       "records": 82650, "wall_ms": 412, "peak_rss_kb": 91234,
//!       "records_per_sec": 200606.8, "speedup_vs_jobs1": 1.0 },
//!     { "scale": 1500, "jobs": 8, "...": "..." }
//!   ]
//! }
//! ```
//!
//! `records` is the cell's total streamed record count (episodes
//! ingested plus join rows emitted plus sweep measurements taken) — the
//! numerator of `records_per_sec`. `speedup_vs_jobs1` divides the jobs=1
//! wall time of the same scale by this cell's wall time (1.0 for the
//! jobs=1 cell itself). Cells are strictly sorted by `(scale, jobs)`;
//! [`validate`] rejects unsorted or duplicate cells and any non-finite
//! float, so a NaN throughput can never reach a committed artifact.

use crate::json::Json;

/// Schema identifier carried in every sweep report.
pub const SWEEP_SCHEMA_ID: &str = "dnsimpact-sweep/v1";

/// Sweep identity: the inputs shared by every cell.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SweepMeta {
    pub seed: u64,
    pub chaos_seed: Option<u64>,
    /// UTC date of the run, `YYYY-MM-DD`.
    pub date: String,
    /// `DNSIMPACT_SCALE_HEAVY` level the sweep ran at (0 = smoke cells).
    pub heavy: u64,
}

/// One (scale, jobs) point of the sweep grid.
#[derive(Debug, Clone, PartialEq)]
pub struct SweepCell {
    /// Target attack count (the pinned catalog divided to ≈ this many).
    pub scale: u64,
    pub jobs: u64,
    /// Attack episodes ingested from the telescope feed.
    pub episodes: u64,
    /// Rows emitted by the RSDoS×NSSet join.
    pub joined_rows: u64,
    /// OpenINTEL sweep measurements taken by the impact stage.
    pub records_measured: u64,
    /// Total streamed records: `episodes + joined_rows + records_measured`.
    pub records: u64,
    pub wall_ms: u64,
    pub peak_rss_kb: u64,
    pub records_per_sec: f64,
    /// jobs=1 wall time at this scale / this cell's wall time.
    pub speedup_vs_jobs1: f64,
}

/// A complete sweep report, convertible to and from schema-`v1` JSON.
#[derive(Debug, Clone, PartialEq)]
pub struct SweepReport {
    pub meta: SweepMeta,
    pub cells: Vec<SweepCell>,
}

impl SweepReport {
    pub fn to_json(&self) -> Json {
        let mut meta = Json::obj();
        meta.set("seed", Json::U64(self.meta.seed));
        meta.set("chaos_seed", self.meta.chaos_seed.map_or(Json::Null, Json::U64));
        meta.set("date", Json::Str(self.meta.date.clone()));
        meta.set("heavy", Json::U64(self.meta.heavy));

        let cells = Json::Array(
            self.cells
                .iter()
                .map(|c| {
                    let mut o = Json::obj();
                    o.set("scale", Json::U64(c.scale));
                    o.set("jobs", Json::U64(c.jobs));
                    o.set("episodes", Json::U64(c.episodes));
                    o.set("joined_rows", Json::U64(c.joined_rows));
                    o.set("records_measured", Json::U64(c.records_measured));
                    o.set("records", Json::U64(c.records));
                    o.set("wall_ms", Json::U64(c.wall_ms));
                    o.set("peak_rss_kb", Json::U64(c.peak_rss_kb));
                    o.set("records_per_sec", Json::F64(c.records_per_sec));
                    o.set("speedup_vs_jobs1", Json::F64(c.speedup_vs_jobs1));
                    o
                })
                .collect(),
        );

        let mut doc = Json::obj();
        doc.set("schema", Json::Str(SWEEP_SCHEMA_ID.into()));
        doc.set("meta", meta);
        doc.set("cells", cells);
        doc
    }

    /// Rebuild a report from schema-`v1` JSON. Runs full validation first,
    /// so `from_json(doc)?` doubles as a validity check.
    pub fn from_json(doc: &Json) -> Result<SweepReport, Vec<String>> {
        validate(doc)?;
        let meta = doc.get("meta").unwrap();
        let sweep_meta = SweepMeta {
            seed: meta.get("seed").unwrap().as_u64().unwrap(),
            chaos_seed: meta.get("chaos_seed").unwrap().as_u64(),
            date: meta.get("date").unwrap().as_str().unwrap().to_string(),
            heavy: meta.get("heavy").unwrap().as_u64().unwrap(),
        };
        let cells = doc
            .get("cells")
            .unwrap()
            .as_array()
            .unwrap()
            .iter()
            .map(|c| {
                let u = |key: &str| c.get(key).unwrap().as_u64().unwrap();
                let f = |key: &str| c.get(key).unwrap().as_f64().unwrap();
                SweepCell {
                    scale: u("scale"),
                    jobs: u("jobs"),
                    episodes: u("episodes"),
                    joined_rows: u("joined_rows"),
                    records_measured: u("records_measured"),
                    records: u("records"),
                    wall_ms: u("wall_ms"),
                    peak_rss_kb: u("peak_rss_kb"),
                    records_per_sec: f("records_per_sec"),
                    speedup_vs_jobs1: f("speedup_vs_jobs1"),
                }
            })
            .collect();
        Ok(SweepReport { meta: sweep_meta, cells })
    }

    /// Human-readable table for stderr: one line per cell.
    pub fn summary_table(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let chaos = self.meta.chaos_seed.map_or("off".to_string(), |s| format!("{s}"));
        let _ = writeln!(
            out,
            "sweep: seed={} chaos={} date={} heavy={}",
            self.meta.seed, chaos, self.meta.date, self.meta.heavy
        );
        let _ = writeln!(out, "{:-<78}", "");
        let _ = writeln!(
            out,
            "{:>9} {:>5} {:>10} {:>10} {:>10} {:>14} {:>8}",
            "scale", "jobs", "records", "wall_ms", "rss_kb", "rec/s", "speedup"
        );
        for c in &self.cells {
            let _ = writeln!(
                out,
                "{:>9} {:>5} {:>10} {:>10} {:>10} {:>14.1} {:>8.2}",
                c.scale,
                c.jobs,
                c.records,
                c.wall_ms,
                c.peak_rss_kb,
                c.records_per_sec,
                c.speedup_vs_jobs1
            );
        }
        out
    }
}

fn require<'a>(obj: &'a Json, key: &str, path: &str, errors: &mut Vec<String>) -> Option<&'a Json> {
    let v = obj.get(key);
    if v.is_none() {
        errors.push(format!("missing field {path}.{key}"));
    }
    v
}

fn require_u64(obj: &Json, key: &str, path: &str, errors: &mut Vec<String>) {
    if let Some(v) = require(obj, key, path, errors) {
        if v.as_u64().is_none() {
            errors.push(format!("{path}.{key} must be an unsigned integer"));
        }
    }
}

fn require_finite_f64(obj: &Json, key: &str, path: &str, errors: &mut Vec<String>) {
    if let Some(v) = require(obj, key, path, errors) {
        match v.as_f64() {
            Some(f) if f.is_finite() => {}
            // The JSON writer renders non-finite floats as null, so a NaN
            // produced upstream surfaces here as Null either way.
            _ => errors.push(format!("{path}.{key} must be a finite number")),
        }
    }
}

/// Validate a document against schema `dnsimpact-sweep/v1`. Returns the
/// full list of violations rather than stopping at the first. Beyond field
/// shape this enforces the artifact invariants: cells strictly sorted by
/// `(scale, jobs)` (which also forbids duplicates), all floats finite,
/// and `records` consistent with its breakdown.
pub fn validate(doc: &Json) -> Result<(), Vec<String>> {
    let mut errors = Vec::new();
    match doc.get("schema").and_then(|s| s.as_str()) {
        Some(s) if s == SWEEP_SCHEMA_ID => {}
        Some(s) => errors.push(format!("schema is {s:?}, expected {SWEEP_SCHEMA_ID:?}")),
        None => errors.push("missing string field $.schema".into()),
    }
    if let Some(meta) = require(doc, "meta", "$", &mut errors) {
        require_u64(meta, "seed", "$.meta", &mut errors);
        require_u64(meta, "heavy", "$.meta", &mut errors);
        match require(meta, "chaos_seed", "$.meta", &mut errors) {
            Some(Json::Null) | Some(Json::U64(_)) | None => {}
            Some(_) => errors.push("$.meta.chaos_seed must be null or an unsigned integer".into()),
        }
        match require(meta, "date", "$.meta", &mut errors) {
            Some(Json::Str(d)) => {
                let ok = d.len() == 10
                    && d.bytes().enumerate().all(|(i, b)| {
                        if i == 4 || i == 7 {
                            b == b'-'
                        } else {
                            b.is_ascii_digit()
                        }
                    });
                if !ok {
                    errors.push(format!("$.meta.date {d:?} is not YYYY-MM-DD"));
                }
            }
            Some(_) => errors.push("$.meta.date must be a string".into()),
            None => {}
        }
    }
    match require(doc, "cells", "$", &mut errors) {
        Some(Json::Array(items)) => {
            if items.is_empty() {
                errors.push("$.cells must not be empty".into());
            }
            let mut prev: Option<(u64, u64)> = None;
            for (i, c) in items.iter().enumerate() {
                let path = format!("$.cells[{i}]");
                for key in [
                    "scale",
                    "jobs",
                    "episodes",
                    "joined_rows",
                    "records_measured",
                    "records",
                    "wall_ms",
                    "peak_rss_kb",
                ] {
                    require_u64(c, key, &path, &mut errors);
                }
                require_finite_f64(c, "records_per_sec", &path, &mut errors);
                require_finite_f64(c, "speedup_vs_jobs1", &path, &mut errors);
                let u = |key: &str| c.get(key).and_then(|v| v.as_u64());
                if let (Some(e), Some(j), Some(m), Some(r)) =
                    (u("episodes"), u("joined_rows"), u("records_measured"), u("records"))
                {
                    if e + j + m != r {
                        errors.push(format!(
                            "{path}.records ({r}) != episodes + joined_rows + \
                             records_measured ({})",
                            e + j + m
                        ));
                    }
                }
                if let Some(jobs) = u("jobs") {
                    if jobs == 0 {
                        errors.push(format!("{path}.jobs must be >= 1"));
                    }
                }
                if let (Some(scale), Some(jobs)) = (u("scale"), u("jobs")) {
                    let key = (scale, jobs);
                    if let Some(p) = prev {
                        if key <= p {
                            errors.push(format!(
                                "{path} (scale={scale}, jobs={jobs}) is not strictly after \
                                 (scale={}, jobs={}) — cells must be sorted, without duplicates",
                                p.0, p.1
                            ));
                        }
                    }
                    prev = Some(key);
                }
            }
        }
        Some(_) => errors.push("$.cells must be an array".into()),
        None => {}
    }
    if errors.is_empty() {
        Ok(())
    } else {
        Err(errors)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cell(scale: u64, jobs: u64, wall_ms: u64, speedup: f64) -> SweepCell {
        let (episodes, joined_rows, records_measured) = (1_700, 950, 80_000);
        let records = episodes + joined_rows + records_measured;
        SweepCell {
            scale,
            jobs,
            episodes,
            joined_rows,
            records_measured,
            records,
            wall_ms,
            peak_rss_kb: 91_234,
            records_per_sec: records as f64 * 1_000.0 / wall_ms as f64,
            speedup_vs_jobs1: speedup,
        }
    }

    fn sample_report() -> SweepReport {
        SweepReport {
            meta: SweepMeta { seed: 42, chaos_seed: Some(9), date: "2026-08-08".into(), heavy: 0 },
            cells: vec![
                cell(1_500, 1, 400, 1.0),
                cell(1_500, 8, 150, 400.0 / 150.0),
                cell(15_000, 1, 3_600, 1.0),
                cell(15_000, 8, 1_100, 3_600.0 / 1_100.0),
            ],
        }
    }

    #[test]
    fn report_round_trips_through_json_text() {
        let report = sample_report();
        let text = report.to_json().pretty();
        let parsed = Json::parse(&text).unwrap();
        let back = SweepReport::from_json(&parsed).unwrap();
        assert_eq!(back, report);
        assert_eq!(back.to_json().pretty(), text);
    }

    #[test]
    fn validate_accepts_sample() {
        assert!(validate(&sample_report().to_json()).is_ok());
    }

    #[test]
    fn validate_rejects_wrong_schema_and_missing_fields() {
        let mut doc = sample_report().to_json();
        doc.set("schema", Json::Str("dnsimpact-metrics/v2".into()));
        let errors = validate(&doc).unwrap_err();
        assert!(errors[0].contains("dnsimpact-sweep/v1"), "{errors:?}");

        let empty = Json::obj();
        let errors = validate(&empty).unwrap_err();
        assert!(errors.iter().any(|e| e.contains("$.schema")), "{errors:?}");
        assert!(errors.iter().any(|e| e.contains("$.meta")), "{errors:?}");
        assert!(errors.iter().any(|e| e.contains("$.cells")), "{errors:?}");
    }

    #[test]
    fn validate_rejects_unsorted_and_duplicate_cells() {
        let mut unsorted = sample_report();
        unsorted.cells.swap(1, 2);
        let errors = validate(&unsorted.to_json()).unwrap_err();
        assert!(errors.iter().any(|e| e.contains("sorted")), "{errors:?}");

        let mut duped = sample_report();
        let c = duped.cells[0].clone();
        duped.cells.insert(1, c);
        let errors = validate(&duped.to_json()).unwrap_err();
        assert!(errors.iter().any(|e| e.contains("duplicates")), "{errors:?}");
    }

    #[test]
    fn validate_rejects_nan_and_inconsistent_records() {
        let mut report = sample_report();
        report.cells[0].records_per_sec = f64::NAN;
        report.cells[1].speedup_vs_jobs1 = f64::INFINITY;
        report.cells[2].records += 1;
        // NaN/inf serialize to null; validate flags both cells either way.
        let text = report.to_json().pretty();
        let doc = Json::parse(&text).unwrap();
        let errors = validate(&doc).unwrap_err();
        assert!(errors.iter().any(|e| e.contains("cells[0].records_per_sec")), "{errors:?}");
        assert!(errors.iter().any(|e| e.contains("cells[1].speedup_vs_jobs1")), "{errors:?}");
        assert!(errors.iter().any(|e| e.contains("cells[2].records")), "{errors:?}");
    }

    #[test]
    fn validate_rejects_empty_cells_and_zero_jobs() {
        let mut report = sample_report();
        report.cells.clear();
        let errors = validate(&report.to_json()).unwrap_err();
        assert!(errors.iter().any(|e| e.contains("must not be empty")), "{errors:?}");

        let mut zero = sample_report();
        zero.cells[0].jobs = 0;
        let errors = validate(&zero.to_json()).unwrap_err();
        assert!(errors.iter().any(|e| e.contains("jobs must be >= 1")), "{errors:?}");
    }

    #[test]
    fn summary_table_lists_cells() {
        let table = sample_report().summary_table();
        assert!(table.contains("1500"));
        assert!(table.contains("15000"));
        assert!(table.contains("speedup"));
    }
}
