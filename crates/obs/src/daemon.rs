//! The daemon serving-benchmark report: schema `dnsimpactd-report/v1`.
//!
//! One JSON document per `repro daemon-bench` run, committed under
//! `results/DAEMON_<date>[_runN].json`. It captures both sides of the
//! daemon's contract in one artifact: the ingest side (batches, records,
//! the replay-determinism fingerprint) and the serving side (offered
//! query load, what was answered vs shed, and tail latency):
//!
//! ```json
//! {
//!   "schema": "dnsimpactd-report/v1",
//!   "meta": { "seed": 42, "scale": 1500, "months": 2, "jobs": 2,
//!             "date": "2026-08-08", "clients": 4, "zipf_s": 1.1,
//!             "staleness_bound_s": 1800 },
//!   "ingest": { "batches": 210, "records": 5120, "episodes": 430,
//!               "wall_ms": 1830, "fingerprint": "0x9f2a..." },
//!   "serving": { "queries_sent": 2000, "ok": 1890, "not_found": 0,
//!                "shed": 90, "errors": 20, "qps": 5120.4,
//!                "p50_us": 180.0, "p95_us": 420.0, "p99_us": 900.0,
//!                "staleness_s": 0 }
//! }
//! ```
//!
//! [`validate`] enforces the shed-accounting identity the overload
//! contract promises — `queries_sent == ok + not_found + shed + errors`,
//! every offered query accounted for exactly once — plus finite floats,
//! a `0x`-prefixed fingerprint, and a well-formed date.

use crate::json::Json;

/// Schema identifier carried in every daemon report.
pub const DAEMON_SCHEMA_ID: &str = "dnsimpactd-report/v1";

/// Run identity: the knobs that shaped the feed and the query load.
#[derive(Debug, Clone, PartialEq)]
pub struct DaemonMeta {
    pub seed: u64,
    /// Target attack count the pinned catalog was divided to.
    pub scale: u64,
    /// Months of the paper interval ingested (0 = all 17).
    pub months: u64,
    pub jobs: u64,
    /// UTC date of the run, `YYYY-MM-DD`.
    pub date: String,
    /// Concurrent query clients.
    pub clients: u64,
    /// Zipf exponent of the domain popularity draw.
    pub zipf_s: f64,
    pub staleness_bound_s: u64,
}

/// A complete daemon report, convertible to and from schema-`v1` JSON.
#[derive(Debug, Clone, PartialEq)]
pub struct DaemonReport {
    pub meta: DaemonMeta,
    // Ingest side.
    pub batches: u64,
    pub records: u64,
    pub episodes: u64,
    pub ingest_wall_ms: u64,
    /// Full index fingerprint after ingest, `0x`-prefixed hex — the value
    /// the replay-determinism gate diffs.
    pub fingerprint: String,
    // Serving side.
    pub queries_sent: u64,
    pub ok: u64,
    pub not_found: u64,
    pub shed: u64,
    pub errors: u64,
    pub qps: f64,
    pub p50_us: f64,
    pub p95_us: f64,
    pub p99_us: f64,
    /// Served staleness at measurement time (post-ingest: 0 unless the
    /// feed ended inside a gap).
    pub staleness_s: u64,
}

impl DaemonReport {
    pub fn to_json(&self) -> Json {
        let mut meta = Json::obj();
        meta.set("seed", Json::U64(self.meta.seed));
        meta.set("scale", Json::U64(self.meta.scale));
        meta.set("months", Json::U64(self.meta.months));
        meta.set("jobs", Json::U64(self.meta.jobs));
        meta.set("date", Json::Str(self.meta.date.clone()));
        meta.set("clients", Json::U64(self.meta.clients));
        meta.set("zipf_s", Json::F64(self.meta.zipf_s));
        meta.set("staleness_bound_s", Json::U64(self.meta.staleness_bound_s));

        let mut ingest = Json::obj();
        ingest.set("batches", Json::U64(self.batches));
        ingest.set("records", Json::U64(self.records));
        ingest.set("episodes", Json::U64(self.episodes));
        ingest.set("wall_ms", Json::U64(self.ingest_wall_ms));
        ingest.set("fingerprint", Json::Str(self.fingerprint.clone()));

        let mut serving = Json::obj();
        serving.set("queries_sent", Json::U64(self.queries_sent));
        serving.set("ok", Json::U64(self.ok));
        serving.set("not_found", Json::U64(self.not_found));
        serving.set("shed", Json::U64(self.shed));
        serving.set("errors", Json::U64(self.errors));
        serving.set("qps", Json::F64(self.qps));
        serving.set("p50_us", Json::F64(self.p50_us));
        serving.set("p95_us", Json::F64(self.p95_us));
        serving.set("p99_us", Json::F64(self.p99_us));
        serving.set("staleness_s", Json::U64(self.staleness_s));

        let mut doc = Json::obj();
        doc.set("schema", Json::Str(DAEMON_SCHEMA_ID.into()));
        doc.set("meta", meta);
        doc.set("ingest", ingest);
        doc.set("serving", serving);
        doc
    }

    /// Rebuild a report from schema-`v1` JSON. Runs full validation first,
    /// so `from_json(doc)?` doubles as a validity check.
    pub fn from_json(doc: &Json) -> Result<DaemonReport, Vec<String>> {
        validate(doc)?;
        let get = |outer: &str, key: &str| doc.get(outer).and_then(|o| o.get(key)).cloned();
        let u = |outer: &str, key: &str| get(outer, key).and_then(|v| v.as_u64()).unwrap_or(0);
        let f = |outer: &str, key: &str| get(outer, key).and_then(|v| v.as_f64()).unwrap_or(0.0);
        let s = |outer: &str, key: &str| {
            get(outer, key).and_then(|v| v.as_str().map(str::to_string)).unwrap_or_default()
        };
        Ok(DaemonReport {
            meta: DaemonMeta {
                seed: u("meta", "seed"),
                scale: u("meta", "scale"),
                months: u("meta", "months"),
                jobs: u("meta", "jobs"),
                date: s("meta", "date"),
                clients: u("meta", "clients"),
                zipf_s: f("meta", "zipf_s"),
                staleness_bound_s: u("meta", "staleness_bound_s"),
            },
            batches: u("ingest", "batches"),
            records: u("ingest", "records"),
            episodes: u("ingest", "episodes"),
            ingest_wall_ms: u("ingest", "wall_ms"),
            fingerprint: s("ingest", "fingerprint"),
            queries_sent: u("serving", "queries_sent"),
            ok: u("serving", "ok"),
            not_found: u("serving", "not_found"),
            shed: u("serving", "shed"),
            errors: u("serving", "errors"),
            qps: f("serving", "qps"),
            p50_us: f("serving", "p50_us"),
            p95_us: f("serving", "p95_us"),
            p99_us: f("serving", "p99_us"),
            staleness_s: u("serving", "staleness_s"),
        })
    }

    /// Human-readable summary for stderr.
    pub fn summary_table(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let _ = writeln!(
            out,
            "daemon: seed={} scale={} months={} jobs={} clients={} date={}",
            self.meta.seed,
            self.meta.scale,
            self.meta.months,
            self.meta.jobs,
            self.meta.clients,
            self.meta.date
        );
        let _ = writeln!(out, "{:-<78}", "");
        let _ = writeln!(
            out,
            "ingest : {} batches / {} records / {} episodes in {} ms  fp {}",
            self.batches, self.records, self.episodes, self.ingest_wall_ms, self.fingerprint
        );
        let _ = writeln!(
            out,
            "serving: {} sent = {} ok + {} not_found + {} shed + {} errors  ({:.1} qps)",
            self.queries_sent, self.ok, self.not_found, self.shed, self.errors, self.qps
        );
        let _ = writeln!(
            out,
            "latency: p50 {:.0} us  p95 {:.0} us  p99 {:.0} us  staleness {} s",
            self.p50_us, self.p95_us, self.p99_us, self.staleness_s
        );
        out
    }
}

fn require<'a>(obj: &'a Json, key: &str, path: &str, errors: &mut Vec<String>) -> Option<&'a Json> {
    let v = obj.get(key);
    if v.is_none() {
        errors.push(format!("missing field {path}.{key}"));
    }
    v
}

fn require_u64(obj: &Json, key: &str, path: &str, errors: &mut Vec<String>) {
    if let Some(v) = require(obj, key, path, errors) {
        if v.as_u64().is_none() {
            errors.push(format!("{path}.{key} must be an unsigned integer"));
        }
    }
}

fn require_finite_f64(obj: &Json, key: &str, path: &str, errors: &mut Vec<String>) {
    if let Some(v) = require(obj, key, path, errors) {
        match v.as_f64() {
            Some(f) if f.is_finite() => {}
            _ => errors.push(format!("{path}.{key} must be a finite number")),
        }
    }
}

/// Validate a document against schema `dnsimpactd-report/v1`. Returns the
/// full list of violations rather than stopping at the first. Beyond
/// field shape this enforces the shed-accounting identity
/// (`queries_sent == ok + not_found + shed + errors`) and a `0x`-prefixed
/// fingerprint.
pub fn validate(doc: &Json) -> Result<(), Vec<String>> {
    let mut errors = Vec::new();
    match doc.get("schema").and_then(|s| s.as_str()) {
        Some(s) if s == DAEMON_SCHEMA_ID => {}
        Some(s) => errors.push(format!("schema is {s:?}, expected {DAEMON_SCHEMA_ID:?}")),
        None => errors.push("missing string field $.schema".into()),
    }
    if let Some(meta) = require(doc, "meta", "$", &mut errors) {
        for key in ["seed", "scale", "months", "jobs", "clients", "staleness_bound_s"] {
            require_u64(meta, key, "$.meta", &mut errors);
        }
        require_finite_f64(meta, "zipf_s", "$.meta", &mut errors);
        match require(meta, "date", "$.meta", &mut errors) {
            Some(Json::Str(d)) => {
                let ok = d.len() == 10
                    && d.bytes().enumerate().all(|(i, b)| {
                        if i == 4 || i == 7 {
                            b == b'-'
                        } else {
                            b.is_ascii_digit()
                        }
                    });
                if !ok {
                    errors.push(format!("$.meta.date {d:?} is not YYYY-MM-DD"));
                }
            }
            Some(_) => errors.push("$.meta.date must be a string".into()),
            None => {}
        }
    }
    if let Some(ingest) = require(doc, "ingest", "$", &mut errors) {
        for key in ["batches", "records", "episodes", "wall_ms"] {
            require_u64(ingest, key, "$.ingest", &mut errors);
        }
        match require(ingest, "fingerprint", "$.ingest", &mut errors) {
            Some(Json::Str(fp)) if fp.starts_with("0x") && fp.len() > 2 => {}
            Some(Json::Str(fp)) => {
                errors.push(format!("$.ingest.fingerprint {fp:?} must be 0x-prefixed hex"))
            }
            Some(_) => errors.push("$.ingest.fingerprint must be a string".into()),
            None => {}
        }
    }
    if let Some(serving) = require(doc, "serving", "$", &mut errors) {
        for key in ["queries_sent", "ok", "not_found", "shed", "errors", "staleness_s"] {
            require_u64(serving, key, "$.serving", &mut errors);
        }
        for key in ["qps", "p50_us", "p95_us", "p99_us"] {
            require_finite_f64(serving, key, "$.serving", &mut errors);
        }
        let u = |key: &str| serving.get(key).and_then(|v| v.as_u64());
        if let (Some(sent), Some(ok), Some(nf), Some(shed), Some(errs)) =
            (u("queries_sent"), u("ok"), u("not_found"), u("shed"), u("errors"))
        {
            if ok + nf + shed + errs != sent {
                errors.push(format!(
                    "$.serving.queries_sent ({sent}) != ok + not_found + shed + errors ({}) — \
                     every offered query must be accounted for exactly once",
                    ok + nf + shed + errs
                ));
            }
        }
    }
    if errors.is_empty() {
        Ok(())
    } else {
        Err(errors)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_report() -> DaemonReport {
        DaemonReport {
            meta: DaemonMeta {
                seed: 42,
                scale: 1_500,
                months: 2,
                jobs: 2,
                date: "2026-08-08".into(),
                clients: 4,
                zipf_s: 1.1,
                staleness_bound_s: 1_800,
            },
            batches: 210,
            records: 5_120,
            episodes: 430,
            ingest_wall_ms: 1_830,
            fingerprint: "0x9f2a6c41d0e8b753".into(),
            queries_sent: 2_000,
            ok: 1_890,
            not_found: 0,
            shed: 90,
            errors: 20,
            qps: 5_120.4,
            p50_us: 180.0,
            p95_us: 420.0,
            p99_us: 900.0,
            staleness_s: 0,
        }
    }

    #[test]
    fn report_round_trips_through_json_text() {
        let report = sample_report();
        let text = report.to_json().pretty();
        let parsed = Json::parse(&text).unwrap();
        let back = DaemonReport::from_json(&parsed).unwrap();
        assert_eq!(back, report);
        assert_eq!(back.to_json().pretty(), text);
    }

    #[test]
    fn validate_rejects_wrong_schema_and_missing_sections() {
        let mut doc = sample_report().to_json();
        doc.set("schema", Json::Str("dnsimpact-sweep/v1".into()));
        let errors = validate(&doc).unwrap_err();
        assert!(errors[0].contains(DAEMON_SCHEMA_ID), "{errors:?}");

        let empty = Json::obj();
        let errors = validate(&empty).unwrap_err();
        for field in ["$.schema", "$.meta", "$.ingest", "$.serving"] {
            assert!(errors.iter().any(|e| e.contains(field)), "{field}: {errors:?}");
        }
    }

    #[test]
    fn validate_enforces_shed_accounting_identity() {
        let mut report = sample_report();
        report.shed += 1;
        let errors = validate(&report.to_json()).unwrap_err();
        assert!(errors.iter().any(|e| e.contains("accounted for exactly once")), "{errors:?}");
    }

    #[test]
    fn validate_rejects_bad_fingerprint_and_nan() {
        let mut report = sample_report();
        report.fingerprint = "9f2a".into();
        report.qps = f64::NAN;
        let text = report.to_json().pretty();
        let doc = Json::parse(&text).unwrap();
        let errors = validate(&doc).unwrap_err();
        assert!(errors.iter().any(|e| e.contains("0x-prefixed")), "{errors:?}");
        assert!(errors.iter().any(|e| e.contains("$.serving.qps")), "{errors:?}");
    }

    #[test]
    fn summary_table_shows_both_sides() {
        let table = sample_report().summary_table();
        assert!(table.contains("ingest"));
        assert!(table.contains("serving"));
        assert!(table.contains("p99"));
    }
}
