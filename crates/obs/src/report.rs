//! The machine-readable run report: schema `dnsimpact-metrics/v1`.
//!
//! One JSON document per run, emitted by `repro --metrics-json PATH` and
//! by `repro bench` (as `BENCH_<date>.json`). The schema is stable and
//! validated in CI:
//!
//! ```json
//! {
//!   "schema": "dnsimpact-metrics/v1",
//!   "meta": {
//!     "seed": 42, "scale": 1500, "jobs": 2,
//!     "chaos_seed": null,          // or a u64
//!     "bench": false,
//!     "date": "2026-08-05",        // UTC
//!     "experiments": ["table1", "..."]
//!   },
//!   "total_wall_ms": 1234,
//!   "peak_rss_kb": 56789,
//!   "stages": [ { "name": "longitudinal", "wall_ms": 400 }, ... ],
//!   "counters":   { "join.rows_joined": 100, ... },
//!   "gauges":     { "reactive.trigger_latency_max_secs": 480, ... },
//!   "histograms": { "time.pool.task_ms": { "count": 8, "sum": 10,
//!                   "min": 0, "max": 4, "p50": 1, "p90": 3, "p99": 3 } }
//! }
//! ```
//!
//! `counters`/`gauges`/`histograms` are name-sorted; `stages` is in
//! execution order. Wall times, RSS, and `time.`/`sched.`-prefixed
//! metrics vary run to run by design — consumers comparing runs must
//! restrict themselves to the deterministic namespace, as the CI metrics
//! gate and the determinism tests do.

use crate::json::Json;
use crate::metrics::{HistogramSnapshot, Snapshot};

/// Schema identifier carried in every report.
pub const SCHEMA_ID: &str = "dnsimpact-metrics/v1";

/// Run identity: the inputs that determine the deterministic metrics.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RunMeta {
    pub seed: u64,
    pub scale: u64,
    pub jobs: u64,
    pub chaos_seed: Option<u64>,
    pub bench: bool,
    /// UTC date of the run, `YYYY-MM-DD`.
    pub date: String,
    pub experiments: Vec<String>,
}

/// One named stage and its wall time, in execution order.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StageWall {
    pub name: String,
    pub wall_ms: u64,
}

/// A complete run report, convertible to and from schema-`v1` JSON.
#[derive(Debug, Clone, PartialEq)]
pub struct RunReport {
    pub meta: RunMeta,
    pub total_wall_ms: u64,
    pub peak_rss_kb: u64,
    pub stages: Vec<StageWall>,
    pub metrics: Snapshot,
}

impl RunReport {
    pub fn to_json(&self) -> Json {
        let mut meta = Json::obj();
        meta.set("seed", Json::U64(self.meta.seed));
        meta.set("scale", Json::U64(self.meta.scale));
        meta.set("jobs", Json::U64(self.meta.jobs));
        meta.set("chaos_seed", self.meta.chaos_seed.map_or(Json::Null, Json::U64));
        meta.set("bench", Json::Bool(self.meta.bench));
        meta.set("date", Json::Str(self.meta.date.clone()));
        meta.set(
            "experiments",
            Json::Array(self.meta.experiments.iter().map(|e| Json::Str(e.clone())).collect()),
        );

        let stages = Json::Array(
            self.stages
                .iter()
                .map(|s| {
                    let mut o = Json::obj();
                    o.set("name", Json::Str(s.name.clone()));
                    o.set("wall_ms", Json::U64(s.wall_ms));
                    o
                })
                .collect(),
        );

        let mut counters = Json::obj();
        for (k, v) in &self.metrics.counters {
            counters.set(k, Json::U64(*v));
        }
        let mut gauges = Json::obj();
        for (k, v) in &self.metrics.gauges {
            gauges.set(k, Json::U64(*v));
        }
        let mut histograms = Json::obj();
        for (k, h) in &self.metrics.histograms {
            let mut o = Json::obj();
            o.set("count", Json::U64(h.count));
            o.set("sum", Json::U64(h.sum));
            o.set("min", Json::U64(h.min));
            o.set("max", Json::U64(h.max));
            o.set("p50", Json::U64(h.p50));
            o.set("p90", Json::U64(h.p90));
            o.set("p99", Json::U64(h.p99));
            histograms.set(k, o);
        }

        let mut doc = Json::obj();
        doc.set("schema", Json::Str(SCHEMA_ID.into()));
        doc.set("meta", meta);
        doc.set("total_wall_ms", Json::U64(self.total_wall_ms));
        doc.set("peak_rss_kb", Json::U64(self.peak_rss_kb));
        doc.set("stages", stages);
        doc.set("counters", counters);
        doc.set("gauges", gauges);
        doc.set("histograms", histograms);
        doc
    }

    /// Rebuild a report from schema-`v1` JSON. Runs full schema validation
    /// first, so `from_json(text)?` doubles as a validity check.
    pub fn from_json(doc: &Json) -> Result<RunReport, Vec<String>> {
        validate(doc)?;
        let meta = doc.get("meta").unwrap();
        let run_meta = RunMeta {
            seed: meta.get("seed").unwrap().as_u64().unwrap(),
            scale: meta.get("scale").unwrap().as_u64().unwrap(),
            jobs: meta.get("jobs").unwrap().as_u64().unwrap(),
            chaos_seed: meta.get("chaos_seed").unwrap().as_u64(),
            bench: matches!(meta.get("bench").unwrap(), Json::Bool(true)),
            date: meta.get("date").unwrap().as_str().unwrap().to_string(),
            experiments: meta
                .get("experiments")
                .unwrap()
                .as_array()
                .unwrap()
                .iter()
                .map(|e| e.as_str().unwrap().to_string())
                .collect(),
        };
        let stages = doc
            .get("stages")
            .unwrap()
            .as_array()
            .unwrap()
            .iter()
            .map(|s| StageWall {
                name: s.get("name").unwrap().as_str().unwrap().to_string(),
                wall_ms: s.get("wall_ms").unwrap().as_u64().unwrap(),
            })
            .collect();
        let metrics = Snapshot {
            counters: doc
                .get("counters")
                .unwrap()
                .as_object()
                .unwrap()
                .iter()
                .map(|(k, v)| (k.clone(), v.as_u64().unwrap()))
                .collect(),
            gauges: doc
                .get("gauges")
                .unwrap()
                .as_object()
                .unwrap()
                .iter()
                .map(|(k, v)| (k.clone(), v.as_u64().unwrap()))
                .collect(),
            histograms: doc
                .get("histograms")
                .unwrap()
                .as_object()
                .unwrap()
                .iter()
                .map(|(k, h)| {
                    let f = |field: &str| h.get(field).unwrap().as_u64().unwrap();
                    (
                        k.clone(),
                        HistogramSnapshot {
                            count: f("count"),
                            sum: f("sum"),
                            min: f("min"),
                            max: f("max"),
                            p50: f("p50"),
                            p90: f("p90"),
                            p99: f("p99"),
                        },
                    )
                })
                .collect(),
        };
        Ok(RunReport {
            meta: run_meta,
            total_wall_ms: doc.get("total_wall_ms").unwrap().as_u64().unwrap(),
            peak_rss_kb: doc.get("peak_rss_kb").unwrap().as_u64().unwrap(),
            stages,
            metrics,
        })
    }

    /// Human-readable summary for `--metrics-summary` (stderr). Shows the
    /// run identity, per-stage wall times, and the deterministic counters
    /// and gauges; histograms are collapsed to count/p50/p99.
    pub fn summary_table(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let chaos = self.meta.chaos_seed.map_or("off".to_string(), |s| format!("{s}"));
        let _ = writeln!(
            out,
            "run: seed={} scale={} jobs={} chaos={} date={}  wall={}ms rss={}kB",
            self.meta.seed,
            self.meta.scale,
            self.meta.jobs,
            chaos,
            self.meta.date,
            self.total_wall_ms,
            self.peak_rss_kb
        );
        let _ = writeln!(out, "{:-<72}", "");
        let _ = writeln!(out, "{:<40} {:>12}", "stage", "wall_ms");
        for s in &self.stages {
            let _ = writeln!(out, "{:<40} {:>12}", s.name, s.wall_ms);
        }
        let _ = writeln!(out, "{:-<72}", "");
        let _ = writeln!(out, "{:<40} {:>12}", "counter", "value");
        for (k, v) in &self.metrics.counters {
            let _ = writeln!(out, "{k:<40} {v:>12}");
        }
        for (k, v) in &self.metrics.gauges {
            let _ = writeln!(out, "{:<40} {:>12}", format!("{k} (gauge)"), v);
        }
        if !self.metrics.histograms.is_empty() {
            let _ = writeln!(out, "{:-<72}", "");
            let _ = writeln!(out, "{:<40} {:>9} {:>9} {:>9}", "histogram", "count", "p50", "p99");
            for (k, h) in &self.metrics.histograms {
                let _ = writeln!(out, "{:<40} {:>9} {:>9} {:>9}", k, h.count, h.p50, h.p99);
            }
        }
        out
    }
}

fn require<'a>(obj: &'a Json, key: &str, path: &str, errors: &mut Vec<String>) -> Option<&'a Json> {
    let v = obj.get(key);
    if v.is_none() {
        errors.push(format!("missing field {path}.{key}"));
    }
    v
}

fn require_u64(obj: &Json, key: &str, path: &str, errors: &mut Vec<String>) {
    if let Some(v) = require(obj, key, path, errors) {
        if v.as_u64().is_none() {
            errors.push(format!("{path}.{key} must be an unsigned integer"));
        }
    }
}

fn check_metric_map(doc: &Json, key: &str, errors: &mut Vec<String>, histogram: bool) {
    let Some(map) = require(doc, key, "$", errors) else {
        return;
    };
    let Some(pairs) = map.as_object() else {
        errors.push(format!("$.{key} must be an object"));
        return;
    };
    for (name, v) in pairs {
        if histogram {
            if v.as_object().is_none() {
                errors.push(format!("$.{key}.{name} must be an object"));
                continue;
            }
            for field in ["count", "sum", "min", "max", "p50", "p90", "p99"] {
                require_u64(v, field, &format!("$.{key}.{name}"), errors);
            }
        } else if v.as_u64().is_none() {
            errors.push(format!("$.{key}.{name} must be an unsigned integer"));
        }
    }
}

/// Validate a document against schema `dnsimpact-metrics/v1`. Returns the
/// full list of violations rather than stopping at the first.
pub fn validate(doc: &Json) -> Result<(), Vec<String>> {
    let mut errors = Vec::new();
    match doc.get("schema").and_then(|s| s.as_str()) {
        Some(s) if s == SCHEMA_ID => {}
        Some(s) => errors.push(format!("schema is {s:?}, expected {SCHEMA_ID:?}")),
        None => errors.push("missing string field $.schema".into()),
    }
    if let Some(meta) = require(doc, "meta", "$", &mut errors) {
        for key in ["seed", "scale", "jobs"] {
            require_u64(meta, key, "$.meta", &mut errors);
        }
        match require(meta, "chaos_seed", "$.meta", &mut errors) {
            Some(Json::Null) | Some(Json::U64(_)) | None => {}
            Some(_) => errors.push("$.meta.chaos_seed must be null or an unsigned integer".into()),
        }
        match require(meta, "bench", "$.meta", &mut errors) {
            Some(Json::Bool(_)) | None => {}
            Some(_) => errors.push("$.meta.bench must be a boolean".into()),
        }
        match require(meta, "date", "$.meta", &mut errors) {
            Some(Json::Str(d)) => {
                let ok = d.len() == 10
                    && d.bytes().enumerate().all(|(i, b)| {
                        if i == 4 || i == 7 {
                            b == b'-'
                        } else {
                            b.is_ascii_digit()
                        }
                    });
                if !ok {
                    errors.push(format!("$.meta.date {d:?} is not YYYY-MM-DD"));
                }
            }
            Some(_) => errors.push("$.meta.date must be a string".into()),
            None => {}
        }
        match require(meta, "experiments", "$.meta", &mut errors) {
            Some(Json::Array(items)) if items.iter().any(|e| e.as_str().is_none()) => {
                errors.push("$.meta.experiments entries must be strings".into());
            }
            Some(Json::Array(_)) | None => {}
            Some(_) => errors.push("$.meta.experiments must be an array".into()),
        }
    }
    require_u64(doc, "total_wall_ms", "$", &mut errors);
    require_u64(doc, "peak_rss_kb", "$", &mut errors);
    match require(doc, "stages", "$", &mut errors) {
        Some(Json::Array(items)) => {
            for (i, s) in items.iter().enumerate() {
                let path = format!("$.stages[{i}]");
                match require(s, "name", &path, &mut errors) {
                    Some(Json::Str(_)) | None => {}
                    Some(_) => errors.push(format!("{path}.name must be a string")),
                }
                require_u64(s, "wall_ms", &path, &mut errors);
            }
        }
        Some(_) => errors.push("$.stages must be an array".into()),
        None => {}
    }
    check_metric_map(doc, "counters", &mut errors, false);
    check_metric_map(doc, "gauges", &mut errors, false);
    check_metric_map(doc, "histograms", &mut errors, true);
    if errors.is_empty() {
        Ok(())
    } else {
        Err(errors)
    }
}

/// Reactive trigger bound from the paper: ≤ 10 minutes.
pub const MAX_TRIGGER_LATENCY_SECS: u64 = 600;
/// Reactive probe budget from the paper: ≤ 50 domains per 5-minute round.
pub const MAX_PROBES_PER_ROUND: u64 = 50;

/// Check the cross-counter invariants CI gates on. Assumes a *completed*
/// run (every injected fault has had its repair window):
///
/// - `chaos.faults_injected > 0` ⇒ `chaos.faults_repaired` equals it;
/// - `reactive.trigger_latency_max_secs` ≤ 10 minutes;
/// - `reactive.probe_round_max_probes` ≤ 50.
pub fn check_invariants(doc: &Json) -> Result<(), Vec<String>> {
    let mut errors = Vec::new();
    let counter = |name: &str| -> u64 {
        doc.get("counters").and_then(|c| c.get(name)).and_then(|v| v.as_u64()).unwrap_or(0)
    };
    let gauge = |name: &str| -> u64 {
        doc.get("gauges").and_then(|g| g.get(name)).and_then(|v| v.as_u64()).unwrap_or(0)
    };

    let injected = counter("chaos.faults_injected");
    let repaired = counter("chaos.faults_repaired");
    if injected > 0 && repaired != injected {
        errors.push(format!(
            "chaos.faults_repaired ({repaired}) != chaos.faults_injected ({injected})"
        ));
    }
    let latency = gauge("reactive.trigger_latency_max_secs");
    if latency > MAX_TRIGGER_LATENCY_SECS {
        errors.push(format!(
            "reactive.trigger_latency_max_secs ({latency}) exceeds the \
             {MAX_TRIGGER_LATENCY_SECS}s bound"
        ));
    }
    let probes = gauge("reactive.probe_round_max_probes");
    if probes > MAX_PROBES_PER_ROUND {
        errors.push(format!(
            "reactive.probe_round_max_probes ({probes}) exceeds the \
             {MAX_PROBES_PER_ROUND}-domain budget"
        ));
    }
    if errors.is_empty() {
        Ok(())
    } else {
        Err(errors)
    }
}

/// Today's date in UTC as `YYYY-MM-DD`, from the system clock. Uses the
/// days-to-civil algorithm (Howard Hinnant's `civil_from_days`), so no
/// date dependency is needed.
pub fn today_utc() -> String {
    let secs = std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .map(|d| d.as_secs())
        .unwrap_or(0);
    let days = (secs / 86_400) as i64;
    let (y, m, d) = civil_from_days(days);
    format!("{y:04}-{m:02}-{d:02}")
}

fn civil_from_days(z: i64) -> (i64, u32, u32) {
    let z = z + 719_468;
    let era = if z >= 0 { z } else { z - 146_096 } / 146_097;
    let doe = (z - era * 146_097) as u64;
    let yoe = (doe - doe / 1460 + doe / 36_524 - doe / 146_096) / 365;
    let y = yoe as i64 + era * 400;
    let doy = doe - (365 * yoe + yoe / 4 - yoe / 100);
    let mp = (5 * doy + 2) / 153;
    let d = (doy - (153 * mp + 2) / 5 + 1) as u32;
    let m = if mp < 10 { mp + 3 } else { mp - 9 } as u32;
    (if m <= 2 { y + 1 } else { y }, m, d)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::BTreeMap;

    fn sample_report() -> RunReport {
        let mut counters = BTreeMap::new();
        counters.insert("chaos.faults_injected".to_string(), 12);
        counters.insert("chaos.faults_repaired".to_string(), 12);
        counters.insert("join.rows_joined".to_string(), 345);
        let mut gauges = BTreeMap::new();
        gauges.insert("reactive.trigger_latency_max_secs".to_string(), 480);
        gauges.insert("reactive.probe_round_max_probes".to_string(), 50);
        let mut histograms = BTreeMap::new();
        histograms.insert(
            "time.pool.task_ms".to_string(),
            crate::metrics::HistogramSnapshot {
                count: 8,
                sum: 40,
                min: 1,
                max: 15,
                p50: 3,
                p90: 15,
                p99: 15,
            },
        );
        RunReport {
            meta: RunMeta {
                seed: 42,
                scale: 1500,
                jobs: 2,
                chaos_seed: Some(9),
                bench: true,
                date: "2026-08-05".into(),
                experiments: vec!["table1".into(), "fig5".into()],
            },
            total_wall_ms: 1234,
            peak_rss_kb: 56_789,
            stages: vec![
                StageWall { name: "longitudinal".into(), wall_ms: 800 },
                StageWall { name: "catalog".into(), wall_ms: 400 },
            ],
            metrics: Snapshot { counters, gauges, histograms },
        }
    }

    #[test]
    fn report_round_trips_through_json_text() {
        let report = sample_report();
        let text = report.to_json().pretty();
        let parsed = Json::parse(&text).unwrap();
        let back = RunReport::from_json(&parsed).unwrap();
        assert_eq!(back, report);
        // Re-serialization is byte-identical.
        assert_eq!(back.to_json().pretty(), text);
    }

    #[test]
    fn validate_accepts_sample_and_reports_all_errors() {
        let mut doc = sample_report().to_json();
        assert!(validate(&doc).is_ok());
        doc.set("schema", Json::Str("bogus/v9".into()));
        doc.set("total_wall_ms", Json::Str("fast".into()));
        let errors = validate(&doc).unwrap_err();
        assert!(errors.len() >= 2, "{errors:?}");
    }

    #[test]
    fn validate_rejects_bad_date_and_meta() {
        let mut doc = sample_report().to_json();
        let mut meta = doc.get("meta").unwrap().clone();
        meta.set("date", Json::Str("08/05/2026".into()));
        meta.set("chaos_seed", Json::Str("nine".into()));
        doc.set("meta", meta);
        let errors = validate(&doc).unwrap_err();
        assert!(errors.iter().any(|e| e.contains("date")), "{errors:?}");
        assert!(errors.iter().any(|e| e.contains("chaos_seed")), "{errors:?}");
    }

    #[test]
    fn invariants_catch_unrepaired_faults_and_latency() {
        let doc = sample_report().to_json();
        assert!(check_invariants(&doc).is_ok());

        let mut bad = doc.clone();
        let mut counters = bad.get("counters").unwrap().clone();
        counters.set("chaos.faults_repaired", Json::U64(7));
        bad.set("counters", counters);
        let errors = check_invariants(&bad).unwrap_err();
        assert!(errors[0].contains("faults_repaired"), "{errors:?}");

        let mut slow = doc.clone();
        let mut gauges = slow.get("gauges").unwrap().clone();
        gauges.set("reactive.trigger_latency_max_secs", Json::U64(601));
        gauges.set("reactive.probe_round_max_probes", Json::U64(51));
        slow.set("gauges", gauges);
        let errors = check_invariants(&slow).unwrap_err();
        assert_eq!(errors.len(), 2, "{errors:?}");
    }

    #[test]
    fn civil_from_days_known_dates() {
        assert_eq!(civil_from_days(0), (1970, 1, 1));
        assert_eq!(civil_from_days(19_723), (2024, 1, 1));
        // 2026-08-05 is 20_670 days after the epoch.
        assert_eq!(civil_from_days(20_670), (2026, 8, 5));
        let today = today_utc();
        assert_eq!(today.len(), 10);
    }

    #[test]
    fn summary_table_mentions_stages_and_counters() {
        let table = sample_report().summary_table();
        assert!(table.contains("longitudinal"));
        assert!(table.contains("join.rows_joined"));
        assert!(table.contains("time.pool.task_ms"));
    }
}
