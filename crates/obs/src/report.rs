//! The machine-readable run report: schema `dnsimpact-metrics/v2`.
//!
//! One JSON document per run, emitted by `repro --metrics-json PATH` and
//! by `repro bench` (as `BENCH_<date>[_runN].json`). The schema is stable
//! and validated in CI:
//!
//! ```json
//! {
//!   "schema": "dnsimpact-metrics/v2",
//!   "meta": {
//!     "seed": 42, "scale": 1500, "jobs": 2,
//!     "run": 1,                    // same-day bench run counter
//!     "chaos_seed": null,          // or a u64
//!     "bench": false,
//!     "date": "2026-08-05",        // UTC
//!     "experiments": ["table1", "..."]
//!   },
//!   "total_wall_ms": 1234,
//!   "peak_rss_kb": 56789,
//!   "stages": [ { "name": "longitudinal", "wall_ms": 400 }, ... ],
//!   "counters":   { "join.rows_joined": 100, ... },
//!   "gauges":     { "reactive.trigger_latency_max_secs": 480, ... },
//!   "histograms": { "time.pool.task_ms": { "count": 8, "sum": 10,
//!                   "min": 0, "max": 4, "p50": 1, "p90": 3,
//!                   "p95": 3, "p99": 3, "buckets": [1, 2, 2, 3] } },
//!   "trace": { "events": 512, "dropped": 0,
//!              "by_kind": { "AttackOnset": 100, ... } }
//! }
//! ```
//!
//! `counters`/`gauges`/`histograms` are name-sorted; `stages` is in
//! execution order; `trace` summarizes the causal event ring ([`crate::trace`]),
//! its `by_kind` keys drawn from the event taxonomy. Wall times, RSS, and
//! `time.`/`sched.`-prefixed metrics vary run to run by design — consumers
//! comparing runs must restrict themselves to the deterministic namespace,
//! as the CI metrics gate, [`compare_reports`], and the determinism tests
//! do.
//!
//! v1 → v2: added `meta.run`, histogram `p95`, and the `trace` block.
//! Histogram `buckets` (raw log2 bucket counts, trailing zeros trimmed)
//! were added within v2 as an *optional* field — older committed reports
//! without it stay valid; the suite orchestrator requires it to merge
//! per-process distributions exactly ([`crate::hist`]).

use crate::json::Json;
use crate::metrics::{HistogramSnapshot, Snapshot};
use crate::trace::{EventKind, TraceSummary};

/// Schema identifier carried in every report.
pub const SCHEMA_ID: &str = "dnsimpact-metrics/v2";

/// The pre-trace schema id. Reports committed under `results/` before the
/// v2 bump still validate — under the rules of their day ([`validate_legacy_v1`]).
pub const LEGACY_SCHEMA_ID: &str = "dnsimpact-metrics/v1";

/// Run identity: the inputs that determine the deterministic metrics.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RunMeta {
    pub seed: u64,
    pub scale: u64,
    pub jobs: u64,
    /// Same-day run counter (bench artifacts: `BENCH_<date>_run<N>.json`
    /// from the second run of a date on; plain runs report 1).
    pub run: u64,
    pub chaos_seed: Option<u64>,
    pub bench: bool,
    /// UTC date of the run, `YYYY-MM-DD`.
    pub date: String,
    pub experiments: Vec<String>,
}

/// One named stage and its wall time, in execution order.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StageWall {
    pub name: String,
    pub wall_ms: u64,
}

/// A complete run report, convertible to and from schema-`v2` JSON.
#[derive(Debug, Clone, PartialEq)]
pub struct RunReport {
    pub meta: RunMeta,
    pub total_wall_ms: u64,
    pub peak_rss_kb: u64,
    pub stages: Vec<StageWall>,
    pub metrics: Snapshot,
    /// Summary of the causal event trace ([`crate::trace::summary`]).
    pub trace: TraceSummary,
}

impl RunReport {
    pub fn to_json(&self) -> Json {
        let mut meta = Json::obj();
        meta.set("seed", Json::U64(self.meta.seed));
        meta.set("scale", Json::U64(self.meta.scale));
        meta.set("jobs", Json::U64(self.meta.jobs));
        meta.set("run", Json::U64(self.meta.run));
        meta.set("chaos_seed", self.meta.chaos_seed.map_or(Json::Null, Json::U64));
        meta.set("bench", Json::Bool(self.meta.bench));
        meta.set("date", Json::Str(self.meta.date.clone()));
        meta.set(
            "experiments",
            Json::Array(self.meta.experiments.iter().map(|e| Json::Str(e.clone())).collect()),
        );

        let stages = Json::Array(
            self.stages
                .iter()
                .map(|s| {
                    let mut o = Json::obj();
                    o.set("name", Json::Str(s.name.clone()));
                    o.set("wall_ms", Json::U64(s.wall_ms));
                    o
                })
                .collect(),
        );

        let mut counters = Json::obj();
        for (k, v) in &self.metrics.counters {
            counters.set(k, Json::U64(*v));
        }
        let mut gauges = Json::obj();
        for (k, v) in &self.metrics.gauges {
            gauges.set(k, Json::U64(*v));
        }
        let mut histograms = Json::obj();
        for (k, h) in &self.metrics.histograms {
            let mut o = Json::obj();
            o.set("count", Json::U64(h.count));
            o.set("sum", Json::U64(h.sum));
            o.set("min", Json::U64(h.min));
            o.set("max", Json::U64(h.max));
            o.set("p50", Json::U64(h.p50));
            o.set("p90", Json::U64(h.p90));
            o.set("p95", Json::U64(h.p95));
            o.set("p99", Json::U64(h.p99));
            o.set("buckets", Json::Array(h.buckets.iter().map(|&b| Json::U64(b)).collect()));
            histograms.set(k, o);
        }

        let mut trace = Json::obj();
        trace.set("events", Json::U64(self.trace.events));
        trace.set("dropped", Json::U64(self.trace.dropped));
        let mut by_kind = Json::obj();
        for (k, n) in &self.trace.by_kind {
            by_kind.set(k, Json::U64(*n));
        }
        trace.set("by_kind", by_kind);

        let mut doc = Json::obj();
        doc.set("schema", Json::Str(SCHEMA_ID.into()));
        doc.set("meta", meta);
        doc.set("total_wall_ms", Json::U64(self.total_wall_ms));
        doc.set("peak_rss_kb", Json::U64(self.peak_rss_kb));
        doc.set("stages", stages);
        doc.set("counters", counters);
        doc.set("gauges", gauges);
        doc.set("histograms", histograms);
        doc.set("trace", trace);
        doc
    }

    /// Rebuild a report from schema-`v2` JSON. Runs full schema validation
    /// first, so `from_json(text)?` doubles as a validity check. On a
    /// document [`validate`] passes every accessor below succeeds; any gap
    /// between the two (a validator blind spot, a hand-edited file) comes
    /// back as a named-field error, never a panic.
    pub fn from_json(doc: &Json) -> Result<RunReport, Vec<String>> {
        validate(doc)?;
        let meta = want(doc, "$", "meta")?;
        let run_meta = RunMeta {
            seed: want_u64(meta, "$.meta", "seed")?,
            scale: want_u64(meta, "$.meta", "scale")?,
            jobs: want_u64(meta, "$.meta", "jobs")?,
            run: want_u64(meta, "$.meta", "run")?,
            chaos_seed: want(meta, "$.meta", "chaos_seed")?.as_u64(),
            bench: matches!(want(meta, "$.meta", "bench")?, Json::Bool(true)),
            date: want_str(meta, "$.meta", "date")?,
            experiments: want_array(meta, "$.meta", "experiments")?
                .iter()
                .enumerate()
                .map(|(i, e)| {
                    e.as_str().map(str::to_string).ok_or_else(|| {
                        vec![format!("malformed report: $.meta.experiments[{i}] is not a string")]
                    })
                })
                .collect::<Result<_, _>>()?,
        };
        let stages = want_array(doc, "$", "stages")?
            .iter()
            .enumerate()
            .map(|(i, s)| {
                let path = format!("$.stages[{i}]");
                Ok(StageWall {
                    name: want_str(s, &path, "name")?,
                    wall_ms: want_u64(s, &path, "wall_ms")?,
                })
            })
            .collect::<Result<_, Vec<String>>>()?;
        let u64_map =
            |key: &'static str| -> Result<std::collections::BTreeMap<String, u64>, Vec<String>> {
                want_object(doc, "$", key)?
                    .iter()
                    .map(|(k, v)| {
                        v.as_u64().map(|n| (k.clone(), n)).ok_or_else(|| {
                            vec![format!(
                                "malformed report: $.{key}.{k} is not an unsigned integer"
                            )]
                        })
                    })
                    .collect()
            };
        let metrics = Snapshot {
            counters: u64_map("counters")?,
            gauges: u64_map("gauges")?,
            histograms: want_object(doc, "$", "histograms")?
                .iter()
                .map(|(k, h)| {
                    let path = format!("$.histograms.{k}");
                    Ok((
                        k.clone(),
                        HistogramSnapshot {
                            count: want_u64(h, &path, "count")?,
                            sum: want_u64(h, &path, "sum")?,
                            min: want_u64(h, &path, "min")?,
                            max: want_u64(h, &path, "max")?,
                            p50: want_u64(h, &path, "p50")?,
                            p90: want_u64(h, &path, "p90")?,
                            p95: want_u64(h, &path, "p95")?,
                            p99: want_u64(h, &path, "p99")?,
                            // Optional: pre-buckets reports carry none.
                            buckets: match h.get("buckets") {
                                None => Vec::new(),
                                Some(b) => b
                                    .as_array()
                                    .and_then(|items| {
                                        items.iter().map(Json::as_u64).collect::<Option<_>>()
                                    })
                                    .ok_or_else(|| {
                                        vec![format!(
                                            "malformed report: {path}.buckets is not an \
                                             unsigned-integer array"
                                        )]
                                    })?,
                            },
                        },
                    ))
                })
                .collect::<Result<_, Vec<String>>>()?,
        };
        let t = want(doc, "$", "trace")?;
        let trace = TraceSummary {
            events: want_u64(t, "$.trace", "events")?,
            dropped: want_u64(t, "$.trace", "dropped")?,
            by_kind: want_object(t, "$.trace", "by_kind")?
                .iter()
                .map(|(k, v)| {
                    v.as_u64().map(|n| (k.clone(), n)).ok_or_else(|| {
                        vec![format!(
                            "malformed report: $.trace.by_kind.{k} is not an unsigned integer"
                        )]
                    })
                })
                .collect::<Result<_, _>>()?,
        };
        Ok(RunReport {
            meta: run_meta,
            total_wall_ms: want_u64(doc, "$", "total_wall_ms")?,
            peak_rss_kb: want_u64(doc, "$", "peak_rss_kb")?,
            stages,
            metrics,
            trace,
        })
    }

    /// Human-readable summary for `--metrics-summary` (stderr). Shows the
    /// run identity, per-stage wall times, the deterministic counters and
    /// gauges, latency histograms collapsed to count/p50/p95/p99, and the
    /// trace-event accounting.
    pub fn summary_table(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let chaos = self.meta.chaos_seed.map_or("off".to_string(), |s| format!("{s}"));
        let _ = writeln!(
            out,
            "run: seed={} scale={} jobs={} chaos={} date={} run#{}  wall={}ms rss={}kB",
            self.meta.seed,
            self.meta.scale,
            self.meta.jobs,
            chaos,
            self.meta.date,
            self.meta.run,
            self.total_wall_ms,
            self.peak_rss_kb
        );
        let _ = writeln!(out, "{:-<72}", "");
        let _ = writeln!(out, "{:<40} {:>12}", "stage", "wall_ms");
        for s in &self.stages {
            let _ = writeln!(out, "{:<40} {:>12}", s.name, s.wall_ms);
        }
        let _ = writeln!(out, "{:-<72}", "");
        let _ = writeln!(out, "{:<40} {:>12}", "counter", "value");
        for (k, v) in &self.metrics.counters {
            let _ = writeln!(out, "{k:<40} {v:>12}");
        }
        for (k, v) in &self.metrics.gauges {
            let _ = writeln!(out, "{:<40} {:>12}", format!("{k} (gauge)"), v);
        }
        if !self.metrics.histograms.is_empty() {
            let _ = writeln!(out, "{:-<72}", "");
            let _ = writeln!(
                out,
                "{:<36} {:>8} {:>8} {:>8} {:>8}",
                "histogram", "count", "p50", "p95", "p99"
            );
            for (k, h) in &self.metrics.histograms {
                let _ = writeln!(
                    out,
                    "{:<36} {:>8} {:>8} {:>8} {:>8}",
                    k, h.count, h.p50, h.p95, h.p99
                );
            }
        }
        let _ = writeln!(out, "{:-<72}", "");
        let _ = writeln!(
            out,
            "trace: {} event(s) retained, {} dropped",
            self.trace.events, self.trace.dropped
        );
        for (kind, n) in &self.trace.by_kind {
            let _ = writeln!(out, "  {kind:<38} {n:>12}");
        }
        out
    }
}

fn require<'a>(obj: &'a Json, key: &str, path: &str, errors: &mut Vec<String>) -> Option<&'a Json> {
    let v = obj.get(key);
    if v.is_none() {
        errors.push(format!("missing field {path}.{key}"));
    }
    v
}

// `from_json` accessors: like `require*` but fallible-by-return, for the
// reconstruction path — a missing or mistyped field yields a named error
// the caller can surface, never a panic.
fn want<'a>(obj: &'a Json, path: &str, key: &str) -> Result<&'a Json, Vec<String>> {
    obj.get(key).ok_or_else(|| vec![format!("malformed report: missing {path}.{key}")])
}

fn want_u64(obj: &Json, path: &str, key: &str) -> Result<u64, Vec<String>> {
    want(obj, path, key)?
        .as_u64()
        .ok_or_else(|| vec![format!("malformed report: {path}.{key} is not an unsigned integer")])
}

fn want_str(obj: &Json, path: &str, key: &str) -> Result<String, Vec<String>> {
    want(obj, path, key)?
        .as_str()
        .map(str::to_string)
        .ok_or_else(|| vec![format!("malformed report: {path}.{key} is not a string")])
}

fn want_array<'a>(obj: &'a Json, path: &str, key: &str) -> Result<&'a [Json], Vec<String>> {
    want(obj, path, key)?
        .as_array()
        .ok_or_else(|| vec![format!("malformed report: {path}.{key} is not an array")])
}

fn want_object<'a>(
    obj: &'a Json,
    path: &str,
    key: &str,
) -> Result<&'a [(String, Json)], Vec<String>> {
    want(obj, path, key)?
        .as_object()
        .ok_or_else(|| vec![format!("malformed report: {path}.{key} is not an object")])
}

fn require_u64(obj: &Json, key: &str, path: &str, errors: &mut Vec<String>) {
    if let Some(v) = require(obj, key, path, errors) {
        if v.as_u64().is_none() {
            errors.push(format!("{path}.{key} must be an unsigned integer"));
        }
    }
}

#[derive(Clone, Copy, PartialEq)]
enum MapKind {
    /// Flat name → u64 (counters and gauges).
    Counters,
    /// Histogram summary objects, v2 shape (with `p95`).
    Histograms,
    /// Histogram summary objects as v1 wrote them: no `p95`.
    HistogramsV1,
}

fn check_metric_map(doc: &Json, key: &str, errors: &mut Vec<String>, kind: MapKind) {
    let Some(map) = require(doc, key, "$", errors) else {
        return;
    };
    let Some(pairs) = map.as_object() else {
        errors.push(format!("$.{key} must be an object"));
        return;
    };
    for (name, v) in pairs {
        if kind != MapKind::Counters {
            if v.as_object().is_none() {
                errors.push(format!("$.{key}.{name} must be an object"));
                continue;
            }
            let fields: &[&str] = if kind == MapKind::HistogramsV1 {
                &["count", "sum", "min", "max", "p50", "p90", "p99"]
            } else {
                &["count", "sum", "min", "max", "p50", "p90", "p95", "p99"]
            };
            for field in fields {
                require_u64(v, field, &format!("$.{key}.{name}"), errors);
            }
            // `buckets` is optional (pre-buckets reports), but when present
            // it must be a u64 array whose counts sum to `count` — the
            // suite merge relies on the accounting.
            match v.get("buckets") {
                None => {}
                Some(Json::Array(items)) => {
                    let mut total = 0u64;
                    let mut well_typed = true;
                    for (i, b) in items.iter().enumerate() {
                        match b.as_u64() {
                            Some(n) => total += n,
                            None => {
                                errors.push(format!(
                                    "$.{key}.{name}.buckets[{i}] must be an unsigned integer"
                                ));
                                well_typed = false;
                            }
                        }
                    }
                    let count = v.get("count").and_then(Json::as_u64);
                    if well_typed && count.is_some_and(|c| c != total) {
                        errors.push(format!(
                            "$.{key}.{name}.buckets sum to {total} but count is {}",
                            count.unwrap_or(0)
                        ));
                    }
                }
                Some(_) => errors.push(format!("$.{key}.{name}.buckets must be an array")),
            }
        } else if v.as_u64().is_none() {
            errors.push(format!("$.{key}.{name} must be an unsigned integer"));
        }
    }
}

/// Validate a document against schema `dnsimpact-metrics/v2`. Returns the
/// full list of violations rather than stopping at the first.
pub fn validate(doc: &Json) -> Result<(), Vec<String>> {
    validate_as(doc, false)
}

/// Validate a document against the legacy `dnsimpact-metrics/v1` schema:
/// v2 without `meta.run`, histogram `p95`, or the `trace` block. Only for
/// reports that predate the bump — new reports must validate as v2.
pub fn validate_legacy_v1(doc: &Json) -> Result<(), Vec<String>> {
    validate_as(doc, true)
}

fn validate_as(doc: &Json, legacy: bool) -> Result<(), Vec<String>> {
    let want_schema = if legacy { LEGACY_SCHEMA_ID } else { SCHEMA_ID };
    let mut errors = Vec::new();
    match doc.get("schema").and_then(|s| s.as_str()) {
        Some(s) if s == want_schema => {}
        Some(s) => errors.push(format!("schema is {s:?}, expected {want_schema:?}")),
        None => errors.push("missing string field $.schema".into()),
    }
    if let Some(meta) = require(doc, "meta", "$", &mut errors) {
        let meta_keys: &[&str] =
            if legacy { &["seed", "scale", "jobs"] } else { &["seed", "scale", "jobs", "run"] };
        for key in meta_keys {
            require_u64(meta, key, "$.meta", &mut errors);
        }
        match require(meta, "chaos_seed", "$.meta", &mut errors) {
            Some(Json::Null) | Some(Json::U64(_)) | None => {}
            Some(_) => errors.push("$.meta.chaos_seed must be null or an unsigned integer".into()),
        }
        match require(meta, "bench", "$.meta", &mut errors) {
            Some(Json::Bool(_)) | None => {}
            Some(_) => errors.push("$.meta.bench must be a boolean".into()),
        }
        match require(meta, "date", "$.meta", &mut errors) {
            Some(Json::Str(d)) => {
                let ok = d.len() == 10
                    && d.bytes().enumerate().all(|(i, b)| {
                        if i == 4 || i == 7 {
                            b == b'-'
                        } else {
                            b.is_ascii_digit()
                        }
                    });
                if !ok {
                    errors.push(format!("$.meta.date {d:?} is not YYYY-MM-DD"));
                }
            }
            Some(_) => errors.push("$.meta.date must be a string".into()),
            None => {}
        }
        match require(meta, "experiments", "$.meta", &mut errors) {
            Some(Json::Array(items)) if items.iter().any(|e| e.as_str().is_none()) => {
                errors.push("$.meta.experiments entries must be strings".into());
            }
            Some(Json::Array(_)) | None => {}
            Some(_) => errors.push("$.meta.experiments must be an array".into()),
        }
    }
    require_u64(doc, "total_wall_ms", "$", &mut errors);
    require_u64(doc, "peak_rss_kb", "$", &mut errors);
    match require(doc, "stages", "$", &mut errors) {
        Some(Json::Array(items)) => {
            for (i, s) in items.iter().enumerate() {
                let path = format!("$.stages[{i}]");
                match require(s, "name", &path, &mut errors) {
                    Some(Json::Str(_)) | None => {}
                    Some(_) => errors.push(format!("{path}.name must be a string")),
                }
                require_u64(s, "wall_ms", &path, &mut errors);
            }
        }
        Some(_) => errors.push("$.stages must be an array".into()),
        None => {}
    }
    check_metric_map(doc, "counters", &mut errors, MapKind::Counters);
    check_metric_map(doc, "gauges", &mut errors, MapKind::Counters);
    check_metric_map(
        doc,
        "histograms",
        &mut errors,
        if legacy { MapKind::HistogramsV1 } else { MapKind::Histograms },
    );
    if legacy {
        // v1 predates the trace block entirely.
    } else if let Some(trace) = require(doc, "trace", "$", &mut errors) {
        require_u64(trace, "events", "$.trace", &mut errors);
        require_u64(trace, "dropped", "$.trace", &mut errors);
        match require(trace, "by_kind", "$.trace", &mut errors) {
            Some(Json::Object(pairs)) => {
                for (kind, n) in pairs {
                    if EventKind::parse(kind).is_none() {
                        errors.push(format!("$.trace.by_kind key {kind:?} is not an event kind"));
                    }
                    if n.as_u64().is_none() {
                        errors.push(format!("$.trace.by_kind.{kind} must be an unsigned integer"));
                    }
                }
            }
            Some(_) => errors.push("$.trace.by_kind must be an object".into()),
            None => {}
        }
    }
    if errors.is_empty() {
        Ok(())
    } else {
        Err(errors)
    }
}

/// Reactive trigger bound from the paper: ≤ 10 minutes.
pub const MAX_TRIGGER_LATENCY_SECS: u64 = 600;
/// Reactive probe budget from the paper: ≤ 50 domains per 5-minute round.
pub const MAX_PROBES_PER_ROUND: u64 = 50;

/// Check the cross-counter invariants CI gates on. Assumes a *completed*
/// run (every injected fault has had its repair window):
///
/// - `chaos.faults_injected > 0` ⇒ `chaos.faults_repaired` equals it;
/// - `reactive.trigger_latency_max_secs` ≤ 10 minutes;
/// - `reactive.probe_round_max_probes` ≤ 50.
pub fn check_invariants(doc: &Json) -> Result<(), Vec<String>> {
    let mut errors = Vec::new();
    let counter = |name: &str| -> u64 {
        doc.get("counters").and_then(|c| c.get(name)).and_then(|v| v.as_u64()).unwrap_or(0)
    };
    let gauge = |name: &str| -> u64 {
        doc.get("gauges").and_then(|g| g.get(name)).and_then(|v| v.as_u64()).unwrap_or(0)
    };

    let injected = counter("chaos.faults_injected");
    let repaired = counter("chaos.faults_repaired");
    if injected > 0 && repaired != injected {
        errors.push(format!(
            "chaos.faults_repaired ({repaired}) != chaos.faults_injected ({injected})"
        ));
    }
    let latency = gauge("reactive.trigger_latency_max_secs");
    if latency > MAX_TRIGGER_LATENCY_SECS {
        errors.push(format!(
            "reactive.trigger_latency_max_secs ({latency}) exceeds the \
             {MAX_TRIGGER_LATENCY_SECS}s bound"
        ));
    }
    let probes = gauge("reactive.probe_round_max_probes");
    if probes > MAX_PROBES_PER_ROUND {
        errors.push(format!(
            "reactive.probe_round_max_probes ({probes}) exceeds the \
             {MAX_PROBES_PER_ROUND}-domain budget"
        ));
    }
    if errors.is_empty() {
        Ok(())
    } else {
        Err(errors)
    }
}

/// `repro bench --compare` wall-clock regression threshold: fail when the
/// new run exceeds baseline × factor + floor. Generous on purpose — the
/// baseline may come from a different machine; this catches order-of-
/// magnitude regressions, not noise.
pub const WALL_REGRESSION_FACTOR: f64 = 3.0;
/// Absolute slack added to the wall-clock limit (protects tiny baselines).
pub const WALL_REGRESSION_FLOOR_MS: u64 = 2_000;
/// Peak-RSS regression threshold factor.
pub const RSS_REGRESSION_FACTOR: f64 = 2.0;
/// Absolute slack added to the RSS limit, in kB.
pub const RSS_REGRESSION_FLOOR_KB: u64 = 131_072;

/// Diff a fresh bench report against a baseline report (`repro bench
/// --compare`). Returns `(failures, warnings)`:
///
/// - wall clock / peak RSS beyond the generous regression thresholds
///   **fail**;
/// - deterministic counters, gauges, and histogram shapes (names not
///   prefixed `time.`/`sched.`) present in *both* reports must match
///   **exactly** — any drift fails, because for a pinned bench
///   seed/scale/chaos configuration they are pure functions of the code;
/// - names present in only one report (new or retired metrics) **warn**;
/// - a baseline with a different seed/scale/chaos configuration warns and
///   skips the drift check (the counters are incomparable).
///
/// Reads both documents leniently through raw JSON, so a schema-`v1`
/// baseline (no `meta.run`, no `p95`, no `trace` block) remains usable.
pub fn compare_reports(current: &Json, baseline: &Json) -> (Vec<String>, Vec<String>) {
    let mut failures = Vec::new();
    let mut warnings = Vec::new();
    let top = |doc: &Json, key: &str| doc.get(key).and_then(|v| v.as_u64());

    match (top(current, "total_wall_ms"), top(baseline, "total_wall_ms")) {
        (Some(cur), Some(base)) => {
            let limit = (base as f64 * WALL_REGRESSION_FACTOR) as u64 + WALL_REGRESSION_FLOOR_MS;
            if cur > limit {
                failures.push(format!(
                    "wall-clock regression: {cur} ms vs baseline {base} ms (limit {limit} ms)"
                ));
            }
        }
        _ => warnings.push("total_wall_ms missing; wall-clock comparison skipped".into()),
    }
    match (top(current, "peak_rss_kb"), top(baseline, "peak_rss_kb")) {
        (Some(cur), Some(base)) => {
            let limit = (base as f64 * RSS_REGRESSION_FACTOR) as u64 + RSS_REGRESSION_FLOOR_KB;
            if cur > limit {
                failures.push(format!(
                    "peak-RSS regression: {cur} kB vs baseline {base} kB (limit {limit} kB)"
                ));
            }
        }
        _ => warnings.push("peak_rss_kb missing; RSS comparison skipped".into()),
    }

    // Drift is only meaningful for an identical run configuration.
    let meta = |doc: &Json, key: &str| doc.get("meta").and_then(|m| m.get(key)).cloned();
    let mut config_matches = true;
    for key in ["seed", "scale", "chaos_seed", "experiments"] {
        if meta(current, key) != meta(baseline, key) {
            warnings.push(format!(
                "baseline meta.{key} differs from this run; deterministic drift check skipped"
            ));
            config_matches = false;
        }
    }
    if !config_matches {
        return (failures, warnings);
    }

    let deterministic = |name: &str| !name.starts_with("time.") && !name.starts_with("sched.");
    for section in ["counters", "gauges"] {
        let (Some(cur), Some(base)) = (
            current.get(section).and_then(|s| s.as_object()),
            baseline.get(section).and_then(|s| s.as_object()),
        ) else {
            warnings.push(format!("{section} missing; drift check skipped for it"));
            continue;
        };
        for (name, value) in cur {
            if !deterministic(name) {
                continue;
            }
            match base.iter().find(|(k, _)| k == name) {
                Some((_, b)) if b == value => {}
                Some((_, b)) => failures.push(format!(
                    "deterministic drift: {section}.{name} = {value:?} vs baseline {b:?}"
                )),
                None => warnings.push(format!("{section}.{name} absent from baseline")),
            }
        }
        for (name, _) in base {
            if deterministic(name) && !cur.iter().any(|(k, _)| k == name) {
                warnings.push(format!("{section}.{name} present in baseline only"));
            }
        }
    }
    // Deterministic histograms compare field-by-field over the fields both
    // documents carry (a v1 baseline lacks p95).
    if let (Some(cur), Some(base)) = (
        current.get("histograms").and_then(|s| s.as_object()),
        baseline.get("histograms").and_then(|s| s.as_object()),
    ) {
        for (name, h) in cur {
            if !deterministic(name) {
                continue;
            }
            let Some((_, bh)) = base.iter().find(|(k, _)| k == name) else {
                warnings.push(format!("histograms.{name} absent from baseline"));
                continue;
            };
            for field in ["count", "sum", "min", "max", "p50", "p90", "p95", "p99"] {
                if let (Some(a), Some(b)) =
                    (h.get(field).and_then(|v| v.as_u64()), bh.get(field).and_then(|v| v.as_u64()))
                {
                    if a != b {
                        failures.push(format!(
                            "deterministic drift: histograms.{name}.{field} = {a} vs baseline {b}"
                        ));
                    }
                }
            }
        }
    }
    (failures, warnings)
}

/// Today's date in UTC as `YYYY-MM-DD`, from the system clock. Uses the
/// days-to-civil algorithm (Howard Hinnant's `civil_from_days`), so no
/// date dependency is needed.
pub fn today_utc() -> String {
    let secs = std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .map(|d| d.as_secs())
        .unwrap_or(0);
    let days = (secs / 86_400) as i64;
    let (y, m, d) = civil_from_days(days);
    format!("{y:04}-{m:02}-{d:02}")
}

fn civil_from_days(z: i64) -> (i64, u32, u32) {
    let z = z + 719_468;
    let era = if z >= 0 { z } else { z - 146_096 } / 146_097;
    let doe = (z - era * 146_097) as u64;
    let yoe = (doe - doe / 1460 + doe / 36_524 - doe / 146_096) / 365;
    let y = yoe as i64 + era * 400;
    let doy = doe - (365 * yoe + yoe / 4 - yoe / 100);
    let mp = (5 * doy + 2) / 153;
    let d = (doy - (153 * mp + 2) / 5 + 1) as u32;
    let m = if mp < 10 { mp + 3 } else { mp - 9 } as u32;
    (if m <= 2 { y + 1 } else { y }, m, d)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::BTreeMap;

    fn sample_report() -> RunReport {
        let mut counters = BTreeMap::new();
        counters.insert("chaos.faults_injected".to_string(), 12);
        counters.insert("chaos.faults_repaired".to_string(), 12);
        counters.insert("join.rows_joined".to_string(), 345);
        let mut gauges = BTreeMap::new();
        gauges.insert("reactive.trigger_latency_max_secs".to_string(), 480);
        gauges.insert("reactive.probe_round_max_probes".to_string(), 50);
        let mut histograms = BTreeMap::new();
        histograms.insert(
            "time.pool.task_ms".to_string(),
            crate::metrics::HistogramSnapshot {
                count: 8,
                sum: 40,
                min: 1,
                max: 15,
                p50: 3,
                p90: 15,
                p95: 15,
                p99: 15,
                // Values {1, 2, 2, 3, 4, 4, 9, 15} — consistent with the
                // count/sum/percentiles above.
                buckets: vec![0, 1, 3, 2, 2],
            },
        );
        RunReport {
            meta: RunMeta {
                seed: 42,
                scale: 1500,
                jobs: 2,
                run: 1,
                chaos_seed: Some(9),
                bench: true,
                date: "2026-08-05".into(),
                experiments: vec!["table1".into(), "fig5".into()],
            },
            total_wall_ms: 1234,
            peak_rss_kb: 56_789,
            stages: vec![
                StageWall { name: "longitudinal".into(), wall_ms: 800 },
                StageWall { name: "catalog".into(), wall_ms: 400 },
            ],
            metrics: Snapshot { counters, gauges, histograms },
            trace: TraceSummary {
                events: 400,
                dropped: 0,
                by_kind: vec![("AttackOnset".into(), 300), ("JoinMatched".into(), 100)],
            },
        }
    }

    #[test]
    fn report_round_trips_through_json_text() {
        let report = sample_report();
        let text = report.to_json().pretty();
        let parsed = Json::parse(&text).unwrap();
        let back = RunReport::from_json(&parsed).unwrap();
        assert_eq!(back, report);
        // Re-serialization is byte-identical.
        assert_eq!(back.to_json().pretty(), text);
    }

    #[test]
    fn validate_accepts_sample_and_reports_all_errors() {
        let mut doc = sample_report().to_json();
        assert!(validate(&doc).is_ok());
        doc.set("schema", Json::Str("bogus/v9".into()));
        doc.set("total_wall_ms", Json::Str("fast".into()));
        let errors = validate(&doc).unwrap_err();
        assert!(errors.len() >= 2, "{errors:?}");
    }

    #[test]
    fn validate_rejects_bad_date_and_meta() {
        let mut doc = sample_report().to_json();
        let mut meta = doc.get("meta").unwrap().clone();
        meta.set("date", Json::Str("08/05/2026".into()));
        meta.set("chaos_seed", Json::Str("nine".into()));
        doc.set("meta", meta);
        let errors = validate(&doc).unwrap_err();
        assert!(errors.iter().any(|e| e.contains("date")), "{errors:?}");
        assert!(errors.iter().any(|e| e.contains("chaos_seed")), "{errors:?}");
    }

    #[test]
    fn validate_checks_bucket_accounting_but_tolerates_absence() {
        let mut doc = sample_report().to_json();
        let mut histograms = doc.get("histograms").unwrap().clone();
        let mut h = histograms.get("time.pool.task_ms").unwrap().clone();

        // Pre-buckets reports (no `buckets` field at all) stay valid.
        let Json::Object(pairs) = h.clone() else { unreachable!() };
        let legacy_h = Json::Object(pairs.into_iter().filter(|(k, _)| k != "buckets").collect());
        let mut legacy_hists = histograms.clone();
        legacy_hists.set("time.pool.task_ms", legacy_h);
        let mut legacy = doc.clone();
        legacy.set("histograms", legacy_hists);
        assert!(validate(&legacy).is_ok());
        let parsed = RunReport::from_json(&legacy).unwrap();
        assert!(parsed.metrics.histograms["time.pool.task_ms"].buckets.is_empty());

        // Buckets that disagree with count are rejected.
        h.set("buckets", Json::Array(vec![Json::U64(1)]));
        histograms.set("time.pool.task_ms", h);
        doc.set("histograms", histograms);
        let errors = validate(&doc).unwrap_err();
        assert!(errors.iter().any(|e| e.contains("buckets sum to 1 but count is 8")), "{errors:?}");
    }

    #[test]
    fn invariants_catch_unrepaired_faults_and_latency() {
        let doc = sample_report().to_json();
        assert!(check_invariants(&doc).is_ok());

        let mut bad = doc.clone();
        let mut counters = bad.get("counters").unwrap().clone();
        counters.set("chaos.faults_repaired", Json::U64(7));
        bad.set("counters", counters);
        let errors = check_invariants(&bad).unwrap_err();
        assert!(errors[0].contains("faults_repaired"), "{errors:?}");

        let mut slow = doc.clone();
        let mut gauges = slow.get("gauges").unwrap().clone();
        gauges.set("reactive.trigger_latency_max_secs", Json::U64(601));
        gauges.set("reactive.probe_round_max_probes", Json::U64(51));
        slow.set("gauges", gauges);
        let errors = check_invariants(&slow).unwrap_err();
        assert_eq!(errors.len(), 2, "{errors:?}");
    }

    #[test]
    fn validate_rejects_bad_trace_block() {
        let mut doc = sample_report().to_json();
        let mut trace = doc.get("trace").unwrap().clone();
        let mut by_kind = Json::obj();
        by_kind.set("NotAKind", Json::U64(1));
        by_kind.set("AttackOnset", Json::Str("three".into()));
        trace.set("by_kind", by_kind);
        doc.set("trace", trace);
        let errors = validate(&doc).unwrap_err();
        assert!(errors.iter().any(|e| e.contains("NotAKind")), "{errors:?}");
        assert!(errors.iter().any(|e| e.contains("by_kind.AttackOnset")), "{errors:?}");
    }

    #[test]
    fn compare_flags_regressions_and_drift_only() {
        let base = sample_report().to_json();
        // Identical reports: clean.
        let (failures, warnings) = compare_reports(&base, &base);
        assert!(failures.is_empty(), "{failures:?}");
        assert!(warnings.is_empty(), "{warnings:?}");

        // Wall/RSS regressions beyond the generous thresholds fail; a new
        // counter only warns; drift on a shared counter fails exactly.
        let mut cur = sample_report();
        cur.total_wall_ms = 1234 * 4 + WALL_REGRESSION_FLOOR_MS;
        cur.peak_rss_kb = 56_789 * 3 + RSS_REGRESSION_FLOOR_KB;
        cur.metrics.counters.insert("trace.events".into(), 400);
        *cur.metrics.counters.get_mut("join.rows_joined").unwrap() = 346;
        let (failures, warnings) = compare_reports(&cur.to_json(), &base);
        assert_eq!(failures.len(), 3, "{failures:?}");
        assert!(failures.iter().any(|e| e.contains("wall-clock regression")));
        assert!(failures.iter().any(|e| e.contains("peak-RSS regression")));
        assert!(failures.iter().any(|e| e.contains("counters.join.rows_joined")));
        assert!(warnings.iter().any(|w| w.contains("trace.events absent from baseline")));

        // Faster runs never fail; nondeterministic sections are ignored.
        let mut fast = sample_report();
        fast.total_wall_ms = 1;
        fast.metrics.histograms.get_mut("time.pool.task_ms").unwrap().p50 = 999;
        let (failures, _) = compare_reports(&fast.to_json(), &base);
        assert!(failures.is_empty(), "{failures:?}");

        // A baseline from a different configuration skips the drift check.
        let mut other = sample_report();
        other.meta.scale = 40;
        *other.metrics.counters.get_mut("join.rows_joined").unwrap() = 9;
        let (failures, warnings) = compare_reports(&cur.to_json(), &other.to_json());
        assert!(failures.iter().all(|e| !e.contains("drift")), "{failures:?}");
        assert!(warnings.iter().any(|w| w.contains("meta.scale")), "{warnings:?}");
    }

    #[test]
    fn civil_from_days_known_dates() {
        assert_eq!(civil_from_days(0), (1970, 1, 1));
        assert_eq!(civil_from_days(19_723), (2024, 1, 1));
        // 2026-08-05 is 20_670 days after the epoch.
        assert_eq!(civil_from_days(20_670), (2026, 8, 5));
        let today = today_utc();
        assert_eq!(today.len(), 10);
    }

    #[test]
    fn summary_table_mentions_stages_and_counters() {
        let table = sample_report().summary_table();
        assert!(table.contains("longitudinal"));
        assert!(table.contains("join.rows_joined"));
        assert!(table.contains("time.pool.task_ms"));
    }
}
