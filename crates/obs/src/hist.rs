//! Mergeable log2 histograms for cross-process aggregation.
//!
//! [`crate::metrics::Histogram`] is an in-process atomic instrument; this
//! module is its *value* form — a plain [`Hist`] that can be rebuilt from
//! the `buckets` array a run report carries, added bucket-wise to another
//! histogram, and asked for percentiles. The suite orchestrator
//! (`repro bench --suite`) uses it to fuse the per-process distributions
//! of N spawned release binaries into one summary: because the buckets are
//! the same fixed log2 grid in every process, [`merge`] is exact — the
//! merged histogram is bit-identical to the histogram one process would
//! have produced had it observed every sample itself.
//!
//! Bucket `i` holds values whose bit length is `i`: `{0}` for bucket 0,
//! `[2^(i-1), 2^i)` for `i >= 1`. Percentiles report the bucket's upper
//! bound (`2^i - 1`), exactly like the in-process instrument, so merged
//! and single-process quantiles are directly comparable. `count`, `sum`,
//! `min`, and `max` are exact under merging.

use crate::json::Json;
use crate::metrics::HistogramSnapshot;

/// Number of log2 buckets — one per possible `u64` bit length, matching
/// [`crate::metrics::Histogram`].
pub const BUCKETS: usize = 64;

/// A plain-value log2 histogram. `buckets` is kept trimmed (no trailing
/// zero buckets) so equality and serialization are canonical regardless
/// of how the histogram was built.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Hist {
    count: u64,
    sum: u64,
    /// Meaningful only when `count > 0`; [`Hist::min`] reports 0 when empty.
    min: u64,
    max: u64,
    buckets: Vec<u64>,
}

impl Hist {
    pub fn new() -> Hist {
        Hist::default()
    }

    /// Record one sample, exactly like the in-process instrument.
    pub fn record(&mut self, v: u64) {
        let bucket = ((64 - v.leading_zeros()) as usize).min(BUCKETS - 1);
        if self.buckets.len() <= bucket {
            self.buckets.resize(bucket + 1, 0);
        }
        self.buckets[bucket] += 1;
        if self.count == 0 {
            self.min = v;
            self.max = v;
        } else {
            self.min = self.min.min(v);
            self.max = self.max.max(v);
        }
        self.count += 1;
        // Wrapping, to match the in-process instrument's `fetch_add`.
        self.sum = self.sum.wrapping_add(v);
    }

    /// Rebuild a histogram from its carried parts, enforcing the shape
    /// invariants (`sum(buckets) == count`, at most [`BUCKETS`] buckets,
    /// `min <= max` when non-empty) so a hand-edited report cannot smuggle
    /// an inconsistent distribution into a merge.
    pub fn from_parts(
        count: u64,
        sum: u64,
        min: u64,
        max: u64,
        buckets: Vec<u64>,
    ) -> Result<Hist, String> {
        if buckets.len() > BUCKETS {
            return Err(format!("{} buckets; the log2 grid has at most {BUCKETS}", buckets.len()));
        }
        let total: u64 = buckets.iter().sum();
        if total != count {
            return Err(format!("bucket counts sum to {total}, count says {count}"));
        }
        if count > 0 && min > max {
            return Err(format!("min {min} > max {max}"));
        }
        let mut h = Hist { count, sum, min, max, buckets };
        if count == 0 {
            h.min = 0;
            h.max = 0;
            h.sum = 0;
        }
        h.trim();
        Ok(h)
    }

    /// Rebuild from a run report's [`HistogramSnapshot`]. Fails when the
    /// snapshot carries no bucket array (a pre-buckets report): without
    /// buckets a histogram cannot participate in an exact merge.
    pub fn from_snapshot(s: &HistogramSnapshot) -> Result<Hist, String> {
        if s.count > 0 && s.buckets.is_empty() {
            return Err(format!("snapshot has {} samples but no buckets array", s.count));
        }
        Hist::from_parts(s.count, s.sum, s.min, s.max, s.buckets.clone())
    }

    /// Fold `other` into `self`, bucket-wise. Exact: the result equals
    /// the histogram of the union of both sample streams.
    pub fn merge_from(&mut self, other: &Hist) {
        if other.count == 0 {
            return;
        }
        if self.buckets.len() < other.buckets.len() {
            self.buckets.resize(other.buckets.len(), 0);
        }
        for (b, &o) in self.buckets.iter_mut().zip(&other.buckets) {
            *b += o;
        }
        if self.count == 0 {
            self.min = other.min;
            self.max = other.max;
        } else {
            self.min = self.min.min(other.min);
            self.max = self.max.max(other.max);
        }
        self.count += other.count;
        // Wrapping, to match the in-process instrument's `fetch_add`: the
        // merged sum of any split equals the sum of the union mod 2^64.
        self.sum = self.sum.wrapping_add(other.sum);
    }

    pub fn count(&self) -> u64 {
        self.count
    }

    pub fn sum(&self) -> u64 {
        self.sum
    }

    /// Smallest recorded sample (0 when empty).
    pub fn min(&self) -> u64 {
        if self.count == 0 {
            0
        } else {
            self.min
        }
    }

    pub fn max(&self) -> u64 {
        self.max
    }

    /// The value at quantile `q` (0 < q <= 1): the upper bound `2^i - 1`
    /// of the first bucket whose cumulative count reaches the rank — the
    /// same approximation the in-process instrument reports.
    pub fn percentile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let rank = ((self.count as f64) * q).ceil().max(1.0) as u64;
        let mut seen = 0u64;
        for (i, &b) in self.buckets.iter().enumerate() {
            seen += b;
            if seen >= rank {
                return if i == 0 { 0 } else { (1u64 << i) - 1 };
            }
        }
        self.max
    }

    /// Serialize as the suite report's histogram object: the exact parts
    /// plus derived p50/p95/p99 for human readers. The derived fields are
    /// pure functions of `buckets`, so re-serializing a parsed histogram
    /// is byte-identical.
    pub fn to_json(&self) -> Json {
        let mut o = Json::obj();
        o.set("count", Json::U64(self.count));
        o.set("sum", Json::U64(self.sum));
        o.set("min", Json::U64(self.min()));
        o.set("max", Json::U64(self.max));
        o.set("p50", Json::U64(self.percentile(0.50)));
        o.set("p95", Json::U64(self.percentile(0.95)));
        o.set("p99", Json::U64(self.percentile(0.99)));
        o.set("buckets", Json::Array(self.buckets.iter().map(|&b| Json::U64(b)).collect()));
        o
    }

    /// Parse a histogram object back, re-checking the shape invariants
    /// *and* that the carried p50/p95/p99 match what the buckets imply —
    /// a report cannot claim percentiles its distribution does not have.
    pub fn from_json(doc: &Json, path: &str) -> Result<Hist, Vec<String>> {
        let mut errors = Vec::new();
        let u = |key: &str, errors: &mut Vec<String>| -> Option<u64> {
            match doc.get(key) {
                Some(v) => match v.as_u64() {
                    Some(n) => Some(n),
                    None => {
                        errors.push(format!("{path}.{key} must be an unsigned integer"));
                        None
                    }
                },
                None => {
                    errors.push(format!("missing field {path}.{key}"));
                    None
                }
            }
        };
        let count = u("count", &mut errors);
        let sum = u("sum", &mut errors);
        let min = u("min", &mut errors);
        let max = u("max", &mut errors);
        let buckets: Option<Vec<u64>> = match doc.get("buckets") {
            Some(Json::Array(items)) => {
                let mut out = Vec::with_capacity(items.len());
                let mut ok = true;
                for (i, b) in items.iter().enumerate() {
                    match b.as_u64() {
                        Some(n) => out.push(n),
                        None => {
                            errors.push(format!("{path}.buckets[{i}] must be an unsigned integer"));
                            ok = false;
                        }
                    }
                }
                ok.then_some(out)
            }
            Some(_) => {
                errors.push(format!("{path}.buckets must be an array"));
                None
            }
            None => {
                errors.push(format!("missing field {path}.buckets"));
                None
            }
        };
        let (Some(count), Some(sum), Some(min), Some(max), Some(buckets)) =
            (count, sum, min, max, buckets)
        else {
            return Err(errors);
        };
        let h = Hist::from_parts(count, sum, min, max, buckets)
            .map_err(|e| vec![format!("{path}: {e}")])?;
        for (key, q) in [("p50", 0.50), ("p95", 0.95), ("p99", 0.99)] {
            if let Some(claimed) = u(key, &mut errors) {
                let actual = h.percentile(q);
                if claimed != actual {
                    errors.push(format!(
                        "{path}.{key} claims {claimed} but the buckets imply {actual}"
                    ));
                }
            }
        }
        if errors.is_empty() {
            Ok(h)
        } else {
            Err(errors)
        }
    }

    fn trim(&mut self) {
        while self.buckets.last() == Some(&0) {
            self.buckets.pop();
        }
    }
}

/// Merge any number of histograms into one, bucket-wise. Exact (see
/// module docs): equivalent to recording every underlying sample into a
/// single histogram.
pub fn merge<'a, I: IntoIterator<Item = &'a Hist>>(parts: I) -> Hist {
    let mut out = Hist::new();
    for h in parts {
        out.merge_from(h);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn hist_of(values: &[u64]) -> Hist {
        let mut h = Hist::new();
        for &v in values {
            h.record(v);
        }
        h
    }

    #[test]
    fn merge_equals_recording_the_union() {
        let all: Vec<u64> = vec![0, 1, 3, 7, 100, 5_000, u64::MAX, 12, 12, 900];
        for split in 0..=all.len() {
            let (a, b) = all.split_at(split);
            let merged = merge([&hist_of(a), &hist_of(b)]);
            assert_eq!(merged, hist_of(&all), "split at {split}");
        }
    }

    #[test]
    fn empty_histograms_are_merge_identities() {
        let h = hist_of(&[4, 9, 31]);
        assert_eq!(merge([&Hist::new(), &h, &Hist::new()]), h);
        let empty = merge::<[&Hist; 0]>([]);
        assert_eq!(empty, Hist::new());
        assert_eq!(empty.percentile(0.99), 0);
        assert_eq!(empty.min(), 0);
    }

    #[test]
    fn percentiles_match_the_instrument() {
        // Same workload as the metrics-module test: the value form must
        // agree with the atomic instrument bucket-for-bucket.
        let mut h = Hist::new();
        for v in 1..=100u64 {
            h.record(v);
        }
        let name: &'static str = "test.hist.instrument_parity";
        let instrument = crate::metrics::histogram(name);
        for v in 1..=100u64 {
            instrument.record(v);
        }
        let snap = instrument.snapshot();
        assert_eq!(Hist::from_snapshot(&snap).unwrap(), h);
        assert_eq!(h.percentile(0.50), snap.p50);
        assert_eq!(h.percentile(0.95), snap.p95);
        assert_eq!(h.percentile(0.99), snap.p99);
        assert_eq!((h.count(), h.sum(), h.min(), h.max()), (100, 5050, 1, 100));
    }

    #[test]
    fn from_parts_rejects_inconsistent_shapes() {
        assert!(Hist::from_parts(3, 10, 1, 5, vec![0, 2, 1]).is_ok());
        let e = Hist::from_parts(4, 10, 1, 5, vec![0, 2, 1]).unwrap_err();
        assert!(e.contains("sum to 3"), "{e}");
        let e = Hist::from_parts(2, 10, 9, 5, vec![0, 1, 1]).unwrap_err();
        assert!(e.contains("min 9 > max 5"), "{e}");
        let e = Hist::from_parts(0, 0, 0, 0, vec![0; 65]).unwrap_err();
        assert!(e.contains("65 buckets"), "{e}");
    }

    #[test]
    fn json_round_trips_and_rejects_lying_percentiles() {
        let h = hist_of(&[1, 2, 3, 900, 4096]);
        let doc = h.to_json();
        let back = Hist::from_json(&doc, "$.h").unwrap();
        assert_eq!(back, h);
        assert_eq!(back.to_json().pretty(), doc.pretty());

        let mut lying = doc.clone();
        lying.set("p99", Json::U64(1));
        let errors = Hist::from_json(&lying, "$.h").unwrap_err();
        assert!(errors.iter().any(|e| e.contains("p99 claims 1")), "{errors:?}");

        let mut truncated = doc.clone();
        truncated.set("buckets", Json::Array(vec![Json::U64(1)]));
        assert!(Hist::from_json(&truncated, "$.h").is_err());

        let empty = Json::obj();
        let errors = Hist::from_json(&empty, "$.h").unwrap_err();
        assert!(errors.iter().any(|e| e.contains("$.h.count")), "{errors:?}");
    }

    #[test]
    fn snapshot_without_buckets_cannot_merge() {
        let legacy = HistogramSnapshot {
            count: 5,
            sum: 10,
            min: 1,
            max: 4,
            p50: 3,
            p90: 3,
            p95: 3,
            p99: 3,
            buckets: Vec::new(),
        };
        assert!(Hist::from_snapshot(&legacy).unwrap_err().contains("no buckets"));
    }
}
