//! The live-telemetry report: schema `dnsimpactd-live/v1`.
//!
//! One JSON document per daemon run (`dnsimpactd serve --live-report`),
//! committed under `results/LIVE_<date>[_runN].json` and accepted by
//! `repro validate-metrics`. Unlike the end-of-run reports, this one
//! carries *trajectories*: the retained tick window of every series the
//! live plane sampled, plus the SLO verdict sequence.
//!
//! The document is split at the top level by determinism, so a replay
//! harness can byte-diff exactly the right half:
//!
//! - `deterministic` — tick-indexed series derived from the index state
//!   (pure functions of the feed prefix), the deterministic SLO specs and
//!   their transition log, and the final state scalars with the full
//!   fingerprint. Two runs over the same feed prefix must produce this
//!   object byte-for-byte, whatever the chaos seed or `--jobs`.
//! - `annotation` — wall timestamps, scheduling-dependent series
//!   (queries served/shed, per-route latency), serving-side SLO state,
//!   and the diagnosis. Present for humans, never diffed.
//!
//! [`validate`] re-checks the structural invariants from the outside:
//! strictly increasing ticks, aligned array lengths, legal kinds and
//! statuses — and the delta-conservation law
//! `evicted_sum + Σ values == cumulative` for every delta series, which
//! is how a committed report proves no sample was dropped or
//! double-counted across ring wrap.

use crate::hist::Hist;
use crate::json::Json;
use crate::metrics::Snapshot;
use crate::slo::{SloSet, SloStatusView};
use crate::timeseries::TsStore;

/// Schema identifier carried in every live report.
pub const LIVE_SCHEMA_ID: &str = "dnsimpactd-live/v1";

/// Run identity for the live report.
#[derive(Debug, Clone, PartialEq)]
pub struct LiveMeta {
    pub seed: u64,
    pub scale: u64,
    pub months: u64,
    pub jobs: u64,
    /// UTC date of the run, `YYYY-MM-DD`.
    pub date: String,
    pub chaos_seed: Option<u64>,
    pub tick_cap: u64,
}

/// Final deterministic state scalars.
#[derive(Debug, Clone, PartialEq)]
pub struct LiveFinal {
    pub applied_seq: u64,
    pub total_batches: u64,
    pub records_applied: u64,
    pub episodes: u64,
    pub joined_rows: u64,
    pub staleness_s: u64,
    /// `0x`-prefixed full index fingerprint.
    pub full_fp: String,
}

fn series_json(store: &TsStore, name: &str, with_wall: bool) -> Option<Json> {
    let w = store.series(name, usize::MAX)?;
    let mut o = Json::obj();
    o.set("name", Json::Str(w.name.clone()));
    o.set("kind", Json::Str(w.kind.as_str().into()));
    o.set("ticks", Json::Array(w.ticks.iter().map(|&t| Json::U64(t)).collect()));
    o.set("values", Json::Array(w.values.iter().map(|&v| Json::U64(v)).collect()));
    o.set("evicted_sum", Json::U64(w.evicted_sum));
    o.set("cumulative", Json::U64(w.cumulative));
    if with_wall {
        o.set("wall_ms", Json::Array(w.wall_ms.iter().map(|&m| Json::U64(m)).collect()));
    }
    Some(o)
}

fn status_json(v: &SloStatusView) -> Json {
    let mut o = Json::obj();
    o.set("name", Json::Str(v.name.clone()));
    o.set("series", Json::Str(v.series.clone()));
    o.set("status", Json::Str(v.status.as_str().into()));
    o.set("burn_permille", Json::U64(v.burn_permille));
    o.set("max", Json::U64(v.max));
    match v.last_value {
        Some(x) => o.set("last_value", Json::U64(x)),
        None => o.set("last_value", Json::Null),
    };
    o.set("deterministic", Json::Bool(v.deterministic));
    o
}

/// Assemble a live report. `is_det` decides which stored series are
/// deterministic (the daemon derives those from index state only); the
/// rest land in annotation. `snap` supplies the scheduling-dependent
/// extras (sched counters, per-route latency histograms).
pub fn build(
    meta: &LiveMeta,
    fin: &LiveFinal,
    store: &TsStore,
    slos: &SloSet,
    is_det: &dyn Fn(&str) -> bool,
    snap: &Snapshot,
) -> Json {
    let mut m = Json::obj();
    m.set("seed", Json::U64(meta.seed));
    m.set("scale", Json::U64(meta.scale));
    m.set("months", Json::U64(meta.months));
    m.set("jobs", Json::U64(meta.jobs));
    m.set("date", Json::Str(meta.date.clone()));
    match meta.chaos_seed {
        Some(s) => m.set("chaos_seed", Json::U64(s)),
        None => m.set("chaos_seed", Json::Null),
    };
    m.set("tick_cap", Json::U64(meta.tick_cap));
    m.set("ticks_total", Json::U64(store.ticks_total()));
    m.set("ticks_retained", Json::U64(store.len() as u64));

    let mut f = Json::obj();
    f.set("applied_seq", Json::U64(fin.applied_seq));
    f.set("total_batches", Json::U64(fin.total_batches));
    f.set("records_applied", Json::U64(fin.records_applied));
    f.set("episodes", Json::U64(fin.episodes));
    f.set("joined_rows", Json::U64(fin.joined_rows));
    f.set("staleness_s", Json::U64(fin.staleness_s));
    f.set("full_fp", Json::Str(fin.full_fp.clone()));

    let names: Vec<String> = store.names().map(|(n, _)| n.to_string()).collect();
    let det_series: Vec<Json> =
        names.iter().filter(|n| is_det(n)).filter_map(|n| series_json(store, n, false)).collect();
    let ann_series: Vec<Json> =
        names.iter().filter(|n| !is_det(n)).filter_map(|n| series_json(store, n, false)).collect();

    let mut det_specs = Vec::new();
    for s in slos.specs().filter(|s| s.deterministic) {
        let mut o = Json::obj();
        o.set("name", Json::Str(s.name.clone()));
        o.set("series", Json::Str(s.series.clone()));
        o.set("max", Json::U64(s.max));
        o.set("window", Json::U64(s.window as u64));
        det_specs.push(o);
    }
    let det_transitions: Vec<Json> = slos
        .deterministic_transitions()
        .iter()
        .map(|t| {
            let mut o = Json::obj();
            o.set("tick", Json::U64(t.tick));
            o.set("slo", Json::Str(t.slo.clone()));
            o.set("status", Json::Str(t.status.as_str().into()));
            o
        })
        .collect();

    let mut det = Json::obj();
    det.set("final", f);
    det.set("series", Json::Array(det_series));
    det.set("slo_specs", Json::Array(det_specs));
    det.set("slo_transitions", Json::Array(det_transitions));

    // Annotation: the wall clock per retained tick, the nondeterministic
    // series, serving-side SLO state, and the sched extras.
    let mut wall = Json::obj();
    wall.set("ticks", Json::Array(store.ticks().map(|t| Json::U64(t.tick)).collect()));
    wall.set("ms", Json::Array(store.ticks().map(|t| Json::U64(t.wall_ms)).collect()));

    let statuses: Vec<Json> = slos.statuses().iter().map(status_json).collect();

    let mut sched_counters = Json::obj();
    for (name, &v) in &snap.counters {
        if name.starts_with("sched.") {
            sched_counters.set(name, Json::U64(v));
        }
    }
    let mut route_latency = Json::obj();
    for (name, hs) in &snap.histograms {
        if let Some(route) = name.strip_prefix("sched.daemon.http.latency_us.") {
            if let Ok(h) = Hist::from_snapshot(hs) {
                route_latency.set(route, h.to_json());
            }
        }
    }

    let mut ann = Json::obj();
    ann.set("wall", wall);
    ann.set("series", Json::Array(ann_series));
    ann.set("slo_statuses", Json::Array(statuses));
    ann.set("diagnosis", Json::Str(slos.diagnose().into()));
    ann.set("sched_counters", sched_counters);
    ann.set("route_latency_us", route_latency);

    let mut doc = Json::obj();
    doc.set("schema", Json::Str(LIVE_SCHEMA_ID.into()));
    doc.set("meta", m);
    doc.set("deterministic", det);
    doc.set("annotation", ann);
    doc
}

fn require<'a>(obj: &'a Json, key: &str, path: &str, errors: &mut Vec<String>) -> Option<&'a Json> {
    let v = obj.get(key);
    if v.is_none() {
        errors.push(format!("missing field {path}.{key}"));
    }
    v
}

fn require_u64(obj: &Json, key: &str, path: &str, errors: &mut Vec<String>) -> Option<u64> {
    match require(obj, key, path, errors) {
        Some(v) => match v.as_u64() {
            Some(n) => Some(n),
            None => {
                errors.push(format!("{path}.{key} must be an unsigned integer"));
                None
            }
        },
        None => None,
    }
}

fn u64_array(v: &Json, path: &str, errors: &mut Vec<String>) -> Option<Vec<u64>> {
    match v.as_array() {
        Some(items) => {
            let mut out = Vec::with_capacity(items.len());
            for (i, item) in items.iter().enumerate() {
                match item.as_u64() {
                    Some(n) => out.push(n),
                    None => {
                        errors.push(format!("{path}[{i}] must be an unsigned integer"));
                        return None;
                    }
                }
            }
            Some(out)
        }
        None => {
            errors.push(format!("{path} must be an array"));
            None
        }
    }
}

fn validate_series(list: &Json, path: &str, errors: &mut Vec<String>) {
    let Some(items) = list.as_array() else {
        errors.push(format!("{path} must be an array"));
        return;
    };
    let mut seen = Vec::new();
    for (i, s) in items.iter().enumerate() {
        let p = format!("{path}[{i}]");
        let name = match s.get("name").and_then(|n| n.as_str()) {
            Some(n) if !n.is_empty() => n.to_string(),
            _ => {
                errors.push(format!("{p}.name must be a non-empty string"));
                continue;
            }
        };
        if seen.contains(&name) {
            errors.push(format!("{p}: duplicate series name {name:?}"));
        }
        seen.push(name.clone());
        let kind = s.get("kind").and_then(|k| k.as_str()).unwrap_or("");
        if !matches!(kind, "delta" | "level") {
            errors.push(format!("{p}.kind {kind:?} must be \"delta\" or \"level\""));
        }
        let ticks = s.get("ticks").and_then(|t| u64_array(t, &format!("{p}.ticks"), errors));
        let values = s.get("values").and_then(|t| u64_array(t, &format!("{p}.values"), errors));
        if s.get("ticks").is_none() {
            errors.push(format!("missing field {p}.ticks"));
        }
        if s.get("values").is_none() {
            errors.push(format!("missing field {p}.values"));
        }
        let evicted = require_u64(s, "evicted_sum", &p, errors);
        let cumulative = require_u64(s, "cumulative", &p, errors);
        if let (Some(ticks), Some(values)) = (ticks.as_ref(), values.as_ref()) {
            if ticks.len() != values.len() {
                errors.push(format!("{p}: {} ticks but {} values", ticks.len(), values.len()));
            }
            if ticks.windows(2).any(|w| w[0] >= w[1]) {
                errors.push(format!("{p}.ticks must be strictly increasing"));
            }
            if kind == "delta" {
                if let (Some(e), Some(c)) = (evicted, cumulative) {
                    let window_sum: u64 = values.iter().sum();
                    if e + window_sum != c {
                        errors.push(format!(
                            "{p} ({name:?}): evicted_sum {e} + window sum {window_sum} != \
                             cumulative {c} — a sample was dropped or double-counted"
                        ));
                    }
                }
            }
        }
    }
}

/// Validate a document against schema `dnsimpactd-live/v1`. Collects all
/// violations (see module docs for what is enforced).
pub fn validate(doc: &Json) -> Result<(), Vec<String>> {
    let mut errors = Vec::new();
    match doc.get("schema").and_then(|s| s.as_str()) {
        Some(s) if s == LIVE_SCHEMA_ID => {}
        Some(s) => errors.push(format!("schema is {s:?}, expected {LIVE_SCHEMA_ID:?}")),
        None => errors.push("missing string field $.schema".into()),
    }
    if let Some(meta) = require(doc, "meta", "$", &mut errors) {
        for key in ["seed", "scale", "months", "jobs", "tick_cap"] {
            require_u64(meta, key, "$.meta", &mut errors);
        }
        let total = require_u64(meta, "ticks_total", "$.meta", &mut errors);
        let retained = require_u64(meta, "ticks_retained", "$.meta", &mut errors);
        if let (Some(t), Some(r)) = (total, retained) {
            if r > t {
                errors.push(format!("$.meta.ticks_retained {r} > ticks_total {t}"));
            }
        }
        match meta.get("chaos_seed") {
            Some(Json::U64(_)) | Some(Json::Null) => {}
            Some(_) => errors.push("$.meta.chaos_seed must be an unsigned integer or null".into()),
            None => errors.push("missing field $.meta.chaos_seed".into()),
        }
        match require(meta, "date", "$.meta", &mut errors) {
            Some(Json::Str(d)) => {
                let ok = d.len() == 10
                    && d.bytes().enumerate().all(|(i, b)| {
                        if i == 4 || i == 7 {
                            b == b'-'
                        } else {
                            b.is_ascii_digit()
                        }
                    });
                if !ok {
                    errors.push(format!("$.meta.date {d:?} is not YYYY-MM-DD"));
                }
            }
            Some(_) => errors.push("$.meta.date must be a string".into()),
            None => {}
        }
    }
    if let Some(det) = require(doc, "deterministic", "$", &mut errors) {
        if let Some(fin) = require(det, "final", "$.deterministic", &mut errors) {
            for key in [
                "applied_seq",
                "total_batches",
                "records_applied",
                "episodes",
                "joined_rows",
                "staleness_s",
            ] {
                require_u64(fin, key, "$.deterministic.final", &mut errors);
            }
            match require(fin, "full_fp", "$.deterministic.final", &mut errors) {
                Some(Json::Str(fp)) if fp.starts_with("0x") && fp.len() > 2 => {}
                Some(Json::Str(fp)) => errors
                    .push(format!("$.deterministic.final.full_fp {fp:?} must be 0x-prefixed hex")),
                Some(_) => errors.push("$.deterministic.final.full_fp must be a string".into()),
                None => {}
            }
        }
        if let Some(series) = require(det, "series", "$.deterministic", &mut errors) {
            validate_series(series, "$.deterministic.series", &mut errors);
        }
        let mut spec_names = Vec::new();
        if let Some(specs) = require(det, "slo_specs", "$.deterministic", &mut errors) {
            match specs.as_array() {
                Some(items) => {
                    for (i, s) in items.iter().enumerate() {
                        let p = format!("$.deterministic.slo_specs[{i}]");
                        match s.get("name").and_then(|n| n.as_str()) {
                            Some(n) if !n.is_empty() => {
                                if spec_names.contains(&n.to_string()) {
                                    errors.push(format!("{p}: duplicate SLO name {n:?}"));
                                }
                                spec_names.push(n.to_string());
                            }
                            _ => errors.push(format!("{p}.name must be a non-empty string")),
                        }
                        require_u64(s, "max", &p, &mut errors);
                        if require_u64(s, "window", &p, &mut errors) == Some(0) {
                            errors.push(format!("{p}.window must be at least 1"));
                        }
                    }
                }
                None => errors.push("$.deterministic.slo_specs must be an array".into()),
            }
        }
        if let Some(trans) = require(det, "slo_transitions", "$.deterministic", &mut errors) {
            match trans.as_array() {
                Some(items) => {
                    let mut last_tick = 0u64;
                    for (i, t) in items.iter().enumerate() {
                        let p = format!("$.deterministic.slo_transitions[{i}]");
                        if let Some(tick) = require_u64(t, "tick", &p, &mut errors) {
                            if tick < last_tick {
                                errors.push(format!("{p}.tick {tick} goes backwards"));
                            }
                            last_tick = tick;
                        }
                        match t.get("slo").and_then(|s| s.as_str()) {
                            Some(n) if spec_names.iter().any(|s| s == n) => {}
                            Some(n) => errors.push(format!("{p}.slo {n:?} not in slo_specs")),
                            None => errors.push(format!("missing field {p}.slo")),
                        }
                        match t.get("status").and_then(|s| s.as_str()) {
                            Some("ok") | Some("warn") | Some("breach") => {}
                            Some(s) => {
                                errors.push(format!("{p}.status {s:?} is not ok|warn|breach"))
                            }
                            None => errors.push(format!("missing field {p}.status")),
                        }
                    }
                }
                None => errors.push("$.deterministic.slo_transitions must be an array".into()),
            }
        }
    }
    if let Some(ann) = require(doc, "annotation", "$", &mut errors) {
        if let Some(series) = ann.get("series") {
            validate_series(series, "$.annotation.series", &mut errors);
        }
        match ann.get("diagnosis").and_then(|d| d.as_str()) {
            Some(_) => {}
            None => errors.push("missing string field $.annotation.diagnosis".into()),
        }
        if let Some(wall) = ann.get("wall") {
            let t = wall.get("ticks").and_then(|v| v.as_array()).map(|a| a.len());
            let m = wall.get("ms").and_then(|v| v.as_array()).map(|a| a.len());
            if let (Some(t), Some(m)) = (t, m) {
                if t != m {
                    errors.push(format!("$.annotation.wall: {t} ticks but {m} ms entries"));
                }
            }
        }
    }
    if errors.is_empty() {
        Ok(())
    } else {
        Err(errors)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::slo::{SloKind, SloSpec};
    use std::collections::BTreeMap;

    fn sample_report() -> Json {
        let mut store = TsStore::new(4);
        let mut slos = SloSet::new(vec![
            SloSpec {
                name: "ingest_lag".into(),
                series: "live.ingest_lag".into(),
                max: 2,
                window: 3,
                kind: SloKind::Ingest,
                deterministic: true,
            },
            SloSpec {
                name: "shed".into(),
                series: "sched.shed_permille".into(),
                max: 100,
                window: 3,
                kind: SloKind::Serving,
                deterministic: false,
            },
        ]);
        for tick in 1..=6u64 {
            let counters = BTreeMap::from([
                ("live.records".to_string(), tick * 10),
                ("sched.served".to_string(), tick * 3),
            ]);
            let levels = BTreeMap::from([
                ("live.ingest_lag".to_string(), 6 - tick),
                ("sched.shed_permille".to_string(), 0),
            ]);
            store.observe(tick, tick * 100, &counters, &levels);
            let t = store.ticks().last().unwrap().clone();
            slos.observe_tick(tick, |name| {
                t.levels.get(name).copied().or_else(|| t.deltas.get(name).copied())
            });
        }
        let meta = LiveMeta {
            seed: 7,
            scale: 15_000,
            months: 2,
            jobs: 2,
            date: "2026-08-08".into(),
            chaos_seed: Some(11),
            tick_cap: 4,
        };
        let fin = LiveFinal {
            applied_seq: 6,
            total_batches: 6,
            records_applied: 60,
            episodes: 9,
            joined_rows: 12,
            staleness_s: 0,
            full_fp: "0x9f2a6c41d0e8b753".into(),
        };
        let snap = Snapshot {
            counters: BTreeMap::from([("sched.daemon.queries_shed".into(), 4)]),
            gauges: BTreeMap::new(),
            histograms: BTreeMap::new(),
        };
        build(&meta, &fin, &store, &slos, &|n| n.starts_with("live."), &snap)
    }

    #[test]
    fn built_report_validates_and_round_trips() {
        let doc = sample_report();
        validate(&doc).unwrap();
        let text = doc.pretty();
        let parsed = Json::parse(&text).unwrap();
        validate(&parsed).unwrap();
        assert_eq!(parsed.pretty(), text);
    }

    #[test]
    fn deterministic_half_excludes_wall_and_sched() {
        let doc = sample_report();
        let det = doc.get("deterministic").unwrap().pretty();
        assert!(!det.contains("wall_ms"), "wall clock leaked into deterministic half");
        assert!(!det.contains("sched."), "sched series leaked into deterministic half");
        // The lag SLO starts breached (lag 5 > 2) and recovers — verdicts
        // present and deterministic.
        let trans = doc
            .get("deterministic")
            .and_then(|d| d.get("slo_transitions"))
            .and_then(|t| t.as_array())
            .unwrap();
        assert!(!trans.is_empty());
    }

    #[test]
    fn validate_catches_conservation_violation() {
        let mut doc = sample_report();
        // Corrupt one delta value: the conservation law must notice.
        let det = doc.get("deterministic").unwrap().clone();
        let mut series = det.get("series").unwrap().as_array().unwrap().to_vec();
        let idx = series
            .iter()
            .position(|s| s.get("kind").and_then(|k| k.as_str()) == Some("delta"))
            .expect("a delta series");
        let mut s0 = series[idx].clone();
        let mut values = s0.get("values").unwrap().as_array().unwrap().to_vec();
        let Some(Json::U64(v)) = values.first().cloned() else { panic!("no values") };
        values[0] = Json::U64(v + 1);
        s0.set("values", Json::Array(values));
        series[idx] = s0;
        let mut det2 = det;
        det2.set("series", Json::Array(series));
        doc.set("deterministic", det2);
        let errors = validate(&doc).unwrap_err();
        assert!(errors.iter().any(|e| e.contains("double-counted")), "{errors:?}");
    }

    #[test]
    fn validate_rejects_bad_shapes() {
        let mut doc = sample_report();
        doc.set("schema", Json::Str("nope/v9".into()));
        assert!(validate(&doc).is_err());

        let empty = Json::obj();
        let errors = validate(&empty).unwrap_err();
        for field in ["$.schema", "$.meta", "$.deterministic", "$.annotation"] {
            assert!(errors.iter().any(|e| e.contains(field)), "{field}: {errors:?}");
        }
    }
}
