//! Fixed-capacity, tick-indexed time series — the live plane's store.
//!
//! The batch report answers "what were the totals"; this module answers
//! "how did they move". A [`TsStore`] is a bounded ring of per-tick
//! samples. The **tick** is not wall clock: the daemon drives it from
//! applied feed sequence numbers, so for a fixed feed the stored series
//! is a pure function of the ingested prefix — replayable byte-for-byte
//! across chaos seeds, `--jobs` counts, and crash recoveries. Wall-clock
//! timestamps ride along as annotation (`wall_ms`) and are excluded from
//! every determinism comparison, mirroring the `time.`/`sched.` metric
//! namespace rule.
//!
//! Two series kinds cover the instruments:
//!
//! - [`SeriesKind::Delta`]: the caller supplies a *cumulative* counter
//!   value each tick; the store keeps the per-tick increment. Deltas make
//!   windows meaningful ("records applied in the last N batches") and
//!   make conservation checkable.
//! - [`SeriesKind::Level`]: an instantaneous gauge (staleness, lag),
//!   stored as-is.
//!
//! ## No sample is lost or double-counted across ring wrap
//!
//! When the ring is full, the oldest tick is evicted and every delta it
//! held is folded into a per-series `evicted` accumulator. That gives the
//! machine-checkable conservation law ([`TsStore::check_conservation`],
//! also enforced by `live::validate` on reports):
//!
//! ```text
//! evicted_sum(name) + Σ retained deltas(name) == last cumulative(name)
//! ```
//!
//! A window query ([`TsStore::series`]) narrower than the ring folds the
//! retained-but-out-of-window deltas into its own `evicted_sum`, so the
//! same identity holds for any `last_n`.

use std::collections::{BTreeMap, VecDeque};

/// How pushed values for a series are interpreted (see module docs).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SeriesKind {
    Delta,
    Level,
}

impl SeriesKind {
    pub fn as_str(self) -> &'static str {
        match self {
            SeriesKind::Delta => "delta",
            SeriesKind::Level => "level",
        }
    }
}

/// One retained tick: the tick id, the annotation-only wall timestamp,
/// and the points recorded at that tick.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Tick {
    pub tick: u64,
    /// Wall-clock milliseconds — annotation only, never compared.
    pub wall_ms: u64,
    /// Per-series increment since the previous tick (Delta series).
    pub deltas: BTreeMap<String, u64>,
    /// Per-series instantaneous value (Level series).
    pub levels: BTreeMap<String, u64>,
}

/// A window query result. For Delta series, `evicted_sum` is everything
/// that happened before the window (ring-evicted plus retained ticks the
/// window excludes), so `evicted_sum + values.iter().sum() == cumulative`.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SeriesWindow {
    pub name: String,
    pub kind: SeriesKind,
    pub ticks: Vec<u64>,
    pub values: Vec<u64>,
    /// Annotation-only wall timestamps, index-aligned with `ticks`.
    pub wall_ms: Vec<u64>,
    /// Delta series: sum of increments before this window. Level: 0.
    pub evicted_sum: u64,
    /// Delta series: the cumulative value at the last tick. Level: the
    /// last value.
    pub cumulative: u64,
}

/// The bounded tick ring (see module docs).
#[derive(Debug)]
pub struct TsStore {
    cap: usize,
    ticks: VecDeque<Tick>,
    kinds: BTreeMap<String, SeriesKind>,
    /// Last cumulative value per Delta series (for delta computation).
    cum: BTreeMap<String, u64>,
    /// Per-series delta sum folded out of evicted ticks.
    evicted: BTreeMap<String, u64>,
    evicted_ticks: u64,
}

impl TsStore {
    pub fn new(cap: usize) -> TsStore {
        TsStore {
            cap: cap.max(1),
            ticks: VecDeque::new(),
            kinds: BTreeMap::new(),
            cum: BTreeMap::new(),
            evicted: BTreeMap::new(),
            evicted_ticks: 0,
        }
    }

    pub fn cap(&self) -> usize {
        self.cap
    }

    pub fn len(&self) -> usize {
        self.ticks.len()
    }

    pub fn is_empty(&self) -> bool {
        self.ticks.is_empty()
    }

    pub fn evicted_ticks(&self) -> u64 {
        self.evicted_ticks
    }

    /// Total ticks ever observed (retained + evicted).
    pub fn ticks_total(&self) -> u64 {
        self.evicted_ticks + self.ticks.len() as u64
    }

    /// Series names, sorted (BTreeMap order).
    pub fn names(&self) -> impl Iterator<Item = (&str, SeriesKind)> {
        self.kinds.iter().map(|(k, &v)| (k.as_str(), v))
    }

    pub fn kind(&self, name: &str) -> Option<SeriesKind> {
        self.kinds.get(name).copied()
    }

    /// Record one tick. `counters` carries cumulative values (stored as
    /// deltas), `levels` instantaneous ones. Ticks must be strictly
    /// increasing; a cumulative counter must never decrease. Both are
    /// caller bugs, not data, so they panic.
    pub fn observe(
        &mut self,
        tick: u64,
        wall_ms: u64,
        counters: &BTreeMap<String, u64>,
        levels: &BTreeMap<String, u64>,
    ) {
        if let Some(last) = self.ticks.back() {
            assert!(tick > last.tick, "tick {tick} not after {}", last.tick);
        }
        let mut deltas = BTreeMap::new();
        for (name, &cum_now) in counters {
            match self.kinds.get(name.as_str()) {
                None => {
                    self.kinds.insert(name.clone(), SeriesKind::Delta);
                }
                Some(SeriesKind::Delta) => {}
                Some(SeriesKind::Level) => panic!("series {name:?} is Level, observed as Delta"),
            }
            let prev = self.cum.get(name.as_str()).copied().unwrap_or(0);
            assert!(
                cum_now >= prev,
                "cumulative series {name:?} went backwards: {prev} -> {cum_now}"
            );
            deltas.insert(name.clone(), cum_now - prev);
            self.cum.insert(name.clone(), cum_now);
        }
        let mut lvl = BTreeMap::new();
        for (name, &v) in levels {
            match self.kinds.get(name.as_str()) {
                None => {
                    self.kinds.insert(name.clone(), SeriesKind::Level);
                }
                Some(SeriesKind::Level) => {}
                Some(SeriesKind::Delta) => panic!("series {name:?} is Delta, observed as Level"),
            }
            lvl.insert(name.clone(), v);
        }
        self.ticks.push_back(Tick { tick, wall_ms, deltas, levels: lvl });
        while self.ticks.len() > self.cap {
            let old = self.ticks.pop_front().expect("non-empty ring");
            for (name, d) in old.deltas {
                *self.evicted.entry(name).or_insert(0) += d;
            }
            self.evicted_ticks += 1;
        }
    }

    /// The last `last_n` points of `name` (every retained point when the
    /// window is larger than the ring). `None` for unknown series.
    pub fn series(&self, name: &str, last_n: usize) -> Option<SeriesWindow> {
        let kind = self.kind(name)?;
        let mut ticks = Vec::new();
        let mut values = Vec::new();
        let mut wall_ms = Vec::new();
        let mut skipped_sum = 0u64;
        let mut last_level = 0u64;
        // Ticks where the series has no point contribute nothing; only
        // ticks carrying a point count against the window.
        let mut points: Vec<(u64, u64, u64)> = Vec::new();
        for t in &self.ticks {
            let v = match kind {
                SeriesKind::Delta => t.deltas.get(name).copied(),
                SeriesKind::Level => t.levels.get(name).copied(),
            };
            if let Some(v) = v {
                points.push((t.tick, v, t.wall_ms));
            }
        }
        let start = points.len().saturating_sub(last_n.max(1));
        for (i, &(tick, v, w)) in points.iter().enumerate() {
            if i < start {
                if kind == SeriesKind::Delta {
                    skipped_sum += v;
                }
                continue;
            }
            ticks.push(tick);
            values.push(v);
            wall_ms.push(w);
            last_level = v;
        }
        let (evicted_sum, cumulative) = match kind {
            SeriesKind::Delta => {
                let ring_evicted = self.evicted.get(name).copied().unwrap_or(0);
                (ring_evicted + skipped_sum, self.cum.get(name).copied().unwrap_or(0))
            }
            SeriesKind::Level => (0, last_level),
        };
        Some(SeriesWindow {
            name: name.to_string(),
            kind,
            ticks,
            values,
            wall_ms,
            evicted_sum,
            cumulative,
        })
    }

    /// The conservation law from the module docs, for every Delta series.
    /// Structurally guaranteed by `observe`/eviction; tests and report
    /// validation re-check it from the outside anyway.
    pub fn check_conservation(&self) -> Result<(), String> {
        for (name, kind) in self.kinds.iter() {
            if *kind != SeriesKind::Delta {
                continue;
            }
            let retained: u64 = self.ticks.iter().filter_map(|t| t.deltas.get(name.as_str())).sum();
            let evicted = self.evicted.get(name.as_str()).copied().unwrap_or(0);
            let cum = self.cum.get(name.as_str()).copied().unwrap_or(0);
            if evicted + retained != cum {
                return Err(format!(
                    "series {name:?}: evicted {evicted} + retained {retained} != cumulative {cum}"
                ));
            }
        }
        Ok(())
    }

    /// The retained ticks, oldest first.
    pub fn ticks(&self) -> impl Iterator<Item = &Tick> {
        self.ticks.iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn one(name: &str, v: u64) -> BTreeMap<String, u64> {
        BTreeMap::from([(name.to_string(), v)])
    }

    #[test]
    fn deltas_and_levels_store_their_kind() {
        let mut s = TsStore::new(8);
        s.observe(1, 100, &one("c", 10), &one("g", 5));
        s.observe(2, 200, &one("c", 25), &one("g", 3));
        let c = s.series("c", 10).unwrap();
        assert_eq!(c.kind, SeriesKind::Delta);
        assert_eq!(c.values, vec![10, 15]);
        assert_eq!(c.cumulative, 25);
        assert_eq!(c.evicted_sum, 0);
        let g = s.series("g", 10).unwrap();
        assert_eq!(g.kind, SeriesKind::Level);
        assert_eq!(g.values, vec![5, 3]);
        assert_eq!(g.cumulative, 3);
        assert!(s.series("missing", 10).is_none());
    }

    #[test]
    fn ring_wrap_conserves_every_delta() {
        let mut s = TsStore::new(4);
        let mut cum = 0u64;
        for tick in 1..=100u64 {
            cum += tick % 7; // uneven increments
            s.observe(tick, tick * 10, &one("c", cum), &one("lag", 100 - tick));
        }
        assert_eq!(s.len(), 4);
        assert_eq!(s.evicted_ticks(), 96);
        assert_eq!(s.ticks_total(), 100);
        s.check_conservation().unwrap();
        // The identity holds for any window width, not just the ring.
        for last_n in [1, 2, 3, 4, 10] {
            let w = s.series("c", last_n).unwrap();
            let window_sum: u64 = w.values.iter().sum();
            assert_eq!(w.evicted_sum + window_sum, cum, "last_n={last_n}");
            assert_eq!(w.cumulative, cum);
        }
    }

    #[test]
    fn window_narrower_than_ring_counts_skipped_ticks_as_evicted() {
        let mut s = TsStore::new(8);
        for tick in 1..=6u64 {
            s.observe(tick, 0, &one("c", tick * 2), &BTreeMap::new());
        }
        let w = s.series("c", 2).unwrap();
        assert_eq!(w.ticks, vec![5, 6]);
        assert_eq!(w.values, vec![2, 2]);
        assert_eq!(w.evicted_sum, 8); // ticks 1..=4 contributed 2 each
        assert_eq!(w.evicted_sum + w.values.iter().sum::<u64>(), w.cumulative);
    }

    #[test]
    #[should_panic(expected = "not after")]
    fn ticks_must_strictly_increase() {
        let mut s = TsStore::new(4);
        s.observe(5, 0, &one("c", 1), &BTreeMap::new());
        s.observe(5, 0, &one("c", 2), &BTreeMap::new());
    }

    #[test]
    #[should_panic(expected = "went backwards")]
    fn cumulative_counters_must_not_decrease() {
        let mut s = TsStore::new(4);
        s.observe(1, 0, &one("c", 10), &BTreeMap::new());
        s.observe(2, 0, &one("c", 9), &BTreeMap::new());
    }

    #[test]
    fn wall_ms_is_annotation_only() {
        // Two stores fed identical ticks with different wall clocks have
        // identical deterministic views.
        let mut a = TsStore::new(4);
        let mut b = TsStore::new(4);
        for tick in 1..=9u64 {
            a.observe(tick, tick * 1000, &one("c", tick), &BTreeMap::new());
            b.observe(tick, 777, &one("c", tick), &BTreeMap::new());
        }
        let (wa, wb) = (a.series("c", 100).unwrap(), b.series("c", 100).unwrap());
        assert_eq!(
            (wa.ticks, wa.values, wa.evicted_sum, wa.cumulative),
            (wb.ticks.clone(), wb.values.clone(), wb.evicted_sum, wb.cumulative)
        );
        assert_ne!(wa.wall_ms, wb.wall_ms);
    }
}
