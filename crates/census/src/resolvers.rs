//! Open-resolver scan lists.
//!
//! Misconfigured domains point NS records at public resolvers (8.8.8.8,
//! 8.8.4.4, 1.1.1.1 dominate the paper's Table 5). Attacks on those
//! addresses are *not* attacks on authoritative infrastructure, so the
//! longitudinal pipeline filters them using a scan-derived list, exactly as
//! the paper filters with the Yazdani et al. scans (§3.3, §6.1).

use dnssim::Infra;
use std::collections::HashSet;
use std::net::Ipv4Addr;

/// A scan-derived list of open resolvers.
#[derive(Clone, Debug, Default)]
pub struct OpenResolverList {
    addrs: HashSet<Ipv4Addr>,
}

impl OpenResolverList {
    pub fn new() -> OpenResolverList {
        OpenResolverList::default()
    }

    /// The well-known public resolver addresses that appear in the paper's
    /// Table 5.
    pub fn well_known() -> OpenResolverList {
        let mut l = OpenResolverList::new();
        for a in ["8.8.8.8", "8.8.4.4", "1.1.1.1", "1.0.0.1", "9.9.9.9", "208.67.222.222"] {
            l.add(a.parse().unwrap());
        }
        l
    }

    /// Extend with every address the infrastructure registry flags as an
    /// open resolver.
    pub fn extend_from_infra(&mut self, infra: &Infra) {
        for n in infra.nameservers() {
            if n.open_resolver {
                self.addrs.insert(n.addr);
            }
        }
    }

    pub fn add(&mut self, addr: Ipv4Addr) {
        self.addrs.insert(addr);
    }

    pub fn contains(&self, addr: Ipv4Addr) -> bool {
        self.addrs.contains(&addr)
    }

    pub fn len(&self) -> usize {
        self.addrs.len()
    }

    pub fn is_empty(&self) -> bool {
        self.addrs.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dnssim::Deployment;
    use netbase::Asn;

    #[test]
    fn well_known_contains_quad8_and_quad1() {
        let l = OpenResolverList::well_known();
        assert!(l.contains("8.8.8.8".parse().unwrap()));
        assert!(l.contains("8.8.4.4".parse().unwrap()));
        assert!(l.contains("1.1.1.1".parse().unwrap()));
        assert!(!l.contains("195.135.195.195".parse().unwrap()));
        assert_eq!(l.len(), 6);
    }

    #[test]
    fn extends_from_infra_flags() {
        let mut infra = Infra::new();
        let ns = infra.add_nameserver(
            "resolver.isp.example".parse().unwrap(),
            "194.67.7.1".parse().unwrap(),
            Asn(3216),
            Deployment::Unicast,
            100_000.0,
            5_000.0,
            30.0,
        );
        infra.mark_open_resolver(ns);
        let clean = infra.add_nameserver(
            "ns.isp.example".parse().unwrap(),
            "194.67.8.1".parse().unwrap(),
            Asn(3216),
            Deployment::Unicast,
            100_000.0,
            5_000.0,
            30.0,
        );
        let _ = clean;
        let mut l = OpenResolverList::new();
        l.extend_from_infra(&infra);
        assert!(l.contains("194.67.7.1".parse().unwrap()));
        assert!(!l.contains("194.67.8.1".parse().unwrap()));
        assert_eq!(l.len(), 1);
    }

    #[test]
    fn manual_add() {
        let mut l = OpenResolverList::new();
        assert!(l.is_empty());
        l.add("5.5.5.5".parse().unwrap());
        assert!(l.contains("5.5.5.5".parse().unwrap()));
    }
}
