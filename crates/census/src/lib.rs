//! Ancillary datasets: the quarterly anycast census and open-resolver scan
//! lists (§3.3 of the paper).
//!
//! The real study uses MAnycast2 census snapshots (a *lower bound* on
//! anycast deployment, matched against nameserver /24s) and the open
//! resolver scans of Yazdani et al. (to filter out misconfigured domains
//! whose NS records point at 8.8.8.8-style resolvers). Both are derived
//! here from simulation ground truth with the same imperfections:
//! the census detects each anycast /24 with recall < 1, and detection only
//! refreshes at quarterly snapshot boundaries.

pub mod anycast;
pub mod resolvers;

pub use anycast::{AnycastCensus, AnycastClass, CensusSnapshot};
pub use resolvers::OpenResolverList;
