//! Quarterly anycast census snapshots.

use dnssim::{Infra, NsSetId};
use netbase::Slash24;
use rand::Rng;
use simcore::rng::RngFactory;
use simcore::time::{CivilDate, SimTime};
use std::collections::HashSet;

/// Anycast adoption of an NSSet, matched at /24 granularity as in the
/// paper (§3.3, §6.6.1).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum AnycastClass {
    /// No member detected as anycast.
    Unicast,
    /// Some but not all members detected as anycast.
    Partial,
    /// Every member detected as anycast.
    Full,
}

/// One census snapshot: the /24s detected as anycast at a point in time.
#[derive(Clone, Debug)]
pub struct CensusSnapshot {
    pub date: CivilDate,
    pub anycast_slash24s: HashSet<Slash24>,
}

/// The quarterly census series.
#[derive(Clone, Debug)]
pub struct AnycastCensus {
    /// Sorted by date ascending.
    snapshots: Vec<CensusSnapshot>,
}

impl AnycastCensus {
    /// The snapshot dates of the paper's series: quarterly from January
    /// 2021 to January 2022 (§3.3).
    pub fn paper_snapshot_dates() -> Vec<CivilDate> {
        vec![
            CivilDate::new(2021, 1, 1),
            CivilDate::new(2021, 4, 1),
            CivilDate::new(2021, 7, 1),
            CivilDate::new(2021, 10, 1),
            CivilDate::new(2022, 1, 1),
        ]
    }

    pub fn new(mut snapshots: Vec<CensusSnapshot>) -> AnycastCensus {
        assert!(!snapshots.is_empty());
        snapshots.sort_by_key(|s| s.date);
        AnycastCensus { snapshots }
    }

    /// Derive a census from ground truth with per-snapshot detection recall
    /// (< 1 makes the census the lower bound the paper describes).
    pub fn from_ground_truth(
        infra: &Infra,
        dates: Vec<CivilDate>,
        recall: f64,
        rngs: &RngFactory,
    ) -> AnycastCensus {
        assert!((0.0..=1.0).contains(&recall));
        let truth: Vec<Slash24> = {
            let mut v: Vec<Slash24> = infra
                .nameservers()
                .iter()
                .filter(|n| n.deployment.is_anycast())
                .map(|n| n.slash24())
                .collect();
            v.sort();
            v.dedup();
            v
        };
        let snapshots = dates
            .into_iter()
            .enumerate()
            .map(|(i, date)| {
                let mut rng = rngs.stream_indexed("anycast-census", i as u64);
                let detected =
                    truth.iter().copied().filter(|_| rng.random::<f64>() < recall).collect();
                CensusSnapshot { date, anycast_slash24s: detected }
            })
            .collect();
        AnycastCensus::new(snapshots)
    }

    pub fn snapshots(&self) -> &[CensusSnapshot] {
        &self.snapshots
    }

    /// The snapshot in effect at `t`: the latest one dated at or before
    /// `t`, else the earliest (the paper's interval starts two months
    /// before the first census snapshot).
    pub fn snapshot_at(&self, t: SimTime) -> &CensusSnapshot {
        let date = t.civil();
        self.snapshots.iter().rev().find(|s| s.date <= date).unwrap_or(&self.snapshots[0])
    }

    /// Whether a /24 is detected as anycast at `t`.
    pub fn is_anycast(&self, prefix: Slash24, t: SimTime) -> bool {
        self.snapshot_at(t).anycast_slash24s.contains(&prefix)
    }

    /// Classify an NSSet at `t` by matching member /24s against the
    /// census.
    pub fn classify(&self, infra: &Infra, nsset: NsSetId, t: SimTime) -> AnycastClass {
        let snap = self.snapshot_at(t);
        let members = infra.nsset(nsset).members();
        let detected = members
            .iter()
            .filter(|&&n| snap.anycast_slash24s.contains(&infra.nameserver(n).slash24()))
            .count();
        if detected == 0 {
            AnycastClass::Unicast
        } else if detected == members.len() {
            AnycastClass::Full
        } else {
            AnycastClass::Partial
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dnssim::Deployment;
    use netbase::Asn;
    use simcore::time::SimDuration;

    fn world() -> (Infra, NsSetId, NsSetId, NsSetId) {
        let mut infra = Infra::new();
        let mk = |infra: &mut Infra, i: u32, dep| {
            infra.add_nameserver(
                format!("ns{i}.host.net").parse().unwrap(),
                format!("198.51.{i}.1").parse().unwrap(),
                Asn(64500),
                dep,
                10_000.0,
                100.0,
                20.0,
            )
        };
        let u1 = mk(&mut infra, 0, Deployment::Unicast);
        let u2 = mk(&mut infra, 1, Deployment::Unicast);
        let a1 = mk(&mut infra, 2, Deployment::Anycast { sites: 10 });
        let a2 = mk(&mut infra, 3, Deployment::Anycast { sites: 30 });
        let uni = infra.intern_nsset(vec![u1, u2]);
        let partial = infra.intern_nsset(vec![u1, a1]);
        let full = infra.intern_nsset(vec![a1, a2]);
        (infra, uni, partial, full)
    }

    #[test]
    fn perfect_recall_classification() {
        let (infra, uni, partial, full) = world();
        let census = AnycastCensus::from_ground_truth(
            &infra,
            AnycastCensus::paper_snapshot_dates(),
            1.0,
            &RngFactory::new(1),
        );
        let t = SimTime::from_civil(CivilDate::new(2021, 6, 1), 0, 0, 0);
        assert_eq!(census.classify(&infra, uni, t), AnycastClass::Unicast);
        assert_eq!(census.classify(&infra, partial, t), AnycastClass::Partial);
        assert_eq!(census.classify(&infra, full, t), AnycastClass::Full);
    }

    #[test]
    fn census_is_lower_bound_under_recall() {
        let (infra, _, _, full) = world();
        let census = AnycastCensus::from_ground_truth(
            &infra,
            AnycastCensus::paper_snapshot_dates(),
            0.0,
            &RngFactory::new(1),
        );
        // Zero recall: everything looks unicast (the conservative error).
        let t = SimTime::from_civil(CivilDate::new(2021, 6, 1), 0, 0, 0);
        assert_eq!(census.classify(&infra, full, t), AnycastClass::Unicast);
        assert!(!census.is_anycast(Slash24::of("198.51.2.1".parse().unwrap()), t));
    }

    #[test]
    fn snapshot_selection_by_time() {
        let (infra, ..) = world();
        let census = AnycastCensus::from_ground_truth(
            &infra,
            AnycastCensus::paper_snapshot_dates(),
            1.0,
            &RngFactory::new(2),
        );
        // Before the first snapshot (Nov 2020) → falls back to the first.
        let early = census.snapshot_at(SimTime::EPOCH);
        assert_eq!(early.date, CivilDate::new(2021, 1, 1));
        // Mid-2021 → the July snapshot.
        let mid = census.snapshot_at(SimTime::from_civil(CivilDate::new(2021, 8, 15), 0, 0, 0));
        assert_eq!(mid.date, CivilDate::new(2021, 7, 1));
        // Far future → last snapshot.
        let late = census.snapshot_at(
            SimTime::from_civil(CivilDate::new(2022, 3, 31), 0, 0, 0) + SimDuration::from_days(100),
        );
        assert_eq!(late.date, CivilDate::new(2022, 1, 1));
    }

    #[test]
    fn paper_dates_are_quarterly() {
        let d = AnycastCensus::paper_snapshot_dates();
        assert_eq!(d.len(), 5);
        assert_eq!(d[0], CivilDate::new(2021, 1, 1));
        assert_eq!(d[4], CivilDate::new(2022, 1, 1));
    }

    #[test]
    fn deterministic_census() {
        let (infra, ..) = world();
        let a = AnycastCensus::from_ground_truth(
            &infra,
            AnycastCensus::paper_snapshot_dates(),
            0.8,
            &RngFactory::new(5),
        );
        let b = AnycastCensus::from_ground_truth(
            &infra,
            AnycastCensus::paper_snapshot_dates(),
            0.8,
            &RngFactory::new(5),
        );
        for (x, y) in a.snapshots().iter().zip(b.snapshots()) {
            assert_eq!(x.anycast_slash24s, y.anycast_slash24s);
        }
    }
}
