//! Trigger logic and probe scheduling.

use dnssim::{DomainId, Infra, NsId};
use simcore::time::{SimDuration, SimTime, Window, WINDOW_SECS};
use std::net::Ipv4Addr;

/// Trigger configuration (§4.3.1 and the ethics section §8).
#[derive(Clone, Copy, Debug)]
pub struct TriggerConfig {
    /// Domains probed per 5-minute round (the paper caps at 50 to avoid
    /// burdening attacked infrastructure).
    pub domains_per_round: usize,
    /// Maximum delay between the feed record and the first probe round
    /// (the paper's pipeline achieves ≤ 10 minutes).
    pub max_trigger_delay: SimDuration,
    /// How long probing continues after the attack's inferred end.
    pub post_attack_tail: SimDuration,
}

impl Default for TriggerConfig {
    fn default() -> TriggerConfig {
        TriggerConfig {
            domains_per_round: 50,
            max_trigger_delay: SimDuration::from_mins(10),
            post_attack_tail: SimDuration::from_hours(24),
        }
    }
}

/// A probing plan for one attacked nameserver IP.
#[derive(Clone, Debug, PartialEq)]
pub struct ProbePlan {
    pub victim: Ipv4Addr,
    pub ns: NsId,
    /// The (up to 50) domains chosen for probing.
    pub domains: Vec<DomainId>,
    /// First probe round.
    pub start: SimTime,
    /// Probing stops after this instant (attack end + 24 h; extended if
    /// later feed records arrive).
    pub until: SimTime,
}

impl ProbePlan {
    /// Build a plan from the first feed record for `victim`.
    pub fn from_first_record(
        infra: &Infra,
        victim: Ipv4Addr,
        record_window: Window,
        config: &TriggerConfig,
    ) -> Option<ProbePlan> {
        let ns = infra.ns_by_addr(victim)?;
        // Domains delegating to any NSSet containing the attacked server,
        // deterministically sampled up to the cap (stride sampling keeps
        // the choice stable and spread over the population).
        let mut domains: Vec<DomainId> = Vec::new();
        for &set in infra.nssets_of_ns(ns) {
            domains.extend(infra.domains_of_nsset(set).iter().copied());
        }
        domains.sort();
        domains.dedup();
        if domains.is_empty() {
            return None;
        }
        if domains.len() > config.domains_per_round {
            let step = domains.len() / config.domains_per_round;
            domains = domains
                .iter()
                .step_by(step.max(1))
                .take(config.domains_per_round)
                .copied()
                .collect();
        }
        // The feed record for window W lands after W closes; we trigger at
        // the start of the next window — comfortably inside the ≤10-minute
        // bound.
        let start = record_window.end();
        Some(ProbePlan {
            victim,
            ns,
            domains,
            start,
            until: record_window.end() + config.post_attack_tail,
        })
    }

    /// Build a plan from the first feed record for `victim`, honouring the
    /// record's actual *arrival* time at the platform.
    ///
    /// Under a healthy feed a window-`W` record arrives right after `W`
    /// closes and this is identical to [`ProbePlan::from_first_record`].
    /// When a sensor outage holds records back (backlog delivery), probing
    /// cannot start before the record exists: the first round snaps to the
    /// next 5-minute window boundary at or after `arrival`. Either way the
    /// gap between arrival and first probe is under one window — well
    /// inside the ≤10-minute trigger bound, by construction.
    pub fn from_record_with_arrival(
        infra: &Infra,
        victim: Ipv4Addr,
        record_window: Window,
        arrival: SimTime,
        config: &TriggerConfig,
    ) -> Option<ProbePlan> {
        let mut plan = ProbePlan::from_first_record(infra, victim, record_window, config)?;
        let aligned = SimTime(arrival.secs().div_ceil(WINDOW_SECS) * WINDOW_SECS);
        if aligned > plan.start {
            plan.start = aligned;
        }
        if plan.until < plan.start {
            plan.until = plan.start;
        }
        Some(plan)
    }

    /// Extend the plan when a later feed record shows the attack is still
    /// running.
    pub fn extend(&mut self, record_window: Window, config: &TriggerConfig) {
        let new_until = record_window.end() + config.post_attack_tail;
        if new_until > self.until {
            self.until = new_until;
        }
    }

    /// The probe instants of round `k` (0-based): each of the domains gets
    /// one probe, spread evenly across the 5-minute round (§8: ≈ one query
    /// every 6 seconds at the 50-domain cap).
    pub fn round_times(&self, k: u64) -> Vec<(DomainId, SimTime)> {
        let base = self.start + SimDuration::from_secs(k * WINDOW_SECS);
        let n = self.domains.len() as u64;
        self.domains
            .iter()
            .enumerate()
            .map(|(i, &d)| (d, base + SimDuration::from_secs(i as u64 * WINDOW_SECS / n.max(1))))
            .collect()
    }

    /// Number of complete rounds until `until`.
    pub fn rounds(&self) -> u64 {
        (self.until.secs().saturating_sub(self.start.secs())) / WINDOW_SECS
    }

    /// Trigger delay relative to the record's window start (must satisfy
    /// the ≤10-minute bound).
    pub fn trigger_delay(&self, record_window: Window) -> SimDuration {
        self.start - record_window.start()
    }

    /// Trigger delay relative to when the triggering record actually
    /// *arrived*. This is the bound the platform controls: a record held
    /// back by a feed gap cannot trigger probing before it exists, but
    /// once delivered the first round must follow within ten minutes.
    pub fn trigger_delay_from_arrival(&self, arrival: SimTime) -> SimDuration {
        if self.start > arrival {
            self.start - arrival
        } else {
            SimDuration::ZERO
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dnssim::Deployment;
    use netbase::Asn;

    fn world(domains: u32) -> (Infra, Ipv4Addr) {
        let mut infra = Infra::new();
        let addr: Ipv4Addr = "194.67.7.53".parse().unwrap();
        let ns = infra.add_nameserver(
            "ns.rzd.ru".parse().unwrap(),
            addr,
            Asn(2854),
            Deployment::Unicast,
            20_000.0,
            300.0,
            50.0,
        );
        let set = infra.intern_nsset(vec![ns]);
        for i in 0..domains {
            infra.add_domain(format!("svc{i}.rzd.ru").parse().unwrap(), set);
        }
        (infra, addr)
    }

    #[test]
    fn plan_caps_at_50_domains() {
        let (infra, addr) = world(500);
        let plan =
            ProbePlan::from_first_record(&infra, addr, Window(100), &TriggerConfig::default())
                .unwrap();
        assert_eq!(plan.domains.len(), 50);
        // Deterministic choice.
        let plan2 =
            ProbePlan::from_first_record(&infra, addr, Window(100), &TriggerConfig::default())
                .unwrap();
        assert_eq!(plan.domains, plan2.domains);
    }

    #[test]
    fn small_population_probed_entirely() {
        let (infra, addr) = world(7);
        let plan = ProbePlan::from_first_record(&infra, addr, Window(0), &TriggerConfig::default())
            .unwrap();
        assert_eq!(plan.domains.len(), 7);
    }

    #[test]
    fn trigger_delay_within_ten_minutes() {
        let (infra, addr) = world(100);
        let w = Window(42);
        let plan =
            ProbePlan::from_first_record(&infra, addr, w, &TriggerConfig::default()).unwrap();
        assert!(plan.trigger_delay(w) <= SimDuration::from_mins(10));
        assert_eq!(plan.start, w.end());
    }

    #[test]
    fn on_time_arrival_matches_plain_trigger() {
        let (infra, addr) = world(100);
        let cfg = TriggerConfig::default();
        let w = Window(42);
        let plain = ProbePlan::from_first_record(&infra, addr, w, &cfg).unwrap();
        let timed = ProbePlan::from_record_with_arrival(&infra, addr, w, w.end(), &cfg).unwrap();
        assert_eq!(plain, timed, "healthy feed: arrival at window close changes nothing");
    }

    #[test]
    fn late_arrival_snaps_to_next_window_within_bound() {
        let (infra, addr) = world(100);
        let cfg = TriggerConfig::default();
        let w = Window(42);
        // The record is held back 3 hours by a feed gap and lands 17 s
        // past a window boundary.
        let arrival = w.end() + SimDuration::from_hours(3) + SimDuration::from_secs(17);
        let plan = ProbePlan::from_record_with_arrival(&infra, addr, w, arrival, &cfg).unwrap();
        assert!(plan.start >= arrival, "cannot probe before the record exists");
        assert_eq!(plan.start.secs() % WINDOW_SECS, 0, "rounds stay window-aligned");
        assert!(
            plan.trigger_delay_from_arrival(arrival) <= cfg.max_trigger_delay,
            "≤10-minute bound holds relative to arrival"
        );
        // `until` keeps its attack-anchored tail but never precedes start.
        assert!(plan.until >= plan.start);
    }

    #[test]
    fn non_nameserver_victim_yields_no_plan() {
        let (infra, _) = world(10);
        assert!(ProbePlan::from_first_record(
            &infra,
            "9.9.9.200".parse().unwrap(),
            Window(0),
            &TriggerConfig::default()
        )
        .is_none());
    }

    #[test]
    fn probes_spread_across_round() {
        let (infra, addr) = world(500);
        let plan = ProbePlan::from_first_record(&infra, addr, Window(0), &TriggerConfig::default())
            .unwrap();
        let times = plan.round_times(0);
        assert_eq!(times.len(), 50);
        // First probe at round start, spacing = 300/50 = 6 s.
        assert_eq!(times[0].1, plan.start);
        assert_eq!(times[1].1.secs() - times[0].1.secs(), 6);
        let last = times.last().unwrap().1;
        assert!(last < plan.start + SimDuration::from_secs(WINDOW_SECS));
        // Round 3 shifts by 15 minutes.
        let r3 = plan.round_times(3);
        assert_eq!(r3[0].1.secs() - times[0].1.secs(), 900);
    }

    #[test]
    fn extension_prolongs_tail() {
        let (infra, addr) = world(10);
        let cfg = TriggerConfig::default();
        let mut plan = ProbePlan::from_first_record(&infra, addr, Window(0), &cfg).unwrap();
        let until0 = plan.until;
        plan.extend(Window(12), &cfg); // attack still on an hour later
        assert_eq!(plan.until, Window(12).end() + SimDuration::from_hours(24));
        assert!(plan.until > until0);
        // Older record does not shrink.
        plan.extend(Window(2), &cfg);
        assert_eq!(plan.until, Window(12).end() + SimDuration::from_hours(24));
        // 24h tail + 1h of attack ≈ 300 rounds.
        assert_eq!(plan.rounds(), (Window(12).end().secs() + 24 * 3600 - plan.start.secs()) / 300);
    }
}
