//! The streaming reactive pipeline: feed records in, probe reports out.
//!
//! The trigger path runs on `streamproc` (the Kafka/Spark substitute): a
//! feed topic feeds a join/trigger stage that maintains one [`ProbePlan`]
//! per victim, extending it while the attack stays visible. The executor
//! then replays the plans over virtual time against the offered-load book.

use crate::plan::{ProbePlan, TriggerConfig};
use crate::probe::{probe_all_ns, DomainProbe};
use dnssim::{Infra, LoadBook};
use simcore::rng::RngFactory;
use simcore::time::SimTime;
use std::collections::HashMap;
use std::net::Ipv4Addr;
use std::sync::Arc;
use streamproc::{sink_to_vec, spawn_stage, Topic};
use telescope::RsdosRecord;

/// Summary of one probe round (one 5-minute window of one plan).
#[derive(Clone, Debug, PartialEq)]
pub struct RoundSummary {
    pub round: u64,
    pub at: SimTime,
    pub probes: u64,
    /// Domains that resolved via at least one nameserver.
    pub resolvable: u64,
    /// Mean best-RTT over resolvable domains (ms).
    pub avg_best_rtt_ms: Option<f64>,
    /// Mean fraction of nameservers responsive per domain.
    pub responsive_ns_share: f64,
}

impl RoundSummary {
    pub fn fully_unresolvable(&self) -> bool {
        self.probes > 0 && self.resolvable == 0
    }
}

/// The full probing record for one attacked nameserver IP.
#[derive(Clone, Debug)]
pub struct ReactiveReport {
    pub plan: ProbePlan,
    pub rounds: Vec<RoundSummary>,
}

impl ReactiveReport {
    /// Number of rounds in which the probed domains were completely
    /// unresolvable (the mil.ru condition).
    pub fn unresolvable_rounds(&self) -> usize {
        self.rounds.iter().filter(|r| r.fully_unresolvable()).count()
    }

    /// First time after `after` at which a majority of domains resolved —
    /// the recovery instant the RDZ case study reports.
    pub fn recovery_after(&self, after: SimTime) -> Option<SimTime> {
        self.rounds
            .iter()
            .find(|r| r.at >= after && r.probes > 0 && r.resolvable * 2 > r.probes)
            .map(|r| r.at)
    }
}

/// The reactive platform.
#[derive(Default)]
pub struct ReactivePlatform {
    pub config: TriggerConfig,
    /// Trace attribution (see `obs::trace`): the feed scope this platform
    /// consumes (`milru`, `rdz`, …). `None` disables trace emission —
    /// the default, so unscoped constructions behave exactly as before.
    pub trace_scope: Option<&'static str>,
    /// Victim → episode lookup attributing feed records and probe rounds
    /// to `scope/idx` causal ids; only consulted when `trace_scope` is set.
    pub episode_index: Option<Arc<telescope::EpisodeIndex>>,
}

enum FeedMsg {
    /// A record plus its actual arrival instant at the platform (a
    /// healthy feed delivers window `W`'s record as `W` closes; backlog
    /// delivery after a feed gap arrives late).
    Arrived(RsdosRecord, SimTime),
    Flush,
}

impl ReactivePlatform {
    /// Build probe plans from a stream of feed records using the
    /// streaming framework: one trigger stage keyed by victim IP. Models a
    /// healthy feed: each window's record arrives the moment the window
    /// closes.
    pub fn build_plans(&self, infra: &Arc<Infra>, records: &[RsdosRecord]) -> Vec<ProbePlan> {
        let arrivals: Vec<(RsdosRecord, SimTime)> =
            records.iter().map(|r| (r.clone(), r.window.end())).collect();
        self.build_plans_with_arrivals(infra, &arrivals)
    }

    /// [`ReactivePlatform::build_plans`] for a possibly degraded feed:
    /// each record carries the instant it actually reached the platform
    /// (e.g. the output of [`telescope::FeedGapModel::apply`], which
    /// delivers gapped windows as a backlog at the gap's end). Records
    /// must be given in arrival order. Each victim's plan triggers from
    /// its first *arrived* record and starts probing at the next window
    /// boundary — the ≤10-minute trigger bound holds relative to arrival
    /// even when the record itself is hours late.
    pub fn build_plans_with_arrivals(
        &self,
        infra: &Arc<Infra>,
        arrivals: &[(RsdosRecord, SimTime)],
    ) -> Vec<ProbePlan> {
        let msgs: Topic<Arc<FeedMsg>> = Topic::new("feed-msgs");
        let plans_topic: Topic<ProbePlan> = Topic::new("probe-plans");

        // Trigger stage: maintain per-victim plans; emit them on flush.
        let infra2 = Arc::clone(infra);
        let config = self.config;
        let trace_scope = self.trace_scope;
        let episode_index = self.episode_index.clone();
        let mut open: HashMap<Ipv4Addr, ProbePlan> = HashMap::new();
        let trigger = spawn_stage(
            "trigger",
            msgs.subscribe(),
            plans_topic.clone(),
            move |m: Arc<FeedMsg>| match &*m {
                FeedMsg::Arrived(r, at) => {
                    // Causal tracing (single-threaded stage over a fixed
                    // stream order → deterministic event stream).
                    if let Some(scope) = trace_scope {
                        let ep =
                            episode_index.as_ref().and_then(|ix| ix.lookup(r.victim, r.window));
                        obs::trace::emit(
                            obs::EventKind::FeedRecordArrived,
                            scope,
                            ep,
                            Some(at.secs()),
                            format!("victim {} window {}", r.victim, r.window.0),
                            None,
                        );
                        // Backlog delivery after a feed gap: the record is
                        // at least one whole window late.
                        let delay_windows = at.secs().saturating_sub(r.window.end().secs())
                            / simcore::time::WINDOW_SECS;
                        if delay_windows > 0 {
                            obs::trace::emit(
                                obs::EventKind::FeedGap,
                                scope,
                                ep,
                                Some(at.secs()),
                                format!("victim {} window {} delivered late", r.victim, r.window.0),
                                Some(delay_windows),
                            );
                        }
                    }
                    match open.get_mut(&r.victim) {
                        Some(plan) => plan.extend(r.window, &config),
                        None => {
                            if let Some(plan) = ProbePlan::from_record_with_arrival(
                                &infra2, r.victim, r.window, *at, &config,
                            ) {
                                // Out-of-band: worst observed trigger
                                // latency vs. the ≤10-minute bound, gated
                                // in CI. Stream order is fixed, so the
                                // maximum is deterministic.
                                let delay = plan.trigger_delay_from_arrival(*at).secs();
                                obs::gauge("reactive.trigger_latency_max_secs").record_max(delay);
                                if let Some(scope) = trace_scope {
                                    let ep = episode_index
                                        .as_ref()
                                        .and_then(|ix| ix.lookup(r.victim, r.window));
                                    obs::trace::emit(
                                        obs::EventKind::TriggerFired,
                                        scope,
                                        ep,
                                        Some(plan.start.secs()),
                                        format!("victim {}", r.victim),
                                        Some(delay),
                                    );
                                    obs::trace::emit(
                                        obs::EventKind::ProbeScheduled,
                                        scope,
                                        ep,
                                        Some(plan.start.secs()),
                                        format!("victim {}", r.victim),
                                        Some(plan.domains.len() as u64),
                                    );
                                }
                                open.insert(r.victim, plan);
                            }
                        }
                    }
                    vec![]
                }
                FeedMsg::Flush => {
                    let mut plans: Vec<ProbePlan> = open.drain().map(|(_, p)| p).collect();
                    plans.sort_by_key(|p| (p.start, u32::from(p.victim)));
                    obs::counter("reactive.plans").add(plans.len() as u64);
                    plans
                }
            },
        );
        let sink = sink_to_vec(plans_topic.subscribe());

        for (r, at) in arrivals {
            msgs.publish(Arc::new(FeedMsg::Arrived(r.clone(), *at)));
        }
        // End-of-feed: the flush marker travels the same ordered channel
        // the records took, so the trigger stage emits its plans last.
        msgs.publish(Arc::new(FeedMsg::Flush));
        msgs.close();
        trigger.join();
        sink.join().expect("plan sink")
    }

    /// [`ReactivePlatform::build_plans_with_arrivals`] with the feed
    /// transported over the chaos layer: records ride a fault-injected
    /// stream (drops, duplicates, reordering) that the supervised
    /// transport repairs before the trigger stage sees them. Because the
    /// repaired batch is exactly the original (records keep their original
    /// arrival stamps), the resulting plans are identical to a fault-free
    /// run — the returned [`streamproc::SuperviseStats`] records how much
    /// repair that took.
    pub fn build_plans_chaos(
        &self,
        infra: &Arc<Infra>,
        arrivals: &[(RsdosRecord, SimTime)],
        fault: Option<&streamproc::FaultPlan>,
        supervisor: &streamproc::SupervisorConfig,
    ) -> (Vec<ProbePlan>, streamproc::SuperviseStats) {
        let (restored, stats) =
            streamproc::reliable_stream("reactive-feed", arrivals.to_vec(), fault, supervisor);
        (self.build_plans_with_arrivals(infra, &restored), stats)
    }

    /// Execute the plans over virtual time. `max_rounds` bounds each
    /// plan's execution (tests cap it; production uses `u64::MAX`).
    pub fn execute(
        &self,
        infra: &Infra,
        plans: &[ProbePlan],
        loads: &LoadBook,
        rngs: &RngFactory,
        max_rounds: u64,
    ) -> Vec<ReactiveReport> {
        plans
            .iter()
            .map(|plan| {
                let trace = self.plan_trace(plan);
                let mut rng = rngs.stream_indexed("reactive-probe", u32::from(plan.victim) as u64);
                let rounds = (0..plan.rounds().min(max_rounds))
                    .map(|k| {
                        let probes: Vec<DomainProbe> = plan
                            .round_times(k)
                            .into_iter()
                            .map(|(d, at)| probe_all_ns(infra, d, at, loads, &mut rng))
                            .collect();
                        summarize_round(k, plan, &probes, trace)
                    })
                    .collect();
                ReactiveReport { plan: plan.clone(), rounds }
            })
            .collect()
    }

    /// Trace attribution of one plan's probe rounds: the platform's scope
    /// plus the episode the plan's triggering victim/window belongs to.
    fn plan_trace(&self, plan: &ProbePlan) -> Option<(&'static str, Option<u64>)> {
        self.trace_scope.map(|scope| {
            (
                scope,
                self.episode_index
                    .as_ref()
                    .and_then(|ix| ix.lookup(plan.victim, plan.start.window())),
            )
        })
    }

    /// Execute plans *chronologically interleaved* on a discrete-event
    /// queue: probes from all plans fire in global time order, exactly as
    /// the real platform's single prober would emit them (and as its
    /// ethics budget is accounted). Produces the same per-plan summaries
    /// as [`ReactivePlatform::execute`].
    pub fn execute_chronological(
        &self,
        infra: &Infra,
        plans: &[ProbePlan],
        loads: &LoadBook,
        rngs: &RngFactory,
        max_rounds: u64,
    ) -> Vec<ReactiveReport> {
        use simcore::events::EventQueue;
        // Event = (plan index, round index); rounds re-arm themselves.
        let mut q: EventQueue<(usize, u64)> = EventQueue::new();
        for (i, plan) in plans.iter().enumerate() {
            if plan.rounds().min(max_rounds) > 0 {
                q.schedule(plan.start, (i, 0));
            }
        }
        let mut rngs_per_plan: Vec<_> = plans
            .iter()
            .map(|p| rngs.stream_indexed("reactive-probe", u32::from(p.victim) as u64))
            .collect();
        let mut rounds_per_plan: Vec<Vec<RoundSummary>> =
            plans.iter().map(|_| Vec::new()).collect();
        while let Some((at, (i, k))) = q.pop() {
            let plan = &plans[i];
            let probes: Vec<DomainProbe> = plan
                .round_times(k)
                .into_iter()
                .map(|(d, t)| probe_all_ns(infra, d, t, loads, &mut rngs_per_plan[i]))
                .collect();
            rounds_per_plan[i].push(summarize_round(k, plan, &probes, self.plan_trace(plan)));
            let next = k + 1;
            if next < plan.rounds().min(max_rounds) {
                q.schedule(
                    at + simcore::time::SimDuration::from_secs(simcore::time::WINDOW_SECS),
                    (i, next),
                );
            }
        }
        plans
            .iter()
            .zip(rounds_per_plan)
            .map(|(plan, rounds)| ReactiveReport { plan: plan.clone(), rounds })
            .collect()
    }

    /// Convenience: trigger + execute in one call.
    pub fn run(
        &self,
        infra: &Arc<Infra>,
        records: &[RsdosRecord],
        loads: &LoadBook,
        rngs: &RngFactory,
        max_rounds: u64,
    ) -> Vec<ReactiveReport> {
        let plans = self.build_plans(infra, records);
        self.execute(infra, &plans, loads, rngs, max_rounds)
    }
}

fn summarize_round(
    k: u64,
    plan: &ProbePlan,
    probes: &[DomainProbe],
    trace: Option<(&'static str, Option<u64>)>,
) -> RoundSummary {
    // Probe-budget accounting: both executors summarize through here, so
    // the counters cover every round however the plans were replayed. The
    // per-round maximum is gated in CI against the 50-domain budget.
    obs::counter("reactive.probe_rounds").incr();
    obs::counter("reactive.probes").add(probes.len() as u64);
    obs::gauge("reactive.probe_round_max_probes").record_max(probes.len() as u64);
    if let Some((scope, ep)) = trace {
        obs::trace::emit(
            obs::EventKind::ProbeCompleted,
            scope,
            ep,
            Some(
                (plan.start
                    + simcore::time::SimDuration::from_secs(k * simcore::time::WINDOW_SECS))
                .secs(),
            ),
            format!("victim {} round {k}", plan.victim),
            Some(probes.len() as u64),
        );
    }
    let resolvable = probes.iter().filter(|p| p.resolvable()).count() as u64;
    let best: Vec<f64> = probes.iter().filter_map(|p| p.best_rtt_ms()).collect();
    let avg_best =
        if best.is_empty() { None } else { Some(best.iter().sum::<f64>() / best.len() as f64) };
    let ns_share = if probes.is_empty() {
        0.0
    } else {
        probes
            .iter()
            .map(|p| {
                if p.outcomes.is_empty() {
                    0.0
                } else {
                    p.responsive_ns() as f64 / p.outcomes.len() as f64
                }
            })
            .sum::<f64>()
            / probes.len() as f64
    };
    RoundSummary {
        round: k,
        at: plan.start + simcore::time::SimDuration::from_secs(k * simcore::time::WINDOW_SECS),
        probes: probes.len() as u64,
        resolvable,
        avg_best_rtt_ms: avg_best,
        responsive_ns_share: ns_share,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use attack::Protocol;
    use dnssim::Deployment;
    use netbase::Asn;
    use simcore::time::Window;

    fn world() -> (Arc<Infra>, Vec<Ipv4Addr>) {
        let mut infra = Infra::new();
        let addrs: Vec<Ipv4Addr> =
            (1..=3).map(|i| format!("188.128.110.{i}").parse().unwrap()).collect();
        let ids: Vec<_> = addrs
            .iter()
            .enumerate()
            .map(|(i, &a)| {
                infra.add_nameserver(
                    format!("ns{i}.mil.ru").parse().unwrap(),
                    a,
                    Asn(8342),
                    Deployment::Unicast,
                    30_000.0,
                    500.0,
                    45.0,
                )
            })
            .collect();
        let set = infra.intern_nsset(ids);
        for i in 0..120 {
            infra.add_domain(format!("svc{i}.mil.ru").parse().unwrap(), set);
        }
        (Arc::new(infra), addrs)
    }

    fn record(victim: Ipv4Addr, w: u64) -> RsdosRecord {
        RsdosRecord {
            window: Window(w),
            victim,
            slash16s: 50,
            protocol: Protocol::Tcp,
            first_port: 53,
            unique_ports: 1,
            max_ppm: 5_000.0,
            packets: 25_000,
        }
    }

    #[test]
    fn streaming_trigger_builds_one_plan_per_victim() {
        let (infra, addrs) = world();
        let platform = ReactivePlatform::default();
        let records = vec![
            record(addrs[0], 100),
            record(addrs[0], 101), // extension, not a new plan
            record(addrs[1], 102),
            record("9.9.9.99".parse().unwrap(), 100), // not a nameserver
        ];
        let plans = platform.build_plans(&infra, &records);
        assert_eq!(plans.len(), 2);
        assert_eq!(plans[0].victim, addrs[0]);
        // Extension moved `until` to record 101's window end + 24 h.
        assert_eq!(plans[0].until, Window(101).end() + simcore::time::SimDuration::from_hours(24));
    }

    #[test]
    fn execution_detects_blackout_and_recovery() {
        let (infra, addrs) = world();
        let platform = ReactivePlatform::default();
        // Attack saturates all three servers for windows 100..=105.
        let mut loads = LoadBook::new();
        for w in 100..=105u64 {
            for a in &addrs {
                loads.add(*a, Window(w), 30_000_000.0);
            }
        }
        let records: Vec<RsdosRecord> =
            (100..=105).flat_map(|w| addrs.iter().map(move |&a| record(a, w))).collect();
        let reports = platform.run(&infra, &records, &loads, &RngFactory::new(3), 12);
        assert_eq!(reports.len(), 3);
        let r = &reports[0];
        // Probing starts at window 101 (trigger after first record) — the
        // attack still runs through 105, so the first ~5 rounds black out.
        assert!(r.unresolvable_rounds() >= 3, "blackout rounds {}", r.unresolvable_rounds());
        // After the attack ends the domains recover.
        let recovery = r.recovery_after(Window(106).start()).expect("recovers");
        assert!(recovery >= Window(106).start());
        // Probes respect the 50-domain cap.
        assert!(r.rounds[0].probes <= 50);
    }

    #[test]
    fn healthy_execution_resolves_everything() {
        let (infra, addrs) = world();
        let platform = ReactivePlatform::default();
        let records = vec![record(addrs[2], 10)];
        let reports = platform.run(&infra, &records, &LoadBook::new(), &RngFactory::new(4), 3);
        let r = &reports[0];
        assert_eq!(r.unresolvable_rounds(), 0);
        for round in &r.rounds {
            assert_eq!(round.resolvable, round.probes);
            assert!(round.responsive_ns_share > 0.99);
            assert!(round.avg_best_rtt_ms.unwrap() < 100.0);
        }
    }

    #[test]
    fn chronological_execution_matches_sequential() {
        // Same plans, same RNG streams → the event-queue executor and the
        // plain per-plan loop must produce identical reports.
        let (infra, addrs) = world();
        let platform = ReactivePlatform::default();
        let records: Vec<RsdosRecord> = addrs.iter().map(|&a| record(a, 10)).collect();
        let plans = platform.build_plans(&infra, &records);
        let rngs = RngFactory::new(12);
        let seq = platform.execute(&infra, &plans, &LoadBook::new(), &rngs, 4);
        let chrono = platform.execute_chronological(&infra, &plans, &LoadBook::new(), &rngs, 4);
        assert_eq!(seq.len(), chrono.len());
        for (a, b) in seq.iter().zip(&chrono) {
            assert_eq!(a.plan, b.plan);
            assert_eq!(a.rounds, b.rounds);
        }
    }

    #[test]
    fn degraded_feed_triggers_within_ten_minutes() {
        use telescope::FeedGapModel;
        let (infra, addrs) = world();
        let platform = ReactivePlatform::default();
        // Every day has a gap of up to 4 hours; a quarter of in-gap
        // records are lost, the rest are delivered late as a backlog.
        let gaps = FeedGapModel::from_seed(13, 1.0, 48, 0.25);
        let records: Vec<RsdosRecord> =
            (0..2_000u64).flat_map(|w| addrs.iter().map(move |&a| record(a, w))).collect();
        let (arrivals, lost) = gaps.apply(&records);
        assert!(lost > 0, "the gap model actually degrades this feed");
        assert!(arrivals.iter().any(|(r, at)| *at > r.window.end()), "some records arrive late");
        let plans = platform.build_plans_with_arrivals(&infra, &arrivals);
        assert_eq!(plans.len(), addrs.len());
        let cfg = TriggerConfig::default();
        for plan in &plans {
            // The plan was created by the victim's first *arrived* record.
            let (_, arrival) =
                arrivals.iter().find(|(r, _)| r.victim == plan.victim).expect("triggering record");
            assert!(
                plan.trigger_delay_from_arrival(*arrival) <= cfg.max_trigger_delay,
                "victim {}: probing follows arrival within 10 min",
                plan.victim
            );
        }
    }

    #[test]
    fn probe_budget_respected_while_degraded() {
        use simcore::time::{SimDuration, WINDOW_SECS};
        use telescope::FeedGapModel;
        let (infra, addrs) = world();
        let platform = ReactivePlatform::default();
        let gaps = FeedGapModel::from_seed(13, 1.0, 48, 0.25);
        let records: Vec<RsdosRecord> =
            (100..160u64).flat_map(|w| addrs.iter().map(move |&a| record(a, w))).collect();
        let (arrivals, _) = gaps.apply(&records);
        let plans = platform.build_plans_with_arrivals(&infra, &arrivals);
        // Saturating attack: degraded feed AND degraded infrastructure.
        let mut loads = LoadBook::new();
        for w in 100..160u64 {
            for a in &addrs {
                loads.add(*a, Window(w), 30_000_000.0);
            }
        }
        let reports = platform.execute(&infra, &plans, &loads, &RngFactory::new(9), 6);
        assert!(!reports.is_empty());
        for report in &reports {
            for (k, round) in report.rounds.iter().enumerate() {
                assert!(round.probes <= 50, "50-domain cap holds under degradation");
                // All of round k's probes fall inside its own 5-minute
                // window: the ethics budget (≈1 query/6 s) is never
                // front-loaded to catch up after a gap.
                let times = report.plan.round_times(k as u64);
                let base = report.plan.start + SimDuration::from_secs(k as u64 * WINDOW_SECS);
                for (_, t) in &times {
                    assert!(*t >= base && *t < base + SimDuration::from_secs(WINDOW_SECS));
                }
            }
        }
    }

    #[test]
    fn chaos_transport_never_changes_plans() {
        use streamproc::{ChaosConfig, FaultPlan, SupervisorConfig};
        use telescope::FeedGapModel;
        let (infra, addrs) = world();
        let platform = ReactivePlatform::default();
        let gaps = FeedGapModel::from_seed(21, 0.7, 24, 0.2);
        let records: Vec<RsdosRecord> =
            (0..600u64).flat_map(|w| addrs.iter().map(move |&a| record(a, w))).collect();
        let (arrivals, _) = gaps.apply(&records);
        let clean = platform.build_plans_with_arrivals(&infra, &arrivals);
        let sup = SupervisorConfig::default();
        // Fault-injected transport repairs to the identical plan set.
        let fault = FaultPlan::from_seed(77, "reactive-feed", ChaosConfig::CALIBRATED);
        let (chaotic, stats) = platform.build_plans_chaos(&infra, &arrivals, Some(&fault), &sup);
        assert_eq!(clean, chaotic, "repaired transport → identical plans");
        assert!(
            stats.dropped + stats.duplicated + stats.reordered > 0,
            "faults were actually injected: {stats:?}"
        );
        // No fault plan → clean stats, same plans.
        let (plain, clean_stats) = platform.build_plans_chaos(&infra, &arrivals, None, &sup);
        assert_eq!(clean, plain);
        assert!(clean_stats.is_clean());
    }

    #[test]
    fn deterministic_reports() {
        let (infra, addrs) = world();
        let platform = ReactivePlatform::default();
        let records = vec![record(addrs[0], 10)];
        let a = platform.run(&infra, &records, &LoadBook::new(), &RngFactory::new(5), 2);
        let b = platform.run(&infra, &records, &LoadBook::new(), &RngFactory::new(5), 2);
        assert_eq!(a[0].rounds, b[0].rounds);
    }
}
