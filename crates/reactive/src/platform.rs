//! The streaming reactive pipeline: feed records in, probe reports out.
//!
//! The trigger path runs on `streamproc` (the Kafka/Spark substitute): a
//! feed topic feeds a join/trigger stage that maintains one [`ProbePlan`]
//! per victim, extending it while the attack stays visible. The executor
//! then replays the plans over virtual time against the offered-load book.

use crate::plan::{ProbePlan, TriggerConfig};
use crate::probe::{probe_all_ns, DomainProbe};
use dnssim::{Infra, LoadBook};
use simcore::rng::RngFactory;
use simcore::time::SimTime;
use std::collections::HashMap;
use std::net::Ipv4Addr;
use std::sync::Arc;
use streamproc::{sink_to_vec, spawn_stage, Topic};
use telescope::RsdosRecord;

/// Summary of one probe round (one 5-minute window of one plan).
#[derive(Clone, Debug, PartialEq)]
pub struct RoundSummary {
    pub round: u64,
    pub at: SimTime,
    pub probes: u64,
    /// Domains that resolved via at least one nameserver.
    pub resolvable: u64,
    /// Mean best-RTT over resolvable domains (ms).
    pub avg_best_rtt_ms: Option<f64>,
    /// Mean fraction of nameservers responsive per domain.
    pub responsive_ns_share: f64,
}

impl RoundSummary {
    pub fn fully_unresolvable(&self) -> bool {
        self.probes > 0 && self.resolvable == 0
    }
}

/// The full probing record for one attacked nameserver IP.
#[derive(Clone, Debug)]
pub struct ReactiveReport {
    pub plan: ProbePlan,
    pub rounds: Vec<RoundSummary>,
}

impl ReactiveReport {
    /// Number of rounds in which the probed domains were completely
    /// unresolvable (the mil.ru condition).
    pub fn unresolvable_rounds(&self) -> usize {
        self.rounds.iter().filter(|r| r.fully_unresolvable()).count()
    }

    /// First time after `after` at which a majority of domains resolved —
    /// the recovery instant the RDZ case study reports.
    pub fn recovery_after(&self, after: SimTime) -> Option<SimTime> {
        self.rounds
            .iter()
            .find(|r| r.at >= after && r.probes > 0 && r.resolvable * 2 > r.probes)
            .map(|r| r.at)
    }
}

/// The reactive platform.
#[derive(Default)]
pub struct ReactivePlatform {
    pub config: TriggerConfig,
}


enum FeedMsg {
    Record(RsdosRecord),
    Flush,
}

impl ReactivePlatform {
    /// Build probe plans from a stream of feed records using the
    /// streaming framework: one trigger stage keyed by victim IP.
    pub fn build_plans(&self, infra: &Arc<Infra>, records: &[RsdosRecord]) -> Vec<ProbePlan> {
        let msgs: Topic<Arc<FeedMsg>> = Topic::new("feed-msgs");
        let plans_topic: Topic<ProbePlan> = Topic::new("probe-plans");

        // Trigger stage: maintain per-victim plans; emit them on flush.
        let infra2 = Arc::clone(infra);
        let config = self.config;
        let mut open: HashMap<Ipv4Addr, ProbePlan> = HashMap::new();
        let trigger = spawn_stage(
            "trigger",
            msgs.subscribe(),
            plans_topic.clone(),
            move |m: Arc<FeedMsg>| match &*m {
                FeedMsg::Record(r) => {
                    match open.get_mut(&r.victim) {
                        Some(plan) => plan.extend(r.window, &config),
                        None => {
                            if let Some(plan) =
                                ProbePlan::from_first_record(&infra2, r.victim, r.window, &config)
                            {
                                open.insert(r.victim, plan);
                            }
                        }
                    }
                    vec![]
                }
                FeedMsg::Flush => {
                    let mut plans: Vec<ProbePlan> = open.drain().map(|(_, p)| p).collect();
                    plans.sort_by_key(|p| (p.start, u32::from(p.victim)));
                    plans
                }
            },
        );
        let sink = sink_to_vec(plans_topic.subscribe());

        for r in records {
            msgs.publish(Arc::new(FeedMsg::Record(r.clone())));
        }
        // End-of-feed: the flush marker travels the same ordered channel
        // the records took, so the trigger stage emits its plans last.
        msgs.publish(Arc::new(FeedMsg::Flush));
        msgs.close();
        trigger.join();
        sink.join().expect("plan sink")
    }

    /// Execute the plans over virtual time. `max_rounds` bounds each
    /// plan's execution (tests cap it; production uses `u64::MAX`).
    pub fn execute(
        &self,
        infra: &Infra,
        plans: &[ProbePlan],
        loads: &LoadBook,
        rngs: &RngFactory,
        max_rounds: u64,
    ) -> Vec<ReactiveReport> {
        plans
            .iter()
            .map(|plan| {
                let mut rng = rngs.stream_indexed("reactive-probe", u32::from(plan.victim) as u64);
                let rounds = (0..plan.rounds().min(max_rounds))
                    .map(|k| {
                        let probes: Vec<DomainProbe> = plan
                            .round_times(k)
                            .into_iter()
                            .map(|(d, at)| probe_all_ns(infra, d, at, loads, &mut rng))
                            .collect();
                        summarize_round(k, plan, &probes)
                    })
                    .collect();
                ReactiveReport { plan: plan.clone(), rounds }
            })
            .collect()
    }

    /// Execute plans *chronologically interleaved* on a discrete-event
    /// queue: probes from all plans fire in global time order, exactly as
    /// the real platform's single prober would emit them (and as its
    /// ethics budget is accounted). Produces the same per-plan summaries
    /// as [`ReactivePlatform::execute`].
    pub fn execute_chronological(
        &self,
        infra: &Infra,
        plans: &[ProbePlan],
        loads: &LoadBook,
        rngs: &RngFactory,
        max_rounds: u64,
    ) -> Vec<ReactiveReport> {
        use simcore::events::EventQueue;
        // Event = (plan index, round index); rounds re-arm themselves.
        let mut q: EventQueue<(usize, u64)> = EventQueue::new();
        for (i, plan) in plans.iter().enumerate() {
            if plan.rounds().min(max_rounds) > 0 {
                q.schedule(plan.start, (i, 0));
            }
        }
        let mut rngs_per_plan: Vec<_> = plans
            .iter()
            .map(|p| rngs.stream_indexed("reactive-probe", u32::from(p.victim) as u64))
            .collect();
        let mut rounds_per_plan: Vec<Vec<RoundSummary>> =
            plans.iter().map(|_| Vec::new()).collect();
        while let Some((at, (i, k))) = q.pop() {
            let plan = &plans[i];
            let probes: Vec<DomainProbe> = plan
                .round_times(k)
                .into_iter()
                .map(|(d, t)| probe_all_ns(infra, d, t, loads, &mut rngs_per_plan[i]))
                .collect();
            rounds_per_plan[i].push(summarize_round(k, plan, &probes));
            let next = k + 1;
            if next < plan.rounds().min(max_rounds) {
                q.schedule(
                    at + simcore::time::SimDuration::from_secs(simcore::time::WINDOW_SECS),
                    (i, next),
                );
            }
        }
        plans
            .iter()
            .zip(rounds_per_plan)
            .map(|(plan, rounds)| ReactiveReport { plan: plan.clone(), rounds })
            .collect()
    }

    /// Convenience: trigger + execute in one call.
    pub fn run(
        &self,
        infra: &Arc<Infra>,
        records: &[RsdosRecord],
        loads: &LoadBook,
        rngs: &RngFactory,
        max_rounds: u64,
    ) -> Vec<ReactiveReport> {
        let plans = self.build_plans(infra, records);
        self.execute(infra, &plans, loads, rngs, max_rounds)
    }
}

fn summarize_round(k: u64, plan: &ProbePlan, probes: &[DomainProbe]) -> RoundSummary {
    let resolvable = probes.iter().filter(|p| p.resolvable()).count() as u64;
    let best: Vec<f64> = probes.iter().filter_map(|p| p.best_rtt_ms()).collect();
    let avg_best =
        if best.is_empty() { None } else { Some(best.iter().sum::<f64>() / best.len() as f64) };
    let ns_share = if probes.is_empty() {
        0.0
    } else {
        probes
            .iter()
            .map(|p| {
                if p.outcomes.is_empty() {
                    0.0
                } else {
                    p.responsive_ns() as f64 / p.outcomes.len() as f64
                }
            })
            .sum::<f64>()
            / probes.len() as f64
    };
    RoundSummary {
        round: k,
        at: plan.start + simcore::time::SimDuration::from_secs(k * simcore::time::WINDOW_SECS),
        probes: probes.len() as u64,
        resolvable,
        avg_best_rtt_ms: avg_best,
        responsive_ns_share: ns_share,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use attack::Protocol;
    use simcore::time::Window;
    use dnssim::Deployment;
    use netbase::Asn;

    fn world() -> (Arc<Infra>, Vec<Ipv4Addr>) {
        let mut infra = Infra::new();
        let addrs: Vec<Ipv4Addr> = (1..=3)
            .map(|i| format!("188.128.110.{i}").parse().unwrap())
            .collect();
        let ids: Vec<_> = addrs
            .iter()
            .enumerate()
            .map(|(i, &a)| {
                infra.add_nameserver(
                    format!("ns{i}.mil.ru").parse().unwrap(),
                    a,
                    Asn(8342),
                    Deployment::Unicast,
                    30_000.0,
                    500.0,
                    45.0,
                )
            })
            .collect();
        let set = infra.intern_nsset(ids);
        for i in 0..120 {
            infra.add_domain(format!("svc{i}.mil.ru").parse().unwrap(), set);
        }
        (Arc::new(infra), addrs)
    }

    fn record(victim: Ipv4Addr, w: u64) -> RsdosRecord {
        RsdosRecord {
            window: Window(w),
            victim,
            slash16s: 50,
            protocol: Protocol::Tcp,
            first_port: 53,
            unique_ports: 1,
            max_ppm: 5_000.0,
            packets: 25_000,
        }
    }

    #[test]
    fn streaming_trigger_builds_one_plan_per_victim() {
        let (infra, addrs) = world();
        let platform = ReactivePlatform::default();
        let records = vec![
            record(addrs[0], 100),
            record(addrs[0], 101), // extension, not a new plan
            record(addrs[1], 102),
            record("9.9.9.99".parse().unwrap(), 100), // not a nameserver
        ];
        let plans = platform.build_plans(&infra, &records);
        assert_eq!(plans.len(), 2);
        assert_eq!(plans[0].victim, addrs[0]);
        // Extension moved `until` to record 101's window end + 24 h.
        assert_eq!(
            plans[0].until,
            Window(101).end() + simcore::time::SimDuration::from_hours(24)
        );
    }

    #[test]
    fn execution_detects_blackout_and_recovery() {
        let (infra, addrs) = world();
        let platform = ReactivePlatform::default();
        // Attack saturates all three servers for windows 100..=105.
        let mut loads = LoadBook::new();
        for w in 100..=105u64 {
            for a in &addrs {
                loads.add(*a, Window(w), 30_000_000.0);
            }
        }
        let records: Vec<RsdosRecord> =
            (100..=105).flat_map(|w| addrs.iter().map(move |&a| record(a, w))).collect();
        let reports =
            platform.run(&infra, &records, &loads, &RngFactory::new(3), 12);
        assert_eq!(reports.len(), 3);
        let r = &reports[0];
        // Probing starts at window 101 (trigger after first record) — the
        // attack still runs through 105, so the first ~5 rounds black out.
        assert!(r.unresolvable_rounds() >= 3, "blackout rounds {}", r.unresolvable_rounds());
        // After the attack ends the domains recover.
        let recovery = r.recovery_after(Window(106).start()).expect("recovers");
        assert!(recovery >= Window(106).start());
        // Probes respect the 50-domain cap.
        assert!(r.rounds[0].probes <= 50);
    }

    #[test]
    fn healthy_execution_resolves_everything() {
        let (infra, addrs) = world();
        let platform = ReactivePlatform::default();
        let records = vec![record(addrs[2], 10)];
        let reports =
            platform.run(&infra, &records, &LoadBook::new(), &RngFactory::new(4), 3);
        let r = &reports[0];
        assert_eq!(r.unresolvable_rounds(), 0);
        for round in &r.rounds {
            assert_eq!(round.resolvable, round.probes);
            assert!(round.responsive_ns_share > 0.99);
            assert!(round.avg_best_rtt_ms.unwrap() < 100.0);
        }
    }

    #[test]
    fn chronological_execution_matches_sequential() {
        // Same plans, same RNG streams → the event-queue executor and the
        // plain per-plan loop must produce identical reports.
        let (infra, addrs) = world();
        let platform = ReactivePlatform::default();
        let records: Vec<RsdosRecord> =
            addrs.iter().map(|&a| record(a, 10)).collect();
        let plans = platform.build_plans(&infra, &records);
        let rngs = RngFactory::new(12);
        let seq = platform.execute(&infra, &plans, &LoadBook::new(), &rngs, 4);
        let chrono =
            platform.execute_chronological(&infra, &plans, &LoadBook::new(), &rngs, 4);
        assert_eq!(seq.len(), chrono.len());
        for (a, b) in seq.iter().zip(&chrono) {
            assert_eq!(a.plan, b.plan);
            assert_eq!(a.rounds, b.rounds);
        }
    }

    #[test]
    fn deterministic_reports() {
        let (infra, addrs) = world();
        let platform = ReactivePlatform::default();
        let records = vec![record(addrs[0], 10)];
        let a = platform.run(&infra, &records, &LoadBook::new(), &RngFactory::new(5), 2);
        let b = platform.run(&infra, &records, &LoadBook::new(), &RngFactory::new(5), 2);
        assert_eq!(a[0].rounds, b[0].rounds);
    }
}
