//! Multi-vantage probing — the paper's §9 future work.
//!
//! With a single vantage point (the platform's Dutch server), anycast
//! catchment can mask an ongoing attack entirely: the site answering the
//! prober absorbs a small, survivable slice of the attack while other
//! catchments melt (§4.3, limitation 4). Probing the same deployment from
//! several vantage points samples several catchments, so a regionally
//! devastating attack becomes visible.
//!
//! A [`VantagePoint`] deterministically derives, per anycast nameserver,
//! the share of a uniformly-sourced attack its catchment site absorbs:
//! between the uniform share `1/sites` and a hot-spot multiple of it.
//! Unicast servers look identical from everywhere (modulo base RTT).

use crate::probe::{DomainProbe, NsProbeOutcome, PROBE_TIMEOUT_MS};
use dnssim::{Deployment, DomainId, Infra, LoadBook, NsId, QueryStatus};
use rand::Rng;
use simcore::rng::{hash_label, splitmix64};
use simcore::time::SimTime;

/// A measurement vantage point.
#[derive(Clone, Debug, PartialEq)]
pub struct VantagePoint {
    /// Human-readable location ("nl-ams", "us-iad", ...).
    pub name: String,
    /// Deterministic identity: drives the per-nameserver catchment draw.
    pub seed: u64,
    /// Added to every nameserver's base RTT (geographic distance).
    pub rtt_offset_ms: f64,
    /// Worst-case catchment hot-spotting: the local site may absorb up to
    /// `hotspot × uniform-share` of the attack (clamped to 1).
    pub hotspot: f64,
}

impl VantagePoint {
    pub fn new(name: &str, rtt_offset_ms: f64) -> VantagePoint {
        VantagePoint { name: name.to_string(), seed: hash_label(name), rtt_offset_ms, hotspot: 8.0 }
    }

    /// The paper's current deployment: a single Dutch vantage, which we
    /// model with a near-uniform catchment (the well-peered default the
    /// uniform-dilution service model also assumes).
    pub fn single_nl() -> Vec<VantagePoint> {
        let mut v = VantagePoint::new("nl-ams", 0.0);
        v.hotspot = 1.0;
        vec![v]
    }

    /// A small geographically spread fleet.
    pub fn default_fleet() -> Vec<VantagePoint> {
        vec![
            VantagePoint::new("nl-ams", 0.0),
            VantagePoint::new("us-iad", 40.0),
            VantagePoint::new("br-gru", 95.0),
            VantagePoint::new("jp-hnd", 110.0),
            VantagePoint::new("za-jnb", 80.0),
        ]
    }

    /// The attack-dilution factor this vantage observes for `ns`:
    /// the catchment share of the site answering this vantage.
    pub fn dilution_for(&self, infra: &Infra, ns: NsId) -> f64 {
        let n = infra.nameserver(ns);
        match n.deployment {
            Deployment::Unicast => 1.0,
            Deployment::Anycast { sites } => {
                let uniform = 1.0 / sites.max(1) as f64;
                // Deterministic hot-spot multiplier in [1, hotspot].
                let mut state = self.seed ^ (ns.0 as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15);
                let u = (splitmix64(&mut state) >> 11) as f64 / (1u64 << 53) as f64;
                (uniform * (1.0 + u * (self.hotspot - 1.0))).min(1.0)
            }
        }
    }

    /// Probe every nameserver of `domain` from this vantage.
    pub fn probe_all_ns<R: Rng + ?Sized>(
        &self,
        infra: &Infra,
        domain: DomainId,
        at: SimTime,
        loads: &LoadBook,
        rng: &mut R,
    ) -> DomainProbe {
        let window = at.window();
        let nsset = infra.domain(domain).nsset;
        let mut outcomes = Vec::new();
        for &ns in infra.nsset(nsset).members() {
            let dilution = self.dilution_for(infra, ns);
            let state = infra.service_state_with_dilution(ns, window, loads, dilution);
            let n = infra.nameserver(ns);
            let base = n.base_rtt_ms + self.rtt_offset_ms;
            let u: f64 = rng.random();
            let outcome = if u < state.answer_prob {
                let rtt = base * state.rtt_mult;
                if rtt >= PROBE_TIMEOUT_MS {
                    NsProbeOutcome { ns, status: QueryStatus::Timeout, rtt_ms: PROBE_TIMEOUT_MS }
                } else {
                    NsProbeOutcome { ns, status: QueryStatus::Ok, rtt_ms: rtt }
                }
            } else if u < state.answer_prob + state.servfail_prob {
                NsProbeOutcome {
                    ns,
                    status: QueryStatus::ServFail,
                    rtt_ms: base * state.rtt_mult.min(10.0),
                }
            } else {
                NsProbeOutcome { ns, status: QueryStatus::Timeout, rtt_ms: PROBE_TIMEOUT_MS }
            };
            outcomes.push(outcome);
        }
        DomainProbe { domain, at, outcomes }
    }
}

/// One domain probed from every vantage at the same instant.
#[derive(Clone, Debug)]
pub struct MultiVantageProbe {
    pub probes: Vec<(String, DomainProbe)>,
}

/// Probe `domain` from every vantage in `fleet`.
pub fn probe_from_fleet<R: Rng + ?Sized>(
    fleet: &[VantagePoint],
    infra: &Infra,
    domain: DomainId,
    at: SimTime,
    loads: &LoadBook,
    rng: &mut R,
) -> MultiVantageProbe {
    MultiVantageProbe {
        probes: fleet
            .iter()
            .map(|v| (v.name.clone(), v.probe_all_ns(infra, domain, at, loads, rng)))
            .collect(),
    }
}

impl MultiVantageProbe {
    /// Vantages from which the domain resolved.
    pub fn resolvable_from(&self) -> Vec<&str> {
        self.probes.iter().filter(|(_, p)| p.resolvable()).map(|(n, _)| n.as_str()).collect()
    }

    /// An attack is *masked* when the default (first) vantage sees a
    /// healthy domain but some other vantage sees impairment.
    pub fn masked_from_primary(&self) -> bool {
        let Some((_, primary)) = self.probes.first() else { return false };
        primary.resolvable() && self.probes.iter().skip(1).any(|(_, p)| !p.resolvable())
    }

    /// Worst responsive-nameserver share across vantages.
    pub fn worst_ns_share(&self) -> f64 {
        self.probes
            .iter()
            .map(|(_, p)| {
                if p.outcomes.is_empty() {
                    0.0
                } else {
                    p.responsive_ns() as f64 / p.outcomes.len() as f64
                }
            })
            .fold(1.0, f64::min)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use netbase::Asn;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;
    use std::net::Ipv4Addr;

    fn anycast_world(sites: u32) -> (Infra, DomainId, Ipv4Addr) {
        let mut infra = Infra::new();
        let addr: Ipv4Addr = "198.51.7.53".parse().unwrap();
        let ns = infra.add_nameserver(
            "ns.anycast.net".parse().unwrap(),
            addr,
            Asn(64500),
            Deployment::Anycast { sites },
            100_000.0,
            1_000.0,
            10.0,
        );
        let set = infra.intern_nsset(vec![ns]);
        let d = infra.add_domain("masked.example".parse().unwrap(), set);
        (infra, d, addr)
    }

    #[test]
    fn dilution_bounds_and_determinism() {
        let (infra, _, _) = anycast_world(30);
        let v = VantagePoint::new("nl-ams", 0.0);
        let d1 = v.dilution_for(&infra, NsId(0));
        let d2 = v.dilution_for(&infra, NsId(0));
        assert_eq!(d1, d2, "deterministic per (vantage, ns)");
        assert!((1.0 / 30.0..=8.0 / 30.0).contains(&d1), "dilution {d1}");
        // Different vantages draw different catchments.
        let w = VantagePoint::new("jp-hnd", 110.0);
        assert_ne!(v.dilution_for(&infra, NsId(0)), w.dilution_for(&infra, NsId(0)));
    }

    #[test]
    fn unicast_identical_from_everywhere() {
        let mut infra = Infra::new();
        let ns = infra.add_nameserver(
            "ns.uni.net".parse().unwrap(),
            "192.0.2.53".parse().unwrap(),
            Asn(1),
            Deployment::Unicast,
            50_000.0,
            500.0,
            20.0,
        );
        for v in VantagePoint::default_fleet() {
            assert_eq!(v.dilution_for(&infra, ns), 1.0);
        }
    }

    #[test]
    fn fleet_unmasks_anycast_attack() {
        // A big attack on a 30-site anycast deployment: the uniform share
        // (1/30) is survivable, but a hot-spotted catchment (up to 8/30)
        // is not. Some vantage in the fleet must see the impairment the
        // primary vantage misses.
        let (infra, domain, addr) = anycast_world(30);
        let mut loads = LoadBook::new();
        let at = SimTime::from_days(1);
        loads.add(addr, at.window(), 1_200_000.0); // 12x capacity in aggregate
        let fleet = VantagePoint::default_fleet();
        let mut rng = SmallRng::seed_from_u64(5);
        let mut masked_seen = 0;
        for _ in 0..50 {
            let mv = probe_from_fleet(&fleet, &infra, domain, at, &loads, &mut rng);
            // The uniform-ish vantages still resolve.
            assert!(!mv.resolvable_from().is_empty());
            if mv.masked_from_primary() {
                masked_seen += 1;
            }
        }
        assert!(
            masked_seen > 10,
            "the fleet should repeatedly expose the masked attack: {masked_seen}/50"
        );
    }

    #[test]
    fn healthy_world_is_healthy_from_everywhere() {
        let (infra, domain, _) = anycast_world(30);
        let fleet = VantagePoint::default_fleet();
        let mut rng = SmallRng::seed_from_u64(6);
        let mv = probe_from_fleet(
            &fleet,
            &infra,
            domain,
            SimTime::from_days(1),
            &LoadBook::new(),
            &mut rng,
        );
        assert_eq!(mv.resolvable_from().len(), fleet.len());
        assert!(!mv.masked_from_primary());
        assert_eq!(mv.worst_ns_share(), 1.0);
        // Distant vantages see larger RTTs.
        let rtts: Vec<f64> = mv.probes.iter().map(|(_, p)| p.best_rtt_ms().unwrap()).collect();
        assert!(rtts[3] > rtts[0], "jp-hnd farther than nl-ams: {rtts:?}");
    }

    #[test]
    fn single_nl_matches_paper_deployment() {
        let v = VantagePoint::single_nl();
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].name, "nl-ams");
        assert_eq!(v[0].rtt_offset_ms, 0.0);
    }
}
