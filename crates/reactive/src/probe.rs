//! The NS-exhaustive prober: one query to every authoritative nameserver
//! of a domain.

use dnssim::{DomainId, Infra, LoadBook, NsId, QueryStatus};
use rand::Rng;
use simcore::time::{SimTime, Window};

/// Outcome of probing one nameserver once.
#[derive(Clone, Debug, PartialEq)]
pub struct NsProbeOutcome {
    pub ns: NsId,
    pub status: QueryStatus,
    pub rtt_ms: f64,
}

/// Outcome of probing one domain across all its nameservers at one
/// instant.
#[derive(Clone, Debug, PartialEq)]
pub struct DomainProbe {
    pub domain: DomainId,
    pub at: SimTime,
    pub outcomes: Vec<NsProbeOutcome>,
}

impl DomainProbe {
    /// The domain resolves if any nameserver answered.
    pub fn resolvable(&self) -> bool {
        self.outcomes.iter().any(|o| o.status == QueryStatus::Ok)
    }

    /// Number of responsive nameservers.
    pub fn responsive_ns(&self) -> usize {
        self.outcomes.iter().filter(|o| o.status == QueryStatus::Ok).count()
    }

    /// Best (minimum) RTT over responsive nameservers.
    pub fn best_rtt_ms(&self) -> Option<f64> {
        self.outcomes
            .iter()
            .filter(|o| o.status == QueryStatus::Ok)
            .map(|o| o.rtt_ms)
            .min_by(|a, b| a.total_cmp(b))
    }
}

/// Per-probe timeout used by the reactive platform, milliseconds.
pub const PROBE_TIMEOUT_MS: f64 = 2_000.0;

/// Probe every nameserver of `domain` at time `at`.
pub fn probe_all_ns<R: Rng + ?Sized>(
    infra: &Infra,
    domain: DomainId,
    at: SimTime,
    loads: &LoadBook,
    rng: &mut R,
) -> DomainProbe {
    let window: Window = at.window();
    let nsset = infra.domain(domain).nsset;
    let mut outcomes = Vec::new();
    for &ns in infra.nsset(nsset).members() {
        let state = infra.service_state(ns, window, loads);
        let n = infra.nameserver(ns);
        let u: f64 = rng.random();
        let outcome = if u < state.answer_prob {
            let rtt = n.base_rtt_ms * state.rtt_mult;
            if rtt >= PROBE_TIMEOUT_MS {
                NsProbeOutcome { ns, status: QueryStatus::Timeout, rtt_ms: PROBE_TIMEOUT_MS }
            } else {
                NsProbeOutcome { ns, status: QueryStatus::Ok, rtt_ms: rtt }
            }
        } else if u < state.answer_prob + state.servfail_prob {
            NsProbeOutcome {
                ns,
                status: QueryStatus::ServFail,
                rtt_ms: n.base_rtt_ms * state.rtt_mult.min(10.0),
            }
        } else {
            NsProbeOutcome { ns, status: QueryStatus::Timeout, rtt_ms: PROBE_TIMEOUT_MS }
        };
        outcomes.push(outcome);
    }
    DomainProbe { domain, at, outcomes }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dnssim::Deployment;
    use netbase::Asn;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;
    use std::net::Ipv4Addr;

    fn world() -> (Infra, DomainId, Vec<Ipv4Addr>) {
        let mut infra = Infra::new();
        let addrs: Vec<Ipv4Addr> = vec![
            "188.128.110.1".parse().unwrap(),
            "188.128.110.2".parse().unwrap(),
            "188.128.110.3".parse().unwrap(),
        ];
        let ids: Vec<_> = addrs
            .iter()
            .enumerate()
            .map(|(i, &a)| {
                infra.add_nameserver(
                    format!("ns{i}.mil.ru").parse().unwrap(),
                    a,
                    Asn(8342),
                    Deployment::Unicast,
                    30_000.0,
                    500.0,
                    45.0,
                )
            })
            .collect();
        let set = infra.intern_nsset(ids);
        let d = infra.add_domain("mil.ru".parse().unwrap(), set);
        (infra, d, addrs)
    }

    #[test]
    fn healthy_probe_hits_every_ns() {
        let (infra, d, _) = world();
        let mut rng = SmallRng::seed_from_u64(1);
        let p = probe_all_ns(&infra, d, SimTime(1_000), &LoadBook::new(), &mut rng);
        assert_eq!(p.outcomes.len(), 3);
        assert!(p.resolvable());
        assert_eq!(p.responsive_ns(), 3);
        assert!(p.best_rtt_ms().unwrap() < 100.0);
    }

    #[test]
    fn saturating_attack_makes_domain_unresolvable() {
        let (infra, d, addrs) = world();
        let mut loads = LoadBook::new();
        let at = SimTime(50_000);
        for a in &addrs {
            loads.add(*a, at.window(), 30_000_000.0); // 1000x capacity
        }
        let mut rng = SmallRng::seed_from_u64(2);
        let mut unresolvable = 0;
        for _ in 0..100 {
            let p = probe_all_ns(&infra, d, at, &loads, &mut rng);
            if !p.resolvable() {
                unresolvable += 1;
            }
        }
        assert!(unresolvable > 90, "mil.ru-style blackout: {unresolvable}/100");
    }

    #[test]
    fn partial_attack_leaves_some_ns_responsive() {
        let (infra, d, addrs) = world();
        let mut loads = LoadBook::new();
        let at = SimTime(50_000);
        // Kills ns0 (10x its 30 kpps capacity) but stays well below the
        // shared /24 uplink capacity, so ns1/ns2 keep answering. (A larger
        // attack would congest the shared uplink and take down all three —
        // the mil.ru effect, covered by the saturation test above.)
        loads.add(addrs[0], at.window(), 300_000.0);
        let mut rng = SmallRng::seed_from_u64(3);
        let p = probe_all_ns(&infra, d, at, &loads, &mut rng);
        assert!(p.resolvable(), "two healthy servers remain");
        assert!(p.responsive_ns() >= 2);
    }

    #[test]
    fn slow_but_alive_server_counts_with_inflated_rtt() {
        let (infra, d, addrs) = world();
        let mut loads = LoadBook::new();
        let at = SimTime(0);
        for a in &addrs {
            loads.add(*a, at.window(), 28_000.0); // ρ≈0.95 → ~20x RTT
        }
        let mut rng = SmallRng::seed_from_u64(4);
        let p = probe_all_ns(&infra, d, at, &loads, &mut rng);
        if let Some(rtt) = p.best_rtt_ms() {
            assert!(rtt > 300.0, "inflated RTT visible: {rtt}");
        }
    }
}
