//! The reactive measurement platform (§4.3.1 of the paper).
//!
//! Where OpenINTEL is a fixed daily sweep, the reactive platform watches
//! the RSDoS feed and, within ten minutes of an attack's first record,
//! starts probing up to 50 domains related to the attacked nameserver —
//! every 5-minute window, with the 50 probes spread evenly across the
//! window (one every ~6 s; the ethical rate cap of §8) — for the duration
//! of the attack plus 24 hours of post-attack baseline.
//!
//! Unlike OpenINTEL's agnostic single-server resolution, the reactive
//! prober queries **every** authoritative nameserver of each domain
//! (NS-exhaustive), which is what lets it say "none of the three mil.ru
//! nameservers was responsive" (§5.2.1).
//!
//! - [`probe`]: the NS-exhaustive prober.
//! - [`plan`]: trigger logic and probe scheduling.
//! - [`platform`]: the streaming pipeline (feed topic → join/trigger stage
//!   → probe executor) built on `streamproc`, with both sequential and
//!   discrete-event (chronologically interleaved) executors.
//! - [`vantage`]: multi-vantage probing (the paper's §9 future work) that
//!   pierces anycast catchment masking.

pub mod plan;
pub mod platform;
pub mod probe;
pub mod vantage;

pub use plan::{ProbePlan, TriggerConfig};
pub use platform::{ReactivePlatform, ReactiveReport};
pub use probe::{probe_all_ns, DomainProbe, NsProbeOutcome};
pub use vantage::{probe_from_fleet, MultiVantageProbe, VantagePoint};
