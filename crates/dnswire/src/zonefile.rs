//! RFC 1035 master-file ("zone file") parsing.
//!
//! Supports the subset a DNS measurement study actually meets in the wild:
//! `$ORIGIN` / `$TTL` directives, `@`, relative and absolute names,
//! owner-name inheritance, `;` comments, parenthesized multi-line records
//! (SOA), quoted TXT strings, and the record types this crate models.

use crate::message::Record;
use crate::name::Name;
use crate::rdata::RData;
use crate::types::RrClass;
use std::net::{Ipv4Addr, Ipv6Addr};

/// Render records back to master-file text (absolute names, one record
/// per line). `parse_zone(render_zone(r), any_origin) == r` for every
/// record type this crate models.
pub fn render_zone(records: &[Record]) -> String {
    use std::fmt::Write as _;
    let mut out = String::new();
    for r in records {
        let rdata = match &r.rdata {
            RData::A(a) => format!("A {a}"),
            RData::Aaaa(a) => format!("AAAA {a}"),
            RData::Ns(n) => format!("NS {n}."),
            RData::Cname(n) => format!("CNAME {n}."),
            RData::Ptr(n) => format!("PTR {n}."),
            RData::Mx { preference, exchange } => format!("MX {preference} {exchange}."),
            RData::Txt(strings) => {
                let parts: Vec<String> =
                    strings.iter().map(|s| format!("\"{}\"", String::from_utf8_lossy(s))).collect();
                format!("TXT {}", parts.join(" "))
            }
            RData::Soa { mname, rname, serial, refresh, retry, expire, minimum } => {
                format!("SOA {mname}. {rname}. {serial} {refresh} {retry} {expire} {minimum}")
            }
            // Not representable in this subset; skip the whole record.
            RData::Opaque { .. } => continue,
        };
        let _ = writeln!(out, "{}. {} IN {rdata}", r.name, r.ttl);
    }
    out
}

/// Zone-file parse errors, with the 1-based line number.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ZoneError {
    pub line: usize,
    pub message: String,
}

impl std::fmt::Display for ZoneError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "zone file line {}: {}", self.line, self.message)
    }
}
impl std::error::Error for ZoneError {}

fn err(line: usize, message: impl Into<String>) -> ZoneError {
    ZoneError { line, message: message.into() }
}

/// Parse a zone file into records.
///
/// `default_origin` seeds `$ORIGIN` (may be overridden in the file);
/// records before any `$TTL` default to 3600 seconds.
///
/// ```
/// use dnswire::zonefile::parse_zone;
///
/// let zone = "klant IN NS ns0.transip.net.\n";
/// let records = parse_zone(zone, &"nl".parse().unwrap()).unwrap();
/// assert_eq!(records[0].name, "klant.nl".parse().unwrap());
/// ```
pub fn parse_zone(text: &str, default_origin: &Name) -> Result<Vec<Record>, ZoneError> {
    let mut origin = default_origin.clone();
    let mut default_ttl: u32 = 3_600;
    let mut last_owner: Option<Name> = None;
    let mut records = Vec::new();

    for (line_no, raw) in logical_lines(text) {
        let tokens = tokenize(&raw, line_no)?;
        if tokens.is_empty() {
            continue;
        }
        // Directives.
        if tokens[0].text == "$ORIGIN" {
            let t = tokens.get(1).ok_or_else(|| err(line_no, "$ORIGIN needs a name"))?;
            origin = parse_name(&t.text, &origin, line_no)?;
            continue;
        }
        if tokens[0].text == "$TTL" {
            let t = tokens.get(1).ok_or_else(|| err(line_no, "$TTL needs a value"))?;
            default_ttl =
                t.text.parse().map_err(|_| err(line_no, format!("bad TTL '{}'", t.text)))?;
            continue;
        }

        // Owner: present only if the line does not start with whitespace.
        let mut idx = 0;
        let owner = if tokens[0].at_line_start {
            idx = 1;
            let o = parse_name(&tokens[0].text, &origin, line_no)?;
            last_owner = Some(o.clone());
            o
        } else {
            last_owner
                .clone()
                .ok_or_else(|| err(line_no, "record has no owner and none precedes it"))?
        };

        // Optional TTL and class, in either order.
        let mut ttl = default_ttl;
        let mut _class = RrClass::In;
        for _ in 0..2 {
            let Some(tok) = tokens.get(idx) else { break };
            if let Ok(v) = tok.text.parse::<u32>() {
                ttl = v;
                idx += 1;
            } else if tok.text.eq_ignore_ascii_case("IN") {
                _class = RrClass::In;
                idx += 1;
            } else {
                break;
            }
        }

        let rtype_tok = tokens.get(idx).ok_or_else(|| err(line_no, "missing record type"))?;
        let rd_tokens: Vec<&Token> = tokens[idx + 1..].iter().collect();
        let rdata = parse_rdata(&rtype_tok.text, &rd_tokens, &origin, line_no)?;
        records.push(Record { name: owner, class: RrClass::In, ttl, rdata });
    }
    Ok(records)
}

/// Join parenthesized continuations into logical lines, tagging each with
/// its starting line number. Strips comments.
fn logical_lines(text: &str) -> Vec<(usize, String)> {
    let mut out = Vec::new();
    let mut depth = 0usize;
    let mut current = String::new();
    let mut start_line = 0usize;
    for (i, line) in text.lines().enumerate() {
        let stripped = strip_comment(line);
        if depth == 0 {
            start_line = i + 1;
            current.clear();
        } else {
            current.push(' ');
        }
        for c in stripped.chars() {
            match c {
                '(' => {
                    depth += 1;
                }
                ')' => {
                    depth = depth.saturating_sub(1);
                }
                _ => current.push(c),
            }
        }
        if depth == 0 && !current.trim().is_empty() {
            out.push((start_line, current.clone()));
            current.clear();
        }
    }
    if !current.trim().is_empty() {
        out.push((start_line, current));
    }
    out
}

fn strip_comment(line: &str) -> String {
    let mut out = String::new();
    let mut in_quotes = false;
    for c in line.chars() {
        match c {
            '"' => {
                in_quotes = !in_quotes;
                out.push(c);
            }
            ';' if !in_quotes => break,
            _ => out.push(c),
        }
    }
    out
}

struct Token {
    text: String,
    at_line_start: bool,
}

fn tokenize(line: &str, line_no: usize) -> Result<Vec<Token>, ZoneError> {
    let mut out: Vec<Token> = Vec::new();
    let mut chars = line.chars().peekable();
    let starts_with_space = line.starts_with(' ') || line.starts_with('\t');
    let mut first = true;
    while let Some(&c) = chars.peek() {
        if c.is_whitespace() {
            chars.next();
            continue;
        }
        let mut tok = String::new();
        if c == '"' {
            chars.next();
            let mut closed = false;
            for c in chars.by_ref() {
                if c == '"' {
                    closed = true;
                    break;
                }
                tok.push(c);
            }
            if !closed {
                return Err(err(line_no, "unterminated quoted string"));
            }
            out.push(Token { text: format!("\"{tok}"), at_line_start: false });
            first = false;
            continue;
        }
        while let Some(&c) = chars.peek() {
            if c.is_whitespace() {
                break;
            }
            tok.push(c);
            chars.next();
        }
        out.push(Token { text: tok, at_line_start: first && !starts_with_space });
        first = false;
    }
    Ok(out)
}

fn parse_name(text: &str, origin: &Name, line_no: usize) -> Result<Name, ZoneError> {
    if text == "@" {
        return Ok(origin.clone());
    }
    if let Some(absolute) = text.strip_suffix('.') {
        return absolute.parse().map_err(|e| err(line_no, format!("bad name '{text}': {e}")));
    }
    // Relative: append the origin.
    let rel: Name = text.parse().map_err(|e| err(line_no, format!("bad name '{text}': {e}")))?;
    let mut labels: Vec<Vec<u8>> = rel.labels().to_vec();
    labels.extend(origin.labels().iter().cloned());
    Name::from_labels(labels).map_err(|e| err(line_no, format!("name too long '{text}': {e}")))
}

fn parse_rdata(
    rtype: &str,
    toks: &[&Token],
    origin: &Name,
    line_no: usize,
) -> Result<RData, ZoneError> {
    let need = |i: usize| -> Result<&str, ZoneError> {
        toks.get(i)
            .map(|t| t.text.as_str())
            .ok_or_else(|| err(line_no, format!("{rtype} record is missing fields")))
    };
    match rtype.to_ascii_uppercase().as_str() {
        "A" => {
            let a: Ipv4Addr = need(0)?.parse().map_err(|_| err(line_no, "bad IPv4 address"))?;
            Ok(RData::A(a))
        }
        "AAAA" => {
            let a: Ipv6Addr = need(0)?.parse().map_err(|_| err(line_no, "bad IPv6 address"))?;
            Ok(RData::Aaaa(a))
        }
        "NS" => Ok(RData::Ns(parse_name(need(0)?, origin, line_no)?)),
        "CNAME" => Ok(RData::Cname(parse_name(need(0)?, origin, line_no)?)),
        "PTR" => Ok(RData::Ptr(parse_name(need(0)?, origin, line_no)?)),
        "MX" => {
            let preference = need(0)?.parse().map_err(|_| err(line_no, "bad MX preference"))?;
            Ok(RData::Mx { preference, exchange: parse_name(need(1)?, origin, line_no)? })
        }
        "TXT" => {
            if toks.is_empty() {
                return Err(err(line_no, "TXT record is missing fields"));
            }
            let strings = toks
                .iter()
                .map(|t| t.text.strip_prefix('"').unwrap_or(&t.text).as_bytes().to_vec())
                .collect();
            Ok(RData::Txt(strings))
        }
        "SOA" => {
            let mname = parse_name(need(0)?, origin, line_no)?;
            let rname = parse_name(need(1)?, origin, line_no)?;
            let num = |i: usize| -> Result<u32, ZoneError> {
                need(i)?.parse().map_err(|_| err(line_no, "bad SOA number"))
            };
            Ok(RData::Soa {
                mname,
                rname,
                serial: num(2)?,
                refresh: num(3)?,
                retry: num(4)?,
                expire: num(5)?,
                minimum: num(6)?,
            })
        }
        other => Err(err(line_no, format!("unsupported record type '{other}'"))),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::types::RrType;

    fn origin() -> Name {
        "example.nl".parse().unwrap()
    }

    #[test]
    fn minimal_zone() {
        let z = "\
$TTL 300
@   IN NS  ns0.transip.net.
    IN NS  ns1.transip.nl.
www IN A   192.0.2.10
";
        let records = parse_zone(z, &origin()).unwrap();
        assert_eq!(records.len(), 3);
        assert_eq!(records[0].name, origin());
        assert_eq!(records[0].ttl, 300);
        assert_eq!(records[0].rdata, RData::Ns("ns0.transip.net".parse().unwrap()));
        // Owner inherited for the second NS.
        assert_eq!(records[1].name, origin());
        // Relative owner gets the origin appended.
        assert_eq!(records[2].name, "www.example.nl".parse::<Name>().unwrap());
        assert_eq!(records[2].rdata, RData::A("192.0.2.10".parse().unwrap()));
    }

    #[test]
    fn origin_directive_and_comments() {
        let z = "\
; the delegation lives under a different origin
$ORIGIN klant.nl.
$TTL 3600
@  IN NS ns0.transip.net. ; primary
@  IN NS ns1              ; relative target → ns1.klant.nl
";
        let records = parse_zone(z, &origin()).unwrap();
        assert_eq!(records[0].name, "klant.nl".parse::<Name>().unwrap());
        assert_eq!(records[1].rdata, RData::Ns("ns1.klant.nl".parse().unwrap()));
    }

    #[test]
    fn soa_with_parentheses() {
        let z = "\
@ 3600 IN SOA ns0.transip.net. hostmaster.transip.nl. (
        2022033101 ; serial
        14400      ; refresh
        3600       ; retry
        604800     ; expire
        300 )      ; minimum
";
        let records = parse_zone(z, &origin()).unwrap();
        assert_eq!(records.len(), 1);
        match &records[0].rdata {
            RData::Soa { serial, refresh, retry, expire, minimum, .. } => {
                assert_eq!(*serial, 2022033101);
                assert_eq!(*refresh, 14400);
                assert_eq!(*retry, 3600);
                assert_eq!(*expire, 604800);
                assert_eq!(*minimum, 300);
            }
            other => panic!("expected SOA, got {other:?}"),
        }
    }

    #[test]
    fn txt_with_quotes_and_semicolons() {
        let z = r#"@ IN TXT "v=spf1 include:_spf.example.nl; -all" "second""#;
        let records = parse_zone(z, &origin()).unwrap();
        match &records[0].rdata {
            RData::Txt(strings) => {
                assert_eq!(strings.len(), 2);
                assert_eq!(
                    String::from_utf8_lossy(&strings[0]),
                    "v=spf1 include:_spf.example.nl; -all"
                );
            }
            other => panic!("expected TXT, got {other:?}"),
        }
    }

    #[test]
    fn mx_aaaa_cname() {
        let z = "\
@    IN MX    10 mail
mail IN AAAA  2001:db8::25
web  IN CNAME www.example.nl.
";
        let records = parse_zone(z, &origin()).unwrap();
        assert_eq!(
            records[0].rdata,
            RData::Mx { preference: 10, exchange: "mail.example.nl".parse().unwrap() }
        );
        assert_eq!(records[1].rdata.rtype(), RrType::Aaaa);
        assert_eq!(records[2].rdata, RData::Cname("www.example.nl".parse().unwrap()));
    }

    #[test]
    fn errors_carry_line_numbers() {
        let e = parse_zone("@ IN A not-an-ip\n", &origin()).unwrap_err();
        assert_eq!(e.line, 1);
        assert!(e.message.contains("IPv4"));
        let e = parse_zone("\n\n@ IN BOGUS x\n", &origin()).unwrap_err();
        assert_eq!(e.line, 3);
        let e = parse_zone("  IN A 1.2.3.4\n", &origin()).unwrap_err();
        assert!(e.message.contains("no owner"), "{e}");
    }

    #[test]
    fn zone_records_encode_on_the_wire() {
        // Everything the parser emits must survive a message round-trip.
        let z = "\
$TTL 60
@   IN SOA ns0.example.nl. admin.example.nl. 1 2 3 4 5
@   IN NS  ns0
ns0 IN A   192.0.2.1
@   IN MX  5 mail
@   IN TXT \"hello world\"
";
        let records = parse_zone(z, &origin()).unwrap();
        let mut msg = crate::message::Message::query(1, origin(), RrType::Soa);
        msg.header.flags.qr = true;
        msg.answers = records;
        let back = crate::message::Message::decode(&msg.encode()).unwrap();
        assert_eq!(back, msg);
    }

    #[test]
    fn ttl_and_class_in_either_order() {
        let z = "\
a IN 120 A 192.0.2.1
b 120 IN A 192.0.2.2
c A 192.0.2.3
";
        let records = parse_zone(z, &origin()).unwrap();
        assert_eq!(records[0].ttl, 120);
        assert_eq!(records[1].ttl, 120);
        assert_eq!(records[2].ttl, 3_600, "default TTL");
    }
}

#[cfg(test)]
mod render_tests {
    use super::*;
    use crate::types::RrType;

    #[test]
    fn render_parse_roundtrip_handwritten() {
        let z = "\
$TTL 60
@   IN SOA ns0.example.nl. admin.example.nl. 1 2 3 4 5
@   IN NS  ns0
ns0 IN A   192.0.2.1
@   IN MX  5 mail
@   IN TXT \"hello world\"
mail IN AAAA 2001:db8::25
alias IN CNAME www
";
        let origin: Name = "example.nl".parse().unwrap();
        let records = parse_zone(z, &origin).unwrap();
        let rendered = render_zone(&records);
        let back = parse_zone(&rendered, &"other.origin".parse().unwrap()).unwrap();
        assert_eq!(back, records, "rendered:\n{rendered}");
    }

    /// A name at the RFC 1035 ceiling — 255 wire octets via labels of
    /// 63+63+63+61 — must survive render → parse, and the rendered form
    /// must be absolute (origin-independent): re-qualifying it against a
    /// different origin would blow past the length limit.
    #[test]
    fn maximum_length_name_renders_and_parses() {
        let labels: Vec<Vec<u8>> =
            vec![vec![b'a'; 63], vec![b'b'; 63], vec![b'c'; 63], vec![b'd'; 61]];
        let name = Name::from_labels(labels.iter().map(|l| l.as_slice())).unwrap();
        let mut wire = crate::BytesMut::new();
        name.encode_uncompressed(&mut wire);
        assert_eq!(wire.len(), 255, "test premise: name sits exactly at the ceiling");

        let records = vec![Record {
            name: name.clone(),
            class: RrClass::In,
            ttl: 60,
            rdata: RData::A("192.0.2.9".parse().unwrap()),
        }];
        let rendered = render_zone(&records);
        let back = parse_zone(&rendered, &"unrelated.test".parse().unwrap()).unwrap();
        assert_eq!(back, records, "rendered:\n{rendered}");

        // One octet longer is rejected at construction, so no zone file
        // can smuggle an over-long name through the parse path either.
        let mut over = labels;
        over[3].push(b'd');
        assert_eq!(
            Name::from_labels(over.iter().map(|l| l.as_slice())).unwrap_err(),
            crate::WireError::NameTooLong
        );
    }

    #[test]
    fn opaque_records_are_skipped() {
        let records = vec![Record {
            name: "x.example".parse().unwrap(),
            class: RrClass::In,
            ttl: 60,
            rdata: RData::Opaque { rtype: RrType::Opt.code(), data: vec![1, 2] },
        }];
        assert!(render_zone(&records).is_empty());
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    fn arb_name() -> impl Strategy<Value = Name> {
        prop::collection::vec("[a-z0-9]{1,10}", 1..4)
            .prop_map(|ls| Name::from_labels(ls.iter().map(|s| s.as_bytes())).unwrap())
    }

    fn arb_record() -> impl Strategy<Value = Record> {
        let rdata = prop_oneof![
            any::<u32>().prop_map(|v| RData::A(std::net::Ipv4Addr::from(v))),
            any::<[u8; 16]>().prop_map(|o| RData::Aaaa(o.into())),
            arb_name().prop_map(RData::Ns),
            arb_name().prop_map(RData::Cname),
            (any::<u16>(), arb_name())
                .prop_map(|(preference, exchange)| RData::Mx { preference, exchange }),
            prop::collection::vec("[a-zA-Z0-9 .:=_-]{0,30}", 1..3)
                .prop_map(|ss| RData::Txt(ss.into_iter().map(|s| s.into_bytes()).collect())),
            (
                arb_name(),
                arb_name(),
                any::<u32>(),
                any::<u32>(),
                any::<u32>(),
                any::<u32>(),
                any::<u32>()
            )
                .prop_map(|(mname, rname, serial, refresh, retry, expire, minimum)| {
                    RData::Soa { mname, rname, serial, refresh, retry, expire, minimum }
                }),
        ];
        (arb_name(), any::<u32>(), rdata).prop_map(|(name, ttl, rdata)| Record {
            name,
            class: RrClass::In,
            ttl,
            rdata,
        })
    }

    proptest! {
        /// Every record set survives render → parse exactly.
        #[test]
        fn render_parse_roundtrip(records in prop::collection::vec(arb_record(), 1..12)) {
            let text = render_zone(&records);
            let origin: Name = "unrelated.test".parse().unwrap();
            let back = parse_zone(&text, &origin).unwrap();
            prop_assert_eq!(back, records);
        }

        /// The parser never panics on arbitrary input.
        #[test]
        fn parse_arbitrary_text_never_panics(text in "[ -~\n\t]{0,400}") {
            let origin: Name = "fuzz.test".parse().unwrap();
            let _ = parse_zone(&text, &origin);
        }
    }
}
