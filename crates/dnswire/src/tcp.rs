//! DNS-over-TCP framing (RFC 1035 §4.2.2): each message is prefixed by a
//! two-octet big-endian length.
//!
//! Context from the paper (§6.2): DNSSEC's larger responses pushed
//! authoritative service toward TCP, which in turn made TCP SYN floods the
//! dominant attack vector against nameserver IPs (90.4% of DNS-infra
//! attacks). This module provides the framing plus an incremental stream
//! decoder for reassembled TCP payloads.

use crate::message::Message;
use crate::view::MessageRef;
use crate::WireError;

/// Encode a message with its TCP length prefix.
pub fn encode_tcp(msg: &Message) -> Vec<u8> {
    let body = msg.encode();
    assert!(body.len() <= u16::MAX as usize, "message exceeds TCP frame limit");
    let mut out = Vec::with_capacity(2 + body.len());
    out.extend_from_slice(&(body.len() as u16).to_be_bytes());
    out.extend_from_slice(&body);
    out
}

/// Decode one length-prefixed message from the start of `buf`.
/// Returns the message and the number of bytes consumed.
pub fn decode_tcp(buf: &[u8]) -> Result<(Message, usize), WireError> {
    if buf.len() < 2 {
        return Err(WireError::Truncated);
    }
    let len = u16::from_be_bytes([buf[0], buf[1]]) as usize;
    if buf.len() < 2 + len {
        return Err(WireError::Truncated);
    }
    let msg = Message::decode(&buf[2..2 + len])?;
    Ok((msg, 2 + len))
}

/// Borrowed-view form of [`decode_tcp`]: parse one length-prefixed message
/// without copying labels or rdata out of `buf`. Mirrors [`decode_tcp`]
/// error for error (the differential tests hold the two together).
pub fn decode_tcp_ref(buf: &[u8]) -> Result<(MessageRef<'_>, usize), WireError> {
    if buf.len() < 2 {
        return Err(WireError::Truncated);
    }
    let len = u16::from_be_bytes([buf[0], buf[1]]) as usize;
    if buf.len() < 2 + len {
        return Err(WireError::Truncated);
    }
    let msg = MessageRef::parse(&buf[2..2 + len])?;
    Ok((msg, 2 + len))
}

/// Incremental decoder over a reassembled TCP byte stream: feed bytes in
/// arbitrary chunks, pull complete messages out.
#[derive(Default)]
pub struct TcpStreamDecoder {
    buf: Vec<u8>,
}

impl TcpStreamDecoder {
    pub fn new() -> TcpStreamDecoder {
        TcpStreamDecoder::default()
    }

    /// Append received bytes.
    pub fn push(&mut self, bytes: &[u8]) {
        self.buf.extend_from_slice(bytes);
    }

    /// Pop the next complete message, if one is buffered.
    /// `Ok(None)` = need more bytes; `Err` = the stream is corrupt.
    pub fn next_message(&mut self) -> Result<Option<Message>, WireError> {
        match decode_tcp(&self.buf) {
            Ok((msg, consumed)) => {
                self.buf.drain(..consumed);
                Ok(Some(msg))
            }
            Err(WireError::Truncated) if self.incomplete() => Ok(None),
            Err(e) => Err(e),
        }
    }

    /// Whether the buffered bytes are merely an incomplete frame (as
    /// opposed to a complete-but-corrupt one).
    fn incomplete(&self) -> bool {
        if self.buf.len() < 2 {
            return true;
        }
        let len = u16::from_be_bytes([self.buf[0], self.buf[1]]) as usize;
        self.buf.len() < 2 + len
    }

    /// Bytes currently buffered.
    pub fn buffered(&self) -> usize {
        self.buf.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::types::RrType;

    fn msg(id: u16) -> Message {
        Message::query(id, "example.com".parse().unwrap(), RrType::Ns)
    }

    #[test]
    fn frame_roundtrip() {
        let m = msg(7);
        let framed = encode_tcp(&m);
        assert_eq!(u16::from_be_bytes([framed[0], framed[1]]) as usize, framed.len() - 2);
        let (back, consumed) = decode_tcp(&framed).unwrap();
        assert_eq!(back, m);
        assert_eq!(consumed, framed.len());
    }

    #[test]
    fn short_prefix_and_body_are_truncated() {
        assert_eq!(decode_tcp(&[0x00]), Err(WireError::Truncated));
        let mut framed = encode_tcp(&msg(1));
        framed.pop();
        assert!(matches!(decode_tcp(&framed), Err(WireError::Truncated)));
    }

    #[test]
    fn borrowed_frame_decode_matches_owned() {
        let m = msg(9);
        let framed = encode_tcp(&m);
        let (owned, c1) = decode_tcp(&framed).unwrap();
        let (view, c2) = decode_tcp_ref(&framed).unwrap();
        assert_eq!(c1, c2);
        assert_eq!(view.to_owned(), owned);
    }

    #[test]
    fn every_prefix_of_a_frame_is_truncated_for_both_decoders() {
        let framed = encode_tcp(&msg(3));
        for cut in 0..framed.len() {
            let prefix = &framed[..cut];
            assert_eq!(decode_tcp(prefix).unwrap_err(), WireError::Truncated, "cut {cut}");
            assert_eq!(decode_tcp_ref(prefix).unwrap_err(), WireError::Truncated, "cut {cut}");
            // The stream decoder must classify the same prefix as
            // incomplete (need more bytes), not corrupt.
            let mut dec = TcpStreamDecoder::new();
            dec.push(prefix);
            assert_eq!(dec.next_message().unwrap(), None, "cut {cut}");
            assert_eq!(dec.buffered(), cut);
        }
    }

    #[test]
    fn truncated_body_inside_complete_frame_is_corrupt_not_incomplete() {
        // The frame is complete per its length prefix, but the DNS header
        // inside is short: decode_tcp and decode_tcp_ref both surface
        // Truncated, and the stream decoder treats it as corruption.
        let frame = [0x00, 0x04, 0xDE, 0xAD, 0xBE, 0xEF];
        assert_eq!(decode_tcp(&frame).unwrap_err(), WireError::Truncated);
        assert_eq!(decode_tcp_ref(&frame).unwrap_err(), WireError::Truncated);
        let mut dec = TcpStreamDecoder::new();
        dec.push(&frame);
        assert_eq!(dec.next_message(), Err(WireError::Truncated));
    }

    #[test]
    fn stream_decoder_reassembles_across_chunks() {
        let mut dec = TcpStreamDecoder::new();
        let a = encode_tcp(&msg(1));
        let b = encode_tcp(&msg(2));
        let mut wire = a.clone();
        wire.extend_from_slice(&b);
        // Feed one byte at a time — worst-case segmentation.
        let mut got = Vec::new();
        for &byte in &wire {
            dec.push(&[byte]);
            while let Some(m) = dec.next_message().unwrap() {
                got.push(m.header.id);
            }
        }
        assert_eq!(got, vec![1, 2]);
        assert_eq!(dec.buffered(), 0);
    }

    #[test]
    fn stream_decoder_surfaces_corruption() {
        let mut dec = TcpStreamDecoder::new();
        // Claimed length 4 but garbage body (header < 12 bytes → Truncated
        // *inside* a complete frame = corrupt stream).
        dec.push(&[0x00, 0x04, 0xDE, 0xAD, 0xBE, 0xEF]);
        assert!(dec.next_message().is_err());
    }

    #[test]
    fn pipelined_messages_in_one_push() {
        let mut dec = TcpStreamDecoder::new();
        let mut wire = Vec::new();
        for id in 0..5 {
            wire.extend_from_slice(&encode_tcp(&msg(id)));
        }
        dec.push(&wire);
        let mut ids = Vec::new();
        while let Some(m) = dec.next_message().unwrap() {
            ids.push(m.header.id);
        }
        assert_eq!(ids, vec![0, 1, 2, 3, 4]);
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use crate::message::Message;
    use crate::types::RrType;
    use proptest::prelude::*;

    proptest! {
        /// Any segmentation of a pipelined stream yields the same message
        /// sequence.
        #[test]
        fn arbitrary_chunking_preserves_messages(
            ids in prop::collection::vec(any::<u16>(), 1..8),
            cuts in prop::collection::vec(1usize..40, 1..20),
        ) {
            let mut wire = Vec::new();
            for &id in &ids {
                wire.extend_from_slice(&encode_tcp(&Message::query(
                    id,
                    "chunked.example".parse().unwrap(),
                    RrType::Ns,
                )));
            }
            let mut dec = TcpStreamDecoder::new();
            let mut got = Vec::new();
            let mut pos = 0;
            let mut cut_iter = cuts.iter().cycle();
            while pos < wire.len() {
                let step = (*cut_iter.next().unwrap()).min(wire.len() - pos);
                dec.push(&wire[pos..pos + step]);
                pos += step;
                while let Some(m) = dec.next_message().unwrap() {
                    got.push(m.header.id);
                }
            }
            prop_assert_eq!(got, ids);
            prop_assert_eq!(dec.buffered(), 0);
        }

        /// Garbage never panics the stream decoder.
        #[test]
        fn garbage_never_panics(bytes in prop::collection::vec(any::<u8>(), 0..200)) {
            let mut dec = TcpStreamDecoder::new();
            dec.push(&bytes);
            let _ = dec.next_message();
        }
    }
}
