//! Typed RDATA for the record types the study manipulates.

use crate::name::Name;
use crate::types::RrType;
use crate::WireError;
use bytes::{BufMut, BytesMut};
use std::collections::HashMap;
use std::net::{Ipv4Addr, Ipv6Addr};

/// Decoded RDATA. `Opaque` preserves anything not modeled structurally.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum RData {
    A(Ipv4Addr),
    Aaaa(Ipv6Addr),
    Ns(Name),
    Cname(Name),
    Ptr(Name),
    Mx {
        preference: u16,
        exchange: Name,
    },
    Txt(Vec<Vec<u8>>),
    Soa {
        mname: Name,
        rname: Name,
        serial: u32,
        refresh: u32,
        retry: u32,
        expire: u32,
        minimum: u32,
    },
    Opaque {
        rtype: u16,
        data: Vec<u8>,
    },
}

impl RData {
    /// The record type this RDATA belongs to.
    pub fn rtype(&self) -> RrType {
        match self {
            RData::A(_) => RrType::A,
            RData::Aaaa(_) => RrType::Aaaa,
            RData::Ns(_) => RrType::Ns,
            RData::Cname(_) => RrType::Cname,
            RData::Ptr(_) => RrType::Ptr,
            RData::Mx { .. } => RrType::Mx,
            RData::Txt(_) => RrType::Txt,
            RData::Soa { .. } => RrType::Soa,
            RData::Opaque { rtype, .. } => RrType::from_code(*rtype),
        }
    }

    /// Encode the RDATA body (without the RDLENGTH prefix). Names inside
    /// RDATA of NS/CNAME/PTR/MX/SOA may be compressed per RFC 1035 §3.3.
    pub fn encode(&self, buf: &mut BytesMut, table: &mut HashMap<Name, u16>, base: usize) {
        match self {
            RData::A(a) => buf.put_slice(&a.octets()),
            RData::Aaaa(a) => buf.put_slice(&a.octets()),
            RData::Ns(n) | RData::Cname(n) | RData::Ptr(n) => n.encode_compressed(buf, table, base),
            RData::Mx { preference, exchange } => {
                buf.put_u16(*preference);
                exchange.encode_compressed(buf, table, base);
            }
            RData::Txt(strings) => {
                for s in strings {
                    buf.put_u8(s.len() as u8);
                    buf.put_slice(s);
                }
            }
            RData::Soa { mname, rname, serial, refresh, retry, expire, minimum } => {
                mname.encode_compressed(buf, table, base);
                rname.encode_compressed(buf, table, base);
                buf.put_u32(*serial);
                buf.put_u32(*refresh);
                buf.put_u32(*retry);
                buf.put_u32(*expire);
                buf.put_u32(*minimum);
            }
            RData::Opaque { data, .. } => buf.put_slice(data),
        }
    }

    /// Decode RDATA of type `rtype` occupying `msg[*pos .. *pos + rdlen]`.
    /// `msg` is the whole message (for compression pointers).
    pub fn decode(
        msg: &[u8],
        pos: &mut usize,
        rtype: RrType,
        rdlen: usize,
    ) -> Result<RData, WireError> {
        let start = *pos;
        let end = start + rdlen;
        if end > msg.len() {
            return Err(WireError::Truncated);
        }
        let out = match rtype {
            RrType::A => {
                if rdlen != 4 {
                    return Err(WireError::BadRdata);
                }
                RData::A(Ipv4Addr::new(msg[start], msg[start + 1], msg[start + 2], msg[start + 3]))
            }
            RrType::Aaaa => {
                if rdlen != 16 {
                    return Err(WireError::BadRdata);
                }
                let mut o = [0u8; 16];
                o.copy_from_slice(&msg[start..end]);
                RData::Aaaa(Ipv6Addr::from(o))
            }
            RrType::Ns | RrType::Cname | RrType::Ptr => {
                let mut p = start;
                let name = Name::decode(msg, &mut p)?;
                if p > end {
                    return Err(WireError::BadRdata);
                }
                match rtype {
                    RrType::Ns => RData::Ns(name),
                    RrType::Cname => RData::Cname(name),
                    _ => RData::Ptr(name),
                }
            }
            RrType::Mx => {
                if rdlen < 3 {
                    return Err(WireError::BadRdata);
                }
                let preference = u16::from_be_bytes([msg[start], msg[start + 1]]);
                let mut p = start + 2;
                let exchange = Name::decode(msg, &mut p)?;
                if p > end {
                    return Err(WireError::BadRdata);
                }
                RData::Mx { preference, exchange }
            }
            RrType::Txt => {
                let mut strings = Vec::new();
                let mut p = start;
                while p < end {
                    let l = msg[p] as usize;
                    p += 1;
                    if p + l > end {
                        return Err(WireError::BadRdata);
                    }
                    strings.push(msg[p..p + l].to_vec());
                    p += l;
                }
                RData::Txt(strings)
            }
            RrType::Soa => {
                let mut p = start;
                let mname = Name::decode(msg, &mut p)?;
                let rname = Name::decode(msg, &mut p)?;
                if p + 20 > end {
                    return Err(WireError::BadRdata);
                }
                let u32_at =
                    |q: usize| u32::from_be_bytes([msg[q], msg[q + 1], msg[q + 2], msg[q + 3]]);
                RData::Soa {
                    mname,
                    rname,
                    serial: u32_at(p),
                    refresh: u32_at(p + 4),
                    retry: u32_at(p + 8),
                    expire: u32_at(p + 12),
                    minimum: u32_at(p + 16),
                }
            }
            RrType::Opt | RrType::Other(_) => {
                RData::Opaque { rtype: rtype.code(), data: msg[start..end].to_vec() }
            }
        };
        *pos = end;
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn n(s: &str) -> Name {
        s.parse().unwrap()
    }

    fn roundtrip(rd: &RData) -> RData {
        let mut buf = BytesMut::new();
        let mut table = HashMap::new();
        rd.encode(&mut buf, &mut table, 0);
        let mut pos = 0;
        let back = RData::decode(&buf, &mut pos, rd.rtype(), buf.len()).unwrap();
        assert_eq!(pos, buf.len());
        back
    }

    #[test]
    fn a_roundtrip() {
        let rd = RData::A("192.0.2.1".parse().unwrap());
        assert_eq!(roundtrip(&rd), rd);
        assert_eq!(rd.rtype(), RrType::A);
    }

    #[test]
    fn aaaa_roundtrip() {
        let rd = RData::Aaaa("2001:db8::1".parse().unwrap());
        assert_eq!(roundtrip(&rd), rd);
    }

    #[test]
    fn ns_roundtrip() {
        let rd = RData::Ns(n("ns1.transip.nl"));
        assert_eq!(roundtrip(&rd), rd);
    }

    #[test]
    fn mx_roundtrip() {
        let rd = RData::Mx { preference: 10, exchange: n("mail.example.com") };
        assert_eq!(roundtrip(&rd), rd);
    }

    #[test]
    fn txt_roundtrip_multi_string() {
        let rd = RData::Txt(vec![b"hello".to_vec(), b"world".to_vec(), vec![]]);
        assert_eq!(roundtrip(&rd), rd);
    }

    #[test]
    fn soa_roundtrip() {
        let rd = RData::Soa {
            mname: n("ns0.example.com"),
            rname: n("hostmaster.example.com"),
            serial: 20_220_331,
            refresh: 7200,
            retry: 3600,
            expire: 1_209_600,
            minimum: 300,
        };
        assert_eq!(roundtrip(&rd), rd);
    }

    #[test]
    fn opaque_roundtrip() {
        let rd = RData::Opaque { rtype: 99, data: vec![1, 2, 3, 4] };
        assert_eq!(roundtrip(&rd), rd);
        assert_eq!(rd.rtype(), RrType::Other(99));
    }

    #[test]
    fn a_wrong_length_rejected() {
        let bytes = [1, 2, 3];
        let mut pos = 0;
        assert_eq!(RData::decode(&bytes, &mut pos, RrType::A, 3), Err(WireError::BadRdata));
    }

    #[test]
    fn truncated_rdata_rejected() {
        let bytes = [1, 2];
        let mut pos = 0;
        assert_eq!(RData::decode(&bytes, &mut pos, RrType::A, 4), Err(WireError::Truncated));
    }

    #[test]
    fn txt_bad_length_byte_rejected() {
        // Length byte says 5 but only 2 bytes remain.
        let bytes = [5u8, b'a', b'b'];
        let mut pos = 0;
        assert_eq!(RData::decode(&bytes, &mut pos, RrType::Txt, 3), Err(WireError::BadRdata));
    }

    #[test]
    fn soa_names_may_compress_against_each_other() {
        let rd = RData::Soa {
            mname: n("ns1.example.com"),
            rname: n("admin.example.com"),
            serial: 1,
            refresh: 2,
            retry: 3,
            expire: 4,
            minimum: 5,
        };
        let mut buf = BytesMut::new();
        let mut table = HashMap::new();
        rd.encode(&mut buf, &mut table, 0);
        // rname shares the example.com suffix: "admin" label (6) + ptr (2)
        // instead of 17 uncompressed bytes.
        let uncompressed =
            n("ns1.example.com").encoded_len() + n("admin.example.com").encoded_len() + 20;
        assert!(buf.len() < uncompressed);
        assert_eq!(roundtrip(&rd), rd);
    }
}
