//! Borrowed, zero-copy views over DNS wire messages.
//!
//! [`MessageRef`] / [`RecordRef`] / [`NameRef`] parse a message without
//! copying label or rdata bytes out of the source buffer: labels and rdata
//! are slices into the input, and compression pointers are resolved to
//! *offsets* during validation, then re-walked only when the caller
//! iterates. The owned [`Message`](crate::Message) decoder stays the
//! differential reference: `.to_owned()` converts a view into exactly what
//! `Message::decode` would have produced, and `tests/differential.rs`
//! holds the two parsers to error-for-error equivalence on arbitrary
//! (including malformed, truncated, and pointer-looping) inputs.
//!
//! Views keep the source buffer borrowed for their whole lifetime, so they
//! suit the hot paths — classify a backscatter payload, intern a qname,
//! route on an rcode — where the bytes outlive the decision. Anything that
//! must outlive the buffer goes through `.to_owned()` explicitly.

use crate::message::{Flags, Header, Message, Question, Record};
use crate::name::{Name, MAX_NAME, MAX_POINTER_HOPS};
use crate::rdata::RData;
use crate::types::{Rcode, RrClass, RrType};
use crate::WireError;
use std::fmt;
use std::net::{Ipv4Addr, Ipv6Addr};

/// A validated, borrowed domain name: an offset into the source message
/// plus the walk metadata needed to iterate its labels without copying.
///
/// Copyable (it is an offset pair, not a buffer), comparable
/// case-insensitively, and convertible to the owned lowercase
/// [`Name`] via [`to_owned`](NameRef::to_owned).
#[derive(Clone, Copy)]
pub struct NameRef<'a> {
    msg: &'a [u8],
    start: usize,
    /// In-place bytes consumed at `start` (up to the terminator, or the
    /// first compression pointer).
    wire_len: usize,
    /// Uncompressed encoded length of the *full* name (skip = 0).
    encoded_len: usize,
    /// Total labels of the full name.
    label_count: usize,
    /// Leading labels hidden by [`parent`](NameRef::parent) views.
    skip: usize,
}

impl<'a> NameRef<'a> {
    /// Parse a (possibly compressed) name at `*pos`, advancing `*pos` past
    /// its in-place bytes on success. Validation — bounds, label tags,
    /// strictly-backwards pointers, [`MAX_POINTER_HOPS`], [`MAX_NAME`] —
    /// mirrors [`Name::decode`] error for error; no label bytes are copied.
    pub fn parse(msg: &'a [u8], pos: &mut usize) -> Result<NameRef<'a>, WireError> {
        let start = *pos;
        let mut cursor = start;
        let mut jumped = false;
        let mut hops = 0usize;
        let mut total_len = 1usize; // terminating root byte
        let mut label_count = 0usize;
        let mut wire_len = 0usize;
        loop {
            let tag = *msg.get(cursor).ok_or(WireError::Truncated)?;
            match tag & 0xC0 {
                0x00 => {
                    if tag == 0 {
                        if !jumped {
                            wire_len = cursor + 1 - start;
                        }
                        break;
                    }
                    let len = tag as usize;
                    if msg.get(cursor + 1..cursor + 1 + len).is_none() {
                        return Err(WireError::Truncated);
                    }
                    total_len += len + 1;
                    if total_len > MAX_NAME {
                        return Err(WireError::NameTooLong);
                    }
                    label_count += 1;
                    cursor += 1 + len;
                }
                0xC0 => {
                    let lo = *msg.get(cursor + 1).ok_or(WireError::Truncated)? as usize;
                    let target = (((tag & 0x3F) as usize) << 8) | lo;
                    // A pointer must point strictly backwards.
                    if target >= cursor {
                        return Err(WireError::BadPointer);
                    }
                    hops += 1;
                    if hops > MAX_POINTER_HOPS {
                        return Err(WireError::BadPointer);
                    }
                    if !jumped {
                        wire_len = cursor + 2 - start;
                        jumped = true;
                    }
                    cursor = target;
                }
                _ => return Err(WireError::BadLabel), // 0x40/0x80 reserved
            }
        }
        *pos = start + wire_len;
        Ok(NameRef { msg, start, wire_len, encoded_len: total_len, label_count, skip: 0 })
    }

    /// Iterate the labels as raw (original-case) slices into the source
    /// buffer. Comparisons and canonical output lowercase on the fly.
    pub fn labels(&self) -> LabelsRef<'a> {
        let mut it = LabelsRef { msg: self.msg, cursor: self.start, remaining: self.label_count };
        for _ in 0..self.skip {
            it.next();
        }
        it
    }

    pub fn label_count(&self) -> usize {
        self.label_count - self.skip
    }

    pub fn is_root(&self) -> bool {
        self.label_count() == 0
    }

    /// Bytes the name occupies in place in the message (pointers count as
    /// two bytes, targets count as zero).
    pub fn wire_len(&self) -> usize {
        self.wire_len
    }

    /// Length of the uncompressed wire encoding of the visible suffix.
    pub fn encoded_len(&self) -> usize {
        if self.skip == 0 {
            self.encoded_len
        } else {
            self.labels().map(|l| l.len() + 1).sum::<usize>() + 1
        }
    }

    /// The borrowed parent view (`www.example.com` → `example.com`):
    /// same buffer, one more leading label hidden, no allocation. Returns
    /// the root view once all labels are hidden.
    pub fn parent(&self) -> NameRef<'a> {
        let mut p = *self;
        p.skip = (self.skip + 1).min(self.label_count);
        p
    }

    /// Case-insensitive comparison against an owned name, no allocation.
    pub fn eq_name(&self, other: &Name) -> bool {
        self.label_count() == other.label_count()
            && self.labels().zip(other.labels()).all(|(a, b)| a.eq_ignore_ascii_case(b))
    }

    /// Append the canonical (lowercased, uncompressed) wire encoding to
    /// `out`. This is the interning key format: identical names — whatever
    /// their case or compression in the source message — produce identical
    /// bytes, without building a `Name` or a `String` first.
    pub fn write_canonical(&self, out: &mut Vec<u8>) {
        for l in self.labels() {
            out.push(l.len() as u8);
            out.extend(l.iter().map(|b| b.to_ascii_lowercase()));
        }
        out.push(0);
    }

    /// Materialize the owned, lowercase [`Name`] — exactly what
    /// [`Name::decode`] would have returned for the same bytes.
    pub fn to_owned(&self) -> Name {
        Name::from_validated_labels(self.labels().map(|l| l.to_ascii_lowercase()).collect())
    }
}

impl PartialEq for NameRef<'_> {
    fn eq(&self, other: &NameRef<'_>) -> bool {
        self.label_count() == other.label_count()
            && self.labels().zip(other.labels()).all(|(a, b)| a.eq_ignore_ascii_case(b))
    }
}

impl Eq for NameRef<'_> {}

impl fmt::Display for NameRef<'_> {
    /// Matches `Name`'s dotted display (lowercased, escaped) so logs and
    /// forensics read identically whichever parser produced the name.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_root() {
            return write!(f, ".");
        }
        for (i, l) in self.labels().enumerate() {
            if i > 0 {
                write!(f, ".")?;
            }
            for &b in l {
                let b = b.to_ascii_lowercase();
                if b.is_ascii_graphic() && b != b'.' && b != b'\\' {
                    write!(f, "{}", b as char)?;
                } else {
                    write!(f, "\\{:03}", b)?;
                }
            }
        }
        Ok(())
    }
}

impl fmt::Debug for NameRef<'_> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{self}")
    }
}

/// Iterator over a [`NameRef`]'s labels as borrowed slices.
#[derive(Clone)]
pub struct LabelsRef<'a> {
    msg: &'a [u8],
    cursor: usize,
    remaining: usize,
}

impl<'a> Iterator for LabelsRef<'a> {
    type Item = &'a [u8];

    fn next(&mut self) -> Option<&'a [u8]> {
        // The walk was validated at parse time; the `?`s here are
        // belt-and-braces against misuse, not reachable on a parsed name.
        while self.remaining > 0 {
            let tag = *self.msg.get(self.cursor)?;
            if tag & 0xC0 == 0xC0 {
                let lo = *self.msg.get(self.cursor + 1)? as usize;
                self.cursor = (((tag & 0x3F) as usize) << 8) | lo;
            } else {
                let len = (tag & 0x3F) as usize;
                let label = self.msg.get(self.cursor + 1..self.cursor + 1 + len)?;
                self.cursor += 1 + len;
                self.remaining -= 1;
                return Some(label);
            }
        }
        None
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        (self.remaining, Some(self.remaining))
    }
}

impl ExactSizeIterator for LabelsRef<'_> {}

/// A borrowed question-section entry.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct QuestionRef<'a> {
    pub name: NameRef<'a>,
    pub rtype: RrType,
    pub class: RrClass,
}

impl QuestionRef<'_> {
    pub fn to_owned(&self) -> Question {
        Question { name: self.name.to_owned(), rtype: self.rtype, class: self.class }
    }
}

/// Borrowed TXT rdata: the raw (validated) segment bytes, iterated as
/// length-prefixed slices without copying.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct TxtRef<'a> {
    data: &'a [u8],
}

impl<'a> TxtRef<'a> {
    pub fn iter(&self) -> TxtSegments<'a> {
        TxtSegments { data: self.data }
    }

    /// The raw length-prefixed segment bytes.
    pub fn as_bytes(&self) -> &'a [u8] {
        self.data
    }
}

impl<'a> IntoIterator for &TxtRef<'a> {
    type Item = &'a [u8];
    type IntoIter = TxtSegments<'a>;
    fn into_iter(self) -> TxtSegments<'a> {
        self.iter()
    }
}

/// Iterator over TXT character-strings as borrowed slices.
#[derive(Clone)]
pub struct TxtSegments<'a> {
    data: &'a [u8],
}

impl<'a> Iterator for TxtSegments<'a> {
    type Item = &'a [u8];

    fn next(&mut self) -> Option<&'a [u8]> {
        let (&len, rest) = self.data.split_first()?;
        let (seg, rest) = rest.split_at(len as usize); // validated at parse
        self.data = rest;
        Some(seg)
    }
}

/// Borrowed RDATA: names are [`NameRef`]s, byte payloads are slices into
/// the source message. Fixed-width numeric fields are decoded inline (they
/// are cheaper to carry than to re-read).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum RDataRef<'a> {
    A(Ipv4Addr),
    Aaaa(Ipv6Addr),
    Ns(NameRef<'a>),
    Cname(NameRef<'a>),
    Ptr(NameRef<'a>),
    Mx {
        preference: u16,
        exchange: NameRef<'a>,
    },
    Txt(TxtRef<'a>),
    Soa {
        mname: NameRef<'a>,
        rname: NameRef<'a>,
        serial: u32,
        refresh: u32,
        retry: u32,
        expire: u32,
        minimum: u32,
    },
    Opaque {
        rtype: u16,
        data: &'a [u8],
    },
}

impl<'a> RDataRef<'a> {
    /// Parse RDATA of type `rtype` occupying `msg[*pos .. *pos + rdlen]`,
    /// mirroring [`RData::decode`] error for error.
    pub fn parse(
        msg: &'a [u8],
        pos: &mut usize,
        rtype: RrType,
        rdlen: usize,
    ) -> Result<RDataRef<'a>, WireError> {
        let start = *pos;
        let end = start + rdlen;
        if end > msg.len() {
            return Err(WireError::Truncated);
        }
        let out = match rtype {
            RrType::A => {
                if rdlen != 4 {
                    return Err(WireError::BadRdata);
                }
                RDataRef::A(Ipv4Addr::new(
                    msg[start],
                    msg[start + 1],
                    msg[start + 2],
                    msg[start + 3],
                ))
            }
            RrType::Aaaa => {
                if rdlen != 16 {
                    return Err(WireError::BadRdata);
                }
                let mut o = [0u8; 16];
                o.copy_from_slice(&msg[start..end]);
                RDataRef::Aaaa(Ipv6Addr::from(o))
            }
            RrType::Ns | RrType::Cname | RrType::Ptr => {
                let mut p = start;
                let name = NameRef::parse(msg, &mut p)?;
                if p > end {
                    return Err(WireError::BadRdata);
                }
                match rtype {
                    RrType::Ns => RDataRef::Ns(name),
                    RrType::Cname => RDataRef::Cname(name),
                    _ => RDataRef::Ptr(name),
                }
            }
            RrType::Mx => {
                if rdlen < 3 {
                    return Err(WireError::BadRdata);
                }
                let preference = u16::from_be_bytes([msg[start], msg[start + 1]]);
                let mut p = start + 2;
                let exchange = NameRef::parse(msg, &mut p)?;
                if p > end {
                    return Err(WireError::BadRdata);
                }
                RDataRef::Mx { preference, exchange }
            }
            RrType::Txt => {
                // Validate the segment walk now; iteration later is free.
                let mut p = start;
                while p < end {
                    let l = msg[p] as usize;
                    p += 1;
                    if p + l > end {
                        return Err(WireError::BadRdata);
                    }
                    p += l;
                }
                RDataRef::Txt(TxtRef { data: &msg[start..end] })
            }
            RrType::Soa => {
                let mut p = start;
                let mname = NameRef::parse(msg, &mut p)?;
                let rname = NameRef::parse(msg, &mut p)?;
                if p + 20 > end {
                    return Err(WireError::BadRdata);
                }
                let u32_at =
                    |q: usize| u32::from_be_bytes([msg[q], msg[q + 1], msg[q + 2], msg[q + 3]]);
                RDataRef::Soa {
                    mname,
                    rname,
                    serial: u32_at(p),
                    refresh: u32_at(p + 4),
                    retry: u32_at(p + 8),
                    expire: u32_at(p + 12),
                    minimum: u32_at(p + 16),
                }
            }
            RrType::Opt | RrType::Other(_) => {
                RDataRef::Opaque { rtype: rtype.code(), data: &msg[start..end] }
            }
        };
        *pos = end;
        Ok(out)
    }

    pub fn rtype(&self) -> RrType {
        match self {
            RDataRef::A(_) => RrType::A,
            RDataRef::Aaaa(_) => RrType::Aaaa,
            RDataRef::Ns(_) => RrType::Ns,
            RDataRef::Cname(_) => RrType::Cname,
            RDataRef::Ptr(_) => RrType::Ptr,
            RDataRef::Mx { .. } => RrType::Mx,
            RDataRef::Txt(_) => RrType::Txt,
            RDataRef::Soa { .. } => RrType::Soa,
            RDataRef::Opaque { rtype, .. } => RrType::from_code(*rtype),
        }
    }

    pub fn to_owned(&self) -> RData {
        match self {
            RDataRef::A(a) => RData::A(*a),
            RDataRef::Aaaa(a) => RData::Aaaa(*a),
            RDataRef::Ns(n) => RData::Ns(n.to_owned()),
            RDataRef::Cname(n) => RData::Cname(n.to_owned()),
            RDataRef::Ptr(n) => RData::Ptr(n.to_owned()),
            RDataRef::Mx { preference, exchange } => {
                RData::Mx { preference: *preference, exchange: exchange.to_owned() }
            }
            RDataRef::Txt(t) => RData::Txt(t.iter().map(|s| s.to_vec()).collect()),
            RDataRef::Soa { mname, rname, serial, refresh, retry, expire, minimum } => RData::Soa {
                mname: mname.to_owned(),
                rname: rname.to_owned(),
                serial: *serial,
                refresh: *refresh,
                retry: *retry,
                expire: *expire,
                minimum: *minimum,
            },
            RDataRef::Opaque { rtype, data } => {
                RData::Opaque { rtype: *rtype, data: data.to_vec() }
            }
        }
    }
}

/// A borrowed resource record.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct RecordRef<'a> {
    pub name: NameRef<'a>,
    pub class: RrClass,
    pub ttl: u32,
    pub rdata: RDataRef<'a>,
}

impl RecordRef<'_> {
    pub fn rtype(&self) -> RrType {
        self.rdata.rtype()
    }

    pub fn to_owned(&self) -> Record {
        Record {
            name: self.name.to_owned(),
            class: self.class,
            ttl: self.ttl,
            rdata: self.rdata.to_owned(),
        }
    }
}

/// A borrowed view of a whole DNS message. Section vectors hold
/// fixed-size view structs; no label or rdata bytes are copied.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct MessageRef<'a> {
    pub header: Header,
    pub questions: Vec<QuestionRef<'a>>,
    pub answers: Vec<RecordRef<'a>>,
    pub authorities: Vec<RecordRef<'a>>,
    pub additionals: Vec<RecordRef<'a>>,
}

impl<'a> MessageRef<'a> {
    /// Parse from wire format, mirroring [`Message::decode`] error for
    /// error.
    pub fn parse(msg: &'a [u8]) -> Result<MessageRef<'a>, WireError> {
        if msg.len() < 12 {
            return Err(WireError::Truncated);
        }
        let u16_at = |i: usize| u16::from_be_bytes([msg[i], msg[i + 1]]);
        let header = Header { id: u16_at(0), flags: Flags::from_u16(u16_at(2)) };
        let qd = u16_at(4) as usize;
        let an = u16_at(6) as usize;
        let ns = u16_at(8) as usize;
        let ar = u16_at(10) as usize;
        let mut pos = 12;
        // Cap pre-allocation: a 12-byte message can claim 65535 entries.
        let mut questions = Vec::with_capacity(qd.min(64));
        for _ in 0..qd {
            let name = NameRef::parse(msg, &mut pos)?;
            if pos + 4 > msg.len() {
                return Err(WireError::Truncated);
            }
            let rtype = RrType::from_code(u16::from_be_bytes([msg[pos], msg[pos + 1]]));
            let class = RrClass::from_code(u16::from_be_bytes([msg[pos + 2], msg[pos + 3]]));
            pos += 4;
            questions.push(QuestionRef { name, rtype, class });
        }
        let parse_section = |count: usize,
                             pos: &mut usize|
         -> Result<Vec<RecordRef<'a>>, WireError> {
            let mut out = Vec::with_capacity(count.min(64));
            for _ in 0..count {
                let name = NameRef::parse(msg, pos)?;
                if *pos + 10 > msg.len() {
                    return Err(WireError::Truncated);
                }
                let rtype = RrType::from_code(u16::from_be_bytes([msg[*pos], msg[*pos + 1]]));
                let class = RrClass::from_code(u16::from_be_bytes([msg[*pos + 2], msg[*pos + 3]]));
                let ttl = u32::from_be_bytes([
                    msg[*pos + 4],
                    msg[*pos + 5],
                    msg[*pos + 6],
                    msg[*pos + 7],
                ]);
                let rdlen = u16::from_be_bytes([msg[*pos + 8], msg[*pos + 9]]) as usize;
                *pos += 10;
                let rdata = RDataRef::parse(msg, pos, rtype, rdlen)?;
                out.push(RecordRef { name, class, ttl, rdata });
            }
            Ok(out)
        };
        let answers = parse_section(an, &mut pos)?;
        let authorities = parse_section(ns, &mut pos)?;
        let additionals = parse_section(ar, &mut pos)?;
        Ok(MessageRef { header, questions, answers, authorities, additionals })
    }

    pub fn rcode(&self) -> Rcode {
        self.header.flags.rcode()
    }

    /// The OPT pseudo-record (EDNS), if present in the additional section.
    pub fn opt_record(&self) -> Option<&RecordRef<'a>> {
        self.additionals.iter().find(|r| r.rtype() == RrType::Opt)
    }

    /// Advertised EDNS UDP payload size, if an OPT record is present.
    pub fn edns_udp_payload(&self) -> Option<u16> {
        self.opt_record().map(|r| r.class.code())
    }

    /// Materialize the owned [`Message`] — exactly what
    /// [`Message::decode`] would have returned for the same bytes.
    pub fn to_owned(&self) -> Message {
        Message {
            header: self.header,
            questions: self.questions.iter().map(QuestionRef::to_owned).collect(),
            answers: self.answers.iter().map(RecordRef::to_owned).collect(),
            authorities: self.authorities.iter().map(RecordRef::to_owned).collect(),
            additionals: self.additionals.iter().map(RecordRef::to_owned).collect(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::types::Rcode;

    fn n(s: &str) -> Name {
        s.parse().unwrap()
    }

    fn sample_response() -> Message {
        let q = Message::query(77, n("klant0.nl"), RrType::Ns);
        let mut r = Message::response_to(&q, Rcode::NoError, true);
        for i in 0..3 {
            r.answers.push(Record::new(
                n("klant0.nl"),
                3600,
                RData::Ns(n(&format!("ns{i}.transip.net"))),
            ));
            r.additionals.push(Record::new(
                n(&format!("ns{i}.transip.net")),
                3600,
                RData::A(format!("195.8.195.{i}").parse().unwrap()),
            ));
        }
        r
    }

    #[test]
    fn parse_matches_owned_decode_on_sample() {
        let wire = sample_response().encode();
        let owned = Message::decode(&wire).unwrap();
        let view = MessageRef::parse(&wire).unwrap();
        assert_eq!(view.to_owned(), owned);
        assert_eq!(view.rcode(), owned.rcode());
        assert_eq!(view.answers.len(), 3);
    }

    #[test]
    fn labels_are_slices_into_the_source_buffer() {
        let wire = sample_response().encode();
        let view = MessageRef::parse(&wire).unwrap();
        let range = wire.as_ptr() as usize..wire.as_ptr() as usize + wire.len();
        for q in &view.questions {
            for l in q.name.labels() {
                assert!(range.contains(&(l.as_ptr() as usize)), "label borrowed from elsewhere");
            }
        }
        if let RDataRef::Ns(target) = view.answers[0].rdata {
            for l in target.labels() {
                assert!(range.contains(&(l.as_ptr() as usize)));
            }
        } else {
            panic!("expected NS rdata");
        }
    }

    #[test]
    fn compressed_name_resolves_through_pointer() {
        let mut wire = Vec::new();
        wire.extend_from_slice(b"\x03mil\x02ru\x00"); // offset 0..8
        wire.extend_from_slice(b"\x03WWW\xC0\x00"); // offset 8..14
        let mut pos = 8;
        let name = NameRef::parse(&wire, &mut pos).unwrap();
        assert_eq!(pos, 14);
        assert_eq!(name.wire_len(), 6);
        assert_eq!(name.label_count(), 3);
        assert_eq!(name.encoded_len(), 12);
        assert_eq!(name.to_owned(), n("www.mil.ru"));
        assert_eq!(name.to_string(), "www.mil.ru");
        assert!(name.eq_name(&n("WWW.mil.RU").to_owned()));
    }

    #[test]
    fn parent_is_a_view_not_an_allocation() {
        let wire = b"\x03www\x03mil\x02ru\x00";
        let mut pos = 0;
        let name = NameRef::parse(wire, &mut pos).unwrap();
        let parent = name.parent();
        assert_eq!(parent.to_owned(), n("mil.ru"));
        assert_eq!(parent.label_count(), 2);
        assert_eq!(parent.encoded_len(), n("mil.ru").encoded_len());
        assert_eq!(parent.parent().parent().to_owned(), Name::root());
        assert!(parent.parent().parent().is_root());
        assert_eq!(parent.parent().parent().parent().label_count(), 0);
        assert_eq!(name.to_owned().parent(), parent.to_owned());
    }

    #[test]
    fn write_canonical_is_lowercase_uncompressed() {
        let mut wire = Vec::new();
        wire.extend_from_slice(b"\x02RU\x00"); // offset 0..4
        wire.extend_from_slice(b"\x03MiL\xC0\x00"); // offset 4..10
        let mut pos = 4;
        let name = NameRef::parse(&wire, &mut pos).unwrap();
        let mut canon = Vec::new();
        name.write_canonical(&mut canon);
        assert_eq!(&canon, b"\x03mil\x02ru\x00");
    }

    #[test]
    fn txt_segments_iterate_borrowed() {
        let rd = RData::Txt(vec![b"hello".to_vec(), vec![], b"world".to_vec()]);
        let mut buf = bytes::BytesMut::new();
        rd.encode(&mut buf, &mut std::collections::HashMap::new(), 0);
        let mut pos = 0;
        let view = RDataRef::parse(&buf, &mut pos, RrType::Txt, buf.len()).unwrap();
        let RDataRef::Txt(txt) = view else { panic!("expected TXT") };
        let segs: Vec<&[u8]> = txt.iter().collect();
        assert_eq!(segs, vec![b"hello".as_slice(), b"".as_slice(), b"world".as_slice()]);
        assert_eq!(view.to_owned(), rd);
    }

    #[test]
    fn edns_udp_payload_visible_through_view() {
        let mut m = Message::query(1, n("example.nl"), RrType::Ns);
        crate::edns::set_edns(&mut m, 1232);
        let wire = m.encode();
        let view = MessageRef::parse(&wire).unwrap();
        assert_eq!(view.edns_udp_payload(), Some(1232));
        assert!(view.opt_record().is_some());
    }

    #[test]
    fn view_errors_match_owned_on_malformed() {
        for wire in [&b"\x03mi"[..], &[0xC0, 0x00][..], &[0x40, 0x00][..]] {
            let mut p1 = 0;
            let mut p2 = 0;
            assert_eq!(
                NameRef::parse(wire, &mut p1).unwrap_err(),
                Name::decode(wire, &mut p2).unwrap_err(),
            );
        }
        assert_eq!(MessageRef::parse(&[0u8; 5]).unwrap_err(), WireError::Truncated);
    }
}
