//! Domain names: validation, textual form, and wire encoding with RFC 1035
//! message compression.

use crate::WireError;
use bytes::{BufMut, BytesMut};
use std::collections::HashMap;
use std::fmt;
use std::str::FromStr;

/// Maximum octets of a single label.
pub const MAX_LABEL: usize = 63;
/// Maximum octets of a whole encoded name (including length bytes and root).
pub const MAX_NAME: usize = 255;
/// Upper bound on compression-pointer hops while decoding; beyond this we
/// declare a loop. Shared by the owned decoder and the borrowed
/// [`NameRef`](crate::NameRef) parser so both reject at the same depth.
pub const MAX_POINTER_HOPS: usize = 64;

/// A fully-qualified domain name, stored as lowercase labels (DNS names are
/// case-insensitive; OpenINTEL normalizes to lowercase before joining).
#[derive(Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Name {
    labels: Vec<Vec<u8>>,
}

impl Name {
    /// The root name (`.`).
    pub fn root() -> Name {
        Name { labels: Vec::new() }
    }

    /// Build from label byte-strings. Validates label and name lengths.
    pub fn from_labels<I, L>(labels: I) -> Result<Name, WireError>
    where
        I: IntoIterator<Item = L>,
        L: AsRef<[u8]>,
    {
        let mut out: Vec<Vec<u8>> = Vec::new();
        for l in labels {
            let l = l.as_ref();
            if l.is_empty() || l.len() > MAX_LABEL {
                return Err(WireError::BadLabel);
            }
            out.push(l.to_ascii_lowercase());
        }
        let name = Name { labels: out };
        if name.encoded_len() > MAX_NAME {
            return Err(WireError::NameTooLong);
        }
        Ok(name)
    }

    pub fn labels(&self) -> &[Vec<u8>] {
        &self.labels
    }

    pub fn is_root(&self) -> bool {
        self.labels.is_empty()
    }

    pub fn label_count(&self) -> usize {
        self.labels.len()
    }

    /// Length of the uncompressed wire encoding (length bytes + labels +
    /// terminating root byte).
    pub fn encoded_len(&self) -> usize {
        self.labels.iter().map(|l| l.len() + 1).sum::<usize>() + 1
    }

    /// The name with its leftmost label removed (`www.example.com` →
    /// `example.com`). Returns root for a single-label name. Allocates an
    /// owned name; hot paths that only need to *look at* an ancestor
    /// should use the borrowed [`suffix`](Name::suffix) view instead.
    pub fn parent(&self) -> Name {
        Name { labels: self.labels.get(1..).unwrap_or(&[]).to_vec() }
    }

    /// Borrowed label suffix starting `skip` labels in — the
    /// allocation-free form of `skip` chained [`parent`](Name::parent)
    /// calls. The slice is directly usable as a hash-map key against
    /// `Name` keys (see the `Borrow<[Vec<u8>]>` impl), which is how
    /// [`encode_compressed`](Name::encode_compressed) walks ancestor
    /// chains without cloning a single label.
    pub fn suffix(&self, skip: usize) -> &[Vec<u8>] {
        &self.labels[skip.min(self.labels.len())..]
    }

    /// Whether `self` equals or is a subdomain of `zone`.
    pub fn is_subdomain_of(&self, zone: &Name) -> bool {
        if zone.labels.len() > self.labels.len() {
            return false;
        }
        self.labels[self.labels.len() - zone.labels.len()..] == zone.labels[..]
    }

    /// Prepend a label (`child("www")` on `example.com` →
    /// `www.example.com`).
    pub fn child(&self, label: &str) -> Result<Name, WireError> {
        let mut labels = Vec::with_capacity(self.labels.len() + 1);
        labels.push(label.as_bytes().to_vec());
        labels.extend(self.labels.iter().cloned());
        Name::from_labels(labels)
    }

    /// Encode without compression.
    pub fn encode_uncompressed(&self, buf: &mut BytesMut) {
        for l in &self.labels {
            buf.put_u8(l.len() as u8);
            buf.put_slice(l);
        }
        buf.put_u8(0);
    }

    /// Encode with compression against `table`, which maps already-emitted
    /// name suffixes to their offsets in the message. `base` is the offset
    /// of `buf`'s start within the whole message (0 for DNS over UDP).
    pub fn encode_compressed(
        &self,
        buf: &mut BytesMut,
        table: &mut HashMap<Name, u16>,
        base: usize,
    ) {
        // Longest already-emitted suffix (smallest start index), found by
        // borrowed slice lookup: no per-suffix Name clones on the hot path.
        let n = self.labels.len();
        let mut stop = n;
        let mut pointer = None;
        for i in 0..n {
            if let Some(&off) = table.get(&self.labels[i..]) {
                pointer = Some(off);
                stop = i;
                break;
            }
        }
        let mut emitted: Vec<(usize, u16)> = Vec::new();
        for i in 0..stop {
            let here = base + buf.len();
            // Pointers only address the first 16K − 2 bytes of a message.
            if here <= 0x3FFF {
                emitted.push((i, here as u16));
            }
            let l = &self.labels[i];
            buf.put_u8(l.len() as u8);
            buf.put_slice(l);
        }
        match pointer {
            Some(off) => buf.put_u16(0xC000 | off),
            None => buf.put_u8(0),
        }
        // Only suffixes the table has never seen allocate an owned key.
        for (i, off) in emitted {
            if !table.contains_key(&self.labels[i..]) {
                table.insert(Name { labels: self.labels[i..].to_vec() }, off);
            }
        }
    }

    /// Decode a (possibly compressed) name from `msg` starting at `*pos`.
    /// Advances `*pos` past the name's in-place bytes (not past pointer
    /// targets).
    pub fn decode(msg: &[u8], pos: &mut usize) -> Result<Name, WireError> {
        let mut labels: Vec<Vec<u8>> = Vec::new();
        let mut cursor = *pos;
        let mut jumped = false;
        let mut hops = 0usize;
        let mut total_len = 1usize; // terminating root byte
        loop {
            let tag = *msg.get(cursor).ok_or(WireError::Truncated)?;
            match tag & 0xC0 {
                0x00 => {
                    if !jumped {
                        *pos = cursor + 1;
                    }
                    if tag == 0 {
                        if !jumped {
                            *pos = cursor + 1;
                        }
                        break;
                    }
                    let len = tag as usize;
                    let label =
                        msg.get(cursor + 1..cursor + 1 + len).ok_or(WireError::Truncated)?;
                    total_len += len + 1;
                    if total_len > MAX_NAME {
                        return Err(WireError::NameTooLong);
                    }
                    labels.push(label.to_ascii_lowercase());
                    cursor += 1 + len;
                    if !jumped {
                        *pos = cursor;
                    }
                }
                0xC0 => {
                    let lo = *msg.get(cursor + 1).ok_or(WireError::Truncated)? as usize;
                    let target = (((tag & 0x3F) as usize) << 8) | lo;
                    // A pointer must point strictly backwards.
                    if target >= cursor {
                        return Err(WireError::BadPointer);
                    }
                    hops += 1;
                    if hops > MAX_POINTER_HOPS {
                        return Err(WireError::BadPointer);
                    }
                    if !jumped {
                        *pos = cursor + 2;
                        jumped = true;
                    }
                    cursor = target;
                }
                _ => return Err(WireError::BadLabel), // 0x40/0x80 reserved
            }
        }
        Ok(Name { labels })
    }

    /// Construct from labels the caller has already validated (label and
    /// name length limits hold, bytes already lowercased). Used by the
    /// borrowed view layer's `to_owned` so a validated parse does not pay
    /// for a second validation pass.
    pub(crate) fn from_validated_labels(labels: Vec<Vec<u8>>) -> Name {
        debug_assert!(labels.iter().all(|l| !l.is_empty() && l.len() <= MAX_LABEL));
        let name = Name { labels };
        debug_assert!(name.encoded_len() <= MAX_NAME);
        name
    }
}

/// `Name` hashes and compares exactly like its label slice (it is a
/// single-field struct with derived impls), so maps keyed by `Name` can be
/// probed with a borrowed `&[Vec<u8>]` suffix — the basis of the
/// clone-free compression-table lookups above.
impl std::borrow::Borrow<[Vec<u8>]> for Name {
    fn borrow(&self) -> &[Vec<u8>] {
        &self.labels
    }
}

impl FromStr for Name {
    type Err = WireError;

    /// Parse dotted notation. A trailing dot is accepted; `.` is the root.
    fn from_str(s: &str) -> Result<Name, WireError> {
        let s = s.strip_suffix('.').unwrap_or(s);
        if s.is_empty() {
            return Ok(Name::root());
        }
        Name::from_labels(s.split('.'))
    }
}

impl fmt::Display for Name {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.labels.is_empty() {
            return write!(f, ".");
        }
        for (i, l) in self.labels.iter().enumerate() {
            if i > 0 {
                write!(f, ".")?;
            }
            for &b in l {
                if b.is_ascii_graphic() && b != b'.' && b != b'\\' {
                    write!(f, "{}", b as char)?;
                } else {
                    write!(f, "\\{:03}", b)?;
                }
            }
        }
        Ok(())
    }
}
impl fmt::Debug for Name {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{self}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn n(s: &str) -> Name {
        s.parse().unwrap()
    }

    #[test]
    fn parse_and_display() {
        assert_eq!(n("Example.COM").to_string(), "example.com");
        assert_eq!(n("example.com.").to_string(), "example.com");
        assert_eq!(n(".").to_string(), ".");
        assert_eq!(Name::root().to_string(), ".");
        assert_eq!(n("mil.ru").label_count(), 2);
    }

    #[test]
    fn label_limits() {
        let long = "a".repeat(63);
        assert!(Name::from_labels([long.as_bytes()]).is_ok());
        let too_long = "a".repeat(64);
        assert_eq!(Name::from_labels([too_long.as_bytes()]).unwrap_err(), WireError::BadLabel);
        assert_eq!(Name::from_labels(["".as_bytes()]).unwrap_err(), WireError::BadLabel);
    }

    #[test]
    fn name_length_limit() {
        // Four 63-byte labels: 4*64 + 1 = 257 > 255.
        let l = "a".repeat(63);
        let labels = vec![l.clone(), l.clone(), l.clone(), l];
        assert_eq!(Name::from_labels(&labels).unwrap_err(), WireError::NameTooLong);
    }

    #[test]
    fn parent_and_subdomain() {
        let name = n("ns1.transip.nl");
        assert_eq!(name.parent(), n("transip.nl"));
        assert!(name.is_subdomain_of(&n("transip.nl")));
        assert!(name.is_subdomain_of(&n("nl")));
        assert!(name.is_subdomain_of(&Name::root()));
        assert!(!name.is_subdomain_of(&n("transip.com")));
        assert!(!n("nl").is_subdomain_of(&name));
        assert!(name.is_subdomain_of(&name));
    }

    #[test]
    fn suffix_is_the_borrowed_parent_chain() {
        let name = n("ns1.transip.nl");
        assert_eq!(name.suffix(0), name.labels());
        assert_eq!(name.suffix(1), name.parent().labels());
        assert_eq!(name.suffix(2), name.parent().parent().labels());
        assert!(name.suffix(3).is_empty());
        assert!(name.suffix(99).is_empty());
        assert!(Name::root().suffix(0).is_empty());
        assert_eq!(Name::root().parent(), Name::root());
    }

    #[test]
    fn child_builds_subdomain() {
        assert_eq!(n("example.com").child("www").unwrap(), n("www.example.com"));
    }

    #[test]
    fn encode_uncompressed_bytes() {
        let mut buf = BytesMut::new();
        n("mil.ru").encode_uncompressed(&mut buf);
        assert_eq!(&buf[..], b"\x03mil\x02ru\x00");
        assert_eq!(n("mil.ru").encoded_len(), 8);
    }

    #[test]
    fn decode_simple() {
        let wire = b"\x03mil\x02ru\x00rest";
        let mut pos = 0;
        let name = Name::decode(wire, &mut pos).unwrap();
        assert_eq!(name, n("mil.ru"));
        assert_eq!(pos, 8);
    }

    #[test]
    fn decode_uppercase_normalizes() {
        let wire = b"\x03MIL\x02RU\x00";
        let mut pos = 0;
        assert_eq!(Name::decode(wire, &mut pos).unwrap(), n("mil.ru"));
    }

    #[test]
    fn compression_roundtrip_shares_suffix() {
        let mut buf = BytesMut::new();
        let mut table = HashMap::new();
        n("ns1.example.com").encode_compressed(&mut buf, &mut table, 0);
        let first_len = buf.len();
        n("ns2.example.com").encode_compressed(&mut buf, &mut table, 0);
        // Second name should be label "ns2" (4 bytes) + pointer (2 bytes).
        assert_eq!(buf.len() - first_len, 6);
        let mut pos = 0;
        assert_eq!(Name::decode(&buf, &mut pos).unwrap(), n("ns1.example.com"));
        assert_eq!(pos, first_len);
        assert_eq!(Name::decode(&buf, &mut pos).unwrap(), n("ns2.example.com"));
        assert_eq!(pos, buf.len());
    }

    #[test]
    fn identical_name_becomes_pure_pointer() {
        let mut buf = BytesMut::new();
        let mut table = HashMap::new();
        n("example.com").encode_compressed(&mut buf, &mut table, 0);
        let first_len = buf.len();
        n("example.com").encode_compressed(&mut buf, &mut table, 0);
        assert_eq!(buf.len() - first_len, 2);
    }

    #[test]
    fn pointer_loop_rejected() {
        // Pointer at offset 0 pointing to itself is forward/equal → rejected.
        let wire = [0xC0, 0x00];
        let mut pos = 0;
        assert_eq!(Name::decode(&wire, &mut pos), Err(WireError::BadPointer));
    }

    #[test]
    fn forward_pointer_rejected() {
        let wire = [0xC0, 0x04, 0x00, 0x00, 0x00];
        let mut pos = 0;
        assert_eq!(Name::decode(&wire, &mut pos), Err(WireError::BadPointer));
    }

    #[test]
    fn truncated_name_rejected() {
        let wire = b"\x03mi";
        let mut pos = 0;
        assert_eq!(Name::decode(wire, &mut pos), Err(WireError::Truncated));
        let wire2 = b"\x03mil"; // missing terminator
        let mut pos2 = 0;
        assert_eq!(Name::decode(wire2, &mut pos2), Err(WireError::Truncated));
    }

    #[test]
    fn reserved_label_tags_rejected() {
        let wire = [0x40, 0x00];
        let mut pos = 0;
        assert_eq!(Name::decode(&wire, &mut pos), Err(WireError::BadLabel));
        let wire = [0x80, 0x00];
        let mut pos = 0;
        assert_eq!(Name::decode(&wire, &mut pos), Err(WireError::BadLabel));
    }

    #[test]
    fn non_ascii_labels_escape_in_display() {
        let name = Name::from_labels([&[0xFFu8, b'a'][..]]).unwrap();
        assert_eq!(name.to_string(), "\\255a");
    }

    #[test]
    fn decode_after_pointer_resumes_correctly() {
        // Message: name1 at 0, then at offset 8 a name "www" + ptr→0, then a
        // trailing byte. pos must end just past the pointer.
        let mut wire = Vec::new();
        wire.extend_from_slice(b"\x03mil\x02ru\x00"); // offset 0..8
        wire.extend_from_slice(b"\x03www\xC0\x00"); // offset 8..14
        wire.push(0xAB);
        let mut pos = 8;
        let name = Name::decode(&wire, &mut pos).unwrap();
        assert_eq!(name, n("www.mil.ru"));
        assert_eq!(pos, 14);
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    fn arb_label() -> impl Strategy<Value = String> {
        "[a-z0-9-]{1,20}"
    }

    fn arb_name() -> impl Strategy<Value = Name> {
        prop::collection::vec(arb_label(), 0..6)
            .prop_map(|ls| Name::from_labels(ls.iter().map(|s| s.as_bytes())).unwrap())
    }

    proptest! {
        #[test]
        fn uncompressed_roundtrip(name in arb_name()) {
            let mut buf = BytesMut::new();
            name.encode_uncompressed(&mut buf);
            prop_assert_eq!(buf.len(), name.encoded_len());
            let mut pos = 0;
            let back = Name::decode(&buf, &mut pos).unwrap();
            prop_assert_eq!(back, name);
            prop_assert_eq!(pos, buf.len());
        }

        #[test]
        fn compressed_roundtrip_many(names in prop::collection::vec(arb_name(), 1..12)) {
            let mut buf = BytesMut::new();
            let mut table = HashMap::new();
            let mut offsets = Vec::new();
            for name in &names {
                offsets.push(buf.len());
                name.encode_compressed(&mut buf, &mut table, 0);
            }
            for (name, &off) in names.iter().zip(&offsets) {
                let mut pos = off;
                let back = Name::decode(&buf, &mut pos).unwrap();
                prop_assert_eq!(&back, name);
            }
        }

        #[test]
        fn compression_never_longer(names in prop::collection::vec(arb_name(), 1..12)) {
            let mut cbuf = BytesMut::new();
            let mut table = HashMap::new();
            let mut ubuf = BytesMut::new();
            for name in &names {
                name.encode_compressed(&mut cbuf, &mut table, 0);
                name.encode_uncompressed(&mut ubuf);
            }
            prop_assert!(cbuf.len() <= ubuf.len());
        }

        #[test]
        fn decode_arbitrary_bytes_never_panics(bytes in prop::collection::vec(any::<u8>(), 0..300)) {
            let mut pos = 0;
            let _ = Name::decode(&bytes, &mut pos);
        }

        #[test]
        fn display_parse_roundtrip(name in arb_name()) {
            let s = name.to_string();
            let back: Name = s.parse().unwrap();
            prop_assert_eq!(back, name);
        }
    }
}
