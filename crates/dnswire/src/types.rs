//! Enumerations of the DNS constants the study touches.

use std::fmt;

/// Resource record types.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub enum RrType {
    A,
    Ns,
    Cname,
    Soa,
    Ptr,
    Mx,
    Txt,
    Aaaa,
    Opt,
    /// Any type this crate does not model structurally.
    Other(u16),
}

impl RrType {
    pub fn code(self) -> u16 {
        match self {
            RrType::A => 1,
            RrType::Ns => 2,
            RrType::Cname => 5,
            RrType::Soa => 6,
            RrType::Ptr => 12,
            RrType::Mx => 15,
            RrType::Txt => 16,
            RrType::Aaaa => 28,
            RrType::Opt => 41,
            RrType::Other(c) => c,
        }
    }

    pub fn from_code(c: u16) -> RrType {
        match c {
            1 => RrType::A,
            2 => RrType::Ns,
            5 => RrType::Cname,
            6 => RrType::Soa,
            12 => RrType::Ptr,
            15 => RrType::Mx,
            16 => RrType::Txt,
            28 => RrType::Aaaa,
            41 => RrType::Opt,
            other => RrType::Other(other),
        }
    }
}

impl fmt::Display for RrType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RrType::Other(c) => write!(f, "TYPE{c}"),
            t => write!(f, "{}", format!("{t:?}").to_uppercase()),
        }
    }
}

/// Record classes. Only IN matters here, but the wire field is preserved.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum RrClass {
    In,
    Ch,
    Hs,
    Other(u16),
}

impl RrClass {
    pub fn code(self) -> u16 {
        match self {
            RrClass::In => 1,
            RrClass::Ch => 3,
            RrClass::Hs => 4,
            RrClass::Other(c) => c,
        }
    }
    pub fn from_code(c: u16) -> RrClass {
        match c {
            1 => RrClass::In,
            3 => RrClass::Ch,
            4 => RrClass::Hs,
            other => RrClass::Other(other),
        }
    }
}

/// Query opcodes.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum Opcode {
    Query,
    Status,
    Notify,
    Update,
    Other(u8),
}

impl Opcode {
    pub fn code(self) -> u8 {
        match self {
            Opcode::Query => 0,
            Opcode::Status => 2,
            Opcode::Notify => 4,
            Opcode::Update => 5,
            Opcode::Other(c) => c & 0x0F,
        }
    }
    pub fn from_code(c: u8) -> Opcode {
        match c & 0x0F {
            0 => Opcode::Query,
            2 => Opcode::Status,
            4 => Opcode::Notify,
            5 => Opcode::Update,
            other => Opcode::Other(other),
        }
    }
}

/// Response codes. OpenINTEL's status column collapses these (plus
/// timeouts, which never make it onto the wire) into its OK / SERVFAIL /
/// TIMEOUT taxonomy.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum Rcode {
    NoError,
    FormErr,
    ServFail,
    NxDomain,
    NotImp,
    Refused,
    Other(u8),
}

impl Rcode {
    pub fn code(self) -> u8 {
        match self {
            Rcode::NoError => 0,
            Rcode::FormErr => 1,
            Rcode::ServFail => 2,
            Rcode::NxDomain => 3,
            Rcode::NotImp => 4,
            Rcode::Refused => 5,
            Rcode::Other(c) => c & 0x0F,
        }
    }
    pub fn from_code(c: u8) -> Rcode {
        match c & 0x0F {
            0 => Rcode::NoError,
            1 => Rcode::FormErr,
            2 => Rcode::ServFail,
            3 => Rcode::NxDomain,
            4 => Rcode::NotImp,
            5 => Rcode::Refused,
            other => Rcode::Other(other),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rrtype_roundtrip() {
        for t in [
            RrType::A,
            RrType::Ns,
            RrType::Cname,
            RrType::Soa,
            RrType::Ptr,
            RrType::Mx,
            RrType::Txt,
            RrType::Aaaa,
            RrType::Opt,
            RrType::Other(999),
        ] {
            assert_eq!(RrType::from_code(t.code()), t);
        }
        assert_eq!(RrType::from_code(2), RrType::Ns);
        assert_eq!(RrType::A.code(), 1);
        assert_eq!(RrType::Aaaa.code(), 28);
    }

    #[test]
    fn class_roundtrip() {
        for c in [RrClass::In, RrClass::Ch, RrClass::Hs, RrClass::Other(250)] {
            assert_eq!(RrClass::from_code(c.code()), c);
        }
    }

    #[test]
    fn opcode_roundtrip_and_masking() {
        for o in [Opcode::Query, Opcode::Status, Opcode::Notify, Opcode::Update] {
            assert_eq!(Opcode::from_code(o.code()), o);
        }
        // High bits are masked off.
        assert_eq!(Opcode::from_code(0xF0), Opcode::Query);
    }

    #[test]
    fn rcode_roundtrip() {
        for r in [
            Rcode::NoError,
            Rcode::FormErr,
            Rcode::ServFail,
            Rcode::NxDomain,
            Rcode::NotImp,
            Rcode::Refused,
            Rcode::Other(9),
        ] {
            assert_eq!(Rcode::from_code(r.code()), r);
        }
    }
}
