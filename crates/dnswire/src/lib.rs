//! DNS wire format, implemented from scratch (RFC 1035 plus the handful of
//! record types this study needs).
//!
//! The OpenINTEL-style measurement platform and the reactive prober build
//! real query/response messages through this crate, and the pcap exporter
//! frames them into UDP packets — so the simulated measurement path
//! exercises an honest encode/decode cycle rather than passing structs
//! around.
//!
//! - [`name`]: domain names with label validation and RFC 1035 §4.1.4
//!   compression (encode and decode, with pointer-loop protection).
//! - [`types`]: record types, classes, opcodes, rcodes.
//! - [`rdata`]: typed RDATA for A, AAAA, NS, CNAME, SOA, MX, TXT, PTR, and
//!   an opaque fallback.
//! - [`message`]: header, question and resource-record sections, full
//!   message encode/decode.
//! - [`tcp`]: DNS-over-TCP framing and an incremental stream decoder.
//! - [`edns`]: EDNS(0) OPT handling and UDP-payload fit checks.
//! - [`zonefile`]: RFC 1035 master-file parsing.
//! - [`view`]: borrowed, zero-copy message views ([`MessageRef`] /
//!   [`RecordRef`] / [`NameRef`]) for the hot parse paths; the owned
//!   decoders above are the differential reference.

pub mod edns;
pub mod message;
pub mod name;
pub mod rdata;
pub mod tcp;
pub mod types;
pub mod view;
pub mod zonefile;

pub use bytes::{Bytes, BytesMut};
pub use edns::{edns_options, edns_udp_payload, fits_udp, set_edns, EdnsOption};
pub use message::{Flags, Header, Message, Question, Record};
pub use name::{Name, MAX_POINTER_HOPS};
pub use rdata::RData;
pub use tcp::{decode_tcp, decode_tcp_ref, encode_tcp, TcpStreamDecoder};
pub use types::{Opcode, Rcode, RrClass, RrType};
pub use view::{MessageRef, NameRef, QuestionRef, RDataRef, RecordRef, TxtRef};
pub use zonefile::{parse_zone, ZoneError};

/// Errors produced while decoding wire-format data.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WireError {
    /// Input ended before the structure was complete.
    Truncated,
    /// A domain-name label exceeded 63 octets or used a reserved tag.
    BadLabel,
    /// A whole name exceeded 255 octets.
    NameTooLong,
    /// Compression pointers formed a loop or pointed forward.
    BadPointer,
    /// RDATA length disagreed with its type's structure.
    BadRdata,
    /// A count field promised more records than the message holds.
    BadCount,
}

impl std::fmt::Display for WireError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            WireError::Truncated => write!(f, "message truncated"),
            WireError::BadLabel => write!(f, "invalid label"),
            WireError::NameTooLong => write!(f, "name exceeds 255 octets"),
            WireError::BadPointer => write!(f, "invalid compression pointer"),
            WireError::BadRdata => write!(f, "malformed rdata"),
            WireError::BadCount => write!(f, "section count mismatch"),
        }
    }
}
impl std::error::Error for WireError {}
