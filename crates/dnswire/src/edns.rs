//! EDNS(0) (RFC 6891): the OPT pseudo-record that advertises a larger UDP
//! payload size — the mechanism that let DNSSEC's big responses stay on
//! UDP, and whose absence pushes resolution to TCP (§6.2's context).

use crate::message::{Message, Record};
use crate::name::Name;
use crate::rdata::RData;
use crate::types::RrType;

/// The conventional EDNS payload size OpenINTEL-era resolvers advertise.
pub const DEFAULT_UDP_PAYLOAD: u16 = 1232;

/// Attach an OPT pseudo-record advertising `udp_payload` to the additional
/// section (replacing any existing OPT).
pub fn set_edns(msg: &mut Message, udp_payload: u16) {
    msg.additionals.retain(|r| r.rdata.rtype() != RrType::Opt);
    // OPT abuses the record fields: owner = root, class = payload size,
    // TTL = extended flags (zero here).
    msg.additionals.push(Record {
        name: Name::root(),
        class: crate::types::RrClass::Other(udp_payload),
        ttl: 0,
        rdata: RData::Opaque { rtype: RrType::Opt.code(), data: Vec::new() },
    });
}

/// The advertised EDNS UDP payload size, if the message carries OPT.
pub fn edns_udp_payload(msg: &Message) -> Option<u16> {
    msg.additionals.iter().find(|r| r.rdata.rtype() == RrType::Opt).map(|r| r.class.code())
}

/// Whether a response of `response_len` bytes fits the requester's
/// advertised payload (or the 512-byte classic limit without EDNS);
/// otherwise the server would set TC and force a TCP retry.
pub fn fits_udp(query: &Message, response_len: usize) -> bool {
    let limit = edns_udp_payload(query).unwrap_or(512) as usize;
    response_len <= limit
}

/// One EDNS option: a `(code, payload)` TLV borrowed from the OPT rdata.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct EdnsOption<'a> {
    pub code: u16,
    pub data: &'a [u8],
}

/// Iterate the options inside OPT rdata as borrowed slices. Works off any
/// OPT payload — `RData::Opaque { data, .. }` from the owned decoder or
/// `RDataRef::Opaque { data, .. }` from the view layer — without copying.
/// A malformed tail yields one `Err(WireError::Truncated)` and stops.
pub fn edns_options(opt_rdata: &[u8]) -> EdnsOptions<'_> {
    EdnsOptions { data: opt_rdata }
}

/// Iterator over [`EdnsOption`]s; see [`edns_options`].
#[derive(Clone)]
pub struct EdnsOptions<'a> {
    data: &'a [u8],
}

impl<'a> Iterator for EdnsOptions<'a> {
    type Item = Result<EdnsOption<'a>, crate::WireError>;

    fn next(&mut self) -> Option<Self::Item> {
        if self.data.is_empty() {
            return None;
        }
        if self.data.len() < 4 {
            self.data = &[];
            return Some(Err(crate::WireError::Truncated));
        }
        let code = u16::from_be_bytes([self.data[0], self.data[1]]);
        let len = u16::from_be_bytes([self.data[2], self.data[3]]) as usize;
        if 4 + len > self.data.len() {
            self.data = &[];
            return Some(Err(crate::WireError::Truncated));
        }
        let opt = EdnsOption { code, data: &self.data[4..4 + len] };
        self.data = &self.data[4 + len..];
        Some(Ok(opt))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::types::Rcode;

    fn query() -> Message {
        Message::query(9, "signed.example".parse().unwrap(), RrType::Ns)
    }

    #[test]
    fn set_and_read_payload() {
        let mut q = query();
        assert_eq!(edns_udp_payload(&q), None);
        set_edns(&mut q, DEFAULT_UDP_PAYLOAD);
        assert_eq!(edns_udp_payload(&q), Some(1232));
        // Replacing, not stacking.
        set_edns(&mut q, 4096);
        assert_eq!(edns_udp_payload(&q), Some(4096));
        assert_eq!(q.additionals.iter().filter(|r| r.rdata.rtype() == RrType::Opt).count(), 1);
    }

    #[test]
    fn opt_survives_the_wire() {
        let mut q = query();
        set_edns(&mut q, 1232);
        let back = Message::decode(&q.encode()).unwrap();
        assert_eq!(edns_udp_payload(&back), Some(1232));
    }

    #[test]
    fn fits_udp_with_and_without_edns() {
        let plain = query();
        assert!(fits_udp(&plain, 512));
        assert!(!fits_udp(&plain, 513), "no EDNS → classic 512-byte limit");
        let mut e = query();
        set_edns(&mut e, 1232);
        assert!(fits_udp(&e, 1232));
        assert!(!fits_udp(&e, 1233));
    }

    #[test]
    fn edns_options_iterate_as_borrowed_slices() {
        // Two TLVs: cookie-style (code 10) and an empty one (code 5).
        let rdata = [0x00, 0x0A, 0x00, 0x03, 0xAA, 0xBB, 0xCC, 0x00, 0x05, 0x00, 0x00];
        let opts: Vec<_> = edns_options(&rdata).collect::<Result<_, _>>().unwrap();
        assert_eq!(opts.len(), 2);
        assert_eq!(opts[0], EdnsOption { code: 10, data: &[0xAA, 0xBB, 0xCC] });
        assert_eq!(opts[1], EdnsOption { code: 5, data: &[] });
        let base = rdata.as_ptr() as usize;
        assert_eq!(opts[0].data.as_ptr() as usize, base + 4, "payload borrowed in place");
        assert!(edns_options(&[]).next().is_none());
    }

    #[test]
    fn edns_options_malformed_tail_errors_once() {
        // Header claims 5 payload bytes, only 1 present.
        let rdata = [0x00, 0x0A, 0x00, 0x05, 0xAA];
        let mut it = edns_options(&rdata);
        assert_eq!(it.next(), Some(Err(crate::WireError::Truncated)));
        assert_eq!(it.next(), None);
        // A 3-byte fragment cannot even hold the TLV header.
        let mut it = edns_options(&[0x00, 0x0A, 0x00]);
        assert_eq!(it.next(), Some(Err(crate::WireError::Truncated)));
        assert_eq!(it.next(), None);
    }

    #[test]
    fn responses_can_carry_opt_too() {
        let mut q = query();
        set_edns(&mut q, 1232);
        let mut r = Message::response_to(&q, Rcode::NoError, true);
        set_edns(&mut r, 1400);
        assert_eq!(edns_udp_payload(&r), Some(1400));
    }
}
