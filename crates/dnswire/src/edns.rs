//! EDNS(0) (RFC 6891): the OPT pseudo-record that advertises a larger UDP
//! payload size — the mechanism that let DNSSEC's big responses stay on
//! UDP, and whose absence pushes resolution to TCP (§6.2's context).

use crate::message::{Message, Record};
use crate::name::Name;
use crate::rdata::RData;
use crate::types::RrType;

/// The conventional EDNS payload size OpenINTEL-era resolvers advertise.
pub const DEFAULT_UDP_PAYLOAD: u16 = 1232;

/// Attach an OPT pseudo-record advertising `udp_payload` to the additional
/// section (replacing any existing OPT).
pub fn set_edns(msg: &mut Message, udp_payload: u16) {
    msg.additionals.retain(|r| r.rdata.rtype() != RrType::Opt);
    // OPT abuses the record fields: owner = root, class = payload size,
    // TTL = extended flags (zero here).
    msg.additionals.push(Record {
        name: Name::root(),
        class: crate::types::RrClass::Other(udp_payload),
        ttl: 0,
        rdata: RData::Opaque { rtype: RrType::Opt.code(), data: Vec::new() },
    });
}

/// The advertised EDNS UDP payload size, if the message carries OPT.
pub fn edns_udp_payload(msg: &Message) -> Option<u16> {
    msg.additionals.iter().find(|r| r.rdata.rtype() == RrType::Opt).map(|r| r.class.code())
}

/// Whether a response of `response_len` bytes fits the requester's
/// advertised payload (or the 512-byte classic limit without EDNS);
/// otherwise the server would set TC and force a TCP retry.
pub fn fits_udp(query: &Message, response_len: usize) -> bool {
    let limit = edns_udp_payload(query).unwrap_or(512) as usize;
    response_len <= limit
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::types::Rcode;

    fn query() -> Message {
        Message::query(9, "signed.example".parse().unwrap(), RrType::Ns)
    }

    #[test]
    fn set_and_read_payload() {
        let mut q = query();
        assert_eq!(edns_udp_payload(&q), None);
        set_edns(&mut q, DEFAULT_UDP_PAYLOAD);
        assert_eq!(edns_udp_payload(&q), Some(1232));
        // Replacing, not stacking.
        set_edns(&mut q, 4096);
        assert_eq!(edns_udp_payload(&q), Some(4096));
        assert_eq!(q.additionals.iter().filter(|r| r.rdata.rtype() == RrType::Opt).count(), 1);
    }

    #[test]
    fn opt_survives_the_wire() {
        let mut q = query();
        set_edns(&mut q, 1232);
        let back = Message::decode(&q.encode()).unwrap();
        assert_eq!(edns_udp_payload(&back), Some(1232));
    }

    #[test]
    fn fits_udp_with_and_without_edns() {
        let plain = query();
        assert!(fits_udp(&plain, 512));
        assert!(!fits_udp(&plain, 513), "no EDNS → classic 512-byte limit");
        let mut e = query();
        set_edns(&mut e, 1232);
        assert!(fits_udp(&e, 1232));
        assert!(!fits_udp(&e, 1233));
    }

    #[test]
    fn responses_can_carry_opt_too() {
        let mut q = query();
        set_edns(&mut q, 1232);
        let mut r = Message::response_to(&q, Rcode::NoError, true);
        set_edns(&mut r, 1400);
        assert_eq!(edns_udp_payload(&r), Some(1400));
    }
}
