//! DNS message: header, question, resource records, full encode/decode.

use crate::name::Name;
use crate::rdata::RData;
use crate::types::{Opcode, Rcode, RrClass, RrType};
use crate::WireError;
use bytes::{BufMut, BytesMut};
use std::collections::HashMap;

/// Header flag bits (everything between ID and the section counts).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub struct Flags {
    /// Query (false) or response (true).
    pub qr: bool,
    pub opcode_bits: u8,
    /// Authoritative answer.
    pub aa: bool,
    /// Truncated (fell back to TCP in real deployments).
    pub tc: bool,
    /// Recursion desired.
    pub rd: bool,
    /// Recursion available.
    pub ra: bool,
    pub rcode_bits: u8,
}

impl Flags {
    pub fn query(opcode: Opcode) -> Flags {
        Flags { qr: false, opcode_bits: opcode.code(), ..Flags::default() }
    }

    pub fn response(opcode: Opcode, rcode: Rcode, authoritative: bool) -> Flags {
        Flags {
            qr: true,
            opcode_bits: opcode.code(),
            aa: authoritative,
            rcode_bits: rcode.code(),
            ..Flags::default()
        }
    }

    pub fn opcode(&self) -> Opcode {
        Opcode::from_code(self.opcode_bits)
    }
    pub fn rcode(&self) -> Rcode {
        Rcode::from_code(self.rcode_bits)
    }

    pub fn to_u16(self) -> u16 {
        (self.qr as u16) << 15
            | ((self.opcode_bits & 0x0F) as u16) << 11
            | (self.aa as u16) << 10
            | (self.tc as u16) << 9
            | (self.rd as u16) << 8
            | (self.ra as u16) << 7
            | (self.rcode_bits & 0x0F) as u16
    }

    pub fn from_u16(v: u16) -> Flags {
        Flags {
            qr: v & 0x8000 != 0,
            opcode_bits: ((v >> 11) & 0x0F) as u8,
            aa: v & 0x0400 != 0,
            tc: v & 0x0200 != 0,
            rd: v & 0x0100 != 0,
            ra: v & 0x0080 != 0,
            rcode_bits: (v & 0x0F) as u8,
        }
    }
}

/// Message header.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub struct Header {
    pub id: u16,
    pub flags: Flags,
}

/// A question-section entry.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Question {
    pub name: Name,
    pub rtype: RrType,
    pub class: RrClass,
}

impl Question {
    pub fn new(name: Name, rtype: RrType) -> Question {
        Question { name, rtype, class: RrClass::In }
    }
}

/// A resource record.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Record {
    pub name: Name,
    pub class: RrClass,
    pub ttl: u32,
    pub rdata: RData,
}

impl Record {
    pub fn new(name: Name, ttl: u32, rdata: RData) -> Record {
        Record { name, class: RrClass::In, ttl, rdata }
    }
}

/// A full DNS message.
///
/// ```
/// use dnswire::{Message, RrType, Rcode, Record, RData};
///
/// let query = Message::query(0x1234, "example.nl".parse().unwrap(), RrType::Ns);
/// let mut resp = Message::response_to(&query, Rcode::NoError, true);
/// resp.answers.push(Record::new(
///     "example.nl".parse().unwrap(),
///     3600,
///     RData::Ns("ns1.example.nl".parse().unwrap()),
/// ));
/// let wire = resp.encode();
/// assert_eq!(Message::decode(&wire).unwrap(), resp);
/// ```
#[derive(Clone, Debug, PartialEq, Eq, Default)]
pub struct Message {
    pub header: Header,
    pub questions: Vec<Question>,
    pub answers: Vec<Record>,
    pub authorities: Vec<Record>,
    pub additionals: Vec<Record>,
}

impl Message {
    /// Build a standard query (single question, RD clear — the explicit NS
    /// queries OpenINTEL sends to authoritatives are non-recursive).
    pub fn query(id: u16, name: Name, rtype: RrType) -> Message {
        Message {
            header: Header { id, flags: Flags::query(Opcode::Query) },
            questions: vec![Question::new(name, rtype)],
            ..Message::default()
        }
    }

    /// Build a response echoing `query`'s ID and question.
    pub fn response_to(query: &Message, rcode: Rcode, authoritative: bool) -> Message {
        Message {
            header: Header {
                id: query.header.id,
                flags: Flags::response(query.header.flags.opcode(), rcode, authoritative),
            },
            questions: query.questions.clone(),
            ..Message::default()
        }
    }

    pub fn rcode(&self) -> Rcode {
        self.header.flags.rcode()
    }

    /// Encode to wire format with name compression.
    pub fn encode(&self) -> Vec<u8> {
        let mut buf = BytesMut::with_capacity(512);
        let mut table: HashMap<Name, u16> = HashMap::new();
        buf.put_u16(self.header.id);
        buf.put_u16(self.header.flags.to_u16());
        buf.put_u16(self.questions.len() as u16);
        buf.put_u16(self.answers.len() as u16);
        buf.put_u16(self.authorities.len() as u16);
        buf.put_u16(self.additionals.len() as u16);
        for q in &self.questions {
            q.name.encode_compressed(&mut buf, &mut table, 0);
            buf.put_u16(q.rtype.code());
            buf.put_u16(q.class.code());
        }
        for r in self.answers.iter().chain(&self.authorities).chain(&self.additionals) {
            r.name.encode_compressed(&mut buf, &mut table, 0);
            buf.put_u16(r.rdata.rtype().code());
            buf.put_u16(r.class.code());
            buf.put_u32(r.ttl);
            // Reserve RDLENGTH, encode RDATA, then patch the length in.
            let len_at = buf.len();
            buf.put_u16(0);
            let body_at = buf.len();
            r.rdata.encode(&mut buf, &mut table, 0);
            let rdlen = (buf.len() - body_at) as u16;
            buf[len_at..len_at + 2].copy_from_slice(&rdlen.to_be_bytes());
        }
        buf.to_vec()
    }

    /// Decode from wire format.
    pub fn decode(msg: &[u8]) -> Result<Message, WireError> {
        if msg.len() < 12 {
            return Err(WireError::Truncated);
        }
        let u16_at = |i: usize| u16::from_be_bytes([msg[i], msg[i + 1]]);
        let header = Header { id: u16_at(0), flags: Flags::from_u16(u16_at(2)) };
        let qd = u16_at(4) as usize;
        let an = u16_at(6) as usize;
        let ns = u16_at(8) as usize;
        let ar = u16_at(10) as usize;
        let mut pos = 12;
        let mut questions = Vec::with_capacity(qd);
        for _ in 0..qd {
            let name = Name::decode(msg, &mut pos)?;
            if pos + 4 > msg.len() {
                return Err(WireError::Truncated);
            }
            let rtype = RrType::from_code(u16::from_be_bytes([msg[pos], msg[pos + 1]]));
            let class = RrClass::from_code(u16::from_be_bytes([msg[pos + 2], msg[pos + 3]]));
            pos += 4;
            questions.push(Question { name, rtype, class });
        }
        let decode_section = |count: usize, pos: &mut usize| -> Result<Vec<Record>, WireError> {
            let mut out = Vec::with_capacity(count);
            for _ in 0..count {
                let name = Name::decode(msg, pos)?;
                if *pos + 10 > msg.len() {
                    return Err(WireError::Truncated);
                }
                let rtype = RrType::from_code(u16::from_be_bytes([msg[*pos], msg[*pos + 1]]));
                let class = RrClass::from_code(u16::from_be_bytes([msg[*pos + 2], msg[*pos + 3]]));
                let ttl = u32::from_be_bytes([
                    msg[*pos + 4],
                    msg[*pos + 5],
                    msg[*pos + 6],
                    msg[*pos + 7],
                ]);
                let rdlen = u16::from_be_bytes([msg[*pos + 8], msg[*pos + 9]]) as usize;
                *pos += 10;
                let rdata = RData::decode(msg, pos, rtype, rdlen)?;
                out.push(Record { name, class, ttl, rdata });
            }
            Ok(out)
        };
        let answers = decode_section(an, &mut pos)?;
        let authorities = decode_section(ns, &mut pos)?;
        let additionals = decode_section(ar, &mut pos)?;
        Ok(Message { header, questions, answers, authorities, additionals })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn n(s: &str) -> Name {
        s.parse().unwrap()
    }

    #[test]
    fn flags_bit_layout() {
        let f = Flags::response(Opcode::Query, Rcode::ServFail, true);
        let v = f.to_u16();
        assert_eq!(v & 0x8000, 0x8000, "QR set");
        assert_eq!(v & 0x0400, 0x0400, "AA set");
        assert_eq!(v & 0x000F, 2, "rcode SERVFAIL");
        assert_eq!(Flags::from_u16(v), f);
    }

    #[test]
    fn flags_roundtrip_exhaustive() {
        // All 16-bit patterns survive from_u16 → to_u16 modulo the Z bits
        // (bits 4-6) which this implementation doesn't store.
        for v in 0..=u16::MAX {
            let f = Flags::from_u16(v);
            assert_eq!(f.to_u16(), v & !0x0070);
        }
    }

    #[test]
    fn query_shape() {
        let q = Message::query(0x1234, n("example.nl"), RrType::Ns);
        assert_eq!(q.header.id, 0x1234);
        assert!(!q.header.flags.qr);
        assert!(!q.header.flags.rd, "explicit NS queries are non-recursive");
        assert_eq!(q.questions.len(), 1);
        assert_eq!(q.questions[0].rtype, RrType::Ns);
    }

    #[test]
    fn response_echoes_id_and_question() {
        let q = Message::query(7, n("mil.ru"), RrType::Ns);
        let r = Message::response_to(&q, Rcode::NoError, true);
        assert_eq!(r.header.id, 7);
        assert!(r.header.flags.qr);
        assert!(r.header.flags.aa);
        assert_eq!(r.questions, q.questions);
        assert_eq!(r.rcode(), Rcode::NoError);
    }

    #[test]
    fn encode_decode_query() {
        let q = Message::query(42, n("www.example.com"), RrType::A);
        let wire = q.encode();
        assert_eq!(Message::decode(&wire).unwrap(), q);
    }

    #[test]
    fn encode_decode_full_response() {
        let q = Message::query(99, n("transip.nl"), RrType::Ns);
        let mut r = Message::response_to(&q, Rcode::NoError, true);
        r.answers.push(Record::new(n("transip.nl"), 3600, RData::Ns(n("ns0.transip.nl"))));
        r.answers.push(Record::new(n("transip.nl"), 3600, RData::Ns(n("ns1.transip.nl"))));
        r.answers.push(Record::new(n("transip.nl"), 3600, RData::Ns(n("ns2.transip.net"))));
        r.additionals.push(Record::new(
            n("ns0.transip.nl"),
            3600,
            RData::A("195.135.195.195".parse().unwrap()),
        ));
        let wire = r.encode();
        let back = Message::decode(&wire).unwrap();
        assert_eq!(back, r);
    }

    #[test]
    fn compression_shrinks_repeated_names() {
        let q = Message::query(1, n("transip.nl"), RrType::Ns);
        let mut r = Message::response_to(&q, Rcode::NoError, true);
        for i in 0..3 {
            r.answers.push(Record::new(
                n("transip.nl"),
                3600,
                RData::Ns(n(&format!("ns{i}.transip.nl"))),
            ));
        }
        let wire = r.encode();
        // Uncompressed, "transip.nl" (12 bytes) appears 7 times (1 question
        // + 3 owners + inside 3 NS targets) = 84 bytes of names alone.
        // With compression the whole message stays well under that.
        assert!(wire.len() < 100, "got {} bytes", wire.len());
        assert_eq!(Message::decode(&wire).unwrap(), r);
    }

    #[test]
    fn decode_truncated_header() {
        assert_eq!(Message::decode(&[0u8; 5]), Err(WireError::Truncated));
    }

    #[test]
    fn decode_count_overrun() {
        // Header claims one question but the message body is empty.
        let mut wire = Message::query(1, n("a.b"), RrType::A).encode();
        wire.truncate(13);
        assert_eq!(Message::decode(&wire), Err(WireError::Truncated));
    }

    #[test]
    fn servfail_response_roundtrip() {
        let q = Message::query(3, n("euskaltel.example"), RrType::Ns);
        let r = Message::response_to(&q, Rcode::ServFail, false);
        let back = Message::decode(&r.encode()).unwrap();
        assert_eq!(back.rcode(), Rcode::ServFail);
        assert!(!back.header.flags.aa);
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;
    use std::net::Ipv4Addr;

    fn arb_name() -> impl Strategy<Value = Name> {
        prop::collection::vec("[a-z0-9]{1,12}", 1..5)
            .prop_map(|ls| Name::from_labels(ls.iter().map(|s| s.as_bytes())).unwrap())
    }

    fn arb_rdata() -> impl Strategy<Value = RData> {
        prop_oneof![
            any::<u32>().prop_map(|v| RData::A(Ipv4Addr::from(v))),
            any::<[u8; 16]>().prop_map(|o| RData::Aaaa(o.into())),
            arb_name().prop_map(RData::Ns),
            arb_name().prop_map(RData::Cname),
            (any::<u16>(), arb_name())
                .prop_map(|(preference, exchange)| RData::Mx { preference, exchange }),
            prop::collection::vec(prop::collection::vec(any::<u8>(), 0..40), 1..4)
                .prop_map(RData::Txt),
        ]
    }

    fn arb_record() -> impl Strategy<Value = Record> {
        (arb_name(), any::<u32>(), arb_rdata())
            .prop_map(|(name, ttl, rdata)| Record::new(name, ttl, rdata))
    }

    proptest! {
        #[test]
        fn message_roundtrip(
            id in any::<u16>(),
            qname in arb_name(),
            answers in prop::collection::vec(arb_record(), 0..8),
            authorities in prop::collection::vec(arb_record(), 0..4),
        ) {
            let mut m = Message::query(id, qname, RrType::Ns);
            m.header.flags.qr = true;
            m.answers = answers;
            m.authorities = authorities;
            let wire = m.encode();
            let back = Message::decode(&wire).unwrap();
            prop_assert_eq!(back, m);
        }

        #[test]
        fn decode_garbage_never_panics(bytes in prop::collection::vec(any::<u8>(), 0..600)) {
            let _ = Message::decode(&bytes);
        }

        #[test]
        fn truncating_valid_message_never_panics(
            qname in arb_name(),
            answers in prop::collection::vec(arb_record(), 0..6),
            frac in 0.0f64..1.0,
        ) {
            let mut m = Message::query(1, qname, RrType::Ns);
            m.header.flags.qr = true;
            m.answers = answers;
            let wire = m.encode();
            let cut = (wire.len() as f64 * frac) as usize;
            let _ = Message::decode(&wire[..cut]);
        }
    }
}
