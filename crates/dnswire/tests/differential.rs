//! Borrowed-parse ≡ owned-parse differential tests.
//!
//! The owned decoders (`Name::decode`, `Message::decode`, `decode_tcp`)
//! are the reference; the zero-copy view layer (`NameRef`, `MessageRef`,
//! `decode_tcp_ref`) must agree with them *exactly* — same values through
//! `.to_owned()`, same cursor advancement, and the same `WireError`
//! variant on every malformed, truncated, or pointer-looping input. This
//! is the same differential discipline that locks the columnar join: the
//! fast path is only trusted because the slow path checks it.

use dnswire::view::{MessageRef, NameRef};
use dnswire::{
    decode_tcp, decode_tcp_ref, encode_tcp, Message, Name, RData, Record, RrType, WireError,
    MAX_POINTER_HOPS,
};
use proptest::prelude::*;

/// Assert the two name parsers agree on `wire` starting at `pos`.
fn assert_name_parity(wire: &[u8], pos: usize) {
    let mut owned_pos = pos;
    let mut view_pos = pos;
    let owned = Name::decode(wire, &mut owned_pos);
    let view = NameRef::parse(wire, &mut view_pos);
    match (owned, view) {
        (Ok(o), Ok(v)) => {
            assert_eq!(v.to_owned(), o, "value mismatch at pos {pos}");
            assert_eq!(view_pos, owned_pos, "cursor mismatch at pos {pos}");
            assert_eq!(v.label_count(), o.label_count());
            assert_eq!(v.encoded_len(), o.encoded_len());
            assert!(v.eq_name(&o));
            assert_eq!(v.to_string(), o.to_string());
            let mut canon = Vec::new();
            v.write_canonical(&mut canon);
            let mut reference = bytes::BytesMut::new();
            o.encode_uncompressed(&mut reference);
            assert_eq!(canon, reference.to_vec(), "canonical bytes mismatch");
        }
        (Err(eo), Err(ev)) => assert_eq!(eo, ev, "error mismatch at pos {pos}"),
        (o, v) => panic!("parser disagreement at pos {pos}: owned {o:?} vs view {v:?}"),
    }
}

/// Assert the two message parsers agree on `wire`.
fn assert_message_parity(wire: &[u8]) {
    match (Message::decode(wire), MessageRef::parse(wire)) {
        (Ok(o), Ok(v)) => assert_eq!(v.to_owned(), o),
        (Err(eo), Err(ev)) => assert_eq!(eo, ev),
        (o, v) => panic!("parser disagreement: owned {o:?} vs view {v:?}"),
    }
}

fn arb_name() -> impl Strategy<Value = Name> {
    prop::collection::vec("[a-zA-Z0-9-]{1,16}", 0..5)
        .prop_map(|ls| Name::from_labels(ls.iter().map(|s| s.as_bytes())).unwrap())
}

fn arb_rdata() -> impl Strategy<Value = RData> {
    prop_oneof![
        any::<u32>().prop_map(|v| RData::A(v.into())),
        any::<[u8; 16]>().prop_map(|o| RData::Aaaa(o.into())),
        arb_name().prop_map(RData::Ns),
        arb_name().prop_map(RData::Cname),
        arb_name().prop_map(RData::Ptr),
        (any::<u16>(), arb_name())
            .prop_map(|(preference, exchange)| RData::Mx { preference, exchange }),
        prop::collection::vec(prop::collection::vec(any::<u8>(), 0..30), 0..4).prop_map(RData::Txt),
        (
            arb_name(),
            arb_name(),
            (any::<u32>(), any::<u32>(), any::<u32>(), any::<u32>(), any::<u32>())
        )
            .prop_map(|(mname, rname, v)| RData::Soa {
                mname,
                rname,
                serial: v.0,
                refresh: v.1,
                retry: v.2,
                expire: v.3,
                minimum: v.4,
            }),
        (any::<u16>(), prop::collection::vec(any::<u8>(), 0..40))
            .prop_map(|(rtype, data)| RData::Opaque { rtype, data }),
    ]
}

fn arb_record() -> impl Strategy<Value = Record> {
    (arb_name(), any::<u32>(), arb_rdata())
        .prop_map(|(name, ttl, rdata)| Record::new(name, ttl, rdata))
}

fn arb_message() -> impl Strategy<Value = Message> {
    (
        any::<u16>(),
        arb_name(),
        prop::collection::vec(arb_record(), 0..6),
        prop::collection::vec(arb_record(), 0..4),
    )
        .prop_map(|(id, qname, answers, additionals)| {
            let mut m = Message::query(id, qname, RrType::Ns);
            m.header.flags.qr = true;
            m.answers = answers;
            m.additionals = additionals;
            m
        })
}

proptest! {
    /// Arbitrary bytes: both name parsers reach the same verdict.
    #[test]
    fn name_parity_on_arbitrary_bytes(
        bytes in prop::collection::vec(any::<u8>(), 0..300),
        start in 0usize..16,
    ) {
        assert_name_parity(&bytes, start.min(bytes.len()));
    }

    /// Bytes biased toward the wire alphabet (small length tags, pointer
    /// tags) hit the deep decode branches far more often than uniform
    /// noise does.
    #[test]
    fn name_parity_on_wire_shaped_bytes(
        bytes in prop::collection::vec(
            prop_oneof![0u8..8, Just(0xC0u8), Just(0x00u8), any::<u8>()],
            0..120,
        ),
    ) {
        assert_name_parity(&bytes, 0);
    }

    /// Arbitrary bytes: both message parsers reach the same verdict.
    #[test]
    fn message_parity_on_arbitrary_bytes(bytes in prop::collection::vec(any::<u8>(), 0..600)) {
        assert_message_parity(&bytes);
    }

    /// Well-formed messages round-trip identically through both parsers.
    #[test]
    fn message_parity_on_valid_messages(m in arb_message()) {
        let wire = m.encode();
        let owned = Message::decode(&wire).unwrap();
        let view = MessageRef::parse(&wire).unwrap();
        prop_assert_eq!(&owned, &m);
        prop_assert_eq!(view.to_owned(), m);
    }

    /// Every truncation of a valid message gets the same verdict from
    /// both parsers (usually Truncated; always identical).
    #[test]
    fn message_parity_on_truncations(m in arb_message(), frac in 0.0f64..1.0) {
        let wire = m.encode();
        let cut = (wire.len() as f64 * frac) as usize;
        assert_message_parity(&wire[..cut]);
    }

    /// Flipping one byte of a valid message never splits the parsers.
    #[test]
    fn message_parity_on_single_byte_corruption(
        m in arb_message(),
        at in any::<usize>(),
        xor in 1u8..=255,
    ) {
        let mut wire = m.encode();
        let i = at % wire.len();
        wire[i] ^= xor;
        assert_message_parity(&wire);
    }

    /// TCP framing: both frame decoders agree on arbitrary buffers.
    #[test]
    fn tcp_parity_on_arbitrary_bytes(bytes in prop::collection::vec(any::<u8>(), 0..200)) {
        match (decode_tcp(&bytes), decode_tcp_ref(&bytes)) {
            (Ok((o, co)), Ok((v, cv))) => {
                prop_assert_eq!(v.to_owned(), o);
                prop_assert_eq!(co, cv);
            }
            (Err(eo), Err(ev)) => prop_assert_eq!(eo, ev),
            (o, v) => panic!("tcp disagreement: owned {o:?} vs view {v:?}"),
        }
    }

    /// TCP framing: valid frames and all their prefixes agree.
    #[test]
    fn tcp_parity_on_frames_and_prefixes(m in arb_message(), frac in 0.0f64..1.0) {
        let framed = encode_tcp(&m);
        let cut = (framed.len() as f64 * frac) as usize;
        let buf = &framed[..cut];
        match (decode_tcp(buf), decode_tcp_ref(buf)) {
            (Ok((o, co)), Ok((v, cv))) => {
                prop_assert_eq!(v.to_owned(), o);
                prop_assert_eq!(co, cv);
            }
            (Err(eo), Err(ev)) => prop_assert_eq!(eo, ev),
            (o, v) => panic!("tcp disagreement at cut {cut}: owned {o:?} vs view {v:?}"),
        }
    }
}

/// A pointer chain of `chain` hops: `\x01a\x00` at offset 0, then `chain`
/// pointers each aimed at the previous one. Decoding from the last
/// pointer traverses exactly `chain` hops.
fn pointer_chain(chain: usize) -> (Vec<u8>, usize) {
    let mut wire = b"\x01a\x00".to_vec();
    for i in 0..chain {
        let target = if i == 0 { 0usize } else { 3 + 2 * (i - 1) };
        wire.push(0xC0 | (target >> 8) as u8);
        wire.push(target as u8);
    }
    (wire, 3 + 2 * (chain - 1))
}

#[test]
fn pointer_chain_at_exactly_max_hops_is_accepted_by_both() {
    let (wire, start) = pointer_chain(MAX_POINTER_HOPS);
    let mut pos = start;
    let owned = Name::decode(&wire, &mut pos).expect("owned decode at hop limit");
    assert_eq!(owned.to_string(), "a");
    let mut pos = start;
    let view = NameRef::parse(&wire, &mut pos).expect("view parse at hop limit");
    assert_eq!(view.to_owned(), owned);
    assert_name_parity(&wire, start);
}

#[test]
fn pointer_chain_one_past_max_hops_is_rejected_by_both() {
    let (wire, start) = pointer_chain(MAX_POINTER_HOPS + 1);
    let mut pos = start;
    assert_eq!(Name::decode(&wire, &mut pos), Err(WireError::BadPointer));
    let mut pos = start;
    assert!(matches!(NameRef::parse(&wire, &mut pos), Err(WireError::BadPointer)));
    assert_name_parity(&wire, start);
}

#[test]
fn every_truncation_of_a_dense_response_keeps_parity() {
    // A compression-heavy response exercised at every cut point, not just
    // sampled fractions.
    let mut m = Message::query(1, "klant0.nl".parse().unwrap(), RrType::Ns);
    m.header.flags.qr = true;
    for i in 0..3 {
        m.answers.push(Record::new(
            "klant0.nl".parse().unwrap(),
            3600,
            RData::Ns(format!("ns{i}.transip.net").parse().unwrap()),
        ));
    }
    let wire = m.encode();
    for cut in 0..=wire.len() {
        assert_message_parity(&wire[..cut]);
    }
}
