//! Steps 2–3 of the methodology: victim IPs → nameservers under attack →
//! NSSets and domains under attack.
//!
//! The paper joins each attack against the nameserver list *of the day
//! before the attack* so that nameservers rendered unreachable by the
//! attack itself are not missing from the join (§4.2). The
//! [`NsDirectory`] abstraction captures that day-indexed view; with a
//! static simulated infrastructure every day resolves identically, but the
//! previous-day semantics (and the ablation bench that flips it) go
//! through this interface.

use census::OpenResolverList;
use dnssim::{Infra, NsId, NsSetId};
use simcore::time::Month;
use std::collections::HashSet;
use std::net::Ipv4Addr;
use telescope::AttackEpisode;

/// Day-indexed view of "which nameserver answers at this IP?".
pub trait NsDirectory {
    /// The nameserver successfully observed at `addr` on `day`, if any.
    fn ns_at(&self, addr: Ipv4Addr, day: u64) -> Option<NsId>;
}

/// The static simulated infrastructure as a directory: every day's list is
/// the registry itself.
impl NsDirectory for Infra {
    fn ns_at(&self, addr: Ipv4Addr, _day: u64) -> Option<NsId> {
        self.ns_by_addr(addr)
    }
}

/// A day-indexed directory over a base registry, with scheduled changes —
/// the situation §4.2's previous-day join is designed for: a nameserver
/// that an operator renumbers or withdraws *during* an attack is missing
/// from that day's list, but still present in yesterday's.
pub struct ChangingDirectory<'a> {
    base: &'a Infra,
    /// `(effective_day, addr, mapping)`: from `effective_day` onward,
    /// `addr` maps to `mapping` (`None` = withdrawn). Later entries win.
    changes: Vec<(u64, Ipv4Addr, Option<NsId>)>,
}

impl<'a> ChangingDirectory<'a> {
    pub fn new(base: &'a Infra) -> ChangingDirectory<'a> {
        ChangingDirectory { base, changes: Vec::new() }
    }

    /// From `day` onward, `addr` resolves to `mapping`.
    pub fn change(mut self, day: u64, addr: Ipv4Addr, mapping: Option<NsId>) -> Self {
        self.changes.push((day, addr, mapping));
        self.changes.sort_by_key(|&(d, a, _)| (a, d));
        self
    }
}

impl NsDirectory for ChangingDirectory<'_> {
    fn ns_at(&self, addr: Ipv4Addr, day: u64) -> Option<NsId> {
        // The latest change for this address effective at `day` wins.
        let mut current = self.base.ns_by_addr(addr);
        for &(d, a, mapping) in &self.changes {
            if a == addr && d <= day {
                current = mapping;
            }
        }
        current
    }
}

/// One RSDoS episode joined to the DNS: the nameservers whose service
/// addresses were attacked, the NSSets they serve, and the domains behind
/// them.
#[derive(Clone, Debug)]
pub struct DnsAttackEvent {
    /// Index into the feed's episode list.
    pub episode_idx: usize,
    /// Nameservers directly attacked (victim IP == service address).
    pub ns_direct: Vec<NsId>,
    /// Nameservers hit via collateral (victim in the same /24 but not a
    /// nameserver itself).
    pub ns_collateral: Vec<NsId>,
    /// Every NSSet containing an attacked nameserver.
    pub nssets: Vec<NsSetId>,
    /// Count of distinct registered domains delegating to those NSSets —
    /// the "potentially affected domains" of Figure 5.
    pub domains_affected: u64,
    /// Calendar month of the attack start (Table 3 bucketing).
    pub month: Month,
}

impl DnsAttackEvent {
    pub fn all_ns(&self) -> Vec<NsId> {
        let mut v = self.ns_direct.clone();
        v.extend(self.ns_collateral.iter().copied());
        v.sort();
        v.dedup();
        v
    }

    pub fn is_direct(&self) -> bool {
        !self.ns_direct.is_empty()
    }
}

/// Join RSDoS episodes against the nameserver directory, using the list
/// as it stood `day_offset` days before each attack (§4.2: the paper uses
/// 1 — "the day before the attack" — so an attack that knocks a
/// nameserver out of the measured list is still joined).
pub fn join_episodes_with_offset(
    infra: &Infra,
    directory: &dyn NsDirectory,
    episodes: &[AttackEpisode],
    open_resolvers: &OpenResolverList,
    include_collateral: bool,
    day_offset: u64,
) -> Vec<DnsAttackEvent> {
    join_chunk(infra, directory, 0, episodes, open_resolvers, include_collateral, day_offset, None)
}

/// Join one contiguous shard of the episode list. `base_idx` is the global
/// index of `episodes[0]`, so the emitted `episode_idx` values are
/// identical whether the feed is processed whole or in shards. With a
/// `trace_scope` set, every joined row also emits a `JoinMatched` trace
/// event under that scope — each episode is joined exactly once whatever
/// the sharding, so the event stream is `--jobs`-independent too.
#[allow(clippy::too_many_arguments)]
fn join_chunk(
    infra: &Infra,
    directory: &dyn NsDirectory,
    base_idx: usize,
    episodes: &[AttackEpisode],
    open_resolvers: &OpenResolverList,
    include_collateral: bool,
    day_offset: u64,
    trace_scope: Option<&str>,
) -> Vec<DnsAttackEvent> {
    let mut out = Vec::new();
    for (off, ep) in episodes.iter().enumerate() {
        let idx = base_idx + off;
        if open_resolvers.contains(ep.victim) {
            continue;
        }
        let day = ep.first_window.day().saturating_sub(day_offset);
        let mut ns_direct = Vec::new();
        let mut ns_collateral = Vec::new();
        if let Some(ns) = directory.ns_at(ep.victim, day) {
            ns_direct.push(ns);
        } else if include_collateral {
            let prefix = netbase::Slash24::of(ep.victim);
            for ns in infra.nameservers_in_slash24(prefix) {
                if directory.ns_at(infra.nameserver(ns).addr, day).is_some() {
                    ns_collateral.push(ns);
                }
            }
        }
        if ns_direct.is_empty() && ns_collateral.is_empty() {
            continue;
        }
        let mut nssets: HashSet<NsSetId> = HashSet::new();
        for &ns in ns_direct.iter().chain(&ns_collateral) {
            nssets.extend(infra.nssets_of_ns(ns).iter().copied());
        }
        let mut domains: HashSet<u32> = HashSet::new();
        for &set in &nssets {
            domains.extend(infra.domains_of_nsset(set).iter().map(|d| d.0));
        }
        let mut nssets: Vec<NsSetId> = nssets.into_iter().collect();
        nssets.sort();
        if let Some(scope) = trace_scope {
            obs::trace::emit(
                obs::EventKind::JoinMatched,
                scope,
                Some(idx as u64),
                Some(ep.first_window.start().secs()),
                format!(
                    "victim {} → {} direct + {} collateral ns, {} nsset(s)",
                    ep.victim,
                    ns_direct.len(),
                    ns_collateral.len(),
                    nssets.len()
                ),
                Some(domains.len() as u64),
            );
        }
        out.push(DnsAttackEvent {
            episode_idx: idx,
            ns_direct,
            ns_collateral,
            nssets,
            domains_affected: domains.len() as u64,
            month: ep.first_window.start().month(),
        });
    }
    // Per-shard totals sum to the same whole-feed totals whatever the
    // sharding, so these counters are `--jobs`-independent.
    obs::counter("join.episodes_in").add(episodes.len() as u64);
    obs::counter("join.rows_joined").add(out.len() as u64);
    out
}

/// The paper's join: against the previous day's nameserver list.
pub fn join_episodes(
    infra: &Infra,
    directory: &dyn NsDirectory,
    episodes: &[AttackEpisode],
    open_resolvers: &OpenResolverList,
    include_collateral: bool,
) -> Vec<DnsAttackEvent> {
    join_episodes_with_offset(infra, directory, episodes, open_resolvers, include_collateral, 1)
}

/// [`join_episodes_with_offset`] sharded across up to `jobs` worker
/// threads (`jobs == 0` → available parallelism, `jobs == 1` → the plain
/// sequential path).
///
/// The RSDoS×NSSet join is embarrassingly parallel: each episode is joined
/// independently against the (read-only) directory, with no RNG involved.
/// The feed is cut into contiguous shards, each worker joins its shard
/// carrying the shard's global base index, and the per-shard outputs are
/// concatenated in shard order — so the result is exactly the sequential
/// output, byte for byte, for any `jobs`.
pub fn join_episodes_sharded(
    infra: &Infra,
    directory: &(dyn NsDirectory + Sync),
    episodes: &[AttackEpisode],
    open_resolvers: &OpenResolverList,
    include_collateral: bool,
    day_offset: u64,
    jobs: usize,
) -> Vec<DnsAttackEvent> {
    join_episodes_sharded_traced(
        infra,
        directory,
        episodes,
        open_resolvers,
        include_collateral,
        day_offset,
        jobs,
        None,
    )
}

/// [`join_episodes_sharded`] with `JoinMatched` trace emission under
/// `trace_scope` (see `obs::trace`). Kept separate so only the feed-scoped
/// headline join traces: the orchestrator also runs an unfiltered join of
/// the same episodes for Tables 3–5, which must not double-emit.
#[allow(clippy::too_many_arguments)]
pub fn join_episodes_sharded_traced(
    infra: &Infra,
    directory: &(dyn NsDirectory + Sync),
    episodes: &[AttackEpisode],
    open_resolvers: &OpenResolverList,
    include_collateral: bool,
    day_offset: u64,
    jobs: usize,
    trace_scope: Option<&str>,
) -> Vec<DnsAttackEvent> {
    let jobs = streamproc::effective_jobs(jobs);
    if jobs <= 1 || episodes.len() < 2 {
        return join_chunk(
            infra,
            directory,
            0,
            episodes,
            open_resolvers,
            include_collateral,
            day_offset,
            trace_scope,
        );
    }
    let shard_len = episodes.len().div_ceil(jobs);
    let shards: Vec<&[AttackEpisode]> = episodes.chunks(shard_len).collect();
    // Shard count tracks the requested parallelism, so it lives in the
    // scheduling-dependent namespace.
    obs::counter("sched.join.shards").add(shards.len() as u64);
    let parts = streamproc::parallel_map(jobs, shards, |shard_idx, shard| {
        join_chunk(
            infra,
            directory,
            shard_idx * shard_len,
            shard,
            open_resolvers,
            include_collateral,
            day_offset,
            trace_scope,
        )
    });
    parts.into_iter().flatten().collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use attack::Protocol;
    use dnssim::Deployment;
    use netbase::Asn;
    use simcore::time::Window;

    fn episode(victim: &str, w: u64) -> AttackEpisode {
        AttackEpisode {
            victim: victim.parse().unwrap(),
            first_window: Window(w),
            last_window: Window(w + 2),
            packets: 1_000,
            peak_ppm: 100.0,
            protocol: Protocol::Tcp,
            first_port: 53,
            unique_ports: 1,
            slash16s: 10,
        }
    }

    fn world() -> (Infra, NsId, NsId) {
        let mut infra = Infra::new();
        let a = infra.add_nameserver(
            "ns0.transip.net".parse().unwrap(),
            "195.135.195.195".parse().unwrap(),
            Asn(20857),
            Deployment::Unicast,
            10_000.0,
            100.0,
            15.0,
        );
        let b = infra.add_nameserver(
            "ns1.other.net".parse().unwrap(),
            "203.0.113.53".parse().unwrap(),
            Asn(64500),
            Deployment::Unicast,
            10_000.0,
            100.0,
            15.0,
        );
        let set_ab = infra.intern_nsset(vec![a, b]);
        let set_a = infra.intern_nsset(vec![a]);
        for i in 0..100 {
            infra.add_domain(format!("ab{i}.nl").parse().unwrap(), set_ab);
        }
        for i in 0..40 {
            infra.add_domain(format!("a{i}.nl").parse().unwrap(), set_a);
        }
        (infra, a, b)
    }

    #[test]
    fn direct_hit_joins_all_nssets_and_domains() {
        let (infra, a, _) = world();
        let eps = vec![episode("195.135.195.195", 288 * 3)];
        let events = join_episodes(&infra, &infra, &eps, &OpenResolverList::new(), false);
        assert_eq!(events.len(), 1);
        let e = &events[0];
        assert_eq!(e.ns_direct, vec![a]);
        assert!(e.is_direct());
        assert_eq!(e.nssets.len(), 2, "ns A serves two NSSets");
        assert_eq!(e.domains_affected, 140);
    }

    #[test]
    fn non_dns_victim_produces_no_event() {
        let (infra, ..) = world();
        let eps = vec![episode("8.100.2.3", 288)];
        let events = join_episodes(&infra, &infra, &eps, &OpenResolverList::new(), false);
        assert!(events.is_empty());
    }

    #[test]
    fn open_resolver_victims_filtered() {
        let (mut infra, ..) = world();
        let g = infra.add_nameserver(
            "dns.google".parse().unwrap(),
            "8.8.8.8".parse().unwrap(),
            Asn(15169),
            Deployment::Anycast { sites: 30 },
            10_000_000.0,
            100_000.0,
            5.0,
        );
        infra.mark_open_resolver(g);
        let set = infra.intern_nsset(vec![g]);
        infra.add_domain("misconfigured.com".parse().unwrap(), set);
        let mut resolvers = OpenResolverList::new();
        resolvers.extend_from_infra(&infra);
        let eps = vec![episode("8.8.8.8", 288)];
        let with_filter = join_episodes(&infra, &infra, &eps, &resolvers, false);
        assert!(with_filter.is_empty(), "8.8.8.8 attacks are not DNS-infra attacks");
        let without = join_episodes(&infra, &infra, &eps, &OpenResolverList::new(), false);
        assert_eq!(without.len(), 1, "without the filter the join would count it");
    }

    #[test]
    fn collateral_join_via_slash24() {
        let (infra, a, _) = world();
        // Victim is the web server next to ns0 (same /24, different host).
        let eps = vec![episode("195.135.195.80", 288)];
        let none = join_episodes(&infra, &infra, &eps, &OpenResolverList::new(), false);
        assert!(none.is_empty(), "headline join is direct-only");
        let with = join_episodes(&infra, &infra, &eps, &OpenResolverList::new(), true);
        assert_eq!(with.len(), 1);
        assert_eq!(with[0].ns_collateral, vec![a]);
        assert!(!with[0].is_direct());
        assert_eq!(with[0].all_ns(), vec![a]);
    }

    #[test]
    fn month_bucketing_follows_start_window() {
        let (infra, ..) = world();
        // Window on 2020-12-01: day 30.
        let eps = vec![episode("195.135.195.195", 30 * 288 + 5)];
        let events = join_episodes(&infra, &infra, &eps, &OpenResolverList::new(), false);
        assert_eq!(events[0].month, Month::new(2020, 12));
    }

    #[test]
    fn previous_day_join_survives_attack_day_withdrawal() {
        // §4.2's rationale: the operator withdraws the attacked address on
        // the attack day (day 5). A same-day join misses the event; the
        // paper's previous-day join still catches it.
        let (infra, a, _) = world();
        let addr: Ipv4Addr = "195.135.195.195".parse().unwrap();
        let dir = ChangingDirectory::new(&infra).change(5, addr, None);
        let eps = vec![episode("195.135.195.195", 5 * 288 + 10)];
        let same_day =
            join_episodes_with_offset(&infra, &dir, &eps, &OpenResolverList::new(), false, 0);
        assert!(same_day.is_empty(), "same-day list no longer names the victim");
        let prev_day = join_episodes(&infra, &dir, &eps, &OpenResolverList::new(), false);
        assert_eq!(prev_day.len(), 1);
        assert_eq!(prev_day[0].ns_direct, vec![a]);
    }

    #[test]
    fn changing_directory_day_semantics() {
        let (infra, a, b) = world();
        let addr: Ipv4Addr = "195.135.195.195".parse().unwrap();
        // Renumbered to ns B's identity on day 3, withdrawn on day 8.
        let dir = ChangingDirectory::new(&infra).change(3, addr, Some(b)).change(8, addr, None);
        assert_eq!(dir.ns_at(addr, 0), Some(a));
        assert_eq!(dir.ns_at(addr, 2), Some(a));
        assert_eq!(dir.ns_at(addr, 3), Some(b));
        assert_eq!(dir.ns_at(addr, 7), Some(b));
        assert_eq!(dir.ns_at(addr, 8), None);
        assert_eq!(dir.ns_at(addr, 100), None);
    }

    #[test]
    fn domains_not_double_counted_across_nssets() {
        let (infra, ..) = world();
        let eps = vec![episode("195.135.195.195", 288), episode("203.0.113.53", 288)];
        let events = join_episodes(&infra, &infra, &eps, &OpenResolverList::new(), false);
        // Each event counts its own reachable domains without dupes.
        assert_eq!(events[0].domains_affected, 140);
        assert_eq!(events[1].domains_affected, 100);
    }
}
