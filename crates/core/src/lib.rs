//! The paper's primary contribution: the RSDoS × OpenINTEL data-join
//! pipeline and the longitudinal impact analysis (§4, §6).
//!
//! Pipeline (Figure 1 of the paper):
//!
//! 1. RSDoS feed (victim IPs under attack, per 5-minute window) — from
//!    the `telescope` crate.
//! 2. Join victim IPs against the previous day's nameserver list →
//!    *nameservers under attack* ([`join`]).
//! 3. Expand through NSSets to the *domains under attack* ([`join`]).
//! 4. Join with per-NSSet 5-minute RTT aggregates → `Impact_on_RTT`,
//!    failure rates ([`impact`]).
//!
//! The [`longitudinal`] module orchestrates all of it over a 17-month
//! attack population and produces every table/figure series of the paper's
//! evaluation; [`ports`], [`failures`], [`correlate`] and [`resilience`]
//! hold the per-figure analyses; [`casestudy`] computes the TransIP-style
//! per-nameserver attack metrics (Table 2) and time series (Figures 2–3);
//! [`report`] renders aligned text tables and CSV; [`enduser`] quantifies
//! §6.3.1's caching argument (how TTL and popularity shield end users from
//! authoritative outages).

pub mod casestudy;
pub mod columnar;
pub mod correlate;
pub mod enduser;
pub mod failures;
pub mod impact;
pub mod join;
pub mod longitudinal;
pub mod ports;
pub mod report;
pub mod resilience;

pub use columnar::{ColList, Interner, JoinTable};
pub use impact::{compute_impacts_columnar, BaselineSource, ImpactConfig, ImpactEvent};
pub use join::{ChangingDirectory, DnsAttackEvent, NsDirectory};
pub use longitudinal::{LongitudinalConfig, LongitudinalReport, MonthlyRow};
