//! Case-study metrics: Table 2's per-nameserver attack characterization
//! and the Figure 2/3 time series.

use dnssim::NsSetId;
use openintel::MeasurementStore;
use simcore::time::Window;
use std::net::Ipv4Addr;
use telescope::AttackEpisode;

/// Bytes per attack packet assumed when converting packet rates into
/// traffic volume. Calibrated to the paper's Table 2 (124 Kpps reported as
/// 1.4 Gbps → ≈1410 B per packet, i.e. MTU-sized flood frames).
pub const INFERRED_PACKET_BYTES: f64 = 1_410.0;

/// Fraction of backscatter packets that reveal a *new* spoofed source,
/// calibrated so the December-2020 TransIP episode (≈19 M telescope
/// packets) yields the ≈5.8 M attacker IPs of Table 2.
pub const ATTACKER_DEDUP: f64 = 0.305;

/// Table 2 row: inferred metrics of one attack on one nameserver.
#[derive(Clone, Debug)]
pub struct NsAttackMetrics {
    pub label: String,
    pub addr: Ipv4Addr,
    /// Peak observed packet rate at the telescope, packets/minute.
    pub observed_ppm: f64,
    /// Extrapolated victim-side traffic volume in Gbps.
    pub inferred_gbps: f64,
    /// Estimated count of distinct attacker (spoofed source) IPs.
    pub attacker_ips: u64,
    /// Inferred duration in minutes.
    pub duration_min: f64,
}

/// Build Table-2-style metrics for `addr` from its feed episodes
/// overlapping `[first, last]`. Returns `None` when the telescope saw no
/// qualifying attack.
pub fn ns_attack_metrics(
    episodes: &[AttackEpisode],
    label: &str,
    addr: Ipv4Addr,
    first: Window,
    last: Window,
    scale_factor: f64,
) -> Option<NsAttackMetrics> {
    let relevant: Vec<&AttackEpisode> = episodes
        .iter()
        .filter(|e| e.victim == addr && e.first_window <= last && e.last_window >= first)
        .collect();
    if relevant.is_empty() {
        return None;
    }
    let observed_ppm = relevant.iter().map(|e| e.peak_ppm).fold(0.0, f64::max);
    let packets: u64 = relevant.iter().map(|e| e.packets).sum();
    let duration_min: f64 = relevant.iter().map(|e| e.duration().secs() as f64 / 60.0).sum();
    let victim_pps = observed_ppm * scale_factor / 60.0;
    Some(NsAttackMetrics {
        label: label.to_string(),
        addr,
        observed_ppm,
        inferred_gbps: victim_pps * INFERRED_PACKET_BYTES * 8.0 / 1e9,
        // Unique attacker IPs: each backscatter packet reveals the spoofed
        // source it answered; dedup factor calibrated on Table 2.
        attacker_ips: (packets as f64 * ATTACKER_DEDUP) as u64,
        duration_min,
    })
}

/// One point of the Figure 2/3 time series.
#[derive(Clone, Debug, PartialEq)]
pub struct TimePoint {
    pub window: Window,
    pub domains: u64,
    pub avg_rtt_ms: f64,
    pub timeout_share: f64,
    pub failure_share: f64,
}

/// Per-window RTT/error series for one NSSet over `[first, last]`
/// (windows without measurements are skipped).
pub fn rtt_timeseries(
    store: &MeasurementStore,
    nsset: NsSetId,
    first: Window,
    last: Window,
) -> Vec<TimePoint> {
    let mut out = Vec::new();
    for w in first.0..=last.0 {
        if let Some(s) = store.window_stats(nsset, Window(w)) {
            if s.domains_measured == 0 {
                continue;
            }
            out.push(TimePoint {
                window: Window(w),
                domains: s.domains_measured,
                avg_rtt_ms: s.avg_rtt(),
                timeout_share: s.timeout as f64 / s.domains_measured as f64,
                failure_share: s.failure_rate(),
            });
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use attack::Protocol;

    fn episode(victim: &str, w0: u64, w1: u64, peak_ppm: f64, packets: u64) -> AttackEpisode {
        AttackEpisode {
            victim: victim.parse().unwrap(),
            first_window: Window(w0),
            last_window: Window(w1),
            packets,
            peak_ppm,
            protocol: Protocol::Tcp,
            first_port: 53,
            unique_ports: 1,
            slash16s: 150,
        }
    }

    #[test]
    fn table2_december_calibration() {
        // TransIP December: 21.8 Kppm peak, ≈19M telescope packets over
        // 14.5 hours.
        let eps = vec![episode("195.135.195.195", 0, 173, 21_800.0, 19_000_000)];
        let m = ns_attack_metrics(
            &eps,
            "A",
            "195.135.195.195".parse().unwrap(),
            Window(0),
            Window(200),
            341.33,
        )
        .unwrap();
        assert!((m.observed_ppm - 21_800.0).abs() < 1.0);
        // 124 Kpps × 1410 B × 8 ≈ 1.4 Gbps.
        assert!((m.inferred_gbps - 1.4).abs() < 0.1, "gbps {}", m.inferred_gbps);
        // ≈5.8M attacker IPs.
        assert!((5_000_000..7_000_000).contains(&m.attacker_ips), "attackers {}", m.attacker_ips);
        assert!((m.duration_min - 870.0).abs() < 1.0);
    }

    #[test]
    fn no_overlap_returns_none() {
        let eps = vec![episode("195.135.195.195", 0, 10, 100.0, 1_000)];
        assert!(ns_attack_metrics(
            &eps,
            "A",
            "195.135.195.195".parse().unwrap(),
            Window(100),
            Window(200),
            341.33,
        )
        .is_none());
        assert!(ns_attack_metrics(
            &eps,
            "B",
            "1.2.3.4".parse().unwrap(),
            Window(0),
            Window(10),
            341.33,
        )
        .is_none());
    }

    #[test]
    fn multiple_episodes_merge() {
        let eps = vec![
            episode("195.135.195.195", 0, 11, 5_000.0, 100_000),
            episode("195.135.195.195", 20, 31, 9_000.0, 200_000),
        ];
        let m = ns_attack_metrics(
            &eps,
            "A",
            "195.135.195.195".parse().unwrap(),
            Window(0),
            Window(40),
            341.33,
        )
        .unwrap();
        assert_eq!(m.observed_ppm, 9_000.0);
        assert!((m.duration_min - 120.0).abs() < 1e-9);
    }

    #[test]
    fn timeseries_skips_empty_windows() {
        use dnssim::{DomainId, QueryStatus};
        use openintel::measure::MeasurementRec;
        let mut store = MeasurementStore::new();
        let rec = |w: u64, rtt: f64, status| MeasurementRec {
            domain: DomainId(0),
            nsset: NsSetId(1),
            window: Window(w),
            rtt_ms: rtt,
            status,
        };
        store.ingest(&[
            rec(10, 20.0, QueryStatus::Ok),
            rec(10, 4_500.0, QueryStatus::Timeout),
            rec(12, 25.0, QueryStatus::Ok),
        ]);
        let ts = rtt_timeseries(&store, NsSetId(1), Window(9), Window(13));
        assert_eq!(ts.len(), 2);
        assert_eq!(ts[0].window, Window(10));
        assert_eq!(ts[0].domains, 2);
        assert!((ts[0].timeout_share - 0.5).abs() < 1e-12);
        assert_eq!(ts[1].window, Window(12));
        assert_eq!(ts[1].timeout_share, 0.0);
    }
}
