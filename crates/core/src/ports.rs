//! §6.2 / Figure 6: protocol and destination-port distribution of attacks
//! on DNS infrastructure, and the contrasting port mix of *successful*
//! attacks (§6.3.1).

use crate::impact::ImpactEvent;
use attack::Protocol;
use std::collections::HashMap;
use telescope::AttackEpisode;

/// The protocol/port breakdown of a set of attacks.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct PortBreakdown {
    pub total: u64,
    pub single_port: u64,
    pub by_protocol: HashMap<&'static str, u64>,
    /// (protocol, port) → count, with the long tail folded into port 0
    /// per protocol via [`PortBreakdown::top_ports`].
    pub by_port: HashMap<(&'static str, u16), u64>,
}

fn proto_name(p: Protocol) -> &'static str {
    match p {
        Protocol::Tcp => "TCP",
        Protocol::Udp => "UDP",
        Protocol::Icmp => "ICMP",
    }
}

impl PortBreakdown {
    pub fn single_port_share(&self) -> f64 {
        if self.total == 0 {
            0.0
        } else {
            self.single_port as f64 / self.total as f64
        }
    }

    pub fn protocol_share(&self, proto: Protocol) -> f64 {
        if self.total == 0 {
            return 0.0;
        }
        *self.by_protocol.get(proto_name(proto)).unwrap_or(&0) as f64 / self.total as f64
    }

    /// Share of `proto` attacks aimed at `port`.
    pub fn port_share_within(&self, proto: Protocol, port: u16) -> f64 {
        let proto_total = *self.by_protocol.get(proto_name(proto)).unwrap_or(&0);
        if proto_total == 0 {
            return 0.0;
        }
        *self.by_port.get(&(proto_name(proto), port)).unwrap_or(&0) as f64 / proto_total as f64
    }

    /// Share of all attacks aimed at `port` (any protocol).
    pub fn port_share(&self, port: u16) -> f64 {
        if self.total == 0 {
            return 0.0;
        }
        let n: u64 = self.by_port.iter().filter(|((_, p), _)| *p == port).map(|(_, c)| *c).sum();
        n as f64 / self.total as f64
    }

    /// The `n` most attacked (protocol, port) pairs.
    pub fn top_ports(&self, n: usize) -> Vec<((&'static str, u16), u64)> {
        let mut v: Vec<_> = self.by_port.iter().map(|(k, c)| (*k, *c)).collect();
        v.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
        v.truncate(n);
        v
    }
}

/// Breakdown over feed episodes (Figure 6's population: all attacks toward
/// DNS authoritative infrastructure).
pub fn breakdown_episodes<'a>(episodes: impl Iterator<Item = &'a AttackEpisode>) -> PortBreakdown {
    let mut out = PortBreakdown::default();
    for ep in episodes {
        out.total += 1;
        if ep.unique_ports <= 1 {
            out.single_port += 1;
        }
        *out.by_protocol.entry(proto_name(ep.protocol)).or_insert(0) += 1;
        *out.by_port.entry((proto_name(ep.protocol), ep.first_port)).or_insert(0) += 1;
    }
    out
}

/// Breakdown over *successful* attacks: impact events with resolution
/// failures (§6.3.1 found these skew heavily toward port 53).
pub fn breakdown_successful(impacts: &[ImpactEvent]) -> PortBreakdown {
    let mut out = PortBreakdown::default();
    for e in impacts.iter().filter(|e| e.failure_rate > 0.0) {
        out.total += 1;
        out.single_port += 1; // first-port attribution only
        *out.by_protocol.entry(proto_name(e.protocol)).or_insert(0) += 1;
        *out.by_port.entry((proto_name(e.protocol), e.first_port)).or_insert(0) += 1;
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use simcore::time::Window;

    fn ep(proto: Protocol, port: u16, nports: u16) -> AttackEpisode {
        AttackEpisode {
            victim: "1.2.3.4".parse().unwrap(),
            first_window: Window(0),
            last_window: Window(1),
            packets: 100,
            peak_ppm: 10.0,
            protocol: proto,
            first_port: port,
            unique_ports: nports,
            slash16s: 3,
        }
    }

    #[test]
    fn shares_computed() {
        let eps = [
            ep(Protocol::Tcp, 80, 1),
            ep(Protocol::Tcp, 80, 1),
            ep(Protocol::Tcp, 53, 1),
            ep(Protocol::Udp, 53, 4),
            ep(Protocol::Icmp, 0, 1),
        ];
        let b = breakdown_episodes(eps.iter());
        assert_eq!(b.total, 5);
        assert_eq!(b.single_port, 4);
        assert!((b.single_port_share() - 0.8).abs() < 1e-12);
        assert!((b.protocol_share(Protocol::Tcp) - 0.6).abs() < 1e-12);
        assert!((b.port_share_within(Protocol::Tcp, 80) - 2.0 / 3.0).abs() < 1e-12);
        assert!((b.port_share(53) - 0.4).abs() < 1e-12);
        let top = b.top_ports(2);
        assert_eq!(top[0], (("TCP", 80), 2));
    }

    #[test]
    fn empty_breakdown_is_zero() {
        let b = breakdown_episodes(std::iter::empty());
        assert_eq!(b.single_port_share(), 0.0);
        assert_eq!(b.protocol_share(Protocol::Tcp), 0.0);
        assert_eq!(b.port_share(53), 0.0);
        assert!(b.top_ports(3).is_empty());
    }

    #[test]
    fn successful_filter_requires_failures() {
        use crate::impact::ImpactEvent;
        use census::AnycastClass;
        use dnssim::NsSetId;
        let mk = |failure_rate: f64, port: u16| ImpactEvent {
            episode_idx: 0,
            nsset: NsSetId(0),
            domains_measured: 10,
            impact_on_rtt: Some(1.0),
            baseline_source: crate::impact::BaselineSource::DayBefore,
            failure_rate,
            timeouts: 0,
            servfails: 0,
            nsset_domains: 100,
            protocol: Protocol::Tcp,
            first_port: port,
            peak_ppm: 10.0,
            duration_min: 15.0,
            anycast: AnycastClass::Unicast,
            asn_count: 1,
            prefix_count: 1,
        };
        let impacts = vec![mk(0.0, 80), mk(0.5, 53), mk(1.0, 53)];
        let b = breakdown_successful(&impacts);
        assert_eq!(b.total, 2);
        assert!((b.port_share(53) - 1.0).abs() < 1e-12);
    }
}
