//! §6.4–§6.5 / Figures 9–10: does telescope-inferred intensity or duration
//! predict impact?

use crate::impact::ImpactEvent;
use simcore::stats::{pearson, quantile, spearman};

/// Paired samples for a correlation figure.
#[derive(Clone, Debug, Default)]
pub struct CorrelationSeries {
    /// X values (intensity in ppm, or duration in minutes).
    pub x: Vec<f64>,
    /// Y values: Impact_on_RTT.
    pub y: Vec<f64>,
}

impl CorrelationSeries {
    pub fn pearson(&self) -> Option<f64> {
        pearson(&self.x, &self.y)
    }

    /// Pearson over log-transformed values (both axes are heavy-tailed).
    pub fn pearson_log(&self) -> Option<f64> {
        let lx: Vec<f64> = self.x.iter().map(|v| v.max(1e-9).ln()).collect();
        let ly: Vec<f64> = self.y.iter().map(|v| v.max(1e-9).ln()).collect();
        pearson(&lx, &ly)
    }

    /// Spearman rank correlation (robust to the heavy tails).
    pub fn spearman(&self) -> Option<f64> {
        spearman(&self.x, &self.y)
    }

    pub fn len(&self) -> usize {
        self.x.len()
    }

    pub fn is_empty(&self) -> bool {
        self.x.is_empty()
    }

    /// Median of the X axis (used to report the bimodal intensity modes).
    pub fn x_median(&self) -> Option<f64> {
        quantile(&mut self.x.clone(), 0.5)
    }
}

/// Figure 9: telescope intensity (peak ppm) vs `Impact_on_RTT`.
pub fn intensity_vs_impact(impacts: &[ImpactEvent]) -> CorrelationSeries {
    let mut s = CorrelationSeries::default();
    for e in impacts {
        if let Some(i) = e.impact_on_rtt {
            s.x.push(e.peak_ppm);
            s.y.push(i);
        }
    }
    s
}

/// Figure 10: inferred attack duration (minutes) vs `Impact_on_RTT`.
pub fn duration_vs_impact(impacts: &[ImpactEvent]) -> CorrelationSeries {
    let mut s = CorrelationSeries::default();
    for e in impacts {
        if let Some(i) = e.impact_on_rtt {
            s.x.push(e.duration_min);
            s.y.push(i);
        }
    }
    s
}

/// Histogram of durations in the paper's bins, to exhibit the 15-min/1-h
/// bimodality (§6.5).
pub fn duration_histogram(impacts: &[ImpactEvent]) -> Vec<(&'static str, u64)> {
    let mut bins: Vec<(&'static str, u64)> = vec![
        ("5-10 min", 0),
        ("10-30 min", 0),
        ("30-90 min", 0),
        ("90 min - 5 h", 0),
        ("> 5 h", 0),
    ];
    for e in impacts {
        let m = e.duration_min;
        let idx = if m < 10.0 {
            0
        } else if m < 30.0 {
            1
        } else if m < 90.0 {
            2
        } else if m < 300.0 {
            3
        } else {
            4
        };
        bins[idx].1 += 1;
    }
    bins
}

#[cfg(test)]
mod tests {
    use super::*;
    use attack::Protocol;
    use census::AnycastClass;
    use dnssim::NsSetId;

    fn mk(ppm: f64, dur: f64, impact: Option<f64>) -> ImpactEvent {
        ImpactEvent {
            episode_idx: 0,
            nsset: NsSetId(0),
            domains_measured: 10,
            impact_on_rtt: impact,
            baseline_source: crate::impact::BaselineSource::DayBefore,
            failure_rate: 0.0,
            timeouts: 0,
            servfails: 0,
            nsset_domains: 100,
            protocol: Protocol::Tcp,
            first_port: 53,
            peak_ppm: ppm,
            duration_min: dur,
            anycast: AnycastClass::Unicast,
            asn_count: 1,
            prefix_count: 1,
        }
    }

    #[test]
    fn series_skip_missing_impact() {
        let impacts = vec![mk(100.0, 15.0, Some(2.0)), mk(200.0, 60.0, None)];
        let s = intensity_vs_impact(&impacts);
        assert_eq!(s.len(), 1);
        let d = duration_vs_impact(&impacts);
        assert_eq!(d.len(), 1);
        assert_eq!(d.x[0], 15.0);
    }

    #[test]
    fn perfect_correlation_detected() {
        let impacts: Vec<ImpactEvent> =
            (1..50).map(|i| mk(i as f64, 10.0, Some(i as f64 * 2.0))).collect();
        let s = intensity_vs_impact(&impacts);
        assert!((s.pearson().unwrap() - 1.0).abs() < 1e-9);
        assert!((s.pearson_log().unwrap() - 1.0).abs() < 1e-9);
        assert!((s.spearman().unwrap() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn uncorrelated_data_near_zero() {
        // Impact independent of intensity: alternating highs and lows.
        let impacts: Vec<ImpactEvent> = (0..200)
            .map(|i| {
                let ppm = if i % 2 == 0 { 50.0 } else { 6_000.0 };
                let imp = 1.0 + ((i * 7) % 13) as f64;
                mk(ppm, 15.0, Some(imp))
            })
            .collect();
        let s = intensity_vs_impact(&impacts);
        assert!(s.pearson().unwrap().abs() < 0.2, "r = {:?}", s.pearson());
    }

    #[test]
    fn duration_histogram_bins() {
        let impacts = vec![
            mk(1.0, 7.0, Some(1.0)),
            mk(1.0, 15.0, Some(1.0)),
            mk(1.0, 16.0, Some(1.0)),
            mk(1.0, 60.0, Some(1.0)),
            mk(1.0, 200.0, Some(1.0)),
            mk(1.0, 1_140.0, Some(1.0)), // the 19-hour Contabo-style outlier
        ];
        let h = duration_histogram(&impacts);
        assert_eq!(h[0].1, 1);
        assert_eq!(h[1].1, 2);
        assert_eq!(h[2].1, 1);
        assert_eq!(h[3].1, 1);
        assert_eq!(h[4].1, 1);
    }

    #[test]
    fn x_median() {
        let impacts =
            vec![mk(10.0, 1.0, Some(1.0)), mk(20.0, 1.0, Some(1.0)), mk(30.0, 1.0, Some(1.0))];
        let s = intensity_vs_impact(&impacts);
        assert_eq!(s.x_median(), Some(20.0));
        assert!(CorrelationSeries::default().x_median().is_none());
        assert!(CorrelationSeries::default().pearson().is_none());
    }
}
