//! §6.3.1's closing observation, made quantitative: *"The impact on
//! end-users in cases of complete resolution failure depends on several
//! factors, mainly related to caching policy. A popular domain (queried
//! frequently, available in most caches) with a high TTL value may be less
//! affected than a less popular one."*
//!
//! Model: one recursive-resolver cache serves a user population querying
//! the domain as a Poisson process with rate `λ`. The cached NS/A entry is
//! fresh for `TTL` seconds after each authoritative refresh; a stale-cache
//! query triggers a refresh. During an authoritative outage of length `D`
//! (complete resolution failure at the authoritatives), a user query
//! succeeds only while the entry is still fresh.
//!
//! In steady state the refresh cycle is `TTL + Exp(1/λ)` long (fresh for
//! TTL, then stale until the next query), so at a random outage onset:
//!
//! - the entry is fresh with probability `λ·TTL / (1 + λ·TTL)`;
//! - conditionally, the remaining freshness is `Uniform(0, TTL)`.
//!
//! The expected fraction of in-outage queries that fail is then
//!
//! ```text
//! 1 − P(fresh) · E[min(D, U(0,TTL))] / D
//! ```
//!
//! which recovers both limits: unpopular or TTL-less domains fail
//! completely, and Moura et al.'s "When the Dike Breaks" finding that
//! caches carry almost all users through outages shorter than the TTL.

use simcore::time::SimDuration;

/// The cache/popularity model for one domain behind one resolver cache.
///
/// ```
/// use dnsimpact_core::enduser::CacheImpactModel;
/// use simcore::time::SimDuration;
///
/// // A popular domain with a one-hour TTL rides out a 15-minute outage.
/// let popular = CacheImpactModel::new(1.0, 3_600.0);
/// assert!(popular.user_failure_fraction(SimDuration::from_mins(15)) < 0.2);
/// // Without caching, every query fails.
/// let no_ttl = CacheImpactModel::new(1.0, 0.0);
/// assert_eq!(no_ttl.user_failure_fraction(SimDuration::from_mins(15)), 1.0);
/// ```
#[derive(Clone, Copy, Debug)]
pub struct CacheImpactModel {
    /// Query arrival rate at the cache, queries/second.
    pub query_rate: f64,
    /// Record TTL, seconds.
    pub ttl: f64,
}

impl CacheImpactModel {
    pub fn new(query_rate: f64, ttl: f64) -> CacheImpactModel {
        assert!(query_rate >= 0.0 && ttl >= 0.0);
        CacheImpactModel { query_rate, ttl }
    }

    /// Steady-state probability the entry is fresh at a random instant.
    pub fn fresh_probability(&self) -> f64 {
        let lt = self.query_rate * self.ttl;
        if lt == 0.0 {
            0.0
        } else {
            lt / (1.0 + lt)
        }
    }

    /// Expected fraction of user queries during an authoritative outage of
    /// length `outage` that fail to resolve.
    pub fn user_failure_fraction(&self, outage: SimDuration) -> f64 {
        let d = outage.secs() as f64;
        if d == 0.0 {
            return 0.0;
        }
        if self.ttl == 0.0 {
            return 1.0;
        }
        // E[min(D, U(0,TTL))]:
        let e_min = if d >= self.ttl { self.ttl / 2.0 } else { d - d * d / (2.0 * self.ttl) };
        (1.0 - self.fresh_probability() * e_min / d).clamp(0.0, 1.0)
    }
}

/// The paper's qualitative contrast, as a table: failure fractions for
/// popular/unpopular × low/high-TTL domains under a given outage.
pub fn caching_contrast(outage: SimDuration) -> Vec<(&'static str, f64)> {
    vec![
        ("popular, TTL 1h", CacheImpactModel::new(1.0, 3_600.0).user_failure_fraction(outage)),
        ("popular, TTL 5m", CacheImpactModel::new(1.0, 300.0).user_failure_fraction(outage)),
        (
            "unpopular, TTL 1h",
            CacheImpactModel::new(1.0 / 7_200.0, 3_600.0).user_failure_fraction(outage),
        ),
        (
            "unpopular, TTL 5m",
            CacheImpactModel::new(1.0 / 7_200.0, 300.0).user_failure_fraction(outage),
        ),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;
    use simcore::dist::exponential;

    /// Monte-Carlo reference: simulate the renewal process directly over
    /// the real TTL cache and count failing in-outage queries.
    fn monte_carlo(model: &CacheImpactModel, outage_secs: f64, runs: usize) -> f64 {
        use dnssim::cache::{CacheKey, TtlCache};
        use dnswire::{RData, Record, RrType};
        let mut rng = SmallRng::seed_from_u64(42);
        let key = || CacheKey { name: "pop.example".parse().unwrap(), rtype: RrType::Ns };
        let record = || {
            Record::new(
                "pop.example".parse().unwrap(),
                model.ttl as u32,
                RData::Ns("ns.pop.example".parse().unwrap()),
            )
        };
        let warmup = 10.0 * (model.ttl + 1.0 / model.query_rate);
        let mut failed = 0u64;
        let mut total = 0u64;
        for _ in 0..runs {
            let mut cache = TtlCache::new();
            // Warm up to steady state, then run the outage. The outage
            // onset gets a per-run uniform phase offset: a fixed onset
            // would be phase-locked to the near-deterministic renewal
            // cycle (length ≈ TTL + 1/λ) and sample only cycle
            // boundaries instead of a uniform phase.
            let mut t = 0.0f64;
            let phase: f64 =
                rand::Rng::random::<f64>(&mut rng) * (model.ttl + 1.0 / model.query_rate);
            let outage_start = warmup + phase;
            let outage_end = outage_start + outage_secs;
            loop {
                t += exponential(&mut rng, model.query_rate);
                if t >= outage_end {
                    break;
                }
                let now = simcore::time::SimTime(t as u64);
                let fresh = cache.get(&key(), now).is_some();
                let in_outage = t >= outage_start;
                if fresh {
                    if in_outage {
                        total += 1;
                    }
                } else if in_outage {
                    // Stale + authoritatives down → user-visible failure,
                    // and no refresh happens.
                    total += 1;
                    failed += 1;
                } else {
                    // Healthy period: refresh the entry.
                    cache.put(key(), vec![record()], now);
                }
            }
        }
        failed as f64 / total.max(1) as f64
    }

    #[test]
    fn analytic_matches_monte_carlo_popular() {
        // Popular domain (1 q/s), TTL 10 min, outage 30 min.
        let m = CacheImpactModel::new(1.0, 600.0);
        let analytic = m.user_failure_fraction(SimDuration::from_mins(30));
        let mc = monte_carlo(&m, 1_800.0, 60);
        assert!((analytic - mc).abs() < 0.05, "analytic {analytic:.3} vs MC {mc:.3}");
    }

    #[test]
    fn analytic_matches_monte_carlo_short_outage() {
        // Outage shorter than TTL: most users ride it out.
        let m = CacheImpactModel::new(0.5, 3_600.0);
        let analytic = m.user_failure_fraction(SimDuration::from_mins(15));
        let mc = monte_carlo(&m, 900.0, 40);
        assert!((analytic - mc).abs() < 0.06, "analytic {analytic:.3} vs MC {mc:.3}");
        assert!(analytic < 0.25, "short outage, long TTL → mild impact: {analytic:.3}");
    }

    #[test]
    fn limits_are_correct() {
        // No TTL → every in-outage query fails.
        assert_eq!(
            CacheImpactModel::new(10.0, 0.0).user_failure_fraction(SimDuration::from_mins(15)),
            1.0
        );
        // Unpopular domain → cache almost never fresh → ≈ full failure.
        let unpop = CacheImpactModel::new(1.0 / 86_400.0, 300.0);
        assert!(unpop.user_failure_fraction(SimDuration::from_mins(60)) > 0.98);
        // Zero-length outage → nothing to fail.
        assert_eq!(CacheImpactModel::new(1.0, 300.0).user_failure_fraction(SimDuration::ZERO), 0.0);
        // Very popular + TTL ≫ outage → failures bounded by D/(2·TTL)-ish.
        let pop = CacheImpactModel::new(10.0, 86_400.0);
        let f = pop.user_failure_fraction(SimDuration::from_mins(15));
        assert!(f < 0.02, "dike holds: {f:.4}");
    }

    #[test]
    fn monotonicity() {
        let outage = SimDuration::from_mins(60);
        // Longer TTL → fewer failures.
        let mut last = 1.1;
        for ttl in [0.0, 60.0, 600.0, 3_600.0, 86_400.0] {
            let f = CacheImpactModel::new(1.0, ttl).user_failure_fraction(outage);
            assert!(f <= last + 1e-12, "ttl {ttl}: {f} > {last}");
            last = f;
        }
        // Longer outage → more failures.
        let m = CacheImpactModel::new(1.0, 3_600.0);
        let mut last = -0.1;
        for mins in [1u64, 5, 15, 60, 240, 1_440] {
            let f = m.user_failure_fraction(SimDuration::from_mins(mins));
            assert!(f >= last - 1e-12, "{mins} min: {f} < {last}");
            last = f;
        }
    }

    #[test]
    fn contrast_table_shape() {
        // The paper's qualitative claim: popular+high-TTL suffers least,
        // unpopular domains suffer (nearly) completely.
        let rows = caching_contrast(SimDuration::from_mins(30));
        let get = |label: &str| rows.iter().find(|(l, _)| *l == label).unwrap().1;
        assert!(get("popular, TTL 1h") < get("popular, TTL 5m"));
        assert!(get("popular, TTL 1h") < get("unpopular, TTL 1h"));
        assert!(get("unpopular, TTL 5m") > 0.95);
    }
}
