//! §6.6 / Figures 11–13: efficacy of resilience techniques — anycast, AS
//! diversity, /24 prefix diversity — measured as the distribution of
//! `Impact_on_RTT` within each deployment class.

use crate::impact::ImpactEvent;
use census::AnycastClass;
use simcore::stats::quantile;
use std::collections::BTreeMap;

/// Distribution summary of impact within one deployment class.
#[derive(Clone, Debug, PartialEq)]
pub struct ClassImpact {
    pub label: String,
    pub events: u64,
    pub median_impact: f64,
    pub p90_impact: f64,
    pub max_impact: f64,
    /// Events with ≥10× RTT inflation.
    pub over_10x: u64,
    /// Events with ≥100× RTT inflation.
    pub over_100x: u64,
    /// Events with complete resolution failure.
    pub complete_failures: u64,
}

fn summarize_class(label: String, events: &[&ImpactEvent]) -> ClassImpact {
    let mut impacts: Vec<f64> = events.iter().filter_map(|e| e.impact_on_rtt).collect();
    let median = quantile(&mut impacts, 0.5).unwrap_or(f64::NAN);
    let p90 = quantile(&mut impacts, 0.9).unwrap_or(f64::NAN);
    let max = impacts.iter().copied().fold(f64::NAN, f64::max);
    ClassImpact {
        label,
        events: events.len() as u64,
        median_impact: median,
        p90_impact: p90,
        max_impact: max,
        over_10x: impacts.iter().filter(|&&i| i >= 10.0).count() as u64,
        over_100x: impacts.iter().filter(|&&i| i >= 100.0).count() as u64,
        complete_failures: events.iter().filter(|e| e.complete_failure()).count() as u64,
    }
}

/// Figure 11: impact by anycast class (Unicast / Partial / Full).
pub fn by_anycast(impacts: &[ImpactEvent]) -> Vec<ClassImpact> {
    [AnycastClass::Unicast, AnycastClass::Partial, AnycastClass::Full]
        .into_iter()
        .map(|class| {
            let evs: Vec<&ImpactEvent> = impacts.iter().filter(|e| e.anycast == class).collect();
            summarize_class(format!("{class:?}"), &evs)
        })
        .collect()
}

/// Figure 12: impact by number of distinct origin ASes (1, 2, 3+).
pub fn by_as_diversity(impacts: &[ImpactEvent]) -> Vec<ClassImpact> {
    bucket_by(impacts, |e| e.asn_count, "ASN", "ASNs")
}

/// Figure 13: impact by number of distinct /24 prefixes (1, 2, 3+).
pub fn by_prefix_diversity(impacts: &[ImpactEvent]) -> Vec<ClassImpact> {
    bucket_by(impacts, |e| e.prefix_count, "/24 prefix", "/24 prefixes")
}

fn bucket_by(
    impacts: &[ImpactEvent],
    key: impl Fn(&ImpactEvent) -> usize,
    singular: &str,
    plural: &str,
) -> Vec<ClassImpact> {
    let mut groups: BTreeMap<usize, Vec<&ImpactEvent>> = BTreeMap::new();
    for e in impacts {
        groups.entry(key(e).min(3)).or_default().push(e);
    }
    groups
        .into_iter()
        .map(|(k, evs)| {
            let label = match k {
                1 => format!("1 {singular}"),
                2 => format!("2 {plural}"),
                _ => format!("3+ {plural}"),
            };
            summarize_class(label, &evs)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use attack::Protocol;
    use dnssim::NsSetId;

    fn mk(anycast: AnycastClass, asns: usize, prefixes: usize, impact: f64) -> ImpactEvent {
        ImpactEvent {
            episode_idx: 0,
            nsset: NsSetId(0),
            domains_measured: 10,
            impact_on_rtt: Some(impact),
            baseline_source: crate::impact::BaselineSource::DayBefore,
            failure_rate: if impact >= 400.0 { 1.0 } else { 0.0 },
            timeouts: 0,
            servfails: 0,
            nsset_domains: 1_000,
            protocol: Protocol::Tcp,
            first_port: 53,
            peak_ppm: 100.0,
            duration_min: 15.0,
            anycast,
            asn_count: asns,
            prefix_count: prefixes,
        }
    }

    #[test]
    fn anycast_classes_in_order() {
        let impacts = vec![
            mk(AnycastClass::Unicast, 1, 1, 150.0),
            mk(AnycastClass::Unicast, 1, 1, 12.0),
            mk(AnycastClass::Partial, 2, 2, 3.0),
            mk(AnycastClass::Full, 2, 3, 1.1),
        ];
        let rows = by_anycast(&impacts);
        assert_eq!(rows.len(), 3);
        assert_eq!(rows[0].label, "Unicast");
        assert_eq!(rows[0].events, 2);
        assert_eq!(rows[0].over_10x, 2);
        assert_eq!(rows[0].over_100x, 1);
        assert_eq!(rows[2].label, "Full");
        assert_eq!(rows[2].over_10x, 0);
        assert!((rows[2].median_impact - 1.1).abs() < 1e-12);
    }

    #[test]
    fn diversity_buckets_cap_at_3() {
        let impacts = vec![
            mk(AnycastClass::Unicast, 1, 1, 2.0),
            mk(AnycastClass::Unicast, 2, 2, 2.0),
            mk(AnycastClass::Unicast, 5, 7, 2.0),
        ];
        let rows = by_as_diversity(&impacts);
        assert_eq!(rows.len(), 3);
        assert_eq!(rows[0].label, "1 ASN");
        assert_eq!(rows[1].label, "2 ASNs");
        assert_eq!(rows[2].label, "3+ ASNs");
        let prows = by_prefix_diversity(&impacts);
        assert_eq!(prows[2].events, 1);
    }

    #[test]
    fn complete_failures_counted() {
        let impacts = vec![mk(AnycastClass::Unicast, 1, 1, 500.0)];
        let rows = by_anycast(&impacts);
        assert_eq!(rows[0].complete_failures, 1);
        assert_eq!(rows[0].max_impact, 500.0);
    }

    #[test]
    fn empty_class_is_nan_median() {
        let rows = by_anycast(&[]);
        assert!(rows.iter().all(|r| r.events == 0 && r.median_impact.is_nan()));
    }
}
