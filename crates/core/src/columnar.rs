//! Columnar (struct-of-arrays) form of the RSDoS×NSSet join — the scale
//! sweep's hot path.
//!
//! [`crate::join`] materializes one [`DnsAttackEvent`] struct per joined
//! episode, each owning three `Vec`s. At paper scale (millions of
//! episodes) that allocation pattern dominates the join, so the sweep path
//! builds a [`JoinTable`] instead: per-column arrays plus shared
//! variable-length pools ([`ColList`]) for the nameserver and NSSet lists.
//! Victims arrive pre-interned in a [`telescope::EpisodeColumns`] arena
//! (see [`Interner`], re-exported here as the workspace's canonical intern
//! type).
//!
//! The row join stays in [`crate::join`] as the *reference
//! implementation*: `tests/columnar_equivalence.rs` drives both paths over
//! proptest-generated feeds and requires identical events, impacts,
//! deterministic metrics and trace streams. [`JoinTable::build`] therefore
//! replicates the reference semantics exactly — same skip rules, same
//! trace events, same `join.*` counters, same contiguous sharding — only
//! the storage layout differs.

use crate::join::{DnsAttackEvent, NsDirectory};
use census::OpenResolverList;
use dnssim::{Infra, NsId, NsSetId};
use simcore::time::Month;
use telescope::EpisodeColumns;

/// The workspace's canonical interner (defined in `simcore` so that
/// `telescope`/`openintel` — which `core` depends on — can use it too).
pub use simcore::Interner;

/// A list-of-lists stored flat: row `i` is `flat[offsets[i]..offsets[i+1]]`.
/// One allocation per column instead of one per row.
#[derive(Clone, Debug)]
pub struct ColList<T> {
    offsets: Vec<u32>,
    flat: Vec<T>,
}

impl<T> Default for ColList<T> {
    fn default() -> ColList<T> {
        ColList::new()
    }
}

impl<T> ColList<T> {
    pub fn new() -> ColList<T> {
        ColList { offsets: vec![0], flat: Vec::new() }
    }

    /// Append one row.
    pub fn push_row(&mut self, row: impl IntoIterator<Item = T>) {
        self.flat.extend(row);
        let end = u32::try_from(self.flat.len()).expect("ColList overflow: > u32::MAX items");
        self.offsets.push(end);
    }

    /// Row `i` as a slice.
    pub fn row(&self, i: usize) -> &[T] {
        &self.flat[self.offsets[i] as usize..self.offsets[i + 1] as usize]
    }

    pub fn rows(&self) -> usize {
        self.offsets.len() - 1
    }

    /// Move every row of `other` onto the end of `self` (shard stitching).
    pub fn append(&mut self, other: &mut ColList<T>) {
        let base = self.flat.len() as u32;
        self.offsets.extend(other.offsets.iter().skip(1).map(|&o| base + o));
        self.flat.append(&mut other.flat);
        other.offsets.truncate(1);
    }
}

/// The join result as parallel columns, one entry per joined episode, in
/// episode order — the columnar equivalent of `Vec<DnsAttackEvent>`.
#[derive(Clone, Debug, Default)]
pub struct JoinTable {
    /// Index into the feed's episode list (`u32`: feeds are bounded well
    /// below 4 G episodes).
    pub episode_idx: Vec<u32>,
    /// Calendar month of each attack start (Table 3 bucketing).
    pub months: Vec<Month>,
    /// Distinct registered domains behind each event's NSSets (Figure 5).
    pub domains_affected: Vec<u64>,
    /// Directly attacked nameservers per event.
    pub ns_direct: ColList<NsId>,
    /// Collaterally attacked (/24 neighbour) nameservers per event.
    pub ns_collateral: ColList<NsId>,
    /// Sorted NSSets touched per event.
    pub nssets: ColList<NsSetId>,
}

impl JoinTable {
    fn with_row_capacity(n: usize) -> JoinTable {
        JoinTable {
            episode_idx: Vec::with_capacity(n),
            months: Vec::with_capacity(n),
            domains_affected: Vec::with_capacity(n),
            ..JoinTable::default()
        }
    }

    pub fn len(&self) -> usize {
        self.episode_idx.len()
    }

    pub fn is_empty(&self) -> bool {
        self.episode_idx.is_empty()
    }

    /// Join the columnar feed against the nameserver directory — the
    /// columnar twin of `join::join_episodes_sharded_traced`, with
    /// identical semantics, counters, and trace emission. The feed is cut
    /// into contiguous shards, each worker builds its shard's sub-table,
    /// and the sub-tables are stitched in shard order — so the table is
    /// exactly the sequential result, byte for byte, for any `jobs`.
    #[allow(clippy::too_many_arguments)]
    pub fn build(
        infra: &Infra,
        directory: &(dyn NsDirectory + Sync),
        episodes: &EpisodeColumns,
        open_resolvers: &OpenResolverList,
        include_collateral: bool,
        day_offset: u64,
        jobs: usize,
        trace_scope: Option<&str>,
    ) -> JoinTable {
        let jobs = streamproc::effective_jobs(jobs);
        if jobs <= 1 || episodes.len() < 2 {
            return build_chunk(
                infra,
                directory,
                episodes,
                0..episodes.len(),
                open_resolvers,
                include_collateral,
                day_offset,
                trace_scope,
            );
        }
        let shards = streamproc::shard_ranges(episodes.len(), jobs);
        // Shard count tracks the requested parallelism, so it lives in the
        // scheduling-dependent namespace (excluded from determinism diffs).
        obs::counter("sched.join.shards").add(shards.len() as u64);
        let parts = streamproc::parallel_map(jobs, shards, |_, range| {
            build_chunk(
                infra,
                directory,
                episodes,
                range,
                open_resolvers,
                include_collateral,
                day_offset,
                trace_scope,
            )
        });
        let mut table = JoinTable::default();
        for mut part in parts {
            table.append(&mut part);
        }
        table
    }

    /// Move every row of `other` onto the end of `self` (shard stitching;
    /// `other` is drained). Rows keep their original `episode_idx`.
    pub fn append(&mut self, other: &mut JoinTable) {
        self.episode_idx.append(&mut other.episode_idx);
        self.months.append(&mut other.months);
        self.domains_affected.append(&mut other.domains_affected);
        self.ns_direct.append(&mut other.ns_direct);
        self.ns_collateral.append(&mut other.ns_collateral);
        self.nssets.append(&mut other.nssets);
    }

    /// Incrementally join episodes `[from, episodes.len())` and append the
    /// resulting rows. Growing a table by repeated `extend` calls as a
    /// feed streams in yields exactly the table [`JoinTable::build`] would
    /// produce over the full feed — the streaming consumer's way of
    /// keeping a hot join without rebuilding it per batch.
    #[allow(clippy::too_many_arguments)]
    pub fn extend(
        &mut self,
        infra: &Infra,
        directory: &dyn NsDirectory,
        episodes: &EpisodeColumns,
        from: usize,
        open_resolvers: &OpenResolverList,
        include_collateral: bool,
        day_offset: u64,
        trace_scope: Option<&str>,
    ) {
        if from >= episodes.len() {
            return;
        }
        let mut part = build_chunk(
            infra,
            directory,
            episodes,
            from..episodes.len(),
            open_resolvers,
            include_collateral,
            day_offset,
            trace_scope,
        );
        self.append(&mut part);
    }

    /// Materialize the row form (the `LongitudinalReport` API and the
    /// differential suite compare through this).
    pub fn to_events(&self) -> Vec<DnsAttackEvent> {
        (0..self.len())
            .map(|i| DnsAttackEvent {
                episode_idx: self.episode_idx[i] as usize,
                ns_direct: self.ns_direct.row(i).to_vec(),
                ns_collateral: self.ns_collateral.row(i).to_vec(),
                nssets: self.nssets.row(i).to_vec(),
                domains_affected: self.domains_affected[i],
                month: self.months[i],
            })
            .collect()
    }
}

/// Join one contiguous shard of the columnar feed. Mirrors the reference
/// `join::join_chunk` decision-for-decision; the only differences are the
/// storage layout and the union-count strategy (sorted-merge over the
/// already-sorted `domains_of_nsset` slices instead of a per-row
/// `HashSet`).
#[allow(clippy::too_many_arguments)]
fn build_chunk(
    infra: &Infra,
    directory: &dyn NsDirectory,
    episodes: &EpisodeColumns,
    range: std::ops::Range<usize>,
    open_resolvers: &OpenResolverList,
    include_collateral: bool,
    day_offset: u64,
    trace_scope: Option<&str>,
) -> JoinTable {
    let episodes_in = range.len();
    let mut table = JoinTable::with_row_capacity(episodes_in / 8);
    let mut ns_direct: Vec<NsId> = Vec::new();
    let mut ns_collateral: Vec<NsId> = Vec::new();
    let mut nssets: Vec<NsSetId> = Vec::new();
    let mut union: Vec<u32> = Vec::new();
    for idx in range {
        let victim = episodes.victim(idx);
        if open_resolvers.contains(victim) {
            continue;
        }
        let first_window = episodes.first_windows[idx];
        let day = first_window.day().saturating_sub(day_offset);
        ns_direct.clear();
        ns_collateral.clear();
        if let Some(ns) = directory.ns_at(victim, day) {
            ns_direct.push(ns);
        } else if include_collateral {
            let prefix = netbase::Slash24::of(victim);
            for ns in infra.nameservers_in_slash24(prefix) {
                if directory.ns_at(infra.nameserver(ns).addr, day).is_some() {
                    ns_collateral.push(ns);
                }
            }
        }
        if ns_direct.is_empty() && ns_collateral.is_empty() {
            continue;
        }
        nssets.clear();
        for &ns in ns_direct.iter().chain(&ns_collateral) {
            nssets.extend_from_slice(infra.nssets_of_ns(ns));
        }
        nssets.sort_unstable();
        nssets.dedup();
        // Distinct domains behind the NSSets. `domains_of_nsset` slices
        // ascend, so a single-set event needs no dedup at all.
        let domains_affected = match nssets.as_slice() {
            [] => 0,
            [only] => infra.domains_of_nsset(*only).len() as u64,
            sets => {
                union.clear();
                for &set in sets {
                    union.extend(infra.domains_of_nsset(set).iter().map(|d| d.0));
                }
                union.sort_unstable();
                union.dedup();
                union.len() as u64
            }
        };
        if let Some(scope) = trace_scope {
            obs::trace::emit(
                obs::EventKind::JoinMatched,
                scope,
                Some(idx as u64),
                Some(first_window.start().secs()),
                format!(
                    "victim {} → {} direct + {} collateral ns, {} nsset(s)",
                    victim,
                    ns_direct.len(),
                    ns_collateral.len(),
                    nssets.len()
                ),
                Some(domains_affected),
            );
        }
        table.episode_idx.push(idx as u32);
        table.months.push(first_window.start().month());
        table.domains_affected.push(domains_affected);
        table.ns_direct.push_row(ns_direct.iter().copied());
        table.ns_collateral.push_row(ns_collateral.iter().copied());
        table.nssets.push_row(nssets.iter().copied());
    }
    // Per-shard totals sum to the same whole-feed totals whatever the
    // sharding, so these counters are `--jobs`-independent (and match the
    // reference path's exactly).
    obs::counter("join.episodes_in").add(episodes_in as u64);
    obs::counter("join.rows_joined").add(table.len() as u64);
    table
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::join::join_episodes_sharded;
    use attack::Protocol;
    use dnssim::Deployment;
    use netbase::Asn;
    use simcore::time::Window;
    use telescope::AttackEpisode;

    fn episode(victim: &str, w: u64) -> AttackEpisode {
        AttackEpisode {
            victim: victim.parse().unwrap(),
            first_window: Window(w),
            last_window: Window(w + 2),
            packets: 1_000,
            peak_ppm: 100.0,
            protocol: Protocol::Tcp,
            first_port: 53,
            unique_ports: 1,
            slash16s: 10,
        }
    }

    fn world() -> Infra {
        let mut infra = Infra::new();
        let a = infra.add_nameserver(
            "ns0.transip.net".parse().unwrap(),
            "195.135.195.195".parse().unwrap(),
            Asn(20857),
            Deployment::Unicast,
            10_000.0,
            100.0,
            15.0,
        );
        let b = infra.add_nameserver(
            "ns1.other.net".parse().unwrap(),
            "203.0.113.53".parse().unwrap(),
            Asn(64500),
            Deployment::Unicast,
            10_000.0,
            100.0,
            15.0,
        );
        let set_ab = infra.intern_nsset(vec![a, b]);
        let set_a = infra.intern_nsset(vec![a]);
        for i in 0..100 {
            infra.add_domain(format!("ab{i}.nl").parse().unwrap(), set_ab);
        }
        for i in 0..40 {
            infra.add_domain(format!("a{i}.nl").parse().unwrap(), set_a);
        }
        infra
    }

    fn feed() -> Vec<AttackEpisode> {
        vec![
            episode("195.135.195.195", 288 * 3), // direct, 2 nssets
            episode("8.100.2.3", 288),           // no DNS victim
            episode("203.0.113.53", 288 * 4),    // direct, 1 nsset
            episode("195.135.195.80", 288 * 5),  // /24 collateral only
            episode("195.135.195.195", 288 * 40),
        ]
    }

    #[test]
    fn columnar_matches_reference_rows() {
        let infra = world();
        let eps = feed();
        let cols = EpisodeColumns::from_episodes(&eps);
        for include_collateral in [false, true] {
            for jobs in [1usize, 2, 8] {
                let reference = join_episodes_sharded(
                    &infra,
                    &infra,
                    &eps,
                    &OpenResolverList::new(),
                    include_collateral,
                    1,
                    jobs,
                );
                let table = JoinTable::build(
                    &infra,
                    &infra,
                    &cols,
                    &OpenResolverList::new(),
                    include_collateral,
                    1,
                    jobs,
                    None,
                );
                assert_eq!(table.len(), reference.len());
                assert!(!table.is_empty());
                let events = table.to_events();
                assert_eq!(
                    format!("{events:?}"),
                    format!("{reference:?}"),
                    "collateral={include_collateral} jobs={jobs}"
                );
            }
        }
    }

    #[test]
    fn sharded_build_is_jobs_independent() {
        let infra = world();
        // A larger synthetic feed so several shards are non-trivial.
        let mut eps = Vec::new();
        for i in 0..200u64 {
            eps.push(episode(if i % 3 == 0 { "195.135.195.195" } else { "9.9.9.9" }, 288 + i * 7));
        }
        let cols = EpisodeColumns::from_episodes(&eps);
        let build = |jobs| {
            JoinTable::build(&infra, &infra, &cols, &OpenResolverList::new(), false, 1, jobs, None)
        };
        let seq = build(1);
        for jobs in [2usize, 3, 8, 64] {
            let par = build(jobs);
            assert_eq!(format!("{:?}", seq.to_events()), format!("{:?}", par.to_events()));
        }
    }

    #[test]
    fn incremental_extend_matches_bulk_build() {
        let infra = world();
        let eps = feed();
        let cols = EpisodeColumns::from_episodes(&eps);
        for include_collateral in [false, true] {
            let bulk = JoinTable::build(
                &infra,
                &infra,
                &cols,
                &OpenResolverList::new(),
                include_collateral,
                1,
                1,
                None,
            );
            // Grow episode-by-episode, the way a streaming ingester does.
            let mut inc = JoinTable::default();
            let mut streamed = EpisodeColumns::default();
            for e in &eps {
                let from = streamed.len();
                streamed.push_episode(e);
                inc.extend(
                    &infra,
                    &infra,
                    &streamed,
                    from,
                    &OpenResolverList::new(),
                    include_collateral,
                    1,
                    None,
                );
            }
            assert_eq!(
                format!("{inc:?}"),
                format!("{bulk:?}"),
                "collateral={include_collateral}: streamed join equals bulk join"
            );
        }
    }

    #[test]
    fn collist_append_stitches_rows() {
        let mut a: ColList<u32> = ColList::new();
        a.push_row([1, 2, 3]);
        a.push_row([]);
        let mut b = ColList::new();
        b.push_row([9]);
        b.push_row([7, 8]);
        a.append(&mut b);
        assert_eq!(a.rows(), 4);
        assert_eq!(a.row(0), &[1, 2, 3]);
        assert_eq!(a.row(1), &[] as &[u32]);
        assert_eq!(a.row(2), &[9]);
        assert_eq!(a.row(3), &[7, 8]);
        assert_eq!(b.rows(), 0, "append drains the source");
    }
}
