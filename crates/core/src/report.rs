//! Rendering: aligned text tables and CSV writers for the reproduction
//! harness.

use std::fmt::Write as _;
use std::fs;
use std::io;
use std::path::Path;

/// Render an aligned text table with a header row.
pub fn render_table(headers: &[&str], rows: &[Vec<String>]) -> String {
    let cols = headers.len();
    for r in rows {
        assert_eq!(r.len(), cols, "row width must match header width");
    }
    let mut widths: Vec<usize> = headers.iter().map(|h| h.len()).collect();
    for r in rows {
        for (i, cell) in r.iter().enumerate() {
            widths[i] = widths[i].max(cell.len());
        }
    }
    let mut out = String::new();
    let write_row = |out: &mut String, cells: &[String]| {
        for (i, cell) in cells.iter().enumerate() {
            if i > 0 {
                out.push_str("  ");
            }
            let _ = write!(out, "{:<width$}", cell, width = widths[i]);
        }
        // No trailing spaces.
        while out.ends_with(' ') {
            out.pop();
        }
        out.push('\n');
    };
    write_row(&mut out, &headers.iter().map(|h| h.to_string()).collect::<Vec<_>>());
    let sep: Vec<String> = widths.iter().map(|w| "-".repeat(*w)).collect();
    write_row(&mut out, &sep);
    for r in rows {
        write_row(&mut out, r);
    }
    out
}

/// Render rows as CSV (naive quoting: fields containing commas or quotes
/// are quoted with doubled quotes).
pub fn render_csv(headers: &[&str], rows: &[Vec<String>]) -> String {
    let mut out = String::new();
    let esc = |f: &str| {
        if f.contains(',') || f.contains('"') || f.contains('\n') {
            format!("\"{}\"", f.replace('"', "\"\""))
        } else {
            f.to_string()
        }
    };
    out.push_str(&headers.iter().map(|h| esc(h)).collect::<Vec<_>>().join(","));
    out.push('\n');
    for r in rows {
        out.push_str(&r.iter().map(|f| esc(f)).collect::<Vec<_>>().join(","));
        out.push('\n');
    }
    out
}

/// Write a string to `dir/name`, creating `dir` if needed.
///
/// The write is atomic: content lands in `name.tmp` first and is renamed
/// into place, so a run killed mid-write can never leave a truncated
/// artifact — readers see either the old file or the complete new one.
pub fn write_output(dir: &Path, name: &str, content: &str) -> io::Result<()> {
    fs::create_dir_all(dir)?;
    write_atomic(&dir.join(name), content)
}

/// Atomically replace `path` with `content` (write `path.tmp`, rename).
pub fn write_atomic(path: &Path, content: &str) -> io::Result<()> {
    let mut tmp = path.as_os_str().to_owned();
    tmp.push(".tmp");
    let tmp = std::path::PathBuf::from(tmp);
    fs::write(&tmp, content)?;
    fs::rename(&tmp, path)
}

/// Format a count with thousands separators (for paper-style tables).
pub fn fmt_count(n: u64) -> String {
    let s = n.to_string();
    let mut out = String::with_capacity(s.len() + s.len() / 3);
    for (i, c) in s.chars().enumerate() {
        if i > 0 && (s.len() - i).is_multiple_of(3) {
            out.push(',');
        }
        out.push(c);
    }
    out
}

/// Format a share as a percentage with two decimals.
pub fn fmt_pct(x: f64) -> String {
    format!("{:.2}%", x * 100.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_alignment() {
        let t = render_table(
            &["Month", "#Attacks"],
            &[vec!["2020-11".into(), "2,550".into()], vec!["2020-12".into(), "3,876".into()]],
        );
        let lines: Vec<&str> = t.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].starts_with("Month"));
        assert!(lines[1].starts_with("-------"));
        assert!(lines[2].contains("2,550"));
        // Columns aligned: '#Attacks' column starts at same offset.
        let off = lines[0].find("#Attacks").unwrap();
        assert_eq!(&lines[2][off..off + 1], "2");
    }

    #[test]
    #[should_panic]
    fn ragged_rows_panic() {
        render_table(&["a", "b"], &[vec!["only-one".into()]]);
    }

    #[test]
    fn csv_escaping() {
        let c = render_csv(
            &["name", "note"],
            &[vec!["TransIP B.V.".into(), "hello, \"world\"".into()]],
        );
        assert_eq!(c.lines().nth(1).unwrap(), "TransIP B.V.,\"hello, \"\"world\"\"\"");
    }

    #[test]
    fn count_formatting() {
        assert_eq!(fmt_count(0), "0");
        assert_eq!(fmt_count(999), "999");
        assert_eq!(fmt_count(1_000), "1,000");
        assert_eq!(fmt_count(4_039_485), "4,039,485");
        assert_eq!(fmt_count(48_858), "48,858");
    }

    #[test]
    fn pct_formatting() {
        assert_eq!(fmt_pct(0.0121), "1.21%");
        assert_eq!(fmt_pct(1.0), "100.00%");
    }

    #[test]
    fn write_output_creates_dir() {
        let dir = std::env::temp_dir().join("dnsimpact-report-test");
        let _ = std::fs::remove_dir_all(&dir);
        write_output(&dir, "x.csv", "a,b\n").unwrap();
        assert_eq!(std::fs::read_to_string(dir.join("x.csv")).unwrap(), "a,b\n");
        assert!(!dir.join("x.csv.tmp").exists(), "temp file renamed away");
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn write_atomic_replaces_existing() {
        let dir = std::env::temp_dir().join("dnsimpact-report-atomic-test");
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("f.csv");
        write_atomic(&path, "old\n").unwrap();
        write_atomic(&path, "new\n").unwrap();
        assert_eq!(std::fs::read_to_string(&path).unwrap(), "new\n");
        assert!(!dir.join("f.csv.tmp").exists());
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
