//! §6.3.1 / Figure 7: resolution-failure analysis.

use crate::impact::ImpactEvent;
use census::AnycastClass;

/// One point of Figure 7: an attack event with its failure rate, the
/// number of domains measured, and the size class of the NSSet.
#[derive(Clone, Debug, PartialEq)]
pub struct FailurePoint {
    pub domains_measured: u64,
    pub failure_rate: f64,
    pub nsset_domains: u64,
    pub anycast: AnycastClass,
    pub prefix_count: usize,
    pub asn_count: usize,
}

/// Headline numbers of §6.3.1.
#[derive(Clone, Debug, PartialEq)]
pub struct FailureSummary {
    pub events: u64,
    /// Events with at least one resolution failure.
    pub events_with_failures: u64,
    /// Events where 100% of measured domains failed.
    pub complete_failures: u64,
    /// Of all failed resolutions, the share that timed out (the paper
    /// observed 92%).
    pub timeout_share: f64,
    /// Of complete-failure events, share on single-prefix NSSets (paper:
    /// ≈60% of failing NSsets were single-prefix).
    pub single_prefix_share_of_failures: f64,
    /// Of complete-failure events, share on single-ASN NSSets (paper:
    /// ≈81%).
    pub single_asn_share_of_failures: f64,
    /// Of events with failures, share on unicast NSSets (paper: ≈99%).
    pub unicast_share_of_failures: f64,
}

/// Extract the Figure-7 scatter points.
pub fn failure_points(impacts: &[ImpactEvent]) -> Vec<FailurePoint> {
    impacts
        .iter()
        .map(|e| FailurePoint {
            domains_measured: e.domains_measured,
            failure_rate: e.failure_rate,
            nsset_domains: e.nsset_domains,
            anycast: e.anycast,
            prefix_count: e.prefix_count,
            asn_count: e.asn_count,
        })
        .collect()
}

/// Compute the §6.3.1 headline numbers.
pub fn summarize(impacts: &[ImpactEvent]) -> FailureSummary {
    let events = impacts.len() as u64;
    let failing: Vec<&ImpactEvent> = impacts.iter().filter(|e| e.failure_rate > 0.0).collect();
    let complete: Vec<&&ImpactEvent> = failing.iter().filter(|e| e.complete_failure()).collect();
    let timeouts: u64 = failing.iter().map(|e| e.timeouts).sum();
    let servfails: u64 = failing.iter().map(|e| e.servfails).sum();
    let denom = (timeouts + servfails) as f64;
    let share = |count: usize, total: usize| {
        if total == 0 {
            0.0
        } else {
            count as f64 / total as f64
        }
    };
    FailureSummary {
        events,
        events_with_failures: failing.len() as u64,
        complete_failures: complete.len() as u64,
        timeout_share: if denom == 0.0 { 0.0 } else { timeouts as f64 / denom },
        single_prefix_share_of_failures: share(
            complete.iter().filter(|e| e.prefix_count == 1).count(),
            complete.len(),
        ),
        single_asn_share_of_failures: share(
            complete.iter().filter(|e| e.asn_count == 1).count(),
            complete.len(),
        ),
        unicast_share_of_failures: share(
            failing.iter().filter(|e| e.anycast == AnycastClass::Unicast).count(),
            failing.len(),
        ),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use attack::Protocol;
    use dnssim::NsSetId;

    fn mk(
        failure_rate: f64,
        timeouts: u64,
        servfails: u64,
        anycast: AnycastClass,
        prefixes: usize,
        asns: usize,
    ) -> ImpactEvent {
        ImpactEvent {
            episode_idx: 0,
            nsset: NsSetId(0),
            domains_measured: 10,
            impact_on_rtt: Some(1.0),
            baseline_source: crate::impact::BaselineSource::DayBefore,
            failure_rate,
            timeouts,
            servfails,
            nsset_domains: 1_000,
            protocol: Protocol::Tcp,
            first_port: 53,
            peak_ppm: 100.0,
            duration_min: 15.0,
            anycast,
            asn_count: asns,
            prefix_count: prefixes,
        }
    }

    #[test]
    fn summary_shares() {
        let impacts = vec![
            mk(0.0, 0, 0, AnycastClass::Full, 3, 3),
            mk(0.5, 9, 1, AnycastClass::Unicast, 1, 1),
            mk(1.0, 10, 0, AnycastClass::Unicast, 1, 1),
            mk(1.0, 8, 2, AnycastClass::Unicast, 2, 1),
        ];
        let s = summarize(&impacts);
        assert_eq!(s.events, 4);
        assert_eq!(s.events_with_failures, 3);
        assert_eq!(s.complete_failures, 2);
        assert!((s.timeout_share - 27.0 / 30.0).abs() < 1e-12);
        assert!((s.single_prefix_share_of_failures - 0.5).abs() < 1e-12);
        assert!((s.single_asn_share_of_failures - 1.0).abs() < 1e-12);
        assert!((s.unicast_share_of_failures - 1.0).abs() < 1e-12);
    }

    #[test]
    fn empty_input() {
        let s = summarize(&[]);
        assert_eq!(s.events, 0);
        assert_eq!(s.timeout_share, 0.0);
        assert!(failure_points(&[]).is_empty());
    }

    #[test]
    fn points_extracted_one_per_event() {
        let impacts = vec![mk(0.2, 2, 0, AnycastClass::Partial, 2, 2)];
        let pts = failure_points(&impacts);
        assert_eq!(pts.len(), 1);
        assert_eq!(pts[0].anycast, AnycastClass::Partial);
        assert!((pts[0].failure_rate - 0.2).abs() < 1e-12);
    }
}
