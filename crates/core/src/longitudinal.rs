//! The longitudinal analysis orchestrator (§6): runs the whole pipeline
//! over an attack population and produces every table and figure series of
//! the paper's evaluation.

use crate::casestudy;
use crate::columnar::JoinTable;
use crate::correlate::{self, CorrelationSeries};
use crate::failures::{self, FailureSummary};
use crate::impact::{compute_impacts_columnar, ImpactConfig, ImpactEvent};
use crate::join::DnsAttackEvent;
use crate::ports::{self, PortBreakdown};
use crate::resilience::{self, ClassImpact};
use attack::Attack;
use census::{AnycastCensus, OpenResolverList};
use dnssim::{Infra, LoadBook, Resolver};
use netbase::{As2Org, OrgRegistry, Prefix2As};
use openintel::{MeasurementStore, SweepSchedule};
use simcore::rng::RngFactory;
use simcore::time::Month;
use std::collections::{HashMap, HashSet};
use std::net::Ipv4Addr;
use telescope::{BackscatterSampler, Darknet, RsdosClassifier, RsdosFeed};

/// Trace scope of the longitudinal feed: episode `i` is `rsdos/i`.
const TRACE_SCOPE: &str = "rsdos";

/// Ancillary lookup tables (the paper's §3.3 datasets).
pub struct MetaTables {
    pub prefix2as: Prefix2As,
    pub as2org: As2Org,
    pub orgs: OrgRegistry,
    pub open_resolvers: OpenResolverList,
    pub census: AnycastCensus,
}

/// Orchestrator configuration.
#[derive(Clone, Debug, Default)]
pub struct LongitudinalConfig {
    pub resolver: Resolver,
    pub impact: ImpactConfig,
    pub thresholds: telescope::RsdosThresholds,
    /// Include /24-collateral joins in the DNS-attack accounting (the
    /// headline Table 3 counts direct nameserver-IP hits).
    pub include_collateral: bool,
    /// Worker threads for the sharded join and the measurement phase
    /// (`0` = available parallelism, `1` = fully sequential). The report is
    /// byte-identical for any value — parallelism only buys wall clock.
    pub jobs: usize,
}

/// One row of Table 3.
#[derive(Clone, Debug, PartialEq)]
pub struct MonthlyRow {
    pub month: Month,
    pub dns_attacks: u64,
    pub other_attacks: u64,
    pub dns_ips: u64,
    pub other_ips: u64,
}

impl MonthlyRow {
    pub fn total_attacks(&self) -> u64 {
        self.dns_attacks + self.other_attacks
    }
    pub fn dns_share(&self) -> f64 {
        if self.total_attacks() == 0 {
            0.0
        } else {
            self.dns_attacks as f64 / self.total_attacks() as f64
        }
    }
    pub fn total_ips(&self) -> u64 {
        self.dns_ips + self.other_ips
    }
}

/// Everything the evaluation section needs.
pub struct LongitudinalReport {
    pub feed: RsdosFeed,
    pub dns_events: Vec<DnsAttackEvent>,
    pub monthly: Vec<MonthlyRow>,
    /// Per month: the per-event "potentially affected domains" samples
    /// (Figure 5's distributions).
    pub affected_domains_by_month: Vec<(Month, Vec<u64>)>,
    /// Table 4: (ASN, attack count, organization name).
    pub top_asns: Vec<(netbase::Asn, u64, String)>,
    /// Table 5: (IP, attack count, open-resolver flag).
    pub top_ips: Vec<(Ipv4Addr, u64, bool)>,
    /// Figure 6 population (all DNS-infra attacks).
    pub port_breakdown: PortBreakdown,
    /// §6.3.1 population (attacks that caused failures).
    pub successful_port_breakdown: PortBreakdown,
    pub impacts: Vec<ImpactEvent>,
    pub failure_summary: FailureSummary,
    /// Figure 9.
    pub intensity_impact: CorrelationSeries,
    /// Figure 10.
    pub duration_impact: CorrelationSeries,
    /// Figures 11–13.
    pub by_anycast: Vec<ClassImpact>,
    pub by_as_diversity: Vec<ClassImpact>,
    pub by_prefix_diversity: Vec<ClassImpact>,
    /// Table 6: (org name, max Impact_on_RTT observed).
    pub top_affected_orgs: Vec<(String, f64)>,
    pub store: MeasurementStore,
}

impl LongitudinalReport {
    /// How many impact events degraded to the week-before baseline because
    /// the day-before sweep was lost to a sensor outage. Reported alongside
    /// the impacts whenever an outage model is active.
    pub fn baseline_fallbacks(&self) -> u64 {
        self.impacts
            .iter()
            .filter(|e| e.baseline_source == crate::impact::BaselineSource::WeekBefore)
            .count() as u64
    }

    /// Impact events with no usable baseline at all.
    pub fn baselines_missing(&self) -> u64 {
        self.impacts
            .iter()
            .filter(|e| e.baseline_source == crate::impact::BaselineSource::Missing)
            .count() as u64
    }
}

/// Run the full longitudinal pipeline.
pub fn run(
    infra: &Infra,
    darknet: &Darknet,
    attacks: &[Attack],
    months: &[Month],
    meta: &MetaTables,
    config: &LongitudinalConfig,
    rngs: &RngFactory,
) -> LongitudinalReport {
    // Offered load: every vector of every attack loads its victim.
    let mut loads = LoadBook::new();
    for (addr, w, pps) in attack::accumulate_windows(attacks) {
        loads.add(addr, w, pps);
    }

    // Telescope view → feed.
    let sampler = BackscatterSampler::new(darknet);
    let obs = sampler.sample(attacks, rngs);
    let classifier = RsdosClassifier::new(config.thresholds);
    // Arena-block feed path: one packed buffer carries the qualifying
    // records; episodes decode straight out of it. The row feed the
    // report exposes is rehydrated from the same block, so the two forms
    // cannot drift.
    let record_block = classifier.classify_into_block(&obs);
    let episodes = classifier.episodes_from_block(&record_block);
    let feed = RsdosFeed::new(record_block.iter().collect(), episodes);
    // Causal tracing (see `obs::trace`): the longitudinal feed owns the
    // `rsdos` scope, so episode `i` is addressable as `rsdos/i`.
    feed.trace_onsets(TRACE_SCOPE);

    // Join to the DNS on the columnar hot path (see `crate::columnar`;
    // the row join in `crate::join` is the differential reference). The
    // build is sharded across config.jobs workers and byte-identical to
    // the sequential join for any worker count. Only this headline join
    // traces — the unfiltered Tables-3–5 join below re-joins the same
    // episodes and must not double-emit.
    let columns = telescope::EpisodeColumns::from_episodes(&feed.episodes);
    let join_table = JoinTable::build(
        infra,
        infra,
        &columns,
        &meta.open_resolvers,
        config.include_collateral,
        1,
        config.jobs,
        Some(TRACE_SCOPE),
    );
    let dns_events = join_table.to_events();
    // Tables 3–5 count every victim that serves as a nameserver —
    // including the open resolvers that misconfigured domains point NS
    // records at. The open-resolver filter (§6.1) applies to the *impact*
    // analyses below, not to the raw attack accounting.
    let unfiltered_table = JoinTable::build(
        infra,
        infra,
        &columns,
        &OpenResolverList::new(),
        config.include_collateral,
        1,
        config.jobs,
        None,
    );
    let unfiltered_events = unfiltered_table.to_events();
    let unfiltered_idxs: HashSet<usize> = unfiltered_events.iter().map(|e| e.episode_idx).collect();

    // Table 3.
    let monthly = monthly_rows(&feed, &unfiltered_idxs, months);

    // Figure 5.
    let mut by_month: HashMap<Month, Vec<u64>> = HashMap::new();
    for ev in &dns_events {
        by_month.entry(ev.month).or_default().push(ev.domains_affected);
    }
    let affected_domains_by_month: Vec<(Month, Vec<u64>)> =
        months.iter().map(|m| (*m, by_month.remove(m).unwrap_or_default())).collect();

    // Tables 4–5 include the open-resolver victims too (the paper's
    // tables show Google DNS et al. precisely to expose the
    // misconfiguration artifact).
    let (top_asns, top_ips) = top_targets(&feed, &unfiltered_events, meta);

    // Figure 6 over authoritative DNS-infra episodes (post-filter).
    let dns_episode_idxs: HashSet<usize> = dns_events.iter().map(|e| e.episode_idx).collect();
    let port_breakdown =
        ports::breakdown_episodes(dns_episode_idxs.iter().map(|&i| &feed.episodes[i]));

    // Impacts (step 4), trace-attributed to the feed's scope.
    let schedule = SweepSchedule::new(rngs.seed());
    let impact_config = ImpactConfig {
        trace_scope: config.impact.trace_scope.or(Some(TRACE_SCOPE)),
        ..config.impact
    };
    let (impacts, store) = compute_impacts_columnar(
        infra,
        &schedule,
        &config.resolver,
        &loads,
        &columns,
        &join_table,
        &meta.census,
        rngs,
        &impact_config,
        config.jobs,
    );

    let successful_port_breakdown = ports::breakdown_successful(&impacts);
    let failure_summary = failures::summarize(&impacts);
    let intensity_impact = correlate::intensity_vs_impact(&impacts);
    let duration_impact = correlate::duration_vs_impact(&impacts);
    let by_anycast = resilience::by_anycast(&impacts);
    let by_as_diversity = resilience::by_as_diversity(&impacts);
    let by_prefix_diversity = resilience::by_prefix_diversity(&impacts);
    let top_affected_orgs = top_affected_orgs(infra, &impacts, meta);

    LongitudinalReport {
        feed,
        dns_events,
        monthly,
        affected_domains_by_month,
        top_asns,
        top_ips,
        port_breakdown,
        successful_port_breakdown,
        impacts,
        failure_summary,
        intensity_impact,
        duration_impact,
        by_anycast,
        by_as_diversity,
        by_prefix_diversity,
        top_affected_orgs,
        store,
    }
}

fn monthly_rows(feed: &RsdosFeed, dns_idxs: &HashSet<usize>, months: &[Month]) -> Vec<MonthlyRow> {
    months
        .iter()
        .map(|&month| {
            let mut dns_attacks = 0;
            let mut other_attacks = 0;
            let mut dns_ips: HashSet<Ipv4Addr> = HashSet::new();
            let mut other_ips: HashSet<Ipv4Addr> = HashSet::new();
            for (i, ep) in feed.episodes.iter().enumerate() {
                if ep.first_window.start().month() != month {
                    continue;
                }
                if dns_idxs.contains(&i) {
                    dns_attacks += 1;
                    dns_ips.insert(ep.victim);
                } else {
                    other_attacks += 1;
                    other_ips.insert(ep.victim);
                }
            }
            MonthlyRow {
                month,
                dns_attacks,
                other_attacks,
                dns_ips: dns_ips.len() as u64,
                other_ips: other_ips.len() as u64,
            }
        })
        .collect()
}

/// Table 4 rows: (ASN, attack count, organization name).
pub type TopAsns = Vec<(netbase::Asn, u64, String)>;
/// Table 5 rows: (IP, attack count, open-resolver flag).
pub type TopIps = Vec<(Ipv4Addr, u64, bool)>;

fn top_targets(
    feed: &RsdosFeed,
    dns_events: &[DnsAttackEvent],
    meta: &MetaTables,
) -> (TopAsns, TopIps) {
    let mut per_asn: HashMap<netbase::Asn, u64> = HashMap::new();
    let mut per_ip: HashMap<Ipv4Addr, u64> = HashMap::new();
    for ev in dns_events {
        let victim = feed.episodes[ev.episode_idx].victim;
        *per_ip.entry(victim).or_insert(0) += 1;
        if let Some(asn) = meta.prefix2as.asn_of(victim) {
            *per_asn.entry(asn).or_insert(0) += 1;
        }
    }
    let mut asns: Vec<(netbase::Asn, u64, String)> = per_asn
        .into_iter()
        .map(|(asn, n)| {
            let name = meta
                .as2org
                .org_of(asn)
                .map(|o| meta.orgs.get(o).name.clone())
                .unwrap_or_else(|| format!("{asn}"));
            (asn, n, name)
        })
        .collect();
    asns.sort_by(|a, b| b.1.cmp(&a.1).then(a.0 .0.cmp(&b.0 .0)));
    asns.truncate(10);
    let mut ips: Vec<(Ipv4Addr, u64, bool)> =
        per_ip.into_iter().map(|(ip, n)| (ip, n, meta.open_resolvers.contains(ip))).collect();
    ips.sort_by(|a, b| b.1.cmp(&a.1).then(u32::from(a.0).cmp(&u32::from(b.0))));
    ips.truncate(10);
    (asns, ips)
}

fn top_affected_orgs(
    infra: &Infra,
    impacts: &[ImpactEvent],
    meta: &MetaTables,
) -> Vec<(String, f64)> {
    let mut per_org: HashMap<String, f64> = HashMap::new();
    for e in impacts {
        let Some(impact) = e.impact_on_rtt else { continue };
        for asn in infra.nsset_asns(e.nsset) {
            let name = meta
                .as2org
                .org_of(asn)
                .map(|o| meta.orgs.get(o).name.clone())
                .unwrap_or_else(|| format!("{asn}"));
            let v = per_org.entry(name).or_insert(0.0);
            *v = v.max(impact);
        }
    }
    let mut out: Vec<(String, f64)> = per_org.into_iter().collect();
    out.sort_by(|a, b| b.1.total_cmp(&a.1).then(a.0.cmp(&b.0)));
    out.truncate(10);
    out
}

/// Re-export of the case-study helpers at the orchestrator level.
pub use casestudy::{ns_attack_metrics, rtt_timeseries, NsAttackMetrics, TimePoint};

#[cfg(test)]
mod tests {
    use super::*;
    use attack::{AttackScheduler, ScheduleConfig, TargetPool};
    use dnssim::Deployment;
    use netbase::{Asn, Ipv4Net};

    /// A small but complete world: 40 nameservers across 10 providers,
    /// 4000 domains, 3 months of attacks.
    fn world(seed: u64) -> (Infra, Darknet, Vec<Attack>, Vec<Month>, MetaTables) {
        let rngs = RngFactory::new(seed);
        let mut infra = Infra::new();
        let mut prefix2as = Prefix2As::new();
        let mut orgs = OrgRegistry::new();
        let mut as2org = As2Org::new();
        let mut dns_addrs = Vec::new();
        for p in 0..10u32 {
            let asn = Asn(64500 + p);
            let org = orgs.add(&format!("Provider {p}"), "NL");
            as2org.assign(asn, org);
            let net: Ipv4Net = format!("198.{}.0.0/16", 20 + p).parse().unwrap();
            prefix2as.announce(net, asn);
            let mut ns_ids = Vec::new();
            for s in 0..4u32 {
                let addr: Ipv4Addr = format!("198.{}.{s}.53", 20 + p).parse().unwrap();
                dns_addrs.push(addr);
                ns_ids.push(infra.add_nameserver(
                    format!("ns{s}.provider{p}.net").parse().unwrap(),
                    addr,
                    asn,
                    if p < 2 { Deployment::Anycast { sites: 15 } } else { Deployment::Unicast },
                    40_000.0,
                    1_000.0,
                    15.0,
                ));
            }
            let set = infra.intern_nsset(ns_ids);
            for d in 0..400u32 {
                infra.add_domain(format!("d{p}x{d}.example").parse().unwrap(), set);
            }
        }
        let months = Month::new(2020, 11).through(Month::new(2021, 1));
        let cfg = ScheduleConfig {
            months: months.clone(),
            attacks_per_month: vec![800; months.len()],
            dns_share_per_month: vec![0.05; months.len()],
            ..ScheduleConfig::default()
        };
        let pool = TargetPool::uniform(dns_addrs, vec![]);
        let attacks = AttackScheduler::new(cfg).generate(&pool, &rngs);
        let census = AnycastCensus::from_ground_truth(
            &infra,
            AnycastCensus::paper_snapshot_dates(),
            1.0,
            &rngs,
        );
        let meta = MetaTables {
            prefix2as,
            as2org,
            orgs,
            open_resolvers: OpenResolverList::well_known(),
            census,
        };
        (infra, Darknet::ucsd_like(), attacks, months, meta)
    }

    #[test]
    fn full_pipeline_produces_consistent_report() {
        let (infra, darknet, attacks, months, meta) = world(42);
        let report = run(
            &infra,
            &darknet,
            &attacks,
            &months,
            &meta,
            &LongitudinalConfig::default(),
            &RngFactory::new(42),
        );
        // The feed saw most attacks (visible ones above thresholds).
        assert!(report.feed.episodes.len() > 1_000, "{} episodes", report.feed.episodes.len());
        // DNS share lands in a plausible band around the configured 5%.
        let total_dns: u64 = report.monthly.iter().map(|m| m.dns_attacks).sum();
        let total: u64 = report.monthly.iter().map(|m| m.total_attacks()).sum();
        let share = total_dns as f64 / total as f64;
        assert!(
            (0.02..0.08).contains(&share),
            "dns share {share} (dns {total_dns} / total {total})"
        );
        // Every monthly row belongs to the requested months.
        assert_eq!(report.monthly.len(), 3);
        // Figure 5 data covers the same events.
        let fig5_events: usize =
            report.affected_domains_by_month.iter().map(|(_, v)| v.len()).sum();
        assert_eq!(fig5_events, report.dns_events.len());
        // Impact events passed the ≥5 filter.
        for e in &report.impacts {
            assert!(e.domains_measured >= 5);
        }
        // Resilience tables exist for each class axis.
        assert_eq!(report.by_anycast.len(), 3);
        assert!(!report.by_as_diversity.is_empty());
        // Top tables bounded at 10.
        assert!(report.top_asns.len() <= 10);
        assert!(report.top_ips.len() <= 10);
        // Port mix: TCP dominates (calibrated generator).
        assert!(report.port_breakdown.protocol_share(attack::Protocol::Tcp) > 0.8);
    }

    #[test]
    fn deterministic_end_to_end() {
        let (infra, darknet, attacks, months, meta) = world(7);
        let run1 = run(
            &infra,
            &darknet,
            &attacks,
            &months,
            &meta,
            &LongitudinalConfig::default(),
            &RngFactory::new(7),
        );
        let run2 = run(
            &infra,
            &darknet,
            &attacks,
            &months,
            &meta,
            &LongitudinalConfig::default(),
            &RngFactory::new(7),
        );
        assert_eq!(run1.monthly, run2.monthly);
        assert_eq!(run1.impacts.len(), run2.impacts.len());
        assert_eq!(run1.top_ips, run2.top_ips);
    }

    #[test]
    fn monthly_row_arithmetic() {
        let row = MonthlyRow {
            month: Month::new(2020, 11),
            dns_attacks: 25,
            other_attacks: 975,
            dns_ips: 10,
            other_ips: 400,
        };
        assert_eq!(row.total_attacks(), 1_000);
        assert!((row.dns_share() - 0.025).abs() < 1e-12);
        assert_eq!(row.total_ips(), 410);
    }
}
