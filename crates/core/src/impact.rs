//! Step 4 of the methodology: the per-(attack, NSSet) impact events.
//!
//! For every joined attack event and every NSSet it touches, measure the
//! domains OpenINTEL would have measured in the attack's windows, build the
//! previous-day baseline, and compute `Impact_on_RTT` (Equation 1) plus
//! failure rates. NSSets with fewer than five domains measured during the
//! attack are discarded as noise, exactly as §6.3 does.

use crate::columnar::JoinTable;
use crate::join::DnsAttackEvent;
use attack::Protocol;
use census::{AnycastCensus, AnycastClass};
use dnssim::{Infra, LoadBook, NsSetId, Resolver};
use openintel::{measure::measure_domains, MeasurementStore, OutageModel, SweepSchedule};
use simcore::rng::RngFactory;
use std::collections::HashSet;
use telescope::{AttackEpisode, EpisodeColumns};

/// Which baseline day the denominator of Equation 1 came from.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum BaselineSource {
    /// The normal case: the sweep of the day before the attack.
    DayBefore,
    /// Degraded: the day-before sweep was lost to a sensor outage, so the
    /// week-before day substitutes (§4.1's ablation: the two baselines
    /// correlate at r = 0.999).
    WeekBefore,
    /// No usable baseline day (day-zero attack, or both candidate sweeps
    /// lost) — `impact_on_rtt` is `None`.
    Missing,
}

/// One row of the paper's impact analysis: an attack on one NSSet, with
/// its measured consequences and the deployment metadata the resilience
/// analyses slice by.
#[derive(Clone, Debug)]
pub struct ImpactEvent {
    pub episode_idx: usize,
    pub nsset: NsSetId,
    /// Domains OpenINTEL measured during the attack windows.
    pub domains_measured: u64,
    /// Equation 1; `None` when no usable baseline exists.
    pub impact_on_rtt: Option<f64>,
    /// Where the baseline denominator came from (degradation accounting).
    pub baseline_source: BaselineSource,
    /// Fraction of measured domains that failed to resolve.
    pub failure_rate: f64,
    pub timeouts: u64,
    pub servfails: u64,
    /// Domains hosted by the NSSet (the size classes of Figures 7–8).
    pub nsset_domains: u64,
    /// Attack attributes from the feed.
    pub protocol: Protocol,
    pub first_port: u16,
    pub peak_ppm: f64,
    pub duration_min: f64,
    /// Deployment metadata (Figures 11–13).
    pub anycast: AnycastClass,
    pub asn_count: usize,
    pub prefix_count: usize,
}

impl ImpactEvent {
    /// Complete resolution failure: every measured domain failed.
    pub fn complete_failure(&self) -> bool {
        self.domains_measured > 0 && self.failure_rate >= 1.0
    }
}

/// Tunables of the impact computation.
#[derive(Clone, Copy, Debug)]
pub struct ImpactConfig {
    /// Minimum domains measured during the attack (the paper uses 5).
    pub min_domains_measured: u64,
    /// Baseline sampling cap: at most this many of the NSSet's domains are
    /// measured on the previous day to form the denominator of Equation 1.
    pub baseline_sample_cap: usize,
    /// Simulated sensor outages: daily sweeps on missed days produce no
    /// measurements, and baselines falling on them trigger the week-before
    /// fallback. `None` (the default) models a lossless platform.
    pub sweep_outage: Option<OutageModel>,
    /// When set, the measurement phase runs under chaos: injected task
    /// crashes, supervised with bounded restarts. The impacts are
    /// byte-identical to a fault-free run — this knob only exercises the
    /// recovery machinery.
    pub chaos_seed: Option<u64>,
    /// Trace scope for `BaselineFallback`/`ImpactComputed` events (see
    /// `obs::trace`); `None` disables emission. Both emission sites sit in
    /// the sequential plan/aggregate phases, so the event stream is
    /// `--jobs`- and chaos-independent.
    pub trace_scope: Option<&'static str>,
}

impl Default for ImpactConfig {
    fn default() -> ImpactConfig {
        ImpactConfig {
            min_domains_measured: 5,
            baseline_sample_cap: 200,
            sweep_outage: None,
            chaos_seed: None,
            trace_scope: None,
        }
    }
}

/// One unit of OpenINTEL measurement work, planned sequentially and
/// executed on any worker. Tasks never share RNG state: `measure_domains`
/// derives a fresh stream per `(domain, window)` from the factory, so a
/// task's records depend only on its inputs — not on which thread ran it
/// or when.
enum MeasureTask {
    /// One deduplicated (NSSet, window) attack-measurement cell.
    Cell { nsset: NsSetId, window: u64, domains: Vec<dnssim::DomainId> },
    /// The sampled previous-day baseline for one (NSSet, day), each probe
    /// in its own scheduled window.
    Baseline { nsset: NsSetId, probes: Vec<(dnssim::DomainId, simcore::time::Window)> },
}

/// Compute the impact events for all joined attacks. Also returns the
/// filled measurement store (per-window aggregates) for time-series
/// rendering. Sequential convenience wrapper around
/// [`compute_impacts_with_jobs`].
#[allow(clippy::too_many_arguments)]
pub fn compute_impacts(
    infra: &Infra,
    schedule: &SweepSchedule,
    resolver: &Resolver,
    loads: &LoadBook,
    episodes: &[AttackEpisode],
    events: &[DnsAttackEvent],
    census: &AnycastCensus,
    rngs: &RngFactory,
    config: &ImpactConfig,
) -> (Vec<ImpactEvent>, MeasurementStore) {
    compute_impacts_with_jobs(
        infra, schedule, resolver, loads, episodes, events, census, rngs, config, 1,
    )
}

/// [`compute_impacts`] with the measurement phase fanned out over up to
/// `jobs` worker threads (`0` → available parallelism).
///
/// Three phases keep the output independent of `jobs`:
///
/// 1. **Plan** (sequential): walk the events in order and emit a canonical,
///    deduplicated task list — attack-window cells and sampled baselines.
/// 2. **Measure** (parallel): run the tasks on a shared-queue worker pool;
///    [`streamproc::parallel_map`] returns the record batches in plan
///    order regardless of scheduling.
/// 3. **Merge + aggregate** (sequential): ingest the batches in plan order
///    (fixing the f64 summation order inside the store), then derive every
///    event's statistics from the fully-populated store.
#[allow(clippy::too_many_arguments)]
pub fn compute_impacts_with_jobs(
    infra: &Infra,
    schedule: &SweepSchedule,
    resolver: &Resolver,
    loads: &LoadBook,
    episodes: &[AttackEpisode],
    events: &[DnsAttackEvent],
    census: &AnycastCensus,
    rngs: &RngFactory,
    config: &ImpactConfig,
    jobs: usize,
) -> (Vec<ImpactEvent>, MeasurementStore) {
    // Phase 1: plan. Out-of-band accounting only (see `obs`): the lost-day
    // set is recorded for the run report, never read back by the planner.
    let lost_days: std::cell::RefCell<HashSet<u64>> = std::cell::RefCell::new(HashSet::new());
    let day_swept = |day: u64| {
        let swept = config.sweep_outage.is_none_or(|o| !o.day_missed(day));
        if !swept {
            lost_days.borrow_mut().insert(day);
        }
        swept
    };
    let mut measured_cells: HashSet<(NsSetId, u64)> = HashSet::new();
    let mut baseline_days: HashSet<(NsSetId, u64)> = HashSet::new();
    let mut tasks: Vec<MeasureTask> = Vec::new();
    // The (event, NSSet) pairs that pass the ≥5-domains filter, in event
    // order, with their resolved baseline day — phase 3 emits exactly one
    // ImpactEvent per entry.
    let mut rows: Vec<(usize, NsSetId, Option<u64>, BaselineSource)> = Vec::new();

    for (ei, ev) in events.iter().enumerate() {
        let ep = &episodes[ev.episode_idx];
        for &nsset in &ev.nssets {
            let mut measured =
                schedule.domains_in_window_range(infra, nsset, ep.first_window, ep.last_window);
            // A sweep outage during the attack loses those windows' probes.
            measured.retain(|(_, w)| day_swept(w.day()));
            if (measured.len() as u64) < config.min_domains_measured {
                continue;
            }
            // Baseline day: day-before normally; week-before when the
            // day-before sweep was lost (graceful degradation, §4.1).
            let attack_day = ep.first_window.day();
            let (base_day, base_source) = match attack_day.checked_sub(1) {
                Some(d) if day_swept(d) => (Some(d), BaselineSource::DayBefore),
                _ => match attack_day.checked_sub(7) {
                    Some(d) if day_swept(d) => (Some(d), BaselineSource::WeekBefore),
                    _ => (None, BaselineSource::Missing),
                },
            };
            if let (Some(scope), BaselineSource::WeekBefore) = (config.trace_scope, base_source) {
                obs::trace::emit(
                    obs::EventKind::BaselineFallback,
                    scope,
                    Some(ev.episode_idx as u64),
                    Some(ep.first_window.start().secs()),
                    format!(
                        "nsset {nsset:?}: day-before sweep lost, week-before day {} substitutes",
                        base_day.unwrap_or(0)
                    ),
                    base_day,
                );
            }
            rows.push((ei, nsset, base_day, base_source));
            // Measure the attack windows (once per (nsset, window) cell
            // even when episodes overlap).
            let mut by_window: std::collections::BTreeMap<u64, Vec<dnssim::DomainId>> =
                std::collections::BTreeMap::new();
            for (d, w) in &measured {
                by_window.entry(w.0).or_default().push(*d);
            }
            for (w, ds) in by_window {
                if measured_cells.insert((nsset, w)) {
                    tasks.push(MeasureTask::Cell { nsset, window: w, domains: ds });
                }
            }
            // Plan the baseline sweep day (sampled).
            if let Some(day) = base_day {
                if baseline_days.insert((nsset, day)) {
                    let all = infra.domains_of_nsset(nsset);
                    let step = (all.len() / config.baseline_sample_cap).max(1);
                    let probes: Vec<(dnssim::DomainId, simcore::time::Window)> = all
                        .iter()
                        .step_by(step)
                        .take(config.baseline_sample_cap)
                        .map(|&d| (d, schedule.window_on_day(d, day)))
                        .collect();
                    tasks.push(MeasureTask::Baseline { nsset, probes });
                }
            }
        }
    }

    obs::counter("impact.rows").add(rows.len() as u64);
    obs::counter("impact.windows_computed").add(measured_cells.len() as u64);
    obs::counter("impact.baselines").add(baseline_days.len() as u64);
    obs::counter("impact.baseline_fallbacks")
        .add(rows.iter().filter(|(_, _, _, s)| *s == BaselineSource::WeekBefore).count() as u64);
    obs::counter("impact.baselines_missing")
        .add(rows.iter().filter(|(_, _, _, s)| *s == BaselineSource::Missing).count() as u64);
    obs::counter("outage.sweep_days_lost").add(lost_days.borrow().len() as u64);

    // Phase 2: measure on the worker pool. With a chaos seed configured the
    // pool runs supervised — tasks are crashed on schedule and retried —
    // which cannot change the batches: tasks are pure functions of their
    // inputs.
    let run_task = |task: &MeasureTask| match task {
        MeasureTask::Cell { nsset, window, domains } => measure_domains(
            infra,
            resolver,
            domains,
            *nsset,
            simcore::time::Window(*window),
            loads,
            rngs,
        ),
        MeasureTask::Baseline { nsset, probes } => {
            let mut recs = Vec::new();
            for (d, w) in probes {
                recs.extend(measure_domains(infra, resolver, &[*d], *nsset, *w, loads, rngs));
            }
            recs
        }
    };
    let plan = config.chaos_seed.map(|cs| {
        streamproc::FaultPlan::from_seed(cs, "impact-measure", streamproc::ChaosConfig::SPARSE)
    });
    let (batches, _chaos) = streamproc::parallel_map_supervised(
        jobs,
        tasks,
        plan.as_ref(),
        &streamproc::SupervisorConfig::default(),
        |_, task| run_task(task),
    );

    // Phase 3: merge in plan order, then aggregate per event.
    let mut store = MeasurementStore::new();
    for batch in &batches {
        obs::counter("openintel.records_measured").add(batch.len() as u64);
        store.ingest(batch);
    }
    let mut out = Vec::with_capacity(rows.len());
    for (ei, nsset, base_day, base_source) in rows {
        let ev = &events[ei];
        let ep = &episodes[ev.episode_idx];
        let during = store.range_stats(nsset, ep.first_window, ep.last_window);
        let impact = base_day.and_then(|day| {
            store.impact_on_rtt_from_day(nsset, ep.first_window, ep.last_window, day)
        });
        let (asns, prefixes) = (infra.nsset_asns(nsset).len(), infra.nsset_slash24s(nsset).len());
        if let Some(scope) = config.trace_scope {
            obs::trace::emit(
                obs::EventKind::ImpactComputed,
                scope,
                Some(ev.episode_idx as u64),
                Some(ep.first_window.start().secs()),
                format!(
                    "nsset {nsset:?} ({:?} baseline), failure rate {:.4}",
                    base_source,
                    during.failure_rate()
                ),
                Some(during.domains_measured),
            );
        }
        out.push(ImpactEvent {
            episode_idx: ev.episode_idx,
            nsset,
            domains_measured: during.domains_measured,
            impact_on_rtt: impact,
            baseline_source: base_source,
            failure_rate: during.failure_rate(),
            timeouts: during.timeout,
            servfails: during.servfail,
            nsset_domains: infra.domains_of_nsset(nsset).len() as u64,
            protocol: ep.protocol,
            first_port: ep.first_port,
            peak_ppm: ep.peak_ppm,
            duration_min: ep.duration().secs() as f64 / 60.0,
            anycast: census.classify(infra, nsset, ep.first_window.start()),
            asn_count: asns,
            prefix_count: prefixes,
        });
    }
    (out, store)
}

/// The columnar twin of [`compute_impacts_with_jobs`]: plan from a
/// [`JoinTable`] + [`EpisodeColumns`] instead of row events, streaming
/// each NSSet's sweep measurements ([`SweepSchedule::for_each_in_window_range`])
/// straight into the per-window buckets so the `(domain, window)`
/// cross-product is never materialized or sorted. Cells another event
/// already claimed are counted but not buffered at all.
///
/// The row path above is the *reference implementation*; this function
/// replicates its plan order, task list, counters, and trace stream
/// exactly (the differential suite in `tests/columnar_equivalence.rs`
/// holds both to identical outputs), so the three-phase `--jobs`- and
/// chaos-independence argument carries over unchanged.
#[allow(clippy::too_many_arguments)]
pub fn compute_impacts_columnar(
    infra: &Infra,
    schedule: &SweepSchedule,
    resolver: &Resolver,
    loads: &LoadBook,
    episodes: &EpisodeColumns,
    table: &JoinTable,
    census: &AnycastCensus,
    rngs: &RngFactory,
    config: &ImpactConfig,
    jobs: usize,
) -> (Vec<ImpactEvent>, MeasurementStore) {
    // Phase 1: plan (sequential; see the reference path for the scheme).
    let mut lost_days: HashSet<u64> = HashSet::new();
    let mut measured_cells: HashSet<(NsSetId, u64)> = HashSet::new();
    let mut baseline_days: HashSet<(NsSetId, u64)> = HashSet::new();
    let mut tasks: Vec<MeasureTask> = Vec::new();
    // One entry per (event, NSSet) pair passing the ≥5-domains filter, in
    // event order, carrying the *global* episode index (the row path
    // stores the event index and dereferences it later — same value).
    let mut rows: Vec<(usize, NsSetId, Option<u64>, BaselineSource)> = Vec::new();
    let mut by_window: std::collections::BTreeMap<u64, Vec<dnssim::DomainId>> =
        std::collections::BTreeMap::new();

    for r in 0..table.len() {
        let episode_idx = table.episode_idx[r] as usize;
        let (first, last) =
            (episodes.first_windows[episode_idx], episodes.last_windows[episode_idx]);
        for &nsset in table.nssets.row(r) {
            // Stream the sweep: count every surviving measurement, buffer
            // only windows no earlier event already claimed. Domain-major
            // visiting fills each window's bucket in ascending domain id
            // order — the per-window order of the reference path's
            // `(window, domain)`-sorted materialized list.
            let mut measured: u64 = 0;
            by_window.clear();
            schedule.for_each_in_window_range(infra, nsset, first, last, |d, w| {
                let day = w.day();
                let swept = config.sweep_outage.is_none_or(|o| !o.day_missed(day));
                if !swept {
                    lost_days.insert(day);
                    return;
                }
                measured += 1;
                if !measured_cells.contains(&(nsset, w.0)) {
                    by_window.entry(w.0).or_default().push(d);
                }
            });
            if measured < config.min_domains_measured {
                continue;
            }
            let attack_day = first.day();
            let mut day_swept = |day: u64| {
                let swept = config.sweep_outage.is_none_or(|o| !o.day_missed(day));
                if !swept {
                    lost_days.insert(day);
                }
                swept
            };
            let (base_day, base_source) = match attack_day.checked_sub(1) {
                Some(d) if day_swept(d) => (Some(d), BaselineSource::DayBefore),
                _ => match attack_day.checked_sub(7) {
                    Some(d) if day_swept(d) => (Some(d), BaselineSource::WeekBefore),
                    _ => (None, BaselineSource::Missing),
                },
            };
            if let (Some(scope), BaselineSource::WeekBefore) = (config.trace_scope, base_source) {
                obs::trace::emit(
                    obs::EventKind::BaselineFallback,
                    scope,
                    Some(episode_idx as u64),
                    Some(first.start().secs()),
                    format!(
                        "nsset {nsset:?}: day-before sweep lost, week-before day {} substitutes",
                        base_day.unwrap_or(0)
                    ),
                    base_day,
                );
            }
            rows.push((episode_idx, nsset, base_day, base_source));
            for (w, ds) in std::mem::take(&mut by_window) {
                if measured_cells.insert((nsset, w)) {
                    tasks.push(MeasureTask::Cell { nsset, window: w, domains: ds });
                }
            }
            if let Some(day) = base_day {
                if baseline_days.insert((nsset, day)) {
                    let all = infra.domains_of_nsset(nsset);
                    let step = (all.len() / config.baseline_sample_cap).max(1);
                    let probes: Vec<(dnssim::DomainId, simcore::time::Window)> = all
                        .iter()
                        .step_by(step)
                        .take(config.baseline_sample_cap)
                        .map(|&d| (d, schedule.window_on_day(d, day)))
                        .collect();
                    tasks.push(MeasureTask::Baseline { nsset, probes });
                }
            }
        }
    }

    obs::counter("impact.rows").add(rows.len() as u64);
    obs::counter("impact.windows_computed").add(measured_cells.len() as u64);
    obs::counter("impact.baselines").add(baseline_days.len() as u64);
    obs::counter("impact.baseline_fallbacks")
        .add(rows.iter().filter(|(_, _, _, s)| *s == BaselineSource::WeekBefore).count() as u64);
    obs::counter("impact.baselines_missing")
        .add(rows.iter().filter(|(_, _, _, s)| *s == BaselineSource::Missing).count() as u64);
    obs::counter("outage.sweep_days_lost").add(lost_days.len() as u64);

    // Phase 2: measure on the worker pool (identical to the reference
    // path — the task list is, so the chaos schedule is too).
    let run_task = |task: &MeasureTask| match task {
        MeasureTask::Cell { nsset, window, domains } => measure_domains(
            infra,
            resolver,
            domains,
            *nsset,
            simcore::time::Window(*window),
            loads,
            rngs,
        ),
        MeasureTask::Baseline { nsset, probes } => {
            let mut recs = Vec::new();
            for (d, w) in probes {
                recs.extend(measure_domains(infra, resolver, &[*d], *nsset, *w, loads, rngs));
            }
            recs
        }
    };
    let plan = config.chaos_seed.map(|cs| {
        streamproc::FaultPlan::from_seed(cs, "impact-measure", streamproc::ChaosConfig::SPARSE)
    });
    let (batches, _chaos) = streamproc::parallel_map_supervised(
        jobs,
        tasks,
        plan.as_ref(),
        &streamproc::SupervisorConfig::default(),
        |_, task| run_task(task),
    );

    // Phase 3: merge in plan order, then aggregate per row.
    let mut store = MeasurementStore::new();
    for batch in &batches {
        obs::counter("openintel.records_measured").add(batch.len() as u64);
        store.ingest(batch);
    }
    let mut out = Vec::with_capacity(rows.len());
    for (episode_idx, nsset, base_day, base_source) in rows {
        let (first, last) =
            (episodes.first_windows[episode_idx], episodes.last_windows[episode_idx]);
        let during = store.range_stats(nsset, first, last);
        let impact = base_day.and_then(|day| store.impact_on_rtt_from_day(nsset, first, last, day));
        let (asns, prefixes) = (infra.nsset_asns(nsset).len(), infra.nsset_slash24s(nsset).len());
        if let Some(scope) = config.trace_scope {
            obs::trace::emit(
                obs::EventKind::ImpactComputed,
                scope,
                Some(episode_idx as u64),
                Some(first.start().secs()),
                format!(
                    "nsset {nsset:?} ({:?} baseline), failure rate {:.4}",
                    base_source,
                    during.failure_rate()
                ),
                Some(during.domains_measured),
            );
        }
        out.push(ImpactEvent {
            episode_idx,
            nsset,
            domains_measured: during.domains_measured,
            impact_on_rtt: impact,
            baseline_source: base_source,
            failure_rate: during.failure_rate(),
            timeouts: during.timeout,
            servfails: during.servfail,
            nsset_domains: infra.domains_of_nsset(nsset).len() as u64,
            protocol: episodes.protocols[episode_idx],
            first_port: episodes.first_ports[episode_idx],
            peak_ppm: episodes.peak_ppm[episode_idx],
            duration_min: ((last.0 - first.0 + 1) * 300) as f64 / 60.0,
            anycast: census.classify(infra, nsset, first.start()),
            asn_count: asns,
            prefix_count: prefixes,
        });
    }
    (out, store)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::join::join_episodes;
    use census::OpenResolverList;
    use dnssim::Deployment;
    use netbase::Asn;
    use simcore::time::Window;
    use std::net::Ipv4Addr;

    fn world(domains: u32) -> (Infra, Vec<Ipv4Addr>) {
        let mut infra = Infra::new();
        let addrs: Vec<Ipv4Addr> = vec![
            "195.135.195.195".parse().unwrap(),
            "195.8.195.195".parse().unwrap(),
            "37.97.199.195".parse().unwrap(),
        ];
        let ids: Vec<_> = addrs
            .iter()
            .enumerate()
            .map(|(i, &a)| {
                infra.add_nameserver(
                    format!("ns{i}.transip.net").parse().unwrap(),
                    a,
                    Asn(20857),
                    Deployment::Unicast,
                    50_000.0,
                    1_000.0,
                    15.0,
                )
            })
            .collect();
        let set = infra.intern_nsset(ids);
        for i in 0..domains {
            infra.add_domain(format!("klant{i}.nl").parse().unwrap(), set);
        }
        (infra, addrs)
    }

    fn census_of(infra: &Infra) -> AnycastCensus {
        AnycastCensus::from_ground_truth(
            infra,
            AnycastCensus::paper_snapshot_dates(),
            1.0,
            &RngFactory::new(1),
        )
    }

    fn episode(victim: Ipv4Addr, first: u64, last: u64) -> AttackEpisode {
        AttackEpisode {
            victim,
            first_window: Window(first),
            last_window: Window(last),
            packets: 100_000,
            peak_ppm: 20_000.0,
            protocol: Protocol::Tcp,
            first_port: 53,
            unique_ports: 1,
            slash16s: 100,
        }
    }

    #[test]
    fn heavy_attack_produces_high_impact_event() {
        let (infra, addrs) = world(6_000);
        let rngs = RngFactory::new(11);
        let schedule = SweepSchedule::new(1);
        // Attack all three nameservers for 2 hours on day 3: ρ ≈ 0.96.
        let first = 3 * 288 + 100;
        let last = first + 23;
        let mut loads = LoadBook::new();
        for w in first..=last {
            for a in &addrs {
                loads.add(*a, Window(w), 47_000.0);
            }
        }
        let eps: Vec<AttackEpisode> = addrs.iter().map(|&a| episode(a, first, last)).collect();
        let events = join_episodes(&infra, &infra, &eps, &OpenResolverList::new(), false);
        assert_eq!(events.len(), 3);
        let (impacts, _store) = compute_impacts(
            &infra,
            &schedule,
            &Resolver::default(),
            &loads,
            &eps,
            &events,
            &census_of(&infra),
            &rngs,
            &ImpactConfig::default(),
        );
        assert!(!impacts.is_empty());
        let e = &impacts[0];
        assert!(e.domains_measured >= 5);
        let impact = e.impact_on_rtt.expect("baseline exists on day 2");
        assert!(impact > 5.0, "expected ≈10x+ inflation, got {impact}");
        assert_eq!(e.anycast, AnycastClass::Unicast);
        assert_eq!(e.asn_count, 1);
        assert_eq!(e.prefix_count, 3);
        assert!((e.duration_min - 120.0).abs() < 1e-9);
    }

    #[test]
    fn thread_count_does_not_change_impacts() {
        let (infra, addrs) = world(6_000);
        let rngs = RngFactory::new(11);
        let schedule = SweepSchedule::new(1);
        let first = 3 * 288 + 100;
        let last = first + 23;
        let mut loads = LoadBook::new();
        for w in first..=last {
            for a in &addrs {
                loads.add(*a, Window(w), 47_000.0);
            }
        }
        let eps: Vec<AttackEpisode> = addrs.iter().map(|&a| episode(a, first, last)).collect();
        let events = join_episodes(&infra, &infra, &eps, &OpenResolverList::new(), false);
        let census = census_of(&infra);
        let run = |jobs| {
            compute_impacts_with_jobs(
                &infra,
                &schedule,
                &Resolver::default(),
                &loads,
                &eps,
                &events,
                &census,
                &rngs,
                &ImpactConfig::default(),
                jobs,
            )
        };
        let (seq, seq_store) = run(1);
        for jobs in [2, 8] {
            let (par, par_store) = run(jobs);
            assert_eq!(seq.len(), par.len(), "jobs={jobs}");
            for (a, b) in seq.iter().zip(&par) {
                assert_eq!(a.episode_idx, b.episode_idx);
                assert_eq!(a.nsset, b.nsset);
                assert_eq!(a.domains_measured, b.domains_measured);
                assert_eq!(a.impact_on_rtt, b.impact_on_rtt, "bit-identical f64s");
                assert_eq!(a.failure_rate, b.failure_rate);
                assert_eq!(a.timeouts, b.timeouts);
                assert_eq!(a.servfails, b.servfails);
            }
            let (s, p) = (
                seq_store.range_stats(seq[0].nsset, Window(first), Window(last)),
                par_store.range_stats(seq[0].nsset, Window(first), Window(last)),
            );
            assert_eq!(s.domains_measured, p.domains_measured);
            assert_eq!(s.avg_rtt().to_bits(), p.avg_rtt().to_bits(), "f64 merge order fixed");
        }
    }

    #[test]
    fn small_nsset_filtered_by_min_domains() {
        let (infra, addrs) = world(20); // 20 domains → ≈0.07/window
        let rngs = RngFactory::new(2);
        let schedule = SweepSchedule::new(1);
        let eps = vec![episode(addrs[0], 3 * 288, 3 * 288 + 2)]; // 15 min
        let events = join_episodes(&infra, &infra, &eps, &OpenResolverList::new(), false);
        let (impacts, _) = compute_impacts(
            &infra,
            &schedule,
            &Resolver::default(),
            &LoadBook::new(),
            &eps,
            &events,
            &census_of(&infra),
            &rngs,
            &ImpactConfig::default(),
        );
        assert!(impacts.is_empty(), "fewer than 5 measured domains → no event");
    }

    #[test]
    fn unattacked_nsset_has_unit_impact() {
        let (infra, addrs) = world(6_000);
        let rngs = RngFactory::new(3);
        let schedule = SweepSchedule::new(1);
        // Episode exists but we put no load in the book (e.g. attack too
        // small to matter).
        let eps = vec![episode(addrs[0], 3 * 288, 3 * 288 + 11)];
        let events = join_episodes(&infra, &infra, &eps, &OpenResolverList::new(), false);
        let (impacts, _) = compute_impacts(
            &infra,
            &schedule,
            &Resolver::default(),
            &LoadBook::new(),
            &eps,
            &events,
            &census_of(&infra),
            &rngs,
            &ImpactConfig::default(),
        );
        assert_eq!(impacts.len(), 1);
        let impact = impacts[0].impact_on_rtt.unwrap();
        assert!((impact - 1.0).abs() < 0.5, "no attack → impact ≈ 1, got {impact}");
        assert!(impacts[0].failure_rate < 0.01);
        assert!(!impacts[0].complete_failure());
    }

    #[test]
    fn day_zero_attack_lacks_baseline() {
        let (infra, addrs) = world(6_000);
        let rngs = RngFactory::new(4);
        let schedule = SweepSchedule::new(1);
        let eps = vec![episode(addrs[0], 10, 40)];
        let events = join_episodes(&infra, &infra, &eps, &OpenResolverList::new(), false);
        let (impacts, _) = compute_impacts(
            &infra,
            &schedule,
            &Resolver::default(),
            &LoadBook::new(),
            &eps,
            &events,
            &census_of(&infra),
            &rngs,
            &ImpactConfig::default(),
        );
        assert_eq!(impacts.len(), 1);
        assert!(impacts[0].impact_on_rtt.is_none());
    }

    #[test]
    fn sweep_outage_falls_back_to_week_before_baseline() {
        let (infra, addrs) = world(6_000);
        let rngs = RngFactory::new(7);
        let schedule = SweepSchedule::new(1);
        // Attack on day 8 so a week-before baseline (day 1) exists.
        let first = 8 * 288 + 100;
        let last = first + 23;
        let eps = vec![episode(addrs[0], first, last)];
        let events = join_episodes(&infra, &infra, &eps, &OpenResolverList::new(), false);
        let census = census_of(&infra);
        // Find an outage draw that loses exactly the day-before sweep
        // (day 7) while keeping the attack day and the week-before day.
        let outage = (0u64..)
            .map(|s| openintel::OutageModel::from_seed(s, 0.5))
            .find(|o| o.day_missed(7) && !o.day_missed(8) && !o.day_missed(1))
            .unwrap();
        let config = ImpactConfig { sweep_outage: Some(outage), ..ImpactConfig::default() };
        let (impacts, _) = compute_impacts(
            &infra,
            &schedule,
            &Resolver::default(),
            &LoadBook::new(),
            &eps,
            &events,
            &census,
            &rngs,
            &config,
        );
        assert_eq!(impacts.len(), 1);
        let e = &impacts[0];
        assert_eq!(e.baseline_source, BaselineSource::WeekBefore);
        let impact = e.impact_on_rtt.expect("week-before sweep provides a baseline");
        assert!((impact - 1.0).abs() < 0.5, "no load → impact ≈ 1, got {impact}");
        // The same attack without the outage uses the day before.
        let (clean, _) = compute_impacts(
            &infra,
            &schedule,
            &Resolver::default(),
            &LoadBook::new(),
            &eps,
            &events,
            &census,
            &rngs,
            &ImpactConfig::default(),
        );
        assert_eq!(clean[0].baseline_source, BaselineSource::DayBefore);
    }

    #[test]
    fn chaos_seed_never_changes_impacts() {
        let (infra, addrs) = world(6_000);
        let rngs = RngFactory::new(11);
        let schedule = SweepSchedule::new(1);
        let first = 3 * 288 + 100;
        let last = first + 23;
        let mut loads = LoadBook::new();
        for w in first..=last {
            for a in &addrs {
                loads.add(*a, Window(w), 47_000.0);
            }
        }
        let eps: Vec<AttackEpisode> = addrs.iter().map(|&a| episode(a, first, last)).collect();
        let events = join_episodes(&infra, &infra, &eps, &OpenResolverList::new(), false);
        let census = census_of(&infra);
        let run = |chaos_seed, jobs| {
            let config = ImpactConfig { chaos_seed, ..ImpactConfig::default() };
            compute_impacts_with_jobs(
                &infra,
                &schedule,
                &Resolver::default(),
                &loads,
                &eps,
                &events,
                &census,
                &rngs,
                &config,
                jobs,
            )
        };
        let (clean, _) = run(None, 1);
        for (chaos, jobs) in [(Some(42), 1), (Some(42), 8), (Some(7), 4)] {
            let (faulted, _) = run(chaos, jobs);
            assert_eq!(clean.len(), faulted.len());
            for (a, b) in clean.iter().zip(&faulted) {
                assert_eq!(a.nsset, b.nsset);
                assert_eq!(
                    a.impact_on_rtt.map(f64::to_bits),
                    b.impact_on_rtt.map(f64::to_bits),
                    "chaos={chaos:?} jobs={jobs}: bit-identical impacts"
                );
                assert_eq!(a.failure_rate.to_bits(), b.failure_rate.to_bits());
                assert_eq!(a.timeouts, b.timeouts);
            }
        }
    }

    #[test]
    fn saturating_attack_causes_failures() {
        let (infra, addrs) = world(6_000);
        let rngs = RngFactory::new(5);
        let schedule = SweepSchedule::new(1);
        let first = 3 * 288;
        let last = first + 35; // 3 hours
        let mut loads = LoadBook::new();
        for w in first..=last {
            for a in &addrs {
                loads.add(*a, Window(w), 5_000_000.0); // 100x capacity
            }
        }
        let eps: Vec<AttackEpisode> = addrs.iter().map(|&a| episode(a, first, last)).collect();
        let events = join_episodes(&infra, &infra, &eps, &OpenResolverList::new(), false);
        let (impacts, _) = compute_impacts(
            &infra,
            &schedule,
            &Resolver::default(),
            &loads,
            &eps,
            &events,
            &census_of(&infra),
            &rngs,
            &ImpactConfig::default(),
        );
        let e = &impacts[0];
        assert!(e.failure_rate > 0.8, "failure rate {}", e.failure_rate);
        assert!(e.timeouts > e.servfails, "timeouts dominate (92/8 split)");
    }
}
