//! Step 4 of the methodology: the per-(attack, NSSet) impact events.
//!
//! For every joined attack event and every NSSet it touches, measure the
//! domains OpenINTEL would have measured in the attack's windows, build the
//! previous-day baseline, and compute `Impact_on_RTT` (Equation 1) plus
//! failure rates. NSSets with fewer than five domains measured during the
//! attack are discarded as noise, exactly as §6.3 does.

use crate::join::DnsAttackEvent;
use census::{AnycastCensus, AnycastClass};
use dnssim::{Infra, LoadBook, NsSetId, Resolver};
use openintel::{measure::measure_domains, MeasurementStore, SweepSchedule};
use simcore::rng::RngFactory;
use telescope::AttackEpisode;
use attack::Protocol;
use std::collections::HashSet;

/// One row of the paper's impact analysis: an attack on one NSSet, with
/// its measured consequences and the deployment metadata the resilience
/// analyses slice by.
#[derive(Clone, Debug)]
pub struct ImpactEvent {
    pub episode_idx: usize,
    pub nsset: NsSetId,
    /// Domains OpenINTEL measured during the attack windows.
    pub domains_measured: u64,
    /// Equation 1; `None` when the previous-day baseline is missing.
    pub impact_on_rtt: Option<f64>,
    /// Fraction of measured domains that failed to resolve.
    pub failure_rate: f64,
    pub timeouts: u64,
    pub servfails: u64,
    /// Domains hosted by the NSSet (the size classes of Figures 7–8).
    pub nsset_domains: u64,
    /// Attack attributes from the feed.
    pub protocol: Protocol,
    pub first_port: u16,
    pub peak_ppm: f64,
    pub duration_min: f64,
    /// Deployment metadata (Figures 11–13).
    pub anycast: AnycastClass,
    pub asn_count: usize,
    pub prefix_count: usize,
}

impl ImpactEvent {
    /// Complete resolution failure: every measured domain failed.
    pub fn complete_failure(&self) -> bool {
        self.domains_measured > 0 && self.failure_rate >= 1.0
    }
}

/// Tunables of the impact computation.
#[derive(Clone, Copy, Debug)]
pub struct ImpactConfig {
    /// Minimum domains measured during the attack (the paper uses 5).
    pub min_domains_measured: u64,
    /// Baseline sampling cap: at most this many of the NSSet's domains are
    /// measured on the previous day to form the denominator of Equation 1.
    pub baseline_sample_cap: usize,
}

impl Default for ImpactConfig {
    fn default() -> ImpactConfig {
        ImpactConfig { min_domains_measured: 5, baseline_sample_cap: 200 }
    }
}

/// One unit of OpenINTEL measurement work, planned sequentially and
/// executed on any worker. Tasks never share RNG state: `measure_domains`
/// derives a fresh stream per `(domain, window)` from the factory, so a
/// task's records depend only on its inputs — not on which thread ran it
/// or when.
enum MeasureTask {
    /// One deduplicated (NSSet, window) attack-measurement cell.
    Cell { nsset: NsSetId, window: u64, domains: Vec<dnssim::DomainId> },
    /// The sampled previous-day baseline for one (NSSet, day), each probe
    /// in its own scheduled window.
    Baseline { nsset: NsSetId, probes: Vec<(dnssim::DomainId, simcore::time::Window)> },
}

/// Compute the impact events for all joined attacks. Also returns the
/// filled measurement store (per-window aggregates) for time-series
/// rendering. Sequential convenience wrapper around
/// [`compute_impacts_with_jobs`].
#[allow(clippy::too_many_arguments)]
pub fn compute_impacts(
    infra: &Infra,
    schedule: &SweepSchedule,
    resolver: &Resolver,
    loads: &LoadBook,
    episodes: &[AttackEpisode],
    events: &[DnsAttackEvent],
    census: &AnycastCensus,
    rngs: &RngFactory,
    config: &ImpactConfig,
) -> (Vec<ImpactEvent>, MeasurementStore) {
    compute_impacts_with_jobs(
        infra, schedule, resolver, loads, episodes, events, census, rngs, config, 1,
    )
}

/// [`compute_impacts`] with the measurement phase fanned out over up to
/// `jobs` worker threads (`0` → available parallelism).
///
/// Three phases keep the output independent of `jobs`:
///
/// 1. **Plan** (sequential): walk the events in order and emit a canonical,
///    deduplicated task list — attack-window cells and sampled baselines.
/// 2. **Measure** (parallel): run the tasks on a shared-queue worker pool;
///    [`streamproc::parallel_map`] returns the record batches in plan
///    order regardless of scheduling.
/// 3. **Merge + aggregate** (sequential): ingest the batches in plan order
///    (fixing the f64 summation order inside the store), then derive every
///    event's statistics from the fully-populated store.
#[allow(clippy::too_many_arguments)]
pub fn compute_impacts_with_jobs(
    infra: &Infra,
    schedule: &SweepSchedule,
    resolver: &Resolver,
    loads: &LoadBook,
    episodes: &[AttackEpisode],
    events: &[DnsAttackEvent],
    census: &AnycastCensus,
    rngs: &RngFactory,
    config: &ImpactConfig,
    jobs: usize,
) -> (Vec<ImpactEvent>, MeasurementStore) {
    // Phase 1: plan.
    let mut measured_cells: HashSet<(NsSetId, u64)> = HashSet::new();
    let mut baseline_days: HashSet<(NsSetId, u64)> = HashSet::new();
    let mut tasks: Vec<MeasureTask> = Vec::new();
    // The (event, NSSet) pairs that pass the ≥5-domains filter, in event
    // order — phase 3 emits exactly one ImpactEvent per entry.
    let mut rows: Vec<(usize, NsSetId)> = Vec::new();

    for (ei, ev) in events.iter().enumerate() {
        let ep = &episodes[ev.episode_idx];
        for &nsset in &ev.nssets {
            let measured =
                schedule.domains_in_window_range(infra, nsset, ep.first_window, ep.last_window);
            if (measured.len() as u64) < config.min_domains_measured {
                continue;
            }
            rows.push((ei, nsset));
            // Measure the attack windows (once per (nsset, window) cell
            // even when episodes overlap).
            let mut by_window: std::collections::BTreeMap<u64, Vec<dnssim::DomainId>> =
                std::collections::BTreeMap::new();
            for (d, w) in &measured {
                by_window.entry(w.0).or_default().push(*d);
            }
            for (w, ds) in by_window {
                if measured_cells.insert((nsset, w)) {
                    tasks.push(MeasureTask::Cell { nsset, window: w, domains: ds });
                }
            }
            // Plan the previous-day baseline (sampled).
            if let Some(day_before) = ep.first_window.day().checked_sub(1) {
                if baseline_days.insert((nsset, day_before)) {
                    let all = infra.domains_of_nsset(nsset);
                    let step = (all.len() / config.baseline_sample_cap).max(1);
                    let probes: Vec<(dnssim::DomainId, simcore::time::Window)> = all
                        .iter()
                        .step_by(step)
                        .take(config.baseline_sample_cap)
                        .map(|&d| (d, schedule.window_on_day(d, day_before)))
                        .collect();
                    tasks.push(MeasureTask::Baseline { nsset, probes });
                }
            }
        }
    }

    // Phase 2: measure on the worker pool.
    let batches = streamproc::parallel_map(jobs, tasks, |_, task| match task {
        MeasureTask::Cell { nsset, window, domains } => measure_domains(
            infra,
            resolver,
            &domains,
            nsset,
            simcore::time::Window(window),
            loads,
            rngs,
        ),
        MeasureTask::Baseline { nsset, probes } => {
            let mut recs = Vec::new();
            for (d, w) in probes {
                recs.extend(measure_domains(infra, resolver, &[d], nsset, w, loads, rngs));
            }
            recs
        }
    });

    // Phase 3: merge in plan order, then aggregate per event.
    let mut store = MeasurementStore::new();
    for batch in &batches {
        store.ingest(batch);
    }
    let mut out = Vec::with_capacity(rows.len());
    for (ei, nsset) in rows {
        let ev = &events[ei];
        let ep = &episodes[ev.episode_idx];
        let during = store.range_stats(nsset, ep.first_window, ep.last_window);
        let impact = store.impact_on_rtt(nsset, ep.first_window, ep.last_window);
        let (asns, prefixes) =
            (infra.nsset_asns(nsset).len(), infra.nsset_slash24s(nsset).len());
        out.push(ImpactEvent {
            episode_idx: ev.episode_idx,
            nsset,
            domains_measured: during.domains_measured,
            impact_on_rtt: impact,
            failure_rate: during.failure_rate(),
            timeouts: during.timeout,
            servfails: during.servfail,
            nsset_domains: infra.domains_of_nsset(nsset).len() as u64,
            protocol: ep.protocol,
            first_port: ep.first_port,
            peak_ppm: ep.peak_ppm,
            duration_min: ep.duration().secs() as f64 / 60.0,
            anycast: census.classify(infra, nsset, ep.first_window.start()),
            asn_count: asns,
            prefix_count: prefixes,
        });
    }
    (out, store)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::join::join_episodes;
    use census::OpenResolverList;
    use dnssim::Deployment;
    use netbase::Asn;
    use simcore::time::Window;
    use std::net::Ipv4Addr;

    fn world(domains: u32) -> (Infra, Vec<Ipv4Addr>) {
        let mut infra = Infra::new();
        let addrs: Vec<Ipv4Addr> = vec![
            "195.135.195.195".parse().unwrap(),
            "195.8.195.195".parse().unwrap(),
            "37.97.199.195".parse().unwrap(),
        ];
        let ids: Vec<_> = addrs
            .iter()
            .enumerate()
            .map(|(i, &a)| {
                infra.add_nameserver(
                    format!("ns{i}.transip.net").parse().unwrap(),
                    a,
                    Asn(20857),
                    Deployment::Unicast,
                    50_000.0,
                    1_000.0,
                    15.0,
                )
            })
            .collect();
        let set = infra.intern_nsset(ids);
        for i in 0..domains {
            infra.add_domain(format!("klant{i}.nl").parse().unwrap(), set);
        }
        (infra, addrs)
    }

    fn census_of(infra: &Infra) -> AnycastCensus {
        AnycastCensus::from_ground_truth(
            infra,
            AnycastCensus::paper_snapshot_dates(),
            1.0,
            &RngFactory::new(1),
        )
    }

    fn episode(victim: Ipv4Addr, first: u64, last: u64) -> AttackEpisode {
        AttackEpisode {
            victim,
            first_window: Window(first),
            last_window: Window(last),
            packets: 100_000,
            peak_ppm: 20_000.0,
            protocol: Protocol::Tcp,
            first_port: 53,
            unique_ports: 1,
            slash16s: 100,
        }
    }

    #[test]
    fn heavy_attack_produces_high_impact_event() {
        let (infra, addrs) = world(6_000);
        let rngs = RngFactory::new(11);
        let schedule = SweepSchedule::new(1);
        // Attack all three nameservers for 2 hours on day 3: ρ ≈ 0.96.
        let first = 3 * 288 + 100;
        let last = first + 23;
        let mut loads = LoadBook::new();
        for w in first..=last {
            for a in &addrs {
                loads.add(*a, Window(w), 47_000.0);
            }
        }
        let eps: Vec<AttackEpisode> =
            addrs.iter().map(|&a| episode(a, first, last)).collect();
        let events = join_episodes(&infra, &infra, &eps, &OpenResolverList::new(), false);
        assert_eq!(events.len(), 3);
        let (impacts, _store) = compute_impacts(
            &infra,
            &schedule,
            &Resolver::default(),
            &loads,
            &eps,
            &events,
            &census_of(&infra),
            &rngs,
            &ImpactConfig::default(),
        );
        assert!(!impacts.is_empty());
        let e = &impacts[0];
        assert!(e.domains_measured >= 5);
        let impact = e.impact_on_rtt.expect("baseline exists on day 2");
        assert!(impact > 5.0, "expected ≈10x+ inflation, got {impact}");
        assert_eq!(e.anycast, AnycastClass::Unicast);
        assert_eq!(e.asn_count, 1);
        assert_eq!(e.prefix_count, 3);
        assert!((e.duration_min - 120.0).abs() < 1e-9);
    }

    #[test]
    fn thread_count_does_not_change_impacts() {
        let (infra, addrs) = world(6_000);
        let rngs = RngFactory::new(11);
        let schedule = SweepSchedule::new(1);
        let first = 3 * 288 + 100;
        let last = first + 23;
        let mut loads = LoadBook::new();
        for w in first..=last {
            for a in &addrs {
                loads.add(*a, Window(w), 47_000.0);
            }
        }
        let eps: Vec<AttackEpisode> =
            addrs.iter().map(|&a| episode(a, first, last)).collect();
        let events = join_episodes(&infra, &infra, &eps, &OpenResolverList::new(), false);
        let census = census_of(&infra);
        let run = |jobs| {
            compute_impacts_with_jobs(
                &infra,
                &schedule,
                &Resolver::default(),
                &loads,
                &eps,
                &events,
                &census,
                &rngs,
                &ImpactConfig::default(),
                jobs,
            )
        };
        let (seq, seq_store) = run(1);
        for jobs in [2, 8] {
            let (par, par_store) = run(jobs);
            assert_eq!(seq.len(), par.len(), "jobs={jobs}");
            for (a, b) in seq.iter().zip(&par) {
                assert_eq!(a.episode_idx, b.episode_idx);
                assert_eq!(a.nsset, b.nsset);
                assert_eq!(a.domains_measured, b.domains_measured);
                assert_eq!(a.impact_on_rtt, b.impact_on_rtt, "bit-identical f64s");
                assert_eq!(a.failure_rate, b.failure_rate);
                assert_eq!(a.timeouts, b.timeouts);
                assert_eq!(a.servfails, b.servfails);
            }
            let (s, p) = (
                seq_store.range_stats(seq[0].nsset, Window(first), Window(last)),
                par_store.range_stats(seq[0].nsset, Window(first), Window(last)),
            );
            assert_eq!(s.domains_measured, p.domains_measured);
            assert_eq!(s.avg_rtt().to_bits(), p.avg_rtt().to_bits(), "f64 merge order fixed");
        }
    }

    #[test]
    fn small_nsset_filtered_by_min_domains() {
        let (infra, addrs) = world(20); // 20 domains → ≈0.07/window
        let rngs = RngFactory::new(2);
        let schedule = SweepSchedule::new(1);
        let eps = vec![episode(addrs[0], 3 * 288, 3 * 288 + 2)]; // 15 min
        let events = join_episodes(&infra, &infra, &eps, &OpenResolverList::new(), false);
        let (impacts, _) = compute_impacts(
            &infra,
            &schedule,
            &Resolver::default(),
            &LoadBook::new(),
            &eps,
            &events,
            &census_of(&infra),
            &rngs,
            &ImpactConfig::default(),
        );
        assert!(impacts.is_empty(), "fewer than 5 measured domains → no event");
    }

    #[test]
    fn unattacked_nsset_has_unit_impact() {
        let (infra, addrs) = world(6_000);
        let rngs = RngFactory::new(3);
        let schedule = SweepSchedule::new(1);
        // Episode exists but we put no load in the book (e.g. attack too
        // small to matter).
        let eps = vec![episode(addrs[0], 3 * 288, 3 * 288 + 11)];
        let events = join_episodes(&infra, &infra, &eps, &OpenResolverList::new(), false);
        let (impacts, _) = compute_impacts(
            &infra,
            &schedule,
            &Resolver::default(),
            &LoadBook::new(),
            &eps,
            &events,
            &census_of(&infra),
            &rngs,
            &ImpactConfig::default(),
        );
        assert_eq!(impacts.len(), 1);
        let impact = impacts[0].impact_on_rtt.unwrap();
        assert!((impact - 1.0).abs() < 0.5, "no attack → impact ≈ 1, got {impact}");
        assert!(impacts[0].failure_rate < 0.01);
        assert!(!impacts[0].complete_failure());
    }

    #[test]
    fn day_zero_attack_lacks_baseline() {
        let (infra, addrs) = world(6_000);
        let rngs = RngFactory::new(4);
        let schedule = SweepSchedule::new(1);
        let eps = vec![episode(addrs[0], 10, 40)];
        let events = join_episodes(&infra, &infra, &eps, &OpenResolverList::new(), false);
        let (impacts, _) = compute_impacts(
            &infra,
            &schedule,
            &Resolver::default(),
            &LoadBook::new(),
            &eps,
            &events,
            &census_of(&infra),
            &rngs,
            &ImpactConfig::default(),
        );
        assert_eq!(impacts.len(), 1);
        assert!(impacts[0].impact_on_rtt.is_none());
    }

    #[test]
    fn saturating_attack_causes_failures() {
        let (infra, addrs) = world(6_000);
        let rngs = RngFactory::new(5);
        let schedule = SweepSchedule::new(1);
        let first = 3 * 288;
        let last = first + 35; // 3 hours
        let mut loads = LoadBook::new();
        for w in first..=last {
            for a in &addrs {
                loads.add(*a, Window(w), 5_000_000.0); // 100x capacity
            }
        }
        let eps: Vec<AttackEpisode> =
            addrs.iter().map(|&a| episode(a, first, last)).collect();
        let events = join_episodes(&infra, &infra, &eps, &OpenResolverList::new(), false);
        let (impacts, _) = compute_impacts(
            &infra,
            &schedule,
            &Resolver::default(),
            &loads,
            &eps,
            &events,
            &census_of(&infra),
            &rngs,
            &ImpactConfig::default(),
        );
        let e = &impacts[0];
        assert!(e.failure_rate > 0.8, "failure rate {}", e.failure_rate);
        assert!(e.timeouts > e.servfails, "timeouts dominate (92/8 split)");
    }
}
