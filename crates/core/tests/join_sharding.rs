//! Shard-boundary behaviour of the parallel RSDoS×NSSet join: for every
//! worker count the sharded join must reproduce the sequential output
//! exactly — including episodes of one NSSet split across shards, attacks
//! starting exactly on a day boundary window, and shards that come up
//! empty because there are more workers than episodes.

use attack::Protocol;
use census::OpenResolverList;
use dnsimpact_core::join::{
    join_episodes_sharded, join_episodes_with_offset, ChangingDirectory, DnsAttackEvent,
};
use dnssim::{Deployment, Infra, NsId};
use netbase::Asn;
use simcore::time::Window;
use std::net::Ipv4Addr;
use telescope::AttackEpisode;

fn episode(victim: &str, w: u64) -> AttackEpisode {
    AttackEpisode {
        victim: victim.parse().unwrap(),
        first_window: Window(w),
        last_window: Window(w + 2),
        packets: 1_000,
        peak_ppm: 100.0,
        protocol: Protocol::Tcp,
        first_port: 53,
        unique_ports: 1,
        slash16s: 10,
    }
}

/// Two nameservers sharing one NSSet, plus a solo NSSet, and 100+40
/// domains behind them.
fn world() -> (Infra, NsId, NsId) {
    let mut infra = Infra::new();
    let a = infra.add_nameserver(
        "ns0.transip.net".parse().unwrap(),
        "195.135.195.195".parse().unwrap(),
        Asn(20857),
        Deployment::Unicast,
        10_000.0,
        100.0,
        15.0,
    );
    let b = infra.add_nameserver(
        "ns1.other.net".parse().unwrap(),
        "203.0.113.53".parse().unwrap(),
        Asn(64500),
        Deployment::Unicast,
        10_000.0,
        100.0,
        15.0,
    );
    let set_ab = infra.intern_nsset(vec![a, b]);
    let set_a = infra.intern_nsset(vec![a]);
    for i in 0..100 {
        infra.add_domain(format!("ab{i}.nl").parse().unwrap(), set_ab);
    }
    for i in 0..40 {
        infra.add_domain(format!("a{i}.nl").parse().unwrap(), set_a);
    }
    (infra, a, b)
}

fn assert_same(seq: &[DnsAttackEvent], par: &[DnsAttackEvent], what: &str) {
    assert_eq!(
        format!("{seq:?}"),
        format!("{par:?}"),
        "{what}: sharded output must equal the sequential reference"
    );
}

#[test]
fn sharded_join_equals_sequential_for_any_worker_count() {
    let (infra, ..) = world();
    // A mixed feed: DNS victims, non-DNS victims, repeats — long enough
    // that every tested worker count produces multiple shards.
    let mut eps = Vec::new();
    for i in 0..97u64 {
        let victim = match i % 4 {
            0 => "195.135.195.195",
            1 => "203.0.113.53",
            2 => "8.100.2.3", // not DNS infrastructure
            _ => "195.135.195.195",
        };
        eps.push(episode(victim, 288 + i * 7));
    }
    let seq = join_episodes_with_offset(&infra, &infra, &eps, &OpenResolverList::new(), false, 1);
    assert!(!seq.is_empty());
    for jobs in [2, 3, 5, 8, 64] {
        let par =
            join_episodes_sharded(&infra, &infra, &eps, &OpenResolverList::new(), false, 1, jobs);
        assert_same(&seq, &par, &format!("jobs={jobs}"));
    }
}

#[test]
fn nsset_straddling_two_shards_yields_both_events() {
    let (infra, a, b) = world();
    // Episodes 0 and 3 hit the two members of the shared NSSet; with
    // jobs=2 (shard length 2) they land in different shards.
    let eps = vec![
        episode("195.135.195.195", 288),
        episode("8.100.2.3", 300),
        episode("9.100.2.3", 310),
        episode("203.0.113.53", 320),
    ];
    let par = join_episodes_sharded(&infra, &infra, &eps, &OpenResolverList::new(), false, 1, 2);
    assert_eq!(par.len(), 2);
    assert_eq!(par[0].episode_idx, 0, "global indices survive sharding");
    assert_eq!(par[0].ns_direct, vec![a]);
    assert_eq!(par[1].episode_idx, 3);
    assert_eq!(par[1].ns_direct, vec![b]);
    // Both events name the shared NSSet even though each shard only saw
    // one of its members.
    let shared: Vec<_> = par[0].nssets.iter().filter(|s| par[1].nssets.contains(s)).collect();
    assert!(!shared.is_empty(), "the straddling NSSet appears in both events");
    let seq = join_episodes_with_offset(&infra, &infra, &eps, &OpenResolverList::new(), false, 1);
    assert_same(&seq, &par, "straddling NSSet");
}

#[test]
fn day_boundary_window_joins_identically_across_shards() {
    // An attack whose first window sits exactly on the day-1 boundary
    // (window 288 = day 1, 00:00) joins against day 0's list under the
    // paper's previous-day rule. The victim is withdrawn from the
    // directory on day 1, so the join only succeeds through that rule —
    // and must do so identically whether or not the episode sits on a
    // shard boundary.
    let (infra, a, _) = world();
    let addr: Ipv4Addr = "195.135.195.195".parse().unwrap();
    let dir = ChangingDirectory::new(&infra).change(1, addr, None);
    let eps = vec![
        episode("8.100.2.3", 280),
        episode("195.135.195.195", 288), // exactly on the boundary
        episode("9.100.2.3", 290),
        episode("195.135.195.195", 287), // last window of day 0
    ];
    let seq = join_episodes_with_offset(&infra, &dir, &eps, &OpenResolverList::new(), false, 1);
    assert_eq!(seq.len(), 2);
    assert_eq!(seq[0].episode_idx, 1, "day-boundary attack joined via day 0's list");
    assert_eq!(seq[0].ns_direct, vec![a]);
    assert_eq!(seq[1].episode_idx, 3, "same-day (day 0) attack also joined");
    for jobs in [2, 3, 4] {
        let par =
            join_episodes_sharded(&infra, &dir, &eps, &OpenResolverList::new(), false, 1, jobs);
        assert_same(&seq, &par, &format!("day boundary, jobs={jobs}"));
    }
}

#[test]
fn more_workers_than_episodes_handles_empty_shards() {
    let (infra, ..) = world();
    let eps = vec![episode("195.135.195.195", 288), episode("203.0.113.53", 300)];
    let seq = join_episodes_with_offset(&infra, &infra, &eps, &OpenResolverList::new(), false, 1);
    let par = join_episodes_sharded(&infra, &infra, &eps, &OpenResolverList::new(), false, 1, 64);
    assert_same(&seq, &par, "jobs=64 over 2 episodes");
    // Degenerate inputs: one episode and none at all.
    let one =
        join_episodes_sharded(&infra, &infra, &eps[..1], &OpenResolverList::new(), false, 1, 8);
    assert_eq!(one.len(), 1);
    let none: Vec<AttackEpisode> = Vec::new();
    let empty = join_episodes_sharded(&infra, &infra, &none, &OpenResolverList::new(), false, 1, 8);
    assert!(empty.is_empty());
}
