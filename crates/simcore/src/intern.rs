//! A deterministic `u32` arena interner.
//!
//! The columnar hot path replaces per-row `String` / `Vec<IpAddr>`
//! allocation with dense `u32` ids into a shared arena. Ids are assigned
//! first-come-first-served, so a single sequential pass over the input
//! always produces the same id assignment — and [`Interner::merge`] folds
//! shard-local arenas back into a global one in shard order, producing the
//! *identical* assignment the sequential pass would have, whatever the
//! shard sizes. That is the invariant the `--jobs`-independence suite
//! leans on.

use std::collections::HashMap;
use std::hash::Hash;

/// First-come-first-served `T → u32` arena.
///
/// `intern` is idempotent: re-interning a known value returns its existing
/// id. `resolve` is total over assigned ids and panics on out-of-range ids
/// (an id can only come from this arena, so out-of-range is a logic bug).
#[derive(Clone)]
pub struct Interner<T: Eq + Hash + Clone> {
    ids: HashMap<T, u32>,
    values: Vec<T>,
}

/// Prints only the arena (id order). The reverse map's `HashMap` iteration
/// order is seeded per-instance, and fingerprints are taken over `Debug`
/// output — the derived impl would make equal arenas print unequally.
impl<T: Eq + Hash + Clone + std::fmt::Debug> std::fmt::Debug for Interner<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Interner").field("values", &self.values).finish()
    }
}

impl<T: Eq + Hash + Clone> Default for Interner<T> {
    fn default() -> Interner<T> {
        Interner::new()
    }
}

impl<T: Eq + Hash + Clone> Interner<T> {
    pub fn new() -> Interner<T> {
        Interner { ids: HashMap::new(), values: Vec::new() }
    }

    /// The id of `value`, assigning the next free id on first sight.
    pub fn intern(&mut self, value: T) -> u32 {
        if let Some(&id) = self.ids.get(&value) {
            return id;
        }
        let id = u32::try_from(self.values.len()).expect("interner overflow: > u32::MAX values");
        self.ids.insert(value.clone(), id);
        self.values.push(value);
        id
    }

    /// The id of a *borrowed* form of a value, allocating the owned key
    /// only on first sight. The hot-path twin of [`intern`](Interner::intern):
    /// probing with `&[u8]` against a `Vec<u8>`-keyed arena (or `&str`
    /// against `String`) costs nothing on a hit, which is the common case
    /// once a feed's name universe has been seen. Id assignment is
    /// identical to `intern` — first come, first served.
    pub fn intern_ref<Q>(&mut self, value: &Q) -> u32
    where
        T: std::borrow::Borrow<Q>,
        Q: Eq + Hash + ToOwned<Owned = T> + ?Sized,
    {
        if let Some(&id) = self.ids.get(value) {
            return id;
        }
        let id = u32::try_from(self.values.len()).expect("interner overflow: > u32::MAX values");
        let owned = value.to_owned();
        self.ids.insert(owned.clone(), id);
        self.values.push(owned);
        id
    }

    /// The value behind `id`.
    pub fn resolve(&self, id: u32) -> &T {
        &self.values[id as usize]
    }

    /// The id of `value`, if it has been interned.
    pub fn get(&self, value: &T) -> Option<u32> {
        self.ids.get(value).copied()
    }

    pub fn len(&self) -> usize {
        self.values.len()
    }

    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }

    /// Iterate values in id order.
    pub fn iter(&self) -> impl Iterator<Item = &T> {
        self.values.iter()
    }

    /// Fold a shard-local arena into this one, returning the remap table
    /// `local id → global id`. Merging shard arenas in shard order yields
    /// exactly the assignment a single sequential pass over the
    /// concatenated inputs would have produced — dense ids stay
    /// deterministic under any sharding.
    pub fn merge(&mut self, shard: &Interner<T>) -> Vec<u32> {
        shard.values.iter().map(|v| self.intern(v.clone())).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ids_are_dense_and_round_trip() {
        let mut arena = Interner::new();
        assert!(arena.is_empty());
        let a = arena.intern("alpha".to_string());
        let b = arena.intern("beta".to_string());
        assert_eq!((a, b), (0, 1));
        assert_eq!(arena.resolve(a), "alpha");
        assert_eq!(arena.resolve(b), "beta");
        assert_eq!(arena.len(), 2);
        assert_eq!(arena.get(&"beta".to_string()), Some(1));
        assert_eq!(arena.get(&"gamma".to_string()), None);
        let collected: Vec<&String> = arena.iter().collect();
        assert_eq!(collected, ["alpha", "beta"]);
    }

    #[test]
    fn reinterning_is_idempotent() {
        let mut arena = Interner::new();
        let first = arena.intern(42u64);
        arena.intern(7u64);
        let again = arena.intern(42u64);
        assert_eq!(first, again, "dedup must keep the first-come id");
        assert_eq!(arena.len(), 2);
    }

    #[test]
    fn merge_remaps_shard_ids_to_global() {
        let mut global = Interner::new();
        global.intern("x");
        global.intern("y");
        let mut shard = Interner::new();
        shard.intern("y"); // local 0 → global 1
        shard.intern("z"); // local 1 → global 2 (fresh)
        let remap = global.merge(&shard);
        assert_eq!(remap, vec![1, 2]);
        assert_eq!(global.resolve(2), &"z");
    }

    #[test]
    fn intern_ref_probes_without_owning() {
        let mut arena: Interner<Vec<u8>> = Interner::new();
        let a = arena.intern_ref(b"mil.ru".as_slice());
        let b = arena.intern_ref(b"transip.nl".as_slice());
        assert_eq!((a, b), (0, 1));
        assert_eq!(arena.intern_ref(b"mil.ru".as_slice()), 0, "hit keeps first-come id");
        assert_eq!(arena.intern(b"mil.ru".to_vec()), 0, "interchangeable with intern");
        assert_eq!(arena.len(), 2);
        let mut strs: Interner<String> = Interner::new();
        assert_eq!(strs.intern_ref("alpha"), 0);
        assert_eq!(strs.intern("alpha".to_string()), 0);
    }

    use proptest::prelude::*;

    proptest! {
        /// `intern_ref` over borrowed keys assigns exactly the ids
        /// `intern` over owned keys would.
        #[test]
        fn intern_ref_matches_intern(xs in prop::collection::vec("[a-c]{0,3}", 0..60)) {
            let mut owned = Interner::new();
            let mut borrowed: Interner<String> = Interner::new();
            for x in &xs {
                prop_assert_eq!(owned.intern(x.clone()), borrowed.intern_ref(x.as_str()));
            }
            prop_assert_eq!(format!("{owned:?}"), format!("{borrowed:?}"));
        }

        /// Sequential interning ≡ shard-local interning + ordered merge,
        /// for any input sequence and any shard cut points. This is the
        /// deterministic-id-assignment property the `--jobs` sweep relies
        /// on: workers may intern into private arenas as long as the
        /// arenas merge in shard order.
        #[test]
        fn shard_merge_matches_sequential(
            xs in prop::collection::vec(0u32..50, 1..80),
            cut_seed in 0usize..7,
        ) {
            let mut sequential = Interner::new();
            let seq_ids: Vec<u32> = xs.iter().map(|&x| sequential.intern(x)).collect();

            let shard_len = cut_seed + 1; // 1..=7: uneven final shard included
            let mut global = Interner::new();
            let mut merged_ids = Vec::new();
            for chunk in xs.chunks(shard_len) {
                let mut local = Interner::new();
                let local_ids: Vec<u32> = chunk.iter().map(|&x| local.intern(x)).collect();
                let remap = global.merge(&local);
                merged_ids.extend(local_ids.iter().map(|&l| remap[l as usize]));
            }
            prop_assert_eq!(&seq_ids, &merged_ids);
            prop_assert_eq!(sequential.len(), global.len());
            for id in 0..sequential.len() as u32 {
                prop_assert_eq!(sequential.resolve(id), global.resolve(id));
            }
        }

        /// Round trip: every interned value resolves back to itself, and
        /// duplicate inputs never grow the arena.
        #[test]
        fn intern_resolve_round_trip(xs in prop::collection::vec(0i64..1000, 0..60)) {
            let mut arena = Interner::new();
            for &x in &xs {
                let id = arena.intern(x);
                prop_assert_eq!(arena.resolve(id), &x);
            }
            let distinct: std::collections::HashSet<i64> = xs.iter().copied().collect();
            prop_assert_eq!(arena.len(), distinct.len());
        }
    }
}
