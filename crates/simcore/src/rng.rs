//! Labelled RNG fan-out.
//!
//! A single experiment seed is expanded into independent per-subsystem
//! streams by hashing `(seed, label)` with SplitMix64. This keeps component
//! behaviour stable under refactoring: adding draws to one subsystem does not
//! perturb another subsystem's stream.

use rand::rngs::SmallRng;
use rand::SeedableRng;

/// SplitMix64 step: the standard 64-bit finalizer used to seed other PRNGs.
#[inline]
pub fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Hash an arbitrary byte label into a 64-bit value (FNV-1a, then mixed).
#[inline]
pub fn hash_label(label: &str) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in label.as_bytes() {
        h ^= *b as u64;
        h = h.wrapping_mul(0x0100_0000_01B3);
    }
    let mut s = h;
    splitmix64(&mut s)
}

/// Deterministic factory of independent RNG streams.
///
/// ```
/// use simcore::rng::RngFactory;
/// use rand::Rng;
///
/// let rngs = RngFactory::new(42);
/// let a: u64 = rngs.stream("telescope").random();
/// let b: u64 = rngs.stream("telescope").random();
/// assert_eq!(a, b, "same seed + label → same stream");
/// assert_ne!(a, rngs.stream("openintel").random::<u64>());
/// ```
#[derive(Clone, Copy, Debug)]
pub struct RngFactory {
    seed: u64,
}

impl RngFactory {
    pub fn new(seed: u64) -> RngFactory {
        RngFactory { seed }
    }

    /// The experiment master seed.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// An RNG for the subsystem named `label`.
    pub fn stream(&self, label: &str) -> SmallRng {
        let mut s = self.seed ^ hash_label(label);
        SmallRng::seed_from_u64(splitmix64(&mut s))
    }

    /// An RNG for the `idx`-th entity of the subsystem named `label`
    /// (e.g. per-attack or per-domain streams).
    pub fn stream_indexed(&self, label: &str, idx: u64) -> SmallRng {
        let mut s = self.seed ^ hash_label(label) ^ idx.wrapping_mul(0x9E37_79B9_7F4A_7C15);
        SmallRng::seed_from_u64(splitmix64(&mut s))
    }

    /// A sub-factory whose streams are all independent of this factory's
    /// direct streams (useful for nested components).
    pub fn fork(&self, label: &str) -> RngFactory {
        let mut s = self.seed ^ hash_label(label) ^ 0xA076_1D64_78BD_642F;
        RngFactory { seed: splitmix64(&mut s) }
    }

    /// A sub-factory for the `idx`-th shard/worker of the component named
    /// `label`. The parallel execution layer derives one factory per shard
    /// from this so that no RNG state is ever shared across threads and a
    /// shard's stream depends only on `(seed, label, idx)` — never on which
    /// worker thread picks the shard up or in what order.
    pub fn fork_indexed(&self, label: &str, idx: u64) -> RngFactory {
        let mut s = self.seed
            ^ hash_label(label)
            ^ idx.wrapping_mul(0x9E37_79B9_7F4A_7C15)
            ^ 0xE703_7ED1_A0B4_28DB;
        RngFactory { seed: splitmix64(&mut s) }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;

    #[test]
    fn same_label_same_stream() {
        let f = RngFactory::new(42);
        let a: Vec<u64> = f.stream("telescope").random_iter().take(8).collect();
        let b: Vec<u64> = f.stream("telescope").random_iter().take(8).collect();
        assert_eq!(a, b);
    }

    #[test]
    fn different_labels_differ() {
        let f = RngFactory::new(42);
        let a: u64 = f.stream("telescope").random();
        let b: u64 = f.stream("openintel").random();
        assert_ne!(a, b);
    }

    #[test]
    fn different_seeds_differ() {
        let a: u64 = RngFactory::new(1).stream("x").random();
        let b: u64 = RngFactory::new(2).stream("x").random();
        assert_ne!(a, b);
    }

    #[test]
    fn indexed_streams_are_independent() {
        let f = RngFactory::new(7);
        let a: u64 = f.stream_indexed("attack", 0).random();
        let b: u64 = f.stream_indexed("attack", 1).random();
        assert_ne!(a, b);
        let a2: u64 = f.stream_indexed("attack", 0).random();
        assert_eq!(a, a2);
    }

    #[test]
    fn fork_is_stable_and_distinct() {
        let f = RngFactory::new(9);
        let g = f.fork("dns");
        let g2 = f.fork("dns");
        assert_eq!(g.seed(), g2.seed());
        let direct: u64 = f.stream("dns").random();
        let forked: u64 = g.stream("dns").random();
        assert_ne!(direct, forked);
    }

    #[test]
    fn fork_indexed_streams_are_stable_and_distinct() {
        let f = RngFactory::new(9);
        let s0 = f.fork_indexed("shard", 0);
        let s1 = f.fork_indexed("shard", 1);
        assert_ne!(s0.seed(), s1.seed());
        assert_eq!(s0.seed(), f.fork_indexed("shard", 0).seed());
        // Independent of the un-indexed fork and of direct streams.
        assert_ne!(s0.seed(), f.fork("shard").seed());
        let direct: u64 = f.stream("shard").random();
        let sharded: u64 = s0.stream("shard").random();
        assert_ne!(direct, sharded);
    }

    #[test]
    fn splitmix_known_values() {
        // Reference values from the SplitMix64 paper/reference implementation
        // with state starting at 0.
        let mut s = 0u64;
        assert_eq!(splitmix64(&mut s), 0xE220_A839_7B1D_CDAF);
        assert_eq!(splitmix64(&mut s), 0x6E78_9E6A_A1B9_65F4);
    }

    #[test]
    fn label_hash_spreads() {
        let mut values = std::collections::HashSet::new();
        for i in 0..1000 {
            values.insert(hash_label(&format!("label-{i}")));
        }
        assert_eq!(values.len(), 1000);
    }
}
