//! Statistical distributions for workload synthesis.
//!
//! Implemented from scratch on top of `rand`'s uniform source so the
//! workspace stays within its small approved dependency set (no `rand_distr`).
//! Each sampler is deterministic given the RNG stream.

use rand::Rng;

/// Sample from an exponential distribution with the given rate `lambda`
/// (mean `1/lambda`), via inverse-CDF.
pub fn exponential<R: Rng + ?Sized>(rng: &mut R, lambda: f64) -> f64 {
    assert!(lambda > 0.0, "lambda must be positive");
    // Avoid ln(0): map the open interval (0, 1].
    let u: f64 = 1.0 - rng.random::<f64>();
    -u.ln() / lambda
}

/// Sample a standard normal via the Box–Muller transform.
pub fn standard_normal<R: Rng + ?Sized>(rng: &mut R) -> f64 {
    let u1: f64 = 1.0 - rng.random::<f64>(); // (0, 1]
    let u2: f64 = rng.random();
    (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos()
}

/// Sample a normal with mean `mu` and standard deviation `sigma`.
pub fn normal<R: Rng + ?Sized>(rng: &mut R, mu: f64, sigma: f64) -> f64 {
    assert!(sigma >= 0.0);
    mu + sigma * standard_normal(rng)
}

/// Sample a log-normal: `exp(N(mu, sigma))`. `mu`/`sigma` are the parameters
/// of the underlying normal (natural-log scale).
pub fn log_normal<R: Rng + ?Sized>(rng: &mut R, mu: f64, sigma: f64) -> f64 {
    normal(rng, mu, sigma).exp()
}

/// Sample a Pareto (type I) with scale `x_min > 0` and shape `alpha > 0`.
pub fn pareto<R: Rng + ?Sized>(rng: &mut R, x_min: f64, alpha: f64) -> f64 {
    assert!(x_min > 0.0 && alpha > 0.0);
    let u: f64 = 1.0 - rng.random::<f64>(); // (0, 1]
    x_min / u.powf(1.0 / alpha)
}

/// Sample a Poisson-distributed count with mean `lambda`.
///
/// Uses Knuth's product method for small `lambda` and a normal approximation
/// (with continuity correction, clamped at zero) for large `lambda`, which is
/// ample for traffic-volume synthesis.
pub fn poisson<R: Rng + ?Sized>(rng: &mut R, lambda: f64) -> u64 {
    assert!(lambda >= 0.0, "lambda must be non-negative");
    if lambda == 0.0 {
        return 0;
    }
    if lambda < 30.0 {
        let l = (-lambda).exp();
        let mut k = 0u64;
        let mut p = 1.0f64;
        loop {
            p *= rng.random::<f64>();
            if p <= l {
                return k;
            }
            k += 1;
        }
    } else {
        let x = normal(rng, lambda, lambda.sqrt());
        if x < 0.5 {
            0
        } else {
            (x + 0.5) as u64
        }
    }
}

/// Sample a Binomial(n, p) count.
///
/// Exact Bernoulli summation for small `n`, Poisson approximation for small
/// `p`, normal approximation otherwise. Used to thin attack backscatter into
/// the telescope's 1/341 slice of the address space.
pub fn binomial<R: Rng + ?Sized>(rng: &mut R, n: u64, p: f64) -> u64 {
    assert!((0.0..=1.0).contains(&p), "p must be a probability, got {p}");
    if n == 0 || p == 0.0 {
        return 0;
    }
    if p == 1.0 {
        return n;
    }
    // Work with the smaller tail for accuracy.
    if p > 0.5 {
        return n - binomial(rng, n, 1.0 - p);
    }
    let mean = n as f64 * p;
    if n <= 64 {
        let mut k = 0;
        for _ in 0..n {
            if rng.random::<f64>() < p {
                k += 1;
            }
        }
        k
    } else if mean < 30.0 {
        // Poisson approximation; clamp to n.
        poisson(rng, mean).min(n)
    } else {
        let var = mean * (1.0 - p);
        let x = normal(rng, mean, var.sqrt());
        if x < 0.5 {
            0
        } else {
            ((x + 0.5) as u64).min(n)
        }
    }
}

/// A Zipf sampler over ranks `1..=n` with exponent `s`, using the
/// precomputed-CDF + binary search method (exact, O(log n) per draw).
#[derive(Clone, Debug)]
pub struct Zipf {
    cdf: Vec<f64>,
}

impl Zipf {
    pub fn new(n: usize, s: f64) -> Zipf {
        assert!(n > 0, "Zipf support must be non-empty");
        assert!(s >= 0.0, "Zipf exponent must be non-negative");
        let mut cdf = Vec::with_capacity(n);
        let mut acc = 0.0;
        for k in 1..=n {
            acc += 1.0 / (k as f64).powf(s);
            cdf.push(acc);
        }
        let total = acc;
        for v in &mut cdf {
            *v /= total;
        }
        Zipf { cdf }
    }

    pub fn len(&self) -> usize {
        self.cdf.len()
    }

    pub fn is_empty(&self) -> bool {
        self.cdf.is_empty()
    }

    /// Sample a 1-based rank.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> usize {
        let u: f64 = rng.random();
        match self.cdf.binary_search_by(|c| c.total_cmp(&u)) {
            Ok(i) => i + 1,
            Err(i) => (i + 1).min(self.cdf.len()),
        }
    }

    /// Probability mass of a 1-based rank.
    pub fn pmf(&self, rank: usize) -> f64 {
        assert!(rank >= 1 && rank <= self.cdf.len());
        if rank == 1 {
            self.cdf[0]
        } else {
            self.cdf[rank - 1] - self.cdf[rank - 2]
        }
    }
}

/// Weighted categorical sampling in O(1) per draw via Walker's alias method.
#[derive(Clone, Debug)]
pub struct Categorical {
    prob: Vec<f64>,
    alias: Vec<usize>,
}

impl Categorical {
    /// Build from non-negative weights (not necessarily normalized).
    /// Panics if all weights are zero.
    pub fn new(weights: &[f64]) -> Categorical {
        assert!(!weights.is_empty(), "need at least one weight");
        let total: f64 = weights.iter().sum();
        assert!(
            total > 0.0 && weights.iter().all(|w| *w >= 0.0 && w.is_finite()),
            "weights must be non-negative, finite, and not all zero"
        );
        let n = weights.len();
        let mut prob = vec![0.0; n];
        let mut alias = vec![0usize; n];
        let mut scaled: Vec<f64> = weights.iter().map(|w| w * n as f64 / total).collect();
        let mut small: Vec<usize> = Vec::new();
        let mut large: Vec<usize> = Vec::new();
        for (i, &p) in scaled.iter().enumerate() {
            if p < 1.0 {
                small.push(i)
            } else {
                large.push(i)
            }
        }
        while !small.is_empty() && !large.is_empty() {
            let s = small.pop().unwrap();
            let l = *large.last().unwrap();
            prob[s] = scaled[s];
            alias[s] = l;
            scaled[l] = (scaled[l] + scaled[s]) - 1.0;
            if scaled[l] < 1.0 {
                large.pop();
                small.push(l);
            }
        }
        for i in large {
            prob[i] = 1.0;
        }
        for i in small {
            prob[i] = 1.0;
        }
        Categorical { prob, alias }
    }

    pub fn len(&self) -> usize {
        self.prob.len()
    }

    pub fn is_empty(&self) -> bool {
        self.prob.is_empty()
    }

    /// Sample a 0-based category index.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> usize {
        let i = rng.random_range(0..self.prob.len());
        if rng.random::<f64>() < self.prob[i] {
            i
        } else {
            self.alias[i]
        }
    }
}

/// A two-component mixture of log-normals, used for the paper's bimodal
/// attack durations (modes ≈15 min and ≈1 h, §6.5) and bimodal telescope
/// intensities (modes ≈50 and ≈6000 ppm, §6.4).
#[derive(Clone, Copy, Debug)]
pub struct BimodalLogNormal {
    /// Probability of drawing from the first component.
    pub w1: f64,
    pub mu1: f64,
    pub sigma1: f64,
    pub mu2: f64,
    pub sigma2: f64,
}

impl BimodalLogNormal {
    /// Build from the two target modes (the distribution peaks) and per-mode
    /// log-scale spreads.
    pub fn from_modes(w1: f64, mode1: f64, sigma1: f64, mode2: f64, sigma2: f64) -> Self {
        assert!((0.0..=1.0).contains(&w1));
        assert!(mode1 > 0.0 && mode2 > 0.0);
        // For LogNormal(mu, sigma), the mode is exp(mu - sigma^2).
        BimodalLogNormal {
            w1,
            mu1: mode1.ln() + sigma1 * sigma1,
            sigma1,
            mu2: mode2.ln() + sigma2 * sigma2,
            sigma2,
        }
    }

    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
        if rng.random::<f64>() < self.w1 {
            log_normal(rng, self.mu1, self.sigma1)
        } else {
            log_normal(rng, self.mu2, self.sigma2)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    fn rng() -> SmallRng {
        SmallRng::seed_from_u64(0x0D15_EA5E)
    }

    fn mean_of(mut f: impl FnMut(&mut SmallRng) -> f64, n: usize) -> f64 {
        let mut r = rng();
        (0..n).map(|_| f(&mut r)).sum::<f64>() / n as f64
    }

    #[test]
    fn exponential_mean() {
        let m = mean_of(|r| exponential(r, 0.5), 200_000);
        assert!((m - 2.0).abs() < 0.05, "mean {m}");
    }

    #[test]
    fn normal_moments() {
        let mut r = rng();
        let xs: Vec<f64> = (0..200_000).map(|_| normal(&mut r, 3.0, 2.0)).collect();
        let mean = xs.iter().sum::<f64>() / xs.len() as f64;
        let var = xs.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / xs.len() as f64;
        assert!((mean - 3.0).abs() < 0.05, "mean {mean}");
        assert!((var - 4.0).abs() < 0.15, "var {var}");
    }

    #[test]
    fn log_normal_median() {
        // Median of LogNormal(mu, sigma) is exp(mu).
        let mut r = rng();
        let mut xs: Vec<f64> = (0..100_001).map(|_| log_normal(&mut r, 1.0, 0.7)).collect();
        xs.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let median = xs[xs.len() / 2];
        assert!((median - 1.0f64.exp()).abs() < 0.1, "median {median}");
    }

    #[test]
    fn pareto_lower_bound_and_median() {
        let mut r = rng();
        let xs: Vec<f64> = (0..50_000).map(|_| pareto(&mut r, 2.0, 1.5)).collect();
        assert!(xs.iter().all(|x| *x >= 2.0));
        let mut sorted = xs.clone();
        sorted.sort_by(|a, b| a.partial_cmp(b).unwrap());
        // Median of Pareto is x_min * 2^(1/alpha).
        let expect = 2.0 * 2f64.powf(1.0 / 1.5);
        let median = sorted[sorted.len() / 2];
        assert!((median - expect).abs() / expect < 0.05, "median {median} vs {expect}");
    }

    #[test]
    fn poisson_small_lambda_mean() {
        let m = mean_of(|r| poisson(r, 3.5) as f64, 100_000);
        assert!((m - 3.5).abs() < 0.05, "mean {m}");
    }

    #[test]
    fn poisson_large_lambda_mean() {
        let m = mean_of(|r| poisson(r, 500.0) as f64, 50_000);
        assert!((m - 500.0).abs() < 1.0, "mean {m}");
    }

    #[test]
    fn poisson_zero() {
        let mut r = rng();
        assert_eq!(poisson(&mut r, 0.0), 0);
    }

    #[test]
    fn binomial_exact_small_n() {
        let m = mean_of(|r| binomial(r, 40, 0.25) as f64, 100_000);
        assert!((m - 10.0).abs() < 0.1, "mean {m}");
    }

    #[test]
    fn binomial_thinning_regime() {
        // The telescope regime: huge n, tiny p.
        let n = 10_000_000u64;
        let p = 1.0 / 341.0;
        let m = mean_of(|r| binomial(r, n, p) as f64, 5_000);
        let expect = n as f64 * p;
        assert!((m - expect).abs() / expect < 0.01, "mean {m} vs {expect}");
    }

    #[test]
    fn binomial_edge_cases() {
        let mut r = rng();
        assert_eq!(binomial(&mut r, 0, 0.3), 0);
        assert_eq!(binomial(&mut r, 100, 0.0), 0);
        assert_eq!(binomial(&mut r, 100, 1.0), 100);
        for _ in 0..1000 {
            let k = binomial(&mut r, 50, 0.9);
            assert!(k <= 50);
        }
    }

    #[test]
    fn zipf_rank1_dominates() {
        let z = Zipf::new(1000, 1.1);
        let mut r = rng();
        let mut counts = vec![0usize; 1001];
        for _ in 0..100_000 {
            counts[z.sample(&mut r)] += 1;
        }
        assert!(counts[1] > counts[2]);
        assert!(counts[2] > counts[10]);
        // PMF matches empirical frequency for the head.
        let emp = counts[1] as f64 / 100_000.0;
        assert!((emp - z.pmf(1)).abs() < 0.01, "emp {emp} pmf {}", z.pmf(1));
    }

    #[test]
    fn zipf_pmf_sums_to_one() {
        let z = Zipf::new(500, 0.9);
        let total: f64 = (1..=500).map(|k| z.pmf(k)).sum();
        assert!((total - 1.0).abs() < 1e-9);
    }

    #[test]
    fn categorical_frequencies_match_weights() {
        let c = Categorical::new(&[1.0, 2.0, 3.0, 4.0]);
        let mut r = rng();
        let mut counts = [0usize; 4];
        let n = 200_000;
        for _ in 0..n {
            counts[c.sample(&mut r)] += 1;
        }
        for (i, &cnt) in counts.iter().enumerate() {
            let expect = (i + 1) as f64 / 10.0;
            let got = cnt as f64 / n as f64;
            assert!((got - expect).abs() < 0.01, "cat {i}: {got} vs {expect}");
        }
    }

    #[test]
    fn categorical_single_and_zero_weights() {
        let c = Categorical::new(&[5.0]);
        let mut r = rng();
        for _ in 0..100 {
            assert_eq!(c.sample(&mut r), 0);
        }
        let c = Categorical::new(&[0.0, 1.0, 0.0]);
        for _ in 0..100 {
            assert_eq!(c.sample(&mut r), 1);
        }
    }

    #[test]
    #[should_panic]
    fn categorical_all_zero_panics() {
        Categorical::new(&[0.0, 0.0]);
    }

    #[test]
    fn bimodal_modes_visible() {
        // Paper §6.5: duration modes at 15 min and 60 min.
        let d = BimodalLogNormal::from_modes(0.55, 15.0, 0.35, 60.0, 0.35);
        let mut r = rng();
        let mut low = 0;
        let mut high = 0;
        for _ in 0..50_000 {
            let x = d.sample(&mut r);
            assert!(x > 0.0);
            if (10.0..22.0).contains(&x) {
                low += 1;
            }
            if (45.0..80.0).contains(&x) {
                high += 1;
            }
        }
        // Both modes carry substantial mass.
        assert!(low > 10_000, "low mode count {low}");
        assert!(high > 8_000, "high mode count {high}");
    }
}
