//! Streaming statistics used by the analysis pipeline: Welford moments,
//! Pearson correlation, exact quantiles over collected samples, and
//! logarithmically-binned histograms for the paper's scatter/heat figures.

/// Streaming mean/variance/min/max via Welford's algorithm.
#[derive(Clone, Copy, Debug)]
pub struct Moments {
    n: u64,
    mean: f64,
    m2: f64,
    min: f64,
    max: f64,
}

impl Default for Moments {
    fn default() -> Moments {
        Moments::new()
    }
}

impl Moments {
    pub fn new() -> Moments {
        Moments { n: 0, mean: 0.0, m2: 0.0, min: f64::INFINITY, max: f64::NEG_INFINITY }
    }

    pub fn push(&mut self, x: f64) {
        self.n += 1;
        let delta = x - self.mean;
        self.mean += delta / self.n as f64;
        self.m2 += delta * (x - self.mean);
        self.min = self.min.min(x);
        self.max = self.max.max(x);
    }

    pub fn merge(&mut self, other: &Moments) {
        if other.n == 0 {
            return;
        }
        if self.n == 0 {
            *self = *other;
            return;
        }
        let n = (self.n + other.n) as f64;
        let delta = other.mean - self.mean;
        self.m2 += other.m2 + delta * delta * (self.n as f64 * other.n as f64) / n;
        self.mean += delta * other.n as f64 / n;
        self.n += other.n;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }

    pub fn count(&self) -> u64 {
        self.n
    }
    pub fn mean(&self) -> f64 {
        if self.n == 0 {
            f64::NAN
        } else {
            self.mean
        }
    }
    /// Population variance.
    pub fn variance(&self) -> f64 {
        if self.n == 0 {
            f64::NAN
        } else {
            self.m2 / self.n as f64
        }
    }
    pub fn std_dev(&self) -> f64 {
        self.variance().sqrt()
    }
    pub fn min(&self) -> f64 {
        if self.n == 0 {
            f64::NAN
        } else {
            self.min
        }
    }
    pub fn max(&self) -> f64 {
        if self.n == 0 {
            f64::NAN
        } else {
            self.max
        }
    }
    pub fn sum(&self) -> f64 {
        self.mean() * self.n as f64
    }
}

/// Pearson correlation coefficient of paired samples. Returns `None` when
/// fewer than two pairs or either variable is constant.
pub fn pearson(xs: &[f64], ys: &[f64]) -> Option<f64> {
    assert_eq!(xs.len(), ys.len(), "pearson requires paired samples");
    let n = xs.len();
    if n < 2 {
        return None;
    }
    let mx = xs.iter().sum::<f64>() / n as f64;
    let my = ys.iter().sum::<f64>() / n as f64;
    let mut sxy = 0.0;
    let mut sxx = 0.0;
    let mut syy = 0.0;
    for (x, y) in xs.iter().zip(ys) {
        let dx = x - mx;
        let dy = y - my;
        sxy += dx * dy;
        sxx += dx * dx;
        syy += dy * dy;
    }
    if sxx == 0.0 || syy == 0.0 {
        return None;
    }
    Some(sxy / (sxx * syy).sqrt())
}

/// Spearman rank correlation (Pearson over ranks, average ranks for ties).
pub fn spearman(xs: &[f64], ys: &[f64]) -> Option<f64> {
    let rx = ranks(xs);
    let ry = ranks(ys);
    pearson(&rx, &ry)
}

fn ranks(xs: &[f64]) -> Vec<f64> {
    let mut idx: Vec<usize> = (0..xs.len()).collect();
    idx.sort_by(|&a, &b| xs[a].total_cmp(&xs[b]));
    let mut out = vec![0.0; xs.len()];
    let mut i = 0;
    while i < idx.len() {
        let mut j = i;
        while j + 1 < idx.len() && xs[idx[j + 1]] == xs[idx[i]] {
            j += 1;
        }
        let avg = (i + j) as f64 / 2.0 + 1.0;
        for &k in &idx[i..=j] {
            out[k] = avg;
        }
        i = j + 1;
    }
    out
}

/// Exact quantile of a sample (linear interpolation between order
/// statistics). `q` in `[0, 1]`. Returns `None` for an empty sample.
pub fn quantile(samples: &mut [f64], q: f64) -> Option<f64> {
    assert!((0.0..=1.0).contains(&q));
    if samples.is_empty() {
        return None;
    }
    samples.sort_by(|a, b| a.total_cmp(b));
    let pos = q * (samples.len() - 1) as f64;
    let lo = pos.floor() as usize;
    let hi = pos.ceil() as usize;
    let frac = pos - lo as f64;
    Some(samples[lo] * (1.0 - frac) + samples[hi] * frac)
}

/// Complementary CDF of a sample: sorted `(value, fraction of samples ≥
/// value)` points, one per distinct value — the standard rendering for
/// the paper's heavy-tailed scatter figures.
pub fn ccdf(samples: &[f64]) -> Vec<(f64, f64)> {
    if samples.is_empty() {
        return Vec::new();
    }
    let mut xs: Vec<f64> = samples.to_vec();
    xs.sort_by(|a, b| a.total_cmp(b));
    let n = xs.len() as f64;
    let mut out: Vec<(f64, f64)> = Vec::new();
    let mut i = 0;
    while i < xs.len() {
        let v = xs[i];
        // Fraction of samples ≥ v.
        out.push((v, (xs.len() - i) as f64 / n));
        while i < xs.len() && xs[i] == v {
            i += 1;
        }
    }
    out
}

/// A histogram with logarithmically spaced bins over `[lo, hi)`, plus
/// underflow/overflow bins. Used for order-of-magnitude breakdowns such as
/// "NSSets hosting 100–1K / 1K–10K / … domains".
#[derive(Clone, Debug)]
pub struct LogHistogram {
    lo: f64,
    ratio: f64,
    counts: Vec<u64>,
    underflow: u64,
    overflow: u64,
}

impl LogHistogram {
    pub fn new(lo: f64, hi: f64, bins: usize) -> LogHistogram {
        assert!(lo > 0.0 && hi > lo && bins > 0);
        LogHistogram {
            lo,
            ratio: (hi / lo).powf(1.0 / bins as f64),
            counts: vec![0; bins],
            underflow: 0,
            overflow: 0,
        }
    }

    /// Decade bins: one bin per power of ten from `10^lo_exp` to `10^hi_exp`.
    pub fn decades(lo_exp: i32, hi_exp: i32) -> LogHistogram {
        assert!(hi_exp > lo_exp);
        LogHistogram::new(10f64.powi(lo_exp), 10f64.powi(hi_exp), (hi_exp - lo_exp) as usize)
    }

    pub fn push(&mut self, x: f64) {
        if x < self.lo {
            self.underflow += 1;
            return;
        }
        let bin = ((x / self.lo).ln() / self.ratio.ln()) as usize;
        if bin >= self.counts.len() {
            self.overflow += 1;
        } else {
            self.counts[bin] += 1;
        }
    }

    /// Index of the bin `x` falls into, or `None` for under/overflow.
    pub fn bin_of(&self, x: f64) -> Option<usize> {
        if x < self.lo {
            return None;
        }
        let bin = ((x / self.lo).ln() / self.ratio.ln()) as usize;
        (bin < self.counts.len()).then_some(bin)
    }

    pub fn counts(&self) -> &[u64] {
        &self.counts
    }
    pub fn underflow(&self) -> u64 {
        self.underflow
    }
    pub fn overflow(&self) -> u64 {
        self.overflow
    }
    /// `[start, end)` of bin `i`.
    pub fn bin_bounds(&self, i: usize) -> (f64, f64) {
        (self.lo * self.ratio.powi(i as i32), self.lo * self.ratio.powi(i as i32 + 1))
    }
    pub fn total(&self) -> u64 {
        self.counts.iter().sum::<u64>() + self.underflow + self.overflow
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn moments_basic() {
        let mut m = Moments::new();
        for x in [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0] {
            m.push(x);
        }
        assert_eq!(m.count(), 8);
        assert!((m.mean() - 5.0).abs() < 1e-12);
        assert!((m.variance() - 4.0).abs() < 1e-12);
        assert_eq!(m.min(), 2.0);
        assert_eq!(m.max(), 9.0);
        assert!((m.sum() - 40.0).abs() < 1e-9);
    }

    #[test]
    fn moments_merge_matches_sequential() {
        let xs: Vec<f64> = (0..1000).map(|i| (i as f64).sin() * 10.0).collect();
        let mut whole = Moments::new();
        xs.iter().for_each(|&x| whole.push(x));
        let mut a = Moments::new();
        let mut b = Moments::new();
        xs[..300].iter().for_each(|&x| a.push(x));
        xs[300..].iter().for_each(|&x| b.push(x));
        a.merge(&b);
        assert_eq!(a.count(), whole.count());
        assert!((a.mean() - whole.mean()).abs() < 1e-9);
        assert!((a.variance() - whole.variance()).abs() < 1e-9);
    }

    #[test]
    fn moments_empty_nan() {
        let m = Moments::new();
        assert!(m.mean().is_nan());
        assert!(m.variance().is_nan());
    }

    #[test]
    fn pearson_perfect_and_inverse() {
        let xs: Vec<f64> = (0..50).map(|i| i as f64).collect();
        let ys: Vec<f64> = xs.iter().map(|x| 3.0 * x + 1.0).collect();
        assert!((pearson(&xs, &ys).unwrap() - 1.0).abs() < 1e-12);
        let neg: Vec<f64> = xs.iter().map(|x| -2.0 * x).collect();
        assert!((pearson(&xs, &neg).unwrap() + 1.0).abs() < 1e-12);
    }

    #[test]
    fn pearson_constant_is_none() {
        let xs = [1.0, 1.0, 1.0];
        let ys = [2.0, 3.0, 4.0];
        assert!(pearson(&xs, &ys).is_none());
        assert!(pearson(&[], &[]).is_none());
        assert!(pearson(&[1.0], &[2.0]).is_none());
    }

    #[test]
    fn spearman_monotone_nonlinear() {
        let xs: Vec<f64> = (1..50).map(|i| i as f64).collect();
        let ys: Vec<f64> = xs.iter().map(|x| x.exp().min(1e300)).collect();
        assert!((spearman(&xs, &ys).unwrap() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn spearman_handles_ties() {
        let xs = [1.0, 2.0, 2.0, 3.0];
        let ys = [10.0, 20.0, 20.0, 30.0];
        assert!((spearman(&xs, &ys).unwrap() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn quantile_interpolates() {
        let mut xs = vec![1.0, 2.0, 3.0, 4.0];
        assert_eq!(quantile(&mut xs, 0.0), Some(1.0));
        assert_eq!(quantile(&mut xs, 1.0), Some(4.0));
        assert_eq!(quantile(&mut xs, 0.5), Some(2.5));
        assert_eq!(quantile(&mut [], 0.5), None);
    }

    #[test]
    fn ccdf_basic() {
        let pts = ccdf(&[1.0, 2.0, 2.0, 4.0]);
        assert_eq!(pts, vec![(1.0, 1.0), (2.0, 0.75), (4.0, 0.25)]);
        assert!(ccdf(&[]).is_empty());
        // Single value.
        assert_eq!(ccdf(&[7.0]), vec![(7.0, 1.0)]);
        // Monotone non-increasing fractions.
        let pts = ccdf(&[5.0, 3.0, 8.0, 1.0, 9.0, 3.0]);
        assert!(pts.windows(2).all(|w| w[0].1 >= w[1].1 && w[0].0 < w[1].0));
    }

    #[test]
    fn log_histogram_decades() {
        let mut h = LogHistogram::decades(0, 4); // [1, 10^4), 4 bins
        for x in [0.5, 1.0, 5.0, 10.0, 99.0, 100.0, 5000.0, 10_000.0] {
            h.push(x);
        }
        assert_eq!(h.underflow(), 1); // 0.5
        assert_eq!(h.overflow(), 1); // 10_000
        assert_eq!(h.counts(), &[2, 2, 1, 1]);
        assert_eq!(h.total(), 8);
        let (lo, hi) = h.bin_bounds(1);
        assert!((lo - 10.0).abs() < 1e-9 && (hi - 100.0).abs() < 1e-9);
    }

    #[test]
    fn log_histogram_bin_of() {
        let h = LogHistogram::decades(2, 8); // 100 .. 10^8
        assert_eq!(h.bin_of(50.0), None);
        assert_eq!(h.bin_of(100.0), Some(0));
        assert_eq!(h.bin_of(999.0), Some(0));
        assert_eq!(h.bin_of(1_000.0), Some(1));
        assert_eq!(h.bin_of(10_000_000.0), Some(5));
        assert_eq!(h.bin_of(1e9), None);
    }
}
