//! Deterministic discrete-event simulation substrate for the `dnsimpact`
//! workspace.
//!
//! Everything downstream of this crate — the darknet telescope, the DNS
//! infrastructure model, the OpenINTEL-style measurement platform — runs on
//! virtual time with seeded randomness so that a whole 17-month experiment is
//! reproducible from a single `u64` seed.
//!
//! Modules:
//! - [`time`]: virtual clock, 5-minute tumbling windows, civil-calendar dates
//!   anchored at the paper's measurement epoch (2020-11-01 00:00 UTC).
//! - [`rng`]: labelled RNG fan-out so subsystems draw from independent,
//!   reproducible streams.
//! - [`dist`]: the statistical distributions the workload models need
//!   (exponential, log-normal, Pareto, Zipf, Poisson, binomial, categorical
//!   alias tables) implemented from scratch on top of `rand`'s uniform source.
//! - [`events`]: a monotonic discrete-event queue.
//! - [`stats`]: streaming moments, Pearson correlation, quantiles and
//!   log-spaced histograms used by the analysis pipeline.
//! - [`intern`]: deterministic `u32` arena interner backing the columnar
//!   (struct-of-arrays) hot path downstream.

pub mod dist;
pub mod events;
pub mod intern;
pub mod rng;
pub mod stats;
pub mod time;

pub use events::EventQueue;
pub use intern::Interner;
pub use rng::RngFactory;
pub use time::{CivilDate, Month, SimDuration, SimTime, Window, DAY, HOUR, MINUTE, WINDOW_SECS};
