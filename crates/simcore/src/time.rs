//! Virtual time.
//!
//! The simulation epoch (`SimTime::EPOCH`, i.e. `t = 0`) is pinned to
//! **2020-11-01 00:00:00 UTC**, the first instant of the paper's 17-month
//! analysis interval (November 1, 2020 – March 31, 2022). All feeds and
//! measurements are aggregated into 5-minute tumbling windows ([`Window`]),
//! the granularity shared by the RSDoS feed and the OpenINTEL aggregation.

use std::fmt;
use std::ops::{Add, AddAssign, Sub};

/// Seconds per minute.
pub const MINUTE: u64 = 60;
/// Seconds per hour.
pub const HOUR: u64 = 3_600;
/// Seconds per day.
pub const DAY: u64 = 86_400;
/// Length of one tumbling aggregation window (5 minutes), matching the
/// granularity of the RSDoS feed and the paper's NSSet aggregation (§4.1).
pub const WINDOW_SECS: u64 = 5 * MINUTE;
/// Number of 5-minute windows in a day.
pub const WINDOWS_PER_DAY: u64 = DAY / WINDOW_SECS;

/// Civil date (proleptic Gregorian) of the simulation epoch.
pub const EPOCH_DATE: CivilDate = CivilDate { year: 2020, month: 11, day: 1 };

/// An instant of virtual time, in whole seconds since the simulation epoch.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimTime(pub u64);

/// A span of virtual time, in whole seconds.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimDuration(pub u64);

/// Index of a 5-minute tumbling window since the epoch.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Window(pub u64);

impl SimTime {
    /// The start of the measurement interval: 2020-11-01 00:00:00 UTC.
    pub const EPOCH: SimTime = SimTime(0);

    /// Construct from a number of whole days plus a second-of-day offset.
    pub fn from_days(days: u64) -> SimTime {
        SimTime(days * DAY)
    }

    /// Construct from a civil date + time-of-day. Panics if the date is
    /// before the epoch.
    pub fn from_civil(date: CivilDate, hour: u32, minute: u32, second: u32) -> SimTime {
        let days = date.days_since_epoch();
        assert!(days >= 0, "date {date} precedes simulation epoch {EPOCH_DATE}");
        SimTime(days as u64 * DAY + hour as u64 * HOUR + minute as u64 * MINUTE + second as u64)
    }

    /// Whole days since the epoch.
    pub fn day(self) -> u64 {
        self.0 / DAY
    }

    /// Seconds into the current day.
    pub fn second_of_day(self) -> u64 {
        self.0 % DAY
    }

    /// The 5-minute window containing this instant.
    pub fn window(self) -> Window {
        Window(self.0 / WINDOW_SECS)
    }

    /// The civil date of this instant.
    pub fn civil(self) -> CivilDate {
        CivilDate::from_days_since_epoch(self.day() as i64)
    }

    /// The calendar month of this instant.
    pub fn month(self) -> Month {
        let c = self.civil();
        Month { year: c.year, month: c.month }
    }

    pub fn saturating_sub(self, d: SimDuration) -> SimTime {
        SimTime(self.0.saturating_sub(d.0))
    }

    /// Seconds since the epoch.
    pub fn secs(self) -> u64 {
        self.0
    }
}

impl SimDuration {
    pub const ZERO: SimDuration = SimDuration(0);

    pub fn from_secs(s: u64) -> SimDuration {
        SimDuration(s)
    }
    pub fn from_mins(m: u64) -> SimDuration {
        SimDuration(m * MINUTE)
    }
    pub fn from_hours(h: u64) -> SimDuration {
        SimDuration(h * HOUR)
    }
    pub fn from_days(d: u64) -> SimDuration {
        SimDuration(d * DAY)
    }
    pub fn secs(self) -> u64 {
        self.0
    }
    /// Number of whole 5-minute windows this span covers (rounded up).
    pub fn windows_ceil(self) -> u64 {
        self.0.div_ceil(WINDOW_SECS)
    }
    pub fn as_mins_f64(self) -> f64 {
        self.0 as f64 / MINUTE as f64
    }
}

impl Window {
    /// First instant of the window.
    pub fn start(self) -> SimTime {
        SimTime(self.0 * WINDOW_SECS)
    }
    /// One past the last instant of the window.
    pub fn end(self) -> SimTime {
        SimTime((self.0 + 1) * WINDOW_SECS)
    }
    /// Day index the window belongs to.
    pub fn day(self) -> u64 {
        self.0 / WINDOWS_PER_DAY
    }
    /// The same window index on the previous day (used for the paper's
    /// previous-day RTT baseline). Saturates at the epoch.
    pub fn previous_day(self) -> Window {
        Window(self.0.saturating_sub(WINDOWS_PER_DAY))
    }
    pub fn next(self) -> Window {
        Window(self.0 + 1)
    }
    /// Iterate windows in `[self, end)`.
    pub fn range_to(self, end: Window) -> impl Iterator<Item = Window> {
        (self.0..end.0).map(Window)
    }
}

impl Add<SimDuration> for SimTime {
    type Output = SimTime;
    fn add(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0 + rhs.0)
    }
}
impl AddAssign<SimDuration> for SimTime {
    fn add_assign(&mut self, rhs: SimDuration) {
        self.0 += rhs.0;
    }
}
impl Sub<SimTime> for SimTime {
    type Output = SimDuration;
    fn sub(self, rhs: SimTime) -> SimDuration {
        SimDuration(self.0 - rhs.0)
    }
}
impl Add<SimDuration> for SimDuration {
    type Output = SimDuration;
    fn add(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0 + rhs.0)
    }
}

impl fmt::Debug for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{self}")
    }
}
impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let c = self.civil();
        let s = self.second_of_day();
        write!(
            f,
            "{:04}-{:02}-{:02} {:02}:{:02}:{:02}",
            c.year,
            c.month,
            c.day,
            s / HOUR,
            (s % HOUR) / MINUTE,
            s % MINUTE
        )
    }
}
impl fmt::Debug for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.0.is_multiple_of(DAY) && self.0 > 0 {
            write!(f, "{}d", self.0 / DAY)
        } else if self.0.is_multiple_of(HOUR) && self.0 > 0 {
            write!(f, "{}h", self.0 / HOUR)
        } else if self.0.is_multiple_of(MINUTE) {
            write!(f, "{}m", self.0 / MINUTE)
        } else {
            write!(f, "{}s", self.0)
        }
    }
}
impl fmt::Debug for Window {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "W{}[{}]", self.0, self.start())
    }
}

/// A proleptic-Gregorian civil date.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct CivilDate {
    pub year: i32,
    /// 1-based month.
    pub month: u32,
    /// 1-based day of month.
    pub day: u32,
}

impl CivilDate {
    pub fn new(year: i32, month: u32, day: u32) -> CivilDate {
        assert!((1..=12).contains(&month), "month out of range: {month}");
        assert!(day >= 1 && day <= days_in_month(year, month), "day out of range: {day}");
        CivilDate { year, month, day }
    }

    /// Days since 1970-01-01 (can be negative), via the classic civil
    /// calendar algorithm (era/year-of-era decomposition).
    pub fn days_since_unix(self) -> i64 {
        let y = self.year as i64 - if self.month <= 2 { 1 } else { 0 };
        let era = if y >= 0 { y } else { y - 399 } / 400;
        let yoe = y - era * 400; // [0, 399]
        let m = self.month as i64;
        let d = self.day as i64;
        let doy = (153 * (m + if m > 2 { -3 } else { 9 }) + 2) / 5 + d - 1; // [0, 365]
        let doe = yoe * 365 + yoe / 4 - yoe / 100 + doy; // [0, 146096]
        era * 146_097 + doe - 719_468
    }

    /// Days since the simulation epoch (2020-11-01); negative if earlier.
    pub fn days_since_epoch(self) -> i64 {
        self.days_since_unix() - EPOCH_DATE.days_since_unix()
    }

    /// Inverse of [`CivilDate::days_since_epoch`].
    pub fn from_days_since_epoch(days: i64) -> CivilDate {
        Self::from_days_since_unix(days + EPOCH_DATE.days_since_unix())
    }

    /// Inverse of [`CivilDate::days_since_unix`].
    pub fn from_days_since_unix(z: i64) -> CivilDate {
        let z = z + 719_468;
        let era = if z >= 0 { z } else { z - 146_096 } / 146_097;
        let doe = z - era * 146_097; // [0, 146096]
        let yoe = (doe - doe / 1460 + doe / 36_524 - doe / 146_096) / 365; // [0, 399]
        let y = yoe + era * 400;
        let doy = doe - (365 * yoe + yoe / 4 - yoe / 100); // [0, 365]
        let mp = (5 * doy + 2) / 153; // [0, 11]
        let d = (doy - (153 * mp + 2) / 5 + 1) as u32; // [1, 31]
        let m = if mp < 10 { mp + 3 } else { mp - 9 } as u32; // [1, 12]
        CivilDate { year: (y + if m <= 2 { 1 } else { 0 }) as i32, month: m, day: d }
    }
}

impl fmt::Display for CivilDate {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:04}-{:02}-{:02}", self.year, self.month, self.day)
    }
}
impl fmt::Debug for CivilDate {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{self}")
    }
}

/// A calendar month, used to bucket the longitudinal analysis (Table 3,
/// Figure 5 of the paper).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Month {
    pub year: i32,
    /// 1-based month.
    pub month: u32,
}

impl Month {
    pub fn new(year: i32, month: u32) -> Month {
        assert!((1..=12).contains(&month));
        Month { year, month }
    }

    /// First instant of this month as simulation time. Panics before epoch.
    pub fn start(self) -> SimTime {
        SimTime::from_civil(CivilDate::new(self.year, self.month, 1), 0, 0, 0)
    }

    /// First instant of the following month.
    pub fn end(self) -> SimTime {
        self.succ().start()
    }

    pub fn succ(self) -> Month {
        if self.month == 12 {
            Month { year: self.year + 1, month: 1 }
        } else {
            Month { year: self.year, month: self.month + 1 }
        }
    }

    /// Months `[self, last]` inclusive.
    pub fn through(self, last: Month) -> Vec<Month> {
        let mut out = Vec::new();
        let mut m = self;
        while m <= last {
            out.push(m);
            m = m.succ();
        }
        out
    }

    /// The 17 months of the paper's analysis interval.
    pub fn paper_interval() -> Vec<Month> {
        Month::new(2020, 11).through(Month::new(2022, 3))
    }
}

impl fmt::Display for Month {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:04}-{:02}", self.year, self.month)
    }
}
impl fmt::Debug for Month {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{self}")
    }
}

/// Number of days in a civil month.
pub fn days_in_month(year: i32, month: u32) -> u32 {
    match month {
        1 | 3 | 5 | 7 | 8 | 10 | 12 => 31,
        4 | 6 | 9 | 11 => 30,
        2 => {
            if (year % 4 == 0 && year % 100 != 0) || year % 400 == 0 {
                29
            } else {
                28
            }
        }
        _ => panic!("invalid month {month}"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn epoch_is_2020_11_01() {
        assert_eq!(SimTime::EPOCH.civil(), CivilDate::new(2020, 11, 1));
        assert_eq!(format!("{}", SimTime::EPOCH), "2020-11-01 00:00:00");
    }

    #[test]
    fn civil_roundtrip_across_interval() {
        for d in 0..600 {
            let c = CivilDate::from_days_since_epoch(d);
            assert_eq!(c.days_since_epoch(), d, "roundtrip failed at day {d} ({c})");
        }
    }

    #[test]
    fn unix_anchor() {
        assert_eq!(CivilDate::new(1970, 1, 1).days_since_unix(), 0);
        assert_eq!(CivilDate::new(1970, 1, 2).days_since_unix(), 1);
        assert_eq!(CivilDate::new(1969, 12, 31).days_since_unix(), -1);
        // 2020-11-01 is a known anchor: 18567 days after the Unix epoch.
        assert_eq!(EPOCH_DATE.days_since_unix(), 18_567);
    }

    #[test]
    fn leap_year_2020_and_2022() {
        assert_eq!(days_in_month(2020, 2), 29);
        assert_eq!(days_in_month(2021, 2), 28);
        assert_eq!(days_in_month(2022, 2), 28);
        assert_eq!(days_in_month(2000, 2), 29);
        assert_eq!(days_in_month(1900, 2), 28);
    }

    #[test]
    fn windows_tile_days() {
        assert_eq!(WINDOWS_PER_DAY, 288);
        let t = SimTime::from_civil(CivilDate::new(2020, 12, 1), 0, 0, 0);
        assert_eq!(t.window().start(), t);
        assert_eq!(t.window().day(), t.day());
    }

    #[test]
    fn previous_day_window_shifts_288() {
        let w = SimTime::from_civil(CivilDate::new(2021, 3, 15), 13, 7, 0).window();
        let p = w.previous_day();
        assert_eq!(w.0 - p.0, 288);
        assert_eq!(p.start().second_of_day(), w.start().second_of_day());
        assert_eq!(p.start().civil(), CivilDate::new(2021, 3, 14));
    }

    #[test]
    fn paper_interval_has_17_months() {
        let months = Month::paper_interval();
        assert_eq!(months.len(), 17);
        assert_eq!(months[0], Month::new(2020, 11));
        assert_eq!(*months.last().unwrap(), Month::new(2022, 3));
    }

    #[test]
    fn month_bounds() {
        let m = Month::new(2021, 2);
        assert_eq!(m.start().civil(), CivilDate::new(2021, 2, 1));
        assert_eq!(m.end().civil(), CivilDate::new(2021, 3, 1));
        assert_eq!((m.end() - m.start()).secs(), 28 * DAY);
    }

    #[test]
    fn from_civil_time_of_day() {
        let t = SimTime::from_civil(CivilDate::new(2020, 11, 30), 22, 0, 0);
        assert_eq!(format!("{t}"), "2020-11-30 22:00:00");
        assert_eq!(t.second_of_day(), 22 * HOUR);
    }

    #[test]
    fn duration_display() {
        assert_eq!(format!("{:?}", SimDuration::from_days(2)), "2d");
        assert_eq!(format!("{:?}", SimDuration::from_hours(3)), "3h");
        assert_eq!(format!("{:?}", SimDuration::from_mins(15)), "15m");
        assert_eq!(format!("{:?}", SimDuration::from_secs(61)), "61s");
    }

    #[test]
    fn windows_ceil() {
        assert_eq!(SimDuration::from_secs(1).windows_ceil(), 1);
        assert_eq!(SimDuration::from_mins(5).windows_ceil(), 1);
        assert_eq!(SimDuration::from_mins(6).windows_ceil(), 2);
        assert_eq!(SimDuration::from_hours(1).windows_ceil(), 12);
    }

    #[test]
    #[should_panic]
    fn from_civil_before_epoch_panics() {
        SimTime::from_civil(CivilDate::new(2020, 10, 31), 0, 0, 0);
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        /// Civil-date conversion roundtrips over four millennia.
        #[test]
        fn civil_roundtrip_wide(z in -400_000i64..600_000) {
            let c = CivilDate::from_days_since_unix(z);
            prop_assert_eq!(c.days_since_unix(), z);
            prop_assert!((1..=12).contains(&c.month));
            prop_assert!(c.day >= 1 && c.day <= days_in_month(c.year, c.month));
        }

        /// Window/day/second decomposition is consistent for any instant.
        #[test]
        fn window_day_consistency(t in 0u64..(600 * DAY)) {
            let st = SimTime(t);
            prop_assert_eq!(st.window().day(), st.day());
            prop_assert!(st.window().start() <= st);
            prop_assert!(st < st.window().end());
            prop_assert_eq!(st.day() * DAY + st.second_of_day(), t);
            // Month bounds contain the instant.
            let m = st.month();
            prop_assert!(m.start() <= st && st < m.end());
        }

        /// Consecutive months tile time with no gaps.
        #[test]
        fn months_tile(y in 2020i32..2026, m in 1u32..=12) {
            let month = Month::new(y, m);
            if month >= Month::new(2020, 11) {
                prop_assert_eq!(month.end(), month.succ().start());
            }
        }
    }
}
