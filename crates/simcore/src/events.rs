//! A minimal discrete-event queue.
//!
//! Events are ordered by [`SimTime`], ties broken by insertion order so
//! simulation runs are fully deterministic.

use crate::time::SimTime;
use std::cmp::Ordering;
use std::collections::BinaryHeap;

struct Entry<E> {
    at: SimTime,
    seq: u64,
    event: E,
}

impl<E> PartialEq for Entry<E> {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}
impl<E> Eq for Entry<E> {}
impl<E> PartialOrd for Entry<E> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl<E> Ord for Entry<E> {
    fn cmp(&self, other: &Self) -> Ordering {
        // BinaryHeap is a max-heap; invert for earliest-first ordering.
        other.at.cmp(&self.at).then(other.seq.cmp(&self.seq))
    }
}

/// Earliest-first event queue with deterministic FIFO tie-breaking.
pub struct EventQueue<E> {
    heap: BinaryHeap<Entry<E>>,
    seq: u64,
    now: SimTime,
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> EventQueue<E> {
    pub fn new() -> EventQueue<E> {
        EventQueue { heap: BinaryHeap::new(), seq: 0, now: SimTime::EPOCH }
    }

    /// Current virtual time: the timestamp of the last popped event.
    pub fn now(&self) -> SimTime {
        self.now
    }

    pub fn len(&self) -> usize {
        self.heap.len()
    }

    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// Schedule `event` at absolute time `at`. Panics if `at` is in the past
    /// (strictly before the last popped event's time).
    pub fn schedule(&mut self, at: SimTime, event: E) {
        assert!(at >= self.now, "cannot schedule into the past: {at:?} < {:?}", self.now);
        self.heap.push(Entry { at, seq: self.seq, event });
        self.seq += 1;
    }

    /// Pop the earliest event, advancing the virtual clock to it.
    pub fn pop(&mut self) -> Option<(SimTime, E)> {
        let e = self.heap.pop()?;
        self.now = e.at;
        Some((e.at, e.event))
    }

    /// Timestamp of the next pending event, if any.
    pub fn peek_time(&self) -> Option<SimTime> {
        self.heap.peek().map(|e| e.at)
    }

    /// Drain events scheduled strictly before `t`, in order.
    pub fn pop_before(&mut self, t: SimTime) -> Vec<(SimTime, E)> {
        let mut out = Vec::new();
        while self.peek_time().is_some_and(|at| at < t) {
            out.push(self.pop().unwrap());
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::time::SimDuration;

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.schedule(SimTime(30), "c");
        q.schedule(SimTime(10), "a");
        q.schedule(SimTime(20), "b");
        let order: Vec<_> = std::iter::from_fn(|| q.pop()).map(|(_, e)| e).collect();
        assert_eq!(order, ["a", "b", "c"]);
    }

    #[test]
    fn ties_break_fifo() {
        let mut q = EventQueue::new();
        for i in 0..100 {
            q.schedule(SimTime(5), i);
        }
        let order: Vec<_> = std::iter::from_fn(|| q.pop()).map(|(_, e)| e).collect();
        assert_eq!(order, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn clock_advances() {
        let mut q = EventQueue::new();
        q.schedule(SimTime(7), ());
        assert_eq!(q.now(), SimTime::EPOCH);
        q.pop();
        assert_eq!(q.now(), SimTime(7));
    }

    #[test]
    #[should_panic]
    fn scheduling_past_panics() {
        let mut q = EventQueue::new();
        q.schedule(SimTime(10), ());
        q.pop();
        q.schedule(SimTime(5), ());
    }

    #[test]
    fn pop_before_is_exclusive() {
        let mut q = EventQueue::new();
        q.schedule(SimTime(1), 1);
        q.schedule(SimTime(2), 2);
        q.schedule(SimTime(3), 3);
        let drained = q.pop_before(SimTime(3));
        assert_eq!(drained.len(), 2);
        assert_eq!(q.len(), 1);
    }

    #[test]
    fn interleaved_schedule_and_pop() {
        let mut q = EventQueue::new();
        q.schedule(SimTime(10), "first");
        let (t, _) = q.pop().unwrap();
        q.schedule(t + SimDuration::from_secs(5), "second");
        let (t2, e2) = q.pop().unwrap();
        assert_eq!(t2, SimTime(15));
        assert_eq!(e2, "second");
    }
}
