//! §5.2 — attacks on Russian infrastructure in March 2022.
//!
//! **mil.ru** (§5.2.1): three unicast nameservers on the *same /24*,
//! single ASN — the paper's textbook example of poor resilience. The
//! telescope saw only modest spoofed activity for 8 days (March 11–18),
//! but the domain was unresolvable: the bulk of the attack was invisible
//! (and the eventual geofence is, from a Dutch vantage point,
//! observationally identical to saturation — every query dies either
//! way). OpenINTEL failed completely March 12–16; the reactive platform,
//! probing every nameserver, found none responsive for the whole attack.
//!
//! **RDZ railways** (§5.2.2): three nameservers on two /24s, still
//! unicast and single-ASN. RSDoS-visible attack 15:31–20:45 on March 8;
//! the invisible component kept the servers saturated overnight and the
//! domain became intermittently responsive at ≈06:00 the next morning.

use attack::{Attack, AttackId, Protocol, VectorKind, VectorSpec};
use census::{AnycastCensus, OpenResolverList};
use dnsimpact_core::longitudinal::MetaTables;
use dnssim::{Deployment, DomainId, Infra, LoadBook, NsSetId, Uplink};
use netbase::{As2Org, Asn, Ipv4Net, OrgRegistry, Prefix2As, Slash24};
use simcore::rng::RngFactory;
use simcore::time::{CivilDate, SimTime, Window};
use std::net::Ipv4Addr;
use telescope::{BackscatterSampler, Darknet, RsdosClassifier, RsdosFeed};

/// The mil.ru scenario.
pub struct MilRuScenario {
    pub infra: Infra,
    pub meta: MetaTables,
    pub nsset: NsSetId,
    pub mil_ru: DomainId,
    pub addrs: [Ipv4Addr; 3],
    pub attacks: Vec<Attack>,
    /// Visible (RSDoS) attack interval: March 11–18 inclusive.
    pub attack_span: (SimTime, SimTime),
    /// The total-blackout interval (OpenINTEL failure): March 12–16.
    pub blackout: (SimTime, SimTime),
}

impl MilRuScenario {
    pub fn build(rngs: &RngFactory) -> MilRuScenario {
        let _ = rngs;
        let mut infra = Infra::new();
        let mut orgs = OrgRegistry::new();
        let mut as2org = As2Org::new();
        let mut prefix2as = Prefix2As::new();
        let org = orgs.add("Ministry of Defense of the Russian Federation", "RU");
        let asn = Asn(8342);
        as2org.assign(asn, org);
        // All three nameservers on ONE /24.
        let addrs: [Ipv4Addr; 3] = [
            "188.128.110.1".parse().unwrap(),
            "188.128.110.2".parse().unwrap(),
            "188.128.110.3".parse().unwrap(),
        ];
        prefix2as.announce(Ipv4Net::new(addrs[0], 24), asn);
        let ids: Vec<_> = addrs
            .iter()
            .enumerate()
            .map(|(i, &a)| {
                infra.add_nameserver(
                    format!("ns{}.mil.ru", i + 1).parse().unwrap(),
                    a,
                    asn,
                    Deployment::Unicast,
                    60_000.0,
                    500.0,
                    40.0,
                )
            })
            .collect();
        // The shared /24 uplink also carries the mil.ru web site.
        infra.set_uplink(Uplink::new(Slash24::of(addrs[0]), 800_000.0));
        let nsset = infra.intern_nsset(ids);
        let mil_ru = infra.add_domain("mil.ru".parse().unwrap(), nsset);
        // The Cyrillic IDN and subdomains delegate to the same servers.
        infra.add_domain("xn--90adahrqfmn.xn--p1ai".parse().unwrap(), nsset);
        for s in ["mail", "recrut", "stat", "doc", "sc", "ens", "milru-cdn"] {
            infra.add_domain(format!("{s}.mil.ru").parse().unwrap(), nsset);
        }

        let day = |d: u32, h: u32| SimTime::from_civil(CivilDate::new(2022, 3, d), h, 0, 0);
        let attack_span = (day(11, 0), day(19, 0)); // through March 18
        let blackout = (day(12, 0), day(17, 0)); // March 12–16 inclusive

        let mut attacks = Vec::new();
        // Modest visible spoofed vector on each nameserver, all 8 days
        // (≈3 Kppm at the telescope).
        for (k, &a) in addrs.iter().enumerate() {
            attacks.push(Attack {
                id: AttackId(k as u64),
                target: a,
                start: attack_span.0,
                duration: attack_span.1 - attack_span.0,
                vectors: vec![VectorSpec {
                    kind: VectorKind::RandomSpoofed,
                    protocol: Protocol::Tcp,
                    ports: vec![53, 80],
                    victim_pps: 17_000.0,
                    source_count: 900_000,
                }],
            });
        }
        // The invisible bulk: heavy on day one (≈3× capacity), total
        // blackout March 12–16 (geofence-equivalent), heavy taper 17–18.
        let invis = |id: u64, target: Ipv4Addr, from: SimTime, to: SimTime, pps: f64| Attack {
            id: AttackId(id),
            target,
            start: from,
            duration: to - from,
            vectors: vec![VectorSpec {
                kind: VectorKind::Direct,
                protocol: Protocol::Tcp,
                ports: vec![80, 443, 53],
                victim_pps: pps,
                source_count: 40_000,
            }],
        };
        for (k, &a) in addrs.iter().enumerate() {
            let base = 100 + (k as u64) * 10;
            attacks.push(invis(base, a, day(11, 0), day(12, 0), 100_000.0));
            attacks.push(invis(base + 1, a, day(12, 0), day(17, 0), 20_000_000.0));
            attacks.push(invis(base + 2, a, day(17, 0), day(19, 0), 300_000.0));
        }
        // Collateral: the web site shares the /24 and its uplink.
        attacks.push(invis(
            999,
            "188.128.110.70".parse().unwrap(),
            day(12, 0),
            day(17, 0),
            2_000_000.0,
        ));

        let census = AnycastCensus::from_ground_truth(
            &infra,
            AnycastCensus::paper_snapshot_dates(),
            1.0,
            rngs,
        );
        MilRuScenario {
            infra,
            meta: MetaTables {
                prefix2as,
                as2org,
                orgs,
                open_resolvers: OpenResolverList::well_known(),
                census,
            },
            nsset,
            mil_ru,
            addrs,
            attacks,
            attack_span,
            blackout,
        }
    }

    pub fn load_book(&self) -> LoadBook {
        let mut book = LoadBook::new();
        for (addr, w, pps) in attack::accumulate_windows(&self.attacks) {
            book.add(addr, w, pps);
        }
        book
    }

    pub fn feed(&self, rngs: &RngFactory) -> RsdosFeed {
        let darknet = Darknet::ucsd_like();
        let obs = BackscatterSampler::new(&darknet).sample(&self.attacks, rngs);
        let classifier = RsdosClassifier::default();
        let records = classifier.classify(&obs);
        let episodes = classifier.episodes(&records);
        RsdosFeed::new(records, episodes)
    }
}

/// The RDZ railways scenario.
pub struct RdzScenario {
    pub infra: Infra,
    pub nsset: NsSetId,
    pub domain: DomainId,
    pub addrs: [Ipv4Addr; 3],
    pub attacks: Vec<Attack>,
    /// The RSDoS-visible interval: March 8, 15:31–20:45.
    pub visible_span: (SimTime, SimTime),
    /// When the domain becomes responsive again (≈06:00 March 9).
    pub recovery: SimTime,
}

impl RdzScenario {
    pub fn build(rngs: &RngFactory) -> RdzScenario {
        let _ = rngs;
        let mut infra = Infra::new();
        let asn = Asn(2854);
        // Two /24s for three nameservers.
        let addrs: [Ipv4Addr; 3] = [
            "95.167.4.1".parse().unwrap(),
            "95.167.4.2".parse().unwrap(),
            "95.167.9.1".parse().unwrap(),
        ];
        let ids: Vec<_> = addrs
            .iter()
            .enumerate()
            .map(|(i, &a)| {
                infra.add_nameserver(
                    format!("ns{}.rzd.ru", i + 1).parse().unwrap(),
                    a,
                    asn,
                    Deployment::Unicast,
                    50_000.0,
                    400.0,
                    52.0,
                )
            })
            .collect();
        let nsset = infra.intern_nsset(ids);
        let domain = infra.add_domain("rzd.ru".parse().unwrap(), nsset);
        for s in ["pass", "cargo", "ticket", "eng"] {
            infra.add_domain(format!("{s}.rzd.ru").parse().unwrap(), nsset);
        }

        let t = |d: u32, h: u32, m: u32| SimTime::from_civil(CivilDate::new(2022, 3, d), h, m, 0);
        let visible_span = (t(8, 15, 31), t(8, 20, 45));
        let recovery = t(9, 6, 0);
        let mut attacks = Vec::new();
        for (k, &a) in addrs.iter().enumerate() {
            // Visible crowdsourced UDP/53 flood.
            attacks.push(Attack {
                id: AttackId(k as u64),
                target: a,
                start: visible_span.0,
                duration: visible_span.1 - visible_span.0,
                vectors: vec![VectorSpec {
                    kind: VectorKind::RandomSpoofed,
                    protocol: Protocol::Udp,
                    ports: vec![53],
                    victim_pps: 120_000.0,
                    source_count: 2_000_000,
                }],
            });
            // Invisible continuation saturating the servers until 06:00.
            attacks.push(Attack {
                id: AttackId(100 + k as u64),
                target: a,
                start: visible_span.0,
                duration: recovery - visible_span.0,
                vectors: vec![VectorSpec {
                    kind: VectorKind::Direct,
                    protocol: Protocol::Udp,
                    ports: vec![53],
                    victim_pps: 900_000.0,
                    source_count: 30_000,
                }],
            });
        }
        RdzScenario { infra, nsset, domain, addrs, attacks, visible_span, recovery }
    }

    pub fn load_book(&self) -> LoadBook {
        let mut book = LoadBook::new();
        for (addr, w, pps) in attack::accumulate_windows(&self.attacks) {
            book.add(addr, w, pps);
        }
        book
    }

    pub fn feed(&self, rngs: &RngFactory) -> RsdosFeed {
        let darknet = Darknet::ucsd_like();
        let obs = BackscatterSampler::new(&darknet).sample(&self.attacks, rngs);
        let classifier = RsdosClassifier::default();
        let records = classifier.classify(&obs);
        let episodes = classifier.episodes(&records);
        RsdosFeed::new(records, episodes)
    }

    /// Feed records restricted to the visible span (what triggers the
    /// reactive platform).
    pub fn window_span(&self) -> (Window, Window) {
        (self.visible_span.0.window(), self.visible_span.1.window())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dnssim::{QueryStatus, Resolver};
    use rand::SeedableRng;

    #[test]
    fn mil_ru_same_slash24_single_asn() {
        let sc = MilRuScenario::build(&RngFactory::new(1));
        assert_eq!(sc.infra.nsset_slash24s(sc.nsset).len(), 1);
        assert_eq!(sc.infra.nsset_asns(sc.nsset).len(), 1);
        assert_eq!(sc.infra.nsset_anycast(sc.nsset), (0, 3));
    }

    #[test]
    fn mil_ru_blackout_march_12_to_16() {
        let sc = MilRuScenario::build(&RngFactory::new(2));
        let loads = sc.load_book();
        let resolver = Resolver::default();
        let mut rng = rand::rngs::SmallRng::seed_from_u64(5);
        // During the blackout OpenINTEL-style resolution fails ~always.
        let mid_blackout = SimTime::from_civil(CivilDate::new(2022, 3, 14), 12, 0, 0).window();
        let mut failures = 0;
        for _ in 0..50 {
            let out = resolver.resolve(&sc.infra, sc.mil_ru, mid_blackout, &loads, &mut rng);
            if out.status != QueryStatus::Ok {
                failures += 1;
            }
        }
        assert!(failures >= 48, "blackout: {failures}/50 failed");
        // On March 11 (heavy but not geofenced) some queries still get
        // through.
        let day_one = SimTime::from_civil(CivilDate::new(2022, 3, 11), 12, 0, 0).window();
        let mut ok = 0;
        for _ in 0..100 {
            if resolver.resolve(&sc.infra, sc.mil_ru, day_one, &loads, &mut rng).status
                == QueryStatus::Ok
            {
                ok += 1;
            }
        }
        assert!(ok > 5, "March 11 is degraded but not dead: {ok}/100 ok");
        // After the attack everything resolves.
        let after = SimTime::from_civil(CivilDate::new(2022, 3, 20), 12, 0, 0).window();
        let out = resolver.resolve(&sc.infra, sc.mil_ru, after, &loads, &mut rng);
        assert_eq!(out.status, QueryStatus::Ok);
    }

    #[test]
    fn mil_ru_telescope_sees_modest_attack() {
        let rngs = RngFactory::new(3);
        let sc = MilRuScenario::build(&rngs);
        let feed = sc.feed(&rngs);
        // Episodes exist for all three nameservers...
        let victims: std::collections::HashSet<Ipv4Addr> =
            feed.episodes.iter().map(|e| e.victim).collect();
        for a in sc.addrs {
            assert!(victims.contains(&a), "{a} missing from feed");
        }
        // ...but the observed intensity is modest (≈3 Kppm, nothing like
        // the TransIP March numbers) even though the real load was
        // devastating — the multi-vector blind spot.
        for e in &feed.episodes {
            assert!(e.peak_ppm < 10_000.0, "modest visible intensity: {}", e.peak_ppm);
        }
    }

    #[test]
    fn rdz_prefix_layout_and_recovery() {
        let sc = RdzScenario::build(&RngFactory::new(4));
        assert_eq!(sc.infra.nsset_slash24s(sc.nsset).len(), 2);
        assert_eq!(sc.infra.nsset_asns(sc.nsset).len(), 1);

        let loads = sc.load_book();
        let resolver = Resolver::default();
        let mut rng = rand::rngs::SmallRng::seed_from_u64(6);
        // 22:00 on March 8: visible attack over, invisible continues →
        // still dead.
        let overnight = SimTime::from_civil(CivilDate::new(2022, 3, 8), 22, 0, 0).window();
        let mut failures = 0;
        for _ in 0..50 {
            if resolver.resolve(&sc.infra, sc.domain, overnight, &loads, &mut rng).status
                != QueryStatus::Ok
            {
                failures += 1;
            }
        }
        assert!(failures >= 45, "overnight outage persists: {failures}/50");
        // 06:30 next morning: recovered.
        let morning = SimTime::from_civil(CivilDate::new(2022, 3, 9), 6, 30, 0).window();
        let out = resolver.resolve(&sc.infra, sc.domain, morning, &loads, &mut rng);
        assert_eq!(out.status, QueryStatus::Ok, "recovered at 06:00");
    }

    #[test]
    fn rdz_visible_span_matches_paper_clock() {
        let sc = RdzScenario::build(&RngFactory::new(5));
        assert_eq!(format!("{}", sc.visible_span.0), "2022-03-08 15:31:00");
        assert_eq!(format!("{}", sc.visible_span.1), "2022-03-08 20:45:00");
        assert_eq!(format!("{}", sc.recovery), "2022-03-09 06:00:00");
    }
}
