//! The synthetic Internet generator.
//!
//! Produces a population of DNS hosting providers whose shape mirrors what
//! the paper measures: a heavy-tailed (Zipf) distribution of domains per
//! provider (a few providers host millions, most host a handful), anycast
//! adoption concentrated at the big providers, capacity roughly
//! proportional to size, and the well-known public resolvers present as
//! misconfigured NS targets.

use attack::TargetPool;
use census::{AnycastCensus, OpenResolverList};
use dnsimpact_core::longitudinal::MetaTables;
use dnssim::{Deployment, Infra, NsSetId};
use netbase::{As2Org, Asn, Ipv4Net, OrgRegistry, Prefix2As};
use rand::Rng;
use simcore::dist::{log_normal, Zipf};
use simcore::rng::RngFactory;
use std::net::Ipv4Addr;

/// World-generation parameters.
#[derive(Clone, Debug)]
pub struct WorldConfig {
    /// Number of hosting providers.
    pub providers: u32,
    /// Total registered domains distributed over providers.
    pub domains: u32,
    /// Zipf exponent of the provider-size distribution.
    pub zipf_exponent: f64,
    /// Fraction of the *largest* providers running full anycast; adoption
    /// decays with provider rank.
    pub anycast_top_share: f64,
    /// Queries/s of capacity per hosted domain (big portfolios get big
    /// servers), with log-normal jitter.
    pub capacity_per_domain: f64,
    /// Floor on per-server capacity, pps.
    pub capacity_floor: f64,
    /// Number of misconfigured domains pointing NS records at public
    /// resolvers.
    pub misconfigured_domains: u32,
    /// Census detection recall (< 1 keeps it a lower bound).
    pub census_recall: f64,
}

impl Default for WorldConfig {
    fn default() -> WorldConfig {
        WorldConfig {
            providers: 100,
            domains: 120_000,
            zipf_exponent: 1.05,
            anycast_top_share: 0.15,
            capacity_per_domain: 12.0,
            capacity_floor: 20_000.0,
            misconfigured_domains: 60,
            census_recall: 0.9,
        }
    }
}

/// A generated world, ready for the pipeline.
pub struct BuiltWorld {
    pub infra: Infra,
    pub meta: MetaTables,
    /// All nameserver service addresses (attack targets).
    pub dns_addrs: Vec<Ipv4Addr>,
    /// Attack-attractiveness weights aligned with `dns_addrs` (bigger
    /// providers and famous resolvers attract more attacks — Tables 4–5).
    pub dns_weights: Vec<f64>,
    /// Non-nameserver hosts inside nameserver /24s.
    pub collateral_addrs: Vec<Ipv4Addr>,
    /// One representative NSSet per provider, ordered by provider rank.
    pub provider_nssets: Vec<NsSetId>,
    /// Per-provider nameserver address groups (campaign targets).
    pub dns_groups: Vec<Vec<Ipv4Addr>>,
}

impl BuiltWorld {
    pub fn target_pool(&self) -> TargetPool {
        TargetPool {
            dns_addrs: self.dns_addrs.clone(),
            dns_weights: self.dns_weights.clone(),
            collateral_addrs: self.collateral_addrs.clone(),
            dns_groups: self.dns_groups.clone(),
        }
    }
}

/// Provider name table: a few recognizable names for the top slots (the
/// organizations of Tables 4–6), synthetic names for the rest.
fn provider_name(rank: u32) -> (String, &'static str) {
    const NAMED: &[(&str, &str)] = &[
        ("Google", "US"),
        ("Unified Layer", "US"),
        ("Cloudflare", "US"),
        ("OVH", "FR"),
        ("Hetzner", "DE"),
        ("Amazon", "US"),
        ("Microsoft", "US"),
        ("Fastly", "US"),
        ("GoDaddy", "US"),
        ("TransIP B.V.", "NL"),
        ("NForce B.V.", "NL"),
        ("Co-Co NL", "NL"),
        ("NMU Group", "SE"),
        ("My Lock De", "DE"),
        ("DigiHosting NL", "NL"),
        ("Linode", "US"),
        ("ITandTEL", "AT"),
        ("Contabo", "DE"),
        ("Beeline RU", "RU"),
        ("nic.ru", "RU"),
        ("Euskaltel", "ES"),
    ];
    if (rank as usize) < NAMED.len() {
        let (n, c) = NAMED[rank as usize];
        (n.to_string(), c)
    } else {
        (format!("Hosting-{rank}"), "US")
    }
}

/// Generate a world.
pub fn build(config: &WorldConfig, rngs: &RngFactory) -> BuiltWorld {
    let mut rng = rngs.stream("world-gen");
    let mut infra = Infra::new();
    let mut orgs = OrgRegistry::new();
    let mut as2org = As2Org::new();
    let mut prefix2as = Prefix2As::new();
    let mut dns_addrs = Vec::new();
    let mut dns_weights = Vec::new();
    let mut collateral = Vec::new();
    let mut provider_nssets = Vec::new();
    let mut dns_groups: Vec<Vec<Ipv4Addr>> = Vec::new();

    // Provider sizes: multinomial over a Zipf pmf.
    let zipf = Zipf::new(config.providers as usize, config.zipf_exponent);
    let mut sizes = vec![0u32; config.providers as usize];
    for _ in 0..config.domains {
        sizes[zipf.sample(&mut rng) - 1] += 1;
    }

    for p in 0..config.providers {
        let size = sizes[p as usize].max(1);
        let (name, country) = provider_name(p);
        let org = orgs.add(&name, country);
        let asn = Asn(60_000 + p);
        as2org.assign(asn, org);

        // Address plan: provider p owns 101.p.0.0/16 (wrapping into
        // adjacent octets for p > 255 never happens at our scales).
        let first_octet = 101 + (p / 250) as u8;
        let second = (p % 250) as u8;
        let net: Ipv4Net = format!("{first_octet}.{second}.0.0/16").parse().unwrap();
        prefix2as.announce(net, asn);

        let ns_count = 2 + (rng.random_range(0..3)) as u32; // 2–4 nameservers
        let anycast = (p as f64) < config.providers as f64 * config.anycast_top_share
            && rng.random::<f64>() < 0.9;
        // Prefix layout: resilient providers spread /24s; weak ones stack
        // everything in one.
        let single_prefix = !anycast && rng.random::<f64>() < 0.35;
        let capacity = (size as f64 * config.capacity_per_domain * log_normal(&mut rng, 0.0, 1.0))
            .max(config.capacity_floor);
        let legit = (size as f64 * 0.5).max(10.0);
        let mut ns_ids = Vec::new();
        for s in 0..ns_count {
            let third = if single_prefix { 0 } else { s as u8 };
            let addr: Ipv4Addr =
                format!("{first_octet}.{second}.{third}.{}", 53 + s).parse().unwrap();
            dns_addrs.push(addr);
            // Attack attractiveness grows with provider size.
            dns_weights.push((size as f64).sqrt());
            ns_ids.push(
                infra.add_nameserver(
                    format!("ns{s}.{}.net", name.to_lowercase().replace([' ', '.'], "-"))
                        .parse()
                        .unwrap(),
                    addr,
                    asn,
                    if anycast {
                        Deployment::Anycast { sites: 10 + rng.random_range(0..30u32) }
                    } else {
                        Deployment::Unicast
                    },
                    capacity,
                    legit,
                    5.0 + rng.random::<f64>() * 50.0,
                ),
            );
            // One collateral host (web server) per nameserver /24.
            let web: Ipv4Addr = format!("{first_octet}.{second}.{third}.80").parse().unwrap();
            if !collateral.contains(&web) {
                collateral.push(web);
            }
        }
        // Single-prefix shops share one thin uplink behind all their
        // nameservers — the mil.ru failure mode: one saturating campaign
        // takes out every server at once (§5.2.3, §6.6.3).
        if single_prefix {
            let prefix = netbase::Slash24::of(
                format!("{first_octet}.{second}.0.53").parse::<Ipv4Addr>().unwrap(),
            );
            infra.set_uplink(dnssim::Uplink::new(prefix, (capacity * 1.5).max(30_000.0)));
        }
        // Third-party secondary DNS: a quarter of providers add one
        // nameserver borrowed from an earlier (usually bigger) provider —
        // the multi-ASN deployments of Figure 12. A few add two.
        if p > 0 && rng.random::<f64>() < 0.25 {
            let donors = 1 + (rng.random::<f64>() < 0.2) as usize;
            for _ in 0..donors {
                let donor_group = &dns_groups[rng.random_range(0..dns_groups.len())];
                let borrowed = donor_group[rng.random_range(0..donor_group.len())];
                if let Some(id) = infra.ns_by_addr(borrowed) {
                    if !ns_ids.contains(&id) {
                        ns_ids.push(id);
                    }
                }
            }
        }
        let set = infra.intern_nsset(ns_ids.clone());
        provider_nssets.push(set);
        dns_groups.push(ns_ids.iter().map(|&id| infra.nameserver(id).addr).collect());
        // Most domains use the provider's full set; a few use subsets
        // (producing multiple NSSets per provider, as in the wild).
        for d in 0..size {
            let use_subset = ns_ids.len() > 2 && rng.random::<f64>() < 0.05;
            let target_set =
                if use_subset { infra.intern_nsset(ns_ids[..2].to_vec()) } else { set };
            infra.add_domain(format!("dom{p}x{d}.example").parse().unwrap(), target_set);
        }
    }

    // Public resolvers: registered so misconfigured domains can point at
    // them, flagged open-resolver, heavily provisioned anycast.
    let mut open_resolvers = OpenResolverList::well_known();
    let resolver_specs: [(&str, &str, u32, &str); 3] = [
        ("8.8.8.8", "dns.google", 15169, "Google"),
        ("8.8.4.4", "dns2.google", 15169, "Google"),
        ("1.1.1.1", "one.one.one.one", 13335, "Cloudflare"),
    ];
    let mut resolver_ids = Vec::new();
    for (addr, host, asn, org_name) in resolver_specs {
        let asn = Asn(asn);
        let org = orgs
            .iter()
            .find(|o| o.name == org_name)
            .map(|o| o.id)
            .unwrap_or_else(|| panic!("org {org_name} exists"));
        as2org.assign(asn, org);
        let ip: Ipv4Addr = addr.parse().unwrap();
        prefix2as.announce(Ipv4Net::new(ip, 24), asn);
        let id = infra.add_nameserver(
            host.parse().unwrap(),
            ip,
            asn,
            Deployment::Anycast { sites: 200 },
            50_000_000.0,
            1_000_000.0,
            4.0,
        );
        infra.mark_open_resolver(id);
        resolver_ids.push(id);
        dns_addrs.push(ip);
        // Famous addresses attract disproportionate attacks (Table 5).
        dns_weights.push((config.domains as f64).sqrt() * 4.0);
    }
    for m in 0..config.misconfigured_domains {
        let set = infra.intern_nsset(vec![resolver_ids[(m as usize) % resolver_ids.len()]]);
        infra.add_domain(format!("misconf{m}.example").parse().unwrap(), set);
    }
    open_resolvers.extend_from_infra(&infra);

    let census = AnycastCensus::from_ground_truth(
        &infra,
        AnycastCensus::paper_snapshot_dates(),
        config.census_recall,
        rngs,
    );

    BuiltWorld {
        infra,
        meta: MetaTables { prefix2as, as2org, orgs, open_resolvers, census },
        dns_addrs,
        dns_weights,
        collateral_addrs: collateral,
        provider_nssets,
        dns_groups,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn world_shape_is_heavy_tailed() {
        let w = build(&WorldConfig::default(), &RngFactory::new(1));
        assert_eq!(w.provider_nssets.len(), 100);
        let sizes: Vec<usize> =
            w.provider_nssets.iter().map(|&s| w.infra.domains_of_nsset(s).len()).collect();
        // Rank 1 dominates; the tail is small.
        assert!(sizes[0] > sizes[10] && sizes[0] > sizes[30]);
        assert!(
            sizes[0] as f64 > 0.08 * 120_000.0,
            "head provider holds a big share: {}",
            sizes[0]
        );
        // Domain total conserved (+ misconfigured).
        assert!(w.infra.domain_count() as u32 >= 120_000);
    }

    #[test]
    fn anycast_lives_at_the_top() {
        let w = build(&WorldConfig::default(), &RngFactory::new(2));
        let anycast_rank = |set: &NsSetId| {
            let (a, t) = w.infra.nsset_anycast(*set);
            a == t && t > 0
        };
        let top_anycast = w.provider_nssets[..15].iter().filter(|s| anycast_rank(s)).count();
        let tail_anycast = w.provider_nssets[50..].iter().filter(|s| anycast_rank(s)).count();
        assert!(top_anycast >= 8, "top providers mostly anycast: {top_anycast}");
        assert_eq!(tail_anycast, 0, "tail is unicast");
    }

    #[test]
    fn resolvers_present_and_flagged() {
        let w = build(&WorldConfig::default(), &RngFactory::new(3));
        let quad8 = w.infra.ns_by_addr("8.8.8.8".parse().unwrap()).unwrap();
        assert!(w.infra.nameserver(quad8).open_resolver);
        assert!(w.meta.open_resolvers.contains("8.8.8.8".parse().unwrap()));
        // Misconfigured domains delegate to it.
        let sets = w.infra.nssets_of_ns(quad8);
        let total: usize = sets.iter().map(|&s| w.infra.domains_of_nsset(s).len()).sum();
        assert!(total > 0);
    }

    #[test]
    fn prefix2as_covers_nameservers() {
        let w = build(&WorldConfig::default(), &RngFactory::new(4));
        for n in w.infra.nameservers() {
            assert!(w.meta.prefix2as.asn_of(n.addr).is_some(), "{} missing from prefix2as", n.addr);
        }
    }

    #[test]
    fn deterministic_generation() {
        let a = build(&WorldConfig::default(), &RngFactory::new(5));
        let b = build(&WorldConfig::default(), &RngFactory::new(5));
        assert_eq!(a.dns_addrs, b.dns_addrs);
        assert_eq!(a.infra.domain_count(), b.infra.domain_count());
        let c = build(&WorldConfig::default(), &RngFactory::new(6));
        assert_ne!(a.dns_addrs.len(), 0);
        // Different seeds shuffle provider internals (sizes differ
        // somewhere).
        let sz = |w: &BuiltWorld| {
            w.provider_nssets.iter().map(|&s| w.infra.domains_of_nsset(s).len()).collect::<Vec<_>>()
        };
        assert_ne!(sz(&a), sz(&c));
    }

    #[test]
    fn weights_align_with_addrs() {
        let w = build(&WorldConfig::default(), &RngFactory::new(7));
        assert_eq!(w.dns_addrs.len(), w.dns_weights.len());
        assert!(w.dns_weights.iter().all(|&x| x > 0.0));
        let pool = w.target_pool();
        assert_eq!(pool.dns_addrs.len(), pool.dns_weights.len());
        assert!(!pool.collateral_addrs.is_empty());
        assert_eq!(pool.dns_groups.len(), 100);
        for g in &pool.dns_groups {
            assert!(!g.is_empty());
            for a in g {
                assert!(pool.dns_addrs.contains(a));
            }
        }
    }
}
