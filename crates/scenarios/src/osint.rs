//! Coordination-channel evidence (the paper's Figure 4 substitute).
//!
//! The paper manually matched Telegram messages from the *IT ARMY of
//! Ukraine* channel against RSDoS start times: a message listing the three
//! RDZ nameserver IPs and "port 53/UDP" was posted 12 minutes after the
//! inferred start of the attack. We synthesize the same kind of event log
//! and implement the correlation as code.

use simcore::time::{CivilDate, SimDuration, SimTime};
use std::net::Ipv4Addr;
use telescope::AttackEpisode;

/// One message in a coordination channel.
#[derive(Clone, Debug, PartialEq)]
pub struct ChannelMessage {
    pub at: SimTime,
    pub channel: String,
    pub text: String,
    /// IP addresses extracted from the message body.
    pub targets: Vec<Ipv4Addr>,
    /// Port mentioned, if any.
    pub port: Option<u16>,
}

/// A correlated (message, attack) pair.
#[derive(Clone, Debug, PartialEq)]
pub struct OsintMatch {
    pub message_idx: usize,
    pub episode_idx: usize,
    /// Signed lag: message time minus inferred attack start, in seconds
    /// (positive = message after the attack started).
    pub lag_secs: i64,
}

/// Match messages against attack episodes: a pair correlates when the
/// message names the episode's victim and is posted within `max_lag` of
/// the inferred start (either side).
pub fn correlate_messages(
    messages: &[ChannelMessage],
    episodes: &[AttackEpisode],
    max_lag: SimDuration,
) -> Vec<OsintMatch> {
    let mut out = Vec::new();
    for (mi, msg) in messages.iter().enumerate() {
        for (ei, ep) in episodes.iter().enumerate() {
            if !msg.targets.contains(&ep.victim) {
                continue;
            }
            let start = ep.first_window.start();
            let lag = msg.at.secs() as i64 - start.secs() as i64;
            if lag.unsigned_abs() <= max_lag.secs() {
                out.push(OsintMatch { message_idx: mi, episode_idx: ei, lag_secs: lag });
            }
        }
    }
    out.sort_by_key(|m| (m.message_idx, m.episode_idx));
    out
}

/// The synthetic IT-ARMY log for the RDZ case study: the call-to-arms
/// message 12 minutes after the inferred attack start, plus unrelated
/// chatter.
pub fn rdz_channel_log(ns_addrs: &[Ipv4Addr]) -> Vec<ChannelMessage> {
    let t = |d: u32, h: u32, m: u32| SimTime::from_civil(CivilDate::new(2022, 3, d), h, m, 0);
    vec![
        ChannelMessage {
            at: t(8, 11, 2),
            channel: "IT ARMY of Ukraine".into(),
            text: "Today's priorities coming soon".into(),
            targets: vec![],
            port: None,
        },
        ChannelMessage {
            at: t(8, 15, 43),
            channel: "IT ARMY of Ukraine".into(),
            text: format!(
                "Target: RDZ railway DNS — {} — hit port 53/UDP, need everyone!",
                ns_addrs.iter().map(|a| a.to_string()).collect::<Vec<_>>().join(", ")
            ),
            targets: ns_addrs.to_vec(),
            port: Some(53),
        },
        ChannelMessage {
            at: t(9, 9, 0),
            channel: "IT ARMY of Ukraine".into(),
            text: "Good work yesterday. New targets tomorrow.".into(),
            targets: vec![],
            port: None,
        },
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use attack::Protocol;
    use simcore::time::Window;

    fn episode(victim: &str, start: SimTime) -> AttackEpisode {
        AttackEpisode {
            victim: victim.parse().unwrap(),
            first_window: start.window(),
            last_window: Window(start.window().0 + 60),
            packets: 50_000,
            peak_ppm: 4_000.0,
            protocol: Protocol::Udp,
            first_port: 53,
            unique_ports: 1,
            slash16s: 80,
        }
    }

    #[test]
    fn rdz_message_correlates_with_twelve_minute_lag() {
        let addrs: Vec<Ipv4Addr> =
            vec!["95.167.4.1".parse().unwrap(), "95.167.4.2".parse().unwrap()];
        let start = SimTime::from_civil(CivilDate::new(2022, 3, 8), 15, 31, 0);
        let episodes = vec![episode("95.167.4.1", start), episode("95.167.4.2", start)];
        let log = rdz_channel_log(&addrs);
        let matches = correlate_messages(&log, &episodes, SimDuration::from_mins(30));
        assert_eq!(matches.len(), 2, "the call-to-arms matches both victims");
        for m in &matches {
            assert_eq!(m.message_idx, 1);
            // Episode start snaps to the window boundary (15:30), message
            // at 15:43 → lag 13 minutes ≈ the paper's 12.
            assert!((600..=900).contains(&m.lag_secs), "lag {}", m.lag_secs);
        }
    }

    #[test]
    fn unrelated_messages_do_not_match() {
        let start = SimTime::from_civil(CivilDate::new(2022, 3, 8), 15, 31, 0);
        let episodes = vec![episode("95.167.4.1", start)];
        let log = rdz_channel_log(&["10.0.0.1".parse().unwrap()]);
        assert!(correlate_messages(&log, &episodes, SimDuration::from_mins(30)).is_empty());
    }

    #[test]
    fn lag_bound_enforced() {
        let start = SimTime::from_civil(CivilDate::new(2022, 3, 8), 15, 31, 0);
        let episodes = vec![episode("95.167.4.1", start)];
        let addrs = vec!["95.167.4.1".parse().unwrap()];
        let log = rdz_channel_log(&addrs);
        // A 5-minute bound excludes the 13-minute-lag message.
        assert!(correlate_messages(&log, &episodes, SimDuration::from_mins(5)).is_empty());
    }

    #[test]
    fn negative_lag_allowed() {
        // A message *announcing* an attack before it starts also counts.
        let start = SimTime::from_civil(CivilDate::new(2022, 3, 8), 16, 0, 0);
        let episodes = vec![episode("95.167.4.1", start)];
        let addrs = vec!["95.167.4.1".parse().unwrap()];
        let log = rdz_channel_log(&addrs); // message at 15:43, attack 16:00
        let matches = correlate_messages(&log, &episodes, SimDuration::from_mins(30));
        assert_eq!(matches.len(), 1);
        assert!(matches[0].lag_secs < 0);
    }
}
