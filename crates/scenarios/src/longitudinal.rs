//! The 17-month longitudinal population, calibrated to the paper's
//! Table 3.

use attack::ScheduleConfig;
use simcore::time::Month;

/// The paper's Table 3, verbatim: per-month total attack counts and the
/// share aimed at DNS infrastructure.
pub const PAPER_MONTHLY_TOTALS: [u32; 17] = [
    159_434, 359_918, 174_016, 144_822, 279_797, 165_883, 199_513, 230_118, 338_193, 292_842,
    245_290, 228_092, 284_569, 221_054, 235_027, 239_775, 241_142,
];

/// Table 3's monthly DNS-attack shares (fractions, not percent).
pub const PAPER_DNS_SHARES: [f64; 17] = [
    0.0163, 0.0108, 0.0168, 0.0198, 0.0118, 0.0212, 0.0199, 0.0098, 0.0066, 0.0153, 0.0105, 0.0086,
    0.0094, 0.0135, 0.0086, 0.0057, 0.0137,
];

/// Total attacks in the paper's RSDoS catalog (Table 1): the sum of the
/// pinned monthly totals the scheduler divides down.
pub const PAPER_TOTAL_ATTACKS: u64 = 4_039_485;

/// The [`PaperScale`] divisor whose catalog lands nearest `target`
/// attacks. Shared by every harness that names its runs by target attack
/// count (the scale sweep, the serving daemon's pinned feed).
pub fn divisor_for_target(target: u64) -> u32 {
    let target = target.max(1);
    u32::try_from(((PAPER_TOTAL_ATTACKS + target / 2) / target).max(1))
        .expect("divisor fits u32 for any target >= 1")
}

/// Scaling of the longitudinal run. `divisor = 1` reproduces the feed at
/// full volume (4M attacks — records are cheap, measurement is lazy);
/// the default `40` keeps a laptop run under a minute.
#[derive(Clone, Copy, Debug)]
pub struct PaperScale {
    pub divisor: u32,
}

impl Default for PaperScale {
    fn default() -> PaperScale {
        PaperScale { divisor: 40 }
    }
}

/// Build the attack-schedule configuration calibrated to Table 3 at the
/// given scale.
pub fn paper_longitudinal_config(scale: PaperScale) -> ScheduleConfig {
    assert!(scale.divisor >= 1);
    let months = Month::paper_interval();
    ScheduleConfig {
        attacks_per_month: PAPER_MONTHLY_TOTALS
            .iter()
            .map(|&n| (n / scale.divisor).max(100))
            .collect(),
        // Campaigns multiply one DNS target pick into ~3 sibling attacks,
        // inflating the counted DNS share by ≈1.6x; pre-divide so the
        // *emitted* monthly shares land on Table 3's numbers.
        dns_share_per_month: PAPER_DNS_SHARES.iter().map(|s| s / 1.6).collect(),
        months,
        ..ScheduleConfig::default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn calibration_tables_align() {
        assert_eq!(PAPER_MONTHLY_TOTALS.len(), 17);
        assert_eq!(PAPER_DNS_SHARES.len(), 17);
        let total: u64 = PAPER_MONTHLY_TOTALS.iter().map(|&x| x as u64).sum();
        assert_eq!(total, 4_039_485, "Table 3 total");
        for s in PAPER_DNS_SHARES {
            assert!((0.005..0.022).contains(&s), "share {s} inside the 0.57–2.12% band");
        }
    }

    #[test]
    fn config_scales() {
        let cfg = paper_longitudinal_config(PaperScale { divisor: 40 });
        assert_eq!(cfg.months.len(), 17);
        assert_eq!(cfg.attacks_per_month[0], 159_434 / 40);
        assert!((cfg.dns_share_per_month[5] - 0.0212 / 1.6).abs() < 1e-12);
        let full = paper_longitudinal_config(PaperScale { divisor: 1 });
        assert_eq!(full.attacks_per_month[1], 359_918);
    }

    #[test]
    #[should_panic]
    fn zero_divisor_rejected() {
        paper_longitudinal_config(PaperScale { divisor: 0 });
    }
}
