//! §5.1 — the TransIP case study.
//!
//! At attack time TransIP served ≈776 K domains (two-thirds `.nl`) from
//! three *unicast* nameservers (A, B, C) on three /24s, two cities, one
//! ASN. Two attacks:
//!
//! - **December 2020** (2020-11-30 22:00 → 2020-12-01): the telescope saw
//!   a 21.8 Kppm peak against A and much weaker activity against B and C,
//!   yet OpenINTEL measured a ~10× RTT inflation and the impairment
//!   persisted ≈8 hours past the RSDoS-inferred end — we reproduce that
//!   with a telescope-invisible reflection component that outlives the
//!   spoofed vector.
//! - **March 2021** (reported by TransIP as more intense): ~6× the
//!   December peak rate, ≈20% of OpenINTEL queries timing out, and the
//!   impairment interval *matching* the telescope interval — consistent
//!   with TransIP's reported IP-level scrubbing, which we model as a
//!   fraction of attack traffic removed before it reaches the servers.
//!
//! The scenario is scaled 1:100 in domain count by default (7,760 domains)
//! with capacities scaled to match, preserving the ratios that drive every
//! observable shape.

use attack::{Attack, AttackId, Protocol, VectorKind, VectorSpec};
use census::{AnycastCensus, OpenResolverList};
use dnsimpact_core::casestudy::{ns_attack_metrics, rtt_timeseries, NsAttackMetrics, TimePoint};
use dnsimpact_core::longitudinal::MetaTables;
use dnssim::{Deployment, Infra, LoadBook, NsSetId, Resolver};
use netbase::{As2Org, Asn, Ipv4Net, OrgRegistry, Prefix2As};
use openintel::{measure::measure_window, MeasurementStore, SweepSchedule};
use simcore::rng::RngFactory;
use simcore::time::{CivilDate, SimDuration, SimTime, Window};
use std::net::Ipv4Addr;
use telescope::{BackscatterSampler, Darknet, RsdosClassifier, RsdosFeed};

/// The TransIP attack scenario.
pub struct TransIpScenario {
    pub infra: Infra,
    pub meta: MetaTables,
    pub nsset: NsSetId,
    /// Nameservers A, B, C.
    pub addrs: [Ipv4Addr; 3],
    pub attacks: Vec<Attack>,
    /// Windows to render for the December figure (Nov 29 – Dec 3).
    pub dec_range: (Window, Window),
    /// The December visible (RSDoS-inferred) attack interval.
    pub dec_attack: (SimTime, SimTime),
    /// Windows to render for the March figure.
    pub mar_range: (Window, Window),
    /// The March attack interval.
    pub mar_attack: (SimTime, SimTime),
    /// Share of March attack traffic that survives scrubbing.
    pub scrub_pass: f64,
    /// Share of hosted domains whose *web content* lives at a third party
    /// (the paper measured ≈27%, §5.1.1). DNS still lives at TransIP.
    pub third_party_web_share: f64,
}

/// Per-nameserver capacity in the scaled scenario, pps.
const CAPACITY_PPS: f64 = 150_000.0;
/// Scaled domain count (1:100 of the real ≈776 K).
pub const SCALED_DOMAINS: u32 = 7_760;

impl TransIpScenario {
    pub fn build(rngs: &RngFactory) -> TransIpScenario {
        let mut infra = Infra::new();
        let mut orgs = OrgRegistry::new();
        let mut as2org = As2Org::new();
        let mut prefix2as = Prefix2As::new();
        let org = orgs.add("TransIP B.V.", "NL");
        let asn = Asn(20857);
        as2org.assign(asn, org);
        let addrs: [Ipv4Addr; 3] = [
            "195.135.195.195".parse().unwrap(), // A — Amsterdam
            "195.8.195.195".parse().unwrap(),   // B — Amsterdam
            "37.97.199.195".parse().unwrap(),   // C — Eindhoven
        ];
        for a in addrs {
            prefix2as.announce(Ipv4Net::new(a, 24), asn);
        }
        let legit = SCALED_DOMAINS as f64 * 0.5;
        let ids: Vec<_> = addrs
            .iter()
            .enumerate()
            .map(|(i, &a)| {
                infra.add_nameserver(
                    ["ns0.transip.net", "ns1.transip.nl", "ns2.transip.eu"][i].parse().unwrap(),
                    a,
                    asn,
                    Deployment::Unicast,
                    CAPACITY_PPS,
                    legit,
                    if i == 2 { 17.0 } else { 14.0 }, // Eindhoven slightly farther
                )
            })
            .collect();
        let nsset = infra.intern_nsset(ids);
        for d in 0..SCALED_DOMAINS {
            let tld = if d % 3 == 2 { "com" } else { "nl" }; // two-thirds .nl
            infra.add_domain(format!("klant{d}.{tld}").parse().unwrap(), nsset);
        }

        let census = AnycastCensus::from_ground_truth(
            &infra,
            AnycastCensus::paper_snapshot_dates(),
            1.0,
            rngs,
        );
        let meta = MetaTables {
            prefix2as,
            as2org,
            orgs,
            open_resolvers: OpenResolverList::well_known(),
            census,
        };

        // ---- December 2020 attack --------------------------------------
        let dec_start = SimTime::from_civil(CivilDate::new(2020, 11, 30), 22, 0, 0);
        let dec_vis_end = SimTime::from_civil(CivilDate::new(2020, 12, 1), 0, 30, 0);
        let dec_invis_end = SimTime::from_civil(CivilDate::new(2020, 12, 1), 8, 0, 0);
        let spoofed = |id: u64, target: Ipv4Addr, start: SimTime, end: SimTime, pps: f64| Attack {
            id: AttackId(id),
            target,
            start,
            duration: end - start,
            vectors: vec![VectorSpec {
                kind: VectorKind::RandomSpoofed,
                protocol: Protocol::Tcp,
                ports: vec![53],
                victim_pps: pps,
                source_count: attack::schedule::spoofed_source_count(
                    pps * (end - start).secs() as f64,
                ),
            }],
        };
        let invisible =
            |id: u64, target: Ipv4Addr, start: SimTime, end: SimTime, pps: f64| Attack {
                id: AttackId(id),
                target,
                start,
                duration: end - start,
                vectors: vec![VectorSpec {
                    kind: VectorKind::Reflection,
                    protocol: Protocol::Udp,
                    ports: vec![53],
                    victim_pps: pps,
                    source_count: 3_000,
                }],
            };
        let mut attacks = vec![
            // Visible spoofed vectors: A hard, B and C much weaker.
            spoofed(0, addrs[0], dec_start, dec_vis_end, 124_000.0),
            spoofed(1, addrs[1], dec_start, dec_vis_end + SimDuration::from_hours(12), 21_600.0),
            spoofed(2, addrs[2], dec_start, dec_vis_end + SimDuration::from_hours(12), 16_500.0),
        ];
        // The invisible components that keep all three servers loaded (at
        // ρ just under 1, so RTT inflates ≈10x with negligible loss) until
        // 08:00 — the 8-hour post-RSDoS impairment tail. B and C carry
        // most of it, which is why their weak telescope signal belies the
        // measured impairment.
        for (k, (&a, pps)) in addrs.iter().zip([10_000.0, 115_000.0, 120_000.0]).enumerate() {
            attacks.push(invisible(3 + k as u64, a, dec_start, dec_invis_end, pps));
        }

        // ---- March 2021 attack -----------------------------------------
        let mar_start = SimTime::from_civil(CivilDate::new(2021, 3, 2), 15, 0, 0);
        let mar_end = SimTime::from_civil(CivilDate::new(2021, 3, 2), 19, 0, 0);
        // 6× the December peak on A and B, modest on C (Table 2)...
        attacks.push(spoofed(6, addrs[0], mar_start, mar_end, 710_000.0));
        attacks.push(spoofed(7, addrs[1], mar_start, mar_end, 700_000.0));
        attacks.push(spoofed(8, addrs[2], mar_start, mar_end, 74_000.0));
        // ...plus reflection vectors the telescope cannot see. Even after
        // scrubbing, these push A and B well past saturation and C past
        // its knee — which is what makes ≈20% of resolutions time out
        // despite unbound's retries across all three servers.
        attacks.push(invisible(9, addrs[0], mar_start, mar_end, 600_000.0));
        attacks.push(invisible(10, addrs[1], mar_start, mar_end, 600_000.0));
        attacks.push(invisible(11, addrs[2], mar_start, mar_end, 700_000.0));

        TransIpScenario {
            infra,
            meta,
            nsset,
            addrs,
            attacks,
            dec_range: (
                SimTime::from_civil(CivilDate::new(2020, 11, 29), 0, 0, 0).window(),
                SimTime::from_civil(CivilDate::new(2020, 12, 3), 0, 0, 0).window(),
            ),
            dec_attack: (dec_start, dec_vis_end),
            mar_range: (
                SimTime::from_civil(CivilDate::new(2021, 3, 1), 0, 0, 0).window(),
                SimTime::from_civil(CivilDate::new(2021, 3, 4), 0, 0, 0).window(),
            ),
            mar_attack: (mar_start, mar_end),
            scrub_pass: 0.27,
            third_party_web_share: 0.27,
        }
    }

    /// Offered load with the March scrubbing applied: the scrubber passes
    /// only `scrub_pass` of March attack traffic to the servers, while the
    /// telescope still sees the full spoofed rate.
    pub fn load_book(&self) -> LoadBook {
        let mut book = LoadBook::new();
        let mar_first = self.mar_attack.0.window();
        for (addr, w, pps) in attack::accumulate_windows(&self.attacks) {
            let effective = if w >= mar_first { pps * self.scrub_pass } else { pps };
            book.add(addr, w, effective);
        }
        book
    }

    /// Telescope view of the scenario.
    pub fn feed(&self, rngs: &RngFactory) -> RsdosFeed {
        let darknet = Darknet::ucsd_like();
        let sampler = BackscatterSampler::new(&darknet);
        let obs = sampler.sample(&self.attacks, rngs);
        let classifier = RsdosClassifier::default();
        let records = classifier.classify(&obs);
        let episodes = classifier.episodes(&records);
        RsdosFeed::new(records, episodes)
    }

    /// Measure the NSSet over `[first, last]` windows and return the
    /// per-window series (Figures 2–3).
    pub fn measure_series(
        &self,
        first: Window,
        last: Window,
        loads: &LoadBook,
        rngs: &RngFactory,
    ) -> Vec<TimePoint> {
        let schedule = SweepSchedule::new(rngs.seed());
        let resolver = Resolver::default();
        let mut store = MeasurementStore::new();
        for w in first.0..=last.0 {
            let recs = measure_window(
                &self.infra,
                &schedule,
                &resolver,
                self.nsset,
                Window(w),
                loads,
                rngs,
            );
            store.ingest(&recs);
        }
        rtt_timeseries(&store, self.nsset, first, last)
    }

    /// §5.1.1's web-reachability argument: a site is reachable only if its
    /// domain resolves AND its web server answers. Third-party-hosted
    /// sites (≈27%) depend on TransIP only for DNS; self-hosted sites
    /// also sit behind TransIP's attacked infrastructure (modeled as the
    /// nameservers' /24 uplinks). Returns the unreachable fractions
    /// `(third_party, self_hosted)` averaged over the attack interval.
    pub fn web_unreachability(
        &self,
        span: (SimTime, SimTime),
        loads: &LoadBook,
        rngs: &RngFactory,
    ) -> (f64, f64) {
        let resolver = Resolver::default();
        let mut rng = rngs.stream("web-reachability");
        let n_probes = 600usize;
        let domains = self.infra.domains_of_nsset(self.nsset);
        let mut tp_fail = 0u64;
        let mut tp_total = 0u64;
        let mut sh_fail = 0u64;
        let mut sh_total = 0u64;
        let span_secs = (span.1 - span.0).secs();
        for i in 0..n_probes {
            use rand::Rng as _;
            let at = span.0
                + simcore::time::SimDuration::from_secs((i as u64 * span_secs) / n_probes as u64);
            let d = domains[rng.random_range(0..domains.len())];
            let third_party =
                (d.0 as u64 * 2_654_435_761) % 100 < (self.third_party_web_share * 100.0) as u64;
            let dns_ok = resolver.resolve(&self.infra, d, at.window(), loads, &mut rng).status
                == dnssim::QueryStatus::Ok;
            // Self-hosted web servers share TransIP's attacked uplinks; a
            // web fetch succeeds with the nameservers' average delivery
            // probability (same /24s, same pipes).
            let web_ok = if third_party {
                true
            } else {
                let members = self.infra.nsset(self.nsset).members();
                let avg_ans: f64 = members
                    .iter()
                    .map(|&ns| self.infra.service_state(ns, at.window(), loads).answer_prob)
                    .sum::<f64>()
                    / members.len() as f64;
                rng.random::<f64>() < avg_ans
            };
            let reachable = dns_ok && web_ok;
            if third_party {
                tp_total += 1;
                if !reachable {
                    tp_fail += 1;
                }
            } else {
                sh_total += 1;
                if !reachable {
                    sh_fail += 1;
                }
            }
        }
        (tp_fail as f64 / tp_total.max(1) as f64, sh_fail as f64 / sh_total.max(1) as f64)
    }

    /// Table 2: per-nameserver inferred metrics for one of the attacks.
    pub fn table2(
        &self,
        feed: &RsdosFeed,
        range: (Window, Window),
    ) -> Vec<Option<NsAttackMetrics>> {
        let scale = Darknet::ucsd_like().scale_factor();
        self.addrs
            .iter()
            .enumerate()
            .map(|(i, &a)| {
                ns_attack_metrics(&feed.episodes, ["A", "B", "C"][i], a, range.0, range.1, scale)
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn avg_rtt_in(series: &[TimePoint], from: SimTime, to: SimTime) -> f64 {
        let pts: Vec<&TimePoint> =
            series.iter().filter(|p| p.window.start() >= from && p.window.start() < to).collect();
        assert!(!pts.is_empty(), "no measurements between {from} and {to}");
        pts.iter().map(|p| p.avg_rtt_ms * p.domains as f64).sum::<f64>()
            / pts.iter().map(|p| p.domains as f64).sum::<f64>()
    }

    #[test]
    fn december_ten_x_and_eight_hour_tail() {
        let rngs = RngFactory::new(2020);
        let sc = TransIpScenario::build(&rngs);
        let loads = sc.load_book();
        let series = sc.measure_series(sc.dec_range.0, sc.dec_range.1, &loads, &rngs);

        let day_before = SimTime::from_civil(CivilDate::new(2020, 11, 29), 0, 0, 0);
        let baseline = avg_rtt_in(&series, day_before, day_before + SimDuration::from_days(1));
        // During the visible attack: ≈10× inflation.
        let during = avg_rtt_in(&series, sc.dec_attack.0, sc.dec_attack.1);
        let impact = during / baseline;
        assert!((4.0..40.0).contains(&impact), "December impact ≈10x, got {impact:.1}");

        // Tail: 04:00–08:00 on Dec 1 is *after* the visible attack but
        // still impaired (the invisible component).
        let tail_from = SimTime::from_civil(CivilDate::new(2020, 12, 1), 4, 0, 0);
        let tail_to = SimTime::from_civil(CivilDate::new(2020, 12, 1), 8, 0, 0);
        let tail = avg_rtt_in(&series, tail_from, tail_to) / baseline;
        assert!(tail > 3.0, "impairment persists in the tail: {tail:.1}x");

        // Recovered by the afternoon of Dec 1.
        let rec_from = SimTime::from_civil(CivilDate::new(2020, 12, 1), 14, 0, 0);
        let rec_to = SimTime::from_civil(CivilDate::new(2020, 12, 2), 0, 0, 0);
        let recovered = avg_rtt_in(&series, rec_from, rec_to) / baseline;
        assert!(recovered < 2.0, "recovered after the tail: {recovered:.1}x");
    }

    #[test]
    fn march_timeouts_near_twenty_percent() {
        let rngs = RngFactory::new(2021);
        let sc = TransIpScenario::build(&rngs);
        let loads = sc.load_book();
        let series = sc.measure_series(sc.mar_range.0, sc.mar_range.1, &loads, &rngs);
        let during: Vec<&TimePoint> = series
            .iter()
            .filter(|p| p.window.start() >= sc.mar_attack.0 && p.window.start() < sc.mar_attack.1)
            .collect();
        assert!(!during.is_empty());
        let timeout_share = during.iter().map(|p| p.timeout_share * p.domains as f64).sum::<f64>()
            / during.iter().map(|p| p.domains as f64).sum::<f64>();
        assert!(
            (0.06..0.40).contains(&timeout_share),
            "March timeout share in the paper's order of magnitude (≈20%; ours runs \
             lower because unbound's retries reach the less-loaded server C), got {:.1}%",
            timeout_share * 100.0
        );
        // Outside the attack the timeout share collapses.
        let after: Vec<&TimePoint> = series
            .iter()
            .filter(|p| p.window.start() >= sc.mar_attack.1 + SimDuration::from_hours(2))
            .collect();
        let after_share = after.iter().map(|p| p.timeout_share).sum::<f64>() / after.len() as f64;
        assert!(after_share < 0.02, "after the attack: {after_share}");
    }

    #[test]
    fn web_hosting_dependency_matches_section_5_1_1() {
        // Paper: during December the third-party-hosted ≈27% "simply
        // experienced slower DNS resolution", but during March "they
        // likely became entirely unreachable due to DNS resolution
        // failures, despite having a third party operating their web
        // site".
        let rngs = RngFactory::new(511);
        let sc = TransIpScenario::build(&rngs);
        let loads = sc.load_book();
        let (tp_dec, sh_dec) = sc.web_unreachability(sc.dec_attack, &loads, &rngs);
        assert!(tp_dec < 0.02, "December: third-party sites stay up (slow): {tp_dec}");
        assert!(sh_dec < 0.05, "December: below saturation nothing drops: {sh_dec}");
        let (tp_mar, sh_mar) = sc.web_unreachability(sc.mar_attack, &loads, &rngs);
        assert!(
            tp_mar > 0.05,
            "March: DNS failures take down even third-party-hosted sites: {tp_mar}"
        );
        assert!(
            sh_mar > tp_mar,
            "March: self-hosted suffer DNS *and* web-path loss: {sh_mar} vs {tp_mar}"
        );
    }

    #[test]
    fn table2_shapes_match_paper() {
        let rngs = RngFactory::new(2022);
        let sc = TransIpScenario::build(&rngs);
        let feed = sc.feed(&rngs);
        let dec = sc.table2(&feed, sc.dec_range);
        let a = dec[0].as_ref().expect("A attacked in December");
        // A ≈ 21.8 Kppm observed, ≈1.4 Gbps inferred.
        assert!(
            (15_000.0..30_000.0).contains(&a.observed_ppm),
            "A observed {:.0} ppm",
            a.observed_ppm
        );
        assert!((0.9..2.2).contains(&a.inferred_gbps), "A {:.2} Gbps", a.inferred_gbps);
        let b = dec[1].as_ref().expect("B attacked");
        let c = dec[2].as_ref().expect("C attacked");
        assert!(a.observed_ppm > 4.0 * b.observed_ppm, "December targeted A most");
        assert!(b.observed_ppm > c.observed_ppm);

        let mar = sc.table2(&feed, sc.mar_range);
        let ma = mar[0].as_ref().expect("A attacked in March");
        let mb = mar[1].as_ref().expect("B attacked in March");
        let mc = mar[2].as_ref().expect("C attacked in March");
        // March ≈6× December on A, and A ≈ B ≫ C.
        assert!(
            ma.observed_ppm > 4.0 * a.observed_ppm,
            "March stronger: {:.0} vs {:.0}",
            ma.observed_ppm,
            a.observed_ppm
        );
        assert!((ma.observed_ppm / mb.observed_ppm) < 1.3);
        assert!(mb.observed_ppm > 5.0 * mc.observed_ppm);
        // Attacker-count ordering follows intensity.
        assert!(ma.attacker_ips > a.attacker_ips);
    }

    #[test]
    fn scrubbing_reduces_offered_load_but_not_telescope_view() {
        let rngs = RngFactory::new(9);
        let sc = TransIpScenario::build(&rngs);
        let loads = sc.load_book();
        let w = (sc.mar_attack.0 + SimDuration::from_mins(30)).window();
        let offered = loads.attack_on_addr(sc.addrs[0], w);
        // Visible (710 Kpps) + reflection (600 Kpps), both scrubbed.
        assert!(
            (offered - 1_310_000.0 * sc.scrub_pass).abs() < 1_000.0,
            "scrubbed offered load {offered}"
        );
        // The feed still sees the full spoofed rate (scrubbing is at the
        // victim, not between victim and telescope).
        let feed = sc.feed(&rngs);
        let mar = sc.table2(&feed, sc.mar_range);
        assert!(mar[0].as_ref().unwrap().observed_ppm > 80_000.0);
    }
}
