//! Scenario builders: the synthetic Internet the experiments run against,
//! plus the paper's case studies.
//!
//! - [`world`]: the general world generator — providers with Zipf-sized
//!   domain portfolios, mixed unicast/anycast deployments, prefix2as and
//!   as2org tables, well-known open resolvers with misconfigured domains.
//! - [`transip`]: §5.1 — the December 2020 and March 2021 attacks on a
//!   large Dutch hosting provider with three unicast nameservers.
//! - [`russia`]: §5.2 — the March 2022 attacks on mil.ru (three
//!   nameservers in one /24) and RDZ railways (recovery the next morning).
//! - [`osint`]: the coordination-channel timeline substituted for the
//!   paper's Telegram evidence (Figure 4), with the attack-start
//!   correlation.
//! - [`longitudinal`]: the 17-month population calibrated to Table 3's
//!   monthly volumes and DNS shares.

pub mod longitudinal;
pub mod osint;
pub mod russia;
pub mod transip;
pub mod world;

pub use longitudinal::{
    divisor_for_target, paper_longitudinal_config, PaperScale, PAPER_TOTAL_ATTACKS,
};
pub use osint::{correlate_messages, ChannelMessage, OsintMatch};
pub use russia::{MilRuScenario, RdzScenario};
pub use transip::TransIpScenario;
pub use world::{BuiltWorld, WorldConfig};
