//! Internet numbering substrate.
//!
//! The paper joins everything by IPv4 address, /24 and /16 prefix, origin
//! AS, and owning organization (CAIDA prefix2as + as2org). This crate
//! provides those primitives:
//!
//! - [`net`]: [`net::Ipv4Net`] CIDR prefixes and helpers for the /16 and /24
//!   granularities the RSDoS feed and anycast census use.
//! - [`trie`]: a binary prefix trie with longest-prefix-match lookup, the
//!   structure behind the prefix2as table.
//! - [`registry`]: ASN and organization registries and the
//!   [`registry::Prefix2As`] / [`registry::As2Org`] tables.

pub mod net;
pub mod registry;
pub mod trie;

pub use net::{Ipv4Net, Slash16, Slash24};
pub use registry::{As2Org, Asn, Org, OrgId, OrgRegistry, Prefix2As};
pub use trie::PrefixTrie;
