//! A binary (unibit) prefix trie with longest-prefix-match lookup.
//!
//! This is the structure behind the [`crate::registry::Prefix2As`] table and
//! the telescope's "is this address inside the darknet?" test. Simplicity
//! over raw speed: one node per bit, arena-allocated, no path compression —
//! at the scale of this simulation (tens of thousands of routes) lookups are
//! tens of nanoseconds.

use crate::net::Ipv4Net;
use std::net::Ipv4Addr;

#[derive(Clone, Debug)]
struct Node<V> {
    children: [Option<u32>; 2],
    value: Option<V>,
}

impl<V> Node<V> {
    fn new() -> Node<V> {
        Node { children: [None, None], value: None }
    }
}

/// A map from IPv4 prefixes to values with longest-prefix-match semantics.
///
/// ```
/// use netbase::PrefixTrie;
///
/// let mut trie = PrefixTrie::new();
/// trie.insert("10.0.0.0/8".parse().unwrap(), "aggregate");
/// trie.insert("10.1.0.0/16".parse().unwrap(), "customer");
/// let ip = "10.1.2.3".parse().unwrap();
/// assert_eq!(trie.lookup_value(ip), Some(&"customer"));
/// ```
#[derive(Clone, Debug)]
pub struct PrefixTrie<V> {
    nodes: Vec<Node<V>>,
    len: usize,
}

impl<V> Default for PrefixTrie<V> {
    fn default() -> Self {
        Self::new()
    }
}

impl<V> PrefixTrie<V> {
    pub fn new() -> PrefixTrie<V> {
        PrefixTrie { nodes: vec![Node::new()], len: 0 }
    }

    /// Number of prefixes stored.
    pub fn len(&self) -> usize {
        self.len
    }

    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Insert a prefix, returning the previous value for that exact prefix.
    pub fn insert(&mut self, net: Ipv4Net, value: V) -> Option<V> {
        let mut idx = 0u32;
        let addr = net.addr_u32();
        for depth in 0..net.len() {
            let bit = ((addr >> (31 - depth)) & 1) as usize;
            idx = match self.nodes[idx as usize].children[bit] {
                Some(c) => c,
                None => {
                    let c = self.nodes.len() as u32;
                    self.nodes.push(Node::new());
                    self.nodes[idx as usize].children[bit] = Some(c);
                    c
                }
            };
        }
        let prev = self.nodes[idx as usize].value.replace(value);
        if prev.is_none() {
            self.len += 1;
        }
        prev
    }

    /// Remove a prefix, returning its value. The trie keeps its nodes
    /// (arena allocation); only the value slot is vacated.
    pub fn remove(&mut self, net: Ipv4Net) -> Option<V> {
        let mut idx = 0u32;
        let addr = net.addr_u32();
        for depth in 0..net.len() {
            let bit = ((addr >> (31 - depth)) & 1) as usize;
            idx = self.nodes[idx as usize].children[bit]?;
        }
        let prev = self.nodes[idx as usize].value.take();
        if prev.is_some() {
            self.len -= 1;
        }
        prev
    }

    /// Exact-match lookup of a prefix.
    pub fn get(&self, net: Ipv4Net) -> Option<&V> {
        let mut idx = 0u32;
        let addr = net.addr_u32();
        for depth in 0..net.len() {
            let bit = ((addr >> (31 - depth)) & 1) as usize;
            idx = self.nodes[idx as usize].children[bit]?;
        }
        self.nodes[idx as usize].value.as_ref()
    }

    /// Longest-prefix match for an address: the most specific covering
    /// prefix and its value.
    pub fn lookup(&self, ip: Ipv4Addr) -> Option<(Ipv4Net, &V)> {
        let addr = u32::from(ip);
        let mut idx = 0u32;
        let mut best: Option<(u8, &V)> = self.nodes[0].value.as_ref().map(|v| (0, v));
        for depth in 0..32u8 {
            let bit = ((addr >> (31 - depth)) & 1) as usize;
            match self.nodes[idx as usize].children[bit] {
                Some(c) => {
                    idx = c;
                    if let Some(v) = self.nodes[idx as usize].value.as_ref() {
                        best = Some((depth + 1, v));
                    }
                }
                None => break,
            }
        }
        best.map(|(len, v)| (Ipv4Net::new(ip, len), v))
    }

    /// Value of the longest matching prefix, if any.
    pub fn lookup_value(&self, ip: Ipv4Addr) -> Option<&V> {
        self.lookup(ip).map(|(_, v)| v)
    }

    /// Whether any stored prefix covers `ip`.
    pub fn covers(&self, ip: Ipv4Addr) -> bool {
        self.lookup_value(ip).is_some()
    }

    /// Iterate all stored `(prefix, value)` pairs in address order.
    pub fn iter(&self) -> Vec<(Ipv4Net, &V)> {
        let mut out = Vec::with_capacity(self.len);
        self.walk(0, 0, 0, &mut out);
        out
    }

    fn walk<'a>(&'a self, idx: u32, addr: u32, depth: u8, out: &mut Vec<(Ipv4Net, &'a V)>) {
        let node = &self.nodes[idx as usize];
        if let Some(v) = node.value.as_ref() {
            out.push((Ipv4Net::new(Ipv4Addr::from(addr), depth), v));
        }
        if depth == 32 {
            return;
        }
        if let Some(c) = node.children[0] {
            self.walk(c, addr, depth + 1, out);
        }
        if let Some(c) = node.children[1] {
            self.walk(c, addr | (1 << (31 - depth)), depth + 1, out);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn net(s: &str) -> Ipv4Net {
        s.parse().unwrap()
    }
    fn ip(s: &str) -> Ipv4Addr {
        s.parse().unwrap()
    }

    #[test]
    fn longest_prefix_wins() {
        let mut t = PrefixTrie::new();
        t.insert(net("10.0.0.0/8"), "eight");
        t.insert(net("10.1.0.0/16"), "sixteen");
        t.insert(net("10.1.2.0/24"), "twentyfour");
        assert_eq!(t.lookup_value(ip("10.1.2.3")), Some(&"twentyfour"));
        assert_eq!(t.lookup_value(ip("10.1.3.3")), Some(&"sixteen"));
        assert_eq!(t.lookup_value(ip("10.2.0.1")), Some(&"eight"));
        assert_eq!(t.lookup_value(ip("11.0.0.1")), None);
    }

    #[test]
    fn lookup_returns_matched_prefix() {
        let mut t = PrefixTrie::new();
        t.insert(net("192.0.2.0/24"), 1);
        let (p, v) = t.lookup(ip("192.0.2.200")).unwrap();
        assert_eq!(p, net("192.0.2.0/24"));
        assert_eq!(*v, 1);
    }

    #[test]
    fn default_route() {
        let mut t = PrefixTrie::new();
        t.insert(Ipv4Net::ALL, 0);
        t.insert(net("128.0.0.0/1"), 1);
        assert_eq!(t.lookup_value(ip("1.1.1.1")), Some(&0));
        assert_eq!(t.lookup_value(ip("200.1.1.1")), Some(&1));
    }

    #[test]
    fn insert_replaces_and_counts() {
        let mut t = PrefixTrie::new();
        assert_eq!(t.insert(net("10.0.0.0/8"), 1), None);
        assert_eq!(t.len(), 1);
        assert_eq!(t.insert(net("10.0.0.0/8"), 2), Some(1));
        assert_eq!(t.len(), 1);
        assert_eq!(t.get(net("10.0.0.0/8")), Some(&2));
        assert_eq!(t.get(net("10.0.0.0/9")), None);
    }

    #[test]
    fn host_routes() {
        let mut t = PrefixTrie::new();
        t.insert(Ipv4Net::host(ip("8.8.8.8")), "dns");
        t.insert(net("8.8.8.0/24"), "net");
        assert_eq!(t.lookup_value(ip("8.8.8.8")), Some(&"dns"));
        assert_eq!(t.lookup_value(ip("8.8.8.9")), Some(&"net"));
    }

    #[test]
    fn remove_restores_shorter_match() {
        let mut t = PrefixTrie::new();
        t.insert(net("10.0.0.0/8"), "eight");
        t.insert(net("10.1.0.0/16"), "sixteen");
        assert_eq!(t.lookup_value(ip("10.1.2.3")), Some(&"sixteen"));
        assert_eq!(t.remove(net("10.1.0.0/16")), Some("sixteen"));
        assert_eq!(t.len(), 1);
        assert_eq!(t.lookup_value(ip("10.1.2.3")), Some(&"eight"));
        // Removing again (or a never-inserted prefix) is a no-op.
        assert_eq!(t.remove(net("10.1.0.0/16")), None);
        assert_eq!(t.remove(net("99.0.0.0/8")), None);
        assert_eq!(t.len(), 1);
    }

    #[test]
    fn iter_in_address_order() {
        let mut t = PrefixTrie::new();
        t.insert(net("20.0.0.0/8"), 2);
        t.insert(net("10.0.0.0/8"), 1);
        t.insert(net("10.5.0.0/16"), 3);
        let items: Vec<(Ipv4Net, i32)> = t.iter().into_iter().map(|(n, v)| (n, *v)).collect();
        assert_eq!(
            items,
            vec![(net("10.0.0.0/8"), 1), (net("10.5.0.0/16"), 3), (net("20.0.0.0/8"), 2)]
        );
    }

    #[test]
    fn covers_darknet_shape() {
        // The telescope announces a /9 and a /10.
        let mut t = PrefixTrie::new();
        t.insert(net("44.0.0.0/9"), ());
        t.insert(net("45.128.0.0/10"), ());
        assert!(t.covers(ip("44.5.0.1")));
        assert!(t.covers(ip("44.127.255.255")));
        assert!(!t.covers(ip("44.128.0.0")));
        assert!(t.covers(ip("45.170.3.3")));
        assert!(!t.covers(ip("45.192.0.0")));
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        /// LPM result must agree with a brute-force linear scan.
        #[test]
        fn lpm_matches_linear_scan(
            entries in prop::collection::vec((any::<u32>(), 0u8..=32), 1..60),
            probes in prop::collection::vec(any::<u32>(), 1..40),
        ) {
            let mut trie = PrefixTrie::new();
            let mut list: Vec<(Ipv4Net, usize)> = Vec::new();
            for (i, (addr, len)) in entries.iter().enumerate() {
                let n = Ipv4Net::new(Ipv4Addr::from(*addr), *len);
                trie.insert(n, i);
                list.retain(|(p, _)| *p != n);
                list.push((n, i));
            }
            for p in probes {
                let ip = Ipv4Addr::from(p);
                let expect = list
                    .iter()
                    .filter(|(n, _)| n.contains(ip))
                    .max_by_key(|(n, _)| n.len())
                    .map(|(_, v)| *v);
                prop_assert_eq!(trie.lookup_value(ip).copied(), expect);
            }
        }

        /// Every inserted prefix is exactly retrievable and iter() returns
        /// each stored prefix exactly once, sorted.
        #[test]
        fn insert_get_iter_consistent(
            entries in prop::collection::vec((any::<u32>(), 0u8..=32), 1..50),
        ) {
            let mut trie = PrefixTrie::new();
            let mut reference = std::collections::BTreeMap::new();
            for (i, (addr, len)) in entries.iter().enumerate() {
                let n = Ipv4Net::new(Ipv4Addr::from(*addr), *len);
                trie.insert(n, i);
                reference.insert(n, i);
            }
            prop_assert_eq!(trie.len(), reference.len());
            for (n, v) in &reference {
                prop_assert_eq!(trie.get(*n), Some(v));
            }
            let items: Vec<(Ipv4Net, usize)> =
                trie.iter().into_iter().map(|(n, v)| (n, *v)).collect();
            let expect: Vec<(Ipv4Net, usize)> =
                reference.into_iter().collect();
            prop_assert_eq!(items, expect);
        }
    }
}
